// Command onlinetuner is an interactive SQL shell with the online
// physical design tuner attached. Statements typed at the prompt (or
// piped on stdin) are optimized, executed, and observed by OnlinePT;
// every index the tuner creates, drops, suspends or restarts is
// announced as it happens.
//
// Usage:
//
//	onlinetuner [flags]           interactive shell (stdin)
//	onlinetuner serve [flags]     TCP daemon serving the wire protocol
//	onlinetuner client [flags]    wire-protocol client for a daemon
//
//	-demo          preload the demo schema R/S with 3000 rows
//	-tpch SCALE    preload TPC-H data at the given scale (e.g. 0.3)
//	-budget BYTES  secondary-index storage budget (0 = unlimited)
//	-suspend       suspend indexes instead of dropping them
//	-async         simulate asynchronous (online) index builds
//	-throttle N    run the tuner's analysis every N statements
//
// Shell commands besides SQL:
//
//	\config   show the current physical configuration
//	\cands    show the top candidate indexes and their evidence
//	\events   show the physical change log
//	\metrics  show tuner overhead counters
//	\explain SELECT ...   show the plan without executing
//	\quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"onlinetuner/internal/core"
	"onlinetuner/internal/engine"
	"onlinetuner/internal/executor"
	"onlinetuner/internal/sql"
	"onlinetuner/internal/tpch"

	planpkg "onlinetuner/internal/plan"
)

func main() {
	// Daemon and client modes route before flag parsing: "onlinetuner
	// serve ..." and "onlinetuner client ..." own their flag sets.
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "serve":
			serveMain(os.Args[2:])
			return
		case "client":
			clientMain(os.Args[2:])
			return
		}
	}
	demo := flag.Bool("demo", false, "preload the demo schema R/S with 3000 rows")
	tpchScale := flag.Float64("tpch", 0, "preload TPC-H data at the given scale")
	budget := flag.Int64("budget", 0, "secondary-index storage budget in bytes (0 = unlimited)")
	suspend := flag.Bool("suspend", false, "suspend indexes instead of dropping")
	async := flag.Bool("async", false, "simulate asynchronous index builds")
	throttle := flag.Int("throttle", 1, "run the tuner's analysis every N statements")
	workloadFile := flag.String("f", "", "replay a workload file (one statement per line, # comments) and exit")
	stateFile := flag.String("state", "", "load tuner evidence from this file at startup and save it on exit")
	engineMode := flag.String("engine", "auto", "execution engine: auto|row|vector")
	rules := flag.String("rules", "all", "optimizer rule set: all|none|comma list (unnest,topn,minmax,prune,joindp)")
	flag.Parse()

	db := engine.OpenConfig(engine.Config{ExecEngine: *engineMode, Rules: *rules})
	if *demo {
		loadDemo(db)
		fmt.Println("loaded demo schema: R(id,a,b,c,d,e), S(id,a,b,c,d,e), 3000 rows each")
	}
	if *tpchScale > 0 {
		gen := tpch.NewGenerator(tpch.Scale(*tpchScale), 1)
		if err := gen.Load(db); err != nil {
			fmt.Fprintln(os.Stderr, "tpch load:", err)
			os.Exit(1)
		}
		fmt.Printf("loaded TPC-H at scale %g\n", *tpchScale)
	}
	if *budget > 0 {
		db.Mgr.SetBudget(*budget)
	}

	opts := core.DefaultOptions()
	opts.UseSuspend = *suspend
	opts.Async = *async
	opts.ThrottleEvery = *throttle
	tuner := core.Attach(db, opts)
	if *stateFile != "" {
		if f, err := os.Open(*stateFile); err == nil {
			if err := tuner.LoadState(f); err != nil {
				fmt.Fprintln(os.Stderr, "state load:", err)
				os.Exit(1)
			}
			f.Close()
			fmt.Printf("restored tuner evidence from %s\n", *stateFile)
		}
		defer saveState(tuner, *stateFile)
	}

	if *workloadFile != "" {
		if err := replayFile(db, tuner, *workloadFile); err != nil {
			fmt.Fprintln(os.Stderr, "replay:", err)
			os.Exit(1)
		}
		return
	}

	fmt.Println("online physical design tuner attached; type SQL or \\help")
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	seenEvents := 0
	for {
		fmt.Print("sql> ")
		if !scanner.Scan() {
			break
		}
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "\\") {
			if handleMeta(line, db, tuner) {
				return
			}
			continue
		}
		rs, info, err := db.Exec(line)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		printResult(rs, info)
		// Announce tuner activity triggered by this statement.
		evs := tuner.Events()
		for ; seenEvents < len(evs); seenEvents++ {
			fmt.Printf("  [tuner] %s %s\n", evs[seenEvents].Kind, evs[seenEvents].Index)
		}
	}
}

// saveState persists the tuner's evidence, reporting failures to stderr.
func saveState(tuner *core.Tuner, path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "state save:", err)
		return
	}
	defer f.Close()
	if err := tuner.SaveState(f); err != nil {
		fmt.Fprintln(os.Stderr, "state save:", err)
		return
	}
	fmt.Printf("saved tuner evidence to %s\n", path)
}

// replayFile executes a workload file (one statement per line; blank
// lines and #-comments skipped), then prints per-statement totals, the
// tuner's schedule, and the final configuration.
func replayFile(db *engine.DB, tuner *core.Tuner, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	scanner := bufio.NewScanner(f)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	total := 0.0
	n := 0
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		_, info, err := db.Exec(line)
		if err != nil {
			return fmt.Errorf("statement %d (%q): %w", n+1, line, err)
		}
		if info.Result != nil {
			total += info.EstCost
		}
		n++
	}
	if err := scanner.Err(); err != nil {
		return err
	}
	fmt.Printf("replayed %d statements, total estimated cost %.2f (+ %.2f transitions)\n",
		n, total, tuner.Metrics().TransitionCost)
	fmt.Println("tuner schedule:")
	for _, ev := range tuner.Events() {
		fmt.Printf("  q%-6d %s\n", ev.AtQuery, ev)
	}
	fmt.Println("final configuration:")
	for _, ix := range db.Configuration() {
		fmt.Printf("  %s\n", ix)
	}
	return nil
}

func loadDemo(db *engine.DB) {
	db.MustExec("CREATE TABLE R (id INT, a INT, b INT, c INT, d INT, e INT, PRIMARY KEY (id))")
	db.MustExec("CREATE TABLE S (id INT, a INT, b INT, c INT, d INT, e INT, PRIMARY KEY (id))")
	for i := 0; i < 3000; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO R VALUES (%d, %d, %d, %d, %d, %d)", i, i%1000, i, i, i, i))
		db.MustExec(fmt.Sprintf("INSERT INTO S VALUES (%d, %d, %d, %d, %d, %d)", i, i%1000, i, i, i, i))
	}
	if err := db.Analyze("R"); err != nil {
		panic(err)
	}
	if err := db.Analyze("S"); err != nil {
		panic(err)
	}
}

func printResult(rs *executor.ResultSet, info *engine.QueryInfo) {
	switch {
	case rs.Affected > 0:
		fmt.Printf("  %d row(s) affected, cost=%.3f\n", rs.Affected, info.EstCost)
	default:
		if len(rs.Columns) > 0 {
			fmt.Println("  " + strings.Join(rs.Columns, " | "))
		}
		const maxRows = 20
		for i, row := range rs.Rows {
			if i >= maxRows {
				fmt.Printf("  ... %d more rows\n", len(rs.Rows)-maxRows)
				break
			}
			parts := make([]string, len(row))
			for j, d := range row {
				parts[j] = d.String()
			}
			fmt.Println("  " + strings.Join(parts, " | "))
		}
		fmt.Printf("  %d row(s), cost=%.3f\n", len(rs.Rows), info.EstCost)
	}
}

// handleMeta executes a backslash command; returns true to quit.
func handleMeta(line string, db *engine.DB, tuner *core.Tuner) bool {
	fields := strings.Fields(line)
	switch fields[0] {
	case "\\quit", "\\q":
		return true
	case "\\help":
		fmt.Println("\\config \\cands \\events \\metrics \\explain <select> \\quit")
	case "\\config":
		cfg := db.Configuration()
		if len(cfg) == 0 {
			fmt.Println("  (no secondary indexes)")
		}
		for _, ix := range cfg {
			pi := db.Mgr.Index(ix.ID())
			fmt.Printf("  %-50s %8d bytes\n", ix, pi.Bytes())
		}
		fmt.Printf("  budget used %d / %d\n", db.Mgr.UsedBytes(), db.Mgr.Budget())
	case "\\cands":
		fmt.Print(tuner.Report(10))
	case "\\events":
		for _, ev := range tuner.Events() {
			fmt.Printf("  q%-6d %s\n", ev.AtQuery, ev)
		}
	case "\\metrics":
		m := tuner.Metrics()
		fmt.Printf("  queries=%d total=%v line1=%v lines2-8=%v lines9-18=%v line18=%v transitions=%.2f\n",
			m.Queries, m.Total, m.Line1, m.Lines28, m.Lines918, m.Line18, m.TransitionCost)
	case "\\explain":
		text := strings.TrimSpace(strings.TrimPrefix(line, "\\explain"))
		stmt, err := sql.Parse(text)
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		res, err := db.Opt.Optimize(stmt)
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		fmt.Print(planpkg.Explain(res.Plan))
	default:
		fmt.Println("unknown command; try \\help")
	}
	return false
}
