package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"onlinetuner/internal/core"
	"onlinetuner/internal/engine"
	"onlinetuner/internal/server"
	"onlinetuner/internal/tpch"
)

// serveMain runs the TCP daemon: the same engine and tuner as the
// interactive shell, served to many concurrent sessions over the wire
// protocol. SIGINT/SIGTERM drains gracefully (in-flight statements
// finish, the WAL is checkpointed, late connects get a typed error); a
// second signal aborts.
func serveMain(args []string) {
	fs := flag.NewFlagSet("onlinetuner serve", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:7163", "TCP listen address")
	metricsAddr := fs.String("metrics", "", "serve the live metrics dashboard on this HTTP address (empty = off)")
	dir := fs.String("dir", "", "durable database directory with WAL + checkpoints (empty = in-memory)")
	demo := fs.Bool("demo", false, "preload the demo schema R/S with 3000 rows")
	tpchScale := fs.Float64("tpch", 0, "preload TPC-H data at the given scale")
	budget := fs.Int64("budget", 0, "secondary-index storage budget in bytes (0 = unlimited)")
	suspend := fs.Bool("suspend", false, "suspend indexes instead of dropping")
	throttle := fs.Int("throttle", 1, "run the tuner's analysis every N statements")
	engineMode := fs.String("engine", "auto", "execution engine: auto|row|vector")
	rules := fs.String("rules", "all", "optimizer rule set: all|none|comma list (unnest,topn,minmax,prune,joindp)")
	notuner := fs.Bool("notuner", false, "serve without the online tuner attached")
	maxConns := fs.Int("max-conns", 0, "connection limit (0 = server default)")
	admitSlots := fs.Int("admit-slots", 0, "concurrently executing statements (0 = 2x exec workers)")
	maxQueue := fs.Int("max-queue", 0, "admission wait-queue depth (0 = 4x admit-slots)")
	_ = fs.Parse(args)

	var db *engine.DB
	var err error
	recovered := false
	if *dir != "" {
		db, err = engine.OpenDurable(engine.Config{Dir: *dir, ExecEngine: *engineMode, Rules: *rules})
		if err != nil {
			fmt.Fprintln(os.Stderr, "open durable:", err)
			os.Exit(1)
		}
		if rec := db.Recovery(); rec.SnapshotSeq > 0 || rec.ReplayedRecords > 0 {
			recovered = true
			fmt.Printf("recovered %s: snapshot seq %d + %d replayed records in %v\n",
				*dir, rec.SnapshotSeq, rec.ReplayedRecords, rec.Duration)
		}
	} else {
		db = engine.OpenConfig(engine.Config{ExecEngine: *engineMode, Rules: *rules})
	}
	// Preloads only seed a fresh database; a recovered directory
	// already holds its schema and data (and re-running the DDL would
	// fail on the existing tables).
	if recovered && (*demo || *tpchScale > 0) {
		fmt.Println("recovered existing data; skipping -demo/-tpch preload")
	}
	if *demo && !recovered {
		loadDemo(db)
		fmt.Println("loaded demo schema: R(id,a,b,c,d,e), S(id,a,b,c,d,e), 3000 rows each")
	}
	if *tpchScale > 0 && !recovered {
		gen := tpch.NewGenerator(tpch.Scale(*tpchScale), 1)
		if err := gen.Load(db); err != nil {
			fmt.Fprintln(os.Stderr, "tpch load:", err)
			os.Exit(1)
		}
		fmt.Printf("loaded TPC-H at scale %g\n", *tpchScale)
	}
	if *budget > 0 {
		db.Mgr.SetBudget(*budget)
	}
	if !*notuner {
		opts := core.DefaultOptions()
		opts.UseSuspend = *suspend
		opts.Async = true // serving is the online setting: builds must not block sessions
		opts.ThrottleEvery = *throttle
		core.Attach(db, opts)
		fmt.Println("online physical design tuner attached (async builds)")
	}

	srv := server.New(db, server.Config{
		MaxConns:   *maxConns,
		AdmitSlots: *admitSlots,
		MaxQueue:   *maxQueue,
	})
	addr, errc, err := srv.Listen(*listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "listen:", err)
		os.Exit(1)
	}
	fmt.Printf("listening on %s\n", addr)
	if *metricsAddr != "" {
		go func() {
			if err := http.ListenAndServe(*metricsAddr, srv.MetricsHandler()); err != nil {
				fmt.Fprintln(os.Stderr, "metrics:", err)
			}
		}()
		fmt.Printf("metrics dashboard on http://%s/ (JSON at /metrics)\n", *metricsAddr)
	}

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		if err != nil {
			fmt.Fprintln(os.Stderr, "serve:", err)
			os.Exit(1)
		}
		return
	case sig := <-sigc:
		fmt.Printf("\n%s: draining (in-flight statements finish, then WAL checkpoint); signal again to abort\n", sig)
		go func() {
			<-sigc
			fmt.Fprintln(os.Stderr, "aborting")
			srv.Abort()
		}()
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "shutdown:", err)
			os.Exit(1)
		}
		if err := db.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "close:", err)
			os.Exit(1)
		}
		fmt.Println("drained and checkpointed; bye")
	}
}

// clientMain is a minimal wire-protocol client: pass -e "stmt; stmt"
// for scripted one-shots (the CI smoke test), or nothing for an
// interactive session against a running daemon.
func clientMain(args []string) {
	fs := flag.NewFlagSet("onlinetuner client", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7163", "daemon address")
	script := fs.String("e", "", "semicolon-separated statements to run and exit")
	_ = fs.Parse(args)

	c, err := server.Dial(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dial:", err)
		os.Exit(1)
	}
	defer c.Close()
	c.Timeout = 120 * time.Second

	if *script != "" {
		for _, stmt := range strings.Split(*script, ";") {
			stmt = strings.TrimSpace(stmt)
			if stmt == "" {
				continue
			}
			if err := clientStatement(c, stmt); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
		}
		return
	}

	fmt.Printf("connected to %s; SQL plus begin/commit/rollback, \\explain <stmt>, \\quit\n", *addr)
	shell := newLineReader()
	for {
		fmt.Print("sql> ")
		line, ok := shell()
		if !ok {
			return
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if line == "\\quit" || line == "\\q" {
			return
		}
		if err := clientStatement(c, line); err != nil {
			fmt.Println("error:", err)
		}
	}
}

// newLineReader wraps stdin in a large-buffer line scanner.
func newLineReader() func() (string, bool) {
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	return func() (string, bool) {
		if !scanner.Scan() {
			return "", false
		}
		return scanner.Text(), true
	}
}

// clientStatement sends one shell line through the wire protocol,
// mapping the transaction keywords and \explain onto their ops.
func clientStatement(c *server.Client, stmt string) error {
	switch strings.ToLower(stmt) {
	case "begin":
		if err := c.Begin(); err != nil {
			return err
		}
		fmt.Println("  transaction open; statements buffer until commit")
		return nil
	case "commit":
		results, err := c.Commit()
		if err != nil {
			return err
		}
		for i := range results {
			printWireResult(&results[i], true)
		}
		fmt.Printf("  committed %d statement(s)\n", len(results))
		return nil
	case "rollback":
		if err := c.Rollback(); err != nil {
			return err
		}
		fmt.Println("  rolled back")
		return nil
	case "ping":
		return c.Ping()
	}
	if rest, ok := strings.CutPrefix(stmt, "\\explain "); ok {
		lines, err := c.Explain(strings.TrimSpace(rest))
		if err != nil {
			return err
		}
		for _, l := range lines {
			fmt.Println("  " + l)
		}
		return nil
	}
	resp, err := c.Do(&server.Request{Op: server.OpExec, SQL: stmt})
	if err != nil {
		return err
	}
	if resp.Error != nil {
		return resp.Error
	}
	if resp.Queued {
		fmt.Println("  queued in open transaction")
		return nil
	}
	printWireResult(&resp.StmtResult, false)
	return nil
}

// printWireResult renders one statement result in the shell's format.
func printWireResult(res *server.StmtResult, indent bool) {
	pad := "  "
	if indent {
		pad = "    "
	}
	if res.Affected > 0 {
		fmt.Printf("%s%d row(s) affected, cost=%.3f\n", pad, res.Affected, res.Cost)
		return
	}
	if len(res.Columns) > 0 {
		fmt.Println(pad + strings.Join(res.Columns, " | "))
	}
	const maxRows = 20
	for i, row := range res.Rows {
		if i >= maxRows {
			fmt.Printf("%s... %d more rows\n", pad, len(res.Rows)-maxRows)
			break
		}
		fmt.Println(pad + strings.Join(row, " | "))
	}
	fmt.Printf("%s%d row(s), cost=%.3f\n", pad, len(res.Rows), res.Cost)
}
