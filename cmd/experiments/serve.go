package main

import (
	"fmt"
	"os"

	"onlinetuner/internal/bench"
	"onlinetuner/internal/workload"
)

// serveProfile runs (or inspects) the serving-layer benchmark. With
// -verify FILE it re-checks a committed BENCH_serve.json instead of
// measuring; with -meta FILE it prints the file's machine-independent
// metadata (the CI double-run determinism surface) and exits.
func serveProfile(opts workload.TPCHOptions, requests int, out, verifyPath, metaPath string) error {
	if metaPath != "" {
		data, err := os.ReadFile(metaPath)
		if err != nil {
			return err
		}
		rep, err := bench.VerifyServeJSON(data)
		if err != nil {
			return err
		}
		fmt.Print(rep.Meta())
		return nil
	}
	if verifyPath != "" {
		data, err := os.ReadFile(verifyPath)
		if err != nil {
			return err
		}
		rep, err := bench.VerifyServeJSON(data)
		if err != nil {
			return err
		}
		fmt.Printf("%s: ok (%d cells, overload cell rejected %d)\n",
			verifyPath, len(rep.Cells), rep.Cells[len(rep.Cells)-1].Rejected)
		return nil
	}
	rep, err := bench.Serve(opts.Scale, opts.Seed, requests)
	if err != nil {
		return err
	}
	fmt.Print(bench.FormatServe(rep))
	return writeReportJSON(out, rep)
}
