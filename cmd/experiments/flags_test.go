package main

import (
	"flag"
	"io"
	"testing"
)

// TestParseCommand pins the subcommand/flag interleavings the tool
// accepts: flags before the subcommand, after it, both, neither.
func TestParseCommand(t *testing.T) {
	cases := []struct {
		name      string
		args      []string
		wantCmd   string
		wantScale float64
		wantOut   string
		wantRules string
		wantErr   bool
	}{
		{name: "no args", args: nil, wantCmd: "all", wantScale: 0.5},
		{name: "bare subcommand", args: []string{"wal"}, wantCmd: "wal", wantScale: 0.5},
		{name: "flags before", args: []string{"-scale", "0.1", "serve"}, wantCmd: "serve", wantScale: 0.1},
		{name: "flags after", args: []string{"serve", "-scale", "0.1"}, wantCmd: "serve", wantScale: 0.1},
		{name: "flags both sides", args: []string{"-scale", "0.2", "tuners", "-out", "x.json"},
			wantCmd: "tuners", wantScale: 0.2, wantOut: "x.json"},
		{name: "only flags", args: []string{"-out", "y.json"}, wantCmd: "all", wantScale: 0.5, wantOut: "y.json"},
		{name: "rules flag after subcommand", args: []string{"rules", "-rules", "topn"},
			wantCmd: "rules", wantScale: 0.5, wantRules: "topn"},
		{name: "rules flag before subcommand", args: []string{"-rules", "none", "fig8"},
			wantCmd: "fig8", wantScale: 0.5, wantRules: "none"},
		{name: "unknown flag", args: []string{"-bogus"}, wantErr: true},
		{name: "unknown flag after subcommand", args: []string{"serve", "-bogus"}, wantErr: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
			fs.SetOutput(io.Discard)
			scale := fs.Float64("scale", 0.5, "")
			out := fs.String("out", "", "")
			rules := fs.String("rules", "", "")
			cmd, err := parseCommand(fs, tc.args, "all")
			if tc.wantErr {
				if err == nil {
					t.Fatalf("parseCommand(%v) accepted, want error", tc.args)
				}
				return
			}
			if err != nil {
				t.Fatalf("parseCommand(%v): %v", tc.args, err)
			}
			if cmd != tc.wantCmd {
				t.Errorf("cmd = %q, want %q", cmd, tc.wantCmd)
			}
			if *scale != tc.wantScale {
				t.Errorf("scale = %v, want %v", *scale, tc.wantScale)
			}
			if *out != tc.wantOut {
				t.Errorf("out = %q, want %q", *out, tc.wantOut)
			}
			if *rules != tc.wantRules {
				t.Errorf("rules = %q, want %q", *rules, tc.wantRules)
			}
		})
	}
}
