package main

import (
	"flag"
	"fmt"
	"os"
)

// parseCommand splits an argument list into its subcommand and applies
// flags from either side of it: "experiments -scale 0.1 wal" and
// "experiments wal -scale 0.1" both work, because the flag package
// stops at the first positional argument and whatever follows the
// subcommand is re-parsed. Returns def when no subcommand is present.
// Every subcommand used to inline this dance; keep it here, in one
// place.
func parseCommand(fs *flag.FlagSet, args []string, def string) (string, error) {
	if err := fs.Parse(args); err != nil {
		return "", err
	}
	if fs.NArg() == 0 {
		return def, nil
	}
	cmd := fs.Arg(0)
	if fs.NArg() > 1 {
		if err := fs.Parse(fs.Args()[1:]); err != nil {
			return "", err
		}
	}
	return cmd, nil
}

// jsonReport is any benchmark report that serializes itself; every
// BENCH_*.json artifact flows through writeReportJSON.
type jsonReport interface {
	JSON() ([]byte, error)
}

// writeReportJSON writes rep to out as JSON (a no-op when out is
// empty), replacing the write-epilogue every report subcommand used to
// copy.
func writeReportJSON(out string, rep jsonReport) error {
	if out == "" {
		return nil
	}
	js, err := rep.JSON()
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(js, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}
