// Command experiments regenerates every table and figure of the paper's
// evaluation (Section 4): Table 1's configuration schedules, the
// Figure 7 per-batch cost curves (with and without disruptive updates),
// the Figure 8 overall-cost summary, and the Figure 9 overhead report.
//
// Usage:
//
//	experiments [flags] table1|fig7a|fig7b|fig7c|fig7d|fig8|fig9|plancache|all
//
// plancache benchmarks the engine's statement/plan cache on
// repeated-template TPC-H workloads and, with -out FILE, writes the
// report as JSON (the recorded BENCH_plancache.json). obs does the same
// for statement-tracing overhead (the recorded BENCH_obs.json), fault
// for fault-injection-layer overhead with the injector disabled (the
// recorded BENCH_fault.json), and wal for WAL durability costs — commit
// throughput per fsync policy, replay bandwidth, checkpoint pause (the
// recorded BENCH_wal.json). rules measures the optimizer rewrite pack
// cell by cell — all-rules-off vs only-one-rule-on estimated cost,
// result hashes, and latency (the recorded BENCH_rules.json).
//
// Flags scale the TPC-H workload (the defaults reproduce the shapes at
// laptop scale in minutes):
//
//	-scale   data scale (1.0 ≈ lineitem 6000 rows)   default 0.5
//	-batches number of TPC-H batches                  default 60
//	-seed    workload seed                            default 1
//	-updates disruptive update statements (fig7c/d)   default 40
//	-engine  execution engine: auto|row|vector        default auto
//	-rules   optimizer rule set (all|none|list)       default all
//	-procs   override GOMAXPROCS (0 = leave as-is)    default 0
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"onlinetuner/internal/bench"
	"onlinetuner/internal/tpch"
	"onlinetuner/internal/workload"
)

func main() {
	scale := flag.Float64("scale", 0.5, "TPC-H data scale (1.0 ≈ lineitem 6000 rows)")
	batches := flag.Int("batches", 60, "number of TPC-H batches")
	seed := flag.Int64("seed", 1, "workload seed")
	updates := flag.Int("updates", 40, "disruptive update statements (fig7c/fig7d)")
	engineMode := flag.String("engine", "auto", "execution engine: auto|row|vector")
	procs := flag.Int("procs", 0, "override GOMAXPROCS for this run (0 = leave as-is)")
	out := flag.String("out", "", "plancache: also write the benchmark report as JSON to this file")
	seeds := flag.String("seeds", "1,2", "tuners: comma-separated race seeds")
	scenarios := flag.String("scenarios", "", "tuners: comma-separated scenario subset (default all)")
	advisors := flag.String("advisors", "", "tuners: comma-separated advisor subset (default all)")
	statements := flag.Int("statements", 0, "tuners: cap each scenario's statement stream (0 = scenario default)")
	verify := flag.String("verify", "", "tuners: verify an existing report file instead of racing")
	expect := flag.Bool("expect", false, "tuners -verify: also check the headline expectations (full-scale artifacts only)")
	requests := flag.Int("requests", 60, "serve: requests per client per cell")
	meta := flag.String("meta", "", "serve/rules: print the canonical metadata of a report file and exit")
	reps := flag.Int("reps", 9, "rules: repetitions per cell (min-of-k latency)")
	rules := flag.String("rules", "all", "optimizer rule set: all|none|comma list (unnest,topn,minmax,prune,joindp)")
	flag.Parse()

	cmd, err := parseCommand(flag.CommandLine, flag.Args(), "all")
	if err != nil {
		os.Exit(2)
	}

	if *procs > 0 {
		runtime.GOMAXPROCS(*procs)
	}
	opts := workload.TPCHOptions{
		Scale:          tpch.Scale(*scale),
		Seed:           *seed,
		NumBatches:     *batches,
		DisruptCount:   *updates,
		BudgetFraction: 1.0,
		ExecEngine:     *engineMode,
		Rules:          *rules,
	}

	if cmd == "plancache" {
		if err := planCache(opts, *out); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}
	if cmd == "obs" {
		if err := obsOverhead(opts, *out); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}
	if cmd == "fault" {
		if err := faultOverhead(opts, *out); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}
	if cmd == "exec" {
		if err := execParallel(opts, *out); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}
	if cmd == "tuners" {
		if err := tunersRace(tunersFlags{
			scale:      *scale,
			engine:     *engineMode,
			seeds:      *seeds,
			scenarios:  *scenarios,
			advisors:   *advisors,
			statements: *statements,
			out:        *out,
			verify:     *verify,
			expect:     *expect,
		}); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}
	if cmd == "rules" {
		if err := rulesProfile(opts, *reps, *out, *verify, *meta); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}
	if cmd == "serve" {
		if err := serveProfile(opts, *requests, *out, *verify, *meta); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}
	if cmd == "wal" {
		if err := walProfile(opts, *out); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(cmd, opts); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(cmd string, opts workload.TPCHOptions) error {
	switch cmd {
	case "table1":
		return table1()
	case "fig7a":
		return fig7a(opts)
	case "fig7b":
		return fig7b(opts)
	case "fig7c":
		return fig7c(opts)
	case "fig7d":
		return fig7d(opts)
	case "fig8":
		return fig8(opts)
	case "fig9":
		return fig9()
	case "ablation":
		return ablation(opts)
	case "competitive":
		return competitive()
	case "all":
		for _, c := range []func() error{
			table1,
			func() error { return fig7a(opts) },
			func() error { return fig7b(opts) },
			func() error { return fig7c(opts) },
			func() error { return fig7d(opts) },
			func() error { return fig8(opts) },
			fig9,
			func() error { return ablation(opts) },
			competitive,
		} {
			if err := c(); err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	}
	return fmt.Errorf("unknown experiment %q (want table1|fig7a|fig7b|fig7c|fig7d|fig8|fig9|ablation|competitive|plancache|obs|fault|exec|wal|serve|rules|all)", cmd)
}

func table1() error {
	s, err := bench.Table1()
	if err != nil {
		return err
	}
	fmt.Print(s)
	return nil
}

func fig7a(opts workload.TPCHOptions) error {
	_, series, on, err := bench.Figure7a(opts)
	if err != nil {
		return err
	}
	fmt.Print(bench.Chart("Figure 7(a): OnlinePT per-batch cost, TPC-H", series))
	fmt.Printf("physical changes: %d, final configuration: %v\n", len(on.Events), on.FinalConfig)
	return nil
}

func fig7b(opts workload.TPCHOptions) error {
	_, series, err := bench.Figure7b(opts)
	if err != nil {
		return err
	}
	fmt.Print(bench.Chart("Figure 7(b): per-batch cost by technique, TPC-H", series))
	return nil
}

func fig7c(opts workload.TPCHOptions) error {
	_, series, on, err := bench.Figure7c(opts)
	if err != nil {
		return err
	}
	fmt.Print(bench.Chart("Figure 7(c): OnlinePT per-batch cost, TPC-H with disruptive updates after batch 14", series))
	fmt.Printf("physical changes: %d\n", len(on.Events))
	return nil
}

func fig7d(opts workload.TPCHOptions) error {
	_, series, err := bench.Figure7d(opts)
	if err != nil {
		return err
	}
	fmt.Print(bench.Chart("Figure 7(d): per-batch cost by technique, TPC-H with disruptive updates", series))
	return nil
}

func fig8(opts workload.TPCHOptions) error {
	rows, err := bench.Figure8(opts)
	if err != nil {
		return err
	}
	fmt.Print(bench.FormatFigure8(rows))
	return nil
}

func fig9() error {
	data, err := bench.Figure9()
	if err != nil {
		return err
	}
	fmt.Print(bench.FormatFigure9(data))
	return nil
}

func ablation(opts workload.TPCHOptions) error {
	rows, err := bench.Ablation(bench.AblationWorkloads(opts))
	if err != nil {
		return err
	}
	fmt.Print(bench.FormatAblation(rows))
	return nil
}

// planCache runs the plan-cache hot-path benchmark matrix. It is not
// part of "all": it reports machine-dependent timings, while "all"
// regenerates the paper's deterministic artifacts.
func planCache(opts workload.TPCHOptions, out string) error {
	rep, err := bench.PlanCache(opts.Scale, opts.Seed)
	if err != nil {
		return err
	}
	fmt.Print(bench.FormatPlanCache(rep))
	return writeReportJSON(out, rep)
}

// obsOverhead runs the tracing-overhead matrix (see planCache for why
// it is not part of "all").
func obsOverhead(opts workload.TPCHOptions, out string) error {
	rep, err := bench.Obs(opts.Scale, opts.Seed)
	if err != nil {
		return err
	}
	fmt.Print(bench.FormatObs(rep))
	return writeReportJSON(out, rep)
}

// faultOverhead runs the fault-layer overhead matrix (see planCache for
// why it is not part of "all").
func faultOverhead(opts workload.TPCHOptions, out string) error {
	rep, err := bench.Fault(opts.Scale, opts.Seed)
	if err != nil {
		return err
	}
	fmt.Print(bench.FormatFault(rep))
	return writeReportJSON(out, rep)
}

// execParallel runs the morsel-parallel executor matrix, sequential vs
// 1/2/4/8 workers on a fixed TPC-H batch (see planCache for why it is
// not part of "all"). With -out FILE it writes the recorded
// BENCH_parallel.json.
func execParallel(opts workload.TPCHOptions, out string) error {
	rep, err := bench.Parallel(opts.Scale, opts.Seed)
	if err != nil {
		return err
	}
	fmt.Print(bench.FormatParallel(rep))
	return writeReportJSON(out, rep)
}

// walProfile runs the WAL durability cost matrix — commit throughput
// per fsync policy, replay bandwidth, checkpoint pause (see planCache
// for why it is not part of "all"). With -out FILE it writes the
// recorded BENCH_wal.json.
func walProfile(opts workload.TPCHOptions, out string) error {
	rep, err := bench.WAL(opts.Scale, opts.Seed)
	if err != nil {
		return err
	}
	fmt.Print(bench.FormatWAL(rep))
	return writeReportJSON(out, rep)
}

func competitive() error {
	adversarial, random, err := bench.Competitive(200, 500)
	if err != nil {
		return err
	}
	fmt.Print(bench.FormatCompetitive(adversarial, random))
	return nil
}
