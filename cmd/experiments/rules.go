package main

import (
	"fmt"
	"os"

	"onlinetuner/internal/bench"
	"onlinetuner/internal/workload"
)

// rulesProfile runs (or inspects) the optimizer rule-pack benchmark.
// With -verify FILE it re-checks a committed BENCH_rules.json instead
// of measuring; with -meta FILE it prints the file's machine-independent
// metadata (the CI double-run determinism surface) and exits.
func rulesProfile(opts workload.TPCHOptions, reps int, out, verifyPath, metaPath string) error {
	if metaPath != "" {
		data, err := os.ReadFile(metaPath)
		if err != nil {
			return err
		}
		rep, err := bench.VerifyRulesJSON(data)
		if err != nil {
			return err
		}
		fmt.Print(rep.Meta())
		return nil
	}
	if verifyPath != "" {
		data, err := os.ReadFile(verifyPath)
		if err != nil {
			return err
		}
		rep, err := bench.VerifyRulesJSON(data)
		if err != nil {
			return err
		}
		fmt.Printf("%s: ok (%d cells, every rule wins on cost, results byte-identical)\n",
			verifyPath, len(rep.Cells))
		return nil
	}
	rep, err := bench.Rules(opts.Scale, opts.Seed, reps)
	if err != nil {
		return err
	}
	fmt.Print(bench.FormatRules(rep))
	return writeReportJSON(out, rep)
}
