package main

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"onlinetuner/internal/bench"
	"onlinetuner/internal/tpch"
)

// tunersFlags bundles the tuner-race subcommand's flag values.
type tunersFlags struct {
	scale      float64
	engine     string
	seeds      string
	scenarios  string
	advisors   string
	statements int
	out        string
	verify     string
	expect     bool
}

// tunersRace either verifies an existing BENCH_tuners.json (-verify) or
// races the (advisor × scenario × seed) matrix and writes the report.
func tunersRace(f tunersFlags) error {
	if f.verify != "" {
		data, err := os.ReadFile(f.verify)
		if err != nil {
			return err
		}
		rep, err := bench.VerifyTunersJSON(data)
		if err != nil {
			return fmt.Errorf("%s: %w", f.verify, err)
		}
		if f.expect {
			if err := rep.CheckExpectations(); err != nil {
				return fmt.Errorf("%s: %w", f.verify, err)
			}
		}
		fmt.Printf("%s: ok (%d cells, %d scenarios × %d advisors × %d seeds)\n",
			f.verify, len(rep.Cells), len(rep.Scenarios), len(rep.Advisors), len(rep.Seeds))
		return nil
	}

	seeds, err := parseSeeds(f.seeds)
	if err != nil {
		return err
	}
	cfg := bench.TunersConfig{
		Scale:      tpch.Scale(f.scale),
		Statements: f.statements,
		Seeds:      seeds,
		Scenarios:  splitCSV(f.scenarios),
		Advisors:   splitCSV(f.advisors),
		ExecEngine: f.engine,
		Log:        os.Stderr,
	}
	rep, err := bench.RunTuners(cfg)
	if err != nil {
		return err
	}
	if err := rep.Verify(); err != nil {
		return fmt.Errorf("generated report failed verification: %w", err)
	}
	fmt.Print(bench.FormatTuners(rep))
	if f.out != "" {
		js, err := rep.JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(f.out, append(js, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", f.out)
	}
	return nil
}

func parseSeeds(s string) ([]int64, error) {
	var out []int64
	for _, part := range splitCSV(s) {
		v, err := strconv.ParseInt(part, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q: %w", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func splitCSV(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}
