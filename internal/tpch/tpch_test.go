package tpch

import (
	"strings"
	"testing"

	"onlinetuner/internal/engine"
)

func loadSmall(t testing.TB) (*engine.DB, *Generator) {
	t.Helper()
	db := engine.Open()
	g := NewGenerator(0.2, 42)
	if err := g.Load(db); err != nil {
		t.Fatal(err)
	}
	return db, g
}

func TestSchemaAndLoad(t *testing.T) {
	db, g := loadSmall(t)
	for table, want := range g.ScaleFactor.Rows() {
		h := db.Mgr.Heap(table)
		if h == nil {
			t.Fatalf("table %s missing", table)
		}
		got := h.Len()
		// lineitem has randomized lines per order; everything else exact.
		if table == "lineitem" {
			if got < want/2 || got > want*3 {
				t.Errorf("%s rows = %d, want ≈ %d", table, got, want)
			}
			continue
		}
		if got != want {
			t.Errorf("%s rows = %d, want %d", table, got, want)
		}
	}
	// Statistics built for every table.
	if !db.Stats.Has("lineitem", "l_shipdate") || !db.Stats.Has("orders", "o_orderdate") {
		t.Error("statistics missing after load")
	}
}

// TestAll22QueriesExecute is the substrate smoke test: every template
// must parse, plan and execute.
func TestAll22QueriesExecute(t *testing.T) {
	db, g := loadSmall(t)
	for n := 1; n <= 22; n++ {
		q := g.Query(n)
		rs, info, err := db.Exec(q)
		if err != nil {
			t.Fatalf("Q%d failed: %v\n%s", n, err, q)
		}
		if info.EstCost <= 0 {
			t.Errorf("Q%d: non-positive cost", n)
		}
		if len(info.Result.Requests()) == 0 {
			t.Errorf("Q%d: no requests captured", n)
		}
		_ = rs
	}
}

func TestQ1Shape(t *testing.T) {
	db, g := loadSmall(t)
	rs, err := db.Query(g.Query(1))
	if err != nil {
		t.Fatal(err)
	}
	// Up to 3 return flags × 2 statuses.
	if len(rs.Rows) == 0 || len(rs.Rows) > 6 {
		t.Errorf("Q1 groups = %d", len(rs.Rows))
	}
	if len(rs.Columns) != 8 {
		t.Errorf("Q1 columns = %v", rs.Columns)
	}
	// Counts must sum to the qualifying rows.
	var total int64
	for _, r := range rs.Rows {
		total += r[7].Int()
	}
	if total == 0 {
		t.Error("Q1 matched no rows")
	}
}

func TestQ6Selective(t *testing.T) {
	db, g := loadSmall(t)
	rs, err := db.Query(g.Query(6))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 {
		t.Fatalf("Q6 rows = %d", len(rs.Rows))
	}
}

func TestBatchesArePermutations(t *testing.T) {
	g := NewGenerator(0.2, 7)
	batches := g.Batches(3)
	if len(batches) != 3 {
		t.Fatal("batch count")
	}
	for _, b := range batches {
		if len(b) != 22 {
			t.Fatalf("batch size = %d", len(b))
		}
	}
	// Different batches should differ (fresh parameters).
	if batches[0][0] == batches[1][0] && batches[0][1] == batches[1][1] &&
		batches[0][2] == batches[1][2] {
		t.Error("batches look identical; parameters not refreshed")
	}
}

func TestDeterministicGeneration(t *testing.T) {
	g1 := NewGenerator(0.2, 99)
	g2 := NewGenerator(0.2, 99)
	for i := 0; i < 5; i++ {
		if g1.Query(3) != g2.Query(3) {
			t.Fatal("same seed must generate the same queries")
		}
	}
}

func TestDisruptiveUpdatesExecute(t *testing.T) {
	db, g := loadSmall(t)
	before := db.Mgr.Heap("orders").Len()
	for _, stmt := range g.DisruptiveUpdates(8) {
		if _, _, err := db.Exec(stmt); err != nil {
			t.Fatalf("%s: %v", stmt, err)
		}
	}
	if db.Mgr.Heap("orders").Len() <= before {
		t.Error("refresh inserts missing")
	}
}

func TestRefreshStreams(t *testing.T) {
	db, g := loadSmall(t)
	ordersBefore := db.Mgr.Heap("orders").Len()
	lineBefore := db.Mgr.Heap("lineitem").Len()
	for _, s := range g.RefreshInsert(10) {
		if _, _, err := db.Exec(s); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
	if got := db.Mgr.Heap("orders").Len(); got != ordersBefore+10 {
		t.Errorf("orders = %d, want %d", got, ordersBefore+10)
	}
	if db.Mgr.Heap("lineitem").Len() <= lineBefore {
		t.Error("lineitems not inserted")
	}
	midLine := db.Mgr.Heap("lineitem").Len()
	for _, s := range g.RefreshDelete(5) {
		if _, _, err := db.Exec(s); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
	if db.Mgr.Heap("lineitem").Len() >= midLine {
		t.Error("RF2 deleted no lineitems")
	}
	// Keys never collide across repeated refreshes.
	seen := map[string]bool{}
	for _, s := range g.RefreshInsert(20) {
		if strings.HasPrefix(s, "INSERT INTO orders") {
			if seen[s] {
				t.Fatalf("duplicate refresh statement: %s", s)
			}
			seen[s] = true
		}
	}
}
