package tpch

import (
	"fmt"
	"math/rand"

	"onlinetuner/internal/datum"
	"onlinetuner/internal/engine"
)

// Reference dates: TPC-H covers orders from 1992-01-01 to 1998-08-02.
const (
	dateEpoch1992 = 8035 // days from 1970-01-01 to 1992-01-01
	dateRangeDays = 2405 // ≈ 6.6 years
)

var (
	regionNames  = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDEAST"}
	segments     = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	priorities   = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECI", "5-LOW"}
	shipModes    = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
	containers   = []string{"SM CASE", "SM BOX", "LG CASE", "LG BOX", "MED BAG", "JUMBO JAR"}
	typeSyllable = []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
	typeMetal    = []string{"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"}
	brands       = []string{"Brand#11", "Brand#12", "Brand#23", "Brand#34", "Brand#45"}
	returnFlags  = []string{"R", "A", "N"}
	lineStatuses = []string{"O", "F"}
	orderStatus  = []string{"O", "F", "P"}
)

// Generator produces deterministic TPC-H data and statements.
type Generator struct {
	ScaleFactor Scale
	rng         *rand.Rand
	rows        map[string]int
	// nextOrderKey feeds the refresh (insert) stream.
	nextOrderKey int
}

// NewGenerator returns a deterministic generator for the given scale and
// seed.
func NewGenerator(scale Scale, seed int64) *Generator {
	return &Generator{
		ScaleFactor: scale,
		rng:         rand.New(rand.NewSource(seed)),
		rows:        scale.Rows(),
	}
}

// Load creates the schema, populates every table, and builds statistics.
// Rows are inserted through the storage manager directly (bulk path) —
// the load is not part of any measured workload.
func (g *Generator) Load(db *engine.DB) error {
	if err := CreateSchema(db); err != nil {
		return err
	}
	ins := func(table string, row datum.Row) error {
		_, _, err := db.Mgr.Insert(table, row)
		return err
	}
	for i := 0; i < g.rows["region"]; i++ {
		if err := ins("region", datum.Row{
			datum.NewInt(int64(i)), datum.NewString(regionNames[i%len(regionNames)]),
		}); err != nil {
			return err
		}
	}
	for i := 0; i < g.rows["nation"]; i++ {
		if err := ins("nation", datum.Row{
			datum.NewInt(int64(i)),
			datum.NewString(fmt.Sprintf("NATION%02d", i)),
			datum.NewInt(int64(i % g.rows["region"])),
		}); err != nil {
			return err
		}
	}
	for i := 0; i < g.rows["supplier"]; i++ {
		if err := ins("supplier", datum.Row{
			datum.NewInt(int64(i)),
			datum.NewString(fmt.Sprintf("Supplier#%05d", i)),
			datum.NewInt(int64(g.rng.Intn(g.rows["nation"]))),
			datum.NewFloat(float64(g.rng.Intn(1000000))/100 - 1000),
		}); err != nil {
			return err
		}
	}
	for i := 0; i < g.rows["customer"]; i++ {
		if err := ins("customer", datum.Row{
			datum.NewInt(int64(i)),
			datum.NewString(fmt.Sprintf("Customer#%06d", i)),
			datum.NewInt(int64(g.rng.Intn(g.rows["nation"]))),
			datum.NewString(segments[g.rng.Intn(len(segments))]),
			datum.NewFloat(float64(g.rng.Intn(1000000))/100 - 1000),
		}); err != nil {
			return err
		}
	}
	for i := 0; i < g.rows["part"]; i++ {
		if err := ins("part", datum.Row{
			datum.NewInt(int64(i)),
			datum.NewString(fmt.Sprintf("part name %05d", i)),
			datum.NewString(fmt.Sprintf("Mfgr#%d", 1+i%5)),
			datum.NewString(brands[g.rng.Intn(len(brands))]),
			datum.NewString(g.partType()),
			datum.NewInt(int64(1 + g.rng.Intn(50))),
			datum.NewString(containers[g.rng.Intn(len(containers))]),
			datum.NewFloat(900 + float64(i%1000)),
		}); err != nil {
			return err
		}
	}
	perPart := g.rows["partsupp"] / maxInt(1, g.rows["part"])
	if perPart < 1 {
		perPart = 1
	}
	for p := 0; p < g.rows["part"]; p++ {
		for k := 0; k < perPart; k++ {
			if err := ins("partsupp", datum.Row{
				datum.NewInt(int64(p)),
				datum.NewInt(int64((p*perPart + k) % maxInt(1, g.rows["supplier"]))),
				datum.NewInt(int64(1 + g.rng.Intn(9999))),
				datum.NewFloat(float64(g.rng.Intn(100000)) / 100),
			}); err != nil {
				return err
			}
		}
	}
	linesPerOrder := g.rows["lineitem"] / maxInt(1, g.rows["orders"])
	if linesPerOrder < 1 {
		linesPerOrder = 1
	}
	for o := 0; o < g.rows["orders"]; o++ {
		if err := ins("orders", g.orderRow(o)); err != nil {
			return err
		}
		nl := 1 + g.rng.Intn(2*linesPerOrder)
		for l := 0; l < nl; l++ {
			if err := ins("lineitem", g.lineitemRow(o, l)); err != nil {
				return err
			}
		}
	}
	g.nextOrderKey = g.rows["orders"]
	for _, table := range []string{"region", "nation", "supplier", "customer", "part", "partsupp", "orders", "lineitem"} {
		if err := db.Analyze(table); err != nil {
			return err
		}
	}
	return nil
}

func (g *Generator) orderRow(key int) datum.Row {
	return datum.Row{
		datum.NewInt(int64(key)),
		datum.NewInt(int64(g.rng.Intn(maxInt(1, g.rows["customer"])))),
		datum.NewString(orderStatus[g.rng.Intn(len(orderStatus))]),
		datum.NewFloat(1000 + float64(g.rng.Intn(400000))/100),
		datum.NewDate(int64(dateEpoch1992 + g.rng.Intn(dateRangeDays))),
		datum.NewString(priorities[g.rng.Intn(len(priorities))]),
		datum.NewInt(int64(g.rng.Intn(2))),
	}
}

func (g *Generator) lineitemRow(orderKey, line int) datum.Row {
	ship := int64(dateEpoch1992 + g.rng.Intn(dateRangeDays))
	return datum.Row{
		datum.NewInt(int64(orderKey)),
		datum.NewInt(int64(line)),
		datum.NewInt(int64(g.rng.Intn(maxInt(1, g.rows["part"])))),
		datum.NewInt(int64(g.rng.Intn(maxInt(1, g.rows["supplier"])))),
		datum.NewFloat(float64(1 + g.rng.Intn(50))),
		datum.NewFloat(float64(g.rng.Intn(10000)) / 100),
		datum.NewFloat(float64(g.rng.Intn(11)) / 100),
		datum.NewFloat(float64(g.rng.Intn(9)) / 100),
		datum.NewString(returnFlags[g.rng.Intn(len(returnFlags))]),
		datum.NewString(lineStatuses[g.rng.Intn(len(lineStatuses))]),
		datum.NewDate(ship),
		datum.NewDate(ship + int64(g.rng.Intn(30))),
		datum.NewDate(ship + int64(g.rng.Intn(30))),
		datum.NewString(shipModes[g.rng.Intn(len(shipModes))]),
	}
}

func (g *Generator) partType() string {
	return typeSyllable[g.rng.Intn(len(typeSyllable))] + " " + typeMetal[g.rng.Intn(len(typeMetal))]
}

// DisruptiveUpdates returns a burst of statements that mostly touch
// lineitem — the Figure 7(c)/(d) scenario. Each statement updates a key
// range of lineitem rows; a few insert fresh orders.
func (g *Generator) DisruptiveUpdates(count int) []string {
	var out []string
	orders := g.rows["orders"]
	for i := 0; i < count; i++ {
		switch i % 4 {
		case 0, 1, 2:
			lo := g.rng.Intn(maxInt(1, orders))
			hi := lo + maxInt(1, orders/6)
			out = append(out, fmt.Sprintf(
				"UPDATE lineitem SET l_quantity = l_quantity + 1, l_extendedprice = l_extendedprice + 1 WHERE l_orderkey >= %d AND l_orderkey < %d", lo, hi))
		default:
			key := g.nextOrderKey
			g.nextOrderKey++
			out = append(out, fmt.Sprintf(
				"INSERT INTO orders VALUES (%d, %d, 'O', %d.0, DATE '1998-08-01', '1-URGENT', 0)",
				key, g.rng.Intn(maxInt(1, g.rows["customer"])), 1000+g.rng.Intn(100000)))
		}
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// RefreshInsert (TPC-H RF1) returns statements inserting `orders` new
// orders, each with 1–3 lineitems — the benchmark's insert refresh
// stream. Keys continue from the loaded data so repeated refreshes never
// collide.
func (g *Generator) RefreshInsert(orders int) []string {
	var out []string
	for i := 0; i < orders; i++ {
		key := g.nextOrderKey
		g.nextOrderKey++
		date := dateStr(dateEpoch1992 + g.rng.Intn(dateRangeDays))
		out = append(out, fmt.Sprintf(
			"INSERT INTO orders VALUES (%d, %d, '%s', %d.0, %s, '%s', %d)",
			key, g.rng.Intn(maxInt(1, g.rows["customer"])),
			orderStatus[g.rng.Intn(len(orderStatus))],
			1000+g.rng.Intn(100000), date,
			priorities[g.rng.Intn(len(priorities))], g.rng.Intn(2)))
		nl := 1 + g.rng.Intn(3)
		for l := 0; l < nl; l++ {
			ship := dateEpoch1992 + g.rng.Intn(dateRangeDays)
			out = append(out, fmt.Sprintf(
				"INSERT INTO lineitem VALUES (%d, %d, %d, %d, %d.0, %d.0, 0.0%d, 0.0%d, '%s', '%s', %s, %s, %s, '%s')",
				key, l,
				g.rng.Intn(maxInt(1, g.rows["part"])),
				g.rng.Intn(maxInt(1, g.rows["supplier"])),
				1+g.rng.Intn(50), g.rng.Intn(10000),
				g.rng.Intn(10), g.rng.Intn(9),
				returnFlags[g.rng.Intn(len(returnFlags))],
				lineStatuses[g.rng.Intn(len(lineStatuses))],
				dateStr(ship), dateStr(ship+g.rng.Intn(30)), dateStr(ship+g.rng.Intn(30)),
				shipModes[g.rng.Intn(len(shipModes))]))
		}
	}
	return out
}

// RefreshDelete (TPC-H RF2) returns statements deleting `orders` order
// keys and their lineitems, drawn from the low end of the key space.
func (g *Generator) RefreshDelete(orders int) []string {
	var out []string
	for i := 0; i < orders; i++ {
		key := g.rng.Intn(maxInt(1, g.rows["orders"]))
		out = append(out,
			fmt.Sprintf("DELETE FROM lineitem WHERE l_orderkey = %d", key),
			fmt.Sprintf("DELETE FROM orders WHERE o_orderkey = %d", key))
	}
	return out
}
