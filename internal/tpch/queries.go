package tpch

import (
	"fmt"
	"time"
)

// dateStr renders days-since-epoch as a SQL DATE literal.
func dateStr(days int) string {
	t := time.Unix(int64(days)*86400, 0).UTC()
	return fmt.Sprintf("DATE '%s'", t.Format("2006-01-02"))
}

func (g *Generator) randDate() string {
	return dateStr(dateEpoch1992 + g.rng.Intn(dateRangeDays-400))
}

// Query returns one parameterized instance of TPC-H query 1..22,
// simplified to the engine's SQL subset. Q4, Q18, and Q22 keep their
// reference subquery shapes (EXISTS, IN, NOT EXISTS) and rely on the
// optimizer's unnesting; the remaining subqueries are flattened into
// joins or replaced by pre-bound constants, and HAVING clauses become
// selective WHERE filters. The join/filter/aggregate shape — which
// drives index selection — is preserved.
func (g *Generator) Query(n int) string {
	switch n {
	case 1: // pricing summary report
		return fmt.Sprintf(`SELECT l_returnflag, l_linestatus, SUM(l_quantity) AS sum_qty,
			SUM(l_extendedprice) AS sum_base, SUM(l_extendedprice * (1 - l_discount)) AS sum_disc,
			AVG(l_quantity) AS avg_qty, AVG(l_extendedprice) AS avg_price, COUNT(*) AS cnt
			FROM lineitem WHERE l_shipdate <= %s
			GROUP BY l_returnflag, l_linestatus ORDER BY l_returnflag, l_linestatus`,
			dateStr(dateEpoch1992+dateRangeDays-60-g.rng.Intn(60)))
	case 2: // minimum cost supplier (flattened)
		return fmt.Sprintf(`SELECT s_acctbal, s_name, n_name, p_partkey, p_mfgr
			FROM part, supplier, partsupp, nation, region
			WHERE p_partkey = ps_partkey AND s_suppkey = ps_suppkey
			AND p_size = %d AND s_nationkey = n_nationkey
			AND n_regionkey = r_regionkey AND r_name = '%s'
			ORDER BY s_acctbal DESC LIMIT 100`,
			1+g.rng.Intn(50), regionNames[g.rng.Intn(len(regionNames))])
	case 3: // shipping priority
		d := g.randDate()
		return fmt.Sprintf(`SELECT l_orderkey, SUM(l_extendedprice * (1 - l_discount)) AS revenue,
			o_orderdate, o_shippriority
			FROM customer, orders, lineitem
			WHERE c_mktsegment = '%s' AND c_custkey = o_custkey AND l_orderkey = o_orderkey
			AND o_orderdate < %s AND l_shipdate > %s
			GROUP BY l_orderkey, o_orderdate, o_shippriority
			ORDER BY revenue DESC LIMIT 10`,
			segments[g.rng.Intn(len(segments))], d, d)
	case 4: // order priority checking
		d := dateEpoch1992 + g.rng.Intn(dateRangeDays-120)
		return fmt.Sprintf(`SELECT o_orderpriority, COUNT(*) AS order_count
			FROM orders
			WHERE o_orderdate >= %s AND o_orderdate < %s
			AND EXISTS (SELECT * FROM lineitem
				WHERE l_orderkey = o_orderkey AND l_commitdate < l_receiptdate)
			GROUP BY o_orderpriority ORDER BY o_orderpriority`,
			dateStr(d), dateStr(d+90))
	case 5: // local supplier volume
		d := dateEpoch1992 + g.rng.Intn(dateRangeDays-400)
		return fmt.Sprintf(`SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue
			FROM customer, orders, lineitem, supplier, nation, region
			WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey
			AND l_suppkey = s_suppkey AND c_nationkey = s_nationkey
			AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey
			AND r_name = '%s' AND o_orderdate >= %s AND o_orderdate < %s
			GROUP BY n_name ORDER BY revenue DESC`,
			regionNames[g.rng.Intn(len(regionNames))], dateStr(d), dateStr(d+365))
	case 6: // forecasting revenue change
		d := dateEpoch1992 + g.rng.Intn(dateRangeDays-400)
		disc := 2 + g.rng.Intn(8)
		return fmt.Sprintf(`SELECT SUM(l_extendedprice * l_discount) AS revenue
			FROM lineitem
			WHERE l_shipdate >= %s AND l_shipdate < %s
			AND l_discount BETWEEN %0.2f AND %0.2f AND l_quantity < %d`,
			dateStr(d), dateStr(d+365), float64(disc-1)/100, float64(disc+1)/100, 24+g.rng.Intn(2))
	case 7: // volume shipping (flattened nation pair)
		n1 := g.rng.Intn(25)
		n2 := (n1 + 1 + g.rng.Intn(24)) % 25
		return fmt.Sprintf(`SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue
			FROM supplier, lineitem, orders, customer, nation
			WHERE s_suppkey = l_suppkey AND o_orderkey = l_orderkey
			AND c_custkey = o_custkey AND s_nationkey = n_nationkey
			AND n_nationkey = %d AND c_nationkey = %d
			AND l_shipdate >= DATE '1995-01-01' AND l_shipdate <= DATE '1996-12-31'
			GROUP BY n_name`,
			n1, n2)
	case 8: // national market share (simplified)
		return fmt.Sprintf(`SELECT o_orderdate, SUM(l_extendedprice * (1 - l_discount)) AS volume
			FROM part, supplier, lineitem, orders, customer, nation, region
			WHERE p_partkey = l_partkey AND s_suppkey = l_suppkey
			AND l_orderkey = o_orderkey AND o_custkey = c_custkey
			AND c_nationkey = n_nationkey AND n_regionkey = r_regionkey
			AND r_name = '%s' AND o_orderdate >= DATE '1995-01-01'
			AND o_orderdate <= DATE '1996-12-31' AND p_type = '%s'
			GROUP BY o_orderdate ORDER BY o_orderdate LIMIT 50`,
			regionNames[g.rng.Intn(len(regionNames))], g.partType())
	case 9: // product type profit (LIKE replaced by brand equality)
		return fmt.Sprintf(`SELECT n_name, SUM(l_extendedprice * (1 - l_discount) - ps_supplycost * l_quantity) AS profit
			FROM part, supplier, lineitem, partsupp, orders, nation
			WHERE s_suppkey = l_suppkey AND ps_suppkey = l_suppkey
			AND ps_partkey = l_partkey AND p_partkey = l_partkey
			AND o_orderkey = l_orderkey AND s_nationkey = n_nationkey
			AND p_brand = '%s'
			GROUP BY n_name ORDER BY n_name`,
			brands[g.rng.Intn(len(brands))])
	case 10: // returned item reporting
		d := dateEpoch1992 + g.rng.Intn(dateRangeDays-120)
		return fmt.Sprintf(`SELECT c_custkey, c_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue, n_name
			FROM customer, orders, lineitem, nation
			WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey
			AND o_orderdate >= %s AND o_orderdate < %s
			AND l_returnflag = 'R' AND c_nationkey = n_nationkey
			GROUP BY c_custkey, c_name, n_name ORDER BY revenue DESC LIMIT 20`,
			dateStr(d), dateStr(d+90))
	case 11: // important stock identification (HAVING → floor constant)
		return fmt.Sprintf(`SELECT ps_partkey, SUM(ps_supplycost * ps_availqty) AS value
			FROM partsupp, supplier, nation
			WHERE ps_suppkey = s_suppkey AND s_nationkey = n_nationkey AND n_nationkey = %d
			GROUP BY ps_partkey ORDER BY value DESC LIMIT 50`,
			g.rng.Intn(25))
	case 12: // shipping modes and order priority
		d := dateEpoch1992 + g.rng.Intn(dateRangeDays-400)
		return fmt.Sprintf(`SELECT l_shipmode, COUNT(*) AS cnt
			FROM orders, lineitem
			WHERE o_orderkey = l_orderkey AND l_shipmode IN ('%s', '%s')
			AND l_commitdate < l_receiptdate AND l_shipdate < l_commitdate
			AND l_receiptdate >= %s AND l_receiptdate < %s
			GROUP BY l_shipmode ORDER BY l_shipmode`,
			shipModes[g.rng.Intn(len(shipModes))], shipModes[g.rng.Intn(len(shipModes))],
			dateStr(d), dateStr(d+365))
	case 13: // customer distribution (outer join approximated by inner)
		return `SELECT c_custkey, COUNT(*) AS c_count
			FROM customer, orders
			WHERE c_custkey = o_custkey
			GROUP BY c_custkey ORDER BY c_count DESC LIMIT 50`
	case 14: // promotion effect
		d := dateEpoch1992 + g.rng.Intn(dateRangeDays-60)
		return fmt.Sprintf(`SELECT SUM(l_extendedprice * (1 - l_discount)) AS promo_revenue, COUNT(*) AS cnt
			FROM lineitem, part
			WHERE l_partkey = p_partkey AND l_shipdate >= %s AND l_shipdate < %s`,
			dateStr(d), dateStr(d+30))
	case 15: // top supplier (view flattened)
		d := dateEpoch1992 + g.rng.Intn(dateRangeDays-120)
		return fmt.Sprintf(`SELECT l_suppkey, SUM(l_extendedprice * (1 - l_discount)) AS total_revenue
			FROM lineitem WHERE l_shipdate >= %s AND l_shipdate < %s
			GROUP BY l_suppkey ORDER BY total_revenue DESC LIMIT 10`,
			dateStr(d), dateStr(d+90))
	case 16: // parts/supplier relationship
		return fmt.Sprintf(`SELECT p_brand, p_type, p_size, COUNT(*) AS supplier_cnt
			FROM partsupp, part
			WHERE p_partkey = ps_partkey AND p_brand <> '%s' AND p_size IN (%d, %d, %d)
			GROUP BY p_brand, p_type, p_size ORDER BY supplier_cnt DESC LIMIT 40`,
			brands[g.rng.Intn(len(brands))], 1+g.rng.Intn(50), 1+g.rng.Intn(50), 1+g.rng.Intn(50))
	case 17: // small-quantity-order revenue (avg subquery → constant)
		return fmt.Sprintf(`SELECT SUM(l_extendedprice) AS total, AVG(l_quantity) AS avg_qty
			FROM lineitem, part
			WHERE p_partkey = l_partkey AND p_brand = '%s' AND p_container = '%s'
			AND l_quantity < %d`,
			brands[g.rng.Intn(len(brands))], containers[g.rng.Intn(len(containers))], 3+g.rng.Intn(8))
	case 18: // large volume customer (HAVING SUM → per-row quantity filter)
		return fmt.Sprintf(`SELECT c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice, SUM(l_quantity) AS total_qty
			FROM customer, orders, lineitem
			WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey
			AND o_orderkey IN (SELECT l_orderkey FROM lineitem WHERE l_quantity > %d)
			GROUP BY c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice
			ORDER BY o_totalprice DESC LIMIT 20`,
			42+g.rng.Intn(8))
	case 19: // discounted revenue (OR-of-ANDs simplified to one arm)
		return fmt.Sprintf(`SELECT SUM(l_extendedprice * (1 - l_discount)) AS revenue
			FROM lineitem, part
			WHERE p_partkey = l_partkey AND p_brand = '%s'
			AND l_quantity >= %d AND l_quantity <= %d AND p_size BETWEEN 1 AND %d
			AND l_shipmode IN ('AIR', 'REG AIR')`,
			brands[g.rng.Intn(len(brands))], 1+g.rng.Intn(10), 11+g.rng.Intn(10), 5+g.rng.Intn(10))
	case 20: // potential part promotion (flattened)
		return fmt.Sprintf(`SELECT s_name, s_suppkey
			FROM supplier, nation, partsupp
			WHERE s_suppkey = ps_suppkey AND s_nationkey = n_nationkey
			AND n_nationkey = %d AND ps_availqty > %d
			ORDER BY s_name LIMIT 20`,
			g.rng.Intn(25), 5000+g.rng.Intn(3000))
	case 21: // suppliers who kept orders waiting (flattened)
		return fmt.Sprintf(`SELECT s_name, COUNT(*) AS numwait
			FROM supplier, lineitem, orders, nation
			WHERE s_suppkey = l_suppkey AND o_orderkey = l_orderkey
			AND o_orderstatus = 'F' AND l_receiptdate > l_commitdate
			AND s_nationkey = n_nationkey AND n_nationkey = %d
			GROUP BY s_name ORDER BY numwait DESC LIMIT 20`,
			g.rng.Intn(25))
	case 22: // global sales opportunity (country-code prefix → nation set)
		return fmt.Sprintf(`SELECT c_nationkey, COUNT(*) AS numcust, SUM(c_acctbal) AS totacctbal
			FROM customer
			WHERE c_nationkey IN (%d, %d, %d) AND c_acctbal > %d
			AND NOT EXISTS (SELECT * FROM orders WHERE o_custkey = c_custkey)
			GROUP BY c_nationkey ORDER BY c_nationkey`,
			g.rng.Intn(25), g.rng.Intn(25), g.rng.Intn(25), g.rng.Intn(3000))
	}
	panic(fmt.Sprintf("tpch: query %d out of range", n))
}

// Batch returns one random permutation of all 22 queries with fresh
// parameters — the paper's workload unit for Section 4.2.
func (g *Generator) Batch() []string {
	perm := g.rng.Perm(22)
	out := make([]string, 22)
	for i, p := range perm {
		out[i] = g.Query(p + 1)
	}
	return out
}

// Batches concatenates n random batches.
func (g *Generator) Batches(n int) [][]string {
	out := make([][]string, n)
	for i := range out {
		out[i] = g.Batch()
	}
	return out
}
