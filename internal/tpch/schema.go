// Package tpch provides the TPC-H-like benchmark substrate the paper's
// Section 4.2 experiments run on: the eight-table schema, a
// deterministic scaled data generator, and parameterized templates for
// all 22 queries, simplified to the engine's SQL subset (single-block
// queries; subqueries flattened into joins or pre-bound constants;
// join/filter/aggregate shape preserved). Absolute TPC-H numbers are not
// the point — the workload's index-friendliness and update patterns are.
package tpch

import (
	"fmt"

	"onlinetuner/internal/engine"
)

// ddl is the schema, scaled-down TPC-H: every table keeps the columns the
// 22 query templates touch.
var ddl = []string{
	`CREATE TABLE region (
		r_regionkey INT, r_name VARCHAR(16),
		PRIMARY KEY (r_regionkey))`,
	`CREATE TABLE nation (
		n_nationkey INT, n_name VARCHAR(16), n_regionkey INT,
		PRIMARY KEY (n_nationkey))`,
	`CREATE TABLE supplier (
		s_suppkey INT, s_name VARCHAR(24), s_nationkey INT, s_acctbal FLOAT,
		PRIMARY KEY (s_suppkey))`,
	`CREATE TABLE customer (
		c_custkey INT, c_name VARCHAR(24), c_nationkey INT,
		c_mktsegment VARCHAR(12), c_acctbal FLOAT,
		PRIMARY KEY (c_custkey))`,
	`CREATE TABLE part (
		p_partkey INT, p_name VARCHAR(32), p_mfgr VARCHAR(16),
		p_brand VARCHAR(12), p_type VARCHAR(24), p_size INT,
		p_container VARCHAR(12), p_retailprice FLOAT,
		PRIMARY KEY (p_partkey))`,
	`CREATE TABLE partsupp (
		ps_partkey INT, ps_suppkey INT, ps_availqty INT, ps_supplycost FLOAT,
		PRIMARY KEY (ps_partkey, ps_suppkey))`,
	`CREATE TABLE orders (
		o_orderkey INT, o_custkey INT, o_orderstatus VARCHAR(4),
		o_totalprice FLOAT, o_orderdate DATE, o_orderpriority VARCHAR(16),
		o_shippriority INT,
		PRIMARY KEY (o_orderkey))`,
	`CREATE TABLE lineitem (
		l_orderkey INT, l_linenumber INT, l_partkey INT, l_suppkey INT,
		l_quantity FLOAT, l_extendedprice FLOAT, l_discount FLOAT, l_tax FLOAT,
		l_returnflag VARCHAR(4), l_linestatus VARCHAR(4),
		l_shipdate DATE, l_commitdate DATE, l_receiptdate DATE,
		l_shipmode VARCHAR(12),
		PRIMARY KEY (l_orderkey, l_linenumber))`,
}

// CreateSchema installs the TPC-H tables into a database.
func CreateSchema(db *engine.DB) error {
	for _, stmt := range ddl {
		if _, _, err := db.Exec(stmt); err != nil {
			return fmt.Errorf("tpch: %w", err)
		}
	}
	return nil
}

// Scale controls generated table cardinalities. Scale 1.0 approximates
// TPC-H SF≈0.001 (lineitem ≈ 6000 rows) — big enough that index choices
// matter under the cost model, small enough for in-process experiments.
type Scale float64

// Rows returns the per-table row counts at this scale.
func (s Scale) Rows() map[string]int {
	f := float64(s)
	n := func(base float64) int {
		v := int(base * f)
		if v < 1 {
			v = 1
		}
		return v
	}
	return map[string]int{
		"region":   5,
		"nation":   25,
		"supplier": n(10),
		"customer": n(150),
		"part":     n(200),
		"partsupp": n(800),
		"orders":   n(1500),
		"lineitem": n(6000),
	}
}
