package tpch

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"onlinetuner/internal/core"
	"onlinetuner/internal/datum"
	"onlinetuner/internal/engine"
)

// resultFingerprint canonicalizes a result set: sorted rendered rows, so
// plans that produce rows in different orders (hash vs merge vs index
// order) still compare equal when the query imposes no ORDER BY.
func resultFingerprint(db *engine.DB, q string, t *testing.T) string {
	t.Helper()
	rs, err := db.Query(q)
	if err != nil {
		t.Fatalf("%v\n%s", err, q)
	}
	lines := make([]string, len(rs.Rows))
	for i, r := range rs.Rows {
		parts := make([]string, len(r))
		for j, d := range r {
			// Float aggregates accumulate in plan-dependent order; round
			// to 9 significant digits so last-ulp associativity noise
			// does not read as a divergence.
			if d.Kind() == datum.KFloat {
				parts[j] = fmt.Sprintf("%.9g", d.Float())
			} else {
				parts[j] = d.String()
			}
		}
		lines[i] = strings.Join(parts, "|")
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// TestResultsInvariantUnderPhysicalDesign is the core correctness
// invariant of the whole system: whatever indexes the tuner creates or
// drops, every query's result set is unchanged. It runs all 22 TPC-H
// templates on an untuned database, lets OnlinePT tune aggressively over
// several batches, and re-runs the identical statements.
func TestResultsInvariantUnderPhysicalDesign(t *testing.T) {
	mk := func() *engine.DB {
		db := engine.Open()
		g := NewGenerator(0.2, 11)
		if err := g.Load(db); err != nil {
			t.Fatal(err)
		}
		return db
	}
	// Fixed statements (identical parameters on both sides).
	gen := NewGenerator(0.2, 99)
	var queries []string
	for n := 1; n <= 22; n++ {
		queries = append(queries, gen.Query(n))
	}

	baseline := mk()
	var want []string
	for _, q := range queries {
		want = append(want, resultFingerprint(baseline, q, t))
	}

	tuned := mk()
	opts := core.DefaultOptions()
	opts.CooldownQueries = 1
	tn := core.Attach(tuned, opts)
	warm := NewGenerator(0.2, 7)
	for b := 0; b < 6; b++ {
		for _, q := range warm.Batch() {
			if _, _, err := tuned.Exec(q); err != nil {
				t.Fatalf("tuning batch: %v", err)
			}
		}
	}
	if len(tn.Events()) == 0 {
		t.Fatal("tuner made no changes; the invariance test would be vacuous")
	}
	for i, q := range queries {
		if got := resultFingerprint(tuned, q, t); got != want[i] {
			t.Errorf("query %d results changed under tuned physical design:\n%s", i+1, q)
		}
	}
}

// TestResultsInvariantWithDML interleaves identical DML on both
// databases (one tuned, one not) and checks that index maintenance keeps
// results aligned through inserts and updates.
func TestResultsInvariantWithDML(t *testing.T) {
	mk := func(tune bool) *engine.DB {
		db := engine.Open()
		g := NewGenerator(0.15, 5)
		if err := g.Load(db); err != nil {
			t.Fatal(err)
		}
		if tune {
			opts := core.DefaultOptions()
			opts.CooldownQueries = 1
			core.Attach(db, opts)
		}
		return db
	}
	plain := mk(false)
	tuned := mk(true)

	gen := NewGenerator(0.15, 77)
	var stmts []string
	for b := 0; b < 4; b++ {
		stmts = append(stmts, gen.Batch()...)
		stmts = append(stmts, gen.DisruptiveUpdates(6)...)
	}
	for _, s := range stmts {
		if _, _, err := plain.Exec(s); err != nil {
			t.Fatalf("plain: %v", err)
		}
		if _, _, err := tuned.Exec(s); err != nil {
			t.Fatalf("tuned: %v", err)
		}
	}
	check := NewGenerator(0.15, 123)
	for n := 1; n <= 22; n++ {
		q := check.Query(n)
		if resultFingerprint(plain, q, t) != resultFingerprint(tuned, q, t) {
			t.Errorf("Q%d diverged after DML under tuning:\n%s", n, q)
		}
	}
	// Heap row counts must agree exactly.
	for _, table := range []string{"orders", "lineitem"} {
		if a, b := plain.Mgr.Heap(table).Len(), tuned.Mgr.Heap(table).Len(); a != b {
			t.Errorf("%s rows diverged: %d vs %d", table, a, b)
		}
	}
	_ = fmt.Sprintf
}
