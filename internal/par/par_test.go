package par

import (
	"math/rand"
	"slices"
	"testing"
)

func TestPoolSlots(t *testing.T) {
	p := NewPool(4)
	if p.Workers() != 4 {
		t.Fatalf("Workers() = %d, want 4", p.Workers())
	}
	if got := p.TryAcquire(10); got != 3 {
		t.Fatalf("TryAcquire(10) = %d, want 3 (workers-1)", got)
	}
	if got := p.TryAcquire(1); got != 0 {
		t.Fatalf("TryAcquire on drained pool = %d, want 0", got)
	}
	p.Release(3)
	if got := p.TryAcquire(2); got != 2 {
		t.Fatalf("TryAcquire(2) after release = %d, want 2", got)
	}
	p.Release(2)
}

func TestPoolSequential(t *testing.T) {
	for _, w := range []int{0, 1} {
		p := NewPool(w)
		if got := p.TryAcquire(8); got != 0 {
			t.Fatalf("NewPool(%d).TryAcquire = %d, want 0", w, got)
		}
	}
	var nilPool *Pool
	if nilPool.Workers() != 1 {
		t.Fatalf("nil pool Workers() = %d, want 1", nilPool.Workers())
	}
	if nilPool.TryAcquire(4) != 0 {
		t.Fatal("nil pool TryAcquire should return 0")
	}
}

// kv carries a payload so stability violations are observable: elements
// comparing equal on k must keep their original ord order.
type kv struct {
	k   int
	ord int
}

func TestSortStableFuncMatchesSequential(t *testing.T) {
	cmp := func(a, b kv) int { return a.k - b.k }
	for _, n := range []int{0, 1, 7, 100, 2048, 4096, 10_000, 65_537} {
		rng := rand.New(rand.NewSource(int64(n)))
		base := make([]kv, n)
		for i := range base {
			// Few distinct keys → many ties → stability is exercised.
			base[i] = kv{k: rng.Intn(17), ord: i}
		}
		want := slices.Clone(base)
		slices.SortStableFunc(want, cmp)
		for _, workers := range []int{1, 2, 3, 4, 8} {
			got := slices.Clone(base)
			SortStableFunc(got, cmp, workers)
			if !slices.Equal(got, want) {
				t.Fatalf("n=%d workers=%d: parallel stable sort differs from sequential", n, workers)
			}
		}
	}
}

// TestSortStablePooledBudget proves the pooled sort draws from — and
// returns to — the pool's slot budget, sorts correctly when the pool is
// drained or nil, and never exceeds the budget.
func TestSortStablePooledBudget(t *testing.T) {
	cmp := func(a, b kv) int { return a.k - b.k }
	rng := rand.New(rand.NewSource(1))
	base := make([]kv, 10_000)
	for i := range base {
		base[i] = kv{k: rng.Intn(17), ord: i}
	}
	want := slices.Clone(base)
	slices.SortStableFunc(want, cmp)

	p := NewPool(4)
	got := slices.Clone(base)
	SortStablePooled(p, got, cmp)
	if !slices.Equal(got, want) {
		t.Fatal("pooled sort differs from sequential")
	}
	if free := p.TryAcquire(10); free != 3 {
		t.Fatalf("slots free after pooled sort = %d, want 3 (sort leaked slots)", free)
	}
	// Pool fully drained: the sort must degrade to sequential, not block.
	got = slices.Clone(base)
	SortStablePooled(p, got, cmp)
	if !slices.Equal(got, want) {
		t.Fatal("pooled sort on drained pool differs from sequential")
	}
	p.Release(3)

	var nilPool *Pool
	got = slices.Clone(base)
	SortStablePooled(nilPool, got, cmp)
	if !slices.Equal(got, want) {
		t.Fatal("pooled sort on nil pool differs from sequential")
	}
}

func TestSortStableFuncAlreadySortedAndReversed(t *testing.T) {
	cmp := func(a, b kv) int { return a.k - b.k }
	n := 50_000
	asc := make([]kv, n)
	desc := make([]kv, n)
	for i := range asc {
		asc[i] = kv{k: i, ord: i}
		desc[i] = kv{k: n - i, ord: i}
	}
	for _, base := range [][]kv{asc, desc} {
		want := slices.Clone(base)
		slices.SortStableFunc(want, cmp)
		got := slices.Clone(base)
		SortStableFunc(got, cmp, 4)
		if !slices.Equal(got, want) {
			t.Fatal("parallel sort differs on monotone input")
		}
	}
}
