// Package par provides the two process-wide parallelism primitives the
// engine shares: a bounded worker-slot pool and a stable parallel merge
// sort. Both are deliberately small — the morsel scheduler in the
// executor and the index-build sort in storage layer their own policy on
// top, and byte-identical output across worker counts is part of the
// contract here, not an afterthought.
package par

import (
	"runtime"
	"slices"
	"sync"
)

// Pool bounds the number of extra goroutines intra-query parallelism may
// spawn. A pool of W workers hands out W-1 slots: the calling goroutine
// is always worker zero, so a statement never blocks waiting for a slot
// — TryAcquire is non-blocking and a statement that gets no slots simply
// runs sequentially inline. That property is what makes the pool safe to
// consult from arbitrarily nested operators: there is no lock ordering
// and no possibility of pool-induced deadlock.
type Pool struct {
	workers int
	extra   chan struct{}
}

// NewPool returns a pool sized to workers; workers <= 0 selects
// runtime.GOMAXPROCS(0).
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{workers: workers}
	if workers > 1 {
		p.extra = make(chan struct{}, workers-1)
		for i := 0; i < workers-1; i++ {
			p.extra <- struct{}{}
		}
	}
	return p
}

// Workers reports the configured worker count (including the caller).
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// TryAcquire claims up to max extra worker slots without blocking and
// returns how many it got (possibly zero). The caller must Release the
// same number.
func (p *Pool) TryAcquire(max int) int {
	if p == nil || p.extra == nil || max <= 0 {
		return 0
	}
	got := 0
	for got < max {
		select {
		case <-p.extra:
			got++
		default:
			return got
		}
	}
	return got
}

// Release returns n previously acquired slots to the pool.
func (p *Pool) Release(n int) {
	for i := 0; i < n; i++ {
		p.extra <- struct{}{}
	}
}

// SortStablePooled sorts like SortStableFunc but draws its extra workers
// from p's slot budget: up to Workers()-1 extra slots are acquired
// non-blocking for the duration of the sort, so concurrent sorts, morsel
// regions, and background index builds share one process-wide bound
// instead of each assuming a full worker set. Zero available slots — or
// a nil pool — degrade to a sequential sort; the output is identical
// either way.
func SortStablePooled[T any](p *Pool, s []T, cmp func(a, b T) int) {
	got := p.TryAcquire(p.Workers() - 1)
	defer p.Release(got)
	SortStableFunc(s, cmp, got+1)
}

// sortMinChunk is the smallest slice a sort worker is worth spawning
// for; below it the goroutine and merge overhead dominates.
const sortMinChunk = 2048

// SortStableFunc sorts s stably by cmp using up to workers goroutines
// (including the caller). The output is identical to
// slices.SortStableFunc(s, cmp) for every worker count: the slice is cut
// into contiguous chunks, each chunk is sorted stably, and adjacent runs
// are merged left-biased (left element wins ties), which preserves the
// original relative order of equal elements exactly as a sequential
// stable sort would.
func SortStableFunc[T any](s []T, cmp func(a, b T) int, workers int) {
	n := len(s)
	if workers < 1 {
		workers = 1
	}
	chunks := workers
	if max := n / sortMinChunk; chunks > max {
		chunks = max
	}
	if chunks < 2 {
		slices.SortStableFunc(s, cmp)
		return
	}
	// Cut into equal contiguous chunks and sort each in its own
	// goroutine. Chunk boundaries depend only on len(s) and the chunk
	// count; the chunk count is capped by data size so small inputs sort
	// identically (and cheaply) at any worker setting.
	bounds := make([]int, chunks+1)
	for i := 0; i <= chunks; i++ {
		bounds[i] = i * n / chunks
	}
	var wg sync.WaitGroup
	for i := 0; i < chunks; i++ {
		lo, hi := bounds[i], bounds[i+1]
		wg.Add(1)
		go func() {
			defer wg.Done()
			slices.SortStableFunc(s[lo:hi], cmp)
		}()
	}
	wg.Wait()
	// Pairwise left-biased merges, halving the run count each round.
	// Merging adjacent runs keeps equal elements in original order:
	// every element of the left run precedes every element of the right
	// run in the input.
	tmp := make([]T, n)
	src, dst := s, tmp
	for len(bounds) > 2 {
		nb := make([]int, 0, len(bounds)/2+2)
		var wg sync.WaitGroup
		for i := 0; i+2 < len(bounds); i += 2 {
			lo, mid, hi := bounds[i], bounds[i+1], bounds[i+2]
			nb = append(nb, lo)
			wg.Add(1)
			go func() {
				defer wg.Done()
				mergeInto(dst[lo:hi], src[lo:mid], src[mid:hi], cmp)
			}()
		}
		if len(bounds)%2 == 0 {
			// Odd run count: the last run carries over unmerged.
			lo, hi := bounds[len(bounds)-2], bounds[len(bounds)-1]
			nb = append(nb, lo)
			copy(dst[lo:hi], src[lo:hi])
		}
		nb = append(nb, n)
		wg.Wait()
		bounds = nb
		src, dst = dst, src
	}
	if &src[0] != &s[0] {
		copy(s, src)
	}
}

// mergeInto merges sorted runs a and b into out, left-biased: on ties
// the element from a is emitted first, preserving stability.
func mergeInto[T any](out, a, b []T, cmp func(x, y T) int) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if cmp(a[i], b[j]) <= 0 {
			out[k] = a[i]
			i++
		} else {
			out[k] = b[j]
			j++
		}
		k++
	}
	copy(out[k:], a[i:])
	copy(out[k+len(a)-i:], b[j:])
}
