// Package wal implements the write-ahead log behind the engine's
// durable mode: length-prefixed CRC32C-checksummed logical records, a
// group-commit writer that batches concurrent statement commits into one
// fsync, segment files with checkpoint-driven truncation, and the
// snapshot codec checkpoints use.
//
// The log is logical and commit-time: a statement's effects are applied
// to the in-memory structures first, and at statement success its
// buffered records plus a Commit marker are appended as one contiguous
// chunk. A chunk that never gained a durable Commit is invisible to
// recovery, which matches the executor's statement-level rollback: an
// unacknowledged statement leaves neither memory nor log effects.
package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"onlinetuner/internal/fault"
	"onlinetuner/internal/obs"
)

// SyncPolicy controls when appended records are fsynced.
type SyncPolicy uint8

const (
	// SyncGroup (the default) batches concurrent commits: one committer
	// becomes the flush leader and a single fsync covers every chunk
	// written while the previous flush was in flight.
	SyncGroup SyncPolicy = iota
	// SyncAlways fsyncs inside each Append with the writer lock held —
	// no batching, one fsync per commit.
	SyncAlways
	// SyncNone writes records to the file but never fsyncs. Commit
	// acknowledgements carry no durability; for tests and bulk loads.
	SyncNone
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncGroup:
		return "group"
	case SyncAlways:
		return "always"
	case SyncNone:
		return "none"
	}
	return fmt.Sprintf("policy(%d)", uint8(p))
}

// ParseSyncPolicy maps a policy name ("always", "group", "none") to its
// value.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(s) {
	case "group":
		return SyncGroup, nil
	case "always":
		return SyncAlways, nil
	case "none":
		return SyncNone, nil
	}
	return SyncGroup, fmt.Errorf("wal: unknown sync policy %q", s)
}

// ErrCrashed is returned by appends after Crash() simulated a hard stop.
var ErrCrashed = errors.New("wal: writer crashed")

// ErrClosed is returned by appends after a clean Close.
var ErrClosed = errors.New("wal: writer closed")

// DefaultSegmentBytes is the segment-roll threshold when Options leaves
// it zero.
const DefaultSegmentBytes = 64 << 20

// SegmentName returns the file name of segment i.
func SegmentName(i int) string { return fmt.Sprintf("wal-%08d.log", i) }

// SnapshotName returns the file name of the checkpoint snapshot taken at
// sequence seq.
func SnapshotName(seq uint64) string { return fmt.Sprintf("ckpt-%016x.snap", seq) }

// parseSegmentName extracts the index from a segment file name.
func parseSegmentName(name string) (int, bool) {
	var i int
	if n, err := fmt.Sscanf(name, "wal-%08d.log", &i); n == 1 && err == nil {
		return i, true
	}
	return 0, false
}

// parseSnapshotName extracts the sequence from a snapshot file name.
func parseSnapshotName(name string) (uint64, bool) {
	var s uint64
	if n, err := fmt.Sscanf(name, "ckpt-%016x.snap", &s); n == 1 && err == nil {
		return s, true
	}
	return 0, false
}

// Options configures a Writer.
type Options struct {
	Dir string
	// Policy is the initial sync policy (changeable with SetPolicy).
	Policy SyncPolicy
	// SegmentBytes rolls to a fresh segment once the current one exceeds
	// this size; 0 means DefaultSegmentBytes.
	SegmentBytes int64
	// StartSeq seeds the commit sequence — recovery passes the last
	// durable sequence so new commits continue the numbering.
	StartSeq uint64
	// StartSegment is the index of the first segment this writer
	// creates; recovery passes one past the highest existing segment.
	StartSegment int
}

// Writer is the group-commit WAL appender. It is safe for concurrent
// use; one Writer owns the log directory's active segment.
type Writer struct {
	dir      string
	segBytes int64
	faults   atomic.Pointer[fault.Injector]

	mu       sync.Mutex
	cond     *sync.Cond
	f        *os.File
	seg      int
	written  int64 // bytes written to the current segment
	flushed  int64 // bytes fsynced
	flushing bool  // a group-commit leader is mid-fsync (lock released)
	policy   SyncPolicy
	seq      uint64
	err      error // sticky fatal: crash, close, or unrecoverable I/O
	// truncEpoch counts tail discards (failed flushes). A waiter whose
	// chunk was written before a discard and not yet flushed lost its
	// bytes; it detects that by the epoch moving and fails with
	// truncCause.
	truncEpoch uint64
	truncCause error

	appends atomic.Int64
	fsyncs  atomic.Int64
	// Optional mirrored metrics (wal.appends / wal.fsyncs).
	mAppends atomic.Pointer[obs.Counter]
	mFsyncs  atomic.Pointer[obs.Counter]
}

// OpenWriter creates the writer's first segment file and returns the
// writer. The directory must exist.
func OpenWriter(o Options) (*Writer, error) {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	w := &Writer{
		dir:      o.Dir,
		segBytes: o.SegmentBytes,
		policy:   o.Policy,
		seq:      o.StartSeq,
		seg:      o.StartSegment,
	}
	w.cond = sync.NewCond(&w.mu)
	f, err := createSegment(o.Dir, o.StartSegment)
	if err != nil {
		return nil, err
	}
	w.f = f
	return w, nil
}

func createSegment(dir string, i int) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, SegmentName(i)), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: create segment: %w", err)
	}
	syncDir(dir)
	return f, nil
}

// syncDir fsyncs a directory so file creations and renames inside it are
// durable. Best-effort: some filesystems refuse directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}

// SetFaults installs (or removes) the fault-injection layer consulted at
// the WALAppend and WALFsync sites.
func (w *Writer) SetFaults(inj *fault.Injector) { w.faults.Store(inj) }

// SetMetrics mirrors append and fsync counts into observability
// counters (either may be nil).
func (w *Writer) SetMetrics(appends, fsyncs *obs.Counter) {
	w.mAppends.Store(appends)
	w.mFsyncs.Store(fsyncs)
}

// SetPolicy changes the sync policy. It affects appends that start after
// the call.
func (w *Writer) SetPolicy(p SyncPolicy) {
	w.mu.Lock()
	w.policy = p
	w.mu.Unlock()
}

// Policy returns the current sync policy.
func (w *Writer) Policy() SyncPolicy {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.policy
}

// Seq returns the last committed sequence number.
func (w *Writer) Seq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// Segment returns the index of the segment currently being written.
func (w *Writer) Segment() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seg
}

// Appends returns the number of committed batches appended.
func (w *Writer) Appends() int64 { return w.appends.Load() }

// Fsyncs returns the number of fsyncs performed.
func (w *Writer) Fsyncs() int64 { return w.fsyncs.Load() }

// Append writes recs plus a Commit record as one contiguous chunk and,
// per the sync policy, waits until the chunk is durable. It returns the
// batch's commit sequence. A nil error is the durability acknowledgement
// (under SyncNone it only means the chunk reached the file).
//
// On failure nothing of the batch survives in the durable log: a failed
// flush truncates the file back to the last durable offset, so a
// statement that was rolled back in memory can never resurface at
// recovery.
func (w *Writer) Append(recs []*Record) (uint64, error) {
	if err := w.faults.Load().Hit(fault.WALAppend); err != nil {
		return 0, err
	}
	var buf []byte
	for _, r := range recs {
		buf = AppendRecord(buf, r)
	}

	w.mu.Lock()
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return 0, err
	}
	// Roll before assigning the sequence: rollLocked may release the
	// lock while waiting out an in-flight flush, and the sequence must
	// be claimed and written under one continuous critical section so a
	// failed write can safely un-claim it.
	const commitMax = 32 // framed Commit record upper bound
	if w.written > 0 && w.written+int64(len(buf))+commitMax > w.segBytes {
		if err := w.rollLocked(); err != nil {
			w.mu.Unlock()
			return 0, err
		}
		if w.err != nil {
			err := w.err
			w.mu.Unlock()
			return 0, err
		}
	}
	w.seq++
	seq := w.seq
	buf = AppendRecord(buf, &Record{Kind: KindCommit, Seq: seq})
	if err := w.writeLocked(buf); err != nil {
		w.seq--
		w.mu.Unlock()
		return 0, err
	}
	end := w.written
	epoch := w.truncEpoch
	seg := w.seg
	w.appends.Add(1)
	if c := w.mAppends.Load(); c != nil {
		c.Inc()
	}

	var err error
	switch w.policy {
	case SyncNone:
		// Written, not durable; nothing to wait for.
	case SyncAlways:
		// One fsync per commit, lock held: no other committer can share
		// this flush.
		err = w.fsyncHoldingLocked(end, epoch, seg)
	default: // SyncGroup
		err = w.awaitDurableLocked(end, epoch, seg)
	}
	w.mu.Unlock()
	if err != nil {
		return 0, err
	}
	return seq, nil
}

// writeLocked appends buf to the current segment, keeping the file and
// the written counter in agreement even when the write fails midway.
func (w *Writer) writeLocked(buf []byte) error {
	n, err := w.f.Write(buf)
	if err != nil {
		if n > 0 {
			// Best-effort erase of the partial chunk; if that fails the
			// writer is done, but recovery handles the torn tail anyway.
			if terr := w.truncateToLocked(w.written); terr != nil {
				w.err = terr
			}
		}
		return fmt.Errorf("wal: append: %w", err)
	}
	w.written += int64(len(buf))
	return nil
}

func (w *Writer) truncateToLocked(off int64) error {
	if err := w.f.Truncate(off); err != nil {
		return fmt.Errorf("wal: truncate to %d: %w", off, err)
	}
	if _, err := w.f.Seek(off, 0); err != nil {
		return fmt.Errorf("wal: seek to %d: %w", off, err)
	}
	return nil
}

// fsyncHoldingLocked makes end durable with the writer lock held
// throughout (SyncAlways). If a group-commit leader from a previous
// policy is mid-flight it waits for it first. end is relative to
// segment seg: if the writer rolled past that segment while we waited,
// the roll already fsynced (or discarded, via the truncation epoch) the
// chunk, and end must not be compared against the new segment's
// counters.
func (w *Writer) fsyncHoldingLocked(end int64, epoch uint64, seg int) error {
	for w.flushing {
		w.cond.Wait()
	}
	if w.err != nil {
		return w.err
	}
	if w.truncEpoch != epoch {
		return w.truncCause
	}
	if w.seg != seg {
		// Rolled past our segment: rollLocked fsyncs the whole tail
		// (any policy) before switching, so the chunk is durable.
		return nil
	}
	if w.flushed >= end {
		return nil
	}
	target := w.written
	ferr := w.faults.Load().Hit(fault.WALFsync)
	if ferr == nil {
		ferr = w.f.Sync()
	}
	if ferr != nil {
		w.discardTailLocked(ferr)
		return ferr
	}
	w.flushed = target
	w.fsyncs.Add(1)
	if c := w.mFsyncs.Load(); c != nil {
		c.Inc()
	}
	w.cond.Broadcast()
	return nil
}

// awaitDurableLocked blocks until end is fsynced (SyncGroup). The first
// waiter that finds no flush in flight becomes the leader: it syncs
// everything written so far in one fsync, releasing the lock for the
// duration so later committers can write (and batch onto the next
// flush). end and epoch are relative to segment seg: a waiter that
// wakes to find the writer rolled past its segment must not compare end
// against the fresh segment's reset counters — the roll made its chunk
// durable (rollLocked fsyncs the tail under every policy) or discarded
// it (truncation epoch moved), and both are decided before the roll.
func (w *Writer) awaitDurableLocked(end int64, epoch uint64, seg int) error {
	for {
		if w.err != nil {
			return w.err
		}
		if w.truncEpoch != epoch {
			// A failed flush discarded the unflushed tail — including
			// this chunk, which was written but not yet durable.
			return w.truncCause
		}
		if w.seg != seg {
			return nil
		}
		if w.flushed >= end {
			return nil
		}
		if !w.flushing {
			w.flushing = true
			target := w.written
			ferr := w.faults.Load().Hit(fault.WALFsync)
			if ferr == nil {
				f := w.f
				w.mu.Unlock()
				ferr = f.Sync()
				w.mu.Lock()
			}
			w.flushing = false
			if ferr != nil {
				w.discardTailLocked(ferr)
			} else {
				w.flushed = target
				w.fsyncs.Add(1)
				if c := w.mFsyncs.Load(); c != nil {
					c.Inc()
				}
			}
			w.cond.Broadcast()
			continue
		}
		w.cond.Wait()
	}
}

// discardTailLocked handles a failed flush: the bytes between flushed
// and written never became durable and their statements are about to be
// failed, so they are removed from the file. An injected fault leaves
// the writer usable; a real I/O error that also defeats the truncate
// makes the writer sticky-failed.
func (w *Writer) discardTailLocked(cause error) {
	if w.written > w.flushed {
		if terr := w.truncateToLocked(w.flushed); terr != nil {
			w.err = terr
		}
		w.written = w.flushed
		w.truncEpoch++
		w.truncCause = cause
	}
	if !fault.Is(cause) && w.err == nil {
		// A real fsync failure leaves the kernel state unknowable; stop
		// accepting appends rather than risk acknowledging lost bytes.
		w.err = cause
	}
	w.cond.Broadcast()
}

// rollLocked fsyncs and closes the current segment and starts the next
// one. Callers hold the lock.
func (w *Writer) rollLocked() error {
	for w.flushing {
		w.cond.Wait()
	}
	if w.err != nil {
		return w.err
	}
	// The tail is fsynced under EVERY policy (including SyncNone, where
	// it costs one fsync per 64 MB segment): parked group-commit waiters
	// conclude "segment moved ⇒ my chunk is durable", and a policy change
	// racing a roll must not invalidate that.
	if w.written > w.flushed {
		target := w.written
		ferr := w.faults.Load().Hit(fault.WALFsync)
		if ferr == nil {
			ferr = w.f.Sync()
		}
		if ferr != nil {
			w.discardTailLocked(ferr)
			return ferr
		}
		w.flushed = target
		w.fsyncs.Add(1)
		if c := w.mFsyncs.Load(); c != nil {
			c.Inc()
		}
	}
	_ = w.f.Close()
	f, err := createSegment(w.dir, w.seg+1)
	if err != nil {
		w.err = err
		return err
	}
	w.f = f
	w.seg++
	w.written, w.flushed = 0, 0
	w.cond.Broadcast()
	return nil
}

// Sync flushes everything appended so far, regardless of policy.
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	for w.flushing {
		w.cond.Wait()
	}
	if w.err != nil {
		return w.err
	}
	if w.written == w.flushed {
		return nil
	}
	return w.fsyncHoldingLocked(w.written, w.truncEpoch, w.seg)
}

// Roll fsyncs the current segment and switches to a fresh one. The
// checkpoint uses it so pre-checkpoint history lands in segments that
// can be deleted wholesale.
func (w *Writer) Roll() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.rollLocked()
}

// Close flushes and closes the log cleanly. Further appends fail with
// ErrClosed.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return nil
	}
	for w.flushing {
		w.cond.Wait()
	}
	var err error
	if w.written > w.flushed {
		err = w.f.Sync()
	}
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.err = ErrClosed
	w.cond.Broadcast()
	return err
}

// Crash simulates a kill -9 for the crash suite: the file handle is
// closed without flushing and every pending or future append fails. The
// on-disk state is whatever the writes (and any completed fsyncs) left
// behind — exactly what a real hard stop exposes to recovery.
func (w *Writer) Crash() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err == nil {
		w.err = ErrCrashed
	}
	_ = w.f.Close()
	w.cond.Broadcast()
}

// RemoveObsolete deletes segments before keepSegment and snapshots other
// than keepSnapshotSeq. The checkpoint calls it only after the new
// snapshot and the roll to the fresh segment are durable, so an older
// consistent (snapshot, segments) pair exists on disk at every instant.
func RemoveObsolete(dir string, keepSegment int, keepSnapshotSeq uint64) error {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var firstErr error
	for _, e := range ents {
		name := e.Name()
		if i, ok := parseSegmentName(name); ok && i < keepSegment {
			if err := os.Remove(filepath.Join(dir, name)); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if s, ok := parseSnapshotName(name); ok && s != keepSnapshotSeq {
			if err := os.Remove(filepath.Join(dir, name)); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	syncDir(dir)
	return firstErr
}

// listSegments returns the segment files in dir in index order.
func listSegments(dir string) ([]segmentFile, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segmentFile
	for _, e := range ents {
		if i, ok := parseSegmentName(e.Name()); ok {
			segs = append(segs, segmentFile{index: i, path: filepath.Join(dir, e.Name())})
		}
	}
	sort.Slice(segs, func(a, b int) bool { return segs[a].index < segs[b].index })
	return segs, nil
}

type segmentFile struct {
	index int
	path  string
}
