package wal

import (
	"testing"
	"time"
)

// Emulates: waiter parked in awaitDurableLocked while a group-commit
// flush is in flight; the flush completes and an Append needing a roll
// wins the mutex race before the waiter wakes. rollLocked fsyncs the
// waiter's bytes, then resets written/flushed to 0 for the new segment.
// The waiter's end offset is segment-relative and now stale.
func TestRollStrandsGroupCommitWaiter(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWriter(Options{Dir: dir, Policy: SyncGroup})
	if err != nil {
		t.Fatal(err)
	}

	// Fake an in-flight leader flush so the next committer parks.
	w.mu.Lock()
	w.flushing = true
	w.mu.Unlock()

	done := make(chan error, 1)
	go func() {
		_, err := w.Append([]*Record{{Kind: KindCheckpointBegin}})
		done <- err
	}()

	// Wait until the committer has written its chunk and parked.
	for {
		w.mu.Lock()
		written := w.written
		w.mu.Unlock()
		if written > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond) // let it reach cond.Wait

	// Leader finishes; roller wins the lock race and rolls the segment.
	w.mu.Lock()
	w.flushing = false
	if err := w.rollLocked(); err != nil {
		w.mu.Unlock()
		t.Fatal(err)
	}
	w.mu.Unlock()

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("durable append failed: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatalf("Append never returned after segment roll; fsyncs so far: %d", w.Fsyncs())
	}
}
