package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"onlinetuner/internal/datum"
)

// Snapshot is a checkpoint's full-state image: catalog schemas, raw
// heap contents (including tombstoned slots and the free-list order,
// which future RID assignment depends on), and secondary-index
// definitions with their lifecycle states. Trees are not serialized —
// they are rebuilt from the heaps at restore, which BulkLoad makes
// deterministic.
type Snapshot struct {
	// Seq is the commit sequence the snapshot is consistent with:
	// replay applies only batches with Seq greater than this.
	Seq     uint64
	Tables  []SnapshotTable
	Indexes []SnapshotIndex
}

// SnapshotTable is one table's schema and raw heap state.
type SnapshotTable struct {
	Def TableDef
	// Slots is the heap slot-array length; RIDs in [0, Slots) not
	// listed in Rows are tombstones.
	Slots int64
	Rows  []SnapRow
	// Free is the tombstone free list in its exact order — inserts pop
	// from the tail, so the order decides future RID assignment.
	Free []int64
}

// SnapRow is one live heap row.
type SnapRow struct {
	RID int64
	Row datum.Row
}

// Index lifecycle states as stored in a snapshot.
const (
	SnapIndexActive    uint8 = 0
	SnapIndexSuspended uint8 = 1
	SnapIndexBuilding  uint8 = 2
)

// SnapshotIndex is one secondary index: its definition, lifecycle
// state, and (for suspended indexes) the missed-operation count that
// prices a restart.
type SnapshotIndex struct {
	Def        IndexDef
	State      uint8
	PendingOps int64
}

// snapMagic and snapVersion head every snapshot file.
var snapMagic = []byte("OTSNAP01")

// EncodeSnapshot serializes s with a whole-file CRC32C trailer.
func EncodeSnapshot(s *Snapshot) []byte {
	buf := append([]byte{}, snapMagic...)
	buf = binary.AppendUvarint(buf, s.Seq)
	buf = binary.AppendUvarint(buf, uint64(len(s.Tables)))
	for i := range s.Tables {
		t := &s.Tables[i]
		buf = appendTableDef(buf, &t.Def)
		buf = binary.AppendUvarint(buf, uint64(t.Slots))
		buf = binary.AppendUvarint(buf, uint64(len(t.Rows)))
		for _, r := range t.Rows {
			buf = binary.AppendUvarint(buf, uint64(r.RID))
			buf = AppendRow(buf, r.Row)
		}
		buf = binary.AppendUvarint(buf, uint64(len(t.Free)))
		for _, f := range t.Free {
			buf = binary.AppendUvarint(buf, uint64(f))
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(s.Indexes)))
	for i := range s.Indexes {
		ix := &s.Indexes[i]
		buf = appendIndexDef(buf, &ix.Def)
		buf = append(buf, ix.State)
		buf = binary.AppendUvarint(buf, uint64(ix.PendingOps))
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(buf, crcTable))
	return append(buf, crc[:]...)
}

// DecodeSnapshot parses and checksum-verifies a snapshot image.
func DecodeSnapshot(b []byte) (*Snapshot, error) {
	if len(b) < len(snapMagic)+4 {
		return nil, fmt.Errorf("wal: snapshot too short: %d bytes", len(b))
	}
	body, tail := b[:len(b)-4], b[len(b)-4:]
	if got, want := crc32.Checksum(body, crcTable), binary.LittleEndian.Uint32(tail); got != want {
		return nil, fmt.Errorf("wal: snapshot checksum mismatch: %08x != %08x", got, want)
	}
	if string(body[:len(snapMagic)]) != string(snapMagic) {
		return nil, fmt.Errorf("wal: bad snapshot magic")
	}
	d := &decoder{b: body, off: len(snapMagic)}
	s := &Snapshot{Seq: d.uvarint()}
	ntables := d.uvarint()
	for i := uint64(0); i < ntables && d.err == nil; i++ {
		var t SnapshotTable
		if def := d.tableDef(); def != nil {
			t.Def = *def
		}
		t.Slots = int64(d.uvarint())
		nrows := d.uvarint()
		if nrows > uint64(len(d.b)-d.off) {
			d.fail("snapshot row count %d exceeds remaining payload", nrows)
			break
		}
		for j := uint64(0); j < nrows && d.err == nil; j++ {
			t.Rows = append(t.Rows, SnapRow{RID: int64(d.uvarint()), Row: d.row()})
		}
		nfree := d.uvarint()
		if nfree > uint64(len(d.b)-d.off) {
			d.fail("snapshot free count %d exceeds remaining payload", nfree)
			break
		}
		for j := uint64(0); j < nfree && d.err == nil; j++ {
			t.Free = append(t.Free, int64(d.uvarint()))
		}
		s.Tables = append(s.Tables, t)
	}
	nix := d.uvarint()
	if nix > uint64(len(d.b)-d.off) {
		d.fail("snapshot index count %d exceeds remaining payload", nix)
	}
	for i := uint64(0); i < nix && d.err == nil; i++ {
		var ix SnapshotIndex
		if def := d.indexDef(); def != nil {
			ix.Def = *def
		}
		ix.State = d.byte()
		ix.PendingOps = int64(d.uvarint())
		s.Indexes = append(s.Indexes, ix)
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.b) {
		return nil, fmt.Errorf("wal: %d trailing snapshot bytes", len(d.b)-d.off)
	}
	return s, nil
}

// WriteSnapshot durably writes s into dir as ckpt-<seq>.snap via a
// temp-file rename, returning the final path. Old snapshots are left in
// place; the checkpoint deletes them only after this one is durable.
func WriteSnapshot(dir string, s *Snapshot) (string, error) {
	data := EncodeSnapshot(s)
	final := filepath.Join(dir, SnapshotName(s.Seq))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return "", err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return "", err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return "", err
	}
	syncDir(dir)
	return final, nil
}

// LoadNewestSnapshot returns the newest decodable snapshot in dir, or
// nil if none exists. A corrupt newest snapshot (crash mid-write never
// produces one thanks to the temp-rename protocol, but a torn disk can)
// falls back to the next older one, which the checkpoint's
// delete-after-durable ordering guarantees is intact.
func LoadNewestSnapshot(dir string) (*Snapshot, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, e := range ents {
		if s, ok := parseSnapshotName(e.Name()); ok {
			seqs = append(seqs, s)
		}
	}
	// Try newest first.
	for {
		best := -1
		for i, s := range seqs {
			if best < 0 || s > seqs[best] {
				best = i
			}
		}
		if best < 0 {
			return nil, nil
		}
		data, err := os.ReadFile(filepath.Join(dir, SnapshotName(seqs[best])))
		if err == nil {
			if snap, derr := DecodeSnapshot(data); derr == nil {
				return snap, nil
			}
		}
		seqs = append(seqs[:best], seqs[best+1:]...)
	}
}
