package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"onlinetuner/internal/datum"
)

// Kind identifies one logical record type in the log.
type Kind uint8

// The record catalog. Every record describes one logical effect on the
// storage layer; a Commit record closes a batch and makes the batch's
// effects durable as a unit. B+-tree structure is never logged — trees
// are a deterministic function of the heap (BulkLoad), so IndexCreate /
// IndexRestart stand in for the physical split records of a page-level
// log.
const (
	// KindCommit closes a record batch. Carries the batch sequence
	// number; a batch with no trailing commit is invisible to recovery.
	KindCommit Kind = iota + 1
	// KindPageWrite is one heap row effect: insert, delete or update.
	KindPageWrite
	// KindAlloc records table materialization (schema + primary key).
	KindAlloc
	// KindIndexCreate records a secondary index becoming active, whether
	// built synchronously (BuildIndex) or published by a background
	// build (FinishBuild); Published distinguishes the two for
	// telemetry.
	KindIndexCreate
	// KindIndexDrop / KindIndexSuspend / KindIndexRestart record the
	// corresponding lifecycle transition.
	KindIndexDrop
	KindIndexSuspend
	KindIndexRestart
	// KindBuildStart records the beginning of a background build (delta
	// logging engaged). A BuildStart with no later IndexCreate or
	// BuildAbort is an in-flight build lost to the crash; recovery
	// resumes or abandons it.
	KindBuildStart
	// KindBuildAbort records a clean build abort.
	KindBuildAbort
	// KindCheckpointBegin / KindCheckpointEnd bracket a checkpoint.
	// CheckpointEnd carries the sequence number of the snapshot it
	// refers to; both are informational (the snapshot file's own
	// checksum is the authority).
	KindCheckpointBegin
	KindCheckpointEnd

	kindMax = KindCheckpointEnd
)

func (k Kind) String() string {
	switch k {
	case KindCommit:
		return "commit"
	case KindPageWrite:
		return "page-write"
	case KindAlloc:
		return "alloc"
	case KindIndexCreate:
		return "index-create"
	case KindIndexDrop:
		return "index-drop"
	case KindIndexSuspend:
		return "index-suspend"
	case KindIndexRestart:
		return "index-restart"
	case KindBuildStart:
		return "build-start"
	case KindBuildAbort:
		return "build-abort"
	case KindCheckpointBegin:
		return "checkpoint-begin"
	case KindCheckpointEnd:
		return "checkpoint-end"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Op is the row operation of a PageWrite record.
type Op uint8

// PageWrite operations.
const (
	OpInsert Op = iota + 1
	OpDelete
	OpUpdate
)

// ColDef is one column of a logged table schema.
type ColDef struct {
	Name     string
	Kind     uint8 // datum.Kind
	AvgWidth int
}

// TableDef is a logged table schema, sufficient to recreate the catalog
// entry (and through it the implicit primary index).
type TableDef struct {
	Name string
	Cols []ColDef
	PK   []string
}

// IndexDef is a logged secondary-index definition.
type IndexDef struct {
	Name    string
	Table   string
	Columns []string
}

// Record is one decoded log record. Which fields are meaningful depends
// on Kind; unused fields are zero.
type Record struct {
	Kind Kind
	// Seq is set on Commit (the batch sequence) and CheckpointEnd (the
	// snapshot sequence).
	Seq uint64
	// PageWrite fields.
	Op    Op
	Table string
	RID   int64
	Row   datum.Row // insert/update only
	// Alloc field.
	Schema *TableDef
	// Index lifecycle field (IndexCreate/Drop/Suspend/Restart,
	// BuildStart/Abort).
	Index *IndexDef
	// Published marks an IndexCreate logged by a background-build
	// publish rather than a synchronous build.
	Published bool
}

// MaxRecordSize bounds one framed record. Larger length prefixes are
// treated as corruption, which keeps a torn or flipped length field from
// driving a huge allocation during recovery.
const MaxRecordSize = 16 << 20

// frameOverhead is the per-record framing cost: u32 payload length plus
// u32 CRC32C of the payload.
const frameOverhead = 8

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// AppendRecord encodes rec with framing ([len u32][crc32c u32][payload])
// and appends it to buf.
func AppendRecord(buf []byte, rec *Record) []byte {
	head := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0) // len + crc placeholders
	buf = appendPayload(buf, rec)
	payload := buf[head+frameOverhead:]
	binary.LittleEndian.PutUint32(buf[head:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[head+4:], crc32.Checksum(payload, crcTable))
	return buf
}

func appendPayload(buf []byte, rec *Record) []byte {
	buf = append(buf, byte(rec.Kind))
	switch rec.Kind {
	case KindCommit, KindCheckpointEnd:
		buf = binary.AppendUvarint(buf, rec.Seq)
	case KindPageWrite:
		buf = append(buf, byte(rec.Op))
		buf = appendString(buf, rec.Table)
		buf = binary.AppendVarint(buf, rec.RID)
		if rec.Op != OpDelete {
			buf = AppendRow(buf, rec.Row)
		}
	case KindAlloc:
		buf = appendTableDef(buf, rec.Schema)
	case KindIndexCreate:
		buf = appendIndexDef(buf, rec.Index)
		pub := byte(0)
		if rec.Published {
			pub = 1
		}
		buf = append(buf, pub)
	case KindIndexDrop, KindIndexSuspend, KindIndexRestart, KindBuildStart, KindBuildAbort:
		buf = appendIndexDef(buf, rec.Index)
	case KindCheckpointBegin:
		// no payload beyond the kind byte
	}
	return buf
}

// DecodeRecord parses one framed record from the head of b. It returns
// the record and the number of bytes consumed. Any framing, checksum or
// payload problem — including a truncated tail — returns an error; the
// caller treats that position as the end of the consistent prefix.
func DecodeRecord(b []byte) (*Record, int, error) {
	if len(b) < frameOverhead {
		return nil, 0, fmt.Errorf("wal: short frame header: %d bytes", len(b))
	}
	n := binary.LittleEndian.Uint32(b)
	if n == 0 || n > MaxRecordSize {
		return nil, 0, fmt.Errorf("wal: implausible record length %d", n)
	}
	if uint32(len(b)-frameOverhead) < n {
		return nil, 0, fmt.Errorf("wal: truncated record: need %d payload bytes, have %d", n, len(b)-frameOverhead)
	}
	payload := b[frameOverhead : frameOverhead+int(n)]
	if got, want := crc32.Checksum(payload, crcTable), binary.LittleEndian.Uint32(b[4:]); got != want {
		return nil, 0, fmt.Errorf("wal: record checksum mismatch: %08x != %08x", got, want)
	}
	rec, err := decodePayload(payload)
	if err != nil {
		return nil, 0, err
	}
	return rec, frameOverhead + int(n), nil
}

func decodePayload(p []byte) (*Record, error) {
	d := &decoder{b: p}
	rec := &Record{Kind: Kind(d.byte())}
	if rec.Kind == 0 || rec.Kind > kindMax {
		return nil, fmt.Errorf("wal: unknown record kind %d", rec.Kind)
	}
	switch rec.Kind {
	case KindCommit, KindCheckpointEnd:
		rec.Seq = d.uvarint()
	case KindPageWrite:
		rec.Op = Op(d.byte())
		if rec.Op < OpInsert || rec.Op > OpUpdate {
			return nil, fmt.Errorf("wal: unknown page-write op %d", rec.Op)
		}
		rec.Table = d.str()
		rec.RID = d.varint()
		if rec.Op != OpDelete {
			rec.Row = d.row()
		}
	case KindAlloc:
		rec.Schema = d.tableDef()
	case KindIndexCreate:
		rec.Index = d.indexDef()
		rec.Published = d.byte() != 0
	case KindIndexDrop, KindIndexSuspend, KindIndexRestart, KindBuildStart, KindBuildAbort:
		rec.Index = d.indexDef()
	case KindCheckpointBegin:
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.b) {
		return nil, fmt.Errorf("wal: %d trailing payload bytes after %s record", len(d.b)-d.off, rec.Kind)
	}
	return rec, nil
}

// AppendRow encodes a row: a field count followed by one kind byte and a
// kind-specific value per field.
func AppendRow(buf []byte, r datum.Row) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(r)))
	for _, d := range r {
		k := d.Kind()
		buf = append(buf, byte(k))
		switch k {
		case datum.KNull:
		case datum.KInt, datum.KDate:
			buf = binary.AppendVarint(buf, d.Int())
		case datum.KBool:
			v := byte(0)
			if d.Bool() {
				v = 1
			}
			buf = append(buf, v)
		case datum.KFloat:
			var fb [8]byte
			binary.LittleEndian.PutUint64(fb[:], math.Float64bits(d.Float()))
			buf = append(buf, fb[:]...)
		case datum.KString:
			buf = appendString(buf, d.Str())
		}
	}
	return buf
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendTableDef(buf []byte, t *TableDef) []byte {
	buf = appendString(buf, t.Name)
	buf = binary.AppendUvarint(buf, uint64(len(t.Cols)))
	for _, c := range t.Cols {
		buf = appendString(buf, c.Name)
		buf = append(buf, c.Kind)
		buf = binary.AppendUvarint(buf, uint64(c.AvgWidth))
	}
	buf = binary.AppendUvarint(buf, uint64(len(t.PK)))
	for _, c := range t.PK {
		buf = appendString(buf, c)
	}
	return buf
}

func appendIndexDef(buf []byte, ix *IndexDef) []byte {
	buf = appendString(buf, ix.Name)
	buf = appendString(buf, ix.Table)
	buf = binary.AppendUvarint(buf, uint64(len(ix.Columns)))
	for _, c := range ix.Columns {
		buf = appendString(buf, c)
	}
	return buf
}

// decoder is a bounds-checked cursor over a record payload. Every read
// sets err and returns a zero value on underflow, so decode code reads
// linearly and checks err once.
type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("wal: "+format, args...)
	}
}

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.b) {
		d.fail("payload underflow reading byte")
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("payload underflow reading uvarint")
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail("payload underflow reading varint")
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.b)-d.off) {
		d.fail("string length %d exceeds remaining payload %d", n, len(d.b)-d.off)
		return ""
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

func (d *decoder) row() datum.Row {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	// Each field costs at least one byte, so a count past the remaining
	// payload is corruption, not a big row.
	if n > uint64(len(d.b)-d.off) {
		d.fail("row field count %d exceeds remaining payload %d", n, len(d.b)-d.off)
		return nil
	}
	row := make(datum.Row, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		k := datum.Kind(d.byte())
		switch k {
		case datum.KNull:
			row = append(row, datum.Null)
		case datum.KInt:
			row = append(row, datum.NewInt(d.varint()))
		case datum.KDate:
			row = append(row, datum.NewDate(d.varint()))
		case datum.KBool:
			row = append(row, datum.NewBool(d.byte() != 0))
		case datum.KFloat:
			if len(d.b)-d.off < 8 {
				d.fail("payload underflow reading float")
				return nil
			}
			bits := binary.LittleEndian.Uint64(d.b[d.off:])
			d.off += 8
			row = append(row, datum.NewFloat(math.Float64frombits(bits)))
		case datum.KString:
			row = append(row, datum.NewString(d.str()))
		default:
			d.fail("unknown datum kind %d", k)
			return nil
		}
	}
	return row
}

func (d *decoder) tableDef() *TableDef {
	t := &TableDef{Name: d.str()}
	ncols := d.uvarint()
	if d.err != nil {
		return nil
	}
	if ncols > uint64(len(d.b)-d.off) {
		d.fail("column count %d exceeds remaining payload %d", ncols, len(d.b)-d.off)
		return nil
	}
	for i := uint64(0); i < ncols && d.err == nil; i++ {
		t.Cols = append(t.Cols, ColDef{Name: d.str(), Kind: d.byte(), AvgWidth: int(d.uvarint())})
	}
	npk := d.uvarint()
	if d.err != nil {
		return nil
	}
	if npk > uint64(len(d.b)-d.off) {
		d.fail("primary-key count %d exceeds remaining payload %d", npk, len(d.b)-d.off)
		return nil
	}
	for i := uint64(0); i < npk && d.err == nil; i++ {
		t.PK = append(t.PK, d.str())
	}
	return t
}

func (d *decoder) indexDef() *IndexDef {
	ix := &IndexDef{Name: d.str(), Table: d.str()}
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.b)-d.off) {
		d.fail("index column count %d exceeds remaining payload %d", n, len(d.b)-d.off)
		return nil
	}
	for i := uint64(0); i < n && d.err == nil; i++ {
		ix.Columns = append(ix.Columns, d.str())
	}
	return ix
}
