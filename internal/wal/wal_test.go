package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"onlinetuner/internal/datum"
	"onlinetuner/internal/fault"
)

// sampleRecords covers every record kind and every datum kind a row can
// carry.
func sampleRecords() []*Record {
	row := datum.Row{
		datum.NewInt(-42),
		datum.NewFloat(3.5),
		datum.NewString("acct#0001"),
		datum.NewDate(9125),
		datum.NewBool(true),
		datum.Null,
	}
	schema := &TableDef{
		Name: "orders",
		Cols: []ColDef{
			{Name: "o_orderkey", Kind: 1, AvgWidth: 8},
			{Name: "o_comment", Kind: 3, AvgWidth: 48},
		},
		PK: []string{"o_orderkey"},
	}
	ix := &IndexDef{Name: "ix_orders_date", Table: "orders", Columns: []string{"o_orderdate", "o_orderkey"}}
	return []*Record{
		{Kind: KindPageWrite, Op: OpInsert, Table: "orders", RID: 7, Row: row},
		{Kind: KindPageWrite, Op: OpDelete, Table: "orders", RID: 9},
		{Kind: KindPageWrite, Op: OpUpdate, Table: "orders", RID: 0, Row: row[:2]},
		{Kind: KindAlloc, Schema: schema},
		{Kind: KindIndexCreate, Index: ix, Published: true},
		{Kind: KindIndexCreate, Index: ix},
		{Kind: KindIndexDrop, Index: ix},
		{Kind: KindIndexSuspend, Index: ix},
		{Kind: KindIndexRestart, Index: ix},
		{Kind: KindBuildStart, Index: ix},
		{Kind: KindBuildAbort, Index: ix},
		{Kind: KindCheckpointBegin},
		{Kind: KindCheckpointEnd, Seq: 1<<40 + 17},
		{Kind: KindCommit, Seq: 123456789},
	}
}

func TestRecordRoundTrip(t *testing.T) {
	for _, rec := range sampleRecords() {
		buf := AppendRecord(nil, rec)
		got, n, err := DecodeRecord(buf)
		if err != nil {
			t.Fatalf("decode kind %d: %v", rec.Kind, err)
		}
		if n != len(buf) {
			t.Fatalf("kind %d: decoded %d of %d bytes", rec.Kind, n, len(buf))
		}
		// Canonical encoding: re-encoding the decoded record must
		// reproduce the original bytes exactly.
		if again := AppendRecord(nil, got); !bytes.Equal(again, buf) {
			t.Fatalf("kind %d: round-trip bytes differ", rec.Kind)
		}
	}
}

func TestRecordRoundTripConcatenated(t *testing.T) {
	recs := sampleRecords()
	var buf []byte
	for _, rec := range recs {
		buf = AppendRecord(buf, rec)
	}
	off := 0
	for i := range recs {
		rec, n, err := DecodeRecord(buf[off:])
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if rec.Kind != recs[i].Kind {
			t.Fatalf("record %d: kind %d != %d", i, rec.Kind, recs[i].Kind)
		}
		off += n
	}
	if off != len(buf) {
		t.Fatalf("consumed %d of %d bytes", off, len(buf))
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	base := AppendRecord(nil, &Record{Kind: KindPageWrite, Op: OpInsert, Table: "t", RID: 3,
		Row: datum.Row{datum.NewInt(1), datum.NewString("x")}})
	// Every single-bit-of-a-byte corruption must be caught by the frame
	// CRC (or length/payload validation), never panic, never pass.
	for i := range base {
		mut := append([]byte(nil), base...)
		mut[i] ^= 0x40
		if rec, _, err := DecodeRecord(mut); err == nil {
			// A flip inside the length prefix can legitimately yield
			// "short buffer"-style errors; a nil error means the CRC
			// collided, which must not happen for a 1-bit flip.
			t.Fatalf("offset %d: corrupt record decoded as kind %d", i, rec.Kind)
		}
	}
	// Truncation at every boundary is an error, not a panic.
	for n := 0; n < len(base); n++ {
		if _, _, err := DecodeRecord(base[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded", n)
		}
	}
}

func openTestWriter(t *testing.T, dir string, o Options) *Writer {
	t.Helper()
	o.Dir = dir
	w, err := OpenWriter(o)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func mustAppend(t *testing.T, w *Writer, recs ...*Record) uint64 {
	t.Helper()
	seq, err := w.Append(recs)
	if err != nil {
		t.Fatal(err)
	}
	return seq
}

func insRec(table string, rid int64) *Record {
	return &Record{Kind: KindPageWrite, Op: OpInsert, Table: table, RID: rid,
		Row: datum.Row{datum.NewInt(rid)}}
}

func TestWriterAppendScan(t *testing.T) {
	dir := t.TempDir()
	w := openTestWriter(t, dir, Options{Policy: SyncGroup})
	for i := 0; i < 10; i++ {
		seq := mustAppend(t, w, insRec("t", int64(i)), insRec("t", int64(i+100)))
		if seq != uint64(i+1) {
			t.Fatalf("append %d: seq %d", i, seq)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := ScanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if res.Torn {
		t.Fatal("clean log scanned as torn")
	}
	if len(res.Batches) != 10 || res.LastSeq != 10 {
		t.Fatalf("got %d batches, last seq %d", len(res.Batches), res.LastSeq)
	}
	for i, b := range res.Batches {
		if b.Seq != uint64(i+1) || len(b.Recs) != 2 {
			t.Fatalf("batch %d: seq %d, %d recs", i, b.Seq, len(b.Recs))
		}
		if b.Recs[0].RID != int64(i) || b.Recs[1].RID != int64(i+100) {
			t.Fatalf("batch %d: rids %d,%d", i, b.Recs[0].RID, b.Recs[1].RID)
		}
	}
}

func TestWriterSegmentRoll(t *testing.T) {
	dir := t.TempDir()
	w := openTestWriter(t, dir, Options{Policy: SyncNone, SegmentBytes: 256})
	const n = 40
	for i := 0; i < n; i++ {
		mustAppend(t, w, insRec("t", int64(i)))
	}
	if w.Segment() == 0 {
		t.Fatal("no roll happened")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := ScanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if res.Torn || len(res.Batches) != n {
		t.Fatalf("torn=%v batches=%d", res.Torn, len(res.Batches))
	}
	if res.NextSegment != w.Segment()+1 {
		t.Fatalf("NextSegment %d, writer segment %d", res.NextSegment, w.Segment())
	}
	for i, b := range res.Batches {
		if b.Seq != uint64(i+1) {
			t.Fatalf("batch %d out of order: seq %d", i, b.Seq)
		}
	}
}

func TestSyncPolicyFsyncCounts(t *testing.T) {
	const n = 8
	t.Run("always", func(t *testing.T) {
		w := openTestWriter(t, t.TempDir(), Options{Policy: SyncAlways})
		for i := 0; i < n; i++ {
			mustAppend(t, w, insRec("t", int64(i)))
		}
		if got := w.Fsyncs(); got != n {
			t.Fatalf("SyncAlways: %d fsyncs for %d appends", got, n)
		}
		_ = w.Close()
	})
	t.Run("none", func(t *testing.T) {
		w := openTestWriter(t, t.TempDir(), Options{Policy: SyncNone})
		for i := 0; i < n; i++ {
			mustAppend(t, w, insRec("t", int64(i)))
		}
		if got := w.Fsyncs(); got != 0 {
			t.Fatalf("SyncNone: %d fsyncs", got)
		}
		_ = w.Close()
	})
}

func TestGroupCommitConcurrent(t *testing.T) {
	dir := t.TempDir()
	w := openTestWriter(t, dir, Options{Policy: SyncGroup})
	const n = 64
	var wg sync.WaitGroup
	seqs := make([]uint64, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			seqs[i], errs[i] = w.Append([]*Record{insRec("t", int64(i))})
		}(i)
	}
	wg.Wait()
	seen := make(map[uint64]bool, n)
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("append %d: %v", i, errs[i])
		}
		if seen[seqs[i]] {
			t.Fatalf("duplicate seq %d", seqs[i])
		}
		seen[seqs[i]] = true
	}
	if got := w.Fsyncs(); got > n {
		t.Fatalf("group commit issued %d fsyncs for %d appends", got, n)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := ScanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Batches) != n || res.Torn {
		t.Fatalf("batches=%d torn=%v", len(res.Batches), res.Torn)
	}
}

func TestScanTornTail(t *testing.T) {
	dir := t.TempDir()
	w := openTestWriter(t, dir, Options{Policy: SyncNone})
	for i := 0; i < 5; i++ {
		mustAppend(t, w, insRec("t", int64(i)))
	}
	_ = w.Close()
	path := filepath.Join(dir, SegmentName(0))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut mid-way into the final batch.
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := ScanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Torn || len(res.Batches) != 4 || res.LastSeq != 4 {
		t.Fatalf("torn=%v batches=%d last=%d", res.Torn, len(res.Batches), res.LastSeq)
	}
	if err := res.TruncateTail(); err != nil {
		t.Fatal(err)
	}
	res2, err := ScanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Torn || len(res2.Batches) != 4 {
		t.Fatalf("after truncate: torn=%v batches=%d", res2.Torn, len(res2.Batches))
	}
}

func TestWriterAppendFault(t *testing.T) {
	dir := t.TempDir()
	w := openTestWriter(t, dir, Options{Policy: SyncNone})
	mustAppend(t, w, insRec("t", 1))
	inj := fault.New(1).Plan(fault.WALAppend, fault.Rule{Prob: 1, Count: 1})
	inj.Arm()
	w.SetFaults(inj)
	if _, err := w.Append([]*Record{insRec("t", 2)}); !fault.Is(err) {
		t.Fatalf("armed append: %v", err)
	}
	// The fault fired before any byte was written; the writer is intact.
	if seq := mustAppend(t, w, insRec("t", 3)); seq != 2 {
		t.Fatalf("seq after failed append: %d", seq)
	}
	_ = w.Close()
	res, _ := ScanDir(dir)
	if len(res.Batches) != 2 || res.Batches[1].Recs[0].RID != 3 {
		t.Fatalf("log holds %d batches", len(res.Batches))
	}
}

func TestWriterFsyncFaultDiscardsTail(t *testing.T) {
	dir := t.TempDir()
	w := openTestWriter(t, dir, Options{Policy: SyncGroup})
	mustAppend(t, w, insRec("t", 1))
	inj := fault.New(1).Plan(fault.WALFsync, fault.Rule{Prob: 1, Count: 1})
	inj.Arm()
	w.SetFaults(inj)
	if _, err := w.Append([]*Record{insRec("t", 2)}); !fault.Is(err) {
		t.Fatalf("fsync fault not surfaced: %v", err)
	}
	// The failed flush discarded the unflushed tail; the acknowledged
	// prefix survives and the writer keeps working.
	mustAppend(t, w, insRec("t", 3))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := ScanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Batches) != 2 {
		t.Fatalf("log holds %d batches", len(res.Batches))
	}
	if res.Batches[0].Recs[0].RID != 1 || res.Batches[1].Recs[0].RID != 3 {
		t.Fatal("discarded batch resurfaced in the log")
	}
}

func TestWriterCrash(t *testing.T) {
	dir := t.TempDir()
	w := openTestWriter(t, dir, Options{Policy: SyncGroup})
	mustAppend(t, w, insRec("t", 1))
	w.Crash()
	if _, err := w.Append([]*Record{insRec("t", 2)}); !errors.Is(err, ErrCrashed) {
		t.Fatalf("append after crash: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close after crash must be a quiet no-op: %v", err)
	}
	// A new writer resumes after the crashed one.
	res, err := ScanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	w2 := openTestWriter(t, dir, Options{Policy: SyncGroup, StartSeq: res.LastSeq, StartSegment: res.NextSegment})
	if seq := mustAppend(t, w2, insRec("t", 5)); seq != res.LastSeq+1 {
		t.Fatalf("resumed seq %d", seq)
	}
	_ = w2.Close()
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := &Snapshot{
		Seq: 77,
		Tables: []SnapshotTable{{
			Def:   TableDef{Name: "t", Cols: []ColDef{{Name: "a", Kind: 1, AvgWidth: 8}}, PK: []string{"a"}},
			Slots: 4,
			Rows: []SnapRow{
				{RID: 0, Row: datum.Row{datum.NewInt(10)}},
				{RID: 2, Row: datum.Row{datum.NewInt(30)}},
			},
			Free: []int64{3, 1},
		}},
		Indexes: []SnapshotIndex{{
			Def:        IndexDef{Name: "ix", Table: "t", Columns: []string{"a"}},
			State:      SnapIndexSuspended,
			PendingOps: 5,
		}},
	}
	dir := t.TempDir()
	if _, err := WriteSnapshot(dir, s); err != nil {
		t.Fatal(err)
	}
	got, err := LoadNewestSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || got.Seq != 77 {
		t.Fatalf("loaded %+v", got)
	}
	if len(got.Tables) != 1 || got.Tables[0].Slots != 4 || len(got.Tables[0].Rows) != 2 {
		t.Fatalf("table state %+v", got.Tables)
	}
	if got.Tables[0].Free[0] != 3 || got.Tables[0].Free[1] != 1 {
		t.Fatalf("free-list order lost: %v", got.Tables[0].Free)
	}
	if len(got.Indexes) != 1 || got.Indexes[0].State != SnapIndexSuspended || got.Indexes[0].PendingOps != 5 {
		t.Fatalf("index state %+v", got.Indexes)
	}
}

func TestSnapshotFallbackOnCorruption(t *testing.T) {
	dir := t.TempDir()
	if _, err := WriteSnapshot(dir, &Snapshot{Seq: 10}); err != nil {
		t.Fatal(err)
	}
	path2, err := WriteSnapshot(dir, &Snapshot{Seq: 20})
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the newest snapshot; loading must fall back to seq 10.
	data, err := os.ReadFile(path2)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path2, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadNewestSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || got.Seq != 10 {
		t.Fatalf("fallback loaded %+v", got)
	}
}

func TestRemoveObsolete(t *testing.T) {
	dir := t.TempDir()
	for i := 0; i < 3; i++ {
		f, err := createSegment(dir, i)
		if err != nil {
			t.Fatal(err)
		}
		_ = f.Close()
	}
	if _, err := WriteSnapshot(dir, &Snapshot{Seq: 5}); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteSnapshot(dir, &Snapshot{Seq: 9}); err != nil {
		t.Fatal(err)
	}
	if err := RemoveObsolete(dir, 2, 9); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	want := map[string]bool{SegmentName(2): true, SnapshotName(9): true}
	if len(names) != 2 || !want[names[0]] || !want[names[1]] {
		t.Fatalf("kept %v", names)
	}
}

// TestGenerateFuzzCorpus regenerates the checked-in seed corpus when
// WAL_GEN_CORPUS=1; it is a no-op otherwise.
func TestGenerateFuzzCorpus(t *testing.T) {
	if os.Getenv("WAL_GEN_CORPUS") == "" {
		t.Skip("set WAL_GEN_CORPUS=1 to regenerate the fuzz seed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzWALDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	write := func(name string, data []byte) {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	var all []byte
	for i, rec := range sampleRecords() {
		buf := AppendRecord(nil, rec)
		write(fmt.Sprintf("seed-kind-%02d", i), buf)
		all = append(all, buf...)
	}
	write("seed-stream", all)
	write("seed-truncated", all[:len(all)-5])
	flipped := append([]byte(nil), all...)
	flipped[len(flipped)/3] ^= 0x10
	write("seed-bitflip", flipped)
}

// FuzzWALDecode throws arbitrary bytes at the record decoder. The
// decoder must never panic, must never read past the buffer, and any
// record it accepts must re-encode canonically to bytes it accepts
// again.
func FuzzWALDecode(f *testing.F) {
	for _, rec := range sampleRecords() {
		f.Add(AppendRecord(nil, rec))
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		off := 0
		for off < len(data) {
			rec, n, err := DecodeRecord(data[off:])
			if err != nil {
				break
			}
			if n <= 0 || off+n > len(data) {
				t.Fatalf("decode consumed %d bytes of %d", n, len(data)-off)
			}
			buf := AppendRecord(nil, rec)
			rec2, n2, err := DecodeRecord(buf)
			if err != nil {
				t.Fatalf("re-decode of re-encoded record: %v", err)
			}
			if n2 != len(buf) {
				t.Fatalf("re-decode consumed %d of %d", n2, len(buf))
			}
			if buf2 := AppendRecord(nil, rec2); !bytes.Equal(buf, buf2) {
				t.Fatal("re-encoding is not a fixed point")
			}
			off += n
		}
	})
}
