package wal

import (
	"fmt"
	"os"
)

// Batch is one committed record batch: the records of a single
// statement (or one lifecycle operation) plus its commit sequence.
type Batch struct {
	Seq  uint64
	Recs []*Record
}

// ScanResult is what a directory scan recovered: every committed batch
// in log order, plus the bookkeeping needed to truncate the torn tail
// and to resume appending.
type ScanResult struct {
	Batches []Batch
	// LastSeq is the highest commit sequence seen.
	LastSeq uint64
	// Bytes counts the valid bytes scanned across all segments.
	Bytes int64
	// NextSegment is one past the highest segment index present.
	NextSegment int
	// StopPath / StopOffset locate the end of the consistent prefix:
	// the stop segment keeps its first StopOffset bytes (the end of its
	// last committed batch) and loses the rest. Empty when the
	// directory holds no segments.
	StopPath   string
	StopOffset int64
	// TailPaths are segment files after the stop segment; recovery
	// deletes them (they can only exist after a crash left an invalid
	// record mid-directory, and nothing after the first invalid record
	// is trusted).
	TailPaths []string
	// Torn reports that scanning stopped at invalid or uncommitted
	// data rather than a clean end-of-log.
	Torn bool
}

// ScanDir reads every segment in dir in index order and returns the
// committed batches of the longest consistent prefix. Scanning stops at
// the first invalid record (bad length, bad checksum, undecodable
// payload, or a truncated tail); records after the last Commit are
// dropped. Batches never span segments — the writer rolls between
// batches — so each segment is scanned independently and a dangling
// partial batch at a segment's end is discarded.
func ScanDir(dir string) (*ScanResult, error) {
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	res := &ScanResult{}
	for si, seg := range segs {
		res.NextSegment = seg.index + 1
		data, err := os.ReadFile(seg.path)
		if err != nil {
			return nil, fmt.Errorf("wal: read segment %s: %w", seg.path, err)
		}
		off, commitEnd := 0, 0
		var pending []*Record
		valid := true
		for off < len(data) {
			rec, n, err := DecodeRecord(data[off:])
			if err != nil {
				valid = false
				break
			}
			off += n
			if rec.Kind == KindCommit {
				res.Batches = append(res.Batches, Batch{Seq: rec.Seq, Recs: pending})
				if rec.Seq > res.LastSeq {
					res.LastSeq = rec.Seq
				}
				pending = nil
				commitEnd = off
			} else {
				pending = append(pending, rec)
			}
		}
		res.Bytes += int64(commitEnd)
		res.StopPath = seg.path
		res.StopOffset = int64(commitEnd)
		if !valid || len(pending) > 0 || commitEnd != len(data) {
			// Invalid data, a batch with no commit, or valid-but-
			// uncommitted bytes: the consistent prefix ends here and
			// any later segment is untrusted.
			res.Torn = true
			for _, later := range segs[si+1:] {
				res.TailPaths = append(res.TailPaths, later.path)
			}
			break
		}
	}
	return res, nil
}

// TruncateTail physically removes everything past the consistent
// prefix: the stop segment is cut at StopOffset and later segments are
// deleted. Recovery calls it before opening a fresh writer so a future
// scan never re-reads discarded bytes.
func (r *ScanResult) TruncateTail() error {
	if r.StopPath == "" || !r.Torn {
		return nil
	}
	if err := os.Truncate(r.StopPath, r.StopOffset); err != nil {
		return fmt.Errorf("wal: truncate torn tail: %w", err)
	}
	for _, p := range r.TailPaths {
		if err := os.Remove(p); err != nil {
			return fmt.Errorf("wal: remove tail segment: %w", err)
		}
	}
	return nil
}
