package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"onlinetuner/internal/datum"
)

func ints(vals ...int64) []datum.Datum {
	out := make([]datum.Datum, len(vals))
	for i, v := range vals {
		out[i] = datum.NewInt(v)
	}
	return out
}

func seq(n int) []datum.Datum {
	out := make([]datum.Datum, n)
	for i := range out {
		out[i] = datum.NewInt(int64(i))
	}
	return out
}

func TestBuildEmpty(t *testing.T) {
	h := Build(nil, 8)
	if h.Rows != 0 || len(h.Buckets) != 0 {
		t.Error("empty histogram should have no rows/buckets")
	}
	if h.SelectivityEq(datum.NewInt(1)) != 0 {
		t.Error("empty histogram eq selectivity should be 0")
	}
	if h.SelectivityLt(datum.NewInt(1)) != 0 {
		t.Error("empty histogram lt selectivity should be 0")
	}
}

func TestBuildCountsAndDistinct(t *testing.T) {
	vals := append(ints(1, 1, 1, 2, 3, 3), datum.Null, datum.Null)
	h := Build(vals, 4)
	if h.Rows != 6 || h.Nulls != 2 {
		t.Errorf("rows=%d nulls=%d", h.Rows, h.Nulls)
	}
	if h.DistinctN != 3 {
		t.Errorf("distinct=%d, want 3", h.DistinctN)
	}
	var total int64
	for _, b := range h.Buckets {
		total += b.Count
	}
	if total != 6 {
		t.Errorf("bucket counts sum to %d, want 6", total)
	}
}

func TestEquiDepthApprox(t *testing.T) {
	h := Build(seq(1000), 10)
	if len(h.Buckets) != 10 {
		t.Fatalf("buckets = %d, want 10", len(h.Buckets))
	}
	for i, b := range h.Buckets {
		if b.Count != 100 {
			t.Errorf("bucket %d count = %d, want 100", i, b.Count)
		}
	}
}

func TestSelectivityEqUniform(t *testing.T) {
	h := Build(seq(1000), 10)
	got := h.SelectivityEq(datum.NewInt(500))
	if math.Abs(got-0.001) > 0.0005 {
		t.Errorf("eq selectivity = %g, want ~0.001", got)
	}
	if h.SelectivityEq(datum.NewInt(-5)) != 0 {
		t.Error("below-range eq should be 0")
	}
	if h.SelectivityEq(datum.NewInt(5000)) != 0 {
		t.Error("above-range eq should be 0")
	}
}

func TestSelectivityEqNull(t *testing.T) {
	vals := append(seq(90), make([]datum.Datum, 10)...)
	for i := 90; i < 100; i++ {
		vals[i] = datum.Null
	}
	h := Build(vals, 8)
	if got := h.SelectivityEq(datum.Null); math.Abs(got-0.1) > 1e-9 {
		t.Errorf("null selectivity = %g, want 0.1", got)
	}
}

func TestSelectivityLt(t *testing.T) {
	h := Build(seq(1000), 10)
	cases := []struct {
		v    int64
		want float64
		tol  float64
	}{
		{0, 0, 0},
		{-10, 0, 0},
		{100, 0.1, 0.02},
		{500, 0.5, 0.02},
		{999, 0.999, 0.02},
		{5000, 1.0, 0.001},
	}
	for _, tc := range cases {
		got := h.SelectivityLt(datum.NewInt(tc.v))
		if math.Abs(got-tc.want) > tc.tol {
			t.Errorf("SelectivityLt(%d) = %g, want %g±%g", tc.v, got, tc.want, tc.tol)
		}
	}
}

func TestSelectivityRange(t *testing.T) {
	h := Build(seq(1000), 16)
	lo, hi := datum.NewInt(100), datum.NewInt(300)
	got := h.SelectivityRange(&lo, &hi, true, false)
	if math.Abs(got-0.2) > 0.03 {
		t.Errorf("range selectivity = %g, want ~0.2", got)
	}
	// Unbounded below.
	got = h.SelectivityRange(nil, &hi, true, false)
	if math.Abs(got-0.3) > 0.03 {
		t.Errorf("(-inf,300) = %g, want ~0.3", got)
	}
	// Unbounded above.
	got = h.SelectivityRange(&lo, nil, true, false)
	if math.Abs(got-0.9) > 0.03 {
		t.Errorf("[100,inf) = %g, want ~0.9", got)
	}
	// Degenerate: hi < lo.
	lo2, hi2 := datum.NewInt(500), datum.NewInt(100)
	if got := h.SelectivityRange(&lo2, &hi2, true, true); got != 0 {
		t.Errorf("inverted range = %g, want 0", got)
	}
}

// Property: selectivities are within [0,1] and SelectivityLt is monotone.
func TestSelectivityBoundsQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(300)
		vals := make([]datum.Datum, n)
		for i := range vals {
			vals[i] = datum.NewInt(int64(r.Intn(50)))
		}
		h := Build(vals, 1+r.Intn(12))
		prev := -1.0
		for v := int64(-5); v <= 55; v += 3 {
			s := h.SelectivityLt(datum.NewInt(v))
			if s < 0 || s > 1 || s+1e-12 < prev {
				return false
			}
			prev = s
			e := h.SelectivityEq(datum.NewInt(v))
			if e < 0 || e > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: an exact-match histogram reproduces per-value frequencies well
// when each value gets its own bucket.
func TestExactHistogram(t *testing.T) {
	vals := ints(1, 1, 1, 1, 2, 2, 3, 3, 3, 10)
	h := Build(vals, 100)
	if got := h.SelectivityEq(datum.NewInt(1)); math.Abs(got-0.4) > 1e-9 {
		t.Errorf("sel(=1) = %g, want 0.4", got)
	}
	if got := h.SelectivityEq(datum.NewInt(10)); math.Abs(got-0.1) > 1e-9 {
		t.Errorf("sel(=10) = %g, want 0.1", got)
	}
}

func TestValueBoundaryBuckets(t *testing.T) {
	// 500 copies of one value must land in a single bucket even with a
	// small per-bucket target, keeping equality estimates correct.
	vals := make([]datum.Datum, 0, 600)
	for i := 0; i < 500; i++ {
		vals = append(vals, datum.NewInt(7))
	}
	for i := 0; i < 100; i++ {
		vals = append(vals, datum.NewInt(int64(100+i)))
	}
	h := Build(vals, 10)
	if got := h.SelectivityEq(datum.NewInt(7)); math.Abs(got-500.0/600) > 0.01 {
		t.Errorf("sel(=7) = %g, want ~0.83", got)
	}
}

func TestStore(t *testing.T) {
	s := NewStore()
	if s.Has("r", "a") {
		t.Error("empty store claims stats")
	}
	cs := s.BuildColumn("R", "A", seq(100), 8)
	if cs.Rows != 100 || cs.Distinct != 100 {
		t.Errorf("cs = %+v", cs)
	}
	if !s.Has("r", "a") || s.Get("R", "a") != cs {
		t.Error("case-insensitive store lookup failed")
	}
	if s.BuildCount() != 1 {
		t.Error("build count wrong")
	}
	s.Drop("r", "A")
	if s.Has("R", "a") {
		t.Error("drop failed")
	}
}

func TestStringHist(t *testing.T) {
	vals := []datum.Datum{datum.NewString("a"), datum.NewString("b"), datum.NewString("b"), datum.NewString("z")}
	h := Build(vals, 4)
	if got := h.SelectivityEq(datum.NewString("b")); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("sel(='b') = %g, want 0.5", got)
	}
	lt := h.SelectivityLt(datum.NewString("z"))
	if lt <= 0 || lt > 1 {
		t.Errorf("sel(<'z') = %g", lt)
	}
}
