// Package stats implements the statistics subsystem: equi-depth
// histograms with per-bucket distinct counts, column statistics, and the
// selectivity estimation interface consumed by the optimizer's cost
// model. It also implements the asynchronous statistics-creation policy
// of Section 3.3 of the paper ("supporting statistics"): statistics for
// an index's key column are built once the accumulated evidence for that
// index crosses a fraction of its creation cost.
package stats

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"onlinetuner/internal/datum"
)

// DefaultBuckets is the histogram resolution used when statistics are
// built without an explicit bucket count.
const DefaultBuckets = 32

// Bucket is one equi-depth histogram bucket: values in (lower, upper]
// except the first bucket, which is [lower, upper].
type Bucket struct {
	Upper    datum.Datum
	Count    int64 // rows in the bucket
	Distinct int64 // distinct values in the bucket
}

// Histogram is an equi-depth histogram over one column.
type Histogram struct {
	Lower     datum.Datum // minimum value
	Buckets   []Bucket
	Rows      int64 // total non-null rows
	Nulls     int64
	DistinctN int64 // total distinct non-null values
}

// Build constructs an equi-depth histogram with up to maxBuckets buckets
// from a sample of column values. NULLs are counted separately.
func Build(values []datum.Datum, maxBuckets int) *Histogram {
	if maxBuckets <= 0 {
		maxBuckets = DefaultBuckets
	}
	h := &Histogram{}
	nonNull := make([]datum.Datum, 0, len(values))
	for _, v := range values {
		if v.IsNull() {
			h.Nulls++
			continue
		}
		nonNull = append(nonNull, v)
	}
	h.Rows = int64(len(nonNull))
	if h.Rows == 0 {
		return h
	}
	sort.Slice(nonNull, func(i, j int) bool { return nonNull[i].Compare(nonNull[j]) < 0 })
	h.Lower = nonNull[0]

	perBucket := (len(nonNull) + maxBuckets - 1) / maxBuckets
	if perBucket == 0 {
		perBucket = 1
	}
	i := 0
	for i < len(nonNull) {
		end := i + perBucket
		if end > len(nonNull) {
			end = len(nonNull)
		}
		// Extend the bucket so it ends on a value boundary: all copies of a
		// value land in one bucket, which keeps equality estimates sane.
		for end < len(nonNull) && nonNull[end].Equal(nonNull[end-1]) {
			end++
		}
		b := Bucket{Upper: nonNull[end-1], Count: int64(end - i)}
		d := int64(1)
		for k := i + 1; k < end; k++ {
			if !nonNull[k].Equal(nonNull[k-1]) {
				d++
			}
		}
		b.Distinct = d
		h.DistinctN += d
		h.Buckets = append(h.Buckets, b)
		i = end
	}
	return h
}

// SelectivityEq estimates the fraction of rows equal to v.
func (h *Histogram) SelectivityEq(v datum.Datum) float64 {
	total := h.Rows + h.Nulls
	if total == 0 {
		return 0
	}
	if v.IsNull() {
		return float64(h.Nulls) / float64(total)
	}
	b := h.find(v)
	if b == nil {
		return 0
	}
	if b.Distinct == 0 {
		return 0
	}
	return float64(b.Count) / float64(b.Distinct) / float64(total)
}

// SelectivityLt estimates the fraction of rows strictly less than v
// (NULLs never qualify).
func (h *Histogram) SelectivityLt(v datum.Datum) float64 {
	total := h.Rows + h.Nulls
	if total == 0 || h.Rows == 0 {
		return 0
	}
	if v.IsNull() {
		return 0
	}
	if v.Compare(h.Lower) <= 0 {
		return 0
	}
	var below int64
	lower := h.Lower
	for _, b := range h.Buckets {
		if v.Compare(b.Upper) > 0 {
			below += b.Count
			lower = b.Upper
			continue
		}
		// v falls inside this bucket: linear interpolation for numerics,
		// half the bucket otherwise.
		below += int64(float64(b.Count) * fraction(lower, b.Upper, v))
		break
	}
	return clamp01(float64(below) / float64(total))
}

// SelectivityRange estimates the fraction of rows in the half-open or
// closed interval defined by lo/hi; nil bounds mean unbounded. loInc and
// hiInc control bound inclusivity.
func (h *Histogram) SelectivityRange(lo, hi *datum.Datum, loInc, hiInc bool) float64 {
	total := h.Rows + h.Nulls
	if total == 0 {
		return 0
	}
	s := float64(h.Rows) / float64(total) // non-null fraction
	if hi != nil {
		shi := h.SelectivityLt(*hi)
		if hiInc {
			shi += h.SelectivityEq(*hi)
		}
		s = minf(s, shi)
	}
	if lo != nil {
		slo := h.SelectivityLt(*lo)
		if !loInc {
			slo += h.SelectivityEq(*lo)
		}
		s -= slo
	}
	return clamp01(s)
}

// find returns the bucket that would contain v, or nil if out of range.
func (h *Histogram) find(v datum.Datum) *Bucket {
	if len(h.Buckets) == 0 {
		return nil
	}
	if v.Compare(h.Lower) < 0 {
		return nil
	}
	lo, hi := 0, len(h.Buckets)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if v.Compare(h.Buckets[mid].Upper) <= 0 {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if v.Compare(h.Buckets[lo].Upper) > 0 {
		return nil
	}
	return &h.Buckets[lo]
}

// fraction estimates where v sits between lo and hi in [0,1].
func fraction(lo, hi, v datum.Datum) float64 {
	if lo.Kind() == datum.KString || hi.Kind() == datum.KString || v.Kind() == datum.KString {
		return 0.5
	}
	l, u, x := lo.Float(), hi.Float(), v.Float()
	if u <= l {
		return 0.5
	}
	return clamp01((x - l) / (u - l))
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// ColumnStats bundles per-column statistics.
type ColumnStats struct {
	Hist     *Histogram
	Distinct int64
	Rows     int64
}

// Store is the thread-safe statistics registry keyed by "table.column"
// (lowercase). It records which statistics exist so the tuner's
// asynchronous statistics policy can decide when to build new ones.
//
// Statistics are copy-on-write: a ColumnStats (and its histogram) is
// constructed privately, published once via Set under the write lock,
// and never mutated afterwards. Readers therefore share the installed
// object freely — the optimizer estimates selectivities on it from many
// statement goroutines at once while the tuner refreshes statistics by
// installing a replacement, never by editing in place.
type Store struct {
	mu    sync.RWMutex
	cols  map[string]*ColumnStats
	built int64 // number of Build operations, for observability
	// epoch increments on every statistics change (install or drop). It
	// is the monotonic invalidation token for anything costed against a
	// statistics snapshot — the engine's plan cache compares epochs
	// instead of histogram contents.
	epoch atomic.Int64
}

// Epoch returns the current statistics epoch. It increases whenever any
// column's statistics are installed or dropped; a plan costed under
// epoch e is guaranteed to see the same histograms while Epoch() == e.
func (s *Store) Epoch() int64 { return s.epoch.Load() }

// NewStore returns an empty statistics store.
func NewStore() *Store {
	return &Store{cols: make(map[string]*ColumnStats)}
}

func key(table, column string) string {
	return strings.ToLower(table) + "." + strings.ToLower(column)
}

// Set installs statistics for table.column.
func (s *Store) Set(table, column string, cs *ColumnStats) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cols[key(table, column)] = cs
	s.built++
	s.epoch.Add(1)
}

// Get returns the statistics for table.column, or nil. The returned
// object is shared and must be treated as read-only; install updated
// statistics with Set instead of mutating it.
func (s *Store) Get(table, column string) *ColumnStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.cols[key(table, column)]
}

// Has reports whether statistics exist for table.column.
func (s *Store) Has(table, column string) bool {
	return s.Get(table, column) != nil
}

// Drop removes the statistics for table.column.
func (s *Store) Drop(table, column string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.cols, key(table, column))
	s.epoch.Add(1)
}

// BuildCount returns the number of statistics builds performed, used by
// tests and the overhead report.
func (s *Store) BuildCount() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.built
}

// BuildColumn computes statistics from a column's values and installs
// them.
func (s *Store) BuildColumn(table, column string, values []datum.Datum, buckets int) *ColumnStats {
	h := Build(values, buckets)
	cs := &ColumnStats{Hist: h, Distinct: h.DistinctN, Rows: h.Rows + h.Nulls}
	s.Set(table, column, cs)
	return cs
}

// String renders a short histogram summary for debugging.
func (h *Histogram) String() string {
	return fmt.Sprintf("hist{rows=%d nulls=%d distinct=%d buckets=%d}",
		h.Rows, h.Nulls, h.DistinctN, len(h.Buckets))
}
