package catalog

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"onlinetuner/internal/datum"
)

func testTable(t *testing.T) *Table {
	t.Helper()
	tbl, err := NewTable("R", []Column{
		{Name: "id", Kind: datum.KInt},
		{Name: "a", Kind: datum.KInt},
		{Name: "b", Kind: datum.KInt},
		{Name: "c", Kind: datum.KInt},
		{Name: "d", Kind: datum.KInt},
		{Name: "e", Kind: datum.KInt},
	}, []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestNewTableValidation(t *testing.T) {
	if _, err := NewTable("", []Column{{Name: "a"}}, []string{"a"}); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := NewTable("t", nil, nil); err == nil {
		t.Error("no columns accepted")
	}
	if _, err := NewTable("t", []Column{{Name: "a"}, {Name: "A"}}, []string{"a"}); err == nil {
		t.Error("duplicate column accepted")
	}
	if _, err := NewTable("t", []Column{{Name: "a"}}, []string{"zz"}); err == nil {
		t.Error("bad primary key accepted")
	}
	if _, err := NewTable("t", []Column{{Name: "a"}}, nil); err == nil {
		t.Error("missing primary key accepted")
	}
}

func TestColumnLookup(t *testing.T) {
	tbl := testTable(t)
	if tbl.ColumnIndex("A") != 1 {
		t.Error("case-insensitive lookup failed")
	}
	if tbl.ColumnIndex("nope") != -1 {
		t.Error("missing column should be -1")
	}
	if got := tbl.RowWidth(); got != 48 {
		t.Errorf("RowWidth = %d, want 48", got)
	}
	if got := tbl.ColumnsWidth([]string{"a", "b"}); got != 16 {
		t.Errorf("ColumnsWidth = %d, want 16", got)
	}
}

func ix(cols ...string) *Index {
	return &Index{Name: strings.Join(cols, "_"), Table: "R", Columns: cols}
}

func TestUsefulnessLevelDefinition3(t *testing.T) {
	// Examples straight from the paper.
	i1 := ix("a", "b", "c")
	i2 := ix("a", "c")
	if got := UsefulnessLevel(i1, i2); got != 1 {
		t.Errorf("level((a,b,c),(a,c)) = %d, want 1", got)
	}
	if got := UsefulnessLevel(i2, i1); got != -1 {
		t.Errorf("level((a,c),(a,b,c)) = %d, want -1", got)
	}
	cases := []struct {
		a, b *Index
		want int
	}{
		{ix("a", "b", "c", "d"), ix("a", "b", "c"), 2},
		{ix("a", "b", "c"), ix("a", "b", "c"), 2},
		{ix("b", "a", "c"), ix("a", "c"), 0},
		{ix("a", "b"), ix("c"), -1},
		{ix("a", "b", "c"), ix("b", "c"), 0},
	}
	for _, tc := range cases {
		if got := UsefulnessLevel(tc.a, tc.b); got != tc.want {
			t.Errorf("level(%v,%v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
	// Cross-table is always -1.
	other := &Index{Name: "s1", Table: "S", Columns: []string{"a"}}
	if UsefulnessLevel(ix("a"), other) != -1 {
		t.Error("cross-table usefulness must be -1")
	}
}

func TestUsefulnessLevelProperties(t *testing.T) {
	cols := []string{"a", "b", "c", "d", "e"}
	r := rand.New(rand.NewSource(3))
	randIx := func() *Index {
		n := 1 + r.Intn(4)
		perm := r.Perm(len(cols))
		cs := make([]string, n)
		for i := 0; i < n; i++ {
			cs[i] = cols[perm[i]]
		}
		return ix(cs...)
	}
	for i := 0; i < 2000; i++ {
		a, b := randIx(), randIx()
		l := UsefulnessLevel(a, b)
		if l < -1 || l > 2 {
			t.Fatalf("level out of range: %d", l)
		}
		// level >= 0 iff containment
		if (l >= 0) != a.ContainsColumns(b.Columns) {
			t.Fatalf("containment mismatch: %v %v level %d", a, b, l)
		}
		// level 2 iff prefix
		if (l == 2) != b.IsPrefixOf(a) {
			t.Fatalf("prefix mismatch: %v %v level %d", a, b, l)
		}
		// self level is always 2
		if UsefulnessLevel(a, a) != 2 {
			t.Fatalf("self level != 2 for %v", a)
		}
	}
}

func TestMergeLaws(t *testing.T) {
	i1 := ix("a", "b", "c")
	i2 := ix("a", "d", "e")
	m, err := Merge(i1, i2)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "c", "d", "e"}
	if strings.Join(m.Columns, ",") != strings.Join(want, ",") {
		t.Errorf("merge columns = %v, want %v", m.Columns, want)
	}
	// Merge must preserve i1 as a prefix (level 2) and contain i2 (level >= 0).
	if UsefulnessLevel(m, i1) != 2 {
		t.Error("merged index must have level 2 w.r.t. first input")
	}
	if UsefulnessLevel(m, i2) < 0 {
		t.Error("merged index must contain second input")
	}
	if _, err := Merge(i1, &Index{Table: "S", Columns: []string{"x"}}); err == nil {
		t.Error("cross-table merge accepted")
	}
}

func TestMergeQuick(t *testing.T) {
	cols := []string{"a", "b", "c", "d", "e", "f"}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pick := func() *Index {
			n := 1 + r.Intn(5)
			perm := r.Perm(len(cols))
			cs := make([]string, n)
			for i := range cs {
				cs[i] = cols[perm[i]]
			}
			return ix(cs...)
		}
		a, b := pick(), pick()
		m, err := Merge(a, b)
		if err != nil {
			return false
		}
		return UsefulnessLevel(m, a) == 2 && UsefulnessLevel(m, b) >= 0 &&
			len(m.Columns) <= len(a.Columns)+len(b.Columns)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestJaccard(t *testing.T) {
	if got := Jaccard(ix("a", "b", "c"), ix("a", "b", "c")); got != 1 {
		t.Errorf("self jaccard = %g", got)
	}
	if got := Jaccard(ix("a", "b"), ix("c", "d")); got != 0 {
		t.Errorf("disjoint jaccard = %g", got)
	}
	if got := Jaccard(ix("a", "b", "c"), ix("a", "c")); got != 2.0/3.0 {
		t.Errorf("jaccard = %g, want 2/3", got)
	}
	if got := Jaccard(ix("a"), &Index{Table: "S", Columns: []string{"a"}}); got != 0 {
		t.Error("cross-table jaccard must be 0")
	}
}

func TestCatalogLifecycle(t *testing.T) {
	c := New()
	tbl := testTable(t)
	if err := c.AddTable(tbl); err != nil {
		t.Fatal(err)
	}
	if err := c.AddTable(tbl); err == nil {
		t.Error("duplicate table accepted")
	}
	// Primary index should have been auto-created and cover all columns.
	pk := c.PrimaryIndex("R")
	if pk == nil || !pk.Primary {
		t.Fatal("primary index missing")
	}
	if pk.LeadingColumn() != "id" || len(pk.Columns) != 6 {
		t.Errorf("primary index columns = %v", pk.Columns)
	}

	i2 := &Index{Name: "I2", Table: "R", Columns: []string{"a", "b", "c", "id"}}
	if err := c.AddIndex(i2); err != nil {
		t.Fatal(err)
	}
	if err := c.AddIndex(&Index{Name: "I2b", Table: "R", Columns: []string{"a", "b", "c", "id"}}); err == nil {
		t.Error("duplicate column sequence accepted")
	}
	if err := c.AddIndex(&Index{Name: "bad", Table: "R", Columns: []string{"zz"}}); err == nil {
		t.Error("unknown column accepted")
	}
	if err := c.AddIndex(&Index{Name: "bad2", Table: "NoSuch", Columns: []string{"a"}}); err == nil {
		t.Error("unknown table accepted")
	}
	if got := len(c.TableIndexes("R")); got != 2 {
		t.Errorf("TableIndexes = %d, want 2", got)
	}
	if c.IndexByID("r(a,b,c,id)") == nil {
		t.Error("IndexByID failed")
	}
	if err := c.DropIndex("R_pk"); err == nil {
		t.Error("dropping primary index accepted")
	}
	if err := c.DropIndex("I2"); err != nil {
		t.Error(err)
	}
	if err := c.DropIndex("I2"); err == nil {
		t.Error("double drop accepted")
	}
	if err := c.DropTable("R"); err != nil {
		t.Error(err)
	}
	if c.Table("R") != nil || len(c.Indexes()) != 0 {
		t.Error("DropTable did not clean up")
	}
	if err := c.DropTable("R"); err == nil {
		t.Error("double table drop accepted")
	}
}

func TestIndexIDCanonical(t *testing.T) {
	a := &Index{Name: "X", Table: "R", Columns: []string{"A", "b"}}
	b := &Index{Name: "Y", Table: "r", Columns: []string{"a", "B"}}
	if a.ID() != b.ID() {
		t.Errorf("IDs differ: %s vs %s", a.ID(), b.ID())
	}
	if a.String() != "R(A,b)" {
		t.Errorf("String = %s", a.String())
	}
}
