// Package catalog holds the logical schema: table definitions, column
// metadata and index definitions. It is deliberately independent of the
// storage engine; storage attaches physical structures to catalog objects
// by name. Index definitions carry the column-sequence algebra (prefix,
// containment, leading-column agreement, merge) that the online tuning
// algorithms of the paper are built on (Definition 3 and the Merge-Reduce
// operation of reference [5]).
package catalog

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"onlinetuner/internal/datum"
)

// Column describes one table column.
type Column struct {
	Name string
	Kind datum.Kind
	// AvgWidth is the accounted byte width used for size estimation when a
	// concrete row is not available (e.g. what-if analysis of hypothetical
	// indexes). Zero means "use the kind's natural width".
	AvgWidth int
}

// width returns the accounting width of the column.
func (c Column) width() int {
	if c.AvgWidth > 0 {
		return c.AvgWidth
	}
	switch c.Kind {
	case datum.KInt, datum.KFloat, datum.KDate:
		return 8
	case datum.KBool:
		return 1
	case datum.KString:
		return 16 // default assumption for unsized strings
	}
	return 8
}

// Table describes a table's logical schema.
type Table struct {
	Name    string
	Columns []Column
	// PrimaryKey lists the column names of the primary (clustered) index.
	// Every table in this system has one, mirroring the paper's setup where
	// schedules "start with only primary indexes".
	PrimaryKey []string

	colIdx map[string]int
}

// NewTable builds a table definition and validates it.
func NewTable(name string, cols []Column, primaryKey []string) (*Table, error) {
	if name == "" {
		return nil, fmt.Errorf("catalog: empty table name")
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("catalog: table %s has no columns", name)
	}
	t := &Table{Name: name, Columns: cols, PrimaryKey: primaryKey,
		colIdx: make(map[string]int, len(cols))}
	for i, c := range cols {
		lc := strings.ToLower(c.Name)
		if _, dup := t.colIdx[lc]; dup {
			return nil, fmt.Errorf("catalog: table %s: duplicate column %s", name, c.Name)
		}
		t.colIdx[lc] = i
	}
	if len(primaryKey) == 0 {
		return nil, fmt.Errorf("catalog: table %s has no primary key", name)
	}
	for _, pk := range primaryKey {
		if _, ok := t.colIdx[strings.ToLower(pk)]; !ok {
			return nil, fmt.Errorf("catalog: table %s: primary key column %s not found", name, pk)
		}
	}
	return t, nil
}

// ColumnIndex returns the ordinal of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	if i, ok := t.colIdx[strings.ToLower(name)]; ok {
		return i
	}
	return -1
}

// ColumnNames returns the names of all columns in ordinal order.
func (t *Table) ColumnNames() []string {
	names := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		names[i] = c.Name
	}
	return names
}

// RowWidth returns the estimated accounted width of a full row.
func (t *Table) RowWidth() int {
	w := 0
	for _, c := range t.Columns {
		w += c.width()
	}
	return w
}

// ColumnsWidth returns the estimated accounted width of the named columns.
func (t *Table) ColumnsWidth(names []string) int {
	w := 0
	for _, n := range names {
		if i := t.ColumnIndex(n); i >= 0 {
			w += t.Columns[i].width()
		}
	}
	return w
}

// Index describes a (possibly hypothetical) secondary or primary index:
// an ordered sequence of key columns over one table. The paper's index
// model is exactly this — e.g. I2 = R(a,b,c,id) — with covering decided by
// column containment and seek ability by key prefix.
type Index struct {
	Name    string
	Table   string
	Columns []string // ordered key columns
	Primary bool     // the clustered primary index; cannot be dropped

	// Hypothetical marks what-if indexes that have no physical structure.
	Hypothetical bool

	// id caches the canonical identity. It is written ONLY by Canonicalize,
	// which must run before the index is shared between goroutines; a
	// lazily-written memo inside ID() was a data race once statements
	// started executing concurrently. Copying the struct copies the cache,
	// which stays correct as long as Table/Columns are not mutated.
	id string
}

func computeID(table string, columns []string) string {
	return strings.ToLower(table) + "(" + strings.ToLower(strings.Join(columns, ",")) + ")"
}

// Canonicalize precomputes the index's ID so later ID() calls are free.
// Call it right after constructing an Index, before publishing it to
// other goroutines; it returns the index for chaining.
func (ix *Index) Canonicalize() *Index {
	ix.id = computeID(ix.Table, ix.Columns)
	return ix
}

// ID returns a canonical identity string: table(col1,col2,...). Two Index
// values with the same ID are the same physical design object regardless
// of Name. Non-canonicalized indexes compute the value fresh on every
// call — ID() itself never writes, so sharing an Index between
// goroutines is safe either way.
func (ix *Index) ID() string {
	if ix.id != "" {
		return ix.id
	}
	return computeID(ix.Table, ix.Columns)
}

// String renders the index like the paper: R(a,b,c,id).
func (ix *Index) String() string {
	return ix.Table + "(" + strings.Join(ix.Columns, ",") + ")"
}

// HasColumn reports whether the index contains the named column anywhere
// in its key sequence.
func (ix *Index) HasColumn(name string) bool {
	for _, c := range ix.Columns {
		if strings.EqualFold(c, name) {
			return true
		}
	}
	return false
}

// ContainsColumns reports whether the index's column set is a superset of
// names (order-insensitive).
func (ix *Index) ContainsColumns(names []string) bool {
	for _, n := range names {
		if !ix.HasColumn(n) {
			return false
		}
	}
	return true
}

// LeadingColumn returns the first key column.
func (ix *Index) LeadingColumn() string {
	if len(ix.Columns) == 0 {
		return ""
	}
	return ix.Columns[0]
}

// IsPrefixOf reports whether ix's column sequence is a prefix of other's.
func (ix *Index) IsPrefixOf(other *Index) bool {
	if len(ix.Columns) > len(other.Columns) {
		return false
	}
	for i, c := range ix.Columns {
		if !strings.EqualFold(c, other.Columns[i]) {
			return false
		}
	}
	return true
}

// UsefulnessLevel implements Definition 3 of the paper: the usefulness
// level of i1 with respect to i2.
//
//	-1: i1's columns do not include i2's columns
//	 0: i1's columns include i2's columns
//	 1: additionally, i2's leading column agrees with i1's
//	 2: additionally, i2 is a prefix of i1
func UsefulnessLevel(i1, i2 *Index) int {
	if i1.Table != i2.Table || !i1.ContainsColumns(i2.Columns) {
		return -1
	}
	if !strings.EqualFold(i1.LeadingColumn(), i2.LeadingColumn()) {
		return 0
	}
	if !i2.IsPrefixOf(i1) {
		return 1
	}
	return 2
}

// Merge implements index merging [5]: the merged index preserves i1's key
// order (so it can still seek on i1's prefix) and appends i2's columns that
// are missing, in i2's order. The result can answer every request served by
// i1 optimally and every request served by i2 at least by scan, while being
// smaller than the two indexes combined.
func Merge(i1, i2 *Index) (*Index, error) {
	if !strings.EqualFold(i1.Table, i2.Table) {
		return nil, fmt.Errorf("catalog: cannot merge indexes on different tables %s, %s", i1.Table, i2.Table)
	}
	cols := make([]string, 0, len(i1.Columns)+len(i2.Columns))
	cols = append(cols, i1.Columns...)
	for _, c := range i2.Columns {
		if !containsFold(cols, c) {
			cols = append(cols, c)
		}
	}
	// The name derives from the merged column set (not the input names,
	// which would grow without bound under repeated merging).
	m := &Index{
		Name:    "mrg_" + strings.ToLower(i1.Table) + "_" + strings.ToLower(strings.Join(cols, "_")),
		Table:   i1.Table,
		Columns: cols,
	}
	return m.Canonicalize(), nil
}

// Jaccard returns |i1 ∩ i2| / |i1 ∪ i2| over column sets — the similarity
// measure the paper uses to pick "the most similar index" when inferring
// update costs for new candidates (Section 3.2.1).
func Jaccard(i1, i2 *Index) float64 {
	if !strings.EqualFold(i1.Table, i2.Table) {
		return 0
	}
	inter := 0
	for _, c := range i1.Columns {
		if i2.HasColumn(c) {
			inter++
		}
	}
	union := len(i1.Columns) + len(i2.Columns) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

func containsFold(ss []string, s string) bool {
	for _, x := range ss {
		if strings.EqualFold(x, s) {
			return true
		}
	}
	return false
}

// Catalog is the thread-safe registry of tables and indexes.
type Catalog struct {
	mu      sync.RWMutex
	tables  map[string]*Table
	indexes map[string]*Index // by lowercase name
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{
		tables:  make(map[string]*Table),
		indexes: make(map[string]*Index),
	}
}

// AddTable registers a table and creates its primary index definition
// (named <table>_pk) automatically.
func (c *Catalog) AddTable(t *Table) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(t.Name)
	if _, dup := c.tables[key]; dup {
		return fmt.Errorf("catalog: table %s already exists", t.Name)
	}
	c.tables[key] = t
	pk := &Index{
		Name:    t.Name + "_pk",
		Table:   t.Name,
		Columns: append([]string(nil), t.PrimaryKey...),
		Primary: true,
	}
	// The clustered primary index contains every column of the table
	// (leaf rows are full rows); model that by appending the non-key
	// columns after the key so containment checks see it as covering.
	for _, col := range t.Columns {
		if !containsFold(pk.Columns, col.Name) {
			pk.Columns = append(pk.Columns, col.Name)
		}
	}
	c.indexes[strings.ToLower(pk.Name)] = pk.Canonicalize()
	return nil
}

// DropTable removes a table and all of its indexes.
func (c *Catalog) DropTable(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(name)
	if _, ok := c.tables[key]; !ok {
		return fmt.Errorf("catalog: table %s does not exist", name)
	}
	delete(c.tables, key)
	for iname, ix := range c.indexes {
		if strings.EqualFold(ix.Table, name) {
			delete(c.indexes, iname)
		}
	}
	return nil
}

// Table returns the named table, or nil.
func (c *Catalog) Table(name string) *Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.tables[strings.ToLower(name)]
}

// Tables returns all tables sorted by name.
func (c *Catalog) Tables() []*Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Table, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// AddIndex registers a secondary index definition. The columns must exist
// on the table, and no index with the same name or identical column
// sequence may exist.
func (c *Catalog) AddIndex(ix *Index) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := c.tables[strings.ToLower(ix.Table)]
	if t == nil {
		return fmt.Errorf("catalog: index %s references unknown table %s", ix.Name, ix.Table)
	}
	for _, col := range ix.Columns {
		if t.ColumnIndex(col) < 0 {
			return fmt.Errorf("catalog: index %s references unknown column %s.%s", ix.Name, ix.Table, col)
		}
	}
	key := strings.ToLower(ix.Name)
	if _, dup := c.indexes[key]; dup {
		return fmt.Errorf("catalog: index %s already exists", ix.Name)
	}
	id := ix.ID()
	for _, ex := range c.indexes {
		if ex.ID() == id {
			return fmt.Errorf("catalog: an index with columns %s already exists (%s)", id, ex.Name)
		}
	}
	c.indexes[key] = ix
	return nil
}

// DropIndex removes a secondary index definition. Primary indexes cannot
// be dropped.
func (c *Catalog) DropIndex(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(name)
	ix, ok := c.indexes[key]
	if !ok {
		return fmt.Errorf("catalog: index %s does not exist", name)
	}
	if ix.Primary {
		return fmt.Errorf("catalog: cannot drop primary index %s", name)
	}
	delete(c.indexes, key)
	return nil
}

// Index returns the named index, or nil.
func (c *Catalog) Index(name string) *Index {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.indexes[strings.ToLower(name)]
}

// IndexByID returns the index with the given canonical ID, or nil.
func (c *Catalog) IndexByID(id string) *Index {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, ix := range c.indexes {
		if ix.ID() == id {
			return ix
		}
	}
	return nil
}

// Indexes returns all indexes sorted by name.
func (c *Catalog) Indexes() []*Index {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Index, 0, len(c.indexes))
	for _, ix := range c.indexes {
		out = append(out, ix)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// TableIndexes returns all indexes over the named table, primary first,
// then sorted by name.
func (c *Catalog) TableIndexes(table string) []*Index {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []*Index
	for _, ix := range c.indexes {
		if strings.EqualFold(ix.Table, table) {
			out = append(out, ix)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Primary != out[j].Primary {
			return out[i].Primary
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// PrimaryIndex returns the primary index of the named table, or nil.
func (c *Catalog) PrimaryIndex(table string) *Index {
	for _, ix := range c.TableIndexes(table) {
		if ix.Primary {
			return ix
		}
	}
	return nil
}
