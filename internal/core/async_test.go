package core

// Deterministic unit tests for asynchronous background index creation,
// driven entirely through the tuner's event surface: every assertion
// keys off a received Event, never off sleeps or wall-clock timing. The
// workload is replayed single-threaded, so event order is exact; the
// background build goroutine is synchronized by the publish gate (the
// tuner waits on its completion channel when the accounted B_I^s cost
// has elapsed), which keeps even the physical build deterministic.

import (
	"testing"

	"onlinetuner/internal/engine"
	"onlinetuner/internal/storage"
)

// drain empties the subscriber channel, appending to got.
func drain(ev <-chan Event, got *[]Event) {
	for {
		select {
		case e := <-ev:
			*got = append(*got, e)
		default:
			return
		}
	}
}

// runUntil replays statement q until pred sees a matching event or the
// budget of executions runs out; it returns whether pred matched.
func runUntil(t *testing.T, db *engine.DB, ev <-chan Event, q string, budget int, got *[]Event, pred func(Event) bool) bool {
	t.Helper()
	matched := func() bool {
		for _, e := range *got {
			if pred(e) {
				return true
			}
		}
		return false
	}
	if matched() {
		return true
	}
	for i := 0; i < budget; i++ {
		if _, _, err := db.Exec(q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		drain(ev, got)
		if matched() {
			return true
		}
	}
	return false
}

func isKind(k EventKind) func(Event) bool {
	return func(e Event) bool { return e.Kind == k }
}

func TestAsyncBuildCompletesThroughEvents(t *testing.T) {
	db := paperDB(t, 2000)
	opts := DefaultOptions()
	opts.Async = true
	tn := Attach(db, opts)
	defer tn.Close()
	ev := tn.Subscribe(256)

	var got []Event
	if !runUntil(t, db, ev, q1, 300, &got, isKind(EvCreate)) {
		t.Fatalf("async build never completed; events = %v", got)
	}

	// The build must have been announced before it was published, for
	// the same index.
	startAt, createAt := -1, -1
	var built Event
	for i, e := range got {
		if e.Kind == EvBuildStart && startAt < 0 {
			startAt = i
			built = e
		}
		if e.Kind == EvCreate && createAt < 0 {
			createAt = i
		}
	}
	if startAt < 0 || createAt < 0 || startAt > createAt {
		t.Fatalf("bad event order: build-start at %d, create at %d (%v)", startAt, createAt, got)
	}
	if got[createAt].Index.ID() != built.Index.ID() {
		t.Errorf("build-start index %v != created index %v", built.Index, got[createAt].Index)
	}

	// The published structure is real, active, and complete.
	pi := db.Mgr.Index(built.Index.ID())
	if pi == nil || pi.State() != storage.StateActive {
		t.Fatalf("published index %v not active", built.Index)
	}
	if got, want := pi.Tree().Len(), db.Mgr.Heap("R").Len(); got != want {
		t.Errorf("index entries = %d, rows = %d", got, want)
	}
	if db.Cat.IndexByID(built.Index.ID()) == nil {
		t.Error("published index missing from catalog")
	}

	m := tn.Metrics()
	if m.BuildsStarted < 1 || m.BuildsCompleted < 1 {
		t.Errorf("metrics: started=%d completed=%d", m.BuildsStarted, m.BuildsCompleted)
	}
}

func TestAsyncBuildAbortsOnErosion(t *testing.T) {
	db := paperDB(t, 3000)
	opts := DefaultOptions()
	opts.Async = true
	tn := Attach(db, opts)
	defer tn.Close()
	ev := tn.Subscribe(256)

	var got []Event
	if !runUntil(t, db, ev, q1, 300, &got, isKind(EvBuildStart)) {
		t.Fatal("no build ever started")
	}
	if len(tn.Events()) > 0 {
		t.Skipf("build completed before updates could erode it: %v", tn.Events())
	}
	var started Event
	for _, e := range got {
		if e.Kind == EvBuildStart {
			started = e
			break
		}
	}

	// Full-table updates erode the candidate's benefit; the paper's rule
	// cancels the build once the erosion exceeds B_I^s.
	up := "UPDATE R SET b = b + 1, c = c + 1, d = d + 1, e = e + 1 WHERE id >= 0"
	if !runUntil(t, db, ev, up, 100, &got, isKind(EvAbort)) {
		t.Fatalf("build never aborted under update burst; events = %v", got)
	}

	// The half-built structure must be discarded entirely: no physical
	// index, no catalog entry, no pending build.
	if pi := db.Mgr.Index(started.Index.ID()); pi != nil {
		t.Errorf("aborted build left physical index in state %v", pi.State())
	}
	if db.Cat.IndexByID(started.Index.ID()) != nil {
		t.Error("aborted build left catalog entry")
	}
	if tn.pending != nil {
		t.Error("aborted build left pending state")
	}
	if m := tn.Metrics(); m.BuildsAborted != 1 {
		t.Errorf("BuildsAborted = %d", m.BuildsAborted)
	}
}

func TestAsyncSuspendThenRestart(t *testing.T) {
	db := paperDB(t, 2000)
	opts := DefaultOptions()
	opts.Async = true
	opts.UseSuspend = true
	opts.CooldownQueries = 5
	tn := Attach(db, opts)
	defer tn.Close()
	ev := tn.Subscribe(1024)

	// Phase 1: reads until an index is built and published.
	var got []Event
	if !runUntil(t, db, ev, q1, 300, &got, isKind(EvCreate)) {
		t.Fatalf("no index created; events = %v", got)
	}
	var created Event
	for _, e := range got {
		if e.Kind == EvCreate {
			created = e
			break
		}
	}

	// Phase 2: update-only workload until the index is suspended (drops
	// are replaced by suspends under UseSuspend).
	up := "UPDATE R SET b = b + 1, c = c + 1, d = d + 1, e = e + 1 WHERE id >= 0"
	if !runUntil(t, db, ev, up, 200, &got, isKind(EvSuspend)) {
		t.Fatalf("index never suspended; events = %v", got)
	}
	pi := db.Mgr.Index(created.Index.ID())
	if pi == nil || pi.State() != storage.StateSuspended {
		t.Fatalf("expected %v suspended", created.Index)
	}

	// Phase 3: reads again until the suspended structure restarts. A
	// restart is an asynchronous creation without a physical rebuild —
	// the existing structure replays its missed changes at publish time.
	if !runUntil(t, db, ev, q1, 400, &got, isKind(EvRestart)) {
		t.Fatalf("index never restarted; events = %v", got)
	}
	if pi.State() != storage.StateActive {
		t.Fatalf("restarted index is %v", pi.State())
	}
	if got, want := pi.Tree().Len(), db.Mgr.Heap("R").Len(); got != want {
		t.Errorf("restarted index entries = %d, rows = %d", got, want)
	}

	// The restart must have been announced like any other build, and
	// must not have run a snapshot build (pendingBuild.build stays nil on
	// the restart path — asserted via the drained event costs: restart
	// events charge the replay cost, which is below a fresh B_I^s).
	sawRestartStart := false
	for i, e := range got {
		if e.Kind == EvBuildStart && i > 0 && e.Index.ID() == created.Index.ID() {
			for _, later := range got[i:] {
				if later.Kind == EvRestart {
					sawRestartStart = true
				}
			}
		}
	}
	if !sawRestartStart {
		t.Errorf("no build-start announcement for the restart; events = %v", got)
	}
}
