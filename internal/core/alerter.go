package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"onlinetuner/internal/catalog"
	"onlinetuner/internal/engine"
	"onlinetuner/internal/whatif"
)

// Alerter is the paper's companion mode (Bruno & Chaudhuri, "To Tune or
// not to Tune? A Lightweight Physical Design Alerter", VLDB 2006 —
// reference [6], whose instrumentation Section 2 reuses): it observes
// the same request stream as OnlinePT and accumulates the same
// per-candidate evidence, but never changes the physical design.
// Instead it maintains a LOWER BOUND on how much a comprehensive tuning
// session would improve the observed workload, and raises an alert when
// that bound crosses a configurable fraction of the observed cost.
//
// The bound is valid because it only counts improvements that are
// individually realizable: for each candidate index, the accumulated
// Δ−Δmin is the cost the observed workload would have saved had the
// index existed (net of nothing — creation cost is subtracted), and the
// report takes a non-overlapping subset of candidates (greedy by table:
// at most one candidate per table), so no request's saving is counted
// twice.
type Alerter struct {
	db  *engine.DB
	env *whatif.Env

	// Threshold is the improvement fraction (savings / observed cost)
	// that triggers an alert. The paper's alerter uses configurable
	// thresholds; 0.1 by default.
	Threshold float64

	tracked      map[string]*IndexStats
	observedCost float64
	queries      int64
	alerts       []Alert
}

// Alert is one raised recommendation-to-tune event.
type Alert struct {
	AtQuery int64
	// LowerBound is the guaranteed-achievable improvement (cost units)
	// for the workload observed so far.
	LowerBound float64
	// ObservedCost is the total estimated cost of the observed workload.
	ObservedCost float64
	// Candidates lists the non-overlapping index set realizing the bound.
	Candidates []*catalog.Index
	When       time.Time
}

// Improvement returns the alert's relative improvement bound.
func (a Alert) Improvement() float64 {
	if a.ObservedCost <= 0 {
		return 0
	}
	return a.LowerBound / a.ObservedCost
}

func (a Alert) String() string {
	names := make([]string, len(a.Candidates))
	for i, ix := range a.Candidates {
		names[i] = ix.String()
	}
	return fmt.Sprintf("alert@%d: tuning would save ≥ %.1f (%.1f%% of %.1f) via %s",
		a.AtQuery, a.LowerBound, a.Improvement()*100, a.ObservedCost, strings.Join(names, ", "))
}

// NewAlerter builds an alerter over a database. Install it with
// db.SetObserver (it satisfies engine.Observer), or feed it manually.
func NewAlerter(db *engine.DB, threshold float64) *Alerter {
	if threshold <= 0 {
		threshold = 0.1
	}
	return &Alerter{
		db:        db,
		env:       db.WhatIfEnv(),
		Threshold: threshold,
		tracked:   make(map[string]*IndexStats),
	}
}

// OnExecuted implements engine.Observer.
func (a *Alerter) OnExecuted(info *engine.QueryInfo) {
	a.queries++
	a.observedCost += info.EstCost
	config := a.db.Configuration()
	for _, r := range info.Result.Tree.Requests() {
		if r.Kind == whatif.KindUpdate {
			// Updates penalize every tracked candidate over the table,
			// keeping the bound honest for update-heavy workloads.
			maint := a.env.MaintenancePerIndex(r)
			for _, st := range a.tracked {
				if strings.EqualFold(st.Ix.Table, r.Table) {
					st.Add(LevelU, 0, maint, false)
				}
			}
			continue
		}
		best := whatif.GetBestIndex(a.env.Cat, r)
		if best == nil || best.Primary || a.env.Available(best) {
			continue
		}
		st := a.tracked[best.ID()]
		if st == nil {
			st = NewIndexStats(best)
			a.tracked[best.ID()] = st
		}
		o := whatif.GetCost(a.env, r, config)
		n := whatif.GetCost(a.env, r, append(config, best))
		st.Add(UsageLevel(r), o, n, false)
	}

	bound, cands := a.LowerBound()
	if a.observedCost > 0 && bound/a.observedCost >= a.Threshold {
		a.alerts = append(a.alerts, Alert{
			AtQuery:      a.queries,
			LowerBound:   bound,
			ObservedCost: a.observedCost,
			Candidates:   cands,
			When:         time.Now(),
		})
		// Re-arm: evidence already reported is consumed so the next alert
		// reflects new findings rather than repeating this one.
		for _, st := range a.tracked {
			st.OnDropped()
		}
	}
}

// LowerBound returns the current guaranteed improvement and the
// candidate set realizing it: for each table, the single candidate with
// the largest net evidence (Δ−Δmin minus its creation cost), summed over
// tables. One candidate per table guarantees no double counting of a
// request's savings.
func (a *Alerter) LowerBound() (float64, []*catalog.Index) {
	bestPerTable := map[string]*IndexStats{}
	netOf := func(st *IndexStats) float64 {
		return st.Delta() - st.DeltaMin - whatif.BuildCost(a.env, st.Ix)
	}
	for _, st := range a.tracked {
		key := strings.ToLower(st.Ix.Table)
		if cur := bestPerTable[key]; cur == nil || netOf(st) > netOf(cur) {
			bestPerTable[key] = st
		}
	}
	var total float64
	var cands []*catalog.Index
	for _, st := range bestPerTable {
		if net := netOf(st); net > 0 {
			total += net
			cands = append(cands, st.Ix)
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].ID() < cands[j].ID() })
	return total, cands
}

// Alerts returns the raised alerts.
func (a *Alerter) Alerts() []Alert { return a.alerts }

// ObservedCost returns the total estimated cost observed so far.
func (a *Alerter) ObservedCost() float64 { return a.observedCost }
