package core

import (
	"math"
	"testing"
	"testing/quick"

	"onlinetuner/internal/catalog"
	"onlinetuner/internal/whatif"
)

func ix(cols ...string) *catalog.Index {
	return &catalog.Index{Name: "ix", Table: "R", Columns: cols}
}

func TestUsageLevelClassification(t *testing.T) {
	cases := []struct {
		r    *whatif.Request
		want int
	}{
		{&whatif.Request{Kind: whatif.KindScan}, Level0},
		{&whatif.Request{Kind: whatif.KindScan, SortCols: []string{"a"}}, Level2},
		{&whatif.Request{Kind: whatif.KindSeek, EqCols: []string{"a"}}, Level1},
		{&whatif.Request{Kind: whatif.KindSeek, RangeCol: "a"}, Level1},
		{&whatif.Request{Kind: whatif.KindSeek, EqCols: []string{"a"}, RangeCol: "b"}, Level2},
		{&whatif.Request{Kind: whatif.KindSeek, EqCols: []string{"a", "b"}}, Level2},
		{&whatif.Request{Kind: whatif.KindSeek, EqCols: []string{"a"}, SortCols: []string{"b"}}, Level2},
		{&whatif.Request{Kind: whatif.KindUpdate}, LevelU},
		{nil, Level0},
	}
	for i, tc := range cases {
		if got := UsageLevel(tc.r); got != tc.want {
			t.Errorf("case %d: level = %d, want %d", i, got, tc.want)
		}
	}
}

func TestAddAndDelta(t *testing.T) {
	s := NewIndexStats(ix("a"))
	if s.Delta() != 0 || s.DeltaMin != 0 || s.DeltaMax != 0 {
		t.Fatal("fresh stats not zeroed")
	}
	d := s.Add(Level1, 10, 3, false)
	if d != 7 || s.Delta() != 7 {
		t.Fatalf("delta = %g", s.Delta())
	}
	if s.DeltaMax != 7 || s.DeltaMin != 0 {
		t.Fatalf("trackers = %g %g", s.DeltaMin, s.DeltaMax)
	}
	// Update penalty drives Δ down.
	s.Add(LevelU, 0, 20, false)
	if s.Delta() != -13 || s.DeltaMin != -13 || s.DeltaMax != 7 {
		t.Fatalf("after penalty: Δ=%g min=%g max=%g", s.Delta(), s.DeltaMin, s.DeltaMax)
	}
}

func TestBenefitAndResidual(t *testing.T) {
	s := NewIndexStats(ix("a"))
	s.Add(Level1, 10, 2, false) // Δ = 8
	B := 5.0
	if got := s.Benefit(B); got != 3 {
		t.Errorf("benefit = %g, want 3", got)
	}
	if got := s.Residual(B); got != 5 { // Δ == Δmax → residual == B
		t.Errorf("residual = %g, want 5", got)
	}
	// Penalties push residual toward negative.
	s.Add(LevelU, 0, 10, false) // Δ = -2, Δmax = 8
	if got := s.Residual(B); got != -5 {
		t.Errorf("residual = %g, want -5", got)
	}
	if s.Residual(B) >= 0 {
		t.Error("index should be a dropping candidate")
	}
}

func TestResidualUpperBoundedByB(t *testing.T) {
	// Invariant from Section 3.2.2: residual ≤ B always, because Δmax
	// tracks Δ.
	f := func(obs []float64) bool {
		s := NewIndexStats(ix("a"))
		B := 4.0
		for _, o := range obs {
			v := math.Mod(math.Abs(o), 10)
			s.Add(Level0, v, v/2, false)
			if s.Residual(B) > B+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAtPeakAndOnCreatedDropped(t *testing.T) {
	s := NewIndexStats(ix("a"))
	s.Add(Level1, 5, 1, false)
	if !s.AtPeak() {
		t.Error("should be at peak after monotone gains")
	}
	s.Add(LevelU, 0, 2, false)
	if s.AtPeak() {
		t.Error("should be off peak after a penalty")
	}
	s.OnCreated()
	if s.DeltaMax != s.Delta() {
		t.Error("OnCreated must reset Δmax")
	}
	s.OnDropped()
	if s.DeltaMin != s.Delta() {
		t.Error("OnDropped must reset Δmin")
	}
}

func TestDecayBenefit(t *testing.T) {
	const B = 3.0
	s := NewIndexStats(ix("a"))
	s.Add(Level1, 10, 2, false) // Δ=8, benefit(B=3) = 5
	s.DecayBenefit(3, B)
	if math.Abs(s.Benefit(B)-2) > 1e-9 {
		t.Errorf("benefit after decay = %g, want 2", s.Benefit(B))
	}
	// The floor is benefit = 0 (the paper's max(0, benefit−δ)): evidence
	// up to the creation threshold is never taken away.
	s.DecayBenefit(1000, B)
	if math.Abs(s.Benefit(B)) > 1e-9 {
		t.Errorf("benefit after huge decay = %g, want 0", s.Benefit(B))
	}
	// At the floor, further decay is a no-op.
	before := s.Delta()
	s.DecayBenefit(50, B)
	if s.Delta() != before {
		t.Error("decay below the floor changed Δ")
	}
	// Zero or negative decay is a no-op.
	s.DecayBenefit(0, B)
	s.DecayBenefit(-5, B)
	if s.Delta() != before {
		t.Error("non-positive decay changed Δ")
	}
}

func TestAdjustAfterCreate(t *testing.T) {
	// I = (a,b,c) created; Ij = (a,c): level(I wrt Ij) = 1 → O^0 and O^1
	// shrink toward α·N.
	created := ix("a", "b", "c")
	s := NewIndexStats(ix("a", "c"))
	s.O[Level0], s.N[Level0] = 100, 10
	s.O[Level1], s.N[Level1] = 50, 5
	s.O[Level2], s.N[Level2] = 30, 3
	s.clampTrackers()
	s.AdjustAfterCreate(created, 60, 100) // α = 0.6
	if s.O[Level0] != 6 {                 // min(100, 0.6·10)
		t.Errorf("O0 = %g, want 6", s.O[Level0])
	}
	if s.O[Level1] != 3 {
		t.Errorf("O1 = %g, want 3", s.O[Level1])
	}
	if s.O[Level2] != 30 { // level 2 untouched (lj = 1)
		t.Errorf("O2 = %g, want 30", s.O[Level2])
	}
	// N values never change.
	if s.N[Level0] != 10 || s.N[Level1] != 5 {
		t.Error("N must remain unchanged")
	}
	// Level -1 relationship: no adjustment.
	s2 := NewIndexStats(ix("d", "e"))
	s2.O[Level0] = 42
	s2.AdjustAfterCreate(created, 10, 100)
	if s2.O[Level0] != 42 {
		t.Error("unrelated index adjusted")
	}
}

func TestAdjustAfterDrop(t *testing.T) {
	dropped := NewIndexStats(ix("a", "b", "c"))
	dropped.O[Level0], dropped.N[Level0] = 20, 10 // β0 = 2
	dropped.O[Level1], dropped.N[Level1] = 30, 10 // β1 = 3
	beta := dropped.BetaFor()
	if beta[0] != 2 || beta[1] != 3 || beta[2] != 1 {
		t.Fatalf("beta = %v", beta)
	}
	s := NewIndexStats(ix("a", "c"))
	s.O[Level0], s.O[Level1], s.O[Level2] = 5, 7, 9
	s.AdjustAfterDrop(dropped.Ix, beta) // level 1 → O0, O1 scaled
	if s.O[Level0] != 10 || s.O[Level1] != 21 || s.O[Level2] != 9 {
		t.Errorf("O = %v", s.O)
	}
	// β is clamped at 1 (a drop can never reduce original costs).
	weird := NewIndexStats(ix("x"))
	weird.O[Level0], weird.N[Level0] = 5, 10
	if b := weird.BetaFor(); b[0] != 1 {
		t.Errorf("β = %v, want clamped to 1", b)
	}
}

func TestInvalidateSharedOR(t *testing.T) {
	s := NewIndexStats(ix("a"))
	s.Add(Level1, 10, 2, true) // all N from shared OR
	before := s.Delta()
	s.InvalidateSharedOR()
	if s.Delta() >= before {
		t.Errorf("shared-OR invalidation did not reduce Δ: %g → %g", before, s.Delta())
	}
	if s.Delta() > 1e-9 {
		t.Errorf("fully-shared index should collapse to ~0 benefit, Δ=%g", s.Delta())
	}
	// Without shared contributions it is a no-op.
	s2 := NewIndexStats(ix("b"))
	s2.Add(Level1, 10, 2, false)
	d := s2.Delta()
	s2.InvalidateSharedOR()
	if s2.Delta() != d {
		t.Error("non-shared index changed")
	}
}

func TestInferFromSubOptimal(t *testing.T) {
	// Tracked: I2=(a,b,c,id) with benefit, I4=(a,d,e,id) with benefit and
	// update penalty. Merged M=(a,b,c,id,d,e) should inherit both.
	i2 := NewIndexStats(ix("a", "b", "c", "id"))
	i2.Add(Level1, 10, 2, false)
	i4 := NewIndexStats(ix("a", "d", "e", "id"))
	i4.Add(Level1, 8, 2, false)
	i4.Add(LevelU, 0, 1, false)
	m, err := catalog.Merge(i2.Ix, i4.Ix)
	if err != nil {
		t.Fatal(err)
	}
	sizeOf := func(x *catalog.Index) int64 { return int64(len(x.Columns)) * 100 }
	ms := InferFromSubOptimal(m, sizeOf(m), []*IndexStats{i2, i4}, sizeOf)
	if ms.Delta() <= 0 {
		t.Errorf("merged Δ = %g, want positive", ms.Delta())
	}
	// It must not exceed the sum of sources (sub-optimal usage is scaled
	// down).
	if ms.Delta() > i2.Delta()+i4.Delta()+1e-9 {
		t.Errorf("merged Δ %g exceeds sources %g", ms.Delta(), i2.Delta()+i4.Delta())
	}
	// Update shell inherited from the most similar index.
	if ms.N[LevelU] != 1 {
		t.Errorf("merged N^U = %g, want 1", ms.N[LevelU])
	}
}

func TestAddClampsBadLevel(t *testing.T) {
	s := NewIndexStats(ix("a"))
	s.Add(-5, 3, 1, false)
	s.Add(99, 3, 1, false)
	if s.O[Level0] != 6 {
		t.Errorf("out-of-range levels should fold to level 0: %v", s.O)
	}
}

func TestSumNAndClampTrackers(t *testing.T) {
	s := NewIndexStats(ix("a"))
	s.Add(Level0, 4, 1, false)
	s.Add(LevelU, 0, 2, false)
	if s.SumN() != 3 {
		t.Errorf("SumN = %g", s.SumN())
	}
	// External aggregate surgery then clamp restores the invariant.
	s.O[Level0] = -50
	s.clampTrackers()
	if s.Delta() < s.DeltaMin || s.Delta() > s.DeltaMax {
		t.Errorf("invariant broken: Δ=%g min=%g max=%g", s.Delta(), s.DeltaMin, s.DeltaMax)
	}
}
