package core

import (
	"encoding/json"
	"fmt"
	"io"

	"onlinetuner/internal/catalog"
	"onlinetuner/internal/engine"
	"onlinetuner/internal/storage"
)

// savedState is the JSON representation of the tuner's accumulated
// evidence. An always-on tuner must survive process restarts without
// re-learning the workload from scratch; the state is a constant amount
// per tracked index, exactly the paper's bookkeeping.
type savedState struct {
	Version int               `json:"version"`
	Queries int64             `json:"queries"`
	Tracked []savedIndexState `json:"tracked"`
}

type savedIndexState struct {
	Name     string     `json:"name"`
	Table    string     `json:"table"`
	Columns  []string   `json:"columns"`
	O        [4]float64 `json:"o"`
	N        [4]float64 `json:"n"`
	DeltaMin float64    `json:"delta_min"`
	DeltaMax float64    `json:"delta_max"`
	OrN      float64    `json:"or_n"`
	InConfig bool       `json:"in_config"`
	Derived  bool       `json:"derived,omitempty"`
	// FailStreak carries build-failure backoff across restarts, so a
	// candidate whose build failed repeatedly before the restart does not
	// immediately hot-loop after it. Omitted when zero; the format stays
	// readable by version-1 loaders.
	FailStreak int `json:"fail_streak,omitempty"`
}

const stateVersion = 1

// SaveState serializes the tuner's evidence (candidate set H plus
// configuration bookkeeping) as JSON. In-flight asynchronous builds are
// not saved: a restart aborts them, like a server restart would.
func (t *Tuner) SaveState(w io.Writer) error {
	st := savedState{Version: stateVersion, Queries: t.queries}
	for id, s := range t.tracked {
		if s.Creating {
			continue
		}
		st.Tracked = append(st.Tracked, savedIndexState{
			Name:       s.Ix.Name,
			Table:      s.Ix.Table,
			Columns:    s.Ix.Columns,
			O:          s.O,
			N:          s.N,
			DeltaMin:   s.DeltaMin,
			DeltaMax:   s.DeltaMax,
			OrN:        s.orN,
			InConfig:   t.inConfig[id],
			Derived:    s.Derived,
			FailStreak: s.FailStreak,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(st)
}

// LoadState restores previously saved evidence into a fresh tuner. The
// physical world wins over the snapshot: an entry marked in-configuration
// whose index is no longer active is demoted to a candidate (its
// evidence kept), and entries for tables that no longer exist are
// dropped. Loading into a tuner that has already observed queries is an
// error — state belongs at startup.
func (t *Tuner) LoadState(r io.Reader) error {
	if t.queries > 0 {
		return fmt.Errorf("core: LoadState after %d observed queries; load at startup", t.queries)
	}
	var st savedState
	if err := json.NewDecoder(r).Decode(&st); err != nil {
		return fmt.Errorf("core: decoding tuner state: %w", err)
	}
	if st.Version != stateVersion {
		return fmt.Errorf("core: tuner state version %d unsupported (want %d)", st.Version, stateVersion)
	}
	t.queries = st.Queries
	t.mQueries.Add(st.Queries - t.mQueries.Value())
	for _, e := range st.Tracked {
		if t.env.Cat.Table(e.Table) == nil {
			continue // table dropped since the snapshot
		}
		ix := &catalog.Index{Name: e.Name, Table: e.Table, Columns: e.Columns}
		s := NewIndexStats(ix)
		s.O, s.N = e.O, e.N
		s.DeltaMin, s.DeltaMax = e.DeltaMin, e.DeltaMax
		s.orN = e.OrN
		s.Derived = e.Derived
		s.FailStreak = e.FailStreak
		id := ix.ID()
		t.tracked[id] = s
		if e.InConfig {
			if pi := t.env.Mgr.Index(id); pi != nil && pi.State() == storage.StateActive {
				t.inConfig[id] = true
			}
			// Otherwise: demoted to candidate; its accumulated Δ makes it
			// an immediate re-creation contender, which is the right
			// behavior after losing an index across the restart.
		}
	}
	return nil
}

// AdoptRecovery merges the engine's crash-recovery decisions (kind
// "recovery-resume" / "recovery-abandon", one per background build the
// crash interrupted) into the tuner's decision log, so a single log
// tells the physical-design story across the restart. Call it right
// after Attach on a database opened with engine.OpenDurable.
func (t *Tuner) AdoptRecovery(info *engine.RecoveryInfo) {
	if info == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, d := range info.Decisions {
		t.mDecisions.Inc()
		t.decisions.Append(d)
	}
}
