package core

import (
	"testing"
)

func TestAlerterRaisesOnIndexableWorkload(t *testing.T) {
	db := paperDB(t, 3000)
	al := NewAlerter(db, 0.1)
	db.SetObserver(al)
	runN(t, db, q1, 60)
	alerts := al.Alerts()
	if len(alerts) == 0 {
		t.Fatal("no alert on a highly indexable workload")
	}
	first := alerts[0]
	if first.LowerBound <= 0 {
		t.Error("non-positive lower bound")
	}
	if first.Improvement() < 0.1 {
		t.Errorf("improvement %.3f below threshold", first.Improvement())
	}
	if len(first.Candidates) == 0 {
		t.Error("alert without candidates")
	}
	// The alerter must not have changed the physical design.
	if len(db.Configuration()) != 0 {
		t.Errorf("alerter created indexes: %v", db.Configuration())
	}
	if first.String() == "" {
		t.Error("empty rendering")
	}
}

// TestAlerterBoundIsRealizable verifies the lower-bound semantics: apply
// the alert's candidate set, replay the same workload, and check the
// actual saving meets the bound (net of creation costs).
func TestAlerterBoundIsRealizable(t *testing.T) {
	mk := func() (float64, *Alerter) {
		db := paperDB(t, 3000)
		al := NewAlerter(db, 0.05)
		db.SetObserver(al)
		total := 0.0
		for i := 0; i < 80; i++ {
			_, info, err := db.Exec(q1)
			if err != nil {
				t.Fatal(err)
			}
			total += info.EstCost
		}
		return total, al
	}
	untuned, al := mk()
	if len(al.Alerts()) == 0 {
		t.Skip("no alert raised at this scale")
	}
	last := al.Alerts()[len(al.Alerts())-1]

	// Fresh database with the alert's candidates created upfront.
	db2 := paperDB(t, 3000)
	creation := 0.0
	for _, ix := range last.Candidates {
		clone := *ix
		clone.Name = "alert_" + ix.Name
		if err := db2.CreateIndex(&clone); err != nil {
			t.Fatal(err)
		}
		creation += 1 // creation cost separately accounted below via bound semantics
	}
	tuned := 0.0
	for i := 0; i < 80; i++ {
		_, info, err := db2.Exec(q1)
		if err != nil {
			t.Fatal(err)
		}
		tuned += info.EstCost
	}
	saved := untuned - tuned
	// The alert's bound was computed part-way through the workload, so
	// the full-workload saving must be at least as large.
	if saved < last.LowerBound*0.9 {
		t.Errorf("actual saving %.1f below alerted bound %.1f", saved, last.LowerBound)
	}
}

func TestAlerterQuietOnUnindexableWorkload(t *testing.T) {
	db := paperDB(t, 1000)
	al := NewAlerter(db, 0.1)
	db.SetObserver(al)
	// Full-row scans: every column is required, so no secondary index —
	// not even a vertical partition — can beat the clustered primary.
	for i := 0; i < 40; i++ {
		db.MustExec("SELECT * FROM R")
	}
	if len(al.Alerts()) != 0 {
		t.Errorf("alert raised on unindexable workload: %v", al.Alerts())
	}
}

func TestAlerterUpdatePenaltiesLowerTheBound(t *testing.T) {
	db := paperDB(t, 2000)
	al := NewAlerter(db, 1e9) // never alert; inspect the bound directly
	db.SetObserver(al)
	runN(t, db, q1, 40)
	before, _ := al.LowerBound()
	if before <= 0 {
		t.Fatal("expected positive bound after reads")
	}
	for i := 0; i < 40; i++ {
		db.MustExec("UPDATE R SET b = b + 1, c = c + 1, d = d + 1 WHERE id >= 0")
	}
	after, _ := al.LowerBound()
	if after >= before {
		t.Errorf("update penalties should lower the bound: %.1f → %.1f", before, after)
	}
}

func TestAlerterOnePerTable(t *testing.T) {
	db := paperDB(t, 2000)
	al := NewAlerter(db, 1e9)
	db.SetObserver(al)
	// Two query shapes over the same table create two strong candidates;
	// the bound must take only one (no double counting).
	runN(t, db, q1, 40)
	runN(t, db, q2, 40)
	_, cands := al.LowerBound()
	seen := map[string]int{}
	for _, ix := range cands {
		seen[ix.Table]++
	}
	for table, n := range seen {
		if n > 1 {
			t.Errorf("%d candidates for table %s; bound may double count", n, table)
		}
	}
}
