package core

import (
	"bytes"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	db := paperDB(t, 3000)
	tn := Attach(db, DefaultOptions())
	runN(t, db, q1, 60)
	var buf bytes.Buffer
	if err := tn.SaveState(&buf); err != nil {
		t.Fatal(err)
	}

	// "Restart": same physical database, fresh tuner.
	db.SetObserver(nil)
	tn2 := NewTuner(db, DefaultOptions())
	if err := tn2.LoadState(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	db.SetObserver(tn2)

	// Evidence survived: the restored tuner's report shows the same
	// configuration members and non-zero candidate evidence.
	r1 := tn.Report(0)
	r2 := tn2.Report(0)
	if len(r2.Config) != len(r1.Config) {
		t.Fatalf("config entries %d != %d after restore", len(r2.Config), len(r1.Config))
	}
	if r2.Queries != r1.Queries {
		t.Errorf("query counter %d != %d", r2.Queries, r1.Queries)
	}
	for i := range r1.Config {
		if r1.Config[i].Index.ID() != r2.Config[i].Index.ID() {
			t.Errorf("config member %d differs", i)
		}
	}
}

func TestLoadStateDemotesLostIndexes(t *testing.T) {
	db := paperDB(t, 3000)
	tn := Attach(db, DefaultOptions())
	runN(t, db, q1, 60)
	if len(db.Configuration()) == 0 {
		t.Fatal("no configuration to lose")
	}
	var buf bytes.Buffer
	if err := tn.SaveState(&buf); err != nil {
		t.Fatal(err)
	}

	// Simulate losing the physical indexes across the restart (e.g. a
	// rebuilt replica): drop them all behind the snapshot's back.
	db.SetObserver(nil)
	for _, ix := range db.Configuration() {
		if err := db.DropIndex(ix); err != nil {
			t.Fatal(err)
		}
	}
	tn2 := NewTuner(db, DefaultOptions())
	if err := tn2.LoadState(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	db.SetObserver(tn2)
	r := tn2.Report(0)
	if len(r.Config) != 0 {
		t.Fatalf("lost indexes still reported in configuration: %v", r.Config)
	}
	// The demoted candidate carries its evidence, so re-creation happens
	// quickly once the workload resumes.
	runN(t, db, q1, 25)
	recreated := false
	for _, ev := range tn2.Events() {
		if ev.Kind == EvCreate {
			recreated = true
		}
	}
	if !recreated {
		t.Error("demoted candidate never re-created despite retained evidence")
	}
}

func TestLoadStateGuards(t *testing.T) {
	db := paperDB(t, 500)
	tn := Attach(db, DefaultOptions())
	runN(t, db, q1, 3)
	// Loading after observation is rejected.
	if err := tn.LoadState(strings.NewReader(`{"version":1}`)); err == nil {
		t.Error("load after observation accepted")
	}
	fresh := NewTuner(db, DefaultOptions())
	if err := fresh.LoadState(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if err := fresh.LoadState(strings.NewReader(`{"version":99}`)); err == nil {
		t.Error("future version accepted")
	}
	// Entries for dropped tables are skipped silently.
	snapshot := `{"version":1,"queries":5,"tracked":[
		{"name":"x","table":"NoSuchTable","columns":["a"],"o":[1,0,0,0],"n":[0,0,0,0]}]}`
	if err := fresh.LoadState(strings.NewReader(snapshot)); err != nil {
		t.Fatal(err)
	}
	if len(fresh.Candidates()) != 0 {
		t.Error("entry for missing table retained")
	}
}
