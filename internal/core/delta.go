// Package core implements the paper's primary contribution: the online
// physical design tuning algorithm OnlinePT (Figure 6), built on the
// per-index Δ bookkeeping of Section 3.2.1 (eight cost aggregates split
// by usage level, Δmin/Δmax tracking, shared-OR fractions), the
// usefulness-level interaction adjustments, the storage-constrained
// residual/benefit machinery of Section 3.2.2 with its oscillation
// damping, and the refinements of Section 3.3 (throttling, asynchronous
// creation with abort, index suspend/restart, manual intervention, and
// statistics triggering).
package core

import (
	"fmt"
	"math"

	"onlinetuner/internal/catalog"
	"onlinetuner/internal/whatif"
)

// Usage levels for the Δ decomposition: how an index serves a request.
const (
	// Level0: the index's columns are required in no particular order
	// (vertical-partition scan).
	Level0 = 0
	// Level1: the index's key column is required (single-column seek).
	Level1 = 1
	// Level2: more than one key column is required (multi-column seek or
	// sort request).
	Level2 = 2
	// LevelU: the index is updated by the statement (update shell).
	LevelU = 3
)

// UsageLevel classifies how index usage for a request should be
// decomposed (Section 3.2.1's four-way split).
func UsageLevel(r *whatif.Request) int {
	if r == nil {
		return Level0
	}
	switch r.Kind {
	case whatif.KindUpdate:
		return LevelU
	case whatif.KindScan:
		if len(r.SortCols) > 0 {
			return Level2 // sort requests need multiple ordered key columns
		}
		return Level0
	case whatif.KindSeek:
		sarg := len(r.EqCols)
		if r.RangeCol != "" {
			sarg++
		}
		if sarg >= 2 || len(r.SortCols) > 0 {
			return Level2
		}
		return Level1
	}
	return Level0
}

// IndexStats is the constant-size per-index bookkeeping of Section
// 3.2.1: the eight aggregates (O^0,O^1,O^2,O^U and N^0,N^1,N^2,N^U), the
// Δmin/Δmax trackers of Online-SI, and the shared-OR fraction of ΣN.
type IndexStats struct {
	Ix *catalog.Index

	// O[l] accumulates original costs (index absent), N[l] new costs
	// (index present), per usage level; index LevelU is the update shell.
	O [4]float64
	N [4]float64

	// DeltaMin/DeltaMax implement the Online-SI trackers.
	DeltaMin float64
	DeltaMax float64

	// orN is the portion of ΣN contributed by requests under shared OR
	// nodes; used when OR siblings are invalidated by a creation.
	orN float64

	// Derived marks a lazily generated merged candidate whose aggregates
	// are re-inferred from its constituents on every analysis round
	// (Figure 6 line 13) rather than accumulated directly.
	Derived bool

	// Creating marks an asynchronous build in progress (Section 3.3).
	Creating bool
	// FailStreak counts consecutive failed builds of this candidate
	// (storage errors, injected faults). Each failure doubles the build
	// cost the benefit rule must overcome (FailPenalty), so a candidate
	// whose build keeps failing backs off exponentially instead of
	// re-arming every analysis round. A successful creation resets it.
	FailStreak int
	// createRemaining is the simulated build work left (cost units).
	createRemaining float64
	// deltaAtCreateStart snapshots Δ when the async build began, for the
	// abort rule ("if benefit drops more than B_I^s due to updates").
	deltaAtCreateStart float64
}

// NewIndexStats returns zeroed bookkeeping for an index.
func NewIndexStats(ix *catalog.Index) *IndexStats {
	return &IndexStats{Ix: ix}
}

// Delta returns Δ = ΣO − ΣN.
func (s *IndexStats) Delta() float64 {
	return s.O[0] + s.O[1] + s.O[2] + s.O[3] - s.N[0] - s.N[1] - s.N[2] - s.N[3]
}

// SumN returns ΣN.
func (s *IndexStats) SumN() float64 { return s.N[0] + s.N[1] + s.N[2] + s.N[3] }

// Add records one request observation at the given level with original
// cost o (index absent) and new cost n (index present). sharedOR marks
// requests under an OR node with other alternatives. It returns the Δ
// increment.
func (s *IndexStats) Add(level int, o, n float64, sharedOR bool) float64 {
	if level < 0 || level > LevelU {
		level = Level0
	}
	s.O[level] += o
	s.N[level] += n
	if sharedOR {
		s.orN += n
	}
	d := s.Delta()
	if d < s.DeltaMin {
		s.DeltaMin = d
	}
	if d > s.DeltaMax {
		s.DeltaMax = d
	}
	return o - n
}

// clampTrackers restores the Δmin ≤ Δ ≤ Δmax invariant after an external
// adjustment to the aggregates ("adjust Δmin and Δmax as appropriate").
func (s *IndexStats) clampTrackers() {
	d := s.Delta()
	if d < s.DeltaMin {
		s.DeltaMin = d
	}
	if d > s.DeltaMax {
		s.DeltaMax = d
	}
}

// Benefit is benefit(I,s) = (Δ − Δmin) − B for an index outside the
// configuration: positive values are the "excess in confidence" for
// creating it (Figure 5).
func (s *IndexStats) Benefit(buildCost float64) float64 {
	return (s.Delta() - s.DeltaMin) - buildCost
}

// Residual is residual(I,s) = B − (Δmax − Δ) for an index in the
// configuration: negative means the index should be dropped; positive is
// its remaining slack (Figure 5).
func (s *IndexStats) Residual(buildCost float64) float64 {
	return buildCost - (s.DeltaMax - s.Delta())
}

// AtPeak reports whether the index currently sits at its maximum
// usefulness (Δ == Δmax), the precondition of the oscillation-damping
// rule of Section 3.2.2.
func (s *IndexStats) AtPeak() bool {
	return s.Delta() >= s.DeltaMax-1e-12
}

// OnCreated resets the trackers as Online-SI does on a 0→1 transition
// (Δmax = Δ).
func (s *IndexStats) OnCreated() {
	s.DeltaMax = s.Delta()
	s.Creating = false
	s.FailStreak = 0
}

// FailPenalty is the build-cost multiplier after FailStreak consecutive
// failed builds: 2^min(FailStreak, 6). The cap bounds the penalty at
// 64× so a candidate is never permanently locked out — a transient
// storage problem that clears lets strong evidence re-arm the build.
func (s *IndexStats) FailPenalty() float64 {
	n := s.FailStreak
	if n <= 0 {
		return 1
	}
	if n > 6 {
		n = 6
	}
	return float64(int(1) << n)
}

// OnDropped resets the trackers on a 1→0 transition (Δmin = Δ).
func (s *IndexStats) OnDropped() {
	s.DeltaMin = s.Delta()
}

// DecayBenefit implements the oscillation-damping rule of Section 3.2.2:
// benefit(I,s) becomes max(0, benefit(I,s) − d), where buildCost is the
// candidate's B_I^s. Crucially the floor is benefit = 0 — evidence up to
// the creation threshold is never taken away; only the excess confidence
// that would otherwise grow without bound (and eventually force a swap
// against an equally-useful configuration) is shaved. The reduction is
// applied to the O aggregates proportionally so later per-level
// adjustments stay meaningful.
func (s *IndexStats) DecayBenefit(d, buildCost float64) {
	if d <= 0 {
		return
	}
	slack := s.Benefit(buildCost) // excess above the creation threshold
	if slack <= 0 {
		return
	}
	cut := math.Min(d, slack)
	// Distribute the cut across positive O components proportionally.
	var posTotal float64
	for l := 0; l <= LevelU; l++ {
		if s.O[l] > 0 {
			posTotal += s.O[l]
		}
	}
	if posTotal <= 0 {
		return
	}
	for l := 0; l <= LevelU; l++ {
		if s.O[l] > 0 {
			s.O[l] -= cut * (s.O[l] / posTotal)
		}
	}
	s.clampTrackers()
}

// AdjustAfterCreate applies the Section 3.2.1 rule to THIS index's
// aggregates after another index `created` was added to the
// configuration: for each level l up to the usefulness level of created
// w.r.t. this index, O^l ← min(O^l, α·N^l) with α =
// size(this)/size(created).
func (s *IndexStats) AdjustAfterCreate(created *catalog.Index, sizeThis, sizeCreated int64) {
	lj := catalog.UsefulnessLevel(created, s.Ix)
	if lj < 0 {
		return
	}
	alpha := 1.0
	if sizeCreated > 0 {
		alpha = float64(sizeThis) / float64(sizeCreated)
	}
	for l := 0; l <= lj && l <= Level2; l++ {
		s.O[l] = math.Min(s.O[l], alpha*s.N[l])
	}
	s.clampTrackers()
}

// BetaFor returns the dropped index's per-level cost-increase factors
// β^l = O^l/N^l (at least 1; 1 when the level is empty).
func (s *IndexStats) BetaFor() [3]float64 {
	var beta [3]float64
	for l := 0; l <= Level2; l++ {
		if s.N[l] > 0 && s.O[l] > s.N[l] {
			beta[l] = s.O[l] / s.N[l]
		} else {
			beta[l] = 1
		}
	}
	return beta
}

// AdjustAfterDrop applies the Section 3.2.1 rule to THIS index's
// aggregates after another index `dropped` left the configuration: for
// each level l up to the usefulness level of dropped w.r.t. this index,
// O^l ← O^l · β^l with β taken from the dropped index's stats.
func (s *IndexStats) AdjustAfterDrop(dropped *catalog.Index, beta [3]float64) {
	lj := catalog.UsefulnessLevel(dropped, s.Ix)
	if lj < 0 {
		return
	}
	for l := 0; l <= lj && l <= Level2; l++ {
		s.O[l] *= beta[l]
	}
	s.clampTrackers()
}

// InvalidateSharedOR collapses the accumulated benefit of this index
// after an OR-sibling alternative (an index over the same table with no
// containment relationship) was created: only one alternative of an OR
// group can be implemented, so the historical shared-OR evidence no
// longer argues for this index. The O aggregates move toward N by the
// shared-OR fraction of ΣN.
func (s *IndexStats) InvalidateSharedOR() {
	sumN := s.SumN()
	if sumN <= 0 || s.orN <= 0 {
		return
	}
	f := math.Min(1, s.orN/sumN)
	for l := 0; l <= Level2; l++ {
		if s.O[l] > s.N[l] {
			s.O[l] = s.N[l] + (s.O[l]-s.N[l])*(1-f)
		}
	}
	s.clampTrackers()
}

// InferFromSubOptimal seeds a newly considered index's Δ (e.g. a merged
// index, Section 3.2.1 "obtaining Δ values from sub-optimal plans"): for
// every tracked index Ij that the new index can serve (usefulness level
// ≥ 0), the new index inherits O^l and a size-scaled N^l for each
// level l ≤ lj; its update shell is copied from the most similar index
// by Jaccard distance.
func InferFromSubOptimal(newIx *catalog.Index, newSize int64, tracked []*IndexStats, sizeOf func(*catalog.Index) int64) *IndexStats {
	s := NewIndexStats(newIx)
	var bestSim float64
	var mostSimilar *IndexStats
	for _, tj := range tracked {
		if tj.Ix.ID() == newIx.ID() {
			continue
		}
		lj := catalog.UsefulnessLevel(newIx, tj.Ix)
		if lj >= 0 {
			alpha := 1.0
			if sz := sizeOf(tj.Ix); sz > 0 {
				alpha = float64(newSize) / float64(sz)
			}
			for l := 0; l <= lj && l <= Level2; l++ {
				// Do not let a sub-optimal usage look better than the
				// original: cap the inherited new-cost at the original.
				inheritedN := math.Min(alpha*tj.N[l], tj.O[l])
				s.O[l] += tj.O[l]
				s.N[l] += inheritedN
			}
		}
		sim := catalog.Jaccard(newIx, tj.Ix)
		// Ties break toward the larger update penalty: conservative for a
		// wider index that will cost at least as much to maintain.
		if sim > bestSim || (sim == bestSim && mostSimilar != nil &&
			tj.N[LevelU]-tj.O[LevelU] > mostSimilar.N[LevelU]-mostSimilar.O[LevelU]) {
			bestSim = sim
			mostSimilar = tj
		}
	}
	if mostSimilar != nil {
		// Approximate the update cost from the most similar index.
		s.O[LevelU] = mostSimilar.O[LevelU]
		s.N[LevelU] = mostSimilar.N[LevelU]
	}
	s.clampTrackers()
	return s
}

// String summarizes the stats for logs.
func (s *IndexStats) String() string {
	return fmt.Sprintf("stats{%s Δ=%.3f min=%.3f max=%.3f}", s.Ix, s.Delta(), s.DeltaMin, s.DeltaMax)
}
