package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"onlinetuner/internal/catalog"
	"onlinetuner/internal/datum"
	"onlinetuner/internal/engine"
	"onlinetuner/internal/obs"
	"onlinetuner/internal/stats"
	"onlinetuner/internal/storage"
	"onlinetuner/internal/whatif"
)

// Options configure OnlinePT's refinements (Section 3.3).
type Options struct {
	// ThrottleEvery runs the analysis phase (lines 9–21 of Figure 6) once
	// every N queries; the bookkeeping phase (lines 1–8) always runs.
	// Zero or one means every query.
	ThrottleEvery int
	// MergeEvery considers index merging (line 18) on every M-th analysis
	// round. Zero disables merging; one merges every round; the default
	// (4) follows the paper's own throttling advice for line 18.
	MergeEvery int
	// Async enables online (asynchronous) index creation, Section 3.3:
	// the B+-tree is built by a background goroutine from a snapshot plus
	// a side delta log (storage.StartBuild/FinishBuild) while statements
	// keep executing, and is published atomically into the catalog. The
	// index becomes usable once as much query-cost as B_I^s has passed —
	// the paper's cost accounting, kept so replayed schedules are
	// deterministic — and the build is cancelled (context + storage
	// abort) when updates erode the candidate's benefit by more than
	// B_I^s while building.
	Async bool
	// UseSuspend replaces drops with suspends; suspended indexes restart
	// (cheaper than a rebuild) when they become beneficial again.
	UseSuspend bool
	// StatsTriggerFraction triggers asynchronous statistics creation on a
	// candidate's leading column once Δ−Δmin exceeds this fraction of
	// B_I^s. Zero disables.
	StatsTriggerFraction float64
	// MaxCandidates caps |H|; the lowest-benefit candidates are evicted.
	MaxCandidates int
	// CooldownQueries pauses the analysis phase for this many statements
	// after every physical change, so Δ values re-measure against the
	// new configuration before the next decision (prevents cascades of
	// overlapping creations). Zero uses the default; negative disables.
	CooldownQueries int
	// DisableDamping turns off the Section 3.2.2 oscillation rule — for
	// ablation experiments only.
	DisableDamping bool
}

// DefaultOptions mirror the paper's evaluated configuration: synchronous
// changes applied before the next query, merging on (throttled per the
// paper's own advice), statistics triggering at 0.8.
func DefaultOptions() Options {
	return Options{
		ThrottleEvery:        1,
		MergeEvery:           4, // the paper's own throttle: merge "a fraction of the executions"
		StatsTriggerFraction: 0.8,
		MaxCandidates:        128,
		CooldownQueries:      15,
	}
}

// EventKind classifies physical design changes made by the tuner.
type EventKind int

// Tuner event kinds.
const (
	EvCreate EventKind = iota
	EvDrop
	EvSuspend
	EvRestart
	EvAbort
	// EvBuildStart marks the start of an asynchronous background build.
	// It is delivered to subscribers but not part of the change schedule
	// (the schedule records completed physical changes only).
	EvBuildStart
	// EvFail marks a build that failed (storage error, injected fault)
	// rather than being aborted by the erosion rule. The candidate's
	// evidence is reset and its build cost is penalized exponentially,
	// so a persistently failing build cannot hot-loop.
	EvFail
)

func (k EventKind) String() string {
	switch k {
	case EvCreate:
		return "create"
	case EvDrop:
		return "drop"
	case EvSuspend:
		return "suspend"
	case EvRestart:
		return "restart"
	case EvAbort:
		return "abort"
	case EvBuildStart:
		return "build-start"
	case EvFail:
		return "build-failed"
	}
	return "?"
}

// Event is one physical design change, for schedule reporting (Table 1's
// C(I)/D(I) notation).
type Event struct {
	Kind    EventKind
	Index   *catalog.Index
	Cost    float64 // transition cost paid (B_I^s; 0 for drops)
	AtQuery int64   // 1-based query count when the change happened
}

func (e Event) String() string {
	switch e.Kind {
	case EvCreate, EvRestart:
		return fmt.Sprintf("C(%s)[%.2f]", e.Index, e.Cost)
	case EvDrop:
		return fmt.Sprintf("D(%s)", e.Index)
	case EvSuspend:
		return fmt.Sprintf("S(%s)", e.Index)
	case EvAbort:
		return fmt.Sprintf("A(%s)[%.2f]", e.Index, e.Cost)
	case EvBuildStart:
		return fmt.Sprintf("B(%s)[%.2f]", e.Index, e.Cost)
	case EvFail:
		return fmt.Sprintf("F(%s)[%.2f]", e.Index, e.Cost)
	}
	return "?"
}

// Metrics is a snapshot of the per-module overhead that Figure 9
// reports, plus background-build counters. The live values are atomic
// counters in the DB's obs registry (under "tuner.*"); this struct is
// assembled on demand by Metrics() and is safe to read while statements
// execute.
type Metrics struct {
	Queries        int64
	Total          time.Duration
	Line1          time.Duration // request-tree retrieval
	Lines28        time.Duration // Δ bookkeeping
	Lines918       time.Duration // analysis (drop/create decisions)
	Line18         time.Duration // index merging (subset of Lines918)
	TransitionCost float64       // Σ B_I of all physical changes

	BuildsStarted   int64 // asynchronous builds started
	BuildsCompleted int64 // asynchronous builds published
	BuildsAborted   int64 // asynchronous builds cancelled (erosion)
	BuildsFailed    int64 // builds that errored (storage fault)
}

// pendingBuild tracks one asynchronous index creation. The index becomes
// usable once `remaining` query-cost has been accounted (the paper's
// B_I^s gate, kept for deterministic schedules); the physical B+-tree is
// meanwhile constructed by a background goroutine whose result arrives
// on done. Suspended-index restarts carry no physical build (build is
// nil): the suspended structure is replayed in place at finish.
type pendingBuild struct {
	st        *IndexStats
	buildCost float64
	remaining float64

	build  *storage.Build
	cancel context.CancelFunc
	done   chan error
}

// Tuner is the OnlinePT algorithm of Figure 6, attached to a DB as its
// execution observer.
//
// Concurrency: the tuner is internally serialized by one mutex — the
// engine may deliver OnExecuted from many statement goroutines at once,
// and the tuner observes them one at a time. The only tuner work outside
// the mutex is the background build goroutine, which touches nothing but
// its private snapshot (storage.Build.Run).
type Tuner struct {
	db   *engine.DB
	env  *whatif.Env
	opts Options

	mu     sync.Mutex
	closed bool
	subs   []chan Event

	// tracked holds bookkeeping for every index under consideration: the
	// candidate set H plus the current configuration members.
	tracked  map[string]*IndexStats
	inConfig map[string]bool

	queries  int64
	analyses int64
	events   []Event
	pending  *pendingBuild

	// Overhead metrics live as atomic registry counters so readers
	// (dashboards, benchmark reporters) never contend with — or race
	// against — the observation path. Durations accumulate as
	// nanoseconds; TransitionCost as a float counter.
	mQueries         *obs.Counter
	mTotalNS         *obs.Counter
	mLine1NS         *obs.Counter
	mLines28NS       *obs.Counter
	mLines918NS      *obs.Counter
	mLine18NS        *obs.Counter
	mTransitionCost  *obs.FloatCounter
	mBuildsStarted   *obs.Counter
	mBuildsCompleted *obs.Counter
	mBuildsAborted   *obs.Counter
	mBuildsFailed    *obs.Counter
	mDecisions       *obs.Counter

	// decisions is the structured log of every physical design change
	// (and attempted change), with the Δ evidence behind it.
	decisions *obs.DecisionLog
	// cooldownUntil suppresses the analysis phase until this query count
	// after a physical change.
	cooldownUntil int64

	// buildCostCache memoizes B_I^s per index while the table size and
	// configuration are unchanged.
	buildCostCache map[string]buildCostEntry

	// memo caches what-if cost evaluations across the repeated
	// GetCost/ImplCost calls of lines 2–8, keyed so a hit is exactly the
	// value a fresh computation would produce. Used only under t.mu.
	memo *whatif.Memo
}

type buildCostEntry struct {
	rows    float64
	version int64
	cost    float64
}

// NewTuner attaches a fresh OnlinePT instance to a database. Call
// db.SetObserver(tuner) (or use Attach) to activate it.
func NewTuner(db *engine.DB, opts Options) *Tuner {
	if opts.ThrottleEvery < 1 {
		opts.ThrottleEvery = 1
	}
	if opts.MaxCandidates <= 0 {
		opts.MaxCandidates = 128
	}
	reg := db.Observability().Reg
	return &Tuner{
		db:               db,
		env:              db.WhatIfEnv(),
		opts:             opts,
		tracked:          make(map[string]*IndexStats),
		inConfig:         make(map[string]bool),
		buildCostCache:   make(map[string]buildCostEntry),
		memo:             whatif.NewMemo(db.WhatIfEnv()),
		mQueries:         reg.Counter("tuner.queries"),
		mTotalNS:         reg.Counter("tuner.total_ns"),
		mLine1NS:         reg.Counter("tuner.line1_ns"),
		mLines28NS:       reg.Counter("tuner.lines2_8_ns"),
		mLines918NS:      reg.Counter("tuner.lines9_18_ns"),
		mLine18NS:        reg.Counter("tuner.line18_ns"),
		mTransitionCost:  reg.FloatCounter("tuner.transition_cost"),
		mBuildsStarted:   reg.Counter("tuner.builds_started"),
		mBuildsCompleted: reg.Counter("tuner.builds_completed"),
		mBuildsAborted:   reg.Counter("tuner.builds_aborted"),
		mBuildsFailed:    reg.Counter("tuner.builds_failed"),
		mDecisions:       reg.Counter("tuner.decisions"),
		decisions:        obs.NewDecisionLog(0),
	}
}

// Attach creates a tuner and registers it as the DB's observer.
func Attach(db *engine.DB, opts Options) *Tuner {
	t := NewTuner(db, opts)
	db.SetObserver(t)
	return t
}

// Events returns a copy of the physical design changes made so far.
func (t *Tuner) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// Metrics returns a snapshot of the overhead counters. All fields are
// atomic registry counters, so this is safe to call at any time — from
// a dashboard goroutine while statements execute, without taking the
// tuner's mutex.
func (t *Tuner) Metrics() Metrics {
	return Metrics{
		Queries:         t.mQueries.Value(),
		Total:           time.Duration(t.mTotalNS.Value()),
		Line1:           time.Duration(t.mLine1NS.Value()),
		Lines28:         time.Duration(t.mLines28NS.Value()),
		Lines918:        time.Duration(t.mLines918NS.Value()),
		Line18:          time.Duration(t.mLine18NS.Value()),
		TransitionCost:  t.mTransitionCost.Value(),
		BuildsStarted:   t.mBuildsStarted.Value(),
		BuildsCompleted: t.mBuildsCompleted.Value(),
		BuildsAborted:   t.mBuildsAborted.Value(),
		BuildsFailed:    t.mBuildsFailed.Value(),
	}
}

// Decisions returns the structured decision log, oldest first: one
// record per physical design change or attempted change, carrying the
// Δ/Δmin/B_I evidence the rule fired on.
func (t *Tuner) Decisions() []obs.Decision {
	return t.decisions.Records()
}

// decide appends one structured record to the decision log (caller
// holds the mutex; delta/deltaMin must be captured before OnCreated /
// OnDropped reset them).
func (t *Tuner) decide(kind string, ix *catalog.Index, delta, deltaMin, buildCost float64, reason string) {
	t.mDecisions.Inc()
	t.decisions.Append(obs.Decision{
		AtQuery:   t.queries,
		Kind:      kind,
		Index:     ix.ID(),
		Table:     ix.Table,
		Delta:     delta,
		DeltaMin:  deltaMin,
		BuildCost: buildCost,
		Reason:    reason,
	})
}

// MemoStats returns the what-if cost memo's hit/miss counters.
func (t *Tuner) MemoStats() whatif.MemoStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.memo.Stats()
}

// Stats returns the bookkeeping for an index ID, or nil.
func (t *Tuner) Stats(id string) *IndexStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.tracked[id]
}

// Subscribe registers an event channel with the given buffer and returns
// it. Every subsequent tuner event — including EvBuildStart, which never
// enters the Events() schedule — is delivered to each subscriber; a full
// channel drops the event, so size the buffer for the expected volume.
// Channels are closed by Close.
func (t *Tuner) Subscribe(buf int) <-chan Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	ch := make(chan Event, buf)
	t.subs = append(t.subs, ch)
	return ch
}

// notify fans an event out to subscribers (caller holds the mutex).
func (t *Tuner) notify(e Event) {
	for _, ch := range t.subs {
		select {
		case ch <- e:
		default:
		}
	}
}

// record appends a completed physical change to the schedule and
// notifies subscribers (caller holds the mutex).
func (t *Tuner) record(e Event) {
	t.events = append(t.events, e)
	t.notify(e)
}

// Candidates returns the current candidate set H (tracked indexes not in
// the configuration).
func (t *Tuner) Candidates() []*IndexStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.candidatesLocked()
}

func (t *Tuner) candidatesLocked() []*IndexStats {
	var out []*IndexStats
	for id, st := range t.tracked {
		if !t.inConfig[id] {
			out = append(out, st)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Ix.ID() < out[j].Ix.ID() })
	return out
}

// OnExecuted implements engine.Observer: the body of Figure 6, run once
// per executed statement. Concurrent statements are observed one at a
// time in arrival order at the mutex.
func (t *Tuner) OnExecuted(info *engine.QueryInfo) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return
	}
	t.queries++
	t.mQueries.Inc()
	start := time.Now()
	// One memo statement span: refresh the index-size snapshot, and keep
	// (or drop) cost entries depending on whether the physical design or
	// the statistics moved since the previous statement.
	t.memo.BeginStatement(t.db.Mgr.ConfigVersion(), t.db.Stats.Epoch())

	// Line 1: retrieve the AND/OR request tree captured at optimization.
	l1 := time.Now()
	tree := info.Result.Tree
	reqs := tree.Requests()
	shared := sharedORSet(tree)
	t.mLine1NS.Add(time.Since(l1).Nanoseconds())

	// Lines 2–8: update Δ values (in-memory scalars only).
	l2 := time.Now()
	config := t.configIndexes()
	// First pass: candidate updates, remembering which candidates gained
	// from this query — they are genuine replacement contenders and are
	// exempt from oscillation damping below.
	gained := map[string]bool{}
	for _, r := range reqs {
		if r.Kind != whatif.KindUpdate {
			t.noteCandidate(r, config, shared[r], gained)
		}
	}
	// Used-index credit is attributed once per OR group: only one
	// alternative of an OR group is implemented in the plan, so crediting
	// every sibling would double-count the index's value.
	for _, g := range requestGroups(tree) {
		if r := attributionRequest(t.memo, g); r != nil {
			t.noteUsed(r, config, shared[r], gained)
		}
	}
	for _, r := range reqs {
		if r.Kind == whatif.KindUpdate {
			t.noteUpdate(r)
		}
	}
	t.mLines28NS.Add(time.Since(l2).Nanoseconds())

	if t.opts.Async {
		t.progressBuild(info.EstCost)
	}
	if t.opts.StatsTriggerFraction > 0 {
		t.maybeBuildStats()
	}
	t.evictCandidates()

	// Lines 9–21: throttled, and paused while a recent physical change
	// is still being re-measured.
	if t.queries%int64(t.opts.ThrottleEvery) == 0 && t.queries >= t.cooldownUntil {
		l9 := time.Now()
		before := len(t.events)
		t.dropBadIndexes()
		t.analyzeAndCreate()
		if len(t.events) != before {
			cd := t.opts.CooldownQueries
			if cd == 0 {
				cd = 15
			}
			if cd > 0 {
				t.cooldownUntil = t.queries + int64(cd)
			}
		}
		t.mLines918NS.Add(time.Since(l9).Nanoseconds())
	}
	t.mTotalNS.Add(time.Since(start).Nanoseconds())
}

// requestGroups partitions the tree's non-update requests into OR groups;
// requests outside any OR group form singleton groups.
func requestGroups(tree *whatif.Node) [][]*whatif.Request {
	groups := tree.ORGroups()
	inGroup := map[*whatif.Request]bool{}
	for _, g := range groups {
		for _, r := range g {
			inGroup[r] = true
		}
	}
	for _, r := range tree.Requests() {
		if r.Kind != whatif.KindUpdate && !inGroup[r] {
			groups = append(groups, []*whatif.Request{r})
		}
	}
	return groups
}

// attributionRequest picks the single request of an OR group that the
// group's used configuration index serves best — the alternative the
// plan actually implemented.
func attributionRequest(memo *whatif.Memo, group []*whatif.Request) *whatif.Request {
	var usedID string
	for _, r := range group {
		if r.Kind != whatif.KindUpdate && r.CurrentIndexID != "" {
			usedID = r.CurrentIndexID
			break
		}
	}
	if usedID == "" {
		return nil
	}
	usedIx := memo.Env().Cat.IndexByID(usedID)
	if usedIx == nil {
		return nil
	}
	var best *whatif.Request
	bestCost := 0.0
	for _, r := range group {
		if r.Kind == whatif.KindUpdate {
			continue
		}
		c := memo.ImplCost(r, usedIx)
		if best == nil || c < bestCost {
			best, bestCost = r, c
		}
	}
	return best
}

// sharedORSet marks requests that live under OR nodes with multiple
// alternatives.
func sharedORSet(tree *whatif.Node) map[*whatif.Request]bool {
	out := map[*whatif.Request]bool{}
	for _, g := range tree.ORGroups() {
		for _, r := range g {
			out[r] = true
		}
	}
	return out
}

// configIndexes returns the active secondary indexes (the configuration
// s).
func (t *Tuner) configIndexes() []*catalog.Index {
	return t.db.Configuration()
}

// noteCandidate implements lines 3–4: the request's best index joins H
// and its Δ is updated. Candidates with a positive increment are
// recorded in gained.
func (t *Tuner) noteCandidate(r *whatif.Request, config []*catalog.Index, sharedOR bool, gained map[string]bool) {
	best := whatif.GetBestIndex(t.env.Cat, r)
	if best == nil || best.Primary {
		return
	}
	id := best.ID()
	if t.inConfig[id] {
		return // already in s; handled by noteUsed
	}
	st := t.tracked[id]
	if st == nil {
		st = NewIndexStats(best)
		t.tracked[id] = st
	}
	o := t.memo.GetCost(r, config)
	n := t.memo.GetCost(r, append(config, st.Ix))
	if st.Add(UsageLevel(r), o, n, sharedOR) > 0 {
		gained[id] = true
	}
}

// noteUsed implements lines 5–6: the configuration index implementing
// the request accumulates the value it provides.
func (t *Tuner) noteUsed(r *whatif.Request, config []*catalog.Index, sharedOR bool, gained map[string]bool) {
	id := r.CurrentIndexID
	if id == "" || !t.inConfig[id] {
		return
	}
	st := t.tracked[id]
	if st == nil {
		ix := t.env.Cat.IndexByID(id)
		if ix == nil {
			return
		}
		st = NewIndexStats(ix)
		t.tracked[id] = st
	}
	o := t.memo.GetCost(r, without(config, id))
	n := r.CurrentCost
	// The optimizer chose this index for a read, so its value for the
	// request is non-negative; a negative difference here is noise
	// between the request-level approximation and the plan's cost, and
	// letting it erode Δ would drop marginal-but-useful indexes and churn
	// them. Genuine penalties arrive through the update shell.
	if o < n {
		o = n
	}
	wasAtPeak := st.AtPeak()
	d := st.Add(UsageLevel(r), o, n, sharedOR)
	// Oscillation damping (Section 3.2.2): while a configuration index
	// keeps proving useful at its peak, decay outside candidates'
	// benefit by the same δ — but never below zero benefit (the paper's
	// max(0, benefit−δ)), so evidence up to the creation threshold is
	// preserved and only runaway excess is shaved. Candidates that
	// gained from this very query are exempt: noteUsed runs after
	// noteCandidate, and shaving the increment the same query just
	// produced would deadlock legitimate contenders (the paper's W1
	// swap).
	if wasAtPeak && d > 0 && !t.opts.DisableDamping {
		for cid, cst := range t.tracked {
			if !t.inConfig[cid] && !cst.Creating && !gained[cid] {
				cst.DecayBenefit(d, t.buildCostFor(cst.Ix))
			}
		}
	}
}

// noteUpdate implements lines 7–8: every tracked index over the updated
// table accrues the update-shell penalty.
func (t *Tuner) noteUpdate(r *whatif.Request) {
	maint := t.env.MaintenancePerIndex(r)
	if maint <= 0 {
		return
	}
	for _, st := range t.tracked {
		if !strings.EqualFold(st.Ix.Table, r.Table) || st.Ix.Primary {
			continue
		}
		st.Add(LevelU, 0, maint, false)
		// Abort an in-flight build whose benefit collapsed (Section 3.3).
		if st.Creating && t.pending != nil && t.pending.st == st {
			if st.deltaAtCreateStart-st.Delta() > t.pending.buildCost {
				t.abortBuild()
			}
		}
	}
}

// buildCostFor returns B_I^s for a candidate: when a suspended structure
// exists, the cheaper of replaying its missed changes and a full rebuild
// (after heavy update bursts a rebuild can win); otherwise the full
// build cost.
func (t *Tuner) buildCostFor(ix *catalog.Index) float64 {
	id := ix.ID()
	rows := t.env.TableRows(ix.Table)
	version := t.env.Mgr.ConfigVersion()
	if e, ok := t.buildCostCache[id]; ok && e.rows == rows && e.version == version {
		return e.cost
	}
	full := whatif.BuildCost(t.env, ix)
	if pi := t.env.Mgr.Index(id); pi != nil && pi.State() == storage.StateSuspended {
		restart := t.env.Model.RestartIndex(float64(pi.PendingOps()) + 1)
		if restart < full {
			full = restart
		}
	}
	t.buildCostCache[id] = buildCostEntry{rows: rows, version: version, cost: full}
	return full
}

// effectiveBuildCost is B_I^s scaled by the candidate's failure
// penalty: a build that keeps failing must earn exponentially more
// evidence before the tuner tries it again.
func (t *Tuner) effectiveBuildCost(st *IndexStats) float64 {
	return t.buildCostFor(st.Ix) * st.FailPenalty()
}

// noteBuildFailure is the graceful-degradation bookkeeping for a build
// that errored (as opposed to an erosion abort): the candidate's
// evidence is reset to the creation threshold, its failure streak grows
// (doubling the effective build cost the benefit rule must clear), and
// the failure is surfaced through the metric, the decision log, and an
// EvFail event. The tuner itself keeps serving — a failed build never
// propagates past this point.
func (t *Tuner) noteBuildFailure(st *IndexStats, buildCost float64, err error) {
	st.Creating = false
	st.FailStreak++
	st.DeltaMin = st.Delta()
	t.mBuildsFailed.Inc()
	reason := "build-failed"
	if err != nil {
		reason = fmt.Sprintf("build-failed: %v", err)
	}
	t.decide(EvFail.String(), st.Ix, st.Delta(), st.DeltaMin, buildCost, reason)
	t.record(Event{Kind: EvFail, Index: st.Ix, Cost: buildCost, AtQuery: t.queries})
}

// dropBadIndexes implements line 9: drop (or suspend) every
// configuration index whose residual went negative. Members are visited
// in ID order so the decision log is deterministic for a deterministic
// workload.
func (t *Tuner) dropBadIndexes() {
	ids := make([]string, 0, len(t.inConfig))
	for id := range t.inConfig {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		st := t.tracked[id]
		if st == nil {
			continue
		}
		b := t.buildCostFor(st.Ix)
		if st.Residual(b) < 0 {
			t.removeIndex(st, "residual")
		}
	}
}

// removeIndex drops or suspends a configuration index and applies the
// Section 3.2.1 drop adjustments to the remaining tracked indexes.
func (t *Tuner) removeIndex(st *IndexStats, reason string) {
	id := st.Ix.ID()
	b := t.buildCostFor(st.Ix) // captured before the drop bumps the config version
	kind := EvDrop
	if t.opts.UseSuspend {
		if err := t.env.Mgr.SuspendIndex(id); err != nil {
			return
		}
		kind = EvSuspend
	} else {
		if err := t.db.DropIndex(st.Ix); err != nil {
			return
		}
	}
	t.decide(kind.String(), st.Ix, st.Delta(), st.DeltaMin, b, reason)
	delete(t.inConfig, id)
	beta := st.BetaFor()
	st.OnDropped()
	for oid, other := range t.tracked {
		if oid == id {
			continue
		}
		other.AdjustAfterDrop(st.Ix, beta)
	}
	t.record(Event{Kind: kind, Index: st.Ix, AtQuery: t.queries})
}

// analyzeAndCreate implements lines 10–21: evaluate candidates (and
// lazily merged ones), pick the best achievable design change, and apply
// it.
func (t *Tuner) analyzeAndCreate() {
	if t.pending != nil {
		return // one asynchronous build at a time
	}
	t.analyses++
	mergeRound := t.opts.MergeEvery > 0 && t.analyses%int64(t.opts.MergeEvery) == 0

	type scored struct {
		st     *IndexStats
		b      float64
		bCost  float64
		sPrime []*IndexStats
	}
	var queue []*IndexStats
	for id, st := range t.tracked {
		if t.inConfig[id] || st.Creating {
			continue
		}
		if st.Benefit(t.effectiveBuildCost(st)) > 0 {
			queue = append(queue, st)
		}
	}
	sort.Slice(queue, func(i, j int) bool { return queue[i].Ix.ID() < queue[j].Ix.ID() })

	budget := t.env.Mgr.Budget()
	free := t.env.Mgr.FreeBytes()
	var best *scored
	seenMerge := map[string]bool{}

	for qi := 0; qi < len(queue); qi++ {
		st := queue[qi]
		bCost := t.buildCostFor(st.Ix)
		// Scoring clears the failure-penalized cost, but the transition
		// accounting below uses the real B_I^s: the penalty gates when a
		// failing build re-arms, it is not work actually paid.
		b := st.Benefit(bCost * st.FailPenalty())
		if b <= 0 {
			continue
		}
		size := t.env.IndexBytes(st.Ix)
		if budget > 0 && size > budget {
			continue // can never fit
		}
		var sPrime []*IndexStats
		if budget > 0 && size > free {
			need := size - free
			members := t.configByResidualPerSize()
			var freed int64
			for _, m := range members {
				if freed >= need {
					break
				}
				sPrime = append(sPrime, m)
				freed += t.env.IndexBytes(m.Ix)
				b -= m.Residual(t.buildCostFor(m.Ix))
			}
			if freed < need {
				continue // cannot make room even dropping everything chosen
			}
		}
		if b > 0 && (best == nil || b > best.b) {
			best = &scored{st: st, b: b, bCost: bCost, sPrime: sPrime}
		}

		// Line 18: lazily generate merged indexes for later analysis.
		if mergeRound {
			l18 := time.Now()
			t.generateMerges(st, queue, seenMerge, func(ms *IndexStats) {
				queue = append(queue, ms)
			})
			t.mLine18NS.Add(time.Since(l18).Nanoseconds())
		}
	}

	if best == nil {
		return
	}
	// Lines 19–21: make room, then create.
	for _, m := range best.sPrime {
		t.removeIndex(m, "swap")
	}
	t.createIndex(best.st, best.bCost)
}

// configByResidualPerSize returns configuration members sorted ascending
// by residual/size, so large or nearly-droppable indexes are reclaimed
// first (Figure 6, line 14).
func (t *Tuner) configByResidualPerSize() []*IndexStats {
	type ranked struct {
		st  *IndexStats
		key float64
	}
	var rs []ranked
	for id := range t.inConfig {
		st := t.tracked[id]
		if st == nil {
			continue
		}
		size := float64(t.env.IndexBytes(st.Ix))
		if size <= 0 {
			size = 1
		}
		rs = append(rs, ranked{st: st, key: st.Residual(t.buildCostFor(st.Ix)) / size})
	}
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].key != rs[j].key {
			return rs[i].key < rs[j].key
		}
		return rs[i].st.Ix.ID() < rs[j].st.Ix.ID()
	})
	out := make([]*IndexStats, len(rs))
	for i := range rs {
		out[i] = rs[i].st
	}
	return out
}

// generateMerges adds merge(I, I') candidates for I' in s ∪ ITC.
func (t *Tuner) generateMerges(st *IndexStats, queue []*IndexStats, seen map[string]bool, add func(*IndexStats)) {
	var partners []*catalog.Index
	for id := range t.inConfig {
		if other := t.tracked[id]; other != nil {
			partners = append(partners, other.Ix)
		}
	}
	sort.Slice(partners, func(i, j int) bool { return partners[i].ID() < partners[j].ID() })
	for _, other := range queue {
		partners = append(partners, other.Ix)
	}
	const maxPartners = 16
	if len(partners) > maxPartners {
		partners = partners[:maxPartners]
	}
	for _, p := range partners {
		if p.ID() == st.Ix.ID() || !strings.EqualFold(p.Table, st.Ix.Table) {
			continue
		}
		for _, pair := range [][2]*catalog.Index{{st.Ix, p}, {p, st.Ix}} {
			m, err := catalog.Merge(pair[0], pair[1])
			if err != nil {
				continue
			}
			id := m.ID()
			if seen[id] || t.env.Cat.IndexByID(id) != nil {
				continue
			}
			if prev := t.tracked[id]; prev != nil && !prev.Derived {
				continue
			}
			seen[id] = true
			size := t.env.Mgr.EstimateIndexBytes(m)
			if budget := t.env.Mgr.Budget(); budget > 0 && size > budget {
				continue
			}
			// Derived candidates are re-inferred from their constituents'
			// current aggregates on every merge round. Configuration
			// members are excluded as inference sources: their accumulated
			// value is already being delivered by the current design, so a
			// merge inheriting it would always look better than the config
			// it wants to replace and the tuner would churn through merge
			// variants. The merged index's advantage must come from demand
			// the configuration does not serve.
			ms := InferFromSubOptimal(m, size, t.candidateList(), func(ix *catalog.Index) int64 {
				return t.env.IndexBytes(ix)
			})
			ms.Derived = true
			// Re-inference rebuilds the aggregates, but a failure streak is
			// history, not evidence — it survives regeneration so failed
			// merge builds back off like any other candidate's.
			if prev := t.tracked[id]; prev != nil {
				ms.FailStreak = prev.FailStreak
			}
			if ms.Benefit(t.effectiveBuildCost(ms)) > 0 {
				// Track only merges whose inferred evidence already clears
				// the threshold: others are regenerated on demand, and
				// keeping them would flood the candidate set.
				t.tracked[id] = ms
				add(ms)
			} else if prev := t.tracked[id]; prev != nil && prev.Derived {
				delete(t.tracked, id)
			}
		}
	}
}

// candidateList returns the non-derived, out-of-configuration tracked
// stats — the valid inference sources for merged candidates. Derived
// stats would double-count their constituents; configuration members'
// value is already realized by the current design.
func (t *Tuner) candidateList() []*IndexStats {
	out := make([]*IndexStats, 0, len(t.tracked))
	for id, st := range t.tracked {
		if !st.Derived && !t.inConfig[id] {
			out = append(out, st)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Ix.ID() < out[j].Ix.ID() })
	return out
}

// createIndex applies a creation decision: synchronously (the
// evaluation's mode) or by starting an asynchronous background build.
func (t *Tuner) createIndex(st *IndexStats, buildCost float64) {
	if !t.opts.Async {
		// A synchronous creation is a build that starts and completes
		// within the statement, so it moves both counters at once.
		t.mBuildsStarted.Inc()
		if t.finishCreate(st, buildCost, nil, "benefit") {
			t.mBuildsCompleted.Inc()
		}
		return
	}
	pb := &pendingBuild{st: st, buildCost: buildCost, remaining: buildCost}
	id := st.Ix.ID()
	if pi := t.env.Mgr.Index(id); pi == nil || pi.State() != storage.StateSuspended {
		// Fresh build: snapshot the table and hand the B+-tree
		// construction to a background goroutine. DML from here on is
		// captured by the build's delta log, off the statement hot path.
		// The build itself sorts its snapshot with the manager's parallel
		// worker budget (engine.SetExecWorkers) and bulk-loads the tree,
		// producing an identical structure at every worker count — the
		// build cost the tuner accounted (buildCost) stays the same
		// sequential-equivalent estimate either way.
		b, err := t.env.Mgr.StartBuild(st.Ix)
		if err != nil {
			// Budget race or storage fault: the attempt counts as a started
			// build that immediately failed, so the metric reconciliation
			// started == completed + aborted + failed (+pending) holds.
			t.mBuildsStarted.Inc()
			t.noteBuildFailure(st, buildCost, err)
			return
		}
		ctx, cancel := context.WithCancel(context.Background())
		pb.build = b
		pb.cancel = cancel
		pb.done = make(chan error, 1)
		go func() { pb.done <- b.Run(ctx) }()
	}
	// Suspended candidates need no physical build: the structure is
	// replayed in place when the accounted restart cost has passed.
	st.Creating = true
	st.deltaAtCreateStart = st.Delta()
	t.pending = pb
	t.mBuildsStarted.Inc()
	t.decide(EvBuildStart.String(), st.Ix, st.Delta(), st.DeltaMin, buildCost, "benefit")
	t.notify(Event{Kind: EvBuildStart, Index: st.Ix, Cost: buildCost, AtQuery: t.queries})
}

// finishCreate materializes the index and applies the Section 3.2.1
// create adjustments plus the shared-OR invalidation. For asynchronous
// creations b carries the finished background build to publish;
// synchronous creations and suspended restarts pass nil. reason names
// the decision-log rule ("benefit" for synchronous creations,
// "published" for asynchronous ones).
func (t *Tuner) finishCreate(st *IndexStats, buildCost float64, b *storage.Build, reason string) bool {
	id := st.Ix.ID()
	kind := EvCreate
	if pi := t.env.Mgr.Index(id); b == nil && pi != nil && pi.State() == storage.StateSuspended {
		if _, err := t.env.Mgr.RestartIndex(id); err != nil {
			t.noteBuildFailure(st, buildCost, err)
			return false
		}
		kind = EvRestart
	} else {
		// Give auto-generated candidates a stable catalog name.
		if t.env.Cat.Index(st.Ix.Name) != nil {
			st.Ix.Name = fmt.Sprintf("%s_%d", st.Ix.Name, t.queries)
		}
		var err error
		if b != nil {
			err = t.db.PublishIndex(st.Ix, b)
		} else {
			err = t.db.CreateIndex(st.Ix)
		}
		if err != nil {
			// Budget race or storage fault: reset the candidate's evidence
			// and penalize its next attempt so it does not retry every query.
			t.noteBuildFailure(st, buildCost, err)
			return false
		}
	}
	t.decide(kind.String(), st.Ix, st.Delta(), st.DeltaMin, buildCost, reason)
	t.inConfig[id] = true
	st.OnCreated()
	t.mTransitionCost.Add(buildCost)
	t.record(Event{Kind: kind, Index: st.Ix, Cost: buildCost, AtQuery: t.queries})

	sizeCreated := t.env.IndexBytes(st.Ix)
	for oid, other := range t.tracked {
		if oid == id {
			continue
		}
		// Same-query OR alternatives are covered by this containment
		// adjustment (their column sets overlap); cross-query candidates
		// with unrelated columns keep their evidence and self-correct as
		// future queries are measured against the new configuration.
		other.AdjustAfterCreate(st.Ix, t.env.IndexBytes(other.Ix), sizeCreated)
	}
	st.Derived = false
	return true
}

// progressBuild advances the asynchronous build's accounting by the cost
// of the just-executed query; the index is published when the accounted
// work reaches B_I^s (Section 3.3). The gate is cost-based — not
// wall-clock — so replayed schedules are deterministic; by the time it
// opens, the background goroutine has normally long finished, and
// waiting on it here costs nothing.
func (t *Tuner) progressBuild(queryCost float64) {
	if t.pending == nil {
		return
	}
	t.pending.remaining -= queryCost
	if t.pending.remaining > 0 {
		return
	}
	pb := t.pending
	t.pending = nil
	if pb.build != nil {
		if err := <-pb.done; err != nil {
			// The build goroutine itself failed (nobody cancelled it —
			// erosion aborts go through abortBuild). The abort path rolls
			// back the reservation and delta log; the catalog never saw the
			// index, so the configuration is untouched and the tuner keeps
			// serving with the candidate cooled down.
			t.env.Mgr.AbortBuild(pb.build)
			t.noteBuildFailure(pb.st, pb.buildCost, err)
			return
		}
	}
	if t.finishCreate(pb.st, pb.buildCost, pb.build, "published") {
		t.mBuildsCompleted.Inc()
	}
}

// abortBuild cancels the in-flight asynchronous creation: the background
// goroutine is cancelled, the half-built structure discarded, and the
// work already accounted is charged as wasted transition cost.
func (t *Tuner) abortBuild() {
	if t.pending == nil {
		return
	}
	pb := t.pending
	t.pending = nil
	if pb.build != nil {
		pb.cancel()
		<-pb.done
		t.env.Mgr.AbortBuild(pb.build)
	}
	st := pb.st
	wasted := pb.buildCost - pb.remaining
	st.Creating = false
	t.mTransitionCost.Add(wasted)
	t.mBuildsAborted.Inc()
	t.decide(EvAbort.String(), st.Ix, st.Delta(), st.DeltaMin, pb.buildCost, "erosion")
	t.record(Event{Kind: EvAbort, Index: st.Ix, Cost: wasted, AtQuery: t.queries})
}

// Close shuts the tuner down cleanly: an in-flight background build is
// cancelled and discarded (without charging the schedule) and subscriber
// channels are closed. Statements may still execute afterwards; their
// observations are ignored.
func (t *Tuner) Close() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return
	}
	t.closed = true
	if pb := t.pending; pb != nil {
		t.pending = nil
		if pb.build != nil {
			pb.cancel()
			<-pb.done
			t.env.Mgr.AbortBuild(pb.build)
		}
		pb.st.Creating = false
	}
	for _, ch := range t.subs {
		close(ch)
	}
	t.subs = nil
}

// statsStaleFraction is the relative table-size change beyond which
// existing statistics are considered stale and rebuilt on the next
// trigger check.
const statsStaleFraction = 0.3

// maybeBuildStats implements the "supporting statistics" policy: once a
// candidate's evidence crosses the configured fraction of its build
// cost, statistics for its leading column are created — or refreshed,
// when the table has grown or shrunk enough since they were built that
// the histogram no longer reflects it.
func (t *Tuner) maybeBuildStats() {
	for id, st := range t.tracked {
		if t.inConfig[id] || st.Creating {
			continue
		}
		lead := st.Ix.LeadingColumn()
		if lead == "" {
			continue
		}
		if cs := t.env.Stats.Get(st.Ix.Table, lead); cs != nil {
			rows := t.env.TableRows(st.Ix.Table)
			base := float64(cs.Rows)
			if base < 1 {
				base = 1
			}
			if mathAbs(rows-base)/base <= statsStaleFraction {
				continue // fresh enough
			}
			// Stale: fall through and rebuild regardless of evidence —
			// the optimizer is already consuming these statistics.
			t.buildColumnStats(st.Ix.Table, lead)
			continue
		}
		b := t.buildCostFor(st.Ix)
		if st.Delta()-st.DeltaMin > t.opts.StatsTriggerFraction*b {
			t.buildColumnStats(st.Ix.Table, lead)
		}
	}
}

func mathAbs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// buildColumnStats samples a table column and installs its statistics.
func (t *Tuner) buildColumnStats(table, column string) {
	tbl := t.env.Cat.Table(table)
	h := t.env.Mgr.Heap(table)
	if tbl == nil || h == nil {
		return
	}
	ord := tbl.ColumnIndex(column)
	if ord < 0 {
		return
	}
	values := make([]datum.Datum, 0, h.Len())
	h.Scan(func(_ storage.RID, r datum.Row) bool {
		values = append(values, r[ord])
		return true
	})
	t.env.Stats.BuildColumn(table, column, values, stats.DefaultBuckets)
}

// evictCandidates bounds |H| by evicting the weakest candidates.
func (t *Tuner) evictCandidates() {
	n := 0
	for id := range t.tracked {
		if !t.inConfig[id] {
			n++
		}
	}
	if n <= t.opts.MaxCandidates {
		return
	}
	cands := t.candidatesLocked()
	sort.Slice(cands, func(i, j int) bool {
		return cands[i].Delta()-cands[i].DeltaMin < cands[j].Delta()-cands[j].DeltaMin
	})
	for i := 0; i < n-t.opts.MaxCandidates && i < len(cands); i++ {
		if cands[i].Creating {
			continue
		}
		delete(t.tracked, cands[i].Ix.ID())
	}
}

// ManualCreate lets a DBA create an index through the tuner so the Δ
// adjustments of Section 3.2.1 are applied exactly as for automatic
// changes (Section 3.3 "manual intervention").
func (t *Tuner) ManualCreate(ix *catalog.Index) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	b := t.buildCostFor(ix)
	if err := t.db.CreateIndex(ix); err != nil {
		return err
	}
	id := ix.ID()
	st := t.tracked[id]
	if st == nil {
		st = NewIndexStats(ix)
		t.tracked[id] = st
	}
	t.decide(EvCreate.String(), ix, st.Delta(), st.DeltaMin, b, "manual")
	t.inConfig[id] = true
	st.OnCreated()
	t.mTransitionCost.Add(b)
	t.record(Event{Kind: EvCreate, Index: ix, Cost: b, AtQuery: t.queries})
	sizeCreated := t.env.IndexBytes(ix)
	for oid, other := range t.tracked {
		if oid != id {
			other.AdjustAfterCreate(ix, t.env.IndexBytes(other.Ix), sizeCreated)
		}
	}
	return nil
}

// ManualDrop drops an index through the tuner, applying the drop
// adjustments.
func (t *Tuner) ManualDrop(name string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	ix := t.env.Cat.Index(name)
	if ix == nil {
		return fmt.Errorf("core: unknown index %s", name)
	}
	id := ix.ID()
	st := t.tracked[id]
	if st == nil {
		st = NewIndexStats(ix)
	}
	if err := t.db.DropIndex(ix); err != nil {
		return err
	}
	t.decide(EvDrop.String(), ix, st.Delta(), st.DeltaMin, t.buildCostFor(ix), "manual")
	delete(t.inConfig, id)
	beta := st.BetaFor()
	st.OnDropped()
	for oid, other := range t.tracked {
		if oid != id {
			other.AdjustAfterDrop(ix, beta)
		}
	}
	t.record(Event{Kind: EvDrop, Index: ix, AtQuery: t.queries})
	return nil
}

// without returns config minus the index with the given ID.
func without(config []*catalog.Index, id string) []*catalog.Index {
	out := make([]*catalog.Index, 0, len(config))
	for _, ix := range config {
		if ix.ID() != id {
			out = append(out, ix)
		}
	}
	return out
}
