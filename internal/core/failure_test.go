package core

import (
	"fmt"
	"testing"

	"onlinetuner/internal/catalog"
	"onlinetuner/internal/storage"
)

// TestTunerSurvivesBudgetShrink injects a budget shrink mid-run: the
// tuner's creation attempts start failing, and it must neither wedge nor
// leave dangling catalog entries.
func TestTunerSurvivesBudgetShrink(t *testing.T) {
	db := paperDB(t, 3000)
	tn := Attach(db, DefaultOptions())
	runN(t, db, q1, 30)
	// Shrink the budget below anything creatable.
	db.Mgr.SetBudget(64)
	runN(t, db, q1, 80)
	runN(t, db, q2, 80)
	// No secondary index can exist under a 64-byte budget unless it was
	// created before the shrink (grandfathered); verify catalog/storage
	// agreement either way.
	for _, ix := range db.Cat.Indexes() {
		if ix.Primary {
			continue
		}
		if db.Mgr.Index(ix.ID()) == nil {
			t.Errorf("catalog index %v has no physical structure", ix)
		}
	}
	_ = tn
}

// TestTunerCatalogStorageConsistency replays a mixed workload and checks
// the invariant that every catalog secondary has a physical structure
// and vice versa.
func TestTunerCatalogStorageConsistency(t *testing.T) {
	db := paperDB(t, 2000)
	opts := DefaultOptions()
	opts.CooldownQueries = 1 // maximize physical-change frequency
	tn := Attach(db, opts)
	for i := 0; i < 150; i++ {
		switch i % 5 {
		case 0, 1:
			runN(t, db, q1, 1)
		case 2:
			runN(t, db, q2, 1)
		case 3:
			db.MustExec(fmt.Sprintf("SELECT b, c FROM R WHERE a = %d", i%1000))
		default:
			db.MustExec("UPDATE R SET e = e + 1 WHERE a < 50")
		}
	}
	for _, ix := range db.Cat.Indexes() {
		if ix.Primary {
			continue
		}
		pi := db.Mgr.Index(ix.ID())
		if pi == nil {
			t.Errorf("catalog secondary %v missing from storage", ix)
			continue
		}
		if pi.State() == storage.StateActive && pi.Tree().Len() != db.Mgr.Heap("R").Len() {
			t.Errorf("index %v has %d entries, heap has %d", ix, pi.Tree().Len(), db.Mgr.Heap("R").Len())
		}
	}
	// Queries still return correct results after all the churn.
	rs := db.MustExec(q1)
	want := 0
	h := db.Mgr.Heap("R")
	_ = h
	rs2 := db.MustExec("SELECT COUNT(*) FROM R WHERE a < 100")
	want = int(rs2.Rows[0][0].Int())
	if len(rs.Rows) != want {
		t.Errorf("q1 rows = %d, COUNT says %d", len(rs.Rows), want)
	}
	_ = tn
}

// TestManualCreateOverBudgetFails verifies manual intervention respects
// the budget and leaves no partial state.
func TestManualCreateOverBudgetFails(t *testing.T) {
	db := paperDB(t, 2000)
	tn := Attach(db, DefaultOptions())
	db.Mgr.SetBudget(100)
	ix := &catalog.Index{Name: "too_big", Table: "R", Columns: []string{"a", "b", "c"}}
	if err := tn.ManualCreate(ix); err == nil {
		t.Fatal("over-budget manual create accepted")
	}
	if db.Cat.Index("too_big") != nil {
		t.Error("failed manual create left a catalog entry")
	}
	if db.Mgr.Index(ix.ID()) != nil {
		t.Error("failed manual create left a physical structure")
	}
}

// TestAsyncAbortLeavesCleanState: an aborted asynchronous build must
// leave the candidate recreatable and the physical layer untouched.
func TestAsyncAbortLeavesCleanState(t *testing.T) {
	db := paperDB(t, 3000)
	opts := DefaultOptions()
	opts.Async = true
	tn := Attach(db, opts)
	// Accumulate evidence until a build starts.
	started := false
	for i := 0; i < 400 && !started; i++ {
		runN(t, db, q1, 1)
		started = tn.pending != nil
	}
	if !started {
		t.Skip("no async build started at this scale")
	}
	pendingIx := tn.pending.st.Ix
	// Update burst to force the abort.
	for i := 0; i < 120 && tn.pending != nil; i++ {
		db.MustExec("UPDATE R SET b = b + 1, c = c + 1, d = d + 1, e = e + 1 WHERE id >= 0")
	}
	if tn.pending != nil {
		t.Skip("build completed before the abort could trigger")
	}
	aborted := false
	for _, ev := range tn.Events() {
		if ev.Kind == EvAbort {
			aborted = true
		}
	}
	if !aborted {
		return // completed normally; also a clean state
	}
	// The aborted index must not exist physically or in the catalog.
	if db.Mgr.Index(pendingIx.ID()) != nil {
		t.Error("aborted build left a physical structure")
	}
	st := tn.Stats(pendingIx.ID())
	if st != nil && st.Creating {
		t.Error("aborted candidate still marked Creating")
	}
}

// TestSuspendedIndexExcludedFromPlansButRestored exercises the full
// suspend → query → restart → query cycle for result correctness.
func TestSuspendedIndexExcludedFromPlansButRestored(t *testing.T) {
	db := paperDB(t, 2000)
	tn := Attach(db, DefaultOptions())
	ix := &catalog.Index{Name: "sus", Table: "R", Columns: []string{"a", "b", "c", "id"}}
	if err := tn.ManualCreate(ix); err != nil {
		t.Fatal(err)
	}
	// Suspend manually, bypassing the tuner: detach it first, or its
	// bookkeeping (which no longer matches the physical state) would
	// drop the index behind the test's back.
	db.SetObserver(nil)
	baseline := len(db.MustExec(q1).Rows)
	if err := db.Mgr.SuspendIndex(ix.ID()); err != nil {
		t.Fatal(err)
	}
	// DML while suspended.
	db.MustExec("INSERT INTO R VALUES (90001, 50, 1, 2, 3, 4)")
	got := len(db.MustExec(q1).Rows)
	if got != baseline+1 {
		t.Fatalf("suspended phase rows = %d, want %d", got, baseline+1)
	}
	if _, err := db.Mgr.RestartIndex(ix.ID()); err != nil {
		t.Fatal(err)
	}
	got = len(db.MustExec(q1).Rows)
	if got != baseline+1 {
		t.Fatalf("post-restart rows = %d, want %d (index missed the insert?)", got, baseline+1)
	}
}
