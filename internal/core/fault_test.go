package core

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"onlinetuner/internal/catalog"
	"onlinetuner/internal/fault"
)

// TestFailPenalty pins the backoff curve: doubling per failure, capped
// at 64×, reset on successful creation.
func TestFailPenalty(t *testing.T) {
	s := NewIndexStats(&catalog.Index{Table: "R", Name: "x", Columns: []string{"a"}})
	want := []float64{1, 2, 4, 8, 16, 32, 64, 64, 64}
	for i, w := range want {
		if got := s.FailPenalty(); got != w {
			t.Fatalf("streak %d: penalty = %v, want %v", i, got, w)
		}
		s.FailStreak++
	}
	s.OnCreated()
	if s.FailStreak != 0 || s.FailPenalty() != 1 {
		t.Fatalf("OnCreated did not reset the streak: %d", s.FailStreak)
	}
}

// TestBuildFailureBookkeeping checks noteBuildFailure's contract in
// isolation: candidate cooled down, metric moved, decision and event
// emitted.
func TestBuildFailureBookkeeping(t *testing.T) {
	db := paperDB(t, 200)
	tn := NewTuner(db, DefaultOptions())
	ix := &catalog.Index{Table: "R", Name: "ix_a", Columns: []string{"a"}}
	st := NewIndexStats(ix)
	st.Add(Level1, 100, 10, false) // Δ = 90
	st.Creating = true
	tn.tracked[ix.ID()] = st

	tn.mu.Lock()
	tn.noteBuildFailure(st, 42, errors.New("disk on fire"))
	tn.mu.Unlock()

	if st.Creating {
		t.Error("candidate still marked Creating after failure")
	}
	if st.FailStreak != 1 {
		t.Errorf("FailStreak = %d, want 1", st.FailStreak)
	}
	if st.DeltaMin != st.Delta() {
		t.Errorf("DeltaMin = %v, want reset to Δ = %v", st.DeltaMin, st.Delta())
	}
	if got := tn.Metrics().BuildsFailed; got != 1 {
		t.Errorf("BuildsFailed = %d, want 1", got)
	}
	decs := tn.Decisions()
	if len(decs) == 0 || decs[len(decs)-1].Kind != "build-failed" {
		t.Errorf("decision log missing build-failed record: %+v", decs)
	}
	evs := tn.Events()
	if len(evs) == 0 || evs[len(evs)-1].Kind != EvFail {
		t.Errorf("event schedule missing EvFail: %v", evs)
	}
}

// TestSyncBuildFaultDegradesGracefully forces every synchronous index
// build to fail and verifies the degradation contract: statements keep
// serving, the catalog stays clean, failures are counted and backed
// off, and once the fault clears the candidate is eventually created.
func TestSyncBuildFaultDegradesGracefully(t *testing.T) {
	db := paperDB(t, 3000)
	tn := Attach(db, DefaultOptions())
	inj := fault.New(1).Plan(fault.BuildStep, fault.Rule{Prob: 1})
	db.SetFaults(inj)
	inj.Arm()

	runN(t, db, q1, 200) // would have created an index many times over

	m := tn.Metrics()
	if m.BuildsFailed == 0 {
		t.Fatal("no build failures despite a certain fault")
	}
	if m.BuildsStarted != m.BuildsCompleted+m.BuildsAborted+m.BuildsFailed {
		t.Fatalf("build counters do not reconcile: started=%d completed=%d aborted=%d failed=%d",
			m.BuildsStarted, m.BuildsCompleted, m.BuildsAborted, m.BuildsFailed)
	}
	// Exponential backoff: evidence resets on failure and the required
	// benefit doubles, so the failure count stays far below the ~13
	// attempts a plain cooldown-limited hot loop would reach.
	if m.BuildsFailed > 8 {
		t.Errorf("BuildsFailed = %d; backoff is not slowing retries", m.BuildsFailed)
	}
	for _, ix := range db.Cat.Indexes() {
		if !ix.Primary {
			t.Errorf("failed builds left catalog entry %v", ix)
		}
	}
	if err := db.Mgr.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	streak := 0
	for _, st := range tn.Candidates() {
		if st.FailStreak > streak {
			streak = st.FailStreak
		}
	}
	if streak == 0 {
		t.Error("no candidate carries a failure streak")
	}

	// The fault clears; with enough further evidence the penalized
	// candidate re-arms and the creation succeeds.
	inj.Disarm()
	created := false
	for i := 0; i < 4000 && !created; i++ {
		runN(t, db, q1, 1)
		created = len(db.Configuration()) > 0
	}
	if !created {
		t.Fatalf("candidate never re-created after fault cleared (streak %d)", streak)
	}
	for _, id := range configIDs(tn) {
		if st := tn.Stats(id); st != nil && st.FailStreak != 0 {
			t.Errorf("successful creation did not reset FailStreak: %d", st.FailStreak)
		}
	}
	if err := db.Mgr.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestAsyncBuildFaultMidBuild fails the background build goroutine
// itself (snapshot-phase fault) and verifies the publish path discards
// the build cleanly: reservation released, no catalog entry, failure
// counted, tuner still serving.
func TestAsyncBuildFaultMidBuild(t *testing.T) {
	db := paperDB(t, 3000)
	opts := DefaultOptions()
	opts.Async = true
	tn := Attach(db, opts)
	inj := fault.New(2).Plan(fault.BuildStep, fault.Rule{Prob: 1})
	db.SetFaults(inj)
	inj.Arm()

	runN(t, db, q1, 400)

	m := tn.Metrics()
	if m.BuildsFailed == 0 {
		t.Skip("no async build reached the publish gate at this scale")
	}
	if m.BuildsStarted != m.BuildsCompleted+m.BuildsAborted+m.BuildsFailed {
		t.Fatalf("build counters do not reconcile: started=%d completed=%d aborted=%d failed=%d",
			m.BuildsStarted, m.BuildsCompleted, m.BuildsAborted, m.BuildsFailed)
	}
	for _, ix := range db.Cat.Indexes() {
		if !ix.Primary {
			t.Errorf("failed async build left catalog entry %v", ix)
		}
	}
	if used := db.Mgr.UsedBytes(); used != 0 {
		t.Errorf("failed async build leaked %d reserved bytes", used)
	}
	if err := db.Mgr.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	// Still serving.
	db.MustExec(q1)
}

// TestCrashReplayMidBuild snapshots the tuner while an asynchronous
// build is in flight, "crashes" (Close aborts the build, as a process
// death would), and reloads into a fresh tuner: candidate evidence
// survives byte-for-byte, the in-flight build is abandoned, and the
// workload resumes cleanly.
func TestCrashReplayMidBuild(t *testing.T) {
	db := paperDB(t, 3000)
	opts := DefaultOptions()
	opts.Async = true
	tn := Attach(db, opts)
	started := false
	for i := 0; i < 400 && !started; i++ {
		runN(t, db, q1, 1)
		tn.mu.Lock()
		started = tn.pending != nil
		tn.mu.Unlock()
	}
	if !started {
		t.Skip("no async build started at this scale")
	}
	tn.mu.Lock()
	buildingID := tn.pending.st.Ix.ID()
	tn.mu.Unlock()

	// Snapshot mid-build, then crash. SaveState skips Creating entries,
	// so the in-flight build is abandoned by construction.
	var buf bytes.Buffer
	tn.mu.Lock()
	savedStats := map[string][2]float64{}
	for id, st := range tn.tracked {
		if !st.Creating {
			savedStats[id] = [2]float64{st.Delta(), st.DeltaMin}
		}
	}
	if err := tn.SaveState(&buf); err != nil {
		tn.mu.Unlock()
		t.Fatal(err)
	}
	tn.mu.Unlock()
	db.SetObserver(nil)
	tn.Close() // aborts the in-flight build, like a restart

	if db.Mgr.Index(buildingID) != nil {
		t.Fatalf("crashed build left physical structure for %s", buildingID)
	}
	if used := db.Mgr.UsedBytes(); used != 0 {
		t.Fatalf("crashed build leaked %d reserved bytes", used)
	}

	tn2 := NewTuner(db, opts)
	if err := tn2.LoadState(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	db.SetObserver(tn2)
	if st := tn2.Stats(buildingID); st != nil {
		if st.Creating {
			t.Error("abandoned build restored as Creating")
		}
	}
	for id, want := range savedStats {
		st := tn2.Stats(id)
		if st == nil {
			t.Errorf("candidate %s lost across restart", id)
			continue
		}
		if st.Delta() != want[0] || st.DeltaMin != want[1] {
			t.Errorf("%s: Δ/Δmin = %v/%v, want %v/%v", id, st.Delta(), st.DeltaMin, want[0], want[1])
		}
	}
	// Workload resumes; the storage layer is consistent.
	runN(t, db, q1, 20)
	if err := db.Mgr.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestSaveLoadPropertyRoundTrip round-trips randomized bookkeeping —
// including failure streaks — through SaveState/LoadState and asserts
// every persisted field survives exactly.
func TestSaveLoadPropertyRoundTrip(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4} {
		rng := rand.New(rand.NewSource(seed))
		db := paperDB(t, 100)
		tn := NewTuner(db, DefaultOptions())
		cols := []string{"a", "b", "c", "d", "e"}
		type snap struct {
			o, n            [4]float64
			dmin, dmax, orN float64
			derived         bool
			streak          int
		}
		want := map[string]snap{}
		for i := 0; i < 1+rng.Intn(len(cols)); i++ {
			ix := &catalog.Index{Table: "R", Name: "rt_" + cols[i], Columns: cols[:i+1]}
			st := NewIndexStats(ix)
			for l := 0; l <= LevelU; l++ {
				st.Add(l, rng.Float64()*100, rng.Float64()*50, rng.Intn(2) == 0)
			}
			st.Derived = rng.Intn(3) == 0
			st.FailStreak = rng.Intn(5)
			tn.tracked[ix.ID()] = st
			want[ix.ID()] = snap{
				o: st.O, n: st.N, dmin: st.DeltaMin, dmax: st.DeltaMax,
				orN: st.orN, derived: st.Derived, streak: st.FailStreak,
			}
		}
		tn.queries = rng.Int63n(10000)
		var buf bytes.Buffer
		if err := tn.SaveState(&buf); err != nil {
			t.Fatal(err)
		}

		tn2 := NewTuner(db, DefaultOptions())
		if err := tn2.LoadState(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatal(err)
		}
		if tn2.queries != tn.queries {
			t.Errorf("seed %d: queries = %d, want %d", seed, tn2.queries, tn.queries)
		}
		if len(tn2.tracked) != len(want) {
			t.Fatalf("seed %d: %d tracked after load, want %d", seed, len(tn2.tracked), len(want))
		}
		for id, w := range want {
			st := tn2.tracked[id]
			if st == nil {
				t.Fatalf("seed %d: %s lost", seed, id)
			}
			if st.O != w.o || st.N != w.n || st.DeltaMin != w.dmin || st.DeltaMax != w.dmax ||
				st.orN != w.orN || st.Derived != w.derived || st.FailStreak != w.streak {
				t.Errorf("seed %d: %s round-trip mismatch:\ngot  %+v\nwant %+v", seed, id, st, w)
			}
		}
	}
}
