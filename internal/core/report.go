package core

import (
	"fmt"
	"sort"
	"strings"

	"onlinetuner/internal/catalog"
)

// Report is a structured snapshot of the tuner's state: what is in the
// configuration and how much slack it has, which candidates are
// accumulating evidence, and the totals. It is the observability surface
// a DBA (or the interactive shell) reads to understand what the tuner is
// about to do.
type Report struct {
	Queries        int64
	TransitionCost float64
	BudgetBytes    int64
	UsedBytes      int64

	Config     []ConfigEntry
	Candidates []CandidateEntry
}

// ConfigEntry describes one configuration member.
type ConfigEntry struct {
	Index *catalog.Index
	Bytes int64
	// Residual is the slack before the index becomes a dropping
	// candidate (Section 3.2.2); ≤ its build cost by construction.
	Residual  float64
	BuildCost float64
}

// CandidateEntry describes one candidate index in H.
type CandidateEntry struct {
	Index *catalog.Index
	Bytes int64
	// Evidence is Δ−Δmin, the accumulated net benefit.
	Evidence float64
	// BuildCost is B_I^s; the candidate is created once Evidence exceeds
	// it (plus any eviction residuals under storage pressure).
	BuildCost float64
	// Benefit is Evidence − BuildCost (positive = creation-ready).
	Benefit float64
	// Derived marks lazily generated merged candidates.
	Derived bool
	// Creating marks an asynchronous build in progress.
	Creating bool
}

// Report captures the tuner's current state. Candidates are sorted by
// evidence descending and capped at topK (0 = all).
func (t *Tuner) Report(topK int) Report {
	r := Report{
		Queries:        t.queries,
		TransitionCost: t.mTransitionCost.Value(),
		BudgetBytes:    t.env.Mgr.Budget(),
		UsedBytes:      t.env.Mgr.UsedBytes(),
	}
	for id := range t.inConfig {
		st := t.tracked[id]
		if st == nil {
			continue
		}
		b := t.buildCostFor(st.Ix)
		r.Config = append(r.Config, ConfigEntry{
			Index:     st.Ix,
			Bytes:     t.env.IndexBytes(st.Ix),
			Residual:  st.Residual(b),
			BuildCost: b,
		})
	}
	sort.Slice(r.Config, func(i, j int) bool { return r.Config[i].Index.ID() < r.Config[j].Index.ID() })

	for id, st := range t.tracked {
		if t.inConfig[id] {
			continue
		}
		b := t.buildCostFor(st.Ix)
		ev := st.Delta() - st.DeltaMin
		r.Candidates = append(r.Candidates, CandidateEntry{
			Index:     st.Ix,
			Bytes:     t.env.IndexBytes(st.Ix),
			Evidence:  ev,
			BuildCost: b,
			Benefit:   ev - b,
			Derived:   st.Derived,
			Creating:  st.Creating,
		})
	}
	sort.Slice(r.Candidates, func(i, j int) bool {
		if r.Candidates[i].Evidence != r.Candidates[j].Evidence {
			return r.Candidates[i].Evidence > r.Candidates[j].Evidence
		}
		return r.Candidates[i].Index.ID() < r.Candidates[j].Index.ID()
	})
	if topK > 0 && len(r.Candidates) > topK {
		r.Candidates = r.Candidates[:topK]
	}
	return r
}

// String renders the report for terminals.
func (r Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "after %d statements, %.2f paid in transitions; budget %d/%d bytes\n",
		r.Queries, r.TransitionCost, r.UsedBytes, r.BudgetBytes)
	sb.WriteString("configuration:\n")
	if len(r.Config) == 0 {
		sb.WriteString("  (no secondary indexes)\n")
	}
	for _, c := range r.Config {
		fmt.Fprintf(&sb, "  %-55s %9d B  residual %8.2f / B %8.2f\n",
			c.Index, c.Bytes, c.Residual, c.BuildCost)
	}
	sb.WriteString("top candidates:\n")
	for _, c := range r.Candidates {
		tag := ""
		if c.Derived {
			tag = " (merged)"
		}
		if c.Creating {
			tag += " (building)"
		}
		fmt.Fprintf(&sb, "  %-55s %9d B  evidence %8.2f / B %8.2f%s\n",
			c.Index, c.Bytes, c.Evidence, c.BuildCost, tag)
	}
	return sb.String()
}
