package core_test

import (
	"fmt"

	"onlinetuner/internal/core"
	"onlinetuner/internal/engine"
)

// Example demonstrates the one-call integration: open a database, attach
// the tuner, run a workload, and read the physical changes it made.
func Example() {
	db := engine.Open()
	db.MustExec("CREATE TABLE t (id INT, k INT, v INT, PRIMARY KEY (id))")
	for i := 0; i < 4000; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO t VALUES (%d, %d, %d)", i, i%400, i))
	}
	if err := db.Analyze("t"); err != nil {
		panic(err)
	}
	tuner := core.Attach(db, core.DefaultOptions())

	for i := 0; i < 30; i++ {
		db.MustExec("SELECT v FROM t WHERE k = 7")
	}
	for _, ev := range tuner.Events() {
		fmt.Println(ev.Kind, ev.Index)
	}
	// Output:
	// create t(k,v)
}

// ExampleNewAlerter shows the observe-only deployment: the alerter never
// touches the physical design, it only reports guaranteed improvements.
func ExampleNewAlerter() {
	db := engine.Open()
	db.MustExec("CREATE TABLE t (id INT, k INT, v INT, PRIMARY KEY (id))")
	for i := 0; i < 4000; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO t VALUES (%d, %d, %d)", i, i%400, i))
	}
	if err := db.Analyze("t"); err != nil {
		panic(err)
	}
	alerter := core.NewAlerter(db, 0.2)
	db.SetObserver(alerter)

	for i := 0; i < 60; i++ {
		db.MustExec("SELECT v FROM t WHERE k = 7")
	}
	fmt.Println("alerts:", len(alerter.Alerts()) > 0)
	fmt.Println("indexes created:", len(db.Configuration()))
	// Output:
	// alerts: true
	// indexes created: 0
}
