package core

import (
	"fmt"
	"strings"
	"testing"

	"onlinetuner/internal/catalog"
	"onlinetuner/internal/engine"
)

// paperDB loads the paper's Section 4.1 schema: R(id,a,b,c,d,e) with
// `rows` rows where a is selective (~1% per range bucket).
func paperDB(t testing.TB, rows int) *engine.DB {
	t.Helper()
	db := engine.Open()
	db.MustExec("CREATE TABLE R (id INT, a INT, b INT, c INT, d INT, e INT, PRIMARY KEY (id))")
	db.MustExec("CREATE TABLE S (id INT, a INT, b INT, c INT, d INT, e INT, PRIMARY KEY (id))")
	for i := 0; i < rows; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO R VALUES (%d, %d, %d, %d, %d, %d)",
			i, i%1000, i, i, i, i))
	}
	for i := 0; i < rows; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO S VALUES (%d, %d, %d, %d, %d, %d)",
			i, i%1000, i, i, i, i))
	}
	if err := db.Analyze("R"); err != nil {
		t.Fatal(err)
	}
	if err := db.Analyze("S"); err != nil {
		t.Fatal(err)
	}
	return db
}

const q1 = "SELECT a, b, c, id FROM R WHERE a < 100"
const q2 = "SELECT a, d, e, id FROM R WHERE a < 100"
const q3 = "INSERT INTO R SELECT * FROM S"

func runN(t testing.TB, db *engine.DB, q string, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, _, err := db.Exec(q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
}

func configIDs(tn *Tuner) []string {
	var out []string
	for id := range tn.inConfig {
		out = append(out, id)
	}
	return out
}

func TestTunerCreatesIndexAfterEvidence(t *testing.T) {
	db := paperDB(t, 3000)
	tn := Attach(db, DefaultOptions())
	runN(t, db, q1, 60)
	evs := tn.Events()
	if len(evs) == 0 {
		t.Fatal("tuner never changed the physical design")
	}
	if evs[0].Kind != EvCreate {
		t.Fatalf("first event = %v", evs[0])
	}
	// The first creation must not happen on the very first query (the
	// evidence threshold B_I must accumulate), but must happen well
	// before the workload ends.
	if evs[0].AtQuery < 2 || evs[0].AtQuery > 50 {
		t.Errorf("first creation at query %d", evs[0].AtQuery)
	}
	// The created index serves q1: its columns cover {a,b,c,id}.
	if !evs[0].Index.ContainsColumns([]string{"a", "b", "c", "id"}) {
		t.Errorf("created index %v does not serve q1", evs[0].Index)
	}
	// And queries are now cheaper.
	_, info, err := db.Exec(q1)
	if err != nil {
		t.Fatal(err)
	}
	if info.EstCost >= 0.9*firstCost(t, db) {
		t.Errorf("query cost did not improve: %g", info.EstCost)
	}
}

// firstCost returns the cost of q1 on a fresh identical database without
// any tuning.
func firstCost(t testing.TB, tuned *engine.DB) float64 {
	db := paperDB(t, int(tuned.WhatIfEnv().TableRows("R"))) // same size
	_, info, err := db.Exec(q1)
	if err != nil {
		t.Fatal(err)
	}
	return info.EstCost
}

func TestTunerPaperUpgradePattern(t *testing.T) {
	// The paper's W1 pattern: a cheap sort-free index (id-leading) is
	// created first, then replaced/supplemented by the better seek index
	// (a-leading) as evidence accumulates.
	db := paperDB(t, 3000)
	tn := Attach(db, DefaultOptions())
	runN(t, db, q1, 250)
	var createdCols []string
	for _, ev := range tn.Events() {
		if ev.Kind == EvCreate {
			createdCols = append(createdCols, strings.Join(ev.Index.Columns, ","))
		}
	}
	if len(createdCols) == 0 {
		t.Fatal("no creations")
	}
	// Eventually the seek-optimal index (leading with a) must exist.
	found := false
	for id := range tn.inConfig {
		if strings.HasPrefix(id, "r(a,") {
			found = true
		}
	}
	if !found {
		t.Errorf("a-leading index never created; creations: %v, config: %v",
			createdCols, configIDs(tn))
	}
}

func TestTunerDropsIndexUnderUpdates(t *testing.T) {
	db := paperDB(t, 2000)
	tn := Attach(db, DefaultOptions())
	runN(t, db, q1, 120)
	if len(configIDs(tn)) == 0 {
		t.Fatal("no index created during read phase")
	}
	// Update-heavy phase: large inserts into R (the paper's q3).
	for i := 0; i < 60; i++ {
		if _, _, err := db.Exec(fmt.Sprintf(
			"UPDATE R SET b = b + 1, c = c + 1, d = d + 1, e = e + 1 WHERE id >= %d", 0)); err != nil {
			t.Fatal(err)
		}
	}
	var dropped bool
	for _, ev := range tn.Events() {
		if ev.Kind == EvDrop {
			dropped = true
		}
	}
	if !dropped {
		t.Errorf("update-heavy phase never dropped an index; config: %v", configIDs(tn))
	}
}

func TestTunerStorageConstrainedSwap(t *testing.T) {
	db := paperDB(t, 3000)
	// Budget: one 4-column index only (the paper's 135 MB setting).
	one := db.Mgr.EstimateIndexBytes(idx(db, "R", "a", "b", "c", "id"))
	db.Mgr.SetBudget(one + one/8)
	tn := Attach(db, DefaultOptions())
	runN(t, db, q1, 250)
	if len(configIDs(tn)) == 0 {
		t.Fatal("nothing created in phase 1")
	}
	// Phase 2: q2 needs different columns; the tuner must eventually swap.
	runN(t, db, q2, 250)
	servesQ2 := false
	for id := range tn.inConfig {
		ix := db.Cat.IndexByID(id)
		if ix != nil && ix.ContainsColumns([]string{"a", "d", "e", "id"}) {
			servesQ2 = true
		}
	}
	if !servesQ2 {
		t.Errorf("no q2-serving index after phase 2; config = %v events = %v",
			configIDs(tn), tn.Events())
	}
	// The budget must have been respected throughout.
	if db.Mgr.UsedBytes() > db.Mgr.Budget() {
		t.Errorf("budget exceeded: %d > %d", db.Mgr.UsedBytes(), db.Mgr.Budget())
	}
}

func TestTunerNoOscillationOnStableMix(t *testing.T) {
	// The paper's W2/135MB result: with room for only one index and an
	// interleaved q1;q2 mix of equal benefit, the design stabilizes
	// instead of thrashing.
	db := paperDB(t, 3000)
	one := db.Mgr.EstimateIndexBytes(idx(db, "R", "a", "b", "c", "id"))
	db.Mgr.SetBudget(one + one/8)
	opts := DefaultOptions()
	opts.MergeEvery = 0 // merging would legitimately replace indexes here
	tn := Attach(db, opts)
	for i := 0; i < 250; i++ {
		runN(t, db, q1, 1)
		runN(t, db, q2, 1)
	}
	// Count changes in the last half of the workload: a thrashing tuner
	// swaps every few queries; a damped one settles.
	late := 0
	for _, ev := range tn.Events() {
		if ev.AtQuery > 250 {
			late++
		}
	}
	if late > 6 {
		t.Errorf("%d physical changes in the stable phase (oscillation); events: %v", late, tn.Events())
	}
}

func TestTunerMergingCreatesCombinedIndex(t *testing.T) {
	// The paper's W2/138MB result: when the budget fits the merged
	// 6-column index, merging should produce one index serving both
	// queries.
	db := paperDB(t, 3000)
	merged := db.Mgr.EstimateIndexBytes(idx(db, "R", "a", "b", "c", "id", "d", "e"))
	db.Mgr.SetBudget(merged + merged/10)
	tn := Attach(db, DefaultOptions())
	for i := 0; i < 250; i++ {
		runN(t, db, q1, 1)
		runN(t, db, q2, 1)
	}
	both := false
	for id := range tn.inConfig {
		ix := db.Cat.IndexByID(id)
		if ix != nil && ix.ContainsColumns([]string{"a", "b", "c", "d", "e", "id"}) {
			both = true
		}
	}
	if !both {
		t.Errorf("merged index never created; config = %v, events = %v", configIDs(tn), tn.Events())
	}
	// Both queries should now be cheap.
	_, i1, _ := db.Exec(q1)
	_, i2, _ := db.Exec(q2)
	if i1.EstCost > 2 || i2.EstCost > 2 {
		t.Logf("q1=%.3f q2=%.3f (informational)", i1.EstCost, i2.EstCost)
	}
}

func TestTunerSuspendRestart(t *testing.T) {
	db := paperDB(t, 2000)
	opts := DefaultOptions()
	opts.UseSuspend = true
	tn := Attach(db, opts)
	runN(t, db, q1, 120)
	if len(configIDs(tn)) == 0 {
		t.Fatal("no creation")
	}
	// Update-heavy: the index should be suspended, not dropped.
	for i := 0; i < 40; i++ {
		db.MustExec("UPDATE R SET b = b + 1, c = c + 1 WHERE id >= 0")
	}
	suspended := false
	for _, ev := range tn.Events() {
		if ev.Kind == EvSuspend {
			suspended = true
		}
	}
	if !suspended {
		t.Fatalf("no suspension; events = %v", tn.Events())
	}
	// Read-heavy again: the index comes back. Recovery must out-earn the
	// update-phase penalties plus B, so the read phase is long.
	runN(t, db, q1, 600)
	restarted := false
	for _, ev := range tn.Events() {
		if ev.Kind == EvRestart {
			restarted = true
		}
	}
	if !restarted {
		t.Fatalf("no restart; events = %v", tn.Events())
	}
}

func TestTunerAsyncCreation(t *testing.T) {
	db := paperDB(t, 2000)
	opts := DefaultOptions()
	opts.Async = true
	tn := Attach(db, opts)
	runN(t, db, q1, 200)
	// The build completes after enough query-cost has elapsed.
	created := false
	for _, ev := range tn.Events() {
		if ev.Kind == EvCreate {
			created = true
		}
	}
	if !created {
		t.Fatalf("async build never completed; events = %v", tn.Events())
	}
}

func TestTunerAsyncAbortOnUpdates(t *testing.T) {
	db := paperDB(t, 3000)
	opts := DefaultOptions()
	opts.Async = true
	tn := Attach(db, opts)
	// Enough reads to start a build but not finish it, then a burst of
	// updates to erode the benefit.
	for i := 0; i < 300 && tn.pending == nil; i++ {
		runN(t, db, q1, 1)
	}
	if tn.pending == nil {
		t.Skip("build finished too fast to exercise abort on this scale")
	}
	for i := 0; i < 100 && tn.pending != nil; i++ {
		db.MustExec("UPDATE R SET b = b + 1, c = c + 1, d = d + 1, e = e + 1 WHERE id >= 0")
	}
	aborted := false
	for _, ev := range tn.Events() {
		if ev.Kind == EvAbort {
			aborted = true
		}
	}
	if !aborted && tn.pending != nil {
		t.Errorf("build neither finished nor aborted under updates; events = %v", tn.Events())
	}
}

func TestTunerThrottling(t *testing.T) {
	db := paperDB(t, 2000)
	opts := DefaultOptions()
	opts.ThrottleEvery = 10
	tn := Attach(db, opts)
	runN(t, db, q1, 100)
	// All physical changes must land on throttle boundaries.
	for _, ev := range tn.Events() {
		if ev.AtQuery%10 != 0 {
			t.Errorf("event %v at query %d not on a throttle boundary", ev, ev.AtQuery)
		}
	}
	if len(tn.Events()) == 0 {
		t.Error("throttled tuner never acted")
	}
}

func TestTunerManualIntervention(t *testing.T) {
	db := paperDB(t, 1000)
	tn := Attach(db, DefaultOptions())
	ixm := idx(db, "R", "a", "b", "c", "id")
	ixm.Name = "manual_1"
	if err := tn.ManualCreate(ixm); err != nil {
		t.Fatal(err)
	}
	if !tn.inConfig[ixm.ID()] {
		t.Fatal("manual create not tracked")
	}
	if err := tn.ManualDrop("manual_1"); err != nil {
		t.Fatal(err)
	}
	if tn.inConfig[ixm.ID()] {
		t.Fatal("manual drop not tracked")
	}
	if err := tn.ManualDrop("nope"); err == nil {
		t.Error("unknown manual drop accepted")
	}
}

func TestTunerStatisticsTrigger(t *testing.T) {
	db := engine.Open()
	db.MustExec("CREATE TABLE R (id INT, a INT, b INT, c INT, d INT, e INT, PRIMARY KEY (id))")
	for i := 0; i < 3000; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO R VALUES (%d, %d, %d, %d, %d, %d)", i, i%1000, i, i, i, i))
	}
	// No Analyze: statistics must appear via the trigger.
	before := db.Stats.BuildCount()
	tn := Attach(db, DefaultOptions())
	runN(t, db, q1, 100)
	if db.Stats.BuildCount() == before {
		t.Error("statistics trigger never fired")
	}
	if !db.Stats.Has("R", "a") {
		t.Error("stats for the candidate's leading column missing")
	}
	_ = tn
}

func TestTunerCandidateEviction(t *testing.T) {
	db := paperDB(t, 500)
	opts := DefaultOptions()
	opts.MaxCandidates = 3
	opts.MergeEvery = 0
	tn := Attach(db, opts)
	// Many distinct query shapes generate many candidates.
	for i := 0; i < 20; i++ {
		db.MustExec(fmt.Sprintf("SELECT b FROM R WHERE a = %d", i))
		db.MustExec(fmt.Sprintf("SELECT c FROM R WHERE b < %d", i))
		db.MustExec(fmt.Sprintf("SELECT d FROM R WHERE c = %d", i))
		db.MustExec(fmt.Sprintf("SELECT e FROM R WHERE d = %d", i))
	}
	if got := len(tn.Candidates()); got > 3 {
		t.Errorf("candidates = %d, want ≤ 3", got)
	}
}

func TestTunerMetricsAccumulate(t *testing.T) {
	db := paperDB(t, 1000)
	tn := Attach(db, DefaultOptions())
	runN(t, db, q1, 50)
	m := tn.Metrics()
	if m.Queries != 50 {
		t.Errorf("queries = %d", m.Queries)
	}
	if m.Total <= 0 || m.Lines28 <= 0 {
		t.Error("timers not accumulating")
	}
	if m.Total < m.Line1+m.Lines28 {
		t.Error("total must dominate the parts it contains")
	}
	if len(tn.Events()) > 0 && m.TransitionCost <= 0 {
		t.Error("transition cost not recorded")
	}
}

func TestTunerSuspendedIndexNotUsedByPlans(t *testing.T) {
	db := paperDB(t, 2000)
	opts := DefaultOptions()
	opts.UseSuspend = true
	tn := Attach(db, opts)
	runN(t, db, q1, 120)
	// Force-suspend whatever exists and verify plans fall back.
	for id := range tn.inConfig {
		if err := db.Mgr.SuspendIndex(id); err != nil {
			t.Fatal(err)
		}
		delete(tn.inConfig, id)
	}
	// 2000 rows with a = i%1000 → a < 100 matches 200 rows.
	rs := db.MustExec(q1)
	if len(rs.Rows) != 200 {
		t.Errorf("rows = %d, want 200", len(rs.Rows))
	}
}

// idx builds an index definition for size estimation and manual DDL.
func idx(db *engine.DB, table string, cols ...string) *catalog.Index {
	_ = db
	return &catalog.Index{Name: "t_" + strings.Join(cols, "_"), Table: table, Columns: cols}
}

func TestTunerStatisticsRefreshOnGrowth(t *testing.T) {
	db := paperDB(t, 2000)
	tn := Attach(db, DefaultOptions())
	runN(t, db, q1, 60) // builds stats for the candidate's leading column
	if !db.Stats.Has("R", "a") {
		t.Fatal("stats never built")
	}
	before := db.Stats.BuildCount()
	// Grow the table well past the staleness fraction.
	for i := 0; i < 900; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO R VALUES (%d, %d, 1, 2, 3, 4)", 100000+i, i%1000))
	}
	runN(t, db, q1, 5)
	if db.Stats.BuildCount() <= before {
		t.Errorf("statistics not refreshed after 45%% growth (builds %d)", db.Stats.BuildCount())
	}
	// Refresh must not loop: a stable table triggers no further builds.
	mid := db.Stats.BuildCount()
	runN(t, db, q1, 20)
	if db.Stats.BuildCount() > mid+2 {
		t.Errorf("statistics rebuilt repeatedly on a stable table: %d → %d", mid, db.Stats.BuildCount())
	}
	_ = tn
}

func TestTunerReport(t *testing.T) {
	db := paperDB(t, 3000)
	tn := Attach(db, DefaultOptions())
	runN(t, db, q1, 60)
	r := tn.Report(5)
	if r.Queries != 60 {
		t.Errorf("queries = %d", r.Queries)
	}
	if len(r.Config) == 0 {
		t.Fatal("report missing configuration entries")
	}
	for _, c := range r.Config {
		if c.Residual > c.BuildCost+1e-9 {
			t.Errorf("%v: residual %.2f exceeds build cost %.2f", c.Index, c.Residual, c.BuildCost)
		}
		if c.Bytes <= 0 {
			t.Errorf("%v: no size", c.Index)
		}
	}
	if len(r.Candidates) > 5 {
		t.Errorf("topK not applied: %d", len(r.Candidates))
	}
	for _, c := range r.Candidates {
		if c.Benefit != c.Evidence-c.BuildCost {
			t.Errorf("%v: benefit arithmetic wrong", c.Index)
		}
	}
	if !strings.Contains(r.String(), "configuration:") {
		t.Error("rendering incomplete")
	}
	if r.TransitionCost <= 0 {
		t.Error("transitions missing after creations")
	}
}
