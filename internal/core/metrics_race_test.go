package core

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestMetricsConcurrentWithAsyncBuilds is the -race regression test for
// the Metrics snapshot: a dashboard goroutine hammers Metrics(),
// Decisions() and the registry snapshot while statements execute and
// background builds publish. Before the counters moved to atomic
// registry cells this was a data race on the Metrics struct fields.
func TestMetricsConcurrentWithAsyncBuilds(t *testing.T) {
	db := paperDB(t, 2000)
	opts := DefaultOptions()
	opts.Async = true
	tn := Attach(db, opts)
	defer tn.Close()

	var stop atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				m := tn.Metrics()
				if m.Queries < 0 || m.BuildsCompleted > m.BuildsStarted {
					t.Errorf("inconsistent snapshot: %+v", m)
					return
				}
				_ = tn.Decisions()
				_ = db.Observability().Reg.Snapshot()
			}
		}()
	}
	runN(t, db, q1, 150)
	runN(t, db, q2, 150)
	stop.Store(true)
	wg.Wait()

	if tn.Metrics().Queries != 300 {
		t.Errorf("Queries = %d, want 300", tn.Metrics().Queries)
	}
}

// TestTunerCountersReconcileWithRegistry checks the Metrics() snapshot
// and the registry snapshot agree exactly at quiescence — the tuner's
// counters ARE registry cells, not copies that could drift.
func TestTunerCountersReconcileWithRegistry(t *testing.T) {
	db := paperDB(t, 3000)
	tn := Attach(db, DefaultOptions())
	runN(t, db, q1, 60)
	runN(t, db, q3, 8)
	runN(t, db, q2, 60)

	m := tn.Metrics()
	snap := db.Observability().Reg.Snapshot()
	checks := map[string]int64{
		"tuner.queries":          m.Queries,
		"tuner.total_ns":         int64(m.Total),
		"tuner.line1_ns":         int64(m.Line1),
		"tuner.lines2_8_ns":      int64(m.Lines28),
		"tuner.lines9_18_ns":     int64(m.Lines918),
		"tuner.line18_ns":        int64(m.Line18),
		"tuner.builds_started":   m.BuildsStarted,
		"tuner.builds_completed": m.BuildsCompleted,
		"tuner.builds_aborted":   m.BuildsAborted,
	}
	for name, want := range checks {
		if got := snap[name]; got != want {
			t.Errorf("snapshot[%q] = %v, Metrics says %d", name, got, want)
		}
	}
	if got := snap["tuner.transition_cost"]; got != m.TransitionCost {
		t.Errorf("snapshot[tuner.transition_cost] = %v, Metrics says %v", got, m.TransitionCost)
	}
	if got := snap["tuner.decisions"]; got != int64(len(tn.Decisions())) {
		t.Errorf("snapshot[tuner.decisions] = %v but log holds %d records", got, len(tn.Decisions()))
	}
	if m.BuildsStarted == 0 {
		t.Error("workload built no indexes; reconciliation checked nothing")
	}
	if m.Total < m.Line1+m.Lines28+m.Lines918+m.Line18 {
		t.Errorf("per-module overhead exceeds total: %+v", m)
	}
}

// TestDecisionLogMatchesEvents: every physical design change reported
// through the event stream has a structured decision record carrying
// the evidence, with matching kind and index.
func TestDecisionLogMatchesEvents(t *testing.T) {
	db := paperDB(t, 3000)
	tn := Attach(db, DefaultOptions())
	runN(t, db, q1, 60)
	runN(t, db, q3, 6)
	runN(t, db, q2, 40)

	evs := tn.Events()
	if len(evs) == 0 {
		t.Fatal("no events")
	}
	decs := tn.Decisions()
	type key struct{ kind, index string }
	have := map[key]int{}
	for _, d := range decs {
		have[key{d.Kind, d.Index}]++
		if d.Reason == "" {
			t.Errorf("decision %+v has no reason", d)
		}
	}
	for _, ev := range evs {
		k := key{ev.Kind.String(), ev.Index.ID()}
		if have[k] == 0 {
			t.Errorf("event %v %v has no decision record", ev.Kind, ev.Index)
			continue
		}
		have[k]--
	}
	// Creation decisions must carry the budget the rule fired against.
	for _, d := range decs {
		if d.Kind == EvCreate.String() && d.Reason == "benefit" && d.BuildCost <= 0 {
			t.Errorf("create decision without B_I: %+v", d)
		}
	}
}
