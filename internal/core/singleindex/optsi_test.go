package singleindex

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestOptSICaseMatchesDP is the empirical discharge of Theorem 1: the
// Figure 2 case analysis produces schedules with the same cost as the
// exact dynamic program, over random workloads.
func TestOptSICaseMatchesDP(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(80)
		c0 := make([]float64, n)
		c1 := make([]float64, n)
		for i := range c0 {
			c0[i] = float64(r.Intn(20))
			c1[i] = float64(r.Intn(20))
		}
		B := 0.5 + float64(r.Intn(30))
		_, dp, err := OptSchedule(c0, c1, B)
		if err != nil {
			return false
		}
		_, fig2, err := OptSICase(c0, c1, B)
		if err != nil {
			return false
		}
		return math.Abs(dp-fig2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestOptSICaseKnownSchedules(t *testing.T) {
	B := 4.0
	// Steady benefit: create early, keep forever.
	c0 := []float64{5, 5, 5, 5, 5, 5}
	c1 := []float64{1, 1, 1, 1, 1, 1}
	sched, total, err := OptSICase(c0, c1, B)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range sched {
		if !s {
			t.Fatalf("query %d should run with the index: %v", i, sched)
		}
	}
	want := B + 6*1
	if math.Abs(total-want) > 1e-9 {
		t.Errorf("total = %g, want %g", total, want)
	}

	// Benefit then penalty: create for the first phase, drop for the
	// second.
	c0 = []float64{5, 5, 5, 1, 1, 1}
	c1 = []float64{1, 1, 1, 5, 5, 5}
	sched, _, err = OptSICase(c0, c1, B)
	if err != nil {
		t.Fatal(err)
	}
	if !sched[0] || !sched[2] || sched[3] || sched[5] {
		t.Errorf("phase schedule = %v", sched)
	}

	// Never worth it.
	c0 = []float64{1, 1, 1}
	c1 = []float64{0.5, 0.5, 0.5}
	sched, total, err = OptSICase(c0, c1, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sched {
		if s {
			t.Errorf("index should never be created: %v", sched)
		}
	}
	if total != 3 {
		t.Errorf("total = %g", total)
	}
}

func TestOptSICaseAdvancesEveryIteration(t *testing.T) {
	// Theorem 1's progress argument: pathological flat inputs must still
	// terminate with a complete schedule.
	for _, vals := range [][2]float64{{1, 1}, {0, 0}, {2, 1}, {1, 2}} {
		n := 50
		c0 := make([]float64, n)
		c1 := make([]float64, n)
		for i := range c0 {
			c0[i], c1[i] = vals[0], vals[1]
		}
		sched, _, err := OptSICase(c0, c1, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(sched) != n {
			t.Fatalf("incomplete schedule for %v", vals)
		}
	}
}

func TestOptSICaseErrors(t *testing.T) {
	if _, _, err := OptSICase([]float64{1}, nil, 1); err == nil {
		t.Error("length mismatch accepted")
	}
	sched, total, err := OptSICase(nil, nil, 1)
	if err != nil || len(sched) != 0 || total != 0 {
		t.Error("empty workload should be trivial")
	}
}
