package singleindex

// This file implements Opt-SI exactly as the paper's Figure 2 presents
// it: a case analysis over the future behavior of Δ(i,n) (Figure 3),
// appending sub-schedules to the optimal prefix. OptSchedule (the
// dynamic program in singleindex.go) computes the same optimum; the two
// are cross-checked by property tests, discharging Theorem 1
// empirically for this implementation.
//
// Δ values follow Definition 1: Δ(i0,i1) = Σ_{i=i0..i1} (c0_i − c1_i),
// the cumulative benefit of having the index over that sub-sequence.

// OptSICase computes the optimal schedule with Figure 2's case analysis.
// The schedule starts in configuration s0 = 0 (index absent), matching
// OptSchedule's convention.
func OptSICase(c0, c1 []float64, B float64) (schedule []bool, total float64, err error) {
	n := len(c0)
	if n != len(c1) {
		return nil, 0, errLenMismatch(len(c0), len(c1))
	}
	schedule = make([]bool, n)
	// delta[j] = Δ(i+1, j) computed lazily from prefix sums: pre[j] =
	// Δ(1, j) with pre[0] = 0, so Δ(a, b) = pre[b] − pre[a−1].
	pre := make([]float64, n+1)
	for i := 0; i < n; i++ {
		pre[i+1] = pre[i] + (c0[i] - c1[i])
	}
	delta := func(a, b int) float64 { return pre[b] - pre[a-1] } // 1-based, inclusive

	s := false // s_i: current configuration
	i := 0     // 0-based: queries 1..i are scheduled
	for i < n {
		if !s {
			// Cases A1, A2, A3 (Figure 3): find the first j > i where
			// Δ(i+1, j) either drops below 0 (A1: stay at 0 up to j) or
			// exceeds B without having gone below 0 (A2: run 1 from i+1
			// to j, creating the index). If neither happens, A3: stay at
			// 0 to the end.
			j, kind := scanForward(delta, i, n, B)
			switch kind {
			case caseA1:
				for k := i; k < j; k++ {
					schedule[k] = false
				}
				i = j
			case caseA2:
				for k := i; k < j; k++ {
					schedule[k] = true
				}
				s = true
				i = j
			default: // A3
				for k := i; k < n; k++ {
					schedule[k] = false
				}
				i = n
			}
		} else {
			// Cases B1, B2, B3 are symmetric: with the index present,
			// find the first j where Δ(i+1, j) exceeds 0 (B1: keep the
			// index to j) or drops below −B without having exceeded 0
			// (B2: drop it for i+1..j). Otherwise B3: the benefit never
			// recovers; drop for the rest.
			j, kind := scanBackwardCases(delta, i, n, B)
			switch kind {
			case caseB1:
				for k := i; k < j; k++ {
					schedule[k] = true
				}
				i = j
			case caseB2:
				for k := i; k < j; k++ {
					schedule[k] = false
				}
				s = false
				i = j
			default: // B3
				for k := i; k < n; k++ {
					schedule[k] = false
				}
				i = n
			}
		}
	}
	total, err = ScheduleCost(c0, c1, B, schedule)
	return schedule, total, err
}

type caseKind int

const (
	caseA1 caseKind = iota
	caseA2
	caseA3
	caseB1
	caseB2
	caseB3
)

// scanForward resolves the s=0 cases: walking j from i+1, the first
// threshold Δ(i+1,j) crosses decides the case (below 0 → A1; above B
// → A2; end of workload → A3).
func scanForward(delta func(a, b int) float64, i, n int, B float64) (int, caseKind) {
	for j := i + 1; j <= n; j++ {
		d := delta(i+1, j)
		if d < 0 {
			return j, caseA1
		}
		if d > B {
			return j, caseA2
		}
	}
	return n, caseA3
}

// scanBackwardCases resolves the s=1 cases symmetrically: above 0 → B1
// (keep); below −B → B2 (drop, then reconsider); end → B3 (drop to the
// end — with no future benefit recovery, keeping the index pays nothing
// and dropping is free).
func scanBackwardCases(delta func(a, b int) float64, i, n int, B float64) (int, caseKind) {
	for j := i + 1; j <= n; j++ {
		d := delta(i+1, j)
		if d > 0 {
			return j, caseB1
		}
		if d < -B {
			return j, caseB2
		}
	}
	return n, caseB3
}

func errLenMismatch(a, b int) error {
	return lenMismatchError{a: a, b: b}
}

type lenMismatchError struct{ a, b int }

func (e lenMismatchError) Error() string {
	return "singleindex: cost slices differ in length"
}
