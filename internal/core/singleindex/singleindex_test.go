package singleindex

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// bruteForce enumerates all 2^n schedules for small n.
func bruteForce(c0, c1 []float64, B float64) float64 {
	n := len(c0)
	best := math.Inf(1)
	for mask := 0; mask < 1<<n; mask++ {
		sched := make([]bool, n)
		for i := 0; i < n; i++ {
			sched[i] = mask&(1<<i) != 0
		}
		c, _ := ScheduleCost(c0, c1, B, sched)
		if c < best {
			best = c
		}
	}
	return best
}

func TestOptMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for iter := 0; iter < 200; iter++ {
		n := 1 + r.Intn(10)
		c0 := make([]float64, n)
		c1 := make([]float64, n)
		for i := range c0 {
			c0[i] = float64(r.Intn(20))
			c1[i] = float64(r.Intn(20))
		}
		B := float64(1 + r.Intn(15))
		_, opt, err := OptSchedule(c0, c1, B)
		if err != nil {
			t.Fatal(err)
		}
		bf := bruteForce(c0, c1, B)
		if math.Abs(opt-bf) > 1e-9 {
			t.Fatalf("iter %d: opt=%g brute=%g (c0=%v c1=%v B=%g)", iter, opt, bf, c0, c1, B)
		}
	}
}

func TestOptScheduleConsistent(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for iter := 0; iter < 100; iter++ {
		n := 1 + r.Intn(40)
		c0 := make([]float64, n)
		c1 := make([]float64, n)
		for i := range c0 {
			c0[i] = r.Float64() * 10
			c1[i] = r.Float64() * 10
		}
		B := r.Float64() * 20
		sched, opt, err := OptSchedule(c0, c1, B)
		if err != nil {
			t.Fatal(err)
		}
		// The reported cost must equal the evaluated schedule cost.
		got, err := ScheduleCost(c0, c1, B, sched)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-opt) > 1e-9 {
			t.Fatalf("schedule cost %g != reported %g", got, opt)
		}
	}
}

// TestTheorem2Workload reproduces the adversarial workload of the
// competitive analysis: cost(q1,0)=ε+B, cost(q1,1)=ε, cost(q2,0)=ε,
// cost(q2,1)=ε+B. Online-SI must cost (3B+2ε) per (q1,q2) pair against
// the optimum's (B+2ε), and the ratio stays below 3.
func TestTheorem2Workload(t *testing.T) {
	B := 10.0
	eps := 0.01
	pairs := 50
	var c0, c1 []float64
	for i := 0; i < pairs; i++ {
		c0 = append(c0, eps+B) // q1 without index
		c1 = append(c1, eps)   // q1 with index
		c0 = append(c0, eps)   // q2 without index
		c1 = append(c1, eps+B) // q2 with index
	}
	_, opt, err := OptSchedule(c0, c1, B)
	if err != nil {
		t.Fatal(err)
	}
	on := New(B)
	_, online, err := on.Run(c0, c1)
	if err != nil {
		t.Fatal(err)
	}
	ratio := online / opt
	if ratio >= 3 {
		t.Fatalf("competitive ratio %g >= 3", ratio)
	}
	// The adversarial construction should approach 3 from below.
	if ratio < 2.5 {
		t.Fatalf("adversarial ratio %g unexpectedly small (online=%g opt=%g)", ratio, online, opt)
	}
	// Per-pair costs should match the proof's arithmetic.
	wantOpt := float64(pairs)*(B+2*eps) + eps // trailing structure differs by O(ε)
	if math.Abs(opt-wantOpt) > B+1 {
		t.Errorf("opt = %g, analysis says ≈ %g", opt, wantOpt)
	}
}

// TestThreeCompetitiveRandom checks the competitive bound on random
// workloads whose per-query cost gap is bounded by B — the regime the
// paper's analysis covers (a single query with |c0−c1| ≫ B can force
// unbounded one-shot regret on any online algorithm, so the bound cannot
// hold unconditionally). An additive O(B) term absorbs the boundary
// effect of evidence accumulated but not yet exploited at workload end.
func TestThreeCompetitiveRandom(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(300)
		B := 0.5 + r.Float64()*10
		c0 := make([]float64, n)
		c1 := make([]float64, n)
		for i := range c0 {
			base := r.Float64() * 5
			gap := (r.Float64()*2 - 1) * B // |c0-c1| ≤ B
			c0[i] = base + math.Max(0, gap)
			c1[i] = base + math.Max(0, -gap)
		}
		_, opt, err := OptSchedule(c0, c1, B)
		if err != nil {
			return false
		}
		_, online, err := New(B).Run(c0, c1)
		if err != nil {
			return false
		}
		return online <= 3*opt+4*B+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestOnlineCreatesAfterEvidence(t *testing.T) {
	B := 5.0
	on := New(B)
	// Each query saves 1 unit with the index: creation after ceil(B)=5.
	creations := 0
	for i := 0; i < 10; i++ {
		if on.Observe(2, 1) == Create {
			creations++
			if i != 4 {
				t.Errorf("created at query %d, want 4", i)
			}
		}
	}
	if creations != 1 {
		t.Fatalf("creations = %d, want 1", creations)
	}
	if !on.Present {
		t.Fatal("index should be present")
	}
	// Updates now penalize the index: drop after accumulated penalty ≥ B.
	drops := 0
	for i := 0; i < 10; i++ {
		if on.Observe(1, 2) == Drop {
			drops++
			if i != 4 {
				t.Errorf("dropped at query %d, want 4", i)
			}
		}
	}
	if drops != 1 || on.Present {
		t.Fatalf("drops = %d present = %v", drops, on.Present)
	}
}

func TestOnlineStableWorkloadNoOscillation(t *testing.T) {
	// "Do no harm": a workload where the index saves less than it costs
	// must never trigger a creation.
	on := New(100)
	for i := 0; i < 1000; i++ {
		if a := on.Observe(1.0, 0.95); a != None {
			t.Fatalf("action %v on stable workload", a)
		}
	}
}

func TestOnlineNeverNegativeEvidence(t *testing.T) {
	// A pure-update workload (index always harmful) never creates.
	on := New(3)
	for i := 0; i < 100; i++ {
		if a := on.Observe(1, 5); a != None {
			t.Fatalf("unexpected %v", a)
		}
	}
	if on.Delta() >= 0 {
		t.Error("delta should be negative")
	}
	if on.DeltaMin() > on.Delta() {
		t.Error("deltaMin must track delta")
	}
}

func TestRunScheduleShape(t *testing.T) {
	B := 4.0
	c0 := []float64{5, 5, 5, 5, 1, 1, 1}
	c1 := []float64{1, 1, 1, 1, 1, 1, 1}
	sched, total, err := New(B).Run(c0, c1)
	if err != nil {
		t.Fatal(err)
	}
	// Evidence of 4/query: creation decided at query 0 (Δ=4 ≥ B),
	// so queries 1+ run with the index.
	if sched[0] {
		t.Error("first query should run without the index")
	}
	if !sched[1] || !sched[6] {
		t.Errorf("schedule = %v", sched)
	}
	want := 5.0 + B + 6*1
	if math.Abs(total-want) > 1e-9 {
		t.Errorf("total = %g, want %g", total, want)
	}
}

func TestErrors(t *testing.T) {
	if _, _, err := OptSchedule([]float64{1}, nil, 1); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, _, err := New(1).Run([]float64{1}, nil); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := ScheduleCost([]float64{1}, []float64{1}, 1, nil); err == nil {
		t.Error("length mismatch accepted")
	}
	if sched, total, err := OptSchedule(nil, nil, 1); err != nil || sched != nil || total != 0 {
		t.Error("empty workload should be trivial")
	}
}
