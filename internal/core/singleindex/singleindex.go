// Package singleindex implements Section 3.1 of the paper: the
// single-index online physical tuning problem. OptSchedule computes the
// optimal configuration schedule for a known workload (the paper's
// Opt-SI, Figure 2 — realized here through the equivalent
// dynamic-programming formulation the paper cites as the "simpler way"
// [2], which the Figure 2 case analysis provably matches). OnlineSI is
// the three-competitive online algorithm of Figure 4.
package singleindex

import "fmt"

// Action is a physical design decision emitted by OnlineSI.
type Action int

// Possible actions after observing one query.
const (
	None Action = iota
	Create
	Drop
)

func (a Action) String() string {
	switch a {
	case None:
		return "none"
	case Create:
		return "create"
	case Drop:
		return "drop"
	}
	return "?"
}

// OnlineSI is the online algorithm of Figure 4. It observes, for each
// executed query, the query's cost without the index (c0) and with it
// (c1), and decides transitions after accumulating enough evidence: it
// creates the index once Δ − Δmin ≥ B and drops it once Δmax − Δ ≥ B.
// Only a constant amount of state is kept per index.
type OnlineSI struct {
	// B is the index creation cost B_I.
	B float64
	// Present reports the current configuration (true = index exists).
	Present bool

	delta    float64
	deltaMin float64
	deltaMax float64
}

// New returns an OnlineSI starting without the index.
func New(buildCost float64) *OnlineSI {
	return &OnlineSI{B: buildCost}
}

// Delta returns the accumulated Δ value.
func (o *OnlineSI) Delta() float64 { return o.delta }

// DeltaMin returns the tracked minimum of Δ since the last drop.
func (o *OnlineSI) DeltaMin() float64 { return o.deltaMin }

// DeltaMax returns the tracked maximum of Δ since the last creation.
func (o *OnlineSI) DeltaMax() float64 { return o.deltaMax }

// Observe processes one executed query, given its cost under both
// configurations, and returns the transition to apply (the caller
// performs the physical change). This is exactly Figure 4.
func (o *OnlineSI) Observe(c0, c1 float64) Action {
	delta := c0 - c1
	o.delta += delta
	if o.delta < o.deltaMin {
		o.deltaMin = o.delta
	}
	if o.delta > o.deltaMax {
		o.deltaMax = o.delta
	}
	if !o.Present && o.delta-o.deltaMin >= o.B {
		o.deltaMax = o.delta
		o.Present = true
		return Create
	}
	if o.Present && o.deltaMax-o.delta >= o.B {
		o.deltaMin = o.delta
		o.Present = false
		return Drop
	}
	return None
}

// Run replays a whole workload through OnlineSI and returns the
// resulting schedule (s_i = configuration in which query i executes,
// after the transition decision of query i-1) and its total cost
// including index creations. Transitions are applied before the next
// query, mirroring the paper's synchronous evaluation mode.
func (o *OnlineSI) Run(c0, c1 []float64) (schedule []bool, total float64, err error) {
	if len(c0) != len(c1) {
		return nil, 0, fmt.Errorf("singleindex: cost slices differ in length: %d vs %d", len(c0), len(c1))
	}
	schedule = make([]bool, len(c0))
	for i := range c0 {
		schedule[i] = o.Present
		if o.Present {
			total += c1[i]
		} else {
			total += c0[i]
		}
		if a := o.Observe(c0[i], c1[i]); a == Create {
			total += o.B
		}
	}
	return schedule, total, nil
}

// OptSchedule computes the optimal configuration schedule (Opt-SI) for a
// fully known workload: query i costs c0[i] without the index and c1[i]
// with it, creating the index costs B (dropping is free), and the
// schedule starts without the index. It returns the optimal schedule
// (s[i] = true when query i runs with the index) and its total cost.
func OptSchedule(c0, c1 []float64, B float64) (schedule []bool, total float64, err error) {
	n := len(c0)
	if n != len(c1) {
		return nil, 0, fmt.Errorf("singleindex: cost slices differ in length: %d vs %d", n, len(c1))
	}
	if n == 0 {
		return nil, 0, nil
	}
	const inf = 1e300
	// dp[s] = minimal cost of a prefix ending in state s.
	dp0, dp1 := 0.0, B // creating up-front is allowed
	// choice[i][s] records the predecessor state for backtracking.
	choice := make([][2]int8, n)
	for i := 0; i < n; i++ {
		n0, n1 := inf, inf
		var ch [2]int8
		// Arrive in state 0: stay 0, or drop from 1 (free).
		if dp0 <= dp1 {
			n0, ch[0] = dp0, 0
		} else {
			n0, ch[0] = dp1, 1
		}
		n0 += c0[i]
		// Arrive in state 1: stay 1, or create from 0 paying B.
		if dp1 <= dp0+B {
			n1, ch[1] = dp1, 1
		} else {
			n1, ch[1] = dp0+B, 0
		}
		n1 += c1[i]
		dp0, dp1 = n0, n1
		choice[i] = ch
	}
	// Backtrack.
	schedule = make([]bool, n)
	state := int8(0)
	if dp1 < dp0 {
		state = 1
		total = dp1
	} else {
		total = dp0
	}
	for i := n - 1; i >= 0; i-- {
		schedule[i] = state == 1
		state = choice[i][state]
	}
	return schedule, total, nil
}

// ScheduleCost evaluates an arbitrary schedule's total cost under the
// same model as OptSchedule (start without the index; each 0→1
// transition pays B; drops are free).
func ScheduleCost(c0, c1 []float64, B float64, schedule []bool) (float64, error) {
	if len(schedule) != len(c0) || len(c0) != len(c1) {
		return 0, fmt.Errorf("singleindex: length mismatch")
	}
	total := 0.0
	prev := false
	for i, s := range schedule {
		if s && !prev {
			total += B
		}
		if s {
			total += c1[i]
		} else {
			total += c0[i]
		}
		prev = s
	}
	return total, nil
}
