// Serving benchmark: the TCP daemon under ramping client counts. Each
// cell connects N wire-protocol clients that hammer a mixed workload —
// OLTP point lookups interleaved with TPC-H aggregate scans — and
// reports end-to-end latency percentiles (p50/p99 over the socket,
// framing and admission included) plus throughput. A final deliberately
// under-provisioned cell (one admission slot, one queue seat, 16
// clients) demonstrates backpressure: a healthy daemon sheds that load
// with typed rejections instead of queuing it. cmd/experiments
// serializes the report to BENCH_serve.json.
package bench

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"onlinetuner/internal/engine"
	"onlinetuner/internal/server"
	"onlinetuner/internal/tpch"
)

// ServeCell is one measured (clients, daemon sizing) configuration.
type ServeCell struct {
	Name    string `json:"name"`
	Clients int    `json:"clients"`
	// Requests is the attempts per client; every attempt either
	// completes or is rejected, so Completed+Rejected = Clients*Requests.
	Requests  int `json:"requests"`
	Completed int `json:"completed"`
	// Rejected counts typed backpressure errors (admission queue full or
	// wait timed out). Zero in the provisioned cells; the point of the
	// overload cell.
	Rejected int `json:"rejected"`
	// Overload marks the deliberately under-provisioned configuration.
	Overload bool `json:"overload"`
	// AdmitSlots/MaxQueue record the daemon sizing the cell ran with
	// (0 = server default).
	AdmitSlots int `json:"admit_slots"`
	MaxQueue   int `json:"max_queue"`
	// Latency percentiles over completed requests, end to end.
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MeanMs float64 `json:"mean_ms"`
	// CompletedPerSec is aggregate goodput (rejections excluded).
	CompletedPerSec float64 `json:"completed_per_sec"`
}

// ServeReport is the serving-layer profile, serialized to
// BENCH_serve.json by cmd/experiments.
type ServeReport struct {
	Scale    float64     `json:"scale"`
	Seed     int64       `json:"seed"`
	Requests int         `json:"requests"`
	Cells    []ServeCell `json:"cells"`
}

// serveClientCounts is the ramp every report measures.
var serveClientCounts = []int{1, 2, 4, 8, 16}

// serveQuery builds the deterministic mixed workload: even steps are
// point lookups, odd steps aggregate a lineitem slice.
func serveQuery(client, step int) string {
	k := (client*137 + step*31) % 150
	if step%2 == 0 {
		return fmt.Sprintf("SELECT o_orderkey, o_totalprice FROM orders WHERE o_orderkey = %d", 1+k)
	}
	return fmt.Sprintf("SELECT COUNT(*) AS n, SUM(l_extendedprice) AS rev FROM lineitem WHERE l_partkey = %d", 1+k%80)
}

// plugSQL is the overload cell's slot occupier: a non-equi join over
// two fixed-size scratch tables, so its runtime (roughly 100-300ms) is
// independent of the TPC-H scale under test.
const plugSQL = "SELECT COUNT(*) AS n FROM plga, plgb WHERE pa >= pb"

// loadPlugTables creates the scratch tables plugSQL joins.
func loadPlugTables(db *engine.DB) error {
	for _, ddl := range []string{
		"CREATE TABLE plga (pa INT, PRIMARY KEY (pa))",
		"CREATE TABLE plgb (pb INT, PRIMARY KEY (pb))",
	} {
		if _, _, err := db.Exec(ddl); err != nil {
			return err
		}
	}
	for i := 0; i < 500; i++ {
		if _, _, err := db.Exec(fmt.Sprintf("INSERT INTO plga VALUES (%d)", i)); err != nil {
			return err
		}
		if _, _, err := db.Exec(fmt.Sprintf("INSERT INTO plgb VALUES (%d)", i)); err != nil {
			return err
		}
	}
	return nil
}

func admittedTotal(db *engine.DB) int64 {
	return db.Observability().Reg.Snapshot()["server.admitted"].(int64)
}

// measureServeCell runs one cell against db: clients×requests over real
// TCP through a fresh server with the given config. With plug=true, a
// dedicated extra connection occupies the admission slot with plugSQL
// before the client volley is released, so an under-provisioned daemon
// is guaranteed — not just likely — to shed the volley with typed
// rejections. Rejected clients back off briefly (as the error message
// tells them to), so attempts issued after the plug clears complete.
func measureServeCell(db *engine.DB, name string, clients, requests int, cfg server.Config, plug bool) (ServeCell, error) {
	srv := server.New(db, cfg)
	addr, errc, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return ServeCell{}, err
	}
	defer func() {
		srv.Abort()
		<-errc
	}()

	type clientOut struct {
		lat      []time.Duration
		rejected int
		err      error
	}
	outs := make([]clientOut, clients)
	begin := make(chan struct{})
	ready := make(chan error, clients)
	var wg sync.WaitGroup
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			out := &outs[ci]
			c, err := server.Dial(addr.String())
			ready <- err
			if err != nil {
				out.err = err
				return
			}
			defer c.Close()
			c.Timeout = 120 * time.Second
			out.lat = make([]time.Duration, 0, requests)
			<-begin
			for s := 0; s < requests; s++ {
				t0 := time.Now()
				_, err := c.Query(serveQuery(ci, s))
				switch {
				case err == nil:
					out.lat = append(out.lat, time.Since(t0))
				case server.IsOverload(err):
					out.rejected++
					time.Sleep(5 * time.Millisecond)
				default:
					out.err = fmt.Errorf("client %d request %d: %w", ci, s, err)
					return
				}
			}
		}(ci)
	}
	for ci := 0; ci < clients; ci++ {
		if err := <-ready; err != nil {
			close(begin)
			wg.Wait()
			return ServeCell{}, err
		}
	}

	plugDone := make(chan error, 1)
	if plug {
		pc, err := server.Dial(addr.String())
		if err != nil {
			close(begin)
			wg.Wait()
			return ServeCell{}, err
		}
		defer pc.Close()
		pc.Timeout = 120 * time.Second
		before := admittedTotal(db)
		go func() {
			_, err := pc.Query(plugSQL)
			plugDone <- err
		}()
		// Release the volley only once the plug provably holds the slot.
		for admittedTotal(db) == before {
			time.Sleep(time.Millisecond)
		}
	} else {
		plugDone <- nil
	}

	start := time.Now()
	close(begin)
	wg.Wait()
	elapsed := time.Since(start)
	if err := <-plugDone; err != nil {
		return ServeCell{}, fmt.Errorf("plug statement: %w", err)
	}

	var all []time.Duration
	cell := ServeCell{
		Name:       name,
		Clients:    clients,
		Requests:   requests,
		Overload:   plug,
		AdmitSlots: cfg.AdmitSlots,
		MaxQueue:   cfg.MaxQueue,
	}
	for i := range outs {
		if outs[i].err != nil {
			return ServeCell{}, outs[i].err
		}
		all = append(all, outs[i].lat...)
		cell.Rejected += outs[i].rejected
	}
	cell.Completed = len(all)
	if len(all) > 0 {
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		var sum time.Duration
		for _, d := range all {
			sum += d
		}
		cell.P50Ms = round3(float64(percentile(all, 50)) / 1e6)
		cell.P99Ms = round3(float64(percentile(all, 99)) / 1e6)
		cell.MeanMs = round3(float64(sum) / float64(len(all)) / 1e6)
		cell.CompletedPerSec = round3(float64(len(all)) / elapsed.Seconds())
	}
	return cell, nil
}

// percentile reads the p-th percentile from sorted latencies
// (nearest-rank).
func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := (p*len(sorted) + 99) / 100
	if idx < 1 {
		idx = 1
	}
	if idx > len(sorted) {
		idx = len(sorted)
	}
	return sorted[idx-1]
}

// Serve measures the daemon under the client ramp plus the overload
// cell, all against one TPC-H-loaded engine.
func Serve(scale tpch.Scale, seed int64, requests int) (*ServeReport, error) {
	if requests <= 0 {
		requests = 60
	}
	db := engine.Open()
	gen := tpch.NewGenerator(scale, seed)
	if err := gen.Load(db); err != nil {
		return nil, err
	}
	if err := loadPlugTables(db); err != nil {
		return nil, err
	}

	rep := &ServeReport{Scale: float64(scale), Seed: seed, Requests: requests}
	for _, clients := range serveClientCounts {
		// Provisioned cells must never reject: leave AdmitSlots at the
		// engine-derived default but give the queue room for every client
		// and patience beyond any plausible scan, so the ramp measures
		// latency, not shedding (the overload cell demonstrates that).
		cfg := server.Config{
			MaxConns:     clients + 4,
			MaxQueue:     clients,
			QueueTimeout: 60 * time.Second,
		}
		cell, err := measureServeCell(db, fmt.Sprintf("clients-%d", clients),
			clients, requests, cfg, false)
		if err != nil {
			return nil, err
		}
		rep.Cells = append(rep.Cells, cell)
	}
	// The overload cell: one execution slot, one queue seat, no patience,
	// and the slot pre-occupied by the plug statement when the volley
	// lands — typed rejections are guaranteed, not probabilistic.
	overload := server.Config{
		MaxConns:     20,
		AdmitSlots:   1,
		MaxQueue:     1,
		QueueTimeout: 2 * time.Millisecond,
	}
	cell, err := measureServeCell(db, "overload", 16, requests, overload, true)
	if err != nil {
		return nil, err
	}
	rep.Cells = append(rep.Cells, cell)
	return rep, nil
}

// JSON serializes the report.
func (r *ServeReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Meta renders the report's machine-independent identity — the shape CI
// compares across a double run to prove the benchmark harness is
// deterministic even though the timings are not.
func (r *ServeReport) Meta() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "scale=%g seed=%d requests=%d cells=%d\n", r.Scale, r.Seed, r.Requests, len(r.Cells))
	for _, c := range r.Cells {
		fmt.Fprintf(&sb, "cell=%s clients=%d requests=%d attempts=%d overload=%v admit_slots=%d max_queue=%d\n",
			c.Name, c.Clients, c.Requests, c.Completed+c.Rejected, c.Overload, c.AdmitSlots, c.MaxQueue)
	}
	return sb.String()
}

// Verify checks the report's internal honesty: the full client ramp is
// present, every attempt is accounted for, percentiles are ordered, and
// the overload cell actually shed load.
func (r *ServeReport) Verify() error {
	var errs []string
	seen := map[int]bool{}
	overloads := 0
	for _, c := range r.Cells {
		if c.Completed+c.Rejected != c.Clients*c.Requests {
			errs = append(errs, fmt.Sprintf("%s: %d completed + %d rejected != %d attempts",
				c.Name, c.Completed, c.Rejected, c.Clients*c.Requests))
		}
		if c.Completed > 0 {
			if c.P50Ms <= 0 {
				errs = append(errs, fmt.Sprintf("%s: p50 %.3fms not positive", c.Name, c.P50Ms))
			}
			if c.P99Ms < c.P50Ms {
				errs = append(errs, fmt.Sprintf("%s: p99 %.3fms < p50 %.3fms", c.Name, c.P99Ms, c.P50Ms))
			}
			if c.CompletedPerSec <= 0 {
				errs = append(errs, fmt.Sprintf("%s: throughput %.3f not positive", c.Name, c.CompletedPerSec))
			}
		}
		if c.Overload {
			overloads++
			if c.Rejected == 0 {
				errs = append(errs, fmt.Sprintf("%s: overload cell rejected nothing — backpressure not demonstrated", c.Name))
			}
		} else {
			seen[c.Clients] = true
			if c.Rejected != 0 {
				errs = append(errs, fmt.Sprintf("%s: provisioned cell rejected %d requests", c.Name, c.Rejected))
			}
		}
	}
	for _, want := range serveClientCounts {
		if !seen[want] {
			errs = append(errs, fmt.Sprintf("client ramp incomplete: no cell for %d clients", want))
		}
	}
	if overloads != 1 {
		errs = append(errs, fmt.Sprintf("want exactly 1 overload cell, have %d", overloads))
	}
	if len(errs) > 0 {
		return fmt.Errorf("serve report verification failed:\n  %s", strings.Join(errs, "\n  "))
	}
	return nil
}

// VerifyServeJSON parses and verifies a serialized report — the CI
// honesty guard's entry point for the committed BENCH_serve.json.
func VerifyServeJSON(data []byte) (*ServeReport, error) {
	var rep ServeReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("serve report: bad JSON: %w", err)
	}
	if err := rep.Verify(); err != nil {
		return nil, err
	}
	return &rep, nil
}

// FormatServe renders the human-readable serving profile.
func FormatServe(r *ServeReport) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Serving layer: %d requests/client over TCP (scale %.2g, seed %d)\n\n",
		r.Requests, r.Scale, r.Seed)
	fmt.Fprintf(&sb, "%-12s %8s %10s %9s %9s %9s %12s %9s\n",
		"cell", "clients", "completed", "rejected", "p50 ms", "p99 ms", "mean ms", "req/s")
	for _, c := range r.Cells {
		fmt.Fprintf(&sb, "%-12s %8d %10d %9d %9.3f %9.3f %12.3f %9.0f\n",
			c.Name, c.Clients, c.Completed, c.Rejected, c.P50Ms, c.P99Ms, c.MeanMs, c.CompletedPerSec)
	}
	sb.WriteString("\nThe overload cell runs one admission slot and one queue seat: rejections\nthere are the backpressure contract working, not a failure.\n")
	return sb.String()
}
