//go:build race

package bench

// raceDetectorEnabled relaxes timing-based assertions: race
// instrumentation inflates the tuner's pointer-chasing bookkeeping far
// more than the executor's scans, so overhead ratios are not meaningful
// under -race.
const raceDetectorEnabled = true
