package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"onlinetuner/internal/tpch"
	"onlinetuner/internal/tuner"
	"onlinetuner/internal/workload"
)

// TunerCell is one (scenario, advisor, seed) race outcome. Every value
// derives from estimated costs and advisor counters — no wall clock —
// so a cell is byte-reproducible from its coordinates.
type TunerCell struct {
	Scenario   string `json:"scenario"`
	Advisor    string `json:"advisor"`
	Seed       int64  `json:"seed"`
	Statements int    `json:"statements"`
	// QueryCost is Σ estimated execution cost; TransitionCost is Σ index
	// build work the advisor charged; TotalCost is their sum.
	QueryCost      float64 `json:"query_cost"`
	TransitionCost float64 `json:"transition_cost"`
	TotalCost      float64 `json:"total_cost"`
	// Regret is TotalCost minus the best TotalCost achieved by any
	// advisor in the same (scenario, seed) cell group — nonnegative by
	// construction. The omniscient Offline-Seq baseline is normally the
	// argmin, but the definition deliberately takes the realized minimum:
	// the offline advisor plans against profile-time costs, and if
	// another schedule edges it out under replay costs, regret stays
	// honest instead of going negative.
	Regret       float64        `json:"regret"`
	Counters     tuner.Counters `json:"counters"`
	FinalIndexes []string       `json:"final_indexes"`
}

// ScenarioSummary aggregates one scenario across seeds.
type ScenarioSummary struct {
	Scenario string `json:"scenario"`
	// Winner is the advisor with the lowest mean total.
	Winner string `json:"winner"`
	// MeanTotal maps advisor → mean TotalCost across seeds.
	MeanTotal map[string]float64 `json:"mean_total"`
	// OnlineOverNoTuner is mean(OnlinePT)/mean(NoTuner) — below 1 means
	// the online tuner beat doing nothing.
	OnlineOverNoTuner float64 `json:"online_over_notuner"`
}

// TunersReport is the BENCH_tuners.json artifact.
type TunersReport struct {
	Name      string            `json:"name"`
	Scale     float64           `json:"scale"`
	Seeds     []int64           `json:"seeds"`
	Advisors  []string          `json:"advisors"`
	Scenarios []string          `json:"scenarios"`
	Cells     []TunerCell       `json:"cells"`
	Summaries []ScenarioSummary `json:"summaries"`
}

// TunersConfig parameterizes a race.
type TunersConfig struct {
	Scale tpch.Scale
	// Statements caps each scenario's stream (0 = scenario default).
	Statements int
	Seeds      []int64
	// Advisors/Scenarios restrict the matrix (nil = full canonical sets).
	Advisors   []string
	Scenarios  []string
	ExecEngine string
	// Log, if set, receives per-cell progress lines.
	Log io.Writer
}

// RunTuners races every (scenario, advisor, seed) cell on identical
// statement streams and assembles the regret report. Cells run in
// canonical order: scenarios in registry order, seeds ascending,
// advisors in registry order.
func RunTuners(cfg TunersConfig) (*TunersReport, error) {
	if cfg.Scale <= 0 {
		cfg.Scale = 0.25
	}
	if len(cfg.Seeds) == 0 {
		cfg.Seeds = []int64{1, 2}
	}
	scenarios := cfg.Scenarios
	if len(scenarios) == 0 {
		scenarios = workload.ScenarioNames()
	}
	advisors := cfg.Advisors
	if len(advisors) == 0 {
		advisors = tuner.AdvisorNames()
	}
	seeds := append([]int64{}, cfg.Seeds...)
	sort.Slice(seeds, func(a, b int) bool { return seeds[a] < seeds[b] })

	rep := &TunersReport{
		Name:      "tuner_race",
		Scale:     float64(cfg.Scale),
		Seeds:     seeds,
		Advisors:  advisors,
		Scenarios: scenarios,
	}
	for _, sc := range scenarios {
		for _, seed := range seeds {
			group := make([]*TunerCell, 0, len(advisors))
			for _, adv := range advisors {
				cell, err := runTunerCell(adv, sc, workload.ScenarioOptions{
					Scale:      cfg.Scale,
					Seed:       seed,
					Statements: cfg.Statements,
					ExecEngine: cfg.ExecEngine,
				})
				if err != nil {
					return nil, fmt.Errorf("bench: tuners %s/%s/seed=%d: %w", sc, adv, seed, err)
				}
				if cfg.Log != nil {
					fmt.Fprintf(cfg.Log, "  %-8s %-11s seed=%d total=%.1f (query %.1f + transition %.1f) created=%d dropped=%d\n",
						sc, adv, seed, cell.TotalCost, cell.QueryCost, cell.TransitionCost,
						cell.Counters.IndexesCreated, cell.Counters.IndexesDropped)
				}
				group = append(group, cell)
			}
			// Regret is anchored to the group's realized minimum.
			best := math.Inf(1)
			for _, c := range group {
				if c.TotalCost < best {
					best = c.TotalCost
				}
			}
			for _, c := range group {
				c.Regret = round3(c.TotalCost - best)
				rep.Cells = append(rep.Cells, *c)
			}
		}
	}
	rep.Summaries = summarize(rep)
	return rep, nil
}

// runTunerCell races one advisor over one scenario instance.
func runTunerCell(advisorName, scenarioName string, o workload.ScenarioOptions) (*TunerCell, error) {
	w, err := workload.BuildScenario(scenarioName, o)
	if err != nil {
		return nil, err
	}
	a, err := tuner.NewAdvisor(advisorName)
	if err != nil {
		return nil, err
	}
	db := w.NewDB()
	defer db.Close()
	if err := a.Start(db, w); err != nil {
		return nil, err
	}
	var query, transition float64
	for i, stmt := range w.Statements {
		pre, err := a.BeforeStatement(i)
		if err != nil {
			return nil, err
		}
		_, info, err := db.Exec(stmt)
		if err != nil {
			return nil, fmt.Errorf("statement %d %q: %w", i, stmt, err)
		}
		post, err := a.AfterStatement(i, info)
		if err != nil {
			return nil, err
		}
		query += info.EstCost
		transition += pre + post
	}
	a.Close()
	return &TunerCell{
		Scenario:       scenarioName,
		Advisor:        a.Name(),
		Seed:           o.Seed,
		Statements:     len(w.Statements),
		QueryCost:      round3(query),
		TransitionCost: round3(transition),
		TotalCost:      round3(query + transition),
		Counters:       a.Counters(),
		FinalIndexes:   configNames(db),
	}, nil
}

// summarize computes per-scenario means and winners.
func summarize(rep *TunersReport) []ScenarioSummary {
	var out []ScenarioSummary
	for _, sc := range rep.Scenarios {
		sum := ScenarioSummary{Scenario: sc, MeanTotal: map[string]float64{}}
		counts := map[string]int{}
		for _, c := range rep.Cells {
			if c.Scenario != sc {
				continue
			}
			sum.MeanTotal[c.Advisor] += c.TotalCost
			counts[c.Advisor]++
		}
		for adv, n := range counts {
			sum.MeanTotal[adv] = round3(sum.MeanTotal[adv] / float64(n))
		}
		best := math.Inf(1)
		for _, adv := range rep.Advisors {
			if m, ok := sum.MeanTotal[adv]; ok && m < best {
				best, sum.Winner = m, adv
			}
		}
		on, onOK := sum.MeanTotal["OnlinePT"]
		no, noOK := sum.MeanTotal["NoTuner"]
		if onOK && noOK && no > 0 {
			sum.OnlineOverNoTuner = round3(on / no)
		}
		out = append(out, sum)
	}
	return out
}

// JSON renders the report deterministically (struct field order; map
// keys sorted by encoding/json).
func (r *TunersReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Verify checks the harness invariants the CI guard enforces on any
// tuners report, committed or freshly generated:
//
//   - the cell list is exactly the (scenario × seed × advisor) matrix in
//     canonical order, no holes, no extras;
//   - regret ≥ 0 everywhere, with at least one zero-regret cell per
//     (scenario, seed) group;
//   - total = query + transition in every cell;
//   - advisor counters reconcile (started = completed+aborted+failed);
//   - safety violations are zero everywhere;
//   - the NoTuner control never created, dropped, or holds any index.
func (r *TunersReport) Verify() error {
	if len(r.Scenarios) == 0 || len(r.Advisors) == 0 || len(r.Seeds) == 0 {
		return fmt.Errorf("tuners report: empty matrix axes")
	}
	want := len(r.Scenarios) * len(r.Seeds) * len(r.Advisors)
	if len(r.Cells) != want {
		return fmt.Errorf("tuners report: %d cells, want %d", len(r.Cells), want)
	}
	k := 0
	for _, sc := range r.Scenarios {
		for _, seed := range r.Seeds {
			groupMin := math.Inf(1)
			for _, adv := range r.Advisors {
				c := r.Cells[k]
				k++
				if c.Scenario != sc || c.Advisor != adv || c.Seed != seed {
					return fmt.Errorf("cell %d is (%s,%s,%d), want (%s,%s,%d)",
						k-1, c.Scenario, c.Advisor, c.Seed, sc, adv, seed)
				}
				if err := verifyCell(&c); err != nil {
					return fmt.Errorf("cell %s/%s/seed=%d: %w", sc, adv, seed, err)
				}
				if c.Regret < groupMin {
					groupMin = c.Regret
				}
			}
			if groupMin != 0 {
				return fmt.Errorf("group %s/seed=%d: no zero-regret cell (min %.3f)", sc, seed, groupMin)
			}
		}
	}
	return nil
}

func verifyCell(c *TunerCell) error {
	if c.Regret < 0 {
		return fmt.Errorf("negative regret %.3f", c.Regret)
	}
	if c.Statements <= 0 {
		return fmt.Errorf("no statements")
	}
	if d := math.Abs(c.TotalCost - (c.QueryCost + c.TransitionCost)); d > 0.01 {
		return fmt.Errorf("total %.3f != query %.3f + transition %.3f", c.TotalCost, c.QueryCost, c.TransitionCost)
	}
	ct := c.Counters
	if ct.BuildsStarted != ct.BuildsCompleted+ct.BuildsAborted+ct.BuildsFailed {
		return fmt.Errorf("builds do not reconcile: %+v", ct)
	}
	if ct.SafetyViolations != 0 {
		return fmt.Errorf("%d safety violations", ct.SafetyViolations)
	}
	if c.Advisor == "NoTuner" {
		if ct != (tuner.Counters{}) || len(c.FinalIndexes) != 0 {
			return fmt.Errorf("NoTuner control acted: counters %+v, final %v", ct, c.FinalIndexes)
		}
	}
	return nil
}

// CheckExpectations enforces the evaluation's headline outcomes on a
// full-scale report (they are scale-sensitive, so the CI smoke matrix
// checks Verify only):
//
//   - drift and tenants: the online tuner beats the no-tuner control;
//   - storm: the eager manual-DBA control loses to doing nothing — the
//     point of the update-storm scenario.
func (r *TunersReport) CheckExpectations() error {
	byName := map[string]ScenarioSummary{}
	for _, s := range r.Summaries {
		byName[s.Scenario] = s
	}
	var errs []string
	for _, sc := range []string{"drift", "tenants"} {
		s, ok := byName[sc]
		if !ok {
			continue
		}
		if s.MeanTotal["OnlinePT"] >= s.MeanTotal["NoTuner"] {
			errs = append(errs, fmt.Sprintf("%s: OnlinePT %.1f did not beat NoTuner %.1f",
				sc, s.MeanTotal["OnlinePT"], s.MeanTotal["NoTuner"]))
		}
	}
	if s, ok := byName["storm"]; ok {
		if s.MeanTotal["ManualDBA"] <= s.MeanTotal["NoTuner"] {
			errs = append(errs, fmt.Sprintf("storm: eager ManualDBA %.1f should lose to NoTuner %.1f",
				s.MeanTotal["ManualDBA"], s.MeanTotal["NoTuner"]))
		}
	}
	if len(errs) > 0 {
		return fmt.Errorf("tuners report expectations failed:\n  %s", strings.Join(errs, "\n  "))
	}
	return nil
}

// VerifyTunersJSON parses and verifies a serialized report — the CI
// honesty guard's entry point for the committed artifact.
func VerifyTunersJSON(data []byte) (*TunersReport, error) {
	var rep TunersReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("tuners report: bad JSON: %w", err)
	}
	if err := rep.Verify(); err != nil {
		return nil, err
	}
	return &rep, nil
}

// FormatTuners renders the human-readable race summary.
func FormatTuners(r *TunersReport) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Tuner race: %d scenarios × %d advisors × %d seeds (scale %.2g)\n\n",
		len(r.Scenarios), len(r.Advisors), len(r.Seeds), r.Scale)
	for _, s := range r.Summaries {
		fmt.Fprintf(&sb, "%-8s winner=%-11s", s.Scenario, s.Winner)
		if s.OnlineOverNoTuner > 0 {
			fmt.Fprintf(&sb, " online/notuner=%.2f", s.OnlineOverNoTuner)
		}
		sb.WriteByte('\n')
		for _, adv := range r.Advisors {
			m, ok := s.MeanTotal[adv]
			if !ok {
				continue
			}
			var regret float64
			n := 0
			for _, c := range r.Cells {
				if c.Scenario == s.Scenario && c.Advisor == adv {
					regret += c.Regret
					n++
				}
			}
			if n > 0 {
				regret /= float64(n)
			}
			fmt.Fprintf(&sb, "    %-11s mean_total=%12.1f mean_regret=%12.1f\n", adv, m, regret)
		}
	}
	return sb.String()
}

func round3(x float64) float64 {
	return math.Round(x*1000) / 1000
}
