package bench

import (
	"fmt"
	"strings"

	"onlinetuner/internal/core"
	"onlinetuner/internal/workload"
)

// AblationRow is one tuner variant's outcome on a workload.
type AblationRow struct {
	Variant  string
	Total    float64
	Changes  int
	Workload string
}

// ablationVariants are the design choices DESIGN.md calls out, each
// toggled off (or re-tuned) independently against the paper-default
// configuration.
func ablationVariants() []struct {
	name string
	opts core.Options
} {
	def := core.DefaultOptions()
	noMerge := def
	noMerge.MergeEvery = 0
	noDamp := def
	noDamp.DisableDamping = true
	noCool := def
	noCool.CooldownQueries = -1
	throttled := def
	throttled.ThrottleEvery = 10
	asyncOpt := def
	asyncOpt.Async = true
	suspend := def
	suspend.UseSuspend = true
	noStats := def
	noStats.StatsTriggerFraction = 0
	return []struct {
		name string
		opts core.Options
	}{
		{"default", def},
		{"no-merging", noMerge},
		{"no-damping", noDamp},
		{"no-cooldown", noCool},
		{"throttle-10", throttled},
		{"async-builds", asyncOpt},
		{"suspend-mode", suspend},
		{"no-stats-trigger", noStats},
	}
}

// Ablation runs every tuner variant over the given workloads and reports
// total cost and physical-change counts.
func Ablation(workloads []*workload.Workload) ([]AblationRow, error) {
	var rows []AblationRow
	for _, w := range workloads {
		for _, v := range ablationVariants() {
			r, err := RunOnline(w, v.opts)
			if err != nil {
				return nil, fmt.Errorf("ablation %s on %s: %w", v.name, w.Name, err)
			}
			rows = append(rows, AblationRow{
				Variant:  v.name,
				Total:    r.Total,
				Changes:  len(r.Events),
				Workload: w.Name,
			})
		}
	}
	return rows, nil
}

// FormatAblation renders the ablation table grouped by workload.
func FormatAblation(rows []AblationRow) string {
	var sb strings.Builder
	sb.WriteString("Ablation: OnlinePT design choices toggled independently\n")
	last := ""
	for _, r := range rows {
		if r.Workload != last {
			fmt.Fprintf(&sb, "%s\n", r.Workload)
			last = r.Workload
		}
		fmt.Fprintf(&sb, "  %-18s total=%12.2f  physical changes=%d\n", r.Variant, r.Total, r.Changes)
	}
	return sb.String()
}

// AblationWorkloads is the default ablation suite: the oscillation-prone
// interleaved W2, the update-phased W3, and a short TPC-H run.
func AblationWorkloads(o workload.TPCHOptions) []*workload.Workload {
	o.NumBatches = minInt(o.NumBatches, 20)
	return []*workload.Workload{
		workload.W2(workload.BudgetOne4Col, "one-index budget"),
		workload.W2(workload.BudgetMerged, "merged-index budget"),
		workload.W3(),
		workload.TPCH(o),
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
