package bench

import (
	"bytes"
	"strings"
	"testing"

	"onlinetuner/internal/tuner"
)

func smokeRace(t *testing.T) *TunersReport {
	t.Helper()
	rep, err := RunTuners(TunersConfig{
		Scale:      0.1,
		Statements: 60,
		Seeds:      []int64{1, 2},
		Scenarios:  []string{"stable", "storm"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestTunersInvariants runs a small race across all advisors and checks
// every harness property the CI guard relies on, both through Verify
// and cell by cell.
func TestTunersInvariants(t *testing.T) {
	rep := smokeRace(t)
	if err := rep.Verify(); err != nil {
		t.Fatal(err)
	}
	if len(rep.Advisors) < 4 {
		t.Fatalf("race field too small: %v", rep.Advisors)
	}
	for _, c := range rep.Cells {
		if c.Regret < 0 {
			t.Errorf("%s/%s/%d: negative regret %.3f", c.Scenario, c.Advisor, c.Seed, c.Regret)
		}
		ct := c.Counters
		if ct.BuildsStarted != ct.BuildsCompleted+ct.BuildsAborted+ct.BuildsFailed {
			t.Errorf("%s/%s/%d: builds do not reconcile: %+v", c.Scenario, c.Advisor, c.Seed, ct)
		}
		if ct.SafetyViolations != 0 {
			t.Errorf("%s/%s/%d: %d safety violations", c.Scenario, c.Advisor, c.Seed, ct.SafetyViolations)
		}
		if c.Advisor == "NoTuner" && (ct.IndexesCreated != 0 || len(c.FinalIndexes) != 0) {
			t.Errorf("NoTuner acted in %s/%d: %+v %v", c.Scenario, c.Seed, ct, c.FinalIndexes)
		}
	}
}

// TestTunersDeterminism: two independent races with identical
// configuration must serialize byte-identically — the property the CI
// smoke job enforces with a rerun + cmp.
func TestTunersDeterminism(t *testing.T) {
	a, err := smokeRace(t).JSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := smokeRace(t).JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("two identical races serialized differently:\n--- first\n%s\n--- second\n%s", a, b)
	}
}

// TestVerifyCatchesTampering: Verify must reject each class of
// corruption the honesty guard exists to catch.
func TestVerifyCatchesTampering(t *testing.T) {
	fresh := smokeRace(t)

	tamper := []struct {
		name string
		mut  func(r *TunersReport)
	}{
		{"negative regret", func(r *TunersReport) { r.Cells[1].Regret = -1 }},
		{"no zero-regret cell", func(r *TunersReport) {
			for i := range r.Cells {
				r.Cells[i].Regret += 5
			}
		}},
		{"total mismatch", func(r *TunersReport) { r.Cells[0].TotalCost += 100 }},
		{"counter mismatch", func(r *TunersReport) { r.Cells[0].Counters.BuildsStarted += 1 }},
		{"safety violation", func(r *TunersReport) { r.Cells[0].Counters.SafetyViolations = 1 }},
		{"noTuner acted", func(r *TunersReport) {
			for i := range r.Cells {
				if r.Cells[i].Advisor == "NoTuner" {
					r.Cells[i].Counters = tuner.Counters{IndexesCreated: 1, BuildsStarted: 1, BuildsCompleted: 1}
					break
				}
			}
		}},
		{"missing cell", func(r *TunersReport) { r.Cells = r.Cells[:len(r.Cells)-1] }},
		{"shuffled cells", func(r *TunersReport) { r.Cells[0], r.Cells[1] = r.Cells[1], r.Cells[0] }},
		{"empty axes", func(r *TunersReport) { r.Seeds = nil }},
	}
	for _, tc := range tamper {
		t.Run(tc.name, func(t *testing.T) {
			js, err := fresh.JSON()
			if err != nil {
				t.Fatal(err)
			}
			rep, err := VerifyTunersJSON(js)
			if err != nil {
				t.Fatalf("pristine report failed verification: %v", err)
			}
			tc.mut(rep)
			if err := rep.Verify(); err == nil {
				t.Fatalf("tampered report (%s) passed verification", tc.name)
			}
		})
	}
}

// TestVerifyTunersJSONRejectsGarbage covers the parse error path.
func TestVerifyTunersJSONRejectsGarbage(t *testing.T) {
	if _, err := VerifyTunersJSON([]byte("{not json")); err == nil {
		t.Fatal("garbage JSON should fail")
	}
	if _, err := VerifyTunersJSON([]byte("{}")); err == nil {
		t.Fatal("empty report should fail")
	}
}

// syntheticTunersReport fabricates a tiny report with known numbers so
// the formatter and the expectation checks can be exercised without
// running a race.
func syntheticTunersReport() *TunersReport {
	cell := func(sc, adv string, total, regret float64) TunerCell {
		return TunerCell{Scenario: sc, Advisor: adv, Seed: 1, Statements: 10,
			QueryCost: total, TotalCost: total, Regret: regret}
	}
	return &TunersReport{
		Name:      "tuner_race",
		Scale:     0.1,
		Seeds:     []int64{1},
		Advisors:  []string{"NoTuner", "OnlinePT", "ManualDBA"},
		Scenarios: []string{"drift", "tenants", "storm"},
		Cells: []TunerCell{
			cell("drift", "NoTuner", 100, 50), cell("drift", "OnlinePT", 50, 0), cell("drift", "ManualDBA", 80, 30),
			cell("tenants", "NoTuner", 100, 40), cell("tenants", "OnlinePT", 60, 0), cell("tenants", "ManualDBA", 90, 30),
			cell("storm", "NoTuner", 100, 0), cell("storm", "OnlinePT", 120, 20), cell("storm", "ManualDBA", 300, 200),
		},
		Summaries: []ScenarioSummary{
			{Scenario: "drift", Winner: "OnlinePT", OnlineOverNoTuner: 0.5,
				MeanTotal: map[string]float64{"NoTuner": 100, "OnlinePT": 50, "ManualDBA": 80}},
			{Scenario: "tenants", Winner: "OnlinePT", OnlineOverNoTuner: 0.6,
				MeanTotal: map[string]float64{"NoTuner": 100, "OnlinePT": 60, "ManualDBA": 90}},
			{Scenario: "storm", Winner: "NoTuner", OnlineOverNoTuner: 1.2,
				MeanTotal: map[string]float64{"NoTuner": 100, "OnlinePT": 120, "ManualDBA": 300}},
		},
	}
}

// TestFormatTuners: the human-readable rendering names every scenario,
// winner, and advisor mean.
func TestFormatTuners(t *testing.T) {
	out := FormatTuners(syntheticTunersReport())
	for _, want := range []string{
		"3 scenarios × 3 advisors × 1 seeds",
		"drift", "tenants", "storm",
		"winner=OnlinePT", "winner=NoTuner",
		"online/notuner=0.50", "online/notuner=1.20",
		"ManualDBA", "mean_regret",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted report missing %q:\n%s", want, out)
		}
	}
}

// TestCheckExpectations covers the pass path and both failure branches
// of the headline-outcome guard.
func TestCheckExpectations(t *testing.T) {
	rep := syntheticTunersReport()
	if err := rep.CheckExpectations(); err != nil {
		t.Fatalf("expectations failed on the good report: %v", err)
	}

	bad := syntheticTunersReport()
	bad.Summaries[0].MeanTotal["OnlinePT"] = 200 // drift: online loses
	err := bad.CheckExpectations()
	if err == nil || !strings.Contains(err.Error(), "drift") {
		t.Fatalf("drift regression not caught: %v", err)
	}

	bad = syntheticTunersReport()
	bad.Summaries[2].MeanTotal["ManualDBA"] = 10 // storm: eager creation wins?!
	err = bad.CheckExpectations()
	if err == nil || !strings.Contains(err.Error(), "storm") {
		t.Fatalf("storm inversion not caught: %v", err)
	}

	// A report without the named scenarios has nothing to check.
	empty := &TunersReport{}
	if err := empty.CheckExpectations(); err != nil {
		t.Fatalf("empty report should pass vacuously: %v", err)
	}
}
