package bench

import (
	"strings"
	"testing"

	"onlinetuner/internal/core"
	"onlinetuner/internal/workload"
)

// smallTPCH keeps harness tests fast.
func smallTPCH() workload.TPCHOptions {
	o := workload.DefaultTPCH()
	o.Scale = 0.2
	o.NumBatches = 8
	return o
}

func TestRunOnlineProducesSchedule(t *testing.T) {
	w := workload.W1()
	r, err := RunOnline(w, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.PerStatement) != len(w.Statements) {
		t.Fatalf("per-statement entries = %d", len(r.PerStatement))
	}
	if r.Total <= 0 {
		t.Error("no total cost")
	}
	if len(r.Events) == 0 {
		t.Error("no physical changes on W1")
	}
	s := scheduleString(r)
	if !strings.Contains(s, "C(") {
		t.Errorf("schedule missing creation: %s", s)
	}
	// The schedule must contain an E(...) run with a per-query cost.
	if !strings.Contains(s, "E(q1)") {
		t.Errorf("schedule missing runs: %s", s)
	}
}

func TestRunNoTuningBaseline(t *testing.T) {
	w := workload.W1()
	nt, err := RunNoTuning(w)
	if err != nil {
		t.Fatal(err)
	}
	on, err := RunOnline(w, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if on.Total >= nt.Total {
		t.Errorf("online (%g) should beat no tuning (%g) on W1", on.Total, nt.Total)
	}
}

func TestRunOfflineSetAndSeq(t *testing.T) {
	w := workload.W1()
	set, err := RunOfflineSet(w, 12)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := RunOfflineSeq(w, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.FinalConfig) == 0 {
		t.Error("offline-set created nothing")
	}
	// Sequence-based knows the future: on W1's phased workload it must
	// beat the set-based advisor.
	if seq.Total > set.Total {
		t.Errorf("seq (%g) worse than set (%g) on phased W1", seq.Total, set.Total)
	}
}

// TestPaperOrderingSimple checks the Figure 8 ordering on the simple
// workloads: Offline-Seq ≤ OnlinePT ≤ NoTuning (with small tolerance for
// the seq approximation).
func TestPaperOrderingSimple(t *testing.T) {
	for _, w := range []*workload.Workload{workload.W1(), workload.W3()} {
		on, err := RunOnline(w, core.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		seq, err := RunOfflineSeq(w, 12)
		if err != nil {
			t.Fatal(err)
		}
		nt, err := RunNoTuning(w)
		if err != nil {
			t.Fatal(err)
		}
		if seq.Total > on.Total*1.05 {
			t.Errorf("%s: seq (%g) should not lose to online (%g)", w.Name, seq.Total, on.Total)
		}
		if on.Total > nt.Total {
			t.Errorf("%s: online (%g) worse than no tuning (%g)", w.Name, on.Total, nt.Total)
		}
	}
}

func TestFigure7aShape(t *testing.T) {
	w, series, on, err := Figure7a(smallTPCH())
	if err != nil {
		t.Fatal(err)
	}
	pb := series[0].PerBatch
	if len(pb) != 8 {
		t.Fatalf("batches = %d", len(pb))
	}
	// Cost must decrease from the first to the last batch (learning).
	if pb[len(pb)-1] >= pb[0] {
		t.Errorf("per-batch cost did not decrease: first %g last %g", pb[0], pb[len(pb)-1])
	}
	if len(on.Events) == 0 {
		t.Error("no tuning activity")
	}
	_ = w
}

func TestFigure7dDisruptionShape(t *testing.T) {
	o := smallTPCH()
	o.NumBatches = 10
	o.DisruptCount = 24
	w, series, err := Figure7d(o)
	if err != nil {
		t.Fatal(err)
	}
	// The disrupted workload has one extra batch (the updates).
	if len(series[0].PerBatch) != 11 {
		t.Fatalf("batches = %d, want 11", len(series[0].PerBatch))
	}
	// OnlinePT and Offline-Seq must beat Offline-Set on the update batch
	// region or overall: the set advisor cannot adapt (the paper's
	// Figure 7(d) claim is about the overall cost).
	var on, set, seq = series[0], series[1], series[2]
	if on.Name != "OnlinePT" || set.Name != "Offline-Set" || seq.Name != "Offline-Seq" {
		t.Fatalf("series order: %v %v %v", on.Name, set.Name, seq.Name)
	}
	// At this miniature scale the seq/set gap is small; the full-scale
	// comparison is EXPERIMENTS.md's job. Here: seq must not LOSE to set
	// beyond noise.
	if seq.Total() > set.Total()*1.05 {
		t.Errorf("offline-seq (%g) should not lose to offline-set (%g) with disruptive updates",
			seq.Total(), set.Total())
	}
	_ = w
}

func TestFigure8Rows(t *testing.T) {
	o := smallTPCH()
	o.NumBatches = 4
	o.DisruptCount = 16
	rows, err := Figure8(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 { // TPC-H, TPC-H+updates, five simple workloads
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		for _, tech := range []string{"OnlinePT", "Offline-Set", "Offline-Seq", "NoTuning"} {
			if r.Totals[tech] <= 0 {
				t.Errorf("%s: missing %s", r.Workload, tech)
			}
		}
		// On workloads too short to amortize index creations, OnlinePT
		// can lose to NoTuning, but Theorem 2 bounds the loss at 3× the
		// optimum (≤ NoTuning here); the long simple workloads must be
		// strict wins (TestPaperOrderingSimple).
		if r.Totals["OnlinePT"] > r.Totals["NoTuning"]*3 {
			t.Errorf("%s: OnlinePT (%g) breaks the competitive bound vs NoTuning (%g)",
				r.Workload, r.Totals["OnlinePT"], r.Totals["NoTuning"])
		}
	}
	out := FormatFigure8(rows)
	if !strings.Contains(out, "OnlinePT") || !strings.Contains(out, "TPC-H") {
		t.Error("format missing columns")
	}
}

func TestFigure9Overhead(t *testing.T) {
	data, err := Figure9()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 2 {
		t.Fatalf("workloads = %d", len(data))
	}
	for name, rows := range data {
		if len(rows) != 5 {
			t.Fatalf("%s: rows = %d", name, len(rows))
		}
		var total, l1, l28, l918, l18 OverheadRow
		for _, r := range rows {
			switch r.Module {
			case "Total":
				total = r
			case "Line 1":
				l1 = r
			case "Lines 2-8":
				l28 = r
			case "Lines 9-18":
				l918 = r
			case "Line 18":
				l18 = r
			}
		}
		// Structural sanity: merging is a subset of the analysis phase,
		// and the total dominates each part.
		if l18.Duration > l918.Duration {
			t.Errorf("%s: line 18 (%v) exceeds lines 9-18 (%v)", name, l18.Duration, l918.Duration)
		}
		for _, part := range []OverheadRow{l1, l28, l918} {
			if total.Duration < part.Duration {
				t.Errorf("%s: total (%v) below part %s (%v)", name, total.Duration, part.Module, part.Duration)
			}
		}
		// The paper's headline claim: tuner overhead is a small fraction
		// of query processing. Our queries run ~1000× faster than a real
		// server's, so the bar here is generous; EXPERIMENTS.md records
		// the measured numbers.
		bound := 0.6
		if raceDetectorEnabled {
			bound = 2.0
		}
		if total.Fraction > bound {
			t.Errorf("%s: overhead fraction %.2f too large", name, total.Fraction)
		}
	}
	out := FormatFigure9(data)
	if !strings.Contains(out, "Line 18") {
		t.Error("format missing merge row")
	}
}

func TestChartRendering(t *testing.T) {
	s := Chart("test", []Series{
		{Name: "a", PerBatch: []float64{1, 2, 3}},
		{Name: "b", PerBatch: []float64{3, 2}},
	})
	if !strings.Contains(s, "total") || !strings.Contains(s, "batch") {
		t.Errorf("chart malformed:\n%s", s)
	}
}

func TestCollapsePairs(t *testing.T) {
	in := []string{"1E(q1)[1.00]", "1E(q2)[2.00]", "1E(q1)[1.00]", "1E(q2)[2.00]", "C(X)[5]"}
	out := collapsePairs(in)
	if len(out) != 2 || out[0] != "2E(q1;q2)[1.00;2.00]" {
		t.Errorf("collapsed = %v", out)
	}
	// Non-collapsible input passes through.
	in2 := []string{"3E(q1)[1.00]", "C(X)[5]"}
	if got := collapsePairs(in2); len(got) != 2 {
		t.Errorf("pass-through = %v", got)
	}
}

func TestTable1Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("table 1 runs all five simple workloads")
	}
	s, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"W1", "W2", "W3", "Cost_online", "Cost_opt", "C("} {
		if !strings.Contains(s, want) {
			t.Errorf("Table1 output missing %q", want)
		}
	}
}

func TestAblationRuns(t *testing.T) {
	o := smallTPCH()
	o.NumBatches = 2
	rows, err := Ablation([]*workload.Workload{workload.TPCH(o)})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("variants = %d, want 8", len(rows))
	}
	byName := map[string]AblationRow{}
	for _, r := range rows {
		if r.Total <= 0 {
			t.Errorf("%s: no cost", r.Variant)
		}
		byName[r.Variant] = r
	}
	if _, ok := byName["default"]; !ok {
		t.Error("default variant missing")
	}
	out := FormatAblation(rows)
	if !strings.Contains(out, "no-damping") || !strings.Contains(out, "physical changes") {
		t.Error("format incomplete")
	}
}

func TestAblationNoDampingOscillates(t *testing.T) {
	// The headline ablation claim: removing the damping rule makes the
	// one-index-budget interleaved workload thrash.
	w := workload.W2(workload.BudgetOne4Col, "one-index budget")
	def, err := RunOnline(w, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.DisableDamping = true
	noDamp, err := RunOnline(w, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(noDamp.Events) <= len(def.Events) {
		t.Errorf("no-damping should thrash: %d vs %d changes",
			len(noDamp.Events), len(def.Events))
	}
	if noDamp.Total <= def.Total {
		t.Errorf("no-damping should cost more: %g vs %g", noDamp.Total, def.Total)
	}
}

func TestCompetitiveSweep(t *testing.T) {
	adversarial, random, err := Competitive(50, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(adversarial) != 5 || len(random) != 1 {
		t.Fatalf("rows = %d/%d", len(adversarial), len(random))
	}
	// Ratios increase toward (but never reach) 3 as ε shrinks.
	prev := 0.0
	for _, r := range adversarial {
		if r.Ratio() >= 3 {
			t.Errorf("%s: ratio %.4f breaks Theorem 2", r.Label, r.Ratio())
		}
		if r.Ratio() < prev {
			t.Errorf("%s: ratio not monotone in ε", r.Label)
		}
		prev = r.Ratio()
	}
	if last := adversarial[len(adversarial)-1].Ratio(); last < 2.9 {
		t.Errorf("adversarial limit ratio %.4f should approach 3", last)
	}
	if random[0].Ratio() >= 3 {
		t.Errorf("random worst ratio %.4f breaks the bound", random[0].Ratio())
	}
	if !strings.Contains(FormatCompetitive(adversarial, random), "Theorem 2") {
		t.Error("format incomplete")
	}
}

// TestStabilization is the Figure 7(a) property at moderate scale: the
// tuner's activity and per-batch cost both settle — the last third of
// the run has fewer physical changes than the first third, and its mean
// batch cost is below the first third's.
func TestStabilization(t *testing.T) {
	if testing.Short() {
		t.Skip("moderate-scale soak")
	}
	o := workload.DefaultTPCH()
	o.Scale = 0.35
	// 45 batches: the subquery shapes in Q4/Q18/Q22 add inner-side index
	// candidates, and the tuner needs a longer window than the original 30
	// batches to finish shaking out the wider candidate space (it does
	// converge — by batch 45 the last third is near-quiescent).
	o.NumBatches = 45
	w := workload.TPCH(o)
	on, err := RunOnline(w, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	pb := w.Batches(on.PerStatement)
	third := len(pb) / 3
	mean := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	early, late := mean(pb[:third]), mean(pb[len(pb)-third:])
	if late >= early {
		t.Errorf("per-batch cost did not settle: early %.1f, late %.1f", early, late)
	}
	boundary := int64(len(w.Statements) / 3)
	earlyChanges, lateChanges := 0, 0
	for _, ev := range on.Events {
		if ev.AtQuery <= boundary {
			earlyChanges++
		}
		if ev.AtQuery > 2*boundary {
			lateChanges++
		}
	}
	if lateChanges > earlyChanges {
		t.Errorf("activity did not settle: %d early vs %d late changes", earlyChanges, lateChanges)
	}
}

// TestFaultReportSmoke exercises the report plumbing (not the timings —
// those are machine-dependent and recorded in BENCH_fault.json).
func TestFaultReportSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs testing.Benchmark nine times")
	}
	rep, err := Fault(0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 3 {
		t.Fatalf("results = %d, want 3", len(rep.Results))
	}
	for _, r := range rep.Results {
		if r.NsPerOp <= 0 {
			t.Errorf("%s: no timing", r.Name)
		}
	}
	js, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"overhead_disabled_pct", "seek/no-injector", "seek/disabled", "seek/armed-idle"} {
		if !strings.Contains(string(js), want) {
			t.Errorf("JSON missing %q", want)
		}
	}
	if out := FormatFault(rep); !strings.Contains(out, "cached seek") {
		t.Errorf("format incomplete:\n%s", out)
	}
}

// TestOnlineRunsAreDeterministic: identical workloads and options must
// produce byte-identical schedules — the property that makes every
// number in EXPERIMENTS.md reproducible.
func TestOnlineRunsAreDeterministic(t *testing.T) {
	o := smallTPCH()
	o.NumBatches = 5
	run := func() ([]core.Event, float64) {
		r, err := RunOnline(workload.TPCH(o), core.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		return r.Events, r.Total
	}
	ev1, t1 := run()
	ev2, t2 := run()
	if t1 != t2 {
		t.Fatalf("totals differ: %v vs %v", t1, t2)
	}
	if len(ev1) != len(ev2) {
		t.Fatalf("event counts differ: %d vs %d", len(ev1), len(ev2))
	}
	for i := range ev1 {
		if ev1[i].String() != ev2[i].String() || ev1[i].AtQuery != ev2[i].AtQuery {
			t.Fatalf("event %d differs: %v vs %v", i, ev1[i], ev2[i])
		}
	}
}
