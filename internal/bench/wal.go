// Durability benchmark: measures what the WAL costs and what recovery
// buys. Three numbers matter for sizing a deployment — single-row
// commit latency under each fsync policy (sequential, and concurrent
// where group commit amortizes the fsync), replay bandwidth (how fast a
// crash-recovery restart catches up through the log suffix), and the
// checkpoint pause (how long the quiesce-and-snapshot stop-the-world
// window lasts). cmd/experiments serializes the report to
// BENCH_wal.json.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"onlinetuner/internal/engine"
	"onlinetuner/internal/tpch"
	"onlinetuner/internal/wal"
)

// WALBench is one measured commit configuration.
type WALBench struct {
	Name string `json:"name"`
	// Policy is the fsync policy name ("none", "group", "always").
	Policy string `json:"policy"`
	// Workers is the number of concurrent committers (1 = sequential).
	Workers int `json:"workers"`
	// Commits is the number of single-row INSERT commits measured.
	Commits int `json:"commits"`
	// NsPerCommit is wall-clock time divided by commits; under
	// concurrency it reflects throughput, not individual latency.
	NsPerCommit float64 `json:"ns_per_commit"`
	// CommitsPerSec is the aggregate acknowledged-commit rate.
	CommitsPerSec float64 `json:"commits_per_sec"`
	// FsyncsPerCommit shows group-commit batching: ~1 under
	// SyncAlways, < 1 under concurrent SyncGroup, 0 under SyncNone.
	FsyncsPerCommit float64 `json:"fsyncs_per_commit"`
}

// WALReport is the durability cost profile, serialized to
// BENCH_wal.json by cmd/experiments.
type WALReport struct {
	Scale   float64    `json:"scale"`
	Seed    int64      `json:"seed"`
	Commits []WALBench `json:"commits"`
	// Replay characterizes a cold OpenDurable over the TPC-H load's
	// un-checkpointed log: the whole dataset arrives through replay.
	ReplayBatches    int     `json:"replay_batches"`
	ReplayRecords    int     `json:"replay_records"`
	ReplayBytes      int64   `json:"replay_bytes"`
	ReplayDurationMs float64 `json:"replay_duration_ms"`
	ReplayMBPerSec   float64 `json:"replay_mb_per_sec"`
	// CheckpointPauseMs is one Checkpoint() call on the recovered
	// database: the write-quiesce + snapshot + segment-roll window.
	CheckpointPauseMs float64 `json:"checkpoint_pause_ms"`
	// CheckpointSnapshotBytes is the size of the snapshot it wrote.
	CheckpointSnapshotBytes int64 `json:"checkpoint_snapshot_bytes"`
}

// measureWALCommit times `commits` single-row INSERT statements spread
// round-robin over `workers` goroutines, each committing to its own
// table so group commit (not table-lock serialization) is what the
// concurrent configurations observe.
func measureWALCommit(policy wal.SyncPolicy, workers, commits int) (WALBench, error) {
	dir, err := os.MkdirTemp("", "onlinetuner-walbench-")
	if err != nil {
		return WALBench{}, err
	}
	defer os.RemoveAll(dir)
	db, err := engine.OpenDurable(engine.Config{Dir: dir, Sync: policy})
	if err != nil {
		return WALBench{}, err
	}
	defer db.Close()
	for t := 0; t < workers; t++ {
		stmt := fmt.Sprintf("CREATE TABLE w%d (id INT, v INT, PRIMARY KEY (id))", t)
		if _, _, err := db.Exec(stmt); err != nil {
			return WALBench{}, err
		}
	}
	// Warm up each table (and the plan-side caches) outside the window.
	for t := 0; t < workers; t++ {
		if _, _, err := db.Exec(fmt.Sprintf("INSERT INTO w%d VALUES (-1, 0)", t)); err != nil {
			return WALBench{}, err
		}
	}

	w := db.WAL()
	fsyncs0 := w.Fsyncs()
	var next atomic.Int64
	errs := make([]error, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for t := 0; t < workers; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			for {
				id := next.Add(1)
				if id > int64(commits) {
					return
				}
				stmt := fmt.Sprintf("INSERT INTO w%d VALUES (%d, %d)", t, id, id%97)
				if _, _, err := db.Exec(stmt); err != nil {
					errs[t] = err
					return
				}
			}
		}(t)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return WALBench{}, err
		}
	}
	fsyncs := w.Fsyncs() - fsyncs0

	name := fmt.Sprintf("commit/sync=%s/workers=%d", policy, workers)
	return WALBench{
		Name:            name,
		Policy:          policy.String(),
		Workers:         workers,
		Commits:         commits,
		NsPerCommit:     float64(elapsed.Nanoseconds()) / float64(commits),
		CommitsPerSec:   float64(commits) / elapsed.Seconds(),
		FsyncsPerCommit: float64(fsyncs) / float64(commits),
	}, nil
}

// WAL runs the durability cost matrix: commit throughput for every
// fsync policy sequentially and with concurrent committers, then
// replay bandwidth and checkpoint pause over a TPC-H load.
func WAL(scale tpch.Scale, seed int64) (*WALReport, error) {
	rep := &WALReport{Scale: float64(scale), Seed: seed}

	const commits = 1024
	for _, policy := range []wal.SyncPolicy{wal.SyncNone, wal.SyncGroup, wal.SyncAlways} {
		for _, workers := range []int{1, 8} {
			b, err := measureWALCommit(policy, workers, commits)
			if err != nil {
				return nil, fmt.Errorf("%v/%d workers: %w", policy, workers, err)
			}
			rep.Commits = append(rep.Commits, b)
		}
	}

	// Replay bandwidth: load TPC-H durably without ever checkpointing,
	// crash, and time the recovery that rebuilds everything from the log.
	dir, err := os.MkdirTemp("", "onlinetuner-walbench-replay-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	db, err := engine.OpenDurable(engine.Config{Dir: dir, Sync: wal.SyncNone})
	if err != nil {
		return nil, err
	}
	if err := tpch.NewGenerator(scale, seed).Load(db); err != nil {
		return nil, err
	}
	if err := db.Close(); err != nil {
		return nil, err
	}
	db, err = engine.OpenDurable(engine.Config{Dir: dir, Sync: wal.SyncNone})
	if err != nil {
		return nil, fmt.Errorf("replay recovery: %w", err)
	}
	defer db.Close()
	info := db.Recovery()
	rep.ReplayBatches = info.ReplayedBatches
	rep.ReplayRecords = info.ReplayedRecords
	rep.ReplayBytes = info.ReplayedBytes
	rep.ReplayDurationMs = float64(info.Duration.Nanoseconds()) / 1e6
	if s := info.Duration.Seconds(); s > 0 {
		rep.ReplayMBPerSec = float64(info.ReplayedBytes) / (1 << 20) / s
	}

	// Checkpoint pause on the freshly recovered database: every table
	// quiesced, full snapshot written and fsynced, log rolled.
	start := time.Now()
	if err := db.Checkpoint(); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	rep.CheckpointPauseMs = float64(time.Since(start).Nanoseconds()) / 1e6
	if snap, err := newestSnapshotSize(dir); err == nil {
		rep.CheckpointSnapshotBytes = snap
	}
	return rep, nil
}

// newestSnapshotSize returns the byte size of the largest-numbered
// checkpoint snapshot in dir.
func newestSnapshotSize(dir string) (int64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	var newest string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".snap") && e.Name() > newest {
			newest = e.Name()
		}
	}
	if newest == "" {
		return 0, fmt.Errorf("no snapshot in %s", dir)
	}
	fi, err := os.Stat(dir + string(os.PathSeparator) + newest)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

// JSON renders the report for BENCH_wal.json.
func (r *WALReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// FormatWAL renders the report as a text table.
func FormatWAL(r *WALReport) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "WAL durability profile (TPC-H scale %.2g, seed %d)\n", r.Scale, r.Seed)
	fmt.Fprintf(&sb, "%-30s %14s %14s %16s\n", "benchmark", "ns/commit", "commits/sec", "fsyncs/commit")
	for _, b := range r.Commits {
		fmt.Fprintf(&sb, "%-30s %14.0f %14.0f %16.3f\n", b.Name, b.NsPerCommit, b.CommitsPerSec, b.FsyncsPerCommit)
	}
	fmt.Fprintf(&sb, "replay: %d batches / %d records / %d bytes in %.1f ms (%.1f MB/s)\n",
		r.ReplayBatches, r.ReplayRecords, r.ReplayBytes, r.ReplayDurationMs, r.ReplayMBPerSec)
	fmt.Fprintf(&sb, "checkpoint pause: %.2f ms (snapshot %d bytes)\n",
		r.CheckpointPauseMs, r.CheckpointSnapshotBytes)
	return sb.String()
}
