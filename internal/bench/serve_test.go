package bench

import (
	"strings"
	"testing"
	"time"

	"onlinetuner/internal/tpch"
)

// TestServeBenchSmoke runs the serving matrix at toy scale and checks
// the report verifies, serializes, and has deterministic metadata.
func TestServeBenchSmoke(t *testing.T) {
	rep, err := Serve(tpch.Scale(0.05), 1, 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Verify(); err != nil {
		t.Fatal(err)
	}
	js, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := VerifyServeJSON(js)
	if err != nil {
		t.Fatalf("round-tripped report fails verification: %v", err)
	}
	if rep2.Meta() != rep.Meta() {
		t.Fatal("metadata changed across JSON round trip")
	}
	if !strings.Contains(FormatServe(rep), "overload") {
		t.Fatal("formatted report missing the overload cell")
	}
	// The overload cell demonstrated backpressure.
	last := rep.Cells[len(rep.Cells)-1]
	if !last.Overload || last.Rejected == 0 {
		t.Fatalf("overload cell: %+v", last)
	}
}

// TestServeBenchMetaDeterminism: two runs at the same (scale, seed,
// requests) produce byte-identical metadata even though timings differ
// — the invariant the CI double-run compares.
func TestServeBenchMetaDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("double bench run")
	}
	a, err := Serve(tpch.Scale(0.05), 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Serve(tpch.Scale(0.05), 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.Meta() != b.Meta() {
		t.Fatalf("metadata not deterministic:\n--- run 1\n%s--- run 2\n%s", a.Meta(), b.Meta())
	}
}

// TestServeVerifyCatchesDishonesty: the honesty checks actually fire on
// doctored reports.
func TestServeVerifyCatchesDishonesty(t *testing.T) {
	fresh := func(t *testing.T) *ServeReport {
		rep, err := Serve(tpch.Scale(0.05), 1, 3)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	rep := fresh(t)

	doctor := []struct {
		name   string
		break_ func(r *ServeReport)
		want   string
	}{
		{"no overload rejections", func(r *ServeReport) {
			c := &r.Cells[len(r.Cells)-1]
			c.Completed += c.Rejected
			c.Rejected = 0
		}, "backpressure not demonstrated"},
		{"p99 below p50", func(r *ServeReport) {
			r.Cells[0].P99Ms = r.Cells[0].P50Ms / 2
		}, "p99"},
		{"missing ramp cell", func(r *ServeReport) {
			r.Cells = r.Cells[1:]
		}, "ramp incomplete"},
		{"unaccounted attempts", func(r *ServeReport) {
			r.Cells[0].Completed++
		}, "attempts"},
	}
	for _, d := range doctor {
		t.Run(d.name, func(t *testing.T) {
			js, err := rep.JSON()
			if err != nil {
				t.Fatal(err)
			}
			broken, err := VerifyServeJSON(js)
			if err != nil {
				t.Fatal(err)
			}
			d.break_(broken)
			err = broken.Verify()
			if err == nil || !strings.Contains(err.Error(), d.want) {
				t.Fatalf("doctored report (%s) verified; err=%v", d.name, err)
			}
		})
	}
}

// TestPercentile pins the nearest-rank arithmetic.
func TestPercentile(t *testing.T) {
	ds := make([]time.Duration, 100)
	for i := range ds {
		ds[i] = time.Duration(i + 1)
	}
	for _, tc := range []struct {
		p    int
		want time.Duration
	}{{50, 50}, {99, 99}, {100, 100}, {1, 1}} {
		if got := percentile(ds, tc.p); got != tc.want {
			t.Errorf("p%d of 1..100 = %d, want %d", tc.p, got, tc.want)
		}
	}
	if got := percentile(ds[:1], 99); got != 1 {
		t.Errorf("p99 of singleton = %d", got)
	}
	if got := percentile(nil, 50); got != 0 {
		t.Errorf("p50 of empty = %d", got)
	}
}
