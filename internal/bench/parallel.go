// Intra-query parallelism benchmark: replays a fixed-parameter TPC-H
// batch at several ExecWorkers settings and reports the speedup over the
// sequential executor. Results are byte-identical at every setting (the
// morsel model guarantees it), so this comparison is purely about
// wall-clock time.
package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"testing"

	"onlinetuner/internal/engine"
	"onlinetuner/internal/tpch"
)

// ParallelBench is one measured worker setting.
type ParallelBench struct {
	Name    string  `json:"name"`
	Workers int     `json:"workers"`
	NsPerOp float64 `json:"ns_per_op"`
	// Speedup is sequential ns/op divided by this setting's ns/op.
	Speedup float64 `json:"speedup"`
	// Morsels is the number of morsels dispatched to parallel regions
	// during the measured run (engine.exec_parallel_morsels).
	Morsels int64 `json:"morsels"`
}

// ParallelReport is the sequential-vs-parallel comparison, serialized to
// BENCH_parallel.json by cmd/experiments. GOMAXPROCS is recorded because
// the achievable speedup is bounded by it: on a single-core runner every
// setting degenerates to the sequential loop.
type ParallelReport struct {
	Scale      float64         `json:"scale"`
	Seed       int64           `json:"seed"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	Results    []ParallelBench `json:"results"`
	// SpeedupAt4 is the headline number: sequential time over
	// 4-worker time on the fixed TPC-H batch.
	SpeedupAt4 float64 `json:"speedup_at_4"`
}

// measureParallel loads a TPC-H database with ExecWorkers=workers and
// benchmarks replaying the statement batch (one batch per op), after one
// warm-up pass. The plan cache stays off so every op pays the same
// optimize+execute cost and the comparison isolates execution time.
func measureParallel(scale tpch.Scale, seed int64, workers int, stmts []string) (ParallelBench, error) {
	db := engine.OpenConfig(engine.Config{ExecWorkers: workers})
	gen := tpch.NewGenerator(scale, seed)
	if err := gen.Load(db); err != nil {
		return ParallelBench{}, err
	}
	db.SetPlanCacheMode(engine.CacheOff)
	for _, q := range stmts {
		if _, _, err := db.Exec(q); err != nil {
			return ParallelBench{}, fmt.Errorf("warm-up %q: %w", q, err)
		}
	}
	var execErr error
	var morsels int64
	r := testing.Benchmark(func(b *testing.B) {
		before := db.Observability().Reg.Counter("engine.exec_parallel_morsels").Value()
		for i := 0; i < b.N; i++ {
			for _, q := range stmts {
				if _, _, err := db.Exec(q); err != nil {
					execErr = err
					b.FailNow()
				}
			}
		}
		b.StopTimer()
		morsels = db.Observability().Reg.Counter("engine.exec_parallel_morsels").Value() - before
	})
	if execErr != nil {
		return ParallelBench{}, execErr
	}
	return ParallelBench{
		Workers: workers,
		NsPerOp: float64(r.T.Nanoseconds()) / float64(r.N),
		Morsels: morsels,
	}, nil
}

// Parallel runs the sequential-vs-parallel matrix on a fixed-parameter
// TPC-H batch.
func Parallel(scale tpch.Scale, seed int64) (*ParallelReport, error) {
	gen := tpch.NewGenerator(scale, seed)
	batch := gen.Batch()
	rep := &ParallelReport{Scale: float64(scale), Seed: seed, GOMAXPROCS: runtime.GOMAXPROCS(0)}
	var seq float64
	for _, workers := range []int{1, 2, 4, 8} {
		m, err := measureParallel(scale, seed, workers, batch)
		if err != nil {
			return nil, fmt.Errorf("workers=%d: %w", workers, err)
		}
		if workers == 1 {
			m.Name = "batch/sequential"
			seq = m.NsPerOp
		} else {
			m.Name = fmt.Sprintf("batch/parallel-%d", workers)
		}
		if seq > 0 && m.NsPerOp > 0 {
			m.Speedup = seq / m.NsPerOp
		}
		rep.Results = append(rep.Results, m)
		if workers == 4 {
			rep.SpeedupAt4 = m.Speedup
		}
	}
	return rep, nil
}

// JSON renders the report for BENCH_parallel.json.
func (r *ParallelReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// FormatParallel renders the report as a text table.
func FormatParallel(r *ParallelReport) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Morsel-parallel executor (TPC-H scale %.2g, seed %d, GOMAXPROCS=%d)\n",
		r.Scale, r.Seed, r.GOMAXPROCS)
	fmt.Fprintf(&sb, "%-20s %8s %14s %9s %10s\n", "benchmark", "workers", "ns/op", "speedup", "morsels")
	for _, b := range r.Results {
		fmt.Fprintf(&sb, "%-20s %8d %14.0f %8.2fx %10d\n",
			b.Name, b.Workers, b.NsPerOp, b.Speedup, b.Morsels)
	}
	fmt.Fprintf(&sb, "speedup at 4 workers: %.2fx (bounded by GOMAXPROCS=%d)\n",
		r.SpeedupAt4, r.GOMAXPROCS)
	return sb.String()
}
