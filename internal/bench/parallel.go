// Intra-query parallelism benchmark: replays a fixed-parameter TPC-H
// batch at several ExecWorkers settings and reports the speedup over the
// sequential executor. Results are byte-identical at every setting (the
// morsel model guarantees it), so this comparison is purely about
// wall-clock time. A second matrix pins workers=1 and varies the
// execution engine (row vs vectorized) on a scan+filter-heavy batch, so
// the kernel gain is measured in isolation from parallelism.
package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"testing"

	"onlinetuner/internal/engine"
	"onlinetuner/internal/tpch"
)

// ParallelBench is one measured worker setting.
type ParallelBench struct {
	Name    string  `json:"name"`
	Workers int     `json:"workers"`
	NsPerOp float64 `json:"ns_per_op"`
	// Speedup is sequential ns/op divided by this setting's ns/op.
	Speedup float64 `json:"speedup"`
	// Morsels is the number of morsels dispatched to parallel regions
	// during the measured run (engine.exec_parallel_morsels).
	Morsels int64 `json:"morsels"`
}

// EngineBench is one measured engine mode at a fixed worker count.
type EngineBench struct {
	Name    string  `json:"name"`
	Engine  string  `json:"engine"`
	Workers int     `json:"workers"`
	NsPerOp float64 `json:"ns_per_op"`
	// Speedup is row-engine ns/op divided by this mode's ns/op.
	Speedup float64 `json:"speedup"`
}

// ParallelReport is the sequential-vs-parallel comparison, serialized to
// BENCH_parallel.json by cmd/experiments. GOMAXPROCS and NumCPU are
// recorded because the achievable speedup is bounded by them: on a
// single-core runner every worker setting degenerates to the sequential
// loop, and claiming a "speedup at 4 workers" there would be noise
// dressed up as signal — so SpeedupAt4 is null and Note says why.
type ParallelReport struct {
	Scale      float64         `json:"scale"`
	Seed       int64           `json:"seed"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	NumCPU     int             `json:"numcpu"`
	Results    []ParallelBench `json:"results"`
	// SpeedupAt4 is the headline parallelism number: sequential time over
	// 4-worker time on the fixed TPC-H batch. Null when GOMAXPROCS < 2
	// (the measurement would not exercise parallelism at all).
	SpeedupAt4 *float64 `json:"speedup_at_4"`
	// Note explains a null or suspect headline number, e.g.
	// "single-core-run".
	Note string `json:"note,omitempty"`
	// EngineResults pins workers=1 and compares the row engine against
	// the vectorized engine on a scan+filter-heavy batch. Valid on any
	// core count: both runs are single-threaded.
	EngineResults []EngineBench `json:"engine_results,omitempty"`
	// VectorSpeedup1W is row ns/op over vectorized ns/op at workers=1.
	VectorSpeedup1W *float64 `json:"vector_speedup_1w,omitempty"`
}

// scanFilterBatch is the engine-comparison workload: wide scans with
// string prefilters, range predicates and grouped aggregates — the
// shapes the vectorized kernels target. Fixed parameters so row and
// vector runs replay identical work.
func scanFilterBatch() []string {
	return []string{
		`SELECT COUNT(*) FROM lineitem WHERE l_quantity BETWEEN 10 AND 40 AND l_discount <= 0.06`,
		`SELECT l_shipmode, COUNT(*) FROM lineitem WHERE l_shipmode LIKE '%AI%' GROUP BY l_shipmode ORDER BY l_shipmode`,
		`SELECT COUNT(*) FROM part WHERE p_name LIKE 'part name 0%'`,
		`SELECT COUNT(*) FROM part WHERE p_type LIKE '%BRASS'`,
		`SELECT COUNT(*) FROM orders WHERE o_orderpriority NOT LIKE '_-URGENT'`,
		`SELECT l_returnflag, SUM(l_quantity), COUNT(*) FROM lineitem WHERE l_quantity < 30 GROUP BY l_returnflag ORDER BY l_returnflag`,
		`SELECT COUNT(*) FROM lineitem WHERE l_shipmode IN ('AIR', 'RAIL', 'SHIP')`,
	}
}

// measureParallel loads a TPC-H database with the given ExecWorkers and
// engine mode, then benchmarks replaying the statement batch (one batch
// per op) after one warm-up pass. The plan cache stays off so every op
// pays the same optimize+execute cost and the comparison isolates
// execution time.
func measureParallel(scale tpch.Scale, seed int64, workers int, engineMode string, stmts []string) (ParallelBench, error) {
	db := engine.OpenConfig(engine.Config{ExecWorkers: workers, ExecEngine: engineMode})
	gen := tpch.NewGenerator(scale, seed)
	if err := gen.Load(db); err != nil {
		return ParallelBench{}, err
	}
	db.SetPlanCacheMode(engine.CacheOff)
	for _, q := range stmts {
		if _, _, err := db.Exec(q); err != nil {
			return ParallelBench{}, fmt.Errorf("warm-up %q: %w", q, err)
		}
	}
	var execErr error
	var morsels int64
	r := testing.Benchmark(func(b *testing.B) {
		before := db.Observability().Reg.Counter("engine.exec_parallel_morsels").Value()
		for i := 0; i < b.N; i++ {
			for _, q := range stmts {
				if _, _, err := db.Exec(q); err != nil {
					execErr = err
					b.FailNow()
				}
			}
		}
		b.StopTimer()
		morsels = db.Observability().Reg.Counter("engine.exec_parallel_morsels").Value() - before
	})
	if execErr != nil {
		return ParallelBench{}, execErr
	}
	return ParallelBench{
		Workers: workers,
		NsPerOp: float64(r.T.Nanoseconds()) / float64(r.N),
		Morsels: morsels,
	}, nil
}

// Parallel runs the sequential-vs-parallel matrix on a fixed-parameter
// TPC-H batch, then the row-vs-vectorized matrix at workers=1.
func Parallel(scale tpch.Scale, seed int64) (*ParallelReport, error) {
	gen := tpch.NewGenerator(scale, seed)
	batch := gen.Batch()
	rep := &ParallelReport{
		Scale:      float64(scale),
		Seed:       seed,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	var seq float64
	for _, workers := range []int{1, 2, 4, 8} {
		m, err := measureParallel(scale, seed, workers, "auto", batch)
		if err != nil {
			return nil, fmt.Errorf("workers=%d: %w", workers, err)
		}
		if workers == 1 {
			m.Name = "batch/sequential"
			seq = m.NsPerOp
		} else {
			m.Name = fmt.Sprintf("batch/parallel-%d", workers)
		}
		if seq > 0 && m.NsPerOp > 0 {
			m.Speedup = seq / m.NsPerOp
		}
		rep.Results = append(rep.Results, m)
		if workers == 4 && rep.GOMAXPROCS >= 2 {
			s := m.Speedup
			rep.SpeedupAt4 = &s
		}
	}
	if rep.GOMAXPROCS < 2 {
		rep.Note = "single-core-run"
	}

	filters := scanFilterBatch()
	var rowNs float64
	for _, mode := range []string{"row", "vector"} {
		m, err := measureParallel(scale, seed, 1, mode, filters)
		if err != nil {
			return nil, fmt.Errorf("engine=%s: %w", mode, err)
		}
		eb := EngineBench{
			Name:    "filters/" + mode + "-1w",
			Engine:  mode,
			Workers: 1,
			NsPerOp: m.NsPerOp,
		}
		if mode == "row" {
			rowNs = m.NsPerOp
			eb.Speedup = 1
		} else if rowNs > 0 && m.NsPerOp > 0 {
			eb.Speedup = rowNs / m.NsPerOp
			s := eb.Speedup
			rep.VectorSpeedup1W = &s
		}
		rep.EngineResults = append(rep.EngineResults, eb)
	}
	return rep, nil
}

// JSON renders the report for BENCH_parallel.json.
func (r *ParallelReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// FormatParallel renders the report as a text table.
func FormatParallel(r *ParallelReport) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Morsel-parallel executor (TPC-H scale %.2g, seed %d, GOMAXPROCS=%d, NumCPU=%d)\n",
		r.Scale, r.Seed, r.GOMAXPROCS, r.NumCPU)
	fmt.Fprintf(&sb, "%-20s %8s %14s %9s %10s\n", "benchmark", "workers", "ns/op", "speedup", "morsels")
	for _, b := range r.Results {
		fmt.Fprintf(&sb, "%-20s %8d %14.0f %8.2fx %10d\n",
			b.Name, b.Workers, b.NsPerOp, b.Speedup, b.Morsels)
	}
	if r.SpeedupAt4 != nil {
		fmt.Fprintf(&sb, "speedup at 4 workers: %.2fx (bounded by GOMAXPROCS=%d)\n",
			*r.SpeedupAt4, r.GOMAXPROCS)
	} else {
		fmt.Fprintf(&sb, "speedup at 4 workers: n/a (%s, GOMAXPROCS=%d)\n", r.Note, r.GOMAXPROCS)
	}
	if len(r.EngineResults) > 0 {
		fmt.Fprintf(&sb, "\nExecution engine at workers=1 (scan+filter batch)\n")
		fmt.Fprintf(&sb, "%-20s %8s %14s %9s\n", "benchmark", "engine", "ns/op", "speedup")
		for _, b := range r.EngineResults {
			fmt.Fprintf(&sb, "%-20s %8s %14.0f %8.2fx\n", b.Name, b.Engine, b.NsPerOp, b.Speedup)
		}
		if r.VectorSpeedup1W != nil {
			fmt.Fprintf(&sb, "vectorized over row, single-threaded: %.2fx\n", *r.VectorSpeedup1W)
		}
	}
	return sb.String()
}
