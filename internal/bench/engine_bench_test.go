package bench

import (
	"fmt"
	"testing"

	"onlinetuner/internal/engine"
	"onlinetuner/internal/tpch"
)

func BenchmarkVecProfile(b *testing.B) {
	for _, mode := range []string{"row", "vector"} {
		for i, q := range scanFilterBatch() {
			b.Run(fmt.Sprintf("%s/q%d", mode, i), func(b *testing.B) {
				db := engine.OpenConfig(engine.Config{ExecWorkers: 1, ExecEngine: mode})
				gen := tpch.NewGenerator(2, 1)
				if err := gen.Load(db); err != nil {
					b.Fatal(err)
				}
				db.SetPlanCacheMode(engine.CacheOff)
				if _, _, err := db.Exec(q); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for n := 0; n < b.N; n++ {
					if _, _, err := db.Exec(q); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
