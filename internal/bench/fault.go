// Fault-layer overhead benchmark: measures the cost the injection sites
// add to the engine's fastest statement — a cached point lookup — when
// no fault schedule is armed. The layer is compiled in unconditionally,
// so its disabled cost is the price every production statement pays; the
// acceptance budget is ≤ 1% over the no-injector baseline (each site is
// one atomic load when disarmed). The armed-idle configuration (armed
// injector, zero-probability rules) bounds the full bookkeeping path.
package bench

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"onlinetuner/internal/engine"
	"onlinetuner/internal/fault"
	"onlinetuner/internal/tpch"
)

// FaultBench is one measured fault-layer configuration.
type FaultBench struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// FaultReport is the fault-layer overhead comparison, serialized to
// BENCH_fault.json by cmd/experiments.
type FaultReport struct {
	Scale   float64      `json:"scale"`
	Seed    int64        `json:"seed"`
	Results []FaultBench `json:"results"`
	// OverheadDisabledPct is the cached-seek slowdown of an installed but
	// disarmed injector vs no injector at all — the production cost of
	// compiling the sites in. Budget: ≤ 1%.
	OverheadDisabledPct float64 `json:"overhead_disabled_pct"`
	// OverheadArmedIdlePct is the slowdown with the injector armed but
	// every rule at probability zero: the full per-site draw path.
	OverheadArmedIdlePct float64 `json:"overhead_armed_idle_pct"`
}

// idleInjector plans every site at probability zero, so an armed
// injector walks the whole draw path without ever firing.
func idleInjector(seed uint64) *fault.Injector {
	inj := fault.New(seed)
	for _, site := range []fault.Site{
		fault.PageRead, fault.PageWrite, fault.PageAlloc,
		fault.BTreeSplit, fault.BuildStep, fault.BuildFinish, fault.ExecStmt,
	} {
		inj.Plan(site, fault.Rule{Prob: 0})
	}
	return inj
}

// measureFault benchmarks one round of replaying stmts round-robin on
// an already-loaded database. configure toggles the fault layer before
// the measurement; all configurations share the db so the comparison is
// not polluted by per-instance memory-layout variance.
func measureFault(db *engine.DB, stmts []string, configure func()) (FaultBench, error) {
	configure()
	for _, q := range stmts {
		if _, _, err := db.Exec(q); err != nil {
			return FaultBench{}, fmt.Errorf("warm-up %q: %w", q, err)
		}
	}
	var execErr error
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := db.Exec(stmts[i%len(stmts)]); err != nil {
				execErr = err
				b.FailNow()
			}
		}
	})
	if execErr != nil {
		return FaultBench{}, execErr
	}
	return FaultBench{
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}, nil
}

// Fault runs the fault-layer overhead matrix on cached point lookups:
// no injector, installed-but-disarmed, and armed with idle rules.
func Fault(scale tpch.Scale, seed int64) (*FaultReport, error) {
	db := engine.Open()
	gen := tpch.NewGenerator(scale, seed)
	if err := gen.Load(db); err != nil {
		return nil, err
	}
	db.SetPlanCacheMode(engine.CacheExact)
	seek := planCacheSeekStmts(1)

	idle := idleInjector(uint64(seed))
	runs := []struct {
		name      string
		configure func()
	}{
		{"seek/no-injector", func() { db.SetFaults(nil) }},
		{"seek/disabled", func() { db.SetFaults(idle); idle.Disarm() }},
		{"seek/armed-idle", func() { db.SetFaults(idle); idle.Arm() }},
	}

	// Interleave rounds across configurations and keep each config's best:
	// the per-statement delta under measurement (an atomic load per site
	// on the disabled path) is far below the clock/thermal drift a
	// sequential best-of-N per config would bake into the comparison.
	rep := &FaultReport{Scale: float64(scale), Seed: seed}
	byName := make(map[string]FaultBench)
	for round := 0; round < 5; round++ {
		for _, r := range runs {
			m, err := measureFault(db, seek, r.configure)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", r.name, err)
			}
			m.Name = r.name
			if best, ok := byName[r.name]; !ok || m.NsPerOp < best.NsPerOp {
				byName[r.name] = m
			}
		}
	}
	for _, r := range runs {
		rep.Results = append(rep.Results, byName[r.name])
	}
	idle.Disarm()
	if base := byName["seek/no-injector"].NsPerOp; base > 0 {
		rep.OverheadDisabledPct = 100 * (byName["seek/disabled"].NsPerOp - base) / base
		rep.OverheadArmedIdlePct = 100 * (byName["seek/armed-idle"].NsPerOp - base) / base
	}
	return rep, nil
}

// JSON renders the report for BENCH_fault.json.
func (r *FaultReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// FormatFault renders the report as a text table.
func FormatFault(r *FaultReport) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fault-layer overhead (TPC-H scale %.2g, seed %d)\n", r.Scale, r.Seed)
	fmt.Fprintf(&sb, "%-18s %12s %10s %12s\n", "benchmark", "ns/op", "allocs/op", "bytes/op")
	for _, b := range r.Results {
		fmt.Fprintf(&sb, "%-18s %12.0f %10d %12d\n", b.Name, b.NsPerOp, b.AllocsPerOp, b.BytesPerOp)
	}
	fmt.Fprintf(&sb, "cached seek: %+.2f%% with injector installed (disarmed), %+.2f%% armed with idle rules\n",
		r.OverheadDisabledPct, r.OverheadArmedIdlePct)
	return sb.String()
}
