package bench

import (
	"fmt"
	"math/rand"
	"strings"

	"onlinetuner/internal/core/singleindex"
)

// CompetitiveRow is one point of the Theorem 2 sweep.
type CompetitiveRow struct {
	Label  string
	Online float64
	Opt    float64
}

// Ratio is the competitive ratio at this point.
func (r CompetitiveRow) Ratio() float64 {
	if r.Opt <= 0 {
		return 0
	}
	return r.Online / r.Opt
}

// Competitive empirically verifies Theorem 2. The adversarial sweep
// replays the proof's worst-case workload — alternating queries where
// cost(q1,0)=ε+B, cost(q1,1)=ε, cost(q2,0)=ε, cost(q2,1)=ε+B — for
// shrinking ε/B, and the ratio must approach 3 from below. The random
// sweep draws workloads with per-query gaps bounded by B (the regime the
// analysis covers) and reports the worst observed ratio, which must stay
// under 3 plus an O(B) boundary term.
func Competitive(pairs int, seeds int) ([]CompetitiveRow, []CompetitiveRow, error) {
	const B = 10.0
	var adversarial []CompetitiveRow
	for _, frac := range []float64{1, 0.5, 0.1, 0.01, 0.001} {
		eps := B * frac
		var c0, c1 []float64
		for i := 0; i < pairs; i++ {
			c0 = append(c0, eps+B, eps)
			c1 = append(c1, eps, eps+B)
		}
		_, opt, err := singleindex.OptSchedule(c0, c1, B)
		if err != nil {
			return nil, nil, err
		}
		_, online, err := singleindex.New(B).Run(c0, c1)
		if err != nil {
			return nil, nil, err
		}
		adversarial = append(adversarial, CompetitiveRow{
			Label:  fmt.Sprintf("adversarial ε/B=%g", frac),
			Online: online,
			Opt:    opt,
		})
	}

	var random []CompetitiveRow
	worst := CompetitiveRow{Label: "random worst"}
	for seed := 0; seed < seeds; seed++ {
		r := rand.New(rand.NewSource(int64(seed)))
		n := 50 + r.Intn(400)
		c0 := make([]float64, n)
		c1 := make([]float64, n)
		for i := range c0 {
			base := r.Float64() * 5
			gap := (r.Float64()*2 - 1) * B
			c0[i] = base
			c1[i] = base
			if gap > 0 {
				c0[i] += gap
			} else {
				c1[i] -= gap
			}
		}
		_, opt, err := singleindex.OptSchedule(c0, c1, B)
		if err != nil {
			return nil, nil, err
		}
		_, online, err := singleindex.New(B).Run(c0, c1)
		if err != nil {
			return nil, nil, err
		}
		row := CompetitiveRow{Label: fmt.Sprintf("random seed %d", seed), Online: online, Opt: opt}
		if worst.Opt == 0 || row.Ratio() > worst.Ratio() {
			worst = row
			worst.Label = fmt.Sprintf("random worst (seed %d of %d)", seed, seeds)
		}
		_ = row
	}
	random = append(random, worst)
	return adversarial, random, nil
}

// FormatCompetitive renders the Theorem 2 sweep.
func FormatCompetitive(adversarial, random []CompetitiveRow) string {
	var sb strings.Builder
	sb.WriteString("Theorem 2: Online-SI competitive ratio (bound: 3)\n")
	for _, r := range adversarial {
		fmt.Fprintf(&sb, "  %-26s online=%12.2f opt=%12.2f ratio=%.4f\n",
			r.Label, r.Online, r.Opt, r.Ratio())
	}
	for _, r := range random {
		fmt.Fprintf(&sb, "  %-26s online=%12.2f opt=%12.2f ratio=%.4f\n",
			r.Label, r.Online, r.Opt, r.Ratio())
	}
	return sb.String()
}
