package bench

import (
	"fmt"
	"math"
	"strings"
	"time"

	"onlinetuner/internal/core"
	"onlinetuner/internal/workload"
)

// scheduleString renders an online run in Table 1's notation:
// kE(q)[c]; C(I)[b]; D(I); ...
func scheduleString(r *Result) string {
	type runAgg struct {
		label string
		cost  float64
		count int
	}
	// Map statements to short labels (q1, q2, ... by first occurrence).
	labels := map[string]string{}
	label := func(sql string) string {
		key := sql
		if strings.HasPrefix(strings.ToUpper(sql), "INSERT") || strings.HasPrefix(strings.ToUpper(sql), "UPDATE") || strings.HasPrefix(strings.ToUpper(sql), "DELETE") {
			key = "DML"
		}
		if l, ok := labels[key]; ok {
			return l
		}
		l := fmt.Sprintf("q%d", len(labels)+1)
		labels[key] = l
		return l
	}
	// Events indexed by the statement (1-based AtQuery) they follow.
	evAt := map[int64][]core.Event{}
	for _, ev := range r.Events {
		evAt[ev.AtQuery] = append(evAt[ev.AtQuery], ev)
	}
	var parts []string
	var cur *runAgg
	flush := func() {
		if cur != nil && cur.count > 0 {
			parts = append(parts, fmt.Sprintf("%dE(%s)[%.2f]", cur.count, cur.label, cur.cost/float64(cur.count)))
		}
		cur = nil
	}
	for i, sql := range r.StatementSQL {
		l := label(sql)
		c := r.PerStatement[i]
		// Strip transition cost embedded at event statements so the run
		// average stays the pure query cost.
		for _, ev := range evAt[int64(i+1)] {
			c -= ev.Cost
		}
		if cur == nil || cur.label != l || math.Abs(c-cur.cost/float64(maxI(cur.count, 1))) > 0.05*(1+c) {
			flush()
			cur = &runAgg{label: l}
		}
		cur.cost += c
		cur.count++
		if evs := evAt[int64(i+1)]; len(evs) > 0 {
			flush()
			for _, ev := range evs {
				parts = append(parts, ev.String())
			}
		}
	}
	flush()
	return strings.Join(collapsePairs(parts), "; ")
}

// collapsePairs rewrites repeated adjacent two-part patterns
// "1E(a)[x]; 1E(b)[y]" into the paper's "kE(a;b)[x;y]" notation.
func collapsePairs(parts []string) []string {
	var out []string
	i := 0
	for i < len(parts) {
		a, okA := parseSingle(parts[i])
		if !okA || i+1 >= len(parts) {
			out = append(out, parts[i])
			i++
			continue
		}
		b, okB := parseSingle(parts[i+1])
		if !okB {
			out = append(out, parts[i])
			i++
			continue
		}
		k := 1
		for i+2*k+1 < len(parts) {
			na, okNA := parseSingle(parts[i+2*k])
			nb, okNB := parseSingle(parts[i+2*k+1])
			if okNA && okNB && na == a && nb == b {
				k++
				continue
			}
			break
		}
		if k > 1 {
			out = append(out, fmt.Sprintf("%dE(%s;%s)[%s;%s]", k, a.label, b.label, a.cost, b.cost))
			i += 2 * k
			continue
		}
		out = append(out, parts[i])
		i++
	}
	return out
}

type single struct{ label, cost string }

// parseSingle matches "1E(label)[cost]".
func parseSingle(s string) (single, bool) {
	if !strings.HasPrefix(s, "1E(") {
		return single{}, false
	}
	close1 := strings.Index(s, ")[")
	if close1 < 0 || !strings.HasSuffix(s, "]") {
		return single{}, false
	}
	return single{label: s[3:close1], cost: s[close1+2 : len(s)-1]}, true
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Table1 reproduces Table 1: for each simple workload, the online
// configuration schedule, the OnlinePT total cost, and the sequence-
// optimal reference cost (the paper's manually constructed Opt, realized
// here by the Offline-Seq schedule that knows the future).
func Table1() (string, error) {
	var sb strings.Builder
	sb.WriteString("Table 1: configuration schedules for simple workloads\n")
	sb.WriteString(strings.Repeat("-", 100) + "\n")
	for _, w := range workload.SimpleWorkloads() {
		on, err := RunOnline(w, core.DefaultOptions())
		if err != nil {
			return "", err
		}
		seq, err := RunOfflineSeq(w, 16)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&sb, "%-45s Cost_online=%9.2f  [Cost_opt=%9.2f]\n", w.Name, on.Total, seq.Total)
		fmt.Fprintf(&sb, "  schedule: %s\n", scheduleString(on))
	}
	return sb.String(), nil
}

// Series is one named per-batch cost curve.
type Series struct {
	Name     string
	PerBatch []float64
}

// Total sums the series.
func (s Series) Total() float64 {
	t := 0.0
	for _, v := range s.PerBatch {
		t += v
	}
	return t
}

// Chart renders aligned per-batch series as an ASCII table plus bars.
func Chart(title string, series []Series) string {
	var sb strings.Builder
	sb.WriteString(title + "\n")
	maxV := 0.0
	n := 0
	for _, s := range series {
		if len(s.PerBatch) > n {
			n = len(s.PerBatch)
		}
		for _, v := range s.PerBatch {
			if v > maxV {
				maxV = v
			}
		}
	}
	sb.WriteString("batch")
	for _, s := range series {
		fmt.Fprintf(&sb, " | %18s", s.Name)
	}
	sb.WriteString("\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "%5d", i+1)
		for _, s := range series {
			if i < len(s.PerBatch) {
				fmt.Fprintf(&sb, " | %9.2f %s", s.PerBatch[i], bar(s.PerBatch[i], maxV, 8))
			} else {
				fmt.Fprintf(&sb, " | %18s", "")
			}
		}
		sb.WriteString("\n")
	}
	sb.WriteString("total")
	for _, s := range series {
		fmt.Fprintf(&sb, " | %18.2f", s.Total())
	}
	sb.WriteString("\n")
	return sb.String()
}

func bar(v, max float64, width int) string {
	if max <= 0 {
		return strings.Repeat(" ", width)
	}
	n := int(v / max * float64(width))
	if n > width {
		n = width
	}
	return strings.Repeat("#", n) + strings.Repeat(" ", width-n)
}

// tpchWorkload builds the Figure 7 workload, optionally with the
// disruptive update batch after batch 14.
func tpchWorkload(disrupt bool, o workload.TPCHOptions) *workload.Workload {
	if disrupt {
		o.DisruptAfterBatch = 14
		if o.DisruptCount == 0 {
			o.DisruptCount = 40
		}
	}
	return workload.TPCH(o)
}

// Figure7a runs OnlinePT over the TPC-H batches and returns its
// per-batch cost series (Figure 7(a)).
func Figure7a(o workload.TPCHOptions) (*workload.Workload, []Series, *Result, error) {
	w := tpchWorkload(false, o)
	on, err := RunOnline(w, core.DefaultOptions())
	if err != nil {
		return nil, nil, nil, err
	}
	return w, []Series{{Name: "OnlinePT", PerBatch: w.Batches(on.PerStatement)}}, on, nil
}

// Figure7b adds the offline baselines on the same workload (Figure 7(b)).
func Figure7b(o workload.TPCHOptions) (*workload.Workload, []Series, error) {
	w := tpchWorkload(false, o)
	return compareAll(w)
}

// Figure7c is Figure 7(a) with the disruptive updates (Figure 7(c)).
func Figure7c(o workload.TPCHOptions) (*workload.Workload, []Series, *Result, error) {
	w := tpchWorkload(true, o)
	on, err := RunOnline(w, core.DefaultOptions())
	if err != nil {
		return nil, nil, nil, err
	}
	return w, []Series{{Name: "OnlinePT", PerBatch: w.Batches(on.PerStatement)}}, on, nil
}

// Figure7d compares all techniques under the disruptive updates
// (Figure 7(d)).
func Figure7d(o workload.TPCHOptions) (*workload.Workload, []Series, error) {
	w := tpchWorkload(true, o)
	return compareAll(w)
}

func compareAll(w *workload.Workload) (*workload.Workload, []Series, error) {
	on, err := RunOnline(w, core.DefaultOptions())
	if err != nil {
		return nil, nil, err
	}
	set, err := RunOfflineSet(w, 24)
	if err != nil {
		return nil, nil, err
	}
	seq, err := RunOfflineSeq(w, 24)
	if err != nil {
		return nil, nil, err
	}
	return w, []Series{
		{Name: "OnlinePT", PerBatch: w.Batches(on.PerStatement)},
		{Name: "Offline-Set", PerBatch: w.Batches(set.PerStatement)},
		{Name: "Offline-Seq", PerBatch: w.Batches(seq.PerStatement)},
	}, nil
}

// Figure8Row is one workload's totals across techniques.
type Figure8Row struct {
	Workload string
	Totals   map[string]float64
}

// Figure8 reproduces the overall-cost summary across workloads and
// techniques (Figure 8).
func Figure8(o workload.TPCHOptions) ([]Figure8Row, error) {
	var rows []Figure8Row
	run := func(name string, w *workload.Workload) error {
		row := Figure8Row{Workload: name, Totals: map[string]float64{}}
		on, err := RunOnline(w, core.DefaultOptions())
		if err != nil {
			return err
		}
		row.Totals["OnlinePT"] = on.Total
		set, err := RunOfflineSet(w, 24)
		if err != nil {
			return err
		}
		row.Totals["Offline-Set"] = set.Total
		seq, err := RunOfflineSeq(w, 24)
		if err != nil {
			return err
		}
		row.Totals["Offline-Seq"] = seq.Total
		no, err := RunNoTuning(w)
		if err != nil {
			return err
		}
		row.Totals["NoTuning"] = no.Total
		rows = append(rows, row)
		return nil
	}
	if err := run("TPC-H", tpchWorkload(false, o)); err != nil {
		return nil, err
	}
	if err := run("TPC-H+updates", tpchWorkload(true, o)); err != nil {
		return nil, err
	}
	for _, w := range workload.SimpleWorkloads() {
		if err := run(w.Name, w); err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// FormatFigure8 renders the Figure 8 rows.
func FormatFigure8(rows []Figure8Row) string {
	techs := []string{"OnlinePT", "Offline-Set", "Offline-Seq", "NoTuning"}
	var sb strings.Builder
	sb.WriteString("Figure 8: overall cost by technique\n")
	fmt.Fprintf(&sb, "%-50s", "workload")
	for _, t := range techs {
		fmt.Fprintf(&sb, " %14s", t)
	}
	sb.WriteString("\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-50s", r.Workload)
		for _, t := range techs {
			fmt.Fprintf(&sb, " %14.2f", r.Totals[t])
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// OverheadRow is one module row of Figure 9.
type OverheadRow struct {
	Module   string
	Duration time.Duration
	Fraction float64 // of query processing time
}

// Figure9 measures OnlinePT's per-module overhead on a TPC-H workload
// (|W| ≈ 640: 29 batches) and the simple workload W1 (|W| = 500),
// reporting average per-query time and the fraction of query processing
// it represents (Figure 9).
func Figure9() (map[string][]OverheadRow, error) {
	out := map[string][]OverheadRow{}
	measure := func(name string, w *workload.Workload) error {
		r, err := RunOnline(w, core.DefaultOptions())
		if err != nil {
			return err
		}
		m := r.Metrics
		qp := r.QueryProcessing
		rows := []OverheadRow{
			{Module: "Total", Duration: m.Total},
			{Module: "Line 1", Duration: m.Line1},
			{Module: "Lines 2-8", Duration: m.Lines28},
			{Module: "Lines 9-18", Duration: m.Lines918},
			{Module: "Line 18", Duration: m.Line18},
		}
		for i := range rows {
			if qp > 0 {
				rows[i].Fraction = float64(rows[i].Duration) / float64(qp)
			}
			if m.Queries > 0 {
				rows[i].Duration = time.Duration(int64(rows[i].Duration) / m.Queries)
			}
		}
		out[name] = rows
		return nil
	}
	tp := workload.DefaultTPCH()
	tp.NumBatches = 29 // 29 × 22 = 638 ≈ the paper's |W| = 640
	if err := measure(fmt.Sprintf("TPC-H (|W|=%d)", tp.NumBatches*22), workload.TPCH(tp)); err != nil {
		return nil, err
	}
	if err := measure("Simple (|W|=500)", workload.W1()); err != nil {
		return nil, err
	}
	return out, nil
}

// FormatFigure9 renders the overhead table.
func FormatFigure9(data map[string][]OverheadRow) string {
	var sb strings.Builder
	sb.WriteString("Figure 9: server overhead of OnlinePT (avg per query, % of query processing)\n")
	for name, rows := range data {
		fmt.Fprintf(&sb, "%s\n", name)
		for _, r := range rows {
			fmt.Fprintf(&sb, "  %-12s %12v (%.2f%%)\n", r.Module, r.Duration, r.Fraction*100)
		}
	}
	return sb.String()
}
