// Observability overhead benchmark: measures the per-statement cost of
// statement tracing against the untraced baseline on the engine's
// fastest statement — a cached point lookup, where any fixed overhead
// is the largest relative fraction. The acceptance budget for the
// tracing layer is set against these numbers: sampled tracing must stay
// within a few percent of baseline, and disabled tracing must cost one
// atomic load.
package bench

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"onlinetuner/internal/engine"
	"onlinetuner/internal/obs"
	"onlinetuner/internal/tpch"
)

// ObsBench is one measured tracing configuration.
type ObsBench struct {
	Name string `json:"name"`
	// Stride is the sampling stride (0 = tracing disabled).
	Stride      int     `json:"stride"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// ObsReport is the tracing-overhead comparison, serialized to
// BENCH_obs.json by cmd/experiments.
type ObsReport struct {
	Scale   float64    `json:"scale"`
	Seed    int64      `json:"seed"`
	Results []ObsBench `json:"results"`
	// OverheadSampledPct and OverheadFullPct are the cached-seek
	// slowdowns vs the disabled baseline, in percent, at the default
	// sampling stride and at stride 1 (every statement traced).
	OverheadSampledPct float64 `json:"overhead_sampled_pct"`
	OverheadFullPct    float64 `json:"overhead_full_pct"`
	// BatchOverheadSampledPct is the same comparison on a fixed-parameter
	// TPC-H batch, where execution dominates and the overhead vanishes.
	BatchOverheadSampledPct float64 `json:"batch_overhead_sampled_pct"`
}

// measureObs benchmarks replaying stmts round-robin on an
// already-loaded database under the given tracing configuration
// (stride 0 = disabled). All configurations of one workload share the
// db — tracing toggles at runtime — so the comparison is not polluted
// by per-instance memory-layout variance.
func measureObs(db *engine.DB, stride int, stmts []string) (ObsBench, error) {
	if stride > 0 {
		db.Observability().EnableTracing(0, stride)
	} else {
		db.Observability().DisableTracing()
	}
	for _, q := range stmts {
		if _, _, err := db.Exec(q); err != nil {
			return ObsBench{}, fmt.Errorf("warm-up %q: %w", q, err)
		}
	}
	var execErr error
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := db.Exec(stmts[i%len(stmts)]); err != nil {
				execErr = err
				b.FailNow()
			}
		}
	})
	if execErr != nil {
		return ObsBench{}, execErr
	}
	return ObsBench{
		Stride:      stride,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}, nil
}

// Obs runs the tracing-overhead matrix: cached point lookups (the
// worst case for fixed overhead) and a fixed-parameter TPC-H batch
// (the realistic case), each with tracing disabled, sampled at the
// default stride, and tracing every statement.
func Obs(scale tpch.Scale, seed int64) (*ObsReport, error) {
	db := engine.Open()
	gen := tpch.NewGenerator(scale, seed)
	if err := gen.Load(db); err != nil {
		return nil, err
	}
	db.SetPlanCacheMode(engine.CacheExact)
	batch := gen.Batch()
	seek := planCacheSeekStmts(1)

	runs := []struct {
		name   string
		stride int
		stmts  []string
	}{
		{"seek/disabled", 0, seek},
		{"seek/sampled", obs.DefaultStride, seek},
		{"seek/full", 1, seek},
		{"batch/disabled", 0, batch},
		{"batch/sampled", obs.DefaultStride, batch},
	}

	rep := &ObsReport{Scale: float64(scale), Seed: seed}
	byName := make(map[string]ObsBench)
	for _, r := range runs {
		m, err := measureObs(db, r.stride, r.stmts)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", r.name, err)
		}
		m.Name = r.name
		rep.Results = append(rep.Results, m)
		byName[r.name] = m
	}
	if base := byName["seek/disabled"].NsPerOp; base > 0 {
		rep.OverheadSampledPct = 100 * (byName["seek/sampled"].NsPerOp - base) / base
		rep.OverheadFullPct = 100 * (byName["seek/full"].NsPerOp - base) / base
	}
	if base := byName["batch/disabled"].NsPerOp; base > 0 {
		rep.BatchOverheadSampledPct = 100 * (byName["batch/sampled"].NsPerOp - base) / base
	}
	return rep, nil
}

// JSON renders the report for BENCH_obs.json.
func (r *ObsReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// FormatObs renders the report as a text table.
func FormatObs(r *ObsReport) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Tracing overhead (TPC-H scale %.2g, seed %d)\n", r.Scale, r.Seed)
	fmt.Fprintf(&sb, "%-16s %7s %12s %10s %12s\n",
		"benchmark", "stride", "ns/op", "allocs/op", "bytes/op")
	for _, b := range r.Results {
		fmt.Fprintf(&sb, "%-16s %7d %12.0f %10d %12d\n",
			b.Name, b.Stride, b.NsPerOp, b.AllocsPerOp, b.BytesPerOp)
	}
	fmt.Fprintf(&sb, "cached seek: %+.2f%% sampled (stride %d), %+.2f%% tracing every statement; TPC-H batch: %+.2f%% sampled\n",
		r.OverheadSampledPct, obs.DefaultStride, r.OverheadFullPct, r.BatchOverheadSampledPct)
	return sb.String()
}
