// Plan-cache hot-path benchmark: measures the per-statement cost of the
// engine's two-tier statement cache (fingerprint + plan reuse) against
// the uncached baseline, on repeated-template TPC-H workloads. This is
// the Section 4.4 overhead story from the caching side: what fraction
// of per-statement work the cache removes.
package bench

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"onlinetuner/internal/engine"
	"onlinetuner/internal/tpch"
)

// PlanCacheBench is one measured configuration.
type PlanCacheBench struct {
	Name        string  `json:"name"`
	Mode        string  `json:"mode"`
	Workload    string  `json:"workload"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	HitRate     float64 `json:"hit_rate"`
}

// PlanCacheReport is the full before/after comparison, serialized to
// BENCH_plancache.json by cmd/experiments.
type PlanCacheReport struct {
	Scale   float64          `json:"scale"`
	Seed    int64            `json:"seed"`
	Results []PlanCacheBench `json:"results"`
	// SeekSpeedup and SeekAllocRatio compare the planning-dominated
	// point-lookup workload cached (exact) vs uncached — the headline
	// hot-path numbers.
	SeekSpeedup    float64 `json:"seek_speedup"`
	SeekAllocRatio float64 `json:"seek_alloc_ratio"`
	// BatchSpeedup compares a fixed-parameter TPC-H batch cached vs
	// uncached (execution-dominated, so gains are smaller).
	BatchSpeedup float64 `json:"batch_speedup"`
}

func modeName(m engine.CacheMode) string {
	switch m {
	case engine.CacheOff:
		return "off"
	case engine.CacheExact:
		return "exact"
	case engine.CacheRebind:
		return "rebind"
	}
	return "unknown"
}

// planCacheSeekStmts builds the repeated-template point-lookup workload
// (distinct parameterizations of one primary-key seek template).
func planCacheSeekStmts(distinct int) []string {
	out := make([]string, distinct)
	for i := range out {
		out[i] = fmt.Sprintf(
			"SELECT l_quantity, l_extendedprice FROM lineitem WHERE l_orderkey = %d AND l_linenumber = 1",
			1+i*7)
	}
	return out
}

// measurePlanCache loads a TPC-H database in the given cache mode and
// benchmarks replaying stmts round-robin (one statement per op), after
// one warm-up pass.
func measurePlanCache(scale tpch.Scale, seed int64, mode engine.CacheMode, stmts []string) (PlanCacheBench, error) {
	db := engine.Open()
	gen := tpch.NewGenerator(scale, seed)
	if err := gen.Load(db); err != nil {
		return PlanCacheBench{}, err
	}
	db.SetPlanCacheMode(mode)
	for _, q := range stmts {
		if _, _, err := db.Exec(q); err != nil {
			return PlanCacheBench{}, fmt.Errorf("warm-up %q: %w", q, err)
		}
	}
	var execErr error
	var hitRate float64
	r := testing.Benchmark(func(b *testing.B) {
		before := db.PlanCacheStats()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := db.Exec(stmts[i%len(stmts)]); err != nil {
				execErr = err
				b.FailNow()
			}
		}
		b.StopTimer()
		s := db.PlanCacheStats()
		hits := float64(s.Hits - before.Hits + s.RebindHits - before.RebindHits)
		if n := hits + float64(s.Misses-before.Misses); n > 0 {
			hitRate = hits / n
		}
	})
	if execErr != nil {
		return PlanCacheBench{}, execErr
	}
	return PlanCacheBench{
		Mode:        modeName(mode),
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		HitRate:     hitRate,
	}, nil
}

// PlanCache runs the full hot-path comparison matrix.
func PlanCache(scale tpch.Scale, seed int64) (*PlanCacheReport, error) {
	gen := tpch.NewGenerator(scale, seed)
	fixedBatch := gen.Batch()
	var varying []string
	for _, b := range gen.Batches(16) {
		varying = append(varying, b...)
	}

	runs := []struct {
		name     string
		workload string
		mode     engine.CacheMode
		stmts    []string
	}{
		{"seek/uncached", "point lookups, 1 text", engine.CacheOff, planCacheSeekStmts(1)},
		{"seek/cached", "point lookups, 1 text", engine.CacheExact, planCacheSeekStmts(1)},
		{"seek/rebind", "point lookups, 97 texts", engine.CacheRebind, planCacheSeekStmts(97)},
		{"batch/uncached", "TPC-H batch, fixed params", engine.CacheOff, fixedBatch},
		{"batch/cached", "TPC-H batch, fixed params", engine.CacheExact, fixedBatch},
		{"varying/uncached", "TPC-H 16 batches, fresh params", engine.CacheOff, varying},
		{"varying/rebind", "TPC-H 16 batches, fresh params", engine.CacheRebind, varying},
	}

	rep := &PlanCacheReport{Scale: float64(scale), Seed: seed}
	byName := make(map[string]PlanCacheBench)
	for _, r := range runs {
		m, err := measurePlanCache(scale, seed, r.mode, r.stmts)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", r.name, err)
		}
		m.Name = r.name
		m.Workload = r.workload
		rep.Results = append(rep.Results, m)
		byName[r.name] = m
	}
	if u, c := byName["seek/uncached"], byName["seek/cached"]; c.NsPerOp > 0 && c.AllocsPerOp > 0 {
		rep.SeekSpeedup = u.NsPerOp / c.NsPerOp
		rep.SeekAllocRatio = float64(u.AllocsPerOp) / float64(c.AllocsPerOp)
	}
	if u, c := byName["batch/uncached"], byName["batch/cached"]; c.NsPerOp > 0 {
		rep.BatchSpeedup = u.NsPerOp / c.NsPerOp
	}
	return rep, nil
}

// JSON renders the report for BENCH_plancache.json.
func (r *PlanCacheReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// FormatPlanCache renders the report as a text table.
func FormatPlanCache(r *PlanCacheReport) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Plan-cache hot path (TPC-H scale %.2g, seed %d)\n", r.Scale, r.Seed)
	fmt.Fprintf(&sb, "%-18s %-8s %12s %10s %12s %9s\n",
		"benchmark", "mode", "ns/op", "allocs/op", "bytes/op", "hit rate")
	for _, b := range r.Results {
		fmt.Fprintf(&sb, "%-18s %-8s %12.0f %10d %12d %9.3f\n",
			b.Name, b.Mode, b.NsPerOp, b.AllocsPerOp, b.BytesPerOp, b.HitRate)
	}
	fmt.Fprintf(&sb, "seek: %.2fx faster, %.2fx fewer allocations; fixed batch: %.2fx faster\n",
		r.SeekSpeedup, r.SeekAllocRatio, r.BatchSpeedup)
	return sb.String()
}
