// Rules benchmark: the cost-based rewrite pack measured rule by rule.
// Every cell runs one query twice against the same TPC-H-loaded engine
// — all rules off, then ONLY the cell's rule on — and records the
// optimizer's estimated costs, the executed result's hash, and min-of-k
// wall-clock latency. The off/on hashes must match (rules change cost,
// never rows), every rule must win on estimated cost somewhere, and the
// TopN rule must also win on the wall clock: that is the honesty
// contract Verify enforces over the committed BENCH_rules.json.
package bench

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"strings"
	"time"

	"onlinetuner/internal/datum"
	"onlinetuner/internal/engine"
	"onlinetuner/internal/tpch"
)

// RuleCell is one (rule, query) measurement.
type RuleCell struct {
	// Rule is the canonical rule name (as EXPLAIN provenance prints it).
	Rule  string `json:"rule"`
	Query string `json:"query"`
	// CostOff/CostOn are the optimizer's estimated plan costs with all
	// rules off vs only this cell's rule on — deterministic model
	// outputs, not timings.
	CostOff   float64 `json:"cost_off"`
	CostOn    float64 `json:"cost_on"`
	CostDelta float64 `json:"cost_delta"`
	// Applied echoes the optimizer's provenance under the on setting.
	Applied []string `json:"applied"`
	// Rows and the result hashes are the semantic guard: both settings
	// must produce byte-identical results in execution order.
	Rows    int    `json:"rows"`
	HashOff string `json:"hash_off"`
	HashOn  string `json:"hash_on"`
	// Min-of-k wall-clock latencies (machine-dependent; excluded from
	// Meta).
	LatencyOffMs float64 `json:"latency_off_ms"`
	LatencyOnMs  float64 `json:"latency_on_ms"`
}

// RulesReport is the rule-pack profile, serialized to BENCH_rules.json
// by cmd/experiments.
type RulesReport struct {
	Scale float64    `json:"scale"`
	Seed  int64      `json:"seed"`
	Reps  int        `json:"reps"`
	Cells []RuleCell `json:"cells"`
}

// ruleQueries maps each rule to the queries its cells measure. The
// shapes are chosen so the rule actually fires: the unnest cells need
// the li_ship index for the inner side's index-aware access path, the
// minmax cells read the same index's endpoints, and the join-dp cell is
// a 4-table chain where greedy's locally-cheapest first join is
// globally wrong.
var ruleQueries = []struct {
	rule    string // short name, as SetRules accepts
	canon   string // canonical name, as provenance prints
	queries []string
}{
	{"unnest", "subquery-unnest", []string{
		"SELECT o_orderkey, o_totalprice FROM orders WHERE o_orderkey IN (SELECT l_orderkey FROM lineitem WHERE l_shipdate < DATE '1993-06-01')",
		"SELECT o_orderpriority, COUNT(*) AS n FROM orders WHERE EXISTS (SELECT * FROM lineitem WHERE l_orderkey = o_orderkey AND l_shipdate < DATE '1993-06-01') GROUP BY o_orderpriority ORDER BY o_orderpriority",
	}},
	{"topn", "topn-pushdown", []string{
		"SELECT l_orderkey, l_extendedprice FROM lineitem ORDER BY l_extendedprice DESC LIMIT 10",
		"SELECT o_orderkey, o_totalprice FROM orders ORDER BY o_totalprice DESC LIMIT 5",
	}},
	{"minmax", "minmax-endpoint", []string{
		"SELECT MIN(l_shipdate) AS lo FROM lineitem",
		"SELECT MAX(l_shipdate) AS hi FROM lineitem",
	}},
	{"prune", "column-prune", []string{
		"SELECT o_orderdate FROM orders, lineitem WHERE l_orderkey = o_orderkey",
		"SELECT c_name FROM customer, orders WHERE c_custkey = o_custkey AND o_totalprice > 100",
	}},
	{"joindp", "join-dp", []string{
		"SELECT COUNT(*) AS n FROM supplier, lineitem, orders, nation WHERE s_suppkey = l_suppkey AND o_orderkey = l_orderkey AND s_nationkey = n_nationkey AND n_nationkey = 3",
	}},
}

// rulesDDL prepares the physical design the cells assume.
var rulesDDL = []string{
	"CREATE INDEX li_ship ON lineitem (l_shipdate, l_orderkey)",
}

// hashRows digests a result in execution order, byte for byte.
func hashRows(rows []datum.Row) string {
	h := fnv.New64a()
	for _, r := range rows {
		for i, v := range r {
			if i > 0 {
				h.Write([]byte{'|'})
			}
			fmt.Fprintf(h, "%v", v)
		}
		h.Write([]byte{'\n'})
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// measureRules runs a query under the current rule setting: one
// measured pass for cost/provenance/hash, then reps-1 more for the
// min latency.
func measureRules(db *engine.DB, q string, reps int) (cost float64, applied []string, rows int, hash string, lat time.Duration, err error) {
	lat = time.Duration(1) << 62
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		rs, info, e := db.Exec(q)
		d := time.Since(t0)
		if e != nil {
			return 0, nil, 0, "", 0, e
		}
		if d < lat {
			lat = d
		}
		if i == 0 {
			cost = info.EstCost
			applied = info.Result.RulesApplied
			rows = len(rs.Rows)
			hash = hashRows(rs.Rows)
		}
	}
	return cost, applied, rows, hash, lat, nil
}

// Rules measures the rewrite pack cell by cell against one
// TPC-H-loaded engine.
func Rules(scale tpch.Scale, seed int64, reps int) (*RulesReport, error) {
	if reps <= 0 {
		reps = 9
	}
	db := engine.Open()
	if err := tpch.NewGenerator(scale, seed).Load(db); err != nil {
		return nil, err
	}
	for _, ddl := range rulesDDL {
		if _, _, err := db.Exec(ddl); err != nil {
			return nil, err
		}
	}
	rep := &RulesReport{Scale: float64(scale), Seed: seed, Reps: reps}
	for _, rq := range ruleQueries {
		for _, q := range rq.queries {
			if err := db.SetRules("none"); err != nil {
				return nil, err
			}
			costOff, _, rowsOff, hashOff, latOff, err := measureRules(db, q, reps)
			if err != nil {
				return nil, fmt.Errorf("rules off, %q: %w", q, err)
			}
			if err := db.SetRules(rq.rule); err != nil {
				return nil, err
			}
			costOn, applied, rowsOn, hashOn, latOn, err := measureRules(db, q, reps)
			if err != nil {
				return nil, fmt.Errorf("rule %s, %q: %w", rq.rule, q, err)
			}
			if rowsOn != rowsOff {
				return nil, fmt.Errorf("rule %s, %q: row count changed %d -> %d", rq.rule, q, rowsOff, rowsOn)
			}
			rep.Cells = append(rep.Cells, RuleCell{
				Rule:         rq.canon,
				Query:        q,
				CostOff:      round3(costOff),
				CostOn:       round3(costOn),
				CostDelta:    round3(costOff - costOn),
				Applied:      applied,
				Rows:         rowsOn,
				HashOff:      hashOff,
				HashOn:       hashOn,
				LatencyOffMs: round3(float64(latOff) / 1e6),
				LatencyOnMs:  round3(float64(latOn) / 1e6),
			})
		}
	}
	if err := db.SetRules("all"); err != nil {
		return nil, err
	}
	return rep, nil
}

// JSON serializes the report.
func (r *RulesReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Meta renders the report's machine-independent identity — rule/query
// shape, deterministic model costs, row counts and hashes; latencies
// (the only machine-dependent fields) are omitted. CI compares this
// across a double run.
func (r *RulesReport) Meta() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "scale=%g seed=%d cells=%d\n", r.Scale, r.Seed, len(r.Cells))
	for _, c := range r.Cells {
		fmt.Fprintf(&sb, "rule=%s cost_off=%.3f cost_on=%.3f rows=%d hash=%s applied=%s query=%q\n",
			c.Rule, c.CostOff, c.CostOn, c.Rows, c.HashOn, strings.Join(c.Applied, ","), c.Query)
	}
	return sb.String()
}

// rulesCanonNames is the full rule pack every report must cover.
var rulesCanonNames = []string{
	"subquery-unnest", "topn-pushdown", "minmax-endpoint", "column-prune", "join-dp",
}

// Verify checks the report's honesty: full rule coverage, every rule
// winning on estimated cost somewhere, provenance naming the rule it
// claims, off/on results byte-identical, deltas reconciling, and the
// TopN rule winning on the wall clock (it is the one rule whose point
// is execution speed, not just plan cost).
func (r *RulesReport) Verify() error {
	var errs []string
	won := map[string]bool{}
	covered := map[string]bool{}
	topnLatWin := false
	for _, c := range r.Cells {
		covered[c.Rule] = true
		if c.HashOff != c.HashOn {
			errs = append(errs, fmt.Sprintf("%s %q: results diverge off=%s on=%s", c.Rule, c.Query, c.HashOff, c.HashOn))
		}
		if d := c.CostDelta - (c.CostOff - c.CostOn); d > 0.01 || d < -0.01 {
			errs = append(errs, fmt.Sprintf("%s %q: delta %.3f does not reconcile with %.3f-%.3f", c.Rule, c.Query, c.CostDelta, c.CostOff, c.CostOn))
		}
		if c.CostOn < c.CostOff {
			won[c.Rule] = true
			found := false
			for _, a := range c.Applied {
				if a == c.Rule {
					found = true
				}
			}
			if !found {
				errs = append(errs, fmt.Sprintf("%s %q: cost fell but provenance %v does not name the rule", c.Rule, c.Query, c.Applied))
			}
		}
		if c.Rule == "topn-pushdown" && c.LatencyOnMs > 0 && c.LatencyOnMs < c.LatencyOffMs {
			topnLatWin = true
		}
	}
	for _, name := range rulesCanonNames {
		if !covered[name] {
			errs = append(errs, fmt.Sprintf("rule %s has no cells", name))
		} else if !won[name] {
			errs = append(errs, fmt.Sprintf("rule %s never reduced estimated cost", name))
		}
	}
	if !topnLatWin {
		errs = append(errs, "topn-pushdown never won on wall-clock latency")
	}
	if len(errs) > 0 {
		return fmt.Errorf("rules report verification failed:\n  %s", strings.Join(errs, "\n  "))
	}
	return nil
}

// VerifyRulesJSON parses and verifies a serialized report — the CI
// honesty guard's entry point for the committed BENCH_rules.json.
func VerifyRulesJSON(data []byte) (*RulesReport, error) {
	var rep RulesReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("rules report: bad JSON: %w", err)
	}
	if err := rep.Verify(); err != nil {
		return nil, err
	}
	return &rep, nil
}

// FormatRules renders the human-readable per-rule table.
func FormatRules(r *RulesReport) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Optimizer rule pack: all-off baseline vs single-rule-on (scale %.2g, seed %d, min of %d runs)\n\n",
		r.Scale, r.Seed, r.Reps)
	fmt.Fprintf(&sb, "%-16s %12s %12s %10s %9s %9s %6s  %s\n",
		"rule", "cost off", "cost on", "delta", "off ms", "on ms", "rows", "query")
	for _, c := range r.Cells {
		q := c.Query
		if len(q) > 60 {
			q = q[:57] + "..."
		}
		fmt.Fprintf(&sb, "%-16s %12.1f %12.1f %10.1f %9.3f %9.3f %6d  %s\n",
			c.Rule, c.CostOff, c.CostOn, c.CostDelta, c.LatencyOffMs, c.LatencyOnMs, c.Rows, q)
	}
	sb.WriteString("\nCosts are the optimizer's deterministic estimates; identical off/on row\nhashes are the proof that rules change cost, never results.\n")
	return sb.String()
}
