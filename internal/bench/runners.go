// Package bench is the experiment harness: it runs each tuning technique
// (OnlinePT, Offline-Set, Offline-Seq, NoTuning) over a workload with
// physical replay — every technique gets its own freshly loaded database
// and its index changes are actually materialized — and regenerates the
// paper's Table 1 and Figures 7, 8 and 9.
package bench

import (
	"fmt"
	"time"

	"onlinetuner/internal/catalog"
	"onlinetuner/internal/core"
	"onlinetuner/internal/engine"
	"onlinetuner/internal/tuner/offline"
	"onlinetuner/internal/whatif"
	"onlinetuner/internal/workload"
)

// Result is one technique's run over one workload.
type Result struct {
	Technique string
	// PerStatement[i] is the estimated cost of statement i plus any
	// transition costs paid at that point.
	PerStatement []float64
	Total        float64
	// Events is the physical change log (online runs only).
	Events []core.Event
	// Metrics is the tuner overhead accounting (online runs only).
	Metrics core.Metrics
	// QueryProcessing is the wall-clock spent optimizing+executing.
	QueryProcessing time.Duration
	// FinalConfig lists the secondary indexes at workload end.
	FinalConfig []string
	// StatementSQL mirrors the workload statements (for schedule
	// rendering).
	StatementSQL []string
}

// RunOnline replays the workload with OnlinePT attached.
func RunOnline(w *workload.Workload, opts core.Options) (*Result, error) {
	db := w.NewDB()
	tn := core.Attach(db, opts)
	res := &Result{Technique: "OnlinePT", StatementSQL: w.Statements}
	prevTransitions := 0.0
	for _, stmt := range w.Statements {
		start := time.Now()
		_, info, err := db.Exec(stmt)
		if err != nil {
			return nil, fmt.Errorf("bench: online: %q: %w", stmt, err)
		}
		res.QueryProcessing += time.Since(start)
		cost := info.EstCost
		m := tn.Metrics()
		cost += m.TransitionCost - prevTransitions
		prevTransitions = m.TransitionCost
		res.PerStatement = append(res.PerStatement, cost)
		res.Total += cost
	}
	res.QueryProcessing -= tn.Metrics().Total // tuner time accounted separately
	res.Events = tn.Events()
	res.Metrics = tn.Metrics()
	res.FinalConfig = configNames(db)
	return res, nil
}

// RunNoTuning replays the workload untouched.
func RunNoTuning(w *workload.Workload) (*Result, error) {
	db := w.NewDB()
	res := &Result{Technique: "NoTuning", StatementSQL: w.Statements}
	for _, stmt := range w.Statements {
		start := time.Now()
		_, info, err := db.Exec(stmt)
		if err != nil {
			return nil, fmt.Errorf("bench: notuning: %q: %w", stmt, err)
		}
		res.QueryProcessing += time.Since(start)
		res.PerStatement = append(res.PerStatement, info.EstCost)
		res.Total += info.EstCost
	}
	return res, nil
}

// profile replays the workload once on a fresh database to capture
// requests for the offline advisors.
func profile(w *workload.Workload) (*offline.Profile, error) {
	return offline.ProfileWorkload(w.NewDB(), w.Statements)
}

// RunOfflineSet profiles the workload, runs the set-based advisor, then
// physically replays with the recommended indexes created up front. The
// creation cost lands on the first statement.
func RunOfflineSet(w *workload.Workload, maxCandidates int) (*Result, error) {
	p, err := profile(w)
	if err != nil {
		return nil, err
	}
	rec := offline.SetBased(p, maxCandidates)

	db := w.NewDB()
	res := &Result{Technique: "Offline-Set", StatementSQL: w.Statements}
	upfront := 0.0
	for i, ix := range rec.Indexes {
		clone := &catalog.Index{Name: fmt.Sprintf("set_%d", i), Table: ix.Table, Columns: ix.Columns}
		upfront += whatif.BuildCost(db.WhatIfEnv(), clone)
		if err := db.CreateIndex(clone); err != nil {
			return nil, fmt.Errorf("bench: offline-set create %v: %w", clone, err)
		}
	}
	for i, stmt := range w.Statements {
		start := time.Now()
		_, info, err := db.Exec(stmt)
		if err != nil {
			return nil, fmt.Errorf("bench: offline-set: %q: %w", stmt, err)
		}
		res.QueryProcessing += time.Since(start)
		cost := info.EstCost
		if i == 0 {
			cost += upfront
		}
		res.PerStatement = append(res.PerStatement, cost)
		res.Total += cost
	}
	res.FinalConfig = configNames(db)
	return res, nil
}

// RunOfflineSeq profiles the workload, computes the sequence-based
// schedule, and physically replays it, applying creates/drops at their
// scheduled positions and charging build costs as transitions.
func RunOfflineSeq(w *workload.Workload, maxCandidates int) (*Result, error) {
	p, err := profile(w)
	if err != nil {
		return nil, err
	}
	sched := offline.SeqBased(p, maxCandidates)

	db := w.NewDB()
	res := &Result{Technique: "Offline-Seq", StatementSQL: w.Statements}
	live := map[string]*catalog.Index{} // id → created clone
	n := 0
	for i, stmt := range w.Statements {
		// Transition into the scheduled configuration for statement i.
		want := map[string]*catalog.Index{}
		if i < len(sched.Active) {
			for _, ix := range sched.Active[i] {
				want[ix.ID()] = ix
			}
		}
		transition := 0.0
		for id, ix := range live {
			if want[id] == nil {
				if err := db.DropIndex(ix); err != nil {
					return nil, fmt.Errorf("bench: offline-seq drop: %w", err)
				}
				delete(live, id)
			}
		}
		for id, ix := range want {
			if live[id] == nil {
				clone := &catalog.Index{Name: fmt.Sprintf("seq_%d", n), Table: ix.Table, Columns: ix.Columns}
				n++
				transition += whatif.BuildCost(db.WhatIfEnv(), clone)
				if err := db.CreateIndex(clone); err != nil {
					return nil, fmt.Errorf("bench: offline-seq create %v: %w", clone, err)
				}
				live[id] = clone
			}
		}
		start := time.Now()
		_, info, err := db.Exec(stmt)
		if err != nil {
			return nil, fmt.Errorf("bench: offline-seq: %q: %w", stmt, err)
		}
		res.QueryProcessing += time.Since(start)
		res.PerStatement = append(res.PerStatement, info.EstCost+transition)
		res.Total += info.EstCost + transition
	}
	res.FinalConfig = configNames(db)
	return res, nil
}

// configNames lists the active secondary indexes of a database.
func configNames(db *engine.DB) []string {
	var out []string
	for _, ix := range db.Configuration() {
		out = append(out, ix.String())
	}
	return out
}
