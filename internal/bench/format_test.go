package bench

import (
	"encoding/json"
	"strings"
	"testing"

	"onlinetuner/internal/engine"
	"onlinetuner/internal/workload"
)

// The bench formatters and JSON serializers are pure over their report
// structs; cmd/experiments is their only caller, so without these
// renders a formatting regression (or a JSON-tag typo breaking the CI
// honesty guards that sed/grep the artifacts) would only surface when
// regenerating artifacts by hand.

func TestFormatObsRendering(t *testing.T) {
	r := &ObsReport{
		Scale: 0.25, Seed: 7,
		Results:            []ObsBench{{Name: "seek_cached", Stride: 16, NsPerOp: 1234, AllocsPerOp: 5, BytesPerOp: 640}},
		OverheadSampledPct: 0.8, OverheadFullPct: 4.2, BatchOverheadSampledPct: 0.1,
	}
	out := FormatObs(r)
	for _, want := range []string{"seek_cached", "Tracing overhead", "+0.80%", "+4.20%"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatObs missing %q:\n%s", want, out)
		}
	}
	roundTripJSON(t, r, `"overhead_sampled_pct"`)
}

func TestFormatParallelRendering(t *testing.T) {
	sp := 2.5
	r := &ParallelReport{
		Scale: 0.25, Seed: 7, GOMAXPROCS: 4, NumCPU: 4,
		Results:       []ParallelBench{{Name: "tpch_batch", Workers: 4, NsPerOp: 1e6, Speedup: 2.5, Morsels: 128}},
		SpeedupAt4:    &sp,
		EngineResults: []EngineBench{{Name: "scan_filter", Engine: "vector", Workers: 1, NsPerOp: 5e5, Speedup: 1.57}},
	}
	out := FormatParallel(r)
	for _, want := range []string{"tpch_batch", "speedup at 4 workers: 2.50x", "scan_filter", "vector"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatParallel missing %q:\n%s", want, out)
		}
	}

	// The single-core shape: a null headline plus the explanatory note —
	// exactly what the CI artifact-honesty guard greps for.
	r.SpeedupAt4 = nil
	r.GOMAXPROCS = 1
	r.Note = "single-core-run"
	out = FormatParallel(r)
	if !strings.Contains(out, "n/a (single-core-run") {
		t.Errorf("FormatParallel hides the single-core caveat:\n%s", out)
	}
	data := roundTripJSON(t, r, `"gomaxprocs": 1`)
	if !strings.Contains(string(data), `"speedup_at_4": null`) {
		t.Errorf("null headline not serialized as JSON null:\n%s", data)
	}
}

func TestFormatPlanCacheRendering(t *testing.T) {
	r := &PlanCacheReport{
		Scale: 0.25, Seed: 7,
		Results:     []PlanCacheBench{{Name: "seek", Mode: "exact", NsPerOp: 900, AllocsPerOp: 3, BytesPerOp: 256, HitRate: 0.99}},
		SeekSpeedup: 4.3, SeekAllocRatio: 8.1, BatchSpeedup: 1.2,
	}
	out := FormatPlanCache(r)
	for _, want := range []string{"Plan-cache hot path", "seek", "exact", "4.30x faster"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatPlanCache missing %q:\n%s", want, out)
		}
	}
	roundTripJSON(t, r, `"seek_speedup"`)
}

func TestFormatWALRendering(t *testing.T) {
	r := &WALReport{
		Scale: 0.25, Seed: 7,
		Commits:       []WALBench{{Name: "group_w4", Policy: "group", Workers: 4, Commits: 1000, NsPerCommit: 5e4, CommitsPerSec: 20000, FsyncsPerCommit: 0.25}},
		ReplayBatches: 10, ReplayRecords: 5000, ReplayBytes: 1 << 20, ReplayDurationMs: 12.5, ReplayMBPerSec: 80,
		CheckpointPauseMs: 3.25, CheckpointSnapshotBytes: 4096,
	}
	out := FormatWAL(r)
	for _, want := range []string{"WAL durability profile", "group_w4", "replay: 10 batches / 5000 records", "checkpoint pause: 3.25 ms"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatWAL missing %q:\n%s", want, out)
		}
	}
	roundTripJSON(t, r, `"ns_per_commit"`)
}

// roundTripJSON serializes via the report's JSON() method, checks a
// sentinel tag the CI guards depend on, and re-parses the bytes.
func roundTripJSON(t *testing.T, r interface{ JSON() ([]byte, error) }, sentinel string) []byte {
	t.Helper()
	data, err := r.JSON()
	if err != nil {
		t.Fatalf("JSON(): %v", err)
	}
	if !strings.Contains(string(data), sentinel) {
		t.Fatalf("serialized report missing %q:\n%s", sentinel, data)
	}
	var back map[string]any
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	return data
}

func TestModeNameAndAblationSuite(t *testing.T) {
	for m, want := range map[engine.CacheMode]string{
		engine.CacheOff:      "off",
		engine.CacheExact:    "exact",
		engine.CacheRebind:   "rebind",
		engine.CacheMode(99): "unknown",
	} {
		if got := modeName(m); got != want {
			t.Errorf("modeName(%v) = %q, want %q", m, got, want)
		}
	}
	ws := AblationWorkloads(workload.TPCHOptions{Scale: 0.1, NumBatches: 100})
	if len(ws) != 4 {
		t.Fatalf("ablation suite has %d workloads, want 4", len(ws))
	}
	for _, w := range ws {
		if len(w.Statements) == 0 {
			t.Errorf("ablation workload %q is empty", w.Name)
		}
	}
}
