package tuner

import (
	"fmt"
	"sort"

	"onlinetuner/internal/catalog"
	"onlinetuner/internal/engine"
	"onlinetuner/internal/whatif"
	"onlinetuner/internal/workload"
)

// ManualOptions tune the manual-DBA control.
type ManualOptions struct {
	// Warmup is how many statements the DBA watches before acting.
	Warmup int
	// TopK is how many indexes the DBA creates in the one-shot action.
	TopK int
}

// DefaultManualOptions returns the racing defaults: the DBA looks at the
// first 30 statements and commits to the top 3 candidates.
func DefaultManualOptions() ManualOptions {
	return ManualOptions{Warmup: 30, TopK: 3}
}

// ManualDBA models the human baseline the paper argues against: observe
// a warmup window, create the indexes that would have helped it most,
// then never revisit the decision. On stable workloads this is nearly
// optimal; on drift it tunes for the wrong epoch; on update storms its
// eager creations pay maintenance forever — which is exactly the
// contrast the race is built to expose.
type ManualDBA struct {
	opts ManualOptions
	db   *engine.DB
	env  *whatif.Env

	// benefit accumulates warmup query savings per candidate id.
	benefit  map[string]float64
	cand     map[string]*catalog.Index
	order    []string
	acted    bool
	counters Counters
}

// NewManualDBA constructs the manual-DBA control.
func NewManualDBA(opts ManualOptions) *ManualDBA {
	if opts.Warmup <= 0 {
		opts.Warmup = DefaultManualOptions().Warmup
	}
	if opts.TopK <= 0 {
		opts.TopK = DefaultManualOptions().TopK
	}
	return &ManualDBA{opts: opts, benefit: map[string]float64{}, cand: map[string]*catalog.Index{}}
}

func (m *ManualDBA) Name() string { return "ManualDBA" }

func (m *ManualDBA) Start(db *engine.DB, _ *workload.Workload) error {
	m.db = db
	m.env = db.WhatIfEnv()
	return nil
}

// BeforeStatement fires the one-shot creation right after the warmup
// window closes; the build costs are charged as that statement's
// transition.
func (m *ManualDBA) BeforeStatement(i int) (float64, error) {
	if m.acted || i < m.opts.Warmup {
		return 0, nil
	}
	m.acted = true

	type scored struct {
		id  string
		ben float64
	}
	var ranked []scored
	for _, id := range m.order {
		if m.benefit[id] > 0 {
			ranked = append(ranked, scored{id, m.benefit[id]})
		}
	}
	sort.Slice(ranked, func(a, b int) bool {
		if ranked[a].ben != ranked[b].ben {
			return ranked[a].ben > ranked[b].ben
		}
		return ranked[a].id < ranked[b].id
	})
	if len(ranked) > m.opts.TopK {
		ranked = ranked[:m.opts.TopK]
	}
	transition := 0.0
	for n, s := range ranked {
		ix := m.cand[s.id]
		clone := &catalog.Index{Name: fmt.Sprintf("dba_%d", n), Table: ix.Table, Columns: ix.Columns}
		build := whatif.BuildCost(m.env, clone)
		m.counters.BuildsStarted++
		if err := m.db.CreateIndex(clone); err != nil {
			m.counters.BuildsFailed++
			return transition, fmt.Errorf("tuner: manual-dba create %v: %w", clone, err)
		}
		m.counters.BuildsCompleted++
		m.counters.IndexesCreated++
		transition += build
	}
	return transition, nil
}

// AfterStatement accumulates warmup evidence; once the DBA has acted it
// stops looking entirely.
func (m *ManualDBA) AfterStatement(i int, info *engine.QueryInfo) (float64, error) {
	if m.acted || info.Result == nil {
		return 0, nil
	}
	reqs := info.Result.Tree.Requests()
	for _, r := range reqs {
		if r.Kind == whatif.KindUpdate {
			continue
		}
		ix := whatif.GetBestIndex(m.db.Cat, r)
		if ix == nil || ix.Primary {
			continue
		}
		ix = ix.Canonicalize()
		id := ix.ID()
		if m.cand[id] == nil {
			m.cand[id] = ix
			m.order = append(m.order, id)
		}
		saving := whatif.GetCost(m.env, r, nil) - whatif.GetCost(m.env, r, []*catalog.Index{ix})
		if saving > 0 {
			m.benefit[id] += saving
		}
	}
	return 0, nil
}

func (m *ManualDBA) Close()             {}
func (m *ManualDBA) Counters() Counters { return m.counters }
