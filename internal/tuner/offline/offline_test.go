package offline

import (
	"fmt"
	"testing"

	"onlinetuner/internal/engine"
)

// loadDB builds the paper's R/S tables with deterministic data.
func loadDB(t testing.TB, rows int) *engine.DB {
	t.Helper()
	db := engine.Open()
	db.MustExec("CREATE TABLE R (id INT, a INT, b INT, c INT, d INT, e INT, PRIMARY KEY (id))")
	db.MustExec("CREATE TABLE S (id INT, a INT, b INT, c INT, d INT, e INT, PRIMARY KEY (id))")
	for i := 0; i < rows; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO R VALUES (%d, %d, %d, %d, %d, %d)", i, i%1000, i, i, i, i))
		db.MustExec(fmt.Sprintf("INSERT INTO S VALUES (%d, %d, %d, %d, %d, %d)", i, i%1000, i, i, i, i))
	}
	if err := db.Analyze("R"); err != nil {
		t.Fatal(err)
	}
	if err := db.Analyze("S"); err != nil {
		t.Fatal(err)
	}
	return db
}

func repeat(q string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = q
	}
	return out
}

const q1 = "SELECT a, b, c, id FROM R WHERE a < 100"
const q2 = "SELECT a, d, e, id FROM R WHERE a < 100"

func TestProfileWorkload(t *testing.T) {
	db := loadDB(t, 2000)
	w := append(repeat(q1, 5), repeat(q2, 5)...)
	p, err := ProfileWorkload(db, w)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Queries) != 10 {
		t.Fatalf("profiled %d queries", len(p.Queries))
	}
	for _, pq := range p.Queries {
		if pq.BaseCost <= 0 || len(pq.Groups) == 0 {
			t.Fatalf("bad profile entry: %+v", pq)
		}
		if pq.glue < 0 {
			t.Error("negative glue")
		}
	}
	// QueryCost under nil ≈ BaseCost (glue absorbs the difference).
	for i := range p.Queries {
		got := p.QueryCost(i, nil)
		if got < p.Queries[i].BaseCost*0.95 || got > p.Queries[i].BaseCost*1.05 {
			t.Errorf("query %d: cost(nil) = %g, base = %g", i, got, p.Queries[i].BaseCost)
		}
	}
	// Errors propagate.
	if _, err := ProfileWorkload(db, []string{"SELECT nope FROM R"}); err == nil {
		t.Error("bad statement accepted")
	}
}

func TestCandidatesDiscovered(t *testing.T) {
	db := loadDB(t, 2000)
	p, err := ProfileWorkload(db, append(repeat(q1, 3), repeat(q2, 3)...))
	if err != nil {
		t.Fatal(err)
	}
	cands := p.Candidates(0)
	if len(cands) < 2 {
		t.Fatalf("candidates = %v", cands)
	}
	// The seek-optimal indexes for q1 and q2 must be among them.
	ids := map[string]bool{}
	for _, c := range cands {
		ids[c.ID()] = true
	}
	if !ids["r(a,b,c,id)"] || !ids["r(a,d,e,id)"] {
		t.Errorf("expected paper candidates, got %v", ids)
	}
	// Limit honored.
	if got := len(p.Candidates(1)); got != 1 {
		t.Errorf("limited candidates = %d", got)
	}
}

func TestSetBasedPicksUsefulIndexes(t *testing.T) {
	db := loadDB(t, 2000)
	p, err := ProfileWorkload(db, append(repeat(q1, 100), repeat(q2, 100)...))
	if err != nil {
		t.Fatal(err)
	}
	rec := SetBased(p, 20)
	if len(rec.Indexes) == 0 {
		t.Fatal("nothing recommended for an index-friendly workload")
	}
	if rec.WorkloadCost >= p.TotalCost(nil) {
		t.Error("recommendation does not reduce workload cost")
	}
	if rec.CreationCost <= 0 {
		t.Error("creation cost missing")
	}
}

func TestSetBasedRespectsBudget(t *testing.T) {
	db := loadDB(t, 2000)
	p, err := ProfileWorkload(db, append(repeat(q1, 100), repeat(q2, 100)...))
	if err != nil {
		t.Fatal(err)
	}
	// Budget for roughly one 4-column index.
	p.Budget = 2000 * (4*8 + 8 + 8)
	rec := SetBased(p, 20)
	var used int64
	for _, ix := range rec.Indexes {
		used += p.Env.IndexBytes(ix)
	}
	if used > p.Budget {
		t.Errorf("budget violated: %d > %d", used, p.Budget)
	}
	// Unlimited picks at least as many indexes.
	p.Budget = 0
	rec2 := SetBased(p, 20)
	if len(rec2.Indexes) < len(rec.Indexes) {
		t.Error("unlimited budget should not shrink the recommendation")
	}
}

func TestSetBasedAvoidsIndexesOnUpdateHeavyTables(t *testing.T) {
	db := loadDB(t, 1000)
	// Reads on R are dwarfed by updates: no index should survive the
	// aggregate analysis (the Figure 7(c) Offline-Set behavior).
	var w []string
	w = append(w, repeat(q1, 3)...)
	for i := 0; i < 60; i++ {
		w = append(w, "UPDATE R SET b = b + 1, c = c + 1, d = d + 1 WHERE id >= 0")
	}
	p, err := ProfileWorkload(db, w)
	if err != nil {
		t.Fatal(err)
	}
	rec := SetBased(p, 20)
	for _, ix := range rec.Indexes {
		if ix.Table == "R" {
			t.Errorf("recommended %v on an update-dominated table", ix)
		}
	}
}

func TestSeqBasedSchedulesAroundUpdates(t *testing.T) {
	db := loadDB(t, 2000)
	// Reads, then a disruptive update burst, then reads again: the
	// sequence-based advisor should have the index ON in the read phases
	// and OFF during the burst.
	var w []string
	w = append(w, repeat(q1, 80)...)
	for i := 0; i < 40; i++ {
		w = append(w, "UPDATE R SET b = b + 1, c = c + 1, d = d + 1, e = e + 1 WHERE id >= 0")
	}
	w = append(w, repeat(q1, 80)...)
	p, err := ProfileWorkload(db, w)
	if err != nil {
		t.Fatal(err)
	}
	s := SeqBased(p, 10)
	if len(s.Active) != len(w) {
		t.Fatalf("schedule length = %d", len(s.Active))
	}
	onAt := func(i int) bool { return len(s.Active[i]) > 0 }
	if !onAt(60) {
		t.Error("index should be active during the first read phase")
	}
	if onAt(110) {
		t.Errorf("index should be dropped during the update burst; active = %v", s.Active[110])
	}
	if !onAt(len(w) - 5) {
		t.Error("index should be re-created for the final read phase")
	}
	// Knowing the future, Offline-Seq must beat NoTuning.
	if s.TotalCost >= p.TotalCost(nil) {
		t.Errorf("seq (%g) worse than no tuning (%g)", s.TotalCost, p.TotalCost(nil))
	}
}

func TestSeqBeatsOrMatchesSet(t *testing.T) {
	db := loadDB(t, 2000)
	var w []string
	w = append(w, repeat(q1, 60)...)
	for i := 0; i < 30; i++ {
		w = append(w, "UPDATE R SET b = b + 1, c = c + 1, d = d + 1, e = e + 1 WHERE id >= 0")
	}
	w = append(w, repeat(q1, 60)...)
	p, err := ProfileWorkload(db, w)
	if err != nil {
		t.Fatal(err)
	}
	rec := SetBased(p, 10)
	setTotal := rec.WorkloadCost + rec.CreationCost
	seq := SeqBased(p, 10)
	// The sequence advisor sees the update burst and schedules around
	// it; the set advisor cannot. Allow a small tolerance for the
	// per-index approximation.
	if seq.TotalCost > setTotal*1.05 {
		t.Errorf("seq (%g) should not lose to set (%g) on a phased workload", seq.TotalCost, setTotal)
	}
}

func TestSeqBudgetResolution(t *testing.T) {
	db := loadDB(t, 2000)
	w := append(repeat(q1, 100), repeat(q2, 100)...)
	p, err := ProfileWorkload(db, w)
	if err != nil {
		t.Fatal(err)
	}
	p.Budget = 2000 * (4*8 + 8 + 8) // one 4-column index
	s := SeqBased(p, 10)
	for i, active := range s.Active {
		var sz int64
		for _, ix := range active {
			sz += p.Env.IndexBytes(ix)
		}
		if sz > p.Budget {
			t.Fatalf("query %d: active size %d exceeds budget %d", i, sz, p.Budget)
		}
	}
}
