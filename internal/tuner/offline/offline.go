// Package offline implements the two offline baselines the paper
// compares against in Section 4.2:
//
//   - Offline-Set: a set-based physical design advisor in the style of
//     the Database Tuning Advisor [3]. It sees the whole workload as a
//     set, generates candidates from the captured requests, and greedily
//     picks the subset with the best aggregate benefit per byte under
//     the storage budget. The chosen indexes are created up front.
//
//   - Offline-Seq: a sequence-based advisor in the style of Agrawal,
//     Chu & Narasayya [2]. Knowing the full future, it partitions the
//     workload into contiguous segments and runs a dynamic program over
//     (segment, configuration) where configurations are the
//     budget-feasible subsets of the top candidates (merges included),
//     charging real creation costs on each change — so indexes appear
//     mid-workload and disappear before update bursts.
//
// Both operate on a Profile: a replay of the workload on an untuned
// database that captures every query's request groups (Section 2) and
// base cost. Costs under hypothetical configurations are then inferred
// with the same what-if machinery the online tuner uses, keeping all
// three techniques in identical cost units.
package offline

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"onlinetuner/internal/catalog"
	"onlinetuner/internal/engine"
	"onlinetuner/internal/storage"
	"onlinetuner/internal/whatif"
)

// ProfiledQuery captures one workload statement's optimization artifacts.
type ProfiledQuery struct {
	Text string
	// Groups are the per-table-access OR groups of non-update requests.
	Groups [][]*whatif.Request
	// Updates are the update-shell requests.
	Updates []*whatif.Request
	// BaseCost is the optimizer's estimated cost under the untuned
	// configuration.
	BaseCost float64
	// glue is the part of BaseCost not attributable to any access group
	// (joins, sorts, aggregation); it is configuration-independent.
	glue float64
}

// Profile is a whole workload's capture plus the environment to cost
// hypothetical configurations in.
type Profile struct {
	Queries []*ProfiledQuery
	Env     *whatif.Env
	// Budget is the secondary-index space budget (0 = unlimited).
	Budget int64
	// initialRows/initialBytes snapshot table cardinalities and heap
	// sizes before the replay: the advisors make their creation decisions
	// at workload start, so candidate sizes and build costs are evaluated
	// against the tables as they were then (a workload's DML can grow
	// tables far past their initial size).
	initialRows  map[string]int64
	initialBytes map[string]int64
}

// CandidateBytes estimates an index's size at workload start.
func (p *Profile) CandidateBytes(ix *catalog.Index) int64 {
	t := p.Env.Cat.Table(ix.Table)
	if t == nil {
		return 0
	}
	rows, ok := p.initialRows[strings.ToLower(ix.Table)]
	if !ok {
		return p.Env.IndexBytes(ix)
	}
	return int64(t.ColumnsWidth(ix.Columns)+8) * rows
}

// CandidateBuildCost estimates B_I at workload start (sorted build from
// the base table — the advisors create onto an untuned database).
func (p *Profile) CandidateBuildCost(ix *catalog.Index) float64 {
	key := strings.ToLower(ix.Table)
	rows, ok := p.initialRows[key]
	if !ok {
		return whatif.BuildCost(p.Env, ix)
	}
	sourcePages := float64(storage.PagesFor(p.initialBytes[key]))
	newPages := float64(storage.PagesFor(p.CandidateBytes(ix)))
	return p.Env.Model.BuildIndex(sourcePages, float64(rows), newPages, true)
}

// ProfileWorkload replays the statements on the given untuned database
// (which the caller creates and loads; it must have no secondary
// indexes) and captures request groups and costs. The database is
// mutated by any DML in the workload; its final state provides the
// sizing environment.
func ProfileWorkload(db *engine.DB, workload []string) (*Profile, error) {
	p := &Profile{
		Env:          db.WhatIfEnv(),
		Budget:       db.Mgr.Budget(),
		initialRows:  map[string]int64{},
		initialBytes: map[string]int64{},
	}
	for _, t := range db.Cat.Tables() {
		if h := db.Mgr.Heap(t.Name); h != nil {
			key := strings.ToLower(t.Name)
			p.initialRows[key] = int64(h.Len())
			p.initialBytes[key] = h.Bytes()
		}
	}
	for _, text := range workload {
		_, info, err := db.Exec(text)
		if err != nil {
			return nil, fmt.Errorf("offline: profiling %q: %w", text, err)
		}
		pq := &ProfiledQuery{Text: text, BaseCost: info.EstCost}
		tree := info.Result.Tree
		seen := map[*whatif.Request]bool{}
		for _, g := range tree.ORGroups() {
			var group []*whatif.Request
			for _, r := range g {
				if r.Kind == whatif.KindUpdate {
					continue
				}
				group = append(group, r)
				seen[r] = true
			}
			if len(group) > 0 {
				pq.Groups = append(pq.Groups, group)
			}
		}
		for _, r := range tree.Requests() {
			if seen[r] {
				continue
			}
			if r.Kind == whatif.KindUpdate {
				pq.Updates = append(pq.Updates, r)
			} else {
				pq.Groups = append(pq.Groups, []*whatif.Request{r})
			}
		}
		// Configuration-independent glue: whatever of the base cost the
		// access groups do not explain.
		attributed := 0.0
		for _, g := range pq.Groups {
			attributed += groupCost(p.Env, g, nil)
		}
		for _, u := range pq.Updates {
			attributed += whatif.GetCost(p.Env, u, nil)
		}
		pq.glue = pq.BaseCost - attributed
		if pq.glue < 0 {
			pq.glue = 0
		}
		p.Queries = append(p.Queries, pq)
	}
	return p, nil
}

// groupCost is the cost of one access group under a configuration: the
// cheapest alternative.
func groupCost(env *whatif.Env, group []*whatif.Request, config []*catalog.Index) float64 {
	best := math.Inf(1)
	for _, r := range group {
		if c := whatif.GetCost(env, r, config); c < best {
			best = c
		}
	}
	if math.IsInf(best, 1) {
		return 0
	}
	return best
}

// QueryCost estimates one profiled query's cost under a configuration.
func (p *Profile) QueryCost(i int, config []*catalog.Index) float64 {
	pq := p.Queries[i]
	c := pq.glue
	for _, g := range pq.Groups {
		c += groupCost(p.Env, g, config)
	}
	for _, u := range pq.Updates {
		c += whatif.GetCost(p.Env, u, config)
	}
	return c
}

// TotalCost sums QueryCost over the workload (no transition costs).
func (p *Profile) TotalCost(config []*catalog.Index) float64 {
	total := 0.0
	for i := range p.Queries {
		total += p.QueryCost(i, config)
	}
	return total
}

// Candidates extracts the distinct best indexes over all requests,
// ordered by their individually-evaluated workload benefit (descending),
// capped at limit (0 = no cap).
func (p *Profile) Candidates(limit int) []*catalog.Index {
	byID := map[string]*catalog.Index{}
	for _, pq := range p.Queries {
		for _, g := range pq.Groups {
			for _, r := range g {
				ix := whatif.GetBestIndex(p.Env.Cat, r)
				if ix == nil || ix.Primary {
					continue
				}
				if p.Budget > 0 && p.CandidateBytes(ix) > p.Budget {
					continue
				}
				byID[ix.ID()] = ix
			}
		}
	}
	all := make([]*catalog.Index, 0, len(byID))
	for _, ix := range byID {
		all = append(all, ix)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].ID() < all[j].ID() })
	ct := newCostTable(p, all)
	base := ct.totalCost(nil)
	type scoredIx struct {
		ix    *catalog.Index
		score float64
	}
	var scoredList []scoredIx
	for c, ix := range all {
		scoredList = append(scoredList, scoredIx{ix: ix, score: base - ct.totalCost([]int{c})})
	}
	sort.Slice(scoredList, func(i, j int) bool {
		if scoredList[i].score != scoredList[j].score {
			return scoredList[i].score > scoredList[j].score
		}
		return scoredList[i].ix.ID() < scoredList[j].ix.ID()
	})
	var out []*catalog.Index
	for i, s := range scoredList {
		if limit > 0 && i >= limit {
			break
		}
		out = append(out, s.ix)
	}
	return out
}

// Recommendation is Offline-Set's output.
type Recommendation struct {
	Indexes []*catalog.Index
	// CreationCost is the upfront transition cost Σ B_I.
	CreationCost float64
	// WorkloadCost is the estimated workload cost under the chosen set
	// (excluding creation).
	WorkloadCost float64
}

// withMerges extends a candidate list with pairwise merges of its top
// members (the advisors' own merge step, mirroring [5]).
func (p *Profile) withMerges(cands []*catalog.Index) []*catalog.Index {
	var merged []*catalog.Index
	seen := map[string]bool{}
	for _, ix := range cands {
		seen[ix.ID()] = true
	}
	for i := 0; i < len(cands) && i < 12; i++ {
		for j := 0; j < len(cands) && j < 12; j++ {
			if i == j || !strings.EqualFold(cands[i].Table, cands[j].Table) {
				continue
			}
			m, err := catalog.Merge(cands[i], cands[j])
			if err != nil || seen[m.ID()] {
				continue
			}
			if p.Budget > 0 && p.CandidateBytes(m) > p.Budget {
				continue
			}
			seen[m.ID()] = true
			merged = append(merged, m)
		}
	}
	return append(cands, merged...)
}

// SetBased runs the Offline-Set advisor: greedy benefit-per-byte
// selection under the storage budget, with merged candidates considered
// alongside the atomic ones.
func SetBased(p *Profile, maxCandidates int) *Recommendation {
	cands := p.withMerges(p.Candidates(maxCandidates))
	ct := newCostTable(p, cands)
	gs := newGreedyState(ct)

	taken := make([]bool, len(cands))
	var chosen []*catalog.Index
	var used int64
	for {
		bestIdx := -1
		bestGain := 0.0
		for c, ix := range cands {
			if taken[c] {
				continue
			}
			size := p.CandidateBytes(ix)
			if p.Budget > 0 && used+size > p.Budget {
				continue
			}
			gain := gs.gainOf(c) - p.CandidateBuildCost(ix)
			if gain > bestGain {
				bestGain = gain
				bestIdx = c
			}
		}
		if bestIdx < 0 {
			break
		}
		taken[bestIdx] = true
		chosen = append(chosen, cands[bestIdx])
		used += p.CandidateBytes(cands[bestIdx])
		gs.add(bestIdx)
	}
	rec := &Recommendation{Indexes: chosen, WorkloadCost: gs.total()}
	for _, ix := range chosen {
		rec.CreationCost += p.CandidateBuildCost(ix)
	}
	return rec
}

// Schedule is Offline-Seq's output: per-query active sets.
type Schedule struct {
	// Active[i] is the configuration query i executes under.
	Active [][]*catalog.Index
	// PerQueryCost[i] includes transition costs paid before query i.
	PerQueryCost []float64
	// TotalCost is Σ PerQueryCost.
	TotalCost float64
}

// seqMaxIndexes bounds the candidate pool the sequence DP enumerates
// subsets over (2^seqMaxIndexes configurations).
const seqMaxIndexes = 7

// seqMaxSegments bounds the number of workload segments the DP runs
// over; statements are grouped into contiguous blocks.
const seqMaxSegments = 64

// SeqBased runs the Offline-Seq advisor: a dynamic program over
// (workload segment, configuration) in the style of [2]. The workload is
// partitioned into contiguous segments; configurations are the
// budget-feasible subsets of the top candidates (including merges); the
// DP charges real creation costs on every configuration change and picks
// the globally optimal configuration schedule at segment granularity.
func SeqBased(p *Profile, maxCandidates int) *Schedule {
	n := len(p.Queries)
	out := &Schedule{
		Active:       make([][]*catalog.Index, n),
		PerQueryCost: make([]float64, n),
	}
	if n == 0 {
		return out
	}

	// Top candidates by individual workload benefit.
	cands := p.withMerges(p.Candidates(maxCandidates))
	if len(cands) > seqMaxIndexes {
		rank := newCostTable(p, cands)
		base := rank.totalCost(nil)
		scores := make([]float64, len(cands))
		for c := range cands {
			scores[c] = base - rank.totalCost([]int{c})
		}
		order := make([]int, len(cands))
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(i, j int) bool { return scores[order[i]] > scores[order[j]] })
		top := make([]*catalog.Index, seqMaxIndexes)
		for i := 0; i < seqMaxIndexes; i++ {
			top[i] = cands[order[i]]
		}
		cands = top
	}
	k := len(cands)
	ct := newCostTable(p, cands)
	sizes := make([]int64, k)
	builds := make([]float64, k)
	for i, ix := range cands {
		sizes[i] = p.CandidateBytes(ix)
		builds[i] = p.CandidateBuildCost(ix)
	}

	// Budget-feasible subsets.
	var subsets []uint32
	subsetIxs := map[uint32][]*catalog.Index{}
	subsetIdxs := map[uint32][]int{}
	for m := uint32(0); m < 1<<k; m++ {
		var sz int64
		var ixs []*catalog.Index
		var idxs []int
		for b := 0; b < k; b++ {
			if m&(1<<b) != 0 {
				sz += sizes[b]
				ixs = append(ixs, cands[b])
				idxs = append(idxs, b)
			}
		}
		if p.Budget > 0 && sz > p.Budget {
			continue
		}
		subsets = append(subsets, m)
		subsetIxs[m] = ixs
		subsetIdxs[m] = idxs
	}

	// Segment the workload into ≤ seqMaxSegments contiguous blocks.
	segSize := (n + seqMaxSegments - 1) / seqMaxSegments
	var segStart []int
	for s := 0; s < n; s += segSize {
		segStart = append(segStart, s)
	}
	ns := len(segStart)
	segEnd := func(s int) int {
		if s+1 < ns {
			return segStart[s+1]
		}
		return n
	}

	// Per-segment cost under each subset.
	segCost := make([][]float64, ns)
	for s := 0; s < ns; s++ {
		segCost[s] = make([]float64, len(subsets))
		for si, m := range subsets {
			c := 0.0
			for i := segStart[s]; i < segEnd(s); i++ {
				c += ct.queryCost(i, subsetIdxs[m])
			}
			segCost[s][si] = c
		}
	}

	transition := func(from, to uint32) float64 {
		added := to &^ from
		c := 0.0
		for b := 0; b < k; b++ {
			if added&(1<<b) != 0 {
				c += builds[b]
			}
		}
		return c
	}

	// DP over segments.
	const inf = math.MaxFloat64 / 4
	dp := make([][]float64, ns)
	choice := make([][]int, ns)
	for s := range dp {
		dp[s] = make([]float64, len(subsets))
		choice[s] = make([]int, len(subsets))
	}
	for si, m := range subsets {
		dp[0][si] = transition(0, m) + segCost[0][si]
		choice[0][si] = -1
	}
	for s := 1; s < ns; s++ {
		for si, m := range subsets {
			best := inf
			bestPrev := 0
			for pi, pm := range subsets {
				v := dp[s-1][pi] + transition(pm, m)
				if v < best {
					best = v
					bestPrev = pi
				}
			}
			dp[s][si] = best + segCost[s][si]
			choice[s][si] = bestPrev
		}
	}

	// Backtrack the optimal configuration per segment.
	bestFinal := 0
	for si := range subsets {
		if dp[ns-1][si] < dp[ns-1][bestFinal] {
			bestFinal = si
		}
	}
	segSubset := make([]int, ns)
	cur := bestFinal
	for s := ns - 1; s >= 0; s-- {
		segSubset[s] = cur
		cur = choice[s][cur]
	}

	// Expand to per-query active sets and costs; transitions land on the
	// first statement of their segment.
	prev := uint32(0)
	for s := 0; s < ns; s++ {
		m := subsets[segSubset[s]]
		tr := transition(prev, m)
		prev = m
		for i := segStart[s]; i < segEnd(s); i++ {
			out.Active[i] = subsetIxs[m]
			out.PerQueryCost[i] = ct.queryCost(i, subsetIdxs[m])
			if i == segStart[s] {
				out.PerQueryCost[i] += tr
			}
			out.TotalCost += out.PerQueryCost[i]
		}
	}
	return out
}
