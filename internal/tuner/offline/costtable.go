package offline

import (
	"strings"

	"onlinetuner/internal/catalog"
	"onlinetuner/internal/whatif"
)

// costTable precomputes, for a fixed candidate list, every (query, group,
// candidate) implementation cost so that configuration costs become
// cheap min/sum arithmetic. It exploits two decompositions:
//
//   - groupCost(g, S) = min over I∈S of groupCost(g, {I}) — the heap
//     fallback is included in every per-candidate value, so minima
//     compose;
//   - update-shell cost is linear: base DML work plus a per-index
//     maintenance term for each same-table secondary in S.
type costTable struct {
	p     *Profile
	cands []*catalog.Index
	// groupBase[i][g] is group g's cost of query i under no candidates.
	groupBase [][]float64
	// groupCand[i][g][c] is group g's cost with only candidate c.
	groupCand [][][]float64
	// updBase[i] is the update-shell cost of query i with no candidates.
	updBase []float64
	// updPer[i][c] is candidate c's added maintenance on query i.
	updPer [][]float64
}

// newCostTable builds the table: O(queries × groups × candidates)
// ImplCost evaluations, done once.
func newCostTable(p *Profile, cands []*catalog.Index) *costTable {
	ct := &costTable{
		p:         p,
		cands:     cands,
		groupBase: make([][]float64, len(p.Queries)),
		groupCand: make([][][]float64, len(p.Queries)),
		updBase:   make([]float64, len(p.Queries)),
		updPer:    make([][]float64, len(p.Queries)),
	}
	for i, pq := range p.Queries {
		ct.groupBase[i] = make([]float64, len(pq.Groups))
		ct.groupCand[i] = make([][]float64, len(pq.Groups))
		for g, group := range pq.Groups {
			ct.groupBase[i][g] = groupCost(p.Env, group, nil)
			ct.groupCand[i][g] = make([]float64, len(cands))
			for c, ix := range cands {
				ct.groupCand[i][g][c] = groupCost(p.Env, group, []*catalog.Index{ix})
			}
		}
		ct.updPer[i] = make([]float64, len(cands))
		for _, u := range pq.Updates {
			ct.updBase[i] += whatif.GetCost(p.Env, u, nil)
			for c, ix := range cands {
				if !ix.Primary && strings.EqualFold(ix.Table, u.Table) {
					ct.updPer[i][c] += p.Env.MaintenancePerIndex(u)
				}
			}
		}
	}
	return ct
}

// queryCost evaluates query i under the candidate subset given as
// indices into cands.
func (ct *costTable) queryCost(i int, subset []int) float64 {
	cost := ct.p.Queries[i].glue + ct.updBase[i]
	for g := range ct.groupBase[i] {
		m := ct.groupBase[i][g]
		for _, c := range subset {
			if v := ct.groupCand[i][g][c]; v < m {
				m = v
			}
		}
		cost += m
	}
	for _, c := range subset {
		cost += ct.updPer[i][c]
	}
	return cost
}

// totalCost sums queryCost over the workload.
func (ct *costTable) totalCost(subset []int) float64 {
	t := 0.0
	for i := range ct.p.Queries {
		t += ct.queryCost(i, subset)
	}
	return t
}

// greedyState supports SetBased's incremental greedy: it tracks the
// current per-group minima so evaluating "add candidate c" is a single
// pass of max(0, cur−cand) sums.
type greedyState struct {
	ct *costTable
	// curMin[i][g] is group g's cost of query i under the chosen set.
	curMin [][]float64
	// maint is the accumulated maintenance of the chosen set.
	maint float64
}

func newGreedyState(ct *costTable) *greedyState {
	gs := &greedyState{ct: ct}
	gs.curMin = make([][]float64, len(ct.p.Queries))
	for i := range ct.p.Queries {
		gs.curMin[i] = append([]float64(nil), ct.groupBase[i]...)
	}
	return gs
}

// total returns the workload cost under the chosen set.
func (gs *greedyState) total() float64 {
	t := gs.maint
	for i := range gs.curMin {
		t += gs.ct.p.Queries[i].glue + gs.ct.updBase[i]
		for g := range gs.curMin[i] {
			t += gs.curMin[i][g]
		}
	}
	return t
}

// gainOf returns the workload saving of adding candidate c to the
// current set (before build cost).
func (gs *greedyState) gainOf(c int) float64 {
	gain := 0.0
	for i := range gs.curMin {
		for g := range gs.curMin[i] {
			if v := gs.ct.groupCand[i][g][c]; v < gs.curMin[i][g] {
				gain += gs.curMin[i][g] - v
			}
		}
		gain -= gs.ct.updPer[i][c]
	}
	return gain
}

// add commits candidate c to the set.
func (gs *greedyState) add(c int) {
	for i := range gs.curMin {
		for g := range gs.curMin[i] {
			if v := gs.ct.groupCand[i][g][c]; v < gs.curMin[i][g] {
				gs.curMin[i][g] = v
			}
		}
		gs.maint += gs.ct.updPer[i][c]
	}
}
