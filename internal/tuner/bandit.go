package tuner

import (
	"fmt"
	"math"
	"sort"

	"onlinetuner/internal/catalog"
	"onlinetuner/internal/engine"
	"onlinetuner/internal/whatif"
	"onlinetuner/internal/workload"
)

// BanditOptions tune the safety-budgeted bandit advisor.
type BanditOptions struct {
	// SafetyFactor is the k of the safety budget: the bandit never
	// creates an index unless its realized spend (query cost plus all
	// transition costs plus the new build) stays within k× the estimated
	// no-index cost of the stream so far. Must be > 1 — with no indexes
	// the two sides are equal, so k=1 admits nothing.
	SafetyFactor float64
	// MinPlays is the exploration floor: an arm must be observed this
	// many times before it can be created.
	MinPlays int
	// CreateMargin is the required ratio of accumulated net benefit to
	// build cost before creation (the bandit's exploitation threshold).
	CreateMargin float64
	// UCB scales the optimism bonus added to each arm's accumulated net
	// benefit: UCB × sqrt(ln(t) / plays) × meanSample.
	UCB float64
	// Grace is how many statements a created index is held before the
	// regression check may drop it.
	Grace int
	// DropFraction drops a created index once its realized net benefit
	// since creation falls below −DropFraction × build cost.
	DropFraction float64
	// MaxArms bounds the candidate pool (first-come, by discovery order).
	MaxArms int
}

// DefaultBanditOptions returns the racing defaults.
func DefaultBanditOptions() BanditOptions {
	return BanditOptions{
		SafetyFactor: 1.5,
		MinPlays:     6,
		CreateMargin: 1.0,
		UCB:          0.5,
		Grace:        10,
		DropFraction: 0.25,
		MaxArms:      32,
	}
}

// arm is one candidate index's bandit state.
type arm struct {
	ix    *catalog.Index
	plays int
	// net is the accumulated per-statement benefit sample: query savings
	// minus update maintenance the index would have cost.
	net float64
	// absSum accumulates |sample| for the optimism bonus scale.
	absSum float64
	// backoff divides the arm's score after each regression drop.
	backoff float64
	// live is the created clone (nil while hypothetical).
	live *catalog.Index
	// sinceCreate is the realized net benefit since creation.
	sinceCreate float64
	createdAt   int
	buildCost   float64
}

// Bandit is a deterministic UCB-style index tuner with a hard safety
// budget, modeled on the DBA-bandits line of work: each candidate index
// is an arm; each statement pays out a what-if benefit sample; creation
// requires both enough accumulated evidence (net ≥ margin × build) and
// the safety gate (spend stays within k× the no-index baseline); a
// created arm that regresses is dropped and its score backed off.
// Everything is derived from what-if costs and counters — no wall clock,
// no randomness — so a race cell replays byte-identically.
type Bandit struct {
	opts BanditOptions
	db   *engine.DB
	env  *whatif.Env

	arms  map[string]*arm
	order []string // arm ids in discovery order (deterministic iteration)

	// realized spend and no-index baseline, both cumulative.
	cumActual     float64
	cumBase       float64
	cumTransition float64

	n        int // statements observed
	creates  int
	counters Counters
}

// NewBandit constructs the bandit advisor.
func NewBandit(opts BanditOptions) *Bandit {
	if opts.SafetyFactor <= 1 {
		opts.SafetyFactor = DefaultBanditOptions().SafetyFactor
	}
	return &Bandit{opts: opts, arms: map[string]*arm{}}
}

func (b *Bandit) Name() string { return "Bandit" }

func (b *Bandit) Start(db *engine.DB, _ *workload.Workload) error {
	b.db = db
	b.env = db.WhatIfEnv()
	return nil
}

func (b *Bandit) BeforeStatement(int) (float64, error) { return 0, nil }

func (b *Bandit) Close()             {}
func (b *Bandit) Counters() Counters { return b.counters }

// AfterStatement observes statement i, updates the baseline and every
// arm's evidence, applies regression drops, and — if an arm has earned
// it and the safety budget allows — creates at most one index.
func (b *Bandit) AfterStatement(i int, info *engine.QueryInfo) (float64, error) {
	b.n++
	b.cumActual += info.EstCost
	var reqs []*whatif.Request
	if info.Result != nil {
		reqs = info.Result.Tree.Requests()
	}
	config := b.db.Configuration()

	// No-index baseline: the statement's cost had no secondary index ever
	// existed. Queries get more expensive without indexes; updates get
	// cheaper (no maintenance). Both directions flow through the same
	// what-if delta.
	base := info.EstCost
	for _, r := range reqs {
		base += whatif.GetCost(b.env, r, nil) - whatif.GetCost(b.env, r, config)
	}
	if base < 0 {
		base = 0
	}
	b.cumBase += base

	b.observeArms(i, reqs, config)
	b.applyRegressionDrops(i, reqs, config)
	transition, err := b.maybeCreate(i)
	b.cumTransition += transition
	return transition, err
}

// observeArms discovers candidates from the statement's requests and
// pays every arm its benefit sample.
func (b *Bandit) observeArms(i int, reqs []*whatif.Request, config []*catalog.Index) {
	for _, r := range reqs {
		if r.Kind == whatif.KindUpdate {
			continue
		}
		ix := whatif.GetBestIndex(b.db.Cat, r)
		if ix == nil || ix.Primary {
			continue
		}
		ix = ix.Canonicalize()
		id := ix.ID()
		if b.arms[id] == nil {
			if len(b.order) >= b.opts.MaxArms {
				continue
			}
			b.arms[id] = &arm{ix: ix, backoff: 1}
			b.order = append(b.order, id)
		}
	}
	for _, id := range b.order {
		a := b.arms[id]
		if a.live != nil {
			continue // created arms accrue sinceCreate instead
		}
		sample := 0.0
		with := append(append([]*catalog.Index{}, config...), a.ix)
		for _, r := range reqs {
			sample += whatif.GetCost(b.env, r, config) - whatif.GetCost(b.env, r, with)
		}
		a.plays++
		a.net += sample
		a.absSum += math.Abs(sample)
	}
}

// applyRegressionDrops charges live arms their realized delta and drops
// any whose net since creation has sunk below the back-off threshold.
func (b *Bandit) applyRegressionDrops(i int, reqs []*whatif.Request, config []*catalog.Index) {
	for _, id := range b.order {
		a := b.arms[id]
		if a.live == nil {
			continue
		}
		without := configWithout(config, a.live.ID())
		delta := 0.0
		for _, r := range reqs {
			delta += whatif.GetCost(b.env, r, without) - whatif.GetCost(b.env, r, config)
		}
		a.sinceCreate += delta
		if i-a.createdAt < b.opts.Grace {
			continue
		}
		if a.sinceCreate < -b.opts.DropFraction*a.buildCost {
			// Regression: the index costs more (maintenance) than it saves.
			// Drop it and back the arm off so re-creation needs twice the
			// evidence.
			if err := b.db.DropIndex(a.live); err == nil {
				b.counters.IndexesDropped++
			}
			a.live = nil
			a.backoff *= 2
			a.net = 0
			a.absSum = 0
			a.plays = 0
			a.sinceCreate = 0
			config = b.db.Configuration()
		}
	}
}

// maybeCreate creates the best-scoring eligible arm, if any, under the
// safety budget. Returns the transition (build) cost charged.
func (b *Bandit) maybeCreate(i int) (float64, error) {
	bestID := ""
	bestScore := 0.0
	for _, id := range b.order {
		a := b.arms[id]
		if a.live != nil || a.plays < b.opts.MinPlays {
			continue
		}
		mean := a.absSum / float64(a.plays)
		bonus := b.opts.UCB * math.Sqrt(math.Log(float64(b.n+1))/float64(a.plays)) * mean
		score := (a.net + bonus) / a.backoff
		build := whatif.BuildCost(b.env, a.ix)
		if score < b.opts.CreateMargin*build {
			continue
		}
		if bestID == "" || score > bestScore {
			bestID, bestScore = id, score
		}
	}
	if bestID == "" {
		return 0, nil
	}
	a := b.arms[bestID]
	build := whatif.BuildCost(b.env, a.ix)

	// Safety gate: realized spend plus this build must stay within k× the
	// no-index baseline. The violations counter only moves if a creation
	// proceeds while over budget — by construction it never does, and the
	// harness asserts it stays zero.
	if b.cumActual+b.cumTransition+build > b.opts.SafetyFactor*b.cumBase {
		b.counters.SafetyDeferrals++
		return 0, nil
	}
	if over := b.cumActual + b.cumTransition + build - b.opts.SafetyFactor*b.cumBase; over > 0 {
		b.counters.SafetyViolations++
	}

	clone := &catalog.Index{
		Name:    fmt.Sprintf("bandit_%d", b.creates),
		Table:   a.ix.Table,
		Columns: a.ix.Columns,
	}
	b.creates++
	b.counters.BuildsStarted++
	if err := b.db.CreateIndex(clone); err != nil {
		b.counters.BuildsFailed++
		return 0, fmt.Errorf("tuner: bandit create %v: %w", clone, err)
	}
	b.counters.BuildsCompleted++
	b.counters.IndexesCreated++
	a.live = clone.Canonicalize()
	a.createdAt = i
	a.sinceCreate = 0
	a.buildCost = build
	return build, nil
}

// configWithout filters one index out of a configuration.
func configWithout(config []*catalog.Index, id string) []*catalog.Index {
	out := make([]*catalog.Index, 0, len(config))
	for _, ix := range config {
		if ix.ID() != id {
			out = append(out, ix)
		}
	}
	return out
}

// sortedArmIDs is a testing hook: the arm ids in deterministic order.
func (b *Bandit) sortedArmIDs() []string {
	out := append([]string{}, b.order...)
	sort.Strings(out)
	return out
}
