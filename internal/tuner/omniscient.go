package tuner

import (
	"fmt"
	"sort"

	"onlinetuner/internal/catalog"
	"onlinetuner/internal/engine"
	"onlinetuner/internal/tuner/offline"
	"onlinetuner/internal/whatif"
	"onlinetuner/internal/workload"
)

// Omniscient wraps the offline sequence advisor (the CoPhy-shaped
// baseline) behind the Advisor shell: at Start it profiles the ENTIRE
// statement stream on a throwaway copy of the database — knowledge no
// online policy has — and commits to the resulting create/drop schedule,
// replayed position-by-position through BeforeStatement. Race cells use
// its realized total as the reference the regret column is anchored
// against.
type Omniscient struct {
	maxCandidates int
	db            *engine.DB
	sched         *offline.Schedule
	live          map[string]*catalog.Index
	liveOrder     []string
	creates       int
	counters      Counters
}

// NewOmniscient wraps the offline sequence advisor; maxCandidates ≤ 0
// selects the offline package's default sizing.
func NewOmniscient(maxCandidates int) *Omniscient {
	if maxCandidates <= 0 {
		maxCandidates = 32
	}
	return &Omniscient{maxCandidates: maxCandidates, live: map[string]*catalog.Index{}}
}

func (o *Omniscient) Name() string { return "Offline-Seq" }

// Start profiles the full workload on a fresh database instance (the
// race cell's own database must not see the profiling replay) and
// computes the schedule.
func (o *Omniscient) Start(db *engine.DB, w *workload.Workload) error {
	o.db = db
	profDB := w.NewDB()
	p, err := offline.ProfileWorkload(profDB, w.Statements)
	profDB.Close()
	if err != nil {
		return fmt.Errorf("tuner: omniscient profile: %w", err)
	}
	o.sched = offline.SeqBased(p, o.maxCandidates)
	return nil
}

// BeforeStatement transitions into the scheduled configuration for
// statement i, charging build costs; drops are free, as in the paper's
// cost model. Iteration is over sorted ids so the transition order — and
// with it the decision log and index names — is deterministic.
func (o *Omniscient) BeforeStatement(i int) (float64, error) {
	want := map[string]*catalog.Index{}
	if o.sched != nil && i < len(o.sched.Active) {
		for _, ix := range o.sched.Active[i] {
			want[ix.ID()] = ix
		}
	}
	transition := 0.0
	for _, id := range append([]string{}, o.liveOrder...) {
		if want[id] == nil {
			if err := o.db.DropIndex(o.live[id]); err != nil {
				return transition, fmt.Errorf("tuner: omniscient drop: %w", err)
			}
			o.counters.IndexesDropped++
			delete(o.live, id)
			o.liveOrder = removeString(o.liveOrder, id)
		}
	}
	wantIDs := make([]string, 0, len(want))
	for id := range want {
		wantIDs = append(wantIDs, id)
	}
	sort.Strings(wantIDs)
	for _, id := range wantIDs {
		if o.live[id] != nil {
			continue
		}
		ix := want[id]
		clone := &catalog.Index{Name: fmt.Sprintf("seq_%d", o.creates), Table: ix.Table, Columns: ix.Columns}
		o.creates++
		transition += whatif.BuildCost(o.db.WhatIfEnv(), clone)
		o.counters.BuildsStarted++
		if err := o.db.CreateIndex(clone); err != nil {
			o.counters.BuildsFailed++
			return transition, fmt.Errorf("tuner: omniscient create %v: %w", clone, err)
		}
		o.counters.BuildsCompleted++
		o.counters.IndexesCreated++
		o.live[id] = clone.Canonicalize()
		o.liveOrder = append(o.liveOrder, id)
	}
	return transition, nil
}

func (o *Omniscient) AfterStatement(int, *engine.QueryInfo) (float64, error) { return 0, nil }
func (o *Omniscient) Close()                                                 {}
func (o *Omniscient) Counters() Counters                                     { return o.counters }

func removeString(xs []string, s string) []string {
	out := xs[:0]
	for _, x := range xs {
		if x != s {
			out = append(out, x)
		}
	}
	return out
}
