package tuner

import (
	"strings"
	"testing"

	"onlinetuner/internal/core"
	"onlinetuner/internal/engine"
	"onlinetuner/internal/workload"
)

// runAdvisor drives one advisor over a workload exactly the way the
// race driver does: BeforeStatement, Exec, AfterStatement per statement,
// accumulating estimated cost plus transitions.
func runAdvisor(t *testing.T, a Advisor, w *workload.Workload) (total float64, db *engine.DB) {
	t.Helper()
	db = w.NewDB()
	if err := a.Start(db, w); err != nil {
		t.Fatalf("%s: Start: %v", a.Name(), err)
	}
	for i, stmt := range w.Statements {
		pre, err := a.BeforeStatement(i)
		if err != nil {
			t.Fatalf("%s: BeforeStatement(%d): %v", a.Name(), i, err)
		}
		_, info, err := db.Exec(stmt)
		if err != nil {
			t.Fatalf("%s: Exec(%d) %q: %v", a.Name(), i, stmt, err)
		}
		post, err := a.AfterStatement(i, info)
		if err != nil {
			t.Fatalf("%s: AfterStatement(%d): %v", a.Name(), i, err)
		}
		total += info.EstCost + pre + post
	}
	a.Close()
	return total, db
}

func stableWorkload(statements int) *workload.Workload {
	w, err := workload.BuildScenario("stable", workload.ScenarioOptions{
		Scale: 0.1, Seed: 5, Statements: statements,
	})
	if err != nil {
		panic(err)
	}
	return w
}

func TestRegistry(t *testing.T) {
	names := AdvisorNames()
	if len(names) < 5 {
		t.Fatalf("want ≥5 advisors, got %v", names)
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate advisor name %q", n)
		}
		seen[n] = true
		a, err := NewAdvisor(strings.ToUpper(n))
		if err != nil {
			t.Fatalf("case-insensitive NewAdvisor(%q): %v", n, err)
		}
		if a.Name() != n {
			t.Fatalf("advisor %q reports name %q", n, a.Name())
		}
	}
	if _, err := NewAdvisor("nope"); err == nil {
		t.Fatal("unknown advisor should error")
	}
}

// TestNoTunerNeverActs: the control's counters stay zero and its
// database keeps zero secondary indexes.
func TestNoTunerNeverActs(t *testing.T) {
	w := stableWorkload(60)
	_, db := runAdvisor(t, &NoTuner{}, w)
	defer db.Close()
	if c := (&NoTuner{}).Counters(); c != (Counters{}) {
		t.Fatalf("NoTuner counters moved: %+v", c)
	}
	if n := len(db.Configuration()); n != 0 {
		t.Fatalf("NoTuner database has %d secondary indexes", n)
	}
}

// TestBanditCreatesUnderRepetition: on a stable repeated-template
// workload the bandit accumulates evidence and creates at least one
// index, beating the untuned total; counters reconcile and the safety
// budget is never violated.
func TestBanditCreatesUnderRepetition(t *testing.T) {
	w := stableWorkload(100)
	base, baseDB := runAdvisor(t, &NoTuner{}, w)
	baseDB.Close()

	b := NewBandit(DefaultBanditOptions())
	total, db := runAdvisor(t, b, w)
	defer db.Close()
	c := b.Counters()
	if c.IndexesCreated == 0 {
		t.Fatalf("bandit never created an index (counters %+v)", c)
	}
	if c.SafetyViolations != 0 {
		t.Fatalf("bandit violated the safety budget %d times", c.SafetyViolations)
	}
	if c.BuildsStarted != c.BuildsCompleted+c.BuildsAborted+c.BuildsFailed {
		t.Fatalf("builds do not reconcile: %+v", c)
	}
	if total >= base {
		t.Fatalf("bandit total %.1f not better than untuned %.1f", total, base)
	}
}

// TestBanditSafetyGateDefers: with a safety factor barely above 1 the
// headroom never covers a build, so the bandit defers instead of
// creating — and still never records a violation.
func TestBanditSafetyGateDefers(t *testing.T) {
	opts := DefaultBanditOptions()
	opts.SafetyFactor = 1.0001
	b := NewBandit(opts)
	w := stableWorkload(60)
	_, db := runAdvisor(t, b, w)
	defer db.Close()
	c := b.Counters()
	if c.IndexesCreated != 0 {
		t.Fatalf("k=1.0001 should starve creation, got %+v", c)
	}
	if c.SafetyDeferrals == 0 {
		t.Fatalf("expected safety deferrals, got %+v", c)
	}
	if c.SafetyViolations != 0 {
		t.Fatalf("safety violations must be zero, got %+v", c)
	}
}

// TestManualDBAOneShot: nothing before the warmup closes, a one-shot
// creation right after, and no further changes ever.
func TestManualDBAOneShot(t *testing.T) {
	m := NewManualDBA(ManualOptions{Warmup: 20, TopK: 2})
	w := stableWorkload(60)
	db := w.NewDB()
	defer db.Close()
	if err := m.Start(db, w); err != nil {
		t.Fatal(err)
	}
	for i, stmt := range w.Statements {
		pre, err := m.BeforeStatement(i)
		if err != nil {
			t.Fatal(err)
		}
		if i < 20 && pre != 0 {
			t.Fatalf("manual DBA acted at statement %d, inside warmup", i)
		}
		if i == 20 && pre == 0 {
			t.Fatalf("manual DBA failed to act when the warmup closed")
		}
		if i > 20 && pre != 0 {
			t.Fatalf("manual DBA acted twice (statement %d)", i)
		}
		_, info, err := db.Exec(stmt)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.AfterStatement(i, info); err != nil {
			t.Fatal(err)
		}
	}
	c := m.Counters()
	if c.IndexesCreated == 0 || int(c.IndexesCreated) > 2 {
		t.Fatalf("manual DBA created %d indexes, want 1..2", c.IndexesCreated)
	}
	if c.BuildsStarted != c.BuildsCompleted+c.BuildsAborted+c.BuildsFailed {
		t.Fatalf("builds do not reconcile: %+v", c)
	}
}

// TestOmniscientRuns: the offline wrap profiles, schedules, transitions,
// and reconciles; with full foresight on a stable workload it must not
// lose to the untuned control.
func TestOmniscientRuns(t *testing.T) {
	w := stableWorkload(80)
	base, baseDB := runAdvisor(t, &NoTuner{}, w)
	baseDB.Close()

	o := NewOmniscient(0)
	total, db := runAdvisor(t, o, w)
	defer db.Close()
	c := o.Counters()
	if c.BuildsStarted != c.BuildsCompleted+c.BuildsAborted+c.BuildsFailed {
		t.Fatalf("builds do not reconcile: %+v", c)
	}
	if total > base {
		t.Fatalf("omniscient total %.1f worse than untuned %.1f", total, base)
	}
}

// TestOnlinePTWrapper: the wrapper's counters come straight off the core
// tuner and reconcile under the synchronous default options.
func TestOnlinePTWrapper(t *testing.T) {
	o := NewOnlinePT(core.DefaultOptions())
	w := stableWorkload(80)
	_, db := runAdvisor(t, o, w)
	defer db.Close()
	c := o.Counters()
	if c.BuildsStarted != c.BuildsCompleted+c.BuildsAborted+c.BuildsFailed {
		t.Fatalf("builds do not reconcile: %+v", c)
	}
	if c.IndexesCreated == 0 {
		t.Fatalf("OnlinePT never created an index on the stable workload: %+v", c)
	}
}

// TestConstructorDefaultsAndAccessors covers the zero-options default
// filling, the idle-state accessors, and the small pure helpers that
// the race driver relies on but a full race never exercises directly.
func TestConstructorDefaultsAndAccessors(t *testing.T) {
	def := DefaultBanditOptions()
	b := NewBandit(BanditOptions{})
	if b.opts.SafetyFactor != def.SafetyFactor {
		t.Fatalf("zero-options bandit got SafetyFactor %.2f, want default %.2f",
			b.opts.SafetyFactor, def.SafetyFactor)
	}
	b.arms["b"] = &arm{}
	b.arms["a"] = &arm{}
	b.order = append(b.order, "b", "a")
	if ids := b.sortedArmIDs(); len(ids) != 2 || ids[0] != "a" || ids[1] != "b" {
		t.Fatalf("sortedArmIDs = %v, want [a b]", ids)
	}
	b.Close()

	m := NewManualDBA(ManualOptions{})
	if m.opts.Warmup != DefaultManualOptions().Warmup || m.opts.TopK != DefaultManualOptions().TopK {
		t.Fatalf("zero-options manual DBA got %+v, want defaults %+v", m.opts, DefaultManualOptions())
	}
	m.Close()

	var nt NoTuner
	nt.Close()
	if c := nt.Counters(); c != (Counters{}) {
		t.Fatalf("NoTuner counters not zero: %+v", c)
	}

	// Unstarted OnlinePT: every accessor must degrade to zero values
	// rather than dereferencing a nil tuner.
	o := NewOnlinePT(core.DefaultOptions())
	o.Close()
	if d := o.Decisions(); d != nil {
		t.Fatalf("unstarted OnlinePT has decisions: %v", d)
	}
	if m := o.Metrics(); m.TransitionCost != 0 {
		t.Fatalf("unstarted OnlinePT has metrics: %+v", m)
	}
	if c := o.Counters(); c != (Counters{}) {
		t.Fatalf("unstarted OnlinePT counters not zero: %+v", c)
	}

	om := NewOmniscient(0)
	om.Close()
	if got := removeString([]string{"a", "b", "a", "c"}, "a"); len(got) != 2 || got[0] != "b" || got[1] != "c" {
		t.Fatalf("removeString = %v, want [b c]", got)
	}
	if got := removeString(nil, "x"); len(got) != 0 {
		t.Fatalf("removeString(nil) = %v, want empty", got)
	}

	if _, err := NewAdvisor("no-such-advisor"); err == nil {
		t.Fatal("NewAdvisor accepted an unknown name")
	}
}

// TestOnlinePTAccessorsAfterRun: the started wrapper exposes the core
// tuner's decision log and metrics for the differential test.
func TestOnlinePTAccessorsAfterRun(t *testing.T) {
	o := NewOnlinePT(core.DefaultOptions())
	w := stableWorkload(60)
	_, db := runAdvisor(t, o, w)
	defer db.Close()
	if len(o.Decisions()) == 0 {
		t.Fatal("started OnlinePT produced no decisions on the stable workload")
	}
	if o.Metrics().Queries == 0 {
		t.Fatal("started OnlinePT metrics saw no queries")
	}
}

// TestBanditRegressionDrop forces the regression path: after the bandit
// creates an index on the stable workload, we poison the arm's realized
// net so the next observation drops the index, doubles the back-off,
// and resets the evidence.
func TestBanditRegressionDrop(t *testing.T) {
	b := NewBandit(DefaultBanditOptions())
	w := stableWorkload(80)
	_, db := runAdvisor(t, b, w)
	defer db.Close()
	if b.counters.IndexesCreated == 0 {
		t.Fatal("bandit never created on the stable workload")
	}
	var live *arm
	for _, id := range b.sortedArmIDs() {
		if a := b.arms[id]; a.live != nil {
			live = a
			break
		}
	}
	if live == nil {
		t.Fatal("no live arm despite a creation")
	}
	before := len(db.Configuration())
	oldBackoff := live.backoff
	live.sinceCreate = -1e12 // far below -DropFraction×buildCost
	live.createdAt = -b.opts.Grace - 1

	dropped := b.counters.IndexesDropped
	b.applyRegressionDrops(1_000_000, nil, db.Configuration())

	if b.counters.IndexesDropped != dropped+1 {
		t.Fatalf("drop not counted: %d -> %d", dropped, b.counters.IndexesDropped)
	}
	if live.live != nil {
		t.Fatal("arm still marked live after regression drop")
	}
	if live.backoff != oldBackoff*2 {
		t.Fatalf("backoff %v, want doubled %v", live.backoff, oldBackoff*2)
	}
	if live.plays != 0 || live.net != 0 || live.sinceCreate != 0 {
		t.Fatalf("evidence not reset: %+v", live)
	}
	if got := len(db.Configuration()); got != before-1 {
		t.Fatalf("index not dropped from db: %d -> %d indexes", before, got)
	}
}
