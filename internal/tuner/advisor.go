// Package tuner defines the Advisor interface the racing harness drives:
// a uniform shell over competing physical-design tuners — the paper's
// OnlinePT, a bandit-style tuner with a safety budget (DBA bandits,
// Perera et al.), the offline sequence advisor as the omniscient
// baseline (CoPhy-shaped), and no-tuner / manual-DBA controls. Every
// advisor races on an identical statement stream; the driver charges
// each statement its estimated execution cost plus whatever transition
// cost the advisor paid around it.
package tuner

import (
	"fmt"
	"strings"

	"onlinetuner/internal/core"
	"onlinetuner/internal/engine"
	"onlinetuner/internal/obs"
	"onlinetuner/internal/workload"
)

// Counters is the advisor-side accounting every race cell reports. The
// harness asserts the reconciliation invariant
// builds_started == builds_completed + builds_aborted + builds_failed
// and that safety_violations is zero in every cell.
type Counters struct {
	IndexesCreated   int64 `json:"indexes_created"`
	IndexesDropped   int64 `json:"indexes_dropped"`
	BuildsStarted    int64 `json:"builds_started"`
	BuildsCompleted  int64 `json:"builds_completed"`
	BuildsAborted    int64 `json:"builds_aborted"`
	BuildsFailed     int64 `json:"builds_failed"`
	SafetyViolations int64 `json:"safety_violations"`
	SafetyDeferrals  int64 `json:"safety_deferrals"`
}

// Advisor is one tuning policy under race conditions. The driver calls
// Start once, then for each statement i: BeforeStatement(i), Exec,
// AfterStatement(i, info). Both hooks return the transition cost (index
// build/drop work) the advisor charged at that point; statement i's
// total is info.EstCost plus both returns.
type Advisor interface {
	Name() string
	// Start binds the advisor to the cell's database and workload before
	// any statement executes. The workload is the full statement stream —
	// only the omniscient baseline may peek past the current statement.
	Start(db *engine.DB, w *workload.Workload) error
	// BeforeStatement may transition the physical configuration ahead of
	// statement i and returns the transition cost charged to i.
	BeforeStatement(i int) (float64, error)
	// AfterStatement observes statement i's execution. Advisors whose
	// changes fire inside Exec (OnlinePT's observer) report those
	// transition costs here.
	AfterStatement(i int, info *engine.QueryInfo) (float64, error)
	// Close releases advisor resources at race end.
	Close()
	Counters() Counters
}

// Factory names and constructs one advisor for the registry.
type Factory struct {
	Name        string
	Description string
	New         func() Advisor
}

// Advisors returns the racing field in canonical order.
func Advisors() []Factory {
	return []Factory{
		{
			Name:        "NoTuner",
			Description: "control: never touches the physical design",
			New:         func() Advisor { return &NoTuner{} },
		},
		{
			Name:        "OnlinePT",
			Description: "the paper's online tuner (Figure 6) behind the Advisor shell",
			New:         func() Advisor { return NewOnlinePT(core.DefaultOptions()) },
		},
		{
			Name:        "Bandit",
			Description: "UCB-style index arms with a k× no-index safety budget and regression back-off",
			New:         func() Advisor { return NewBandit(DefaultBanditOptions()) },
		},
		{
			Name:        "ManualDBA",
			Description: "control: one-shot creation of the top candidates after a warmup window",
			New:         func() Advisor { return NewManualDBA(DefaultManualOptions()) },
		},
		{
			Name:        "Offline-Seq",
			Description: "omniscient baseline: the offline sequence advisor replayed through the shell",
			New:         func() Advisor { return NewOmniscient(0) },
		},
	}
}

// AdvisorNames lists the canonical advisor names in order.
func AdvisorNames() []string {
	var out []string
	for _, f := range Advisors() {
		out = append(out, f.Name)
	}
	return out
}

// NewAdvisor constructs an advisor by (case-insensitive) name.
func NewAdvisor(name string) (Advisor, error) {
	for _, f := range Advisors() {
		if strings.EqualFold(f.Name, name) {
			return f.New(), nil
		}
	}
	return nil, fmt.Errorf("tuner: unknown advisor %q (want one of %s)",
		name, strings.Join(AdvisorNames(), "|"))
}

// NoTuner is the do-nothing control. Its counters must stay zero — the
// harness asserts it.
type NoTuner struct{}

func (*NoTuner) Name() string                                           { return "NoTuner" }
func (*NoTuner) Start(*engine.DB, *workload.Workload) error             { return nil }
func (*NoTuner) BeforeStatement(int) (float64, error)                   { return 0, nil }
func (*NoTuner) AfterStatement(int, *engine.QueryInfo) (float64, error) { return 0, nil }
func (*NoTuner) Close()                                                 {}
func (*NoTuner) Counters() Counters                                     { return Counters{} }

// OnlinePT wraps core.Tuner behind the Advisor interface. The tuner's
// observer fires inside db.Exec, so BeforeStatement is free and
// AfterStatement reads the transition-cost delta off the tuner's own
// metrics — the wrapper adds no decision point of its own, which the
// differential test in internal/obs/difftest proves byte-identical to a
// direct core.Attach run.
type OnlinePT struct {
	opts core.Options
	tn   *core.Tuner
	prev float64
}

// NewOnlinePT wraps the paper's tuner with the given options. Races use
// synchronous builds (DefaultOptions) so the reconciliation invariant
// holds exactly; Close on a pending async build would discard work
// without counting it.
func NewOnlinePT(opts core.Options) *OnlinePT {
	return &OnlinePT{opts: opts}
}

func (o *OnlinePT) Name() string { return "OnlinePT" }

func (o *OnlinePT) Start(db *engine.DB, _ *workload.Workload) error {
	o.tn = core.Attach(db, o.opts)
	o.prev = 0
	return nil
}

func (o *OnlinePT) BeforeStatement(int) (float64, error) { return 0, nil }

func (o *OnlinePT) AfterStatement(_ int, _ *engine.QueryInfo) (float64, error) {
	m := o.tn.Metrics()
	d := m.TransitionCost - o.prev
	o.prev = m.TransitionCost
	return d, nil
}

func (o *OnlinePT) Close() {
	if o.tn != nil {
		o.tn.Close()
	}
}

func (o *OnlinePT) Counters() Counters {
	if o.tn == nil {
		return Counters{}
	}
	m := o.tn.Metrics()
	c := Counters{
		BuildsStarted:   m.BuildsStarted,
		BuildsCompleted: m.BuildsCompleted,
		BuildsAborted:   m.BuildsAborted,
		BuildsFailed:    m.BuildsFailed,
	}
	for _, e := range o.tn.Events() {
		switch e.Kind {
		case core.EvCreate:
			c.IndexesCreated++
		case core.EvDrop:
			c.IndexesDropped++
		}
	}
	return c
}

// Decisions exposes the wrapped tuner's structured decision log for the
// differential test.
func (o *OnlinePT) Decisions() []obs.Decision {
	if o.tn == nil {
		return nil
	}
	return o.tn.Decisions()
}

// Metrics exposes the wrapped tuner's metrics for the differential test.
func (o *OnlinePT) Metrics() core.Metrics {
	if o.tn == nil {
		return core.Metrics{}
	}
	return o.tn.Metrics()
}
