package vec

import (
	"math"

	"onlinetuner/internal/datum"
)

// TopK is a streaming candidate filter for bounded TopN execution. It
// tracks the k best raw values seen so far in a bounded heap; Prune
// returns the positions of a chunk whose value could still place in the
// top k. The result is a superset of the true top-k positions — ties and
// ordinal ranking are resolved by the caller's exact (key, ordinal) heap
// — so the filter is sound by construction. Chunks it cannot compare
// exactly (NULLs, strings, NaN floats, mixed or changing kinds) pass
// through whole and never tighten the threshold.
type TopK struct {
	k    int
	desc bool
	// class locks the value representation once the first chunk prunes:
	// KInt for the int-payload kinds, KFloat for floats. KNull = unset.
	class datum.Kind
	hi    []int64
	hf    []float64
}

// NewTopK returns a filter for the k smallest (desc: largest) values.
func NewTopK(k int, desc bool) *TopK { return &TopK{k: k, desc: desc} }

// Prune appends to out the chunk positions that may still reach the top
// k, updating the internal threshold with the chunk's values. A chunk
// the filter cannot handle exactly is passed through in full.
func (t *TopK) Prune(c *Column, out Sel) Sel {
	out = out[:0]
	n := c.Len()
	if t.k <= 0 {
		return out
	}
	pass := func() Sel {
		for i := 0; i < n; i++ {
			out = append(out, int32(i))
		}
		return out
	}
	if !c.Uniform || c.HasNulls || c.Kind == datum.KString || c.Kind == datum.KNull {
		return pass()
	}
	class := datum.KInt
	if c.Kind == datum.KFloat {
		class = datum.KFloat
		// IEEE NaN breaks the heap invariant the prune relies on; a chunk
		// containing one is passed through untouched.
		for _, v := range c.F {
			if math.IsNaN(v) {
				return pass()
			}
		}
	}
	if t.class == datum.KNull {
		t.class = class
	} else if t.class != class {
		return pass()
	}
	if class == datum.KFloat {
		return pruneChunk(&t.hf, t.k, t.desc, c.F, out)
	}
	return pruneChunk(&t.hi, t.k, t.desc, c.I, out)
}

// pruneChunk runs the bounded heap over one chunk. The heap root is the
// worst value currently kept; a position is a candidate when the heap is
// not yet full or its value is at least as good as the root (ties kept —
// the exact heap downstream settles them by ordinal).
func pruneChunk[T int64 | float64](h *[]T, k int, desc bool, vals []T, out Sel) Sel {
	worse := func(a, b T) bool { return a > b }
	if desc {
		worse = func(a, b T) bool { return a < b }
	}
	hp := *h
	for i, v := range vals {
		if len(hp) < k {
			out = append(out, int32(i))
			hp = append(hp, v)
			// Sift up.
			for j := len(hp) - 1; j > 0; {
				p := (j - 1) / 2
				if !worse(hp[j], hp[p]) {
					break
				}
				hp[j], hp[p] = hp[p], hp[j]
				j = p
			}
			continue
		}
		if worse(v, hp[0]) {
			continue
		}
		out = append(out, int32(i))
		if v == hp[0] {
			continue
		}
		// Strictly better than the worst kept value: replace and sift down.
		hp[0] = v
		for j := 0; ; {
			l, r := 2*j+1, 2*j+2
			w := j
			if l < len(hp) && worse(hp[l], hp[w]) {
				w = l
			}
			if r < len(hp) && worse(hp[r], hp[w]) {
				w = r
			}
			if w == j {
				break
			}
			hp[j], hp[w] = hp[w], hp[j]
			j = w
		}
	}
	*h = hp
	return out
}
