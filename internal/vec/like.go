package vec

import "strings"

// LikeMatcher is a compiled SQL LIKE pattern: % matches any run of
// bytes (including empty), _ matches exactly one byte, everything else
// matches itself. Matching is byte-wise and case-sensitive, with no
// escape syntax.
//
// Compilation extracts literal prefilters the way coregex picks cheap
// rejection tests before running a full regex engine: a required
// prefix, a required suffix, and the longest required literal chunk
// (checked with strings.Contains) reject most non-matching rows before
// the general wildcard walk. Four common shapes bypass the walk
// entirely: exact ("abc"), prefix ("abc%"), suffix ("%abc") and
// substring ("%abc%").
type LikeMatcher struct {
	pattern string
	chunks  []likeChunk // the %-separated segments, empties dropped
	anchorL bool        // pattern does not start with %
	anchorR bool        // pattern does not end with %
	minLen  int         // sum of chunk lengths: no shorter string matches

	prefix   string // required literal prefix (before the first wildcard)
	suffix   string // required literal suffix (after the last wildcard)
	required string // longest underscore-free chunk, for Contains rejection

	shape likeShape
}

type likeChunk struct {
	text string
	wild bool // contains _
}

type likeShape uint8

const (
	shapeGeneric  likeShape = iota
	shapeExact              // no wildcards
	shapePrefix             // lit%
	shapeSuffix             // %lit
	shapeContains           // %lit%
	shapeAny                // % (and %%...): matches everything
)

// NewLikeMatcher compiles a LIKE pattern.
func NewLikeMatcher(pattern string) *LikeMatcher {
	m := &LikeMatcher{pattern: pattern}
	raw := strings.Split(pattern, "%")
	m.anchorL = !strings.HasPrefix(pattern, "%")
	m.anchorR = !strings.HasSuffix(pattern, "%")
	hasPct := len(raw) > 1
	for _, c := range raw {
		if c == "" {
			continue
		}
		m.chunks = append(m.chunks, likeChunk{text: c, wild: strings.ContainsRune(c, '_')})
		m.minLen += len(c)
		if !strings.ContainsRune(c, '_') && len(c) > len(m.required) {
			m.required = c
		}
	}
	if m.anchorL && len(m.chunks) > 0 {
		c := m.chunks[0].text
		cut := strings.IndexByte(c, '_')
		if cut < 0 {
			cut = len(c)
		}
		m.prefix = c[:cut]
	}
	if m.anchorR && len(m.chunks) > 0 {
		c := m.chunks[len(m.chunks)-1].text
		cut := strings.LastIndexByte(c, '_')
		m.suffix = c[cut+1:]
	}
	switch {
	case len(m.chunks) == 0:
		if hasPct {
			m.shape = shapeAny
		} else {
			m.shape = shapeExact // empty pattern: matches only ""
		}
	case !hasPct:
		if !m.chunks[0].wild {
			m.shape = shapeExact
		}
	case len(m.chunks) == 1 && !m.chunks[0].wild:
		switch {
		case m.anchorL && !m.anchorR:
			m.shape = shapePrefix
		case !m.anchorL && m.anchorR:
			m.shape = shapeSuffix
		case !m.anchorL && !m.anchorR:
			m.shape = shapeContains
		}
	}
	return m
}

// Pattern returns the source pattern.
func (m *LikeMatcher) Pattern() string { return m.pattern }

// Match reports whether s matches the pattern.
func (m *LikeMatcher) Match(s string) bool {
	// Literal prefilters: cheap rejections before the wildcard walk.
	if len(s) < m.minLen {
		return false
	}
	switch m.shape {
	case shapeAny:
		return true
	case shapeExact:
		if len(m.chunks) == 0 {
			return s == ""
		}
		return s == m.chunks[0].text
	case shapePrefix:
		return strings.HasPrefix(s, m.chunks[0].text)
	case shapeSuffix:
		return strings.HasSuffix(s, m.chunks[0].text)
	case shapeContains:
		return strings.Contains(s, m.chunks[0].text)
	}
	if m.prefix != "" && !strings.HasPrefix(s, m.prefix) {
		return false
	}
	if m.suffix != "" && !strings.HasSuffix(s, m.suffix) {
		return false
	}
	if len(m.required) > 1 && !strings.Contains(s, m.required) {
		return false
	}
	return m.walk(s)
}

// walk is the general matcher: the first chunk anchors at the start
// when the pattern has no leading %, the last chunk anchors at the end
// when it has no trailing %, and middle chunks greedily take their
// leftmost occurrence — the standard linear-time algorithm for
// %-separated glob matching.
func (m *LikeMatcher) walk(s string) bool {
	chunks := m.chunks
	pos := 0
	if m.anchorL {
		c := chunks[0]
		if !chunkAt(s, 0, c) {
			return false
		}
		pos = len(c.text)
		chunks = chunks[1:]
	}
	var last likeChunk
	if m.anchorR && len(chunks) > 0 {
		last = chunks[len(chunks)-1]
		chunks = chunks[:len(chunks)-1]
	}
	for _, c := range chunks {
		at := indexChunk(s, pos, c)
		if at < 0 {
			return false
		}
		pos = at + len(c.text)
	}
	if m.anchorR {
		if last.text == "" {
			// The first chunk was also the last (single-chunk anchored
			// pattern with no trailing %): "lit" or "lit_" shapes with a
			// leading %-less form are exact-tail checks handled below
			// only when a last chunk was split off.
			return !m.anchorL || pos == len(s)
		}
		start := len(s) - len(last.text)
		return start >= pos && chunkAt(s, start, last)
	}
	return true
}

// chunkAt reports whether chunk matches s at position at.
func chunkAt(s string, at int, c likeChunk) bool {
	if at < 0 || at+len(c.text) > len(s) {
		return false
	}
	if !c.wild {
		return s[at:at+len(c.text)] == c.text
	}
	for j := 0; j < len(c.text); j++ {
		if pc := c.text[j]; pc != '_' && pc != s[at+j] {
			return false
		}
	}
	return true
}

// indexChunk finds the leftmost position >= from where chunk matches.
func indexChunk(s string, from int, c likeChunk) int {
	if !c.wild {
		if from > len(s) {
			return -1
		}
		i := strings.Index(s[from:], c.text)
		if i < 0 {
			return -1
		}
		return from + i
	}
	for at := from; at+len(c.text) <= len(s); at++ {
		if chunkAt(s, at, c) {
			return at
		}
	}
	return -1
}
