package vec

import (
	"errors"

	"onlinetuner/internal/datum"
)

// ErrFallback tells the caller to re-evaluate the morsel through the
// scalar path: the operand kinds need per-row handling (mixed-kind
// columns, non-numeric operands whose error the scalar engine must
// raise in exact row order, or an operator the kernels do not cover).
var ErrFallback = errors.New("vec: scalar fallback required")

// Arith computes out[i] = a[i] op b[i] for op in +, -, * with the
// scalar engine's exact semantics: NULL propagates, INT op INT stays
// int64 (wrapping like the scalar engine's int64 arithmetic), every
// other numeric pairing promotes both sides through Float(). Division
// is never vectorized (its by-zero error must surface in scalar row
// order), and any non-numeric operand returns ErrFallback so the
// scalar path can raise its type error at the exact offending row.
//
// Both inputs must be gathered over the same positions; len(a) ==
// len(b).
func Arith(op byte, a, b *Column, out *Column) error {
	if op != '+' && op != '-' && op != '*' {
		return ErrFallback
	}
	if !a.Uniform || !b.Uniform {
		return ErrFallback
	}
	n := a.n
	// An all-NULL side makes every result NULL (NULL propagates before
	// the scalar engine ever checks operand kinds).
	if a.Kind == datum.KNull || b.Kind == datum.KNull {
		out.reset(n)
		out.Kind = datum.KNull
		out.HasNulls = n > 0
		for i := 0; i < n; i++ {
			out.Nulls.set(i)
			out.I = append(out.I, 0)
		}
		return nil
	}
	if !numeric(a.Kind) || !numeric(b.Kind) {
		return ErrFallback
	}
	out.reset(n)
	if a.Kind == datum.KInt && b.Kind == datum.KInt {
		out.Kind = datum.KInt
		for i := 0; i < n; i++ {
			if a.nullAt(i) || b.nullAt(i) {
				out.Nulls.set(i)
				out.HasNulls = true
				out.I = append(out.I, 0)
				continue
			}
			switch op {
			case '+':
				out.I = append(out.I, a.I[i]+b.I[i])
			case '-':
				out.I = append(out.I, a.I[i]-b.I[i])
			default:
				out.I = append(out.I, a.I[i]*b.I[i])
			}
		}
		return nil
	}
	out.Kind = datum.KFloat
	af, bf := a.floats(), b.floats()
	for i := 0; i < n; i++ {
		if a.nullAt(i) || b.nullAt(i) {
			out.Nulls.set(i)
			out.HasNulls = true
			out.F = append(out.F, 0)
			continue
		}
		switch op {
		case '+':
			out.F = append(out.F, af[i]+bf[i])
		case '-':
			out.F = append(out.F, af[i]-bf[i])
		default:
			out.F = append(out.F, af[i]*bf[i])
		}
	}
	return nil
}

// Broadcast fills c with n copies of d — the column form of a literal
// operand.
func (c *Column) Broadcast(d datum.Datum, n int) {
	c.reset(n)
	if d.IsNull() {
		c.Kind = datum.KNull
		c.HasNulls = n > 0
		for i := 0; i < n; i++ {
			c.Nulls.set(i)
			c.I = append(c.I, 0)
		}
		return
	}
	c.Kind = d.Kind()
	for i := 0; i < n; i++ {
		c.appendTyped(d)
	}
}
