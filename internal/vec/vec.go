// Package vec implements the typed column vectors and branch-light
// predicate kernels behind the executor's vectorized engine. A Column is
// one attribute of a morsel (at most one morsel, 4096 rows) gathered out
// of the row-major executor representation into a per-type slice
// (int64/float64/string) plus a null bitmap. Kernels evaluate a whole
// column against a constant and emit a selection vector of surviving
// positions.
//
// Every kernel replicates the scalar executor's semantics exactly —
// datum.Compare's total order (including its NaN placement and its
// cross-kind numeric promotion through float64), NULL ⇒ UNKNOWN ⇒
// filtered, and the numeric-before-string class order — so the
// vectorized engine is byte-identical to the row engine. Columns whose
// non-null values mix kinds fall back to datum.Compare per element
// inside the kernel; the fast paths only engage on uniform columns,
// which is what table storage produces.
package vec

import (
	"onlinetuner/internal/datum"
)

// MorselRows mirrors the executor's morsel size; columns are sized to it
// but grow as needed.
const MorselRows = 4096

// Sel is a selection vector: positions (0-based, within one column) of
// the rows that survive a kernel. Positions are strictly increasing.
type Sel []int32

// Bitmap is a fixed-capacity null bitmap; bit i set means position i is
// NULL.
type Bitmap []uint64

// Get reports whether bit i is set.
func (b Bitmap) Get(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

// set marks bit i.
func (b Bitmap) set(i int) { b[i>>6] |= 1 << (uint(i) & 63) }

// sized returns a zeroed bitmap with capacity for n bits, reusing b's
// storage when possible.
func (b Bitmap) sized(n int) Bitmap {
	words := (n + 63) >> 6
	if cap(b) < words {
		return make(Bitmap, words)
	}
	b = b[:words]
	for i := range b {
		b[i] = 0
	}
	return b
}

// Column is one gathered attribute of a morsel. Exactly one of the
// typed slices is populated, chosen by Kind: I for the integer class
// (INT, DATE, BOOL — the kinds datum compares by their int64 payload),
// F for FLOAT, S for VARCHAR. Null positions hold the zero value in the
// typed slice and are marked in Nulls.
//
// Uniform reports that every non-null value has kind Kind; when false
// the typed slices are not populated and Dat holds the original datums
// for the per-element fallback. Kind is KNull when the column has no
// non-null values.
type Column struct {
	Kind     datum.Kind
	Uniform  bool
	HasNulls bool
	I        []int64
	F        []float64
	S        []string
	Nulls    Bitmap
	Dat      []datum.Datum
	n        int

	scratchF []float64 // reused int→float promotion buffer
}

// Len returns the number of gathered positions.
func (c *Column) Len() int { return c.n }

// intClass reports whether k stores its payload in the int64 slot and
// compares by it when both sides share the kind.
func intClass(k datum.Kind) bool {
	return k == datum.KInt || k == datum.KDate || k == datum.KBool
}

func numeric(k datum.Kind) bool { return k != datum.KString && k != datum.KNull }

// Gather fills c with column slot of the given rows, restricted to the
// positions in sel (nil = all rows). The gathered column's position k
// corresponds to rows[sel[k]] (or rows[k] when sel is nil).
func (c *Column) Gather(rows []datum.Row, slot int, sel Sel) {
	n := len(rows)
	if sel != nil {
		n = len(sel)
	}
	c.reset(n)
	at := func(k int) datum.Datum {
		if sel != nil {
			return rows[sel[k]][slot]
		}
		return rows[k][slot]
	}
	for k := 0; k < n; k++ {
		d := at(k)
		if d.IsNull() {
			c.Nulls.set(k)
			c.HasNulls = true
			c.appendZero()
			continue
		}
		if c.Kind == datum.KNull {
			c.Kind = d.Kind()
			// A leading run of nulls was buffered into I (the default
			// arm of appendZero); migrate it to the discovered kind's
			// slice so slice offsets keep matching positions.
			if c.Kind == datum.KFloat || c.Kind == datum.KString {
				for range c.I {
					c.appendZero()
				}
				c.I = c.I[:0]
			}
		} else if d.Kind() != c.Kind {
			// Mixed kinds: abandon the typed gather and refill Dat with
			// the original datums for the Compare-based fallback.
			c.Uniform = false
			c.Dat = c.Dat[:0]
			for j := 0; j < n; j++ {
				c.Dat = append(c.Dat, at(j))
			}
			return
		}
		c.appendTyped(d)
	}
}

func (c *Column) reset(n int) {
	c.Kind = datum.KNull
	c.Uniform = true
	c.HasNulls = false
	c.I = c.I[:0]
	c.F = c.F[:0]
	c.S = c.S[:0]
	c.Dat = c.Dat[:0]
	c.Nulls = c.Nulls.sized(n)
	c.n = n
}

func (c *Column) appendZero() {
	switch {
	case c.Kind == datum.KFloat:
		c.F = append(c.F, 0)
	case c.Kind == datum.KString:
		c.S = append(c.S, "")
	default:
		c.I = append(c.I, 0)
	}
}

func (c *Column) appendTyped(d datum.Datum) {
	switch c.Kind {
	case datum.KFloat:
		c.F = append(c.F, d.Float())
	case datum.KString:
		c.S = append(c.S, d.Str())
	default:
		c.I = append(c.I, d.Int())
	}
}

// DatumAt reconstructs the datum at position i. For uniform columns the
// reconstruction is exact: the typed slice holds the original payload,
// so the rebuilt datum is structurally identical to the gathered one.
func (c *Column) DatumAt(i int) datum.Datum {
	if !c.Uniform {
		return c.Dat[i]
	}
	if c.HasNulls && c.Nulls.Get(i) {
		return datum.Null
	}
	switch c.Kind {
	case datum.KInt:
		return datum.NewInt(c.I[i])
	case datum.KDate:
		return datum.NewDate(c.I[i])
	case datum.KBool:
		return datum.NewBool(c.I[i] != 0)
	case datum.KFloat:
		return datum.NewFloat(c.F[i])
	case datum.KString:
		return datum.NewString(c.S[i])
	}
	return datum.Null
}

// nullAt reports whether position i is NULL.
func (c *Column) nullAt(i int) bool {
	if !c.Uniform {
		return c.Dat[i].IsNull()
	}
	return c.HasNulls && c.Nulls.Get(i)
}

// floats returns the column's values promoted to float64 — the exact
// promotion datum.Compare applies to cross-kind numeric comparisons
// (float64(int payload), precision loss included). Valid only for
// uniform numeric columns; null positions hold 0 and must be masked by
// the caller.
func (c *Column) floats() []float64 {
	if c.Kind == datum.KFloat {
		return c.F
	}
	c.scratchF = c.scratchF[:0]
	for _, v := range c.I {
		c.scratchF = append(c.scratchF, float64(v))
	}
	return c.scratchF
}
