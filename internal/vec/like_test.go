package vec

import (
	"math/rand"
	"strings"
	"testing"

	"onlinetuner/internal/datum"
)

// naiveLike is the reference LIKE semantics: % matches any run of
// bytes, _ exactly one byte, everything else literally, byte-wise, no
// escapes. Exponential in the worst case, so tests keep patterns short.
func naiveLike(p, s string) bool {
	if p == "" {
		return s == ""
	}
	switch p[0] {
	case '%':
		for i := 0; i <= len(s); i++ {
			if naiveLike(p[1:], s[i:]) {
				return true
			}
		}
		return false
	case '_':
		return s != "" && naiveLike(p[1:], s[1:])
	default:
		return s != "" && s[0] == p[0] && naiveLike(p[1:], s[1:])
	}
}

// TestLikeMatcherHandCases pins every shape class and its edges.
func TestLikeMatcherHandCases(t *testing.T) {
	cases := []struct {
		pattern, s string
		want       bool
	}{
		{"", "", true}, {"", "a", false},
		{"%", "", true}, {"%", "anything", true},
		{"%%", "x", true},
		{"_", "", false}, {"_", "a", true}, {"_", "ab", false},
		{"abc", "abc", true}, {"abc", "abd", false}, {"abc", "ab", false},
		{"a%", "a", true}, {"a%", "abc", true}, {"a%", "ba", false},
		{"%a", "a", true}, {"%a", "bca", true}, {"%a", "ab", false},
		{"%bc%", "abcd", true}, {"%bc%", "abdc", false},
		{"a_c", "abc", true}, {"a_c", "ac", false}, {"a_c", "abbc", false},
		{"a%b%c", "abc", true}, {"a%b%c", "axbyc", true}, {"a%b%c", "acb", false},
		{"%a_", "xab", true}, {"%a_", "xa", false}, {"%a_", "a", false},
		{"_%", "a", true}, {"_%", "", false},
		{"a_%b", "axb", true}, {"a_%b", "ab", false}, {"a_%b", "axyb", true},
		{"%abc%def%", "xxabcyydefzz", true}, {"%abc%def%", "xxdefyyabczz", false},
		{"ab%ab", "abab", true}, {"ab%ab", "ab", false}, // overlap: suffix needs its own bytes
		{"a%a", "aa", true}, {"a%a", "a", false},
		{"part name 0%", "part name 00042", true}, {"part name 0%", "part name 1", false},
		{"%BRASS", "PROMO BRASS", true}, {"%BRASS", "PROMO TIN", false},
		{"__-URGENT", "1-URGENT", false}, {"_-URGENT", "1-URGENT", true},
	}
	for _, c := range cases {
		m := NewLikeMatcher(c.pattern)
		if got := m.Match(c.s); got != c.want {
			t.Errorf("LIKE %q on %q = %v, want %v (shape %d)", c.pattern, c.s, got, c.want, m.shape)
		}
		if naive := naiveLike(c.pattern, c.s); naive != c.want {
			t.Fatalf("hand case disagrees with reference: LIKE %q on %q, case says %v reference %v",
				c.pattern, c.s, c.want, naive)
		}
	}
}

// TestLikeMatcherRandomized compares the prefiltered matcher against the
// reference on random short patterns and subjects.
func TestLikeMatcherRandomized(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	alphabet := "ab%_c"
	subjectAlphabet := "abc"
	for trial := 0; trial < 5000; trial++ {
		var pb, sb strings.Builder
		for i := r.Intn(8); i > 0; i-- {
			pb.WriteByte(alphabet[r.Intn(len(alphabet))])
		}
		for i := r.Intn(12); i > 0; i-- {
			sb.WriteByte(subjectAlphabet[r.Intn(len(subjectAlphabet))])
		}
		p, s := pb.String(), sb.String()
		m := NewLikeMatcher(p)
		if got, want := m.Match(s), naiveLike(p, s); got != want {
			t.Fatalf("LIKE %q on %q = %v, want %v (shape %d)", p, s, got, want, m.shape)
		}
	}
}

// TestMatchLikeKernelOracle checks the column kernel: strings evaluate
// the matcher; NULLs and non-strings are dropped under BOTH polarities
// (UNKNOWN filters out either way).
func TestMatchLikeKernelOracle(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		rows := randRows(r, 1+r.Intn(64), kindCases[trial%len(kindCases)])
		pats := []string{"%", "a%", "%b", "%ab%", "a_c", "", "ab"}
		m := NewLikeMatcher(pats[trial%len(pats)])
		var c Column
		c.Gather(rows, 0, nil)
		for _, not := range []bool{false, true} {
			got := selToMap(MatchLike(&c, m, not, nil))
			for i, row := range rows {
				d := row[0]
				want := d.Kind() == datum.KString && m.Match(d.Str()) != not
				if got[int32(i)] != want {
					t.Fatalf("trial %d not=%v: row %d (%s LIKE %q): kernel=%v oracle=%v",
						trial, not, i, d, m.pattern, got[int32(i)], want)
				}
			}
		}
	}
}

// FuzzVecKernels drives the comparison, range, set and LIKE kernels
// from fuzzer-derived columns and literals, checking each against its
// scalar oracle.
func FuzzVecKernels(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 250, 251})
	f.Add([]byte("a%bc_d"))
	f.Add([]byte{9, 9, 9, 0, 0, 0, 128, 255, 7})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		// Derive a deterministic column, literal and pattern from the input.
		decode := func(b byte) datum.Datum {
			switch b % 7 {
			case 0:
				return datum.Null
			case 1, 2:
				return datum.NewInt(int64(b>>3) - 10)
			case 3:
				return datum.NewFloat(float64(b>>3)/3 - 8)
			case 4:
				return datum.NewString(strings.Repeat("ab", int(b>>6)) + string(rune('a'+b%3)))
			case 5:
				return datum.NewDate(int64(b >> 4))
			default:
				return datum.NewBool(b&8 != 0)
			}
		}
		n := len(data) - 1
		if n > 64 {
			n = 64
		}
		rows := make([]datum.Row, n)
		for i := 0; i < n; i++ {
			rows[i] = datum.Row{decode(data[i+1])}
		}
		lit := decode(data[0])
		var c Column
		c.Gather(rows, 0, nil)

		for _, op := range []CmpOp{EQ, NE, LT, LE, GT, GE} {
			got := selToMap(CmpConst(&c, op, lit, nil))
			for i, row := range rows {
				d := row[0]
				want := !d.IsNull() && !lit.IsNull() && op.keep(d.Compare(lit))
				if got[int32(i)] != want {
					t.Fatalf("CmpConst op %v row %d (%s vs %s): kernel=%v oracle=%v", op, i, d, lit, got[int32(i)], want)
				}
			}
		}
		lo, hi := lit, decode(data[len(data)-1])
		gotB := selToMap(BetweenConst(&c, lo, hi, nil))
		for i, row := range rows {
			d := row[0]
			want := !d.IsNull() && !lo.IsNull() && !hi.IsNull() && d.Compare(lo) >= 0 && d.Compare(hi) <= 0
			if gotB[int32(i)] != want {
				t.Fatalf("BetweenConst row %d (%s in [%s,%s]): kernel=%v oracle=%v", i, d, lo, hi, gotB[int32(i)], want)
			}
		}
		set := []datum.Datum{lit, hi}
		gotIn := selToMap(InConst(&c, set, nil))
		for i, row := range rows {
			d := row[0]
			want := false
			if !d.IsNull() {
				for _, m := range set {
					if !m.IsNull() && d.Compare(m) == 0 {
						want = true
						break
					}
				}
			}
			if gotIn[int32(i)] != want {
				t.Fatalf("InConst row %d (%s in %v): kernel=%v oracle=%v", i, d, set, gotIn[int32(i)], want)
			}
		}

		// LIKE: reuse the raw bytes as a pattern, capped so the reference
		// matcher's backtracking stays cheap.
		pat := string(data)
		if len(pat) > 10 {
			pat = pat[:10]
		}
		m := NewLikeMatcher(pat)
		for _, row := range rows {
			d := row[0]
			if d.Kind() != datum.KString || len(d.Str()) > 24 {
				continue
			}
			if got, want := m.Match(d.Str()), naiveLike(pat, d.Str()); got != want {
				t.Fatalf("LIKE %q on %q = %v, want %v (shape %d)", pat, d.Str(), got, want, m.shape)
			}
		}
	})
}
