package vec

import (
	"math"
	"math/rand"
	"testing"

	"onlinetuner/internal/datum"
)

// randDatum draws a datum across every kind, weighted to exercise the
// kernels' edge paths: NULLs, NaN/±Inf, negative zero, integers beyond
// 2^53 (where float64 promotion loses precision), and strings sharing
// prefixes (so first-byte prefilters see both hits and misses).
func randDatum(r *rand.Rand) datum.Datum {
	switch r.Intn(12) {
	case 0:
		return datum.Null
	case 1, 2:
		return datum.NewInt(int64(r.Intn(20) - 10))
	case 3:
		// Beyond 2^53: float64(a) == float64(a+1) here, so a kernel that
		// promoted ints to floats would diverge from datum.Compare.
		return datum.NewInt((int64(1) << 53) + int64(r.Intn(4)))
	case 4, 5:
		return datum.NewFloat(float64(r.Intn(40)-20) / 4)
	case 6:
		switch r.Intn(4) {
		case 0:
			return datum.NewFloat(math.NaN())
		case 1:
			return datum.NewFloat(math.Inf(1))
		case 2:
			return datum.NewFloat(math.Inf(-1))
		}
		return datum.NewFloat(math.Copysign(0, -1))
	case 7, 8:
		pool := []string{"", "a", "ab", "abc", "abd", "b", "ba", "part name 00042", "part name 1"}
		return datum.NewString(pool[r.Intn(len(pool))])
	case 9:
		return datum.NewDate(int64(r.Intn(20) - 10))
	default:
		return datum.NewBool(r.Intn(2) == 0)
	}
}

// randRows builds single-slot rows. uniformKind < 0 mixes kinds freely;
// otherwise every non-null value has exactly that kind.
func randRows(r *rand.Rand, n int, uniformKind int) []datum.Row {
	rows := make([]datum.Row, n)
	for i := range rows {
		var d datum.Datum
		if uniformKind < 0 {
			d = randDatum(r)
		} else {
			if r.Intn(5) == 0 {
				d = datum.Null
			} else {
				switch datum.Kind(uniformKind) {
				case datum.KInt:
					d = datum.NewInt(int64(r.Intn(20) - 10))
				case datum.KFloat:
					if r.Intn(8) == 0 {
						d = datum.NewFloat(math.NaN())
					} else {
						d = datum.NewFloat(float64(r.Intn(40)-20) / 4)
					}
				case datum.KString:
					pool := []string{"", "a", "ab", "abc", "abd", "b"}
					d = datum.NewString(pool[r.Intn(len(pool))])
				case datum.KDate:
					d = datum.NewDate(int64(r.Intn(20) - 10))
				default:
					d = datum.NewBool(r.Intn(2) == 0)
				}
			}
		}
		rows[i] = datum.Row{d}
	}
	return rows
}

// kindCases enumerates the column shapes every kernel test sweeps:
// each uniform kind plus fully mixed columns (which force the Dat
// fallback path).
var kindCases = []int{int(datum.KInt), int(datum.KFloat), int(datum.KString), int(datum.KDate), int(datum.KBool), -1}

func selToMap(sel Sel) map[int32]bool {
	m := make(map[int32]bool, len(sel))
	for _, i := range sel {
		m[i] = true
	}
	return m
}

// TestCmpConstOracle checks every comparison kernel against the scalar
// engine's semantics: keep row i iff neither side is NULL and
// op.keep(d.Compare(lit)) — over every column shape, including mixed
// kinds, NaN literals, and cross-class comparisons.
func TestCmpConstOracle(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	ops := []CmpOp{EQ, NE, LT, LE, GT, GE}
	for trial := 0; trial < 400; trial++ {
		uk := kindCases[trial%len(kindCases)]
		rows := randRows(r, 1+r.Intn(64), uk)
		lit := randDatum(r)
		var c Column
		c.Gather(rows, 0, nil)
		for _, op := range ops {
			got := selToMap(CmpConst(&c, op, lit, nil))
			for i, row := range rows {
				d := row[0]
				want := !d.IsNull() && !lit.IsNull() && op.keep(d.Compare(lit))
				if got[int32(i)] != want {
					t.Fatalf("trial %d op %v: row %d (%s vs %s): kernel=%v oracle=%v",
						trial, op, i, d, lit, got[int32(i)], want)
				}
			}
		}
	}
}

// TestBetweenConstOracle checks the fused range kernel against the two
// comparisons it replaces.
func TestBetweenConstOracle(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 300; trial++ {
		uk := kindCases[trial%len(kindCases)]
		rows := randRows(r, 1+r.Intn(64), uk)
		lo, hi := randDatum(r), randDatum(r)
		var c Column
		c.Gather(rows, 0, nil)
		got := selToMap(BetweenConst(&c, lo, hi, nil))
		for i, row := range rows {
			d := row[0]
			want := !d.IsNull() && !lo.IsNull() && !hi.IsNull() &&
				d.Compare(lo) >= 0 && d.Compare(hi) <= 0
			if got[int32(i)] != want {
				t.Fatalf("trial %d: row %d (%s BETWEEN %s AND %s): kernel=%v oracle=%v",
					trial, i, d, lo, hi, got[int32(i)], want)
			}
		}
	}
}

// TestInConstOracle checks the IN-set kernel against the OR-of-equalities
// it fuses: keep iff some non-NULL member compares equal.
func TestInConstOracle(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 300; trial++ {
		uk := kindCases[trial%len(kindCases)]
		rows := randRows(r, 1+r.Intn(64), uk)
		set := make([]datum.Datum, 1+r.Intn(5))
		for i := range set {
			set[i] = randDatum(r)
		}
		var c Column
		c.Gather(rows, 0, nil)
		got := selToMap(InConst(&c, set, nil))
		for i, row := range rows {
			d := row[0]
			want := false
			if !d.IsNull() {
				for _, m := range set {
					if !m.IsNull() && d.Compare(m) == 0 {
						want = true
						break
					}
				}
			}
			if got[int32(i)] != want {
				t.Fatalf("trial %d: row %d (%s IN %v): kernel=%v oracle=%v",
					trial, i, d, set, got[int32(i)], want)
			}
		}
	}
}

// TestIsNullSelOracle checks the null-test kernel.
func TestIsNullSelOracle(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 100; trial++ {
		rows := randRows(r, 1+r.Intn(64), kindCases[trial%len(kindCases)])
		var c Column
		c.Gather(rows, 0, nil)
		for _, not := range []bool{false, true} {
			got := selToMap(IsNullSel(&c, not, nil))
			for i, row := range rows {
				want := row[0].IsNull() != not
				if got[int32(i)] != want {
					t.Fatalf("trial %d not=%v: row %d (%s): kernel=%v oracle=%v",
						trial, not, i, row[0], got[int32(i)], want)
				}
			}
		}
	}
}

// TestGatherDatumAtExact checks the column round-trip is exact — same
// Kind, same String() bytes — for every column shape and for partial
// selections. Key rendering (AppendKey) relies on this exactness.
func TestGatherDatumAtExact(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		rows := randRows(r, 1+r.Intn(64), kindCases[trial%len(kindCases)])
		sel := Sel{} // non-nil: nil means "all rows"
		for i := range rows {
			if r.Intn(3) > 0 {
				sel = append(sel, int32(i))
			}
		}
		var c Column
		c.Gather(rows, 0, sel)
		if c.Len() != len(sel) {
			t.Fatalf("trial %d: Len=%d want %d", trial, c.Len(), len(sel))
		}
		for i, ri := range sel {
			want := rows[ri][0]
			got := c.DatumAt(i)
			if got.Kind() != want.Kind() || got.String() != want.String() {
				t.Fatalf("trial %d: DatumAt(%d) = %s (%v), want %s (%v)",
					trial, i, got, got.Kind(), want, want.Kind())
			}
		}
	}
}

// TestLeadingNullsKindDiscovery pins the gather migration: a column
// whose first values are NULL must still type itself correctly when the
// first non-null value turns out to be a float or string.
func TestLeadingNullsKindDiscovery(t *testing.T) {
	rows := []datum.Row{
		{datum.Null}, {datum.Null}, {datum.NewFloat(2.5)}, {datum.Null}, {datum.NewFloat(-1)},
	}
	var c Column
	c.Gather(rows, 0, nil)
	for i, row := range rows {
		if got := c.DatumAt(i); got.String() != row[0].String() {
			t.Fatalf("float column: DatumAt(%d) = %s, want %s", i, got, row[0])
		}
	}
	rows = []datum.Row{{datum.Null}, {datum.NewString("x")}, {datum.Null}}
	var s Column
	s.Gather(rows, 0, nil)
	for i, row := range rows {
		if got := s.DatumAt(i); got.String() != row[0].String() {
			t.Fatalf("string column: DatumAt(%d) = %s, want %s", i, got, row[0])
		}
	}
}

// TestArithOracle checks vectorized +,-,* against datum arithmetic on
// uniform numeric columns, elementwise-exact (kind and rendered bytes),
// and that every shape the kernels refuse reports ErrFallback rather
// than producing a value.
func TestArithOracle(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	numKinds := []int{int(datum.KInt), int(datum.KFloat), int(datum.KDate), int(datum.KBool)}
	for trial := 0; trial < 300; trial++ {
		n := 1 + r.Intn(64)
		a := randRows(r, n, numKinds[r.Intn(len(numKinds))])
		b := randRows(r, n, numKinds[r.Intn(len(numKinds))])
		var ca, cb, out Column
		ca.Gather(a, 0, nil)
		cb.Gather(b, 0, nil)
		for _, op := range []byte{'+', '-', '*'} {
			err := Arith(op, &ca, &cb, &out)
			if err != nil {
				t.Fatalf("trial %d op %c: unexpected fallback: %v", trial, op, err)
			}
			for i := 0; i < n; i++ {
				var want datum.Datum
				var werr error
				switch op {
				case '+':
					want, werr = a[i][0].Add(b[i][0])
				case '-':
					want, werr = a[i][0].Sub(b[i][0])
				case '*':
					want, werr = a[i][0].Mul(b[i][0])
				}
				if werr != nil {
					t.Fatalf("trial %d: scalar oracle errored on numeric input: %v", trial, werr)
				}
				got := out.DatumAt(i)
				if got.Kind() != want.Kind() || got.String() != want.String() {
					t.Fatalf("trial %d: %s %c %s = %s (%v), scalar %s (%v)",
						trial, a[i][0], op, b[i][0], got, got.Kind(), want, want.Kind())
				}
			}
		}
	}
}

// TestArithFallbackShapes pins which shapes refuse to vectorize.
func TestArithFallbackShapes(t *testing.T) {
	gather := func(rows []datum.Row) *Column {
		var c Column
		c.Gather(rows, 0, nil)
		return &c
	}
	ints := gather([]datum.Row{{datum.NewInt(1)}, {datum.NewInt(2)}})
	strs := gather([]datum.Row{{datum.NewString("a")}, {datum.NewString("b")}})
	mixed := gather([]datum.Row{{datum.NewInt(1)}, {datum.NewString("b")}})
	nulls := gather([]datum.Row{{datum.Null}, {datum.Null}})
	var out Column
	if err := Arith('+', ints, strs, &out); err != ErrFallback {
		t.Fatalf("int + string column: err = %v, want ErrFallback", err)
	}
	if err := Arith('+', ints, mixed, &out); err != ErrFallback {
		t.Fatalf("int + mixed column: err = %v, want ErrFallback", err)
	}
	if err := Arith('/', ints, ints, &out); err != ErrFallback {
		t.Fatalf("division: err = %v, want ErrFallback (by-zero must error in row order)", err)
	}
	// All-NULL operand: scalar NULL propagation happens before the kind
	// check, so this must vectorize to an all-NULL column, not fall back.
	if err := Arith('+', ints, nulls, &out); err != nil {
		t.Fatalf("int + all-NULL column: err = %v, want nil", err)
	}
	for i := 0; i < out.Len(); i++ {
		if !out.DatumAt(i).IsNull() {
			t.Fatalf("int + all-NULL column: element %d = %s, want NULL", i, out.DatumAt(i))
		}
	}
}

// TestAppendKeyMatchesString pins that AppendKey renders exactly
// String()'s bytes for every kind — the contract the vectorized
// group/join key paths depend on.
func TestAppendKeyMatchesString(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		d := randDatum(r)
		if got := string(d.AppendKey(nil)); got != d.String() {
			t.Fatalf("AppendKey(%v) = %q, String() = %q", d.Kind(), got, d.String())
		}
	}
}

// TestBroadcast checks literal columns.
func TestBroadcast(t *testing.T) {
	for _, d := range []datum.Datum{datum.NewInt(7), datum.NewFloat(2.5), datum.NewString("x"), datum.Null, datum.NewBool(true), datum.NewDate(3)} {
		var c Column
		c.Broadcast(d, 5)
		if c.Len() != 5 {
			t.Fatalf("Broadcast len = %d", c.Len())
		}
		for i := 0; i < 5; i++ {
			if got := c.DatumAt(i); got.Kind() != d.Kind() || got.String() != d.String() {
				t.Fatalf("Broadcast(%s): DatumAt(%d) = %s", d, i, got)
			}
		}
	}
}
