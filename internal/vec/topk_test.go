package vec

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"onlinetuner/internal/datum"
)

// topkOracle returns the positions the exact TopN operator would select
// from vals: the k least (desc: greatest) by (value, position).
func topkOracle(vals []float64, k int, desc bool) map[int]bool {
	idx := make([]int, len(vals))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if vals[idx[a]] != vals[idx[b]] {
			if desc {
				return vals[idx[a]] > vals[idx[b]]
			}
			return vals[idx[a]] < vals[idx[b]]
		}
		return idx[a] < idx[b]
	})
	if k > len(idx) {
		k = len(idx)
	}
	out := make(map[int]bool, k)
	for _, i := range idx[:k] {
		out[i] = true
	}
	return out
}

// TestTopKSuperset is the kernel's soundness contract: streaming chunks
// through Prune must keep every position the exact operator would
// select, for int and float payloads, both directions, and k from 1 to
// larger than the input.
func TestTopKSuperset(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	const n, chunk = 4096, 256
	for _, kind := range []datum.Kind{datum.KInt, datum.KFloat} {
		rows := make([]datum.Row, n)
		vals := make([]float64, n)
		for i := range rows {
			v := float64(r.Intn(200) - 100) // tie-heavy
			vals[i] = v
			if kind == datum.KInt {
				rows[i] = datum.Row{datum.NewInt(int64(v))}
			} else {
				rows[i] = datum.Row{datum.NewFloat(v)}
			}
		}
		for _, k := range []int{1, 5, 32, 5000} {
			for _, desc := range []bool{false, true} {
				tk := NewTopK(k, desc)
				kept := make(map[int]bool)
				var col Column
				var sel Sel
				for base := 0; base < n; base += chunk {
					col.Gather(rows[base:base+chunk], 0, nil)
					sel = tk.Prune(&col, sel)
					for _, p := range sel {
						kept[base+int(p)] = true
					}
				}
				for want := range topkOracle(vals, k, desc) {
					if !kept[want] {
						t.Fatalf("kind=%v k=%d desc=%v: position %d (val %g) pruned but belongs to top-k",
							kind, k, desc, want, vals[want])
					}
				}
				// The kernel must actually prune once the threshold is set
				// (a pass-everything implementation is sound but useless).
				if k <= 32 && len(kept) >= n {
					t.Errorf("kind=%v k=%d desc=%v: no pruning at all", kind, k, desc)
				}
			}
		}
	}
}

// TestTopKPassesUnprunableChunks: NULLs, strings, NaN floats, and
// kind changes mid-stream must pass through whole and not poison the
// threshold for later chunks.
func TestTopKPassesUnprunableChunks(t *testing.T) {
	var col Column
	var sel Sel

	gather := func(ds ...datum.Datum) *Column {
		rows := make([]datum.Row, len(ds))
		for i, d := range ds {
			rows[i] = datum.Row{d}
		}
		col.Gather(rows, 0, nil)
		return &col
	}

	tk := NewTopK(2, false)
	// Chunk with a NULL: passes whole.
	sel = tk.Prune(gather(datum.NewInt(1), datum.Null, datum.NewInt(100)), sel)
	if len(sel) != 3 {
		t.Fatalf("null chunk kept %d of 3", len(sel))
	}
	// String chunk: passes whole.
	sel = tk.Prune(gather(datum.NewString("a"), datum.NewString("b")), sel)
	if len(sel) != 2 {
		t.Fatalf("string chunk kept %d of 2", len(sel))
	}
	// NaN float chunk: passes whole.
	sel = tk.Prune(gather(datum.NewFloat(math.NaN()), datum.NewFloat(1)), sel)
	if len(sel) != 2 {
		t.Fatalf("NaN chunk kept %d of 2", len(sel))
	}
	// Clean int chunk establishes a threshold: {1,2} fill the k=2 heap
	// and 50 is already prunable within the same chunk.
	sel = tk.Prune(gather(datum.NewInt(1), datum.NewInt(2), datum.NewInt(50)), sel)
	if len(sel) != 2 || sel[0] != 0 || sel[1] != 1 {
		t.Fatalf("first clean chunk sel=%v, want [0 1]", sel)
	}
	// ...that prunes values worse than the kept {1,2}.
	sel = tk.Prune(gather(datum.NewInt(99), datum.NewInt(0)), sel)
	if len(sel) != 1 || sel[0] != 1 {
		t.Fatalf("threshold did not prune: sel=%v", sel)
	}
	// A float chunk after the int class is locked: passes whole.
	sel = tk.Prune(gather(datum.NewFloat(999)), sel)
	if len(sel) != 1 {
		t.Fatalf("class-switch chunk kept %d of 1", len(sel))
	}
}
