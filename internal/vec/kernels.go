package vec

import (
	"math"

	"onlinetuner/internal/datum"
)

// CmpOp is a comparison operator.
type CmpOp uint8

// The comparison operators, matching the SQL symbols.
const (
	EQ CmpOp = iota // =
	NE              // <>
	LT              // <
	LE              // <=
	GT              // >
	GE              // >=
)

// CmpOpFromString maps a SQL comparison symbol to its CmpOp.
func CmpOpFromString(s string) (CmpOp, bool) {
	switch s {
	case "=":
		return EQ, true
	case "<>":
		return NE, true
	case "<":
		return LT, true
	case "<=":
		return LE, true
	case ">":
		return GT, true
	case ">=":
		return GE, true
	}
	return 0, false
}

// keep reports whether a three-way comparison result c satisfies op.
func (op CmpOp) keep(c int) bool {
	switch op {
	case EQ:
		return c == 0
	case NE:
		return c != 0
	case LT:
		return c < 0
	case LE:
		return c <= 0
	case GT:
		return c > 0
	}
	return c >= 0 // GE
}

// CmpConst appends to out the positions of c whose value compares
// against lit under op, with the scalar engine's exact semantics: a
// NULL on either side is UNKNOWN and never survives, and the three-way
// comparison is datum.Compare's total order.
func CmpConst(c *Column, op CmpOp, lit datum.Datum, out Sel) Sel {
	if lit.IsNull() || c.n == 0 {
		return out
	}
	if !c.Uniform {
		for i, d := range c.Dat {
			if !d.IsNull() && op.keep(d.Compare(lit)) {
				out = append(out, int32(i))
			}
		}
		return out
	}
	lk := lit.Kind()
	switch {
	case c.Kind == datum.KNull:
		return out // all NULL: nothing survives
	case intClass(c.Kind) && lk == c.Kind:
		// Same kind within the integer class: datum compares by the
		// int64 payload directly.
		return cmpConstNum(c.I, lit.Int(), op, c.Nulls, c.HasNulls, out)
	case numeric(c.Kind) && numeric(lk):
		// Cross-kind numerics (and float=float): datum promotes both
		// sides to float64 and uses cmpFloat's NaN-aware total order.
		x := lit.Float()
		if math.IsNaN(x) {
			// cmpFloat(v, NaN) = +1 for every non-NaN v; a NaN v ties.
			return cmpConstNaNLit(c, op, out)
		}
		return cmpConstNum(c.floats(), x, op, c.Nulls, c.HasNulls, out)
	case c.Kind == datum.KString && lk == datum.KString:
		return cmpConstStr(c.S, lit.Str(), op, c.Nulls, c.HasNulls, out)
	}
	// Cross-class (numeric vs string): datum's total-order fallback
	// compares class ranks, so the result is one constant for every
	// non-null position.
	cc := 0
	switch {
	case c.Kind == datum.KString: // string column vs numeric literal
		cc = 1
	default: // numeric column vs string literal
		cc = -1
	}
	if !op.keep(cc) {
		return out
	}
	return appendNonNull(c, out)
}

// cmpConstNum is the shared integer/float compare loop. The six
// formulas are written so that they are exact for BOTH element types
// given a non-NaN x: for int64 the `v != v` terms are vacuously false,
// and for float64 they reproduce cmpFloat's "NaN sorts first" placement
// (NaN < x ⇒ LT/LE/NE hold, EQ/GT/GE fail).
func cmpConstNum[T int64 | float64](vals []T, x T, op CmpOp, nulls Bitmap, hasNulls bool, out Sel) Sel {
	switch op {
	case EQ:
		for i, v := range vals {
			if v == x && !(hasNulls && nulls.Get(i)) {
				out = append(out, int32(i))
			}
		}
	case NE:
		for i, v := range vals {
			if v != x && !(hasNulls && nulls.Get(i)) {
				out = append(out, int32(i))
			}
		}
	case LT:
		for i, v := range vals {
			if (v < x || v != v) && !(hasNulls && nulls.Get(i)) {
				out = append(out, int32(i))
			}
		}
	case LE:
		for i, v := range vals {
			if (v <= x || v != v) && !(hasNulls && nulls.Get(i)) {
				out = append(out, int32(i))
			}
		}
	case GT:
		for i, v := range vals {
			if v > x && !(hasNulls && nulls.Get(i)) {
				out = append(out, int32(i))
			}
		}
	case GE:
		for i, v := range vals {
			if v >= x && !(hasNulls && nulls.Get(i)) {
				out = append(out, int32(i))
			}
		}
	}
	return out
}

// cmpConstNaNLit handles a NaN literal: cmpFloat places every non-NaN
// value after NaN (+1) and a NaN value ties (0).
func cmpConstNaNLit(c *Column, op CmpOp, out Sel) Sel {
	fs := c.floats()
	for i, v := range fs {
		if c.HasNulls && c.Nulls.Get(i) {
			continue
		}
		cc := 1
		if v != v {
			cc = 0
		}
		if op.keep(cc) {
			out = append(out, int32(i))
		}
	}
	return out
}

func cmpConstStr(vals []string, x string, op CmpOp, nulls Bitmap, hasNulls bool, out Sel) Sel {
	switch op {
	case EQ:
		// Equality prefilter: reject on length, then on first byte,
		// before the full comparison.
		n := len(x)
		var c0 byte
		if n > 0 {
			c0 = x[0]
		}
		for i, v := range vals {
			if len(v) == n && (n == 0 || v[0] == c0) && v == x && !(hasNulls && nulls.Get(i)) {
				out = append(out, int32(i))
			}
		}
	case NE:
		for i, v := range vals {
			if v != x && !(hasNulls && nulls.Get(i)) {
				out = append(out, int32(i))
			}
		}
	case LT:
		for i, v := range vals {
			if v < x && !(hasNulls && nulls.Get(i)) {
				out = append(out, int32(i))
			}
		}
	case LE:
		for i, v := range vals {
			if v <= x && !(hasNulls && nulls.Get(i)) {
				out = append(out, int32(i))
			}
		}
	case GT:
		for i, v := range vals {
			if v > x && !(hasNulls && nulls.Get(i)) {
				out = append(out, int32(i))
			}
		}
	case GE:
		for i, v := range vals {
			if v >= x && !(hasNulls && nulls.Get(i)) {
				out = append(out, int32(i))
			}
		}
	}
	return out
}

func appendNonNull(c *Column, out Sel) Sel {
	if !c.HasNulls {
		for i := 0; i < c.n; i++ {
			out = append(out, int32(i))
		}
		return out
	}
	for i := 0; i < c.n; i++ {
		if !c.Nulls.Get(i) {
			out = append(out, int32(i))
		}
	}
	return out
}

// BetweenConst appends the positions with lo <= v <= hi — the fused
// form of the two conjuncts BETWEEN desugars into. NULL bounds or a
// NULL value never survive (each side is UNKNOWN in the scalar engine).
func BetweenConst(c *Column, lo, hi datum.Datum, out Sel) Sel {
	if lo.IsNull() || hi.IsNull() || c.n == 0 {
		return out
	}
	if c.Uniform && intClass(c.Kind) && lo.Kind() == c.Kind && hi.Kind() == c.Kind {
		l, h := lo.Int(), hi.Int()
		for i, v := range c.I {
			if v >= l && v <= h && !(c.HasNulls && c.Nulls.Get(i)) {
				out = append(out, int32(i))
			}
		}
		return out
	}
	if c.Uniform && numeric(c.Kind) && numeric(lo.Kind()) && numeric(hi.Kind()) {
		l, h := lo.Float(), hi.Float()
		if !math.IsNaN(l) && !math.IsNaN(h) {
			fs := c.floats()
			for i, v := range fs {
				// v >= l is false for NaN v, matching cmpFloat(NaN, l) = -1.
				if v >= l && v <= h && !(c.HasNulls && c.Nulls.Get(i)) {
					out = append(out, int32(i))
				}
			}
			return out
		}
	}
	if c.Uniform && c.Kind == datum.KString && lo.Kind() == datum.KString && hi.Kind() == datum.KString {
		l, h := lo.Str(), hi.Str()
		for i, v := range c.S {
			if v >= l && v <= h && !(c.HasNulls && c.Nulls.Get(i)) {
				out = append(out, int32(i))
			}
		}
		return out
	}
	// Mixed kinds, NaN bounds, cross-class: per-element total order.
	for i := 0; i < c.n; i++ {
		d := c.DatumAt(i)
		if !d.IsNull() && d.Compare(lo) >= 0 && d.Compare(hi) <= 0 {
			out = append(out, int32(i))
		}
	}
	return out
}

// InConst appends the positions whose value equals any member of set —
// the fused form of the OR-of-equalities an IN list desugars into. A
// NULL value matches nothing; NULL members match nothing. Membership is
// datum equality (cross-kind numerics collide, as in the scalar OR).
func InConst(c *Column, set []datum.Datum, out Sel) Sel {
	members := make([]datum.Datum, 0, len(set))
	for _, m := range set {
		if !m.IsNull() {
			members = append(members, m)
		}
	}
	if len(members) == 0 || c.n == 0 {
		return out
	}
	if c.Uniform && intClass(c.Kind) {
		// Fast path only when every member shares the column's kind
		// (same-kind equality is payload equality).
		vals := make([]int64, 0, len(members))
		ok := true
		for _, m := range members {
			if m.Kind() != c.Kind {
				ok = false
				break
			}
			vals = append(vals, m.Int())
		}
		if ok {
			for i, v := range c.I {
				if c.HasNulls && c.Nulls.Get(i) {
					continue
				}
				for _, x := range vals {
					if v == x {
						out = append(out, int32(i))
						break
					}
				}
			}
			return out
		}
	}
	if c.Uniform && c.Kind == datum.KString {
		vals := make([]string, 0, len(members))
		ok := true
		for _, m := range members {
			if m.Kind() != datum.KString {
				ok = false
				break
			}
			vals = append(vals, m.Str())
		}
		if ok {
			for i, v := range c.S {
				if c.HasNulls && c.Nulls.Get(i) {
					continue
				}
				for _, x := range vals {
					// First-byte/length prefilter before the full compare.
					if len(v) == len(x) && (len(x) == 0 || v[0] == x[0]) && v == x {
						out = append(out, int32(i))
						break
					}
				}
			}
			return out
		}
	}
	for i := 0; i < c.n; i++ {
		d := c.DatumAt(i)
		if d.IsNull() {
			continue
		}
		for _, m := range members {
			if d.Compare(m) == 0 {
				out = append(out, int32(i))
				break
			}
		}
	}
	return out
}

// IsNullSel appends the positions that are NULL (or, with not set, the
// positions that are not NULL).
func IsNullSel(c *Column, not bool, out Sel) Sel {
	for i := 0; i < c.n; i++ {
		if c.nullAt(i) != not {
			out = append(out, int32(i))
		}
	}
	return out
}

// MatchLike appends the positions whose string value matches (or, with
// not set, does not match) the compiled pattern. A NULL value is
// UNKNOWN and never survives either polarity; a non-string value never
// survives either polarity (the scalar engine treats a non-string
// scrutinee as UNKNOWN too).
func MatchLike(c *Column, m *LikeMatcher, not bool, out Sel) Sel {
	if c.n == 0 {
		return out
	}
	if c.Uniform && c.Kind == datum.KString {
		for i, v := range c.S {
			if c.HasNulls && c.Nulls.Get(i) {
				continue
			}
			if m.Match(v) != not {
				out = append(out, int32(i))
			}
		}
		return out
	}
	for i := 0; i < c.n; i++ {
		d := c.DatumAt(i)
		if d.IsNull() || d.Kind() != datum.KString {
			continue
		}
		if m.Match(d.Str()) != not {
			out = append(out, int32(i))
		}
	}
	return out
}
