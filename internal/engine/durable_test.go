package engine

import (
	"crypto/sha256"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"onlinetuner/internal/datum"
	"onlinetuner/internal/storage"
	"onlinetuner/internal/wal"
)

// stateDigest renders the database's full logical state — catalog
// tables, live heap contents in RID order, and secondary-index defs
// with lifecycle states — into a hash. Two databases with equal digests
// are indistinguishable to any query.
func stateDigest(t *testing.T, db *DB) string {
	t.Helper()
	h := sha256.New()
	for _, tab := range db.Cat.Tables() {
		fmt.Fprintf(h, "table %s pk=%v cols=%d\n", tab.Name, tab.PrimaryKey, len(tab.Columns))
		heap := db.Mgr.Heap(tab.Name)
		if heap == nil {
			t.Fatalf("table %s not materialized", tab.Name)
		}
		heap.Scan(func(rid storage.RID, r datum.Row) bool {
			fmt.Fprintf(h, "%d|", rid)
			for _, d := range r {
				fmt.Fprintf(h, "%s,", d.String())
			}
			fmt.Fprintln(h)
			return true
		})
	}
	for _, ix := range db.Cat.Indexes() {
		if ix.Primary {
			continue
		}
		state := "absent"
		if pi := db.Mgr.Index(ix.ID()); pi != nil {
			state = pi.State().String()
		}
		fmt.Fprintf(h, "index %s %s\n", ix.ID(), state)
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

func checkConsistent(t *testing.T, db *DB) {
	t.Helper()
	if err := db.Mgr.CheckConsistency(); err != nil {
		t.Fatalf("recovered state inconsistent: %v", err)
	}
}

func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		in, err := os.Open(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out, err := os.Create(filepath.Join(dst, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.Copy(out, in); err != nil {
			t.Fatal(err)
		}
		_ = in.Close()
		if err := out.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

func TestDurableCloseReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDurable(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	db.MustExec("CREATE TABLE R (id INT, a INT, b INT, PRIMARY KEY (id))")
	for i := 0; i < 50; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO R VALUES (%d, %d, %d)", i, i%7, i%3))
	}
	db.MustExec("CREATE INDEX R_a ON R (a)")
	db.MustExec("UPDATE R SET b = 99 WHERE a = 2")
	db.MustExec("DELETE FROM R WHERE a = 3")
	want := stateDigest(t, db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := OpenDurable(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	checkConsistent(t, db2)
	if got := stateDigest(t, db2); got != want {
		t.Fatal("reopened state differs from closed state")
	}
	if db2.Recovery().ReplayedBatches == 0 {
		t.Fatal("reopen replayed nothing")
	}
	// The recovered DB keeps working durably.
	db2.MustExec("INSERT INTO R VALUES (100, 1, 1)")
	rs := db2.MustExec("SELECT id FROM R WHERE a = 1")
	if len(rs.Rows) == 0 {
		t.Fatal("index lost after recovery")
	}
}

func TestDurableCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDurable(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	db.MustExec("CREATE TABLE R (id INT, a INT, PRIMARY KEY (id))")
	for i := 0; i < 30; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO R VALUES (%d, %d)", i, i%5))
	}
	want := stateDigest(t, db)
	db.Crash()
	// Post-crash statements must fail and roll back, as with a real
	// process death: nothing after the crash point may be acknowledged.
	if _, _, err := db.Exec("INSERT INTO R VALUES (999, 0)"); err == nil {
		t.Fatal("statement succeeded after crash")
	}

	db2, err := OpenDurable(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	checkConsistent(t, db2)
	if got := stateDigest(t, db2); got != want {
		t.Fatal("recovered state differs from pre-crash acknowledged state")
	}
}

func TestDurableCheckpoint(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDurable(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	db.MustExec("CREATE TABLE R (id INT, a INT, PRIMARY KEY (id))")
	for i := 0; i < 40; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO R VALUES (%d, %d)", i, i%5))
	}
	db.MustExec("CREATE INDEX R_a ON R (a)")
	if err := db.Mgr.SuspendIndex("r(a)"); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint history lives only in the fresh segment.
	db.MustExec("INSERT INTO R VALUES (100, 2)")
	db.MustExec("DELETE FROM R WHERE id = 3")
	want := stateDigest(t, db)
	db.Crash()

	// The old segments are gone: only the snapshot plus the suffix
	// segment remain.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var snaps, segs int
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".snap") {
			snaps++
		}
		if strings.HasSuffix(e.Name(), ".log") {
			segs++
		}
	}
	if snaps != 1 || segs != 1 {
		t.Fatalf("after checkpoint: %d snapshots, %d segments", snaps, segs)
	}

	db2, err := OpenDurable(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	checkConsistent(t, db2)
	if db2.Recovery().SnapshotSeq == 0 {
		t.Fatal("recovery ignored the snapshot")
	}
	if got := stateDigest(t, db2); got != want {
		t.Fatal("checkpoint + suffix recovery differs from pre-crash state")
	}
	// The suspended index survived as suspended.
	pi := db2.Mgr.Index("r(a)")
	if pi == nil || pi.State() != storage.StateSuspended {
		t.Fatalf("suspended index state lost: %v", pi)
	}
}

// tornWorkload runs a small deterministic workload and returns the set
// of every acknowledged-statement state digest, in order. The digest at
// index i is the state after the i-th acknowledged statement (index 0
// is the empty database).
func tornWorkload(t *testing.T, db *DB, checkpointAt int) []string {
	t.Helper()
	stmts := []string{
		"CREATE TABLE R (id INT, a INT, PRIMARY KEY (id))",
		"CREATE TABLE S (id INT, x INT, PRIMARY KEY (id))",
	}
	for i := 0; i < 8; i++ {
		stmts = append(stmts, fmt.Sprintf("INSERT INTO R VALUES (%d, %d)", i, i%3))
		stmts = append(stmts, fmt.Sprintf("INSERT INTO S VALUES (%d, %d)", i, i%2))
	}
	stmts = append(stmts,
		"CREATE INDEX R_a ON R (a)",
		"UPDATE R SET a = 7 WHERE a = 1",
		"DELETE FROM S WHERE x = 0",
		"INSERT INTO R VALUES (50, 7)",
	)
	digests := []string{stateDigest(t, db)}
	for i, s := range stmts {
		if i == checkpointAt {
			if err := db.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
		db.MustExec(s)
		digests = append(digests, stateDigest(t, db))
	}
	return digests
}

// TestDurableTornWriteEveryOffset is the torn-write property test: the
// recorded log is truncated at EVERY byte offset, and recovery from
// each truncation must land exactly on some acknowledged-statement
// prefix — never a partially applied statement, never an inconsistent
// index.
func TestDurableTornWriteEveryOffset(t *testing.T) {
	for _, ckptAt := range []int{-1, 10} {
		name := "no-checkpoint"
		if ckptAt >= 0 {
			name = "mid-checkpoint"
		}
		t.Run(name, func(t *testing.T) {
			src := t.TempDir()
			db, err := OpenDurable(Config{Dir: src, Sync: wal.SyncNone})
			if err != nil {
				t.Fatal(err)
			}
			digests := tornWorkload(t, db, ckptAt)
			db.Crash()
			allowed := make(map[string]int, len(digests))
			for i, d := range digests {
				allowed[d] = i
			}

			// Find the live suffix segment (post-checkpoint there is
			// exactly one log file).
			ents, err := os.ReadDir(src)
			if err != nil {
				t.Fatal(err)
			}
			var segName string
			for _, e := range ents {
				if strings.HasSuffix(e.Name(), ".log") {
					if segName != "" {
						t.Fatalf("expected one live segment, found %s and %s", segName, e.Name())
					}
					segName = e.Name()
				}
			}
			data, err := os.ReadFile(filepath.Join(src, segName))
			if err != nil {
				t.Fatal(err)
			}
			if testing.Short() && len(data) > 2048 {
				t.Skipf("log is %d bytes; full per-byte sweep skipped in -short", len(data))
			}

			lastPrefix := -1
			for off := 0; off <= len(data); off++ {
				dir := copyDir(t, src)
				if err := os.Truncate(filepath.Join(dir, segName), int64(off)); err != nil {
					t.Fatal(err)
				}
				rdb, err := OpenDurable(Config{Dir: dir, Sync: wal.SyncNone})
				if err != nil {
					t.Fatalf("offset %d: recovery failed: %v", off, err)
				}
				got := stateDigest(t, rdb)
				idx, ok := allowed[got]
				if !ok {
					t.Fatalf("offset %d: recovered state matches no acknowledged prefix", off)
				}
				if idx < lastPrefix {
					t.Fatalf("offset %d: recovery regressed from prefix %d to %d", off, lastPrefix, idx)
				}
				lastPrefix = idx
				if err := rdb.Mgr.CheckConsistency(); err != nil {
					t.Fatalf("offset %d: %v", off, err)
				}
				rdb.Crash()
			}
			if lastPrefix != len(digests)-1 {
				t.Fatalf("full log recovered prefix %d, want %d", lastPrefix, len(digests)-1)
			}
		})
	}
}

// TestDurableBitFlipEveryRecord flips one byte inside every record of
// the recorded log; recovery must stop at the corrupted record's batch
// boundary (or earlier) and still land on an acknowledged prefix.
func TestDurableBitFlipEveryRecord(t *testing.T) {
	src := t.TempDir()
	db, err := OpenDurable(Config{Dir: src, Sync: wal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	digests := tornWorkload(t, db, -1)
	db.Crash()
	allowed := make(map[string]bool, len(digests))
	for _, d := range digests {
		allowed[d] = true
	}

	segName := wal.SegmentName(0)
	data, err := os.ReadFile(filepath.Join(src, segName))
	if err != nil {
		t.Fatal(err)
	}
	// Locate record boundaries by decoding the intact log.
	var bounds []int
	for off := 0; off < len(data); {
		_, n, err := wal.DecodeRecord(data[off:])
		if err != nil {
			t.Fatalf("intact log undecodable at %d: %v", off, err)
		}
		bounds = append(bounds, off)
		off += n
	}
	for i, off := range bounds {
		end := len(data)
		if i+1 < len(bounds) {
			end = bounds[i+1]
		}
		dir := copyDir(t, src)
		path := filepath.Join(dir, segName)
		mut := append([]byte(nil), data...)
		mut[off+(end-off)/2] ^= 0x20
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		rdb, err := OpenDurable(Config{Dir: dir, Sync: wal.SyncNone})
		if err != nil {
			t.Fatalf("record %d: recovery failed: %v", i, err)
		}
		if !rdb.Recovery().Torn {
			t.Fatalf("record %d: corruption not detected", i)
		}
		if got := stateDigest(t, rdb); !allowed[got] {
			t.Fatalf("record %d: recovered state matches no acknowledged prefix", i)
		}
		if err := rdb.Mgr.CheckConsistency(); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		rdb.Crash()
	}
}
