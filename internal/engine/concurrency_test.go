package engine_test

// Race/stress coverage for the concurrent engine: N goroutines submit
// INSERT/SELECT/UPDATE statements while the online tuner observes every
// one of them and creates indexes on background goroutines. Run with
// -race; the assertions themselves are schedule-independent (no lost
// updates, index/heap consistency, clean shutdown).

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"onlinetuner/internal/core"
	"onlinetuner/internal/engine"
	"onlinetuner/internal/storage"
)

// newStressDB builds two tables: acct, hammered by read-modify-write
// updates, and evt, growing under inserts — both carrying non-key
// columns the read workload filters on, so the tuner wants indexes on
// tables that are being written concurrently.
func newStressDB(t *testing.T, acctRows, evtRows int) *engine.DB {
	t.Helper()
	db := engine.Open()
	db.MustExec("CREATE TABLE acct (id INT, grp INT, bal INT, PRIMARY KEY (id))")
	db.MustExec("CREATE TABLE evt (id INT, k INT, v INT, PRIMARY KEY (id))")
	for i := 0; i < acctRows; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO acct (id, grp, bal) VALUES (%d, %d, 0)", i, i%10))
	}
	for i := 0; i < evtRows; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO evt (id, k, v) VALUES (%d, %d, %d)", i, i%50, i))
	}
	for _, tbl := range []string{"acct", "evt"} {
		if err := db.Analyze(tbl); err != nil {
			t.Fatalf("analyze %s: %v", tbl, err)
		}
	}
	return db
}

func TestConcurrentStatementsWithTuner(t *testing.T) {
	const (
		acctRows = 200
		evtRows  = 500
		updaters = 4
		readers  = 3
		writers  = 2 // evt inserters
		iters    = 150
	)
	db := newStressDB(t, acctRows, evtRows)
	tn := core.Attach(db, core.Options{
		ThrottleEvery:   1,
		Async:           true,
		MaxCandidates:   32,
		CooldownQueries: 5,
	})
	defer tn.Close()

	var (
		wg         sync.WaitGroup
		increments int64
		incMu      sync.Mutex
		errs       = make(chan error, updaters+readers+writers)
	)

	for w := 0; w < updaters; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			local := int64(0)
			for i := 0; i < iters; i++ {
				id := rng.Intn(acctRows)
				rs, _, err := db.Exec(fmt.Sprintf("UPDATE acct SET bal = bal + 1 WHERE id = %d", id))
				if err != nil {
					errs <- fmt.Errorf("update: %w", err)
					return
				}
				local += int64(rs.Affected)
			}
			incMu.Lock()
			increments += local
			incMu.Unlock()
		}(int64(w + 1))
	}
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				var q string
				if i%2 == 0 {
					q = fmt.Sprintf("SELECT v FROM evt WHERE k = %d", rng.Intn(50))
				} else {
					q = fmt.Sprintf("SELECT bal FROM acct WHERE grp = %d", rng.Intn(10))
				}
				if _, err := db.Query(q); err != nil {
					errs <- fmt.Errorf("select: %w", err)
					return
				}
			}
		}(int64(100 + w))
	}
	inserted := make([]int, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				id := evtRows + n*iters + i
				_, _, err := db.Exec(fmt.Sprintf("INSERT INTO evt (id, k, v) VALUES (%d, %d, %d)", id, id%50, id))
				if err != nil {
					errs <- fmt.Errorf("insert: %w", err)
					return
				}
				inserted[n]++
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// No lost updates: the balance total must equal the number of
	// single-row UPDATEs that reported success.
	rs, err := db.Query("SELECT bal FROM acct")
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, r := range rs.Rows {
		total += r[0].Int()
	}
	if total != increments {
		t.Errorf("lost updates: balance total %d, applied increments %d", total, increments)
	}

	// No lost inserts.
	wantEvt := evtRows
	for _, n := range inserted {
		wantEvt += n
	}
	if got := db.Mgr.Heap("evt").Len(); got != wantEvt {
		t.Errorf("evt rows = %d, want %d", got, wantEvt)
	}

	// Every index the tuner built concurrently with the DML must be
	// complete: one entry per live row of its table.
	for _, ix := range db.Configuration() {
		pi := db.Mgr.Index(ix.ID())
		if pi == nil || pi.State() != storage.StateActive {
			t.Errorf("configuration index %s not active", ix)
			continue
		}
		if got, want := pi.Tree().Len(), db.Mgr.Heap(ix.Table).Len(); got != want {
			t.Errorf("index %s has %d entries, table has %d rows", ix, got, want)
		}
	}

	m := tn.Metrics()
	if m.Queries == 0 {
		t.Error("tuner observed no statements")
	}
}

// TestConcurrentDDLAndDML interleaves manual index DDL with reads and
// writes over the same table: DDL takes the table's exclusive lock, so
// every statement must either run before or after it, never mid-build.
func TestConcurrentDDLAndDML(t *testing.T) {
	const iters = 60
	db := newStressDB(t, 100, 0)
	var wg sync.WaitGroup
	errs := make(chan error, 3)

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters/4; i++ {
			if _, _, err := db.Exec("CREATE INDEX acct_grp ON acct (grp, id)"); err != nil {
				errs <- fmt.Errorf("create: %w", err)
				return
			}
			if _, _, err := db.Exec("DROP INDEX acct_grp"); err != nil {
				errs <- fmt.Errorf("drop: %w", err)
				return
			}
		}
	}()
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				var err error
				if i%2 == 0 {
					_, err = db.Query(fmt.Sprintf("SELECT bal FROM acct WHERE grp = %d", rng.Intn(10)))
				} else {
					_, _, err = db.Exec(fmt.Sprintf("UPDATE acct SET bal = bal + 1 WHERE id = %d", rng.Intn(100)))
				}
				if err != nil {
					errs <- err
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestConcurrentDDLChurnWithPlanCache hammers the plan cache's
// invalidation path: readers replay a handful of query templates with
// varying literals (exact hits, rebind hits and misses) while one
// goroutine churns index DDL and Analyze on the read table — each bumps
// an epoch the cached entries are keyed by — and another inserts into a
// second table. acct's contents never change, so every count a reader
// sees has exactly one correct value no matter which cached or fresh
// plan produced it.
func TestConcurrentDDLChurnWithPlanCache(t *testing.T) {
	const (
		acctRows = 200
		readers  = 4
		iters    = 150
	)
	db := newStressDB(t, acctRows, 50)
	db.SetPlanCacheMode(engine.CacheRebind)

	var wg sync.WaitGroup
	errs := make(chan error, readers+2)

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters/6; i++ {
			if _, _, err := db.Exec("CREATE INDEX acct_grp ON acct (grp, id)"); err != nil {
				errs <- fmt.Errorf("create: %w", err)
				return
			}
			if err := db.Analyze("acct"); err != nil {
				errs <- fmt.Errorf("analyze: %w", err)
				return
			}
			if _, _, err := db.Exec("DROP INDEX acct_grp"); err != nil {
				errs <- fmt.Errorf("drop: %w", err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			id := 1000 + i
			if _, _, err := db.Exec(fmt.Sprintf("INSERT INTO evt (id, k, v) VALUES (%d, %d, %d)", id, id%50, id)); err != nil {
				errs <- fmt.Errorf("insert: %w", err)
				return
			}
		}
	}()
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				grp := rng.Intn(10)
				rs, err := db.Query(fmt.Sprintf("SELECT id FROM acct WHERE grp = %d", grp))
				if err != nil {
					errs <- fmt.Errorf("select: %w", err)
					return
				}
				if len(rs.Rows) != acctRows/10 {
					errs <- fmt.Errorf("grp %d: got %d rows, want %d", grp, len(rs.Rows), acctRows/10)
					return
				}
			}
		}(int64(w + 1))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	s := db.PlanCacheStats()
	if s.Hits+s.RebindHits == 0 {
		t.Errorf("plan cache never hit under churn: %+v", s)
	}
	if s.Invalidations == 0 {
		t.Errorf("DDL churn caused no invalidations: %+v", s)
	}
}

// TestConcurrentAnalyze runs Analyze against a table under concurrent
// DML: the shared statement lock must yield a mutually consistent column
// sample (same length for every column).
func TestConcurrentAnalyze(t *testing.T) {
	db := newStressDB(t, 100, 0)
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 30; i++ {
			if err := db.Analyze("acct"); err != nil {
				errs <- err
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 120; i++ {
			id := 100 + i
			if _, _, err := db.Exec(fmt.Sprintf("INSERT INTO acct (id, grp, bal) VALUES (%d, %d, 0)", id, id%10)); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if cs := db.Stats.Get("acct", "grp"); cs == nil {
		t.Fatal("no stats for acct.grp")
	}
}

// TestTunerCloseMidBuild shuts the tuner down while statements are still
// flowing: Close must cancel any in-flight background build and close
// subscriber channels exactly once.
func TestTunerCloseMidBuild(t *testing.T) {
	db := newStressDB(t, 50, 300)
	tn := core.Attach(db, core.Options{ThrottleEvery: 1, Async: true, CooldownQueries: 1})
	ev := tn.Subscribe(256)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, _ = db.Query(fmt.Sprintf("SELECT v FROM evt WHERE k = %d", rng.Intn(50)))
			}
		}(int64(w))
	}
	// Let some observations accumulate, then close the tuner underneath
	// the running statements.
	for i := 0; i < 50; i++ {
		db.MustExec(fmt.Sprintf("SELECT v FROM evt WHERE k = %d", i%50))
	}
	tn.Close()
	tn.Close() // idempotent
	close(stop)
	wg.Wait()

	// The event channel must be closed (drain whatever was buffered).
	for range ev {
	}
}
