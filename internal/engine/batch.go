package engine

import (
	"context"

	"onlinetuner/internal/executor"
	"onlinetuner/internal/sql"
)

// ExecBatch executes a sequence of statements as one isolation unit:
// the union of every statement's table locks is acquired once, up
// front, in sorted order (writes exclusive, reads shared), and held
// across the whole batch. Concurrent statements therefore see either
// none or all of the batch's effects on the locked tables — this is
// the serving layer's transaction scope (BEGIN ... COMMIT).
//
// Atomicity is statement-granular: each statement inside the span
// commits (and, in durable mode, WAL-acknowledges) individually, and a
// runtime failure stops the batch at that statement — earlier
// statements stay applied, the failing one rolls back as any statement
// failure does, later ones never run. The returned applied count says
// how many completed; isolation still holds because the lock span
// covers the whole attempt. Callers that need all-or-nothing semantics
// must keep their batches to statements that cannot fail at runtime
// (the wire protocol documents this contract).
//
// Because every lock is taken before the first statement runs, a batch
// cannot deadlock with other statements or batches: all acquisition
// follows the same global sorted order, exactly like single statements.
// A DROP INDEX whose index is created earlier in the same batch locks
// correctly only if the created index's table is already in the span
// (it is, through the CREATE INDEX statement's own write lock).
func (db *DB) ExecBatch(ctx context.Context, texts []string) (results []*executor.ResultSet, infos []*QueryInfo, applied int, err error) {
	if len(texts) == 0 {
		return nil, nil, 0, nil
	}
	stmts := make([]sql.Statement, len(texts))
	fps := make([]*sql.Fingerprint, len(texts))
	for i, text := range texts {
		if e := db.pc.lookupStmt(text); e != nil {
			stmts[i], fps[i] = e.stmt, e.fp
			continue
		}
		stmt, perr := sql.Parse(text)
		if perr != nil {
			db.execErrors.Inc()
			return nil, nil, 0, perr
		}
		var fp *sql.Fingerprint
		if db.PlanCacheMode() != CacheOff && cacheable(stmt) {
			f := sql.FingerprintOf(stmt)
			fp = &f
		}
		db.pc.storeStmt(&stmtEntry{text: text, stmt: stmt, fp: fp})
		stmts[i], fps[i] = stmt, fp
	}

	reads, writes := db.batchLockSets(stmts)
	release := db.locks.acquire(reads, writes)
	defer release()

	results = make([]*executor.ResultSet, 0, len(texts))
	infos = make([]*QueryInfo, 0, len(texts))
	for i, stmt := range stmts {
		if cerr := ctx.Err(); cerr != nil {
			db.execErrors.Inc()
			return results, infos, applied, cerr
		}
		tr, owned := db.startTrace(ctx, texts[i])
		rs, info, serr := db.execLocked(ctx, texts[i], stmt, fps[i], tr)
		if owned {
			db.ob.FinishTrace(tr)
		}
		if serr != nil {
			return results, infos, applied, serr
		}
		results = append(results, rs)
		infos = append(infos, info)
		applied++
	}
	return results, infos, applied, nil
}

// batchLockSets computes the union lock classification for a batch: a
// table written by any statement is exclusive for the whole span,
// everything else referenced is shared.
func (db *DB) batchLockSets(stmts []sql.Statement) (reads, writes []string) {
	wset := make(map[string]bool)
	rset := make(map[string]bool)
	for _, stmt := range stmts {
		r, w := db.lockTablesFor(stmt)
		for _, t := range w {
			wset[t] = true
		}
		for _, t := range r {
			rset[t] = true
		}
	}
	for t := range wset {
		writes = append(writes, t)
	}
	for t := range rset {
		if !wset[t] {
			reads = append(reads, t)
		}
	}
	return reads, writes
}
