package engine

import (
	"fmt"
	"strings"
	"testing"
)

// TestRulesExplainProvenance: an applied rule announces itself as a
// "-- rule:" header line, and disabling the rule set removes both the
// lines and the rewritten operators — without changing the rows.
func TestRulesExplainProvenance(t *testing.T) {
	db := openRS(t, 500)
	const q = "SELECT id, a FROM R WHERE a < 50 ORDER BY a DESC, id LIMIT 10"

	on, err := db.ExplainString(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(on, "-- rule: topn-pushdown") {
		t.Fatalf("rules-on EXPLAIN missing provenance:\n%s", on)
	}
	if !strings.Contains(on, "TopN") {
		t.Fatalf("rules-on EXPLAIN missing TopN:\n%s", on)
	}
	rowsOn := db.MustExec(q)

	if err := db.SetRules("none"); err != nil {
		t.Fatal(err)
	}
	off, err := db.ExplainString(q)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(off, "-- rule:") {
		t.Fatalf("rules-off EXPLAIN still has provenance:\n%s", off)
	}
	if !strings.Contains(off, "Sort") || !strings.Contains(off, "Limit") {
		t.Fatalf("rules-off EXPLAIN should fall back to Sort+Limit:\n%s", off)
	}
	rowsOff := db.MustExec(q)

	got, want := fmt.Sprint(rowsOn.Rows), fmt.Sprint(rowsOff.Rows)
	if got != want {
		t.Fatalf("rule toggle changed results:\non:  %s\noff: %s", got, want)
	}
}

// TestRulesPartOfPlanCacheKey: toggling the rule set must invalidate
// cached plans — a plan built under one rule set must never serve a
// session running another.
func TestRulesPartOfPlanCacheKey(t *testing.T) {
	db := openRS(t, 500)
	const q = "SELECT id, a FROM R WHERE a < 50 ORDER BY a DESC, id LIMIT 10"

	wantMarker(t, db, q, "-- plan: fresh")
	wantMarker(t, db, q, "-- plan: cached (exact)")

	before := db.PlanCacheStats()
	if err := db.SetRules("none"); err != nil {
		t.Fatal(err)
	}
	wantMarker(t, db, q, "-- plan: fresh")
	if s := db.PlanCacheStats(); s.Invalidations <= before.Invalidations {
		t.Fatalf("rule change did not invalidate: %+v -> %+v", before, s)
	}
	wantMarker(t, db, q, "-- plan: cached (exact)")

	if err := db.SetRules("all"); err != nil {
		t.Fatal(err)
	}
	wantMarker(t, db, q, "-- plan: fresh")
	wantMarker(t, db, q, "-- plan: cached (exact)")
}

// TestRulesConfigRoundTrip: the Rules accessor reflects SetRules and
// the Config field, and invalid specs are rejected without changing
// the active set.
func TestRulesConfigRoundTrip(t *testing.T) {
	db := openRS(t, 10)
	if got := db.Rules(); got != "all" {
		t.Fatalf("default rules = %q, want all", got)
	}
	if err := db.SetRules("topn,minmax"); err != nil {
		t.Fatal(err)
	}
	got := db.Rules()
	if !strings.Contains(got, "topn") || !strings.Contains(got, "minmax") || strings.Contains(got, "unnest") {
		t.Fatalf("rules after SetRules(topn,minmax) = %q", got)
	}
	if err := db.SetRules("bogus-rule"); err == nil {
		t.Fatal("invalid rule spec accepted")
	}
	if db.Rules() != got {
		t.Fatalf("failed SetRules changed active set to %q", db.Rules())
	}
	db2 := OpenConfig(Config{Rules: "none"})
	defer db2.Close()
	if got := db2.Rules(); got != "none" {
		t.Fatalf("Config.Rules=none → %q", got)
	}
}
