package engine

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"onlinetuner/internal/obs"
	"onlinetuner/internal/sql"
	"onlinetuner/internal/storage"
)

// TestTraceRecordsPipelinePhases checks that one traced statement
// produces the engine's pipeline phases in order, with cache provenance
// recorded on the optimize span and on the trace itself.
func TestTraceRecordsPipelinePhases(t *testing.T) {
	db := openRS(t, 300)
	db.Observability().EnableTracing(8, 1)
	const q = "SELECT a, b FROM R WHERE a < 10"
	db.MustExec(q) // fresh
	db.MustExec(q) // cached (exact)

	traces := db.Observability().Traces()
	if len(traces) != 2 {
		t.Fatalf("ring holds %d traces, want 2", len(traces))
	}
	for i, tr := range traces {
		if err := tr.Validate(); err != nil {
			t.Fatalf("trace %d invalid: %v", i, err)
		}
		for _, phase := range []string{"parse", "lock-wait", "optimize", "execute", "observe"} {
			if phase == "observe" {
				continue // no observer installed
			}
			if tr.FindSpan(phase) == nil {
				t.Fatalf("trace %d missing phase %q:\n%s", i, phase, tr)
			}
		}
		if got := tr.FindSpan("execute").Rows; got != 30 {
			t.Errorf("trace %d execute rows = %d, want 30", i, got)
		}
	}
	if p := traces[0].Provenance; p != "fresh" {
		t.Errorf("first run provenance = %q, want fresh", p)
	}
	if p := traces[1].Provenance; p != "cached (exact)" {
		t.Errorf("second run provenance = %q, want cached (exact)", p)
	}
	if traces[0].Requests == 0 {
		t.Error("traced statement recorded no what-if requests")
	}
	if sp := traces[1].FindSpan("optimize"); sp.Attr != "cached (exact)" {
		t.Errorf("optimize span attr = %q", sp.Attr)
	}
}

// TestTraceSpansWellFormedUnderStress validates every retained span
// tree after a concurrent mixed workload with stride-1 tracing. Run
// with -race this doubles as the data-race check on the trace path.
func TestTraceSpansWellFormedUnderStress(t *testing.T) {
	db := openRS(t, 500)
	db.Observability().EnableTracing(512, 1)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				switch i % 4 {
				case 0:
					db.MustExec(fmt.Sprintf("SELECT a, b FROM R WHERE a < %d", 5+i%20))
				case 1:
					db.MustExec("SELECT x, y FROM S WHERE x < 40")
				case 2:
					db.MustExec(fmt.Sprintf("INSERT INTO R VALUES (%d, 1, 2, 3, 4, 5)", 100000+w*1000+i))
				case 3:
					db.MustExec(fmt.Sprintf("UPDATE S SET y = %d WHERE id = %d", i, i%100))
				}
			}
		}(w)
	}
	wg.Wait()
	traces := db.Observability().Traces()
	if len(traces) == 0 {
		t.Fatal("no traces retained")
	}
	for i, tr := range traces {
		if err := tr.Validate(); err != nil {
			t.Fatalf("trace %d (%q) invalid: %v\n%s", i, tr.Statement, err, tr)
		}
		if tr.FindSpan("execute") == nil {
			t.Fatalf("trace %d (%q) has no execute phase", i, tr.Statement)
		}
	}
}

// TestCallerOwnedTraceViaContext checks that a trace attached to the
// context is used in place of the sampler's and is NOT retained in the
// engine's ring — it belongs to the caller.
func TestCallerOwnedTraceViaContext(t *testing.T) {
	db := openRS(t, 200)
	tr := obs.NewTrace("caller")
	ctx := obs.WithTrace(context.Background(), tr)
	if _, _, err := db.ExecContext(ctx, "SELECT a FROM R WHERE a < 3"); err != nil {
		t.Fatal(err)
	}
	tr.Finish()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.FindSpan("execute") == nil {
		t.Fatalf("caller trace missing engine phases:\n%s", tr)
	}
	if got := len(db.Observability().Traces()); got != 0 {
		t.Fatalf("engine ring retained %d caller-owned traces", got)
	}
}

// TestSnapshotReconcilesWithPlanCacheStats drives hits, rebind hits,
// misses and invalidations, then requires the obs snapshot and
// PlanCacheStats to agree EXACTLY — they must be the same counters, not
// parallel bookkeeping.
func TestSnapshotReconcilesWithPlanCacheStats(t *testing.T) {
	db := openRS(t, 800)
	db.SetPlanCacheMode(CacheRebind)
	queries := []string{
		"SELECT a, b FROM R WHERE a < 10",
		"SELECT a, b FROM R WHERE a < 10", // exact hit
		"SELECT a, b FROM R WHERE a < 25", // rebind hit
		"SELECT x FROM S WHERE x < 5",
	}
	for _, q := range queries {
		db.MustExec(q)
	}
	// Invalidate by changing the physical configuration.
	db.MustExec("CREATE INDEX r_a ON R (a)")
	db.MustExec("SELECT a, b FROM R WHERE a < 10")

	st := db.PlanCacheStats()
	if st.Hits == 0 || st.RebindHits == 0 || st.Misses == 0 || st.Invalidations == 0 {
		t.Fatalf("workload did not exercise all counters: %+v", st)
	}
	snap := db.Observability().Reg.Snapshot()
	checks := map[string]int64{
		"plancache.hits":          st.Hits,
		"plancache.rebind_hits":   st.RebindHits,
		"plancache.misses":        st.Misses,
		"plancache.invalidations": st.Invalidations,
		"plancache.evictions":     st.Evictions,
		"plancache.stmt_hits":     st.StmtHits,
	}
	for name, want := range checks {
		if got := snap[name]; got != want {
			t.Errorf("snapshot[%q] = %v, PlanCacheStats says %d", name, got, want)
		}
	}
	if got := snap["engine.statements"]; got.(int64) < int64(len(queries)) {
		t.Errorf("engine.statements = %v, want >= %d", got, len(queries))
	}
}

// TestExplainAnalyzeSeqScanAccounting pins the EXPLAIN ANALYZE actuals
// of a sequential scan against the storage layer's own accounting: the
// scan must report examining every heap row, page traffic equal to the
// heap's accounted size, and an output cardinality bounded by what it
// scanned.
func TestExplainAnalyzeSeqScanAccounting(t *testing.T) {
	db := openRS(t, 600)
	a, err := db.ExplainAnalyze("SELECT a, b FROM R WHERE a < 10")
	if err != nil {
		t.Fatal(err)
	}
	h := db.Mgr.Heap("r")
	var leaf *AnalyzedNode
	for i := range a.Nodes {
		if a.Nodes[i].Scanned > 0 || a.Nodes[i].Pages > 0 {
			leaf = &a.Nodes[i]
		}
	}
	if leaf == nil {
		t.Fatalf("no leaf actuals recorded: %+v", a.Nodes)
	}
	if leaf.Scanned != int64(h.Len()) {
		t.Errorf("seq scan scanned %d rows, heap holds %d", leaf.Scanned, h.Len())
	}
	if leaf.Pages != h.Pages() {
		t.Errorf("seq scan pages = %d, heap accounts %d", leaf.Pages, h.Pages())
	}
	if leaf.ActualRows > leaf.Scanned {
		t.Errorf("actual rows %d exceeds scanned %d", leaf.ActualRows, leaf.Scanned)
	}
	if a.Nodes[0].ActualRows != int64(len(a.Result.Rows)) {
		t.Errorf("root actual rows %d != result rows %d", a.Nodes[0].ActualRows, len(a.Result.Rows))
	}
}

// TestExplainAnalyzeIndexSeekAccounting checks a seek's actuals obey
// the invariants that tie them to the page model: entries examined
// bound the output, and page traffic covers at least one key page plus
// the heap fetches.
func TestExplainAnalyzeIndexSeekAccounting(t *testing.T) {
	db := openRS(t, 600)
	db.MustExec("CREATE INDEX r_a ON R (a)")
	a, err := db.ExplainAnalyze("SELECT a, b FROM R WHERE a = 7")
	if err != nil {
		t.Fatal(err)
	}
	var leaf *AnalyzedNode
	for i := range a.Nodes {
		if a.Nodes[i].Scanned > 0 {
			leaf = &a.Nodes[i]
		}
	}
	if leaf == nil {
		t.Fatalf("no storage-touching operator: %+v", a.Nodes)
	}
	if leaf.ActualRows > leaf.Scanned {
		t.Errorf("actual rows %d exceeds scanned entries %d", leaf.ActualRows, leaf.Scanned)
	}
	if leaf.Pages < 1 {
		t.Errorf("seek touched %d pages, want >= 1", leaf.Pages)
	}
	// Fetching seeks pay one heap page per row on top of key pages.
	if pi := db.Mgr.Index("r(a)"); pi != nil && pi.State() == storage.StateActive {
		if max := pi.Pages() + leaf.Scanned + 1; leaf.Pages > max {
			t.Errorf("seek pages %d exceed key+fetch bound %d", leaf.Pages, max)
		}
	}
}

// TestExplainAnalyzeStringFormat pins the rendered shape: provenance
// marker first, then per-operator estimated AND actual annotations.
func TestExplainAnalyzeStringFormat(t *testing.T) {
	db := openRS(t, 300)
	const q = "SELECT a, b FROM R WHERE a < 10"
	db.MustExec(q)
	s, err := db.ExplainAnalyzeString(q)
	if err != nil {
		t.Fatal(err)
	}
	lines := splitLines(s)
	if lines[0] != "-- plan: cached (exact)" {
		t.Errorf("provenance line = %q", lines[0])
	}
	for _, ln := range lines[1:] {
		if !contains(ln, "(cost=") || !contains(ln, "(actual rows=") {
			t.Errorf("operator line missing annotations: %q", ln)
		}
	}
	if !contains(s, "scanned=") || !contains(s, "pages=") {
		t.Errorf("no storage actuals rendered:\n%s", s)
	}
}

// TestExplainAnalyzeDMLAffectedRows checks the DML root reports
// affected rows as its actual cardinality — and really executes.
func TestExplainAnalyzeDMLAffectedRows(t *testing.T) {
	db := openRS(t, 400)
	a, err := db.ExplainAnalyze("UPDATE S SET y = 1 WHERE x < 10")
	if err != nil {
		t.Fatal(err)
	}
	if a.Result.Affected == 0 {
		t.Fatal("update affected no rows")
	}
	if a.Nodes[0].ActualRows != int64(a.Result.Affected) {
		t.Errorf("root actual rows %d != affected %d", a.Nodes[0].ActualRows, a.Result.Affected)
	}
}

// TestOptimizerCostMonotoneInSelectivity is the metamorphic property:
// widening a range predicate can only increase the optimizer's
// estimated cardinality and cost — a wider range never reads less.
func TestOptimizerCostMonotoneInSelectivity(t *testing.T) {
	db := openRS(t, 1000)
	db.MustExec("CREATE INDEX r_a ON R (a)")
	prevCost, prevRows := -1.0, -1.0
	for _, hi := range []int{2, 5, 10, 20, 40, 60, 80, 99} {
		stmt, err := sql.Parse(fmt.Sprintf("SELECT a, b FROM R WHERE a < %d", hi))
		if err != nil {
			t.Fatal(err)
		}
		res, err := db.Opt.Optimize(stmt)
		if err != nil {
			t.Fatal(err)
		}
		if res.Rows < prevRows {
			t.Errorf("a < %d: est rows %.2f dropped below %.2f", hi, res.Rows, prevRows)
		}
		if res.Cost < prevCost {
			t.Errorf("a < %d: est cost %.2f dropped below %.2f", hi, res.Cost, prevCost)
		}
		prevCost, prevRows = res.Cost, res.Rows
	}
}

// TestTracingDisabledRetainsNothing: with tracing off, statements leave
// no traces behind (and the path costs one atomic load).
func TestTracingDisabledRetainsNothing(t *testing.T) {
	db := openRS(t, 100)
	for i := 0; i < 20; i++ {
		db.MustExec("SELECT a FROM R WHERE a < 5")
	}
	if got := len(db.Observability().Traces()); got != 0 {
		t.Fatalf("tracing disabled but %d traces retained", got)
	}
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
