package engine

import (
	"container/list"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"onlinetuner/internal/datum"
	"onlinetuner/internal/obs"
	"onlinetuner/internal/optimizer"
	"onlinetuner/internal/sql"
	"onlinetuner/internal/storage"
)

// CacheMode selects how aggressively the engine reuses cached plans.
type CacheMode int32

const (
	// CacheExact (the default) serves a cached plan only when a fresh
	// optimization would provably return the identical Result: same
	// statement template, same literal bindings, and unchanged physical
	// configuration, statistics epoch, and table/index sizes. Every
	// recorded experiment therefore produces byte-identical output with
	// the cache on or off — the cache only removes redundant work.
	CacheExact CacheMode = iota
	// CacheRebind additionally reuses a cached Generic plan for a
	// statement with the same template but different literals,
	// substituting the new bindings into a clone of the plan
	// (generic-plan semantics: results are exact, cost estimates are
	// cheap ratio re-costs, and the access path is the one chosen for
	// the original literals).
	CacheRebind
	// CacheOff disables both tiers; every statement is optimized fresh.
	CacheOff
)

const (
	planShards   = 8
	planShardCap = 64 // per shard; 512 cached plans total
	stmtShardCap = 64 // per shard; 512 parsed statements total
)

// PlanCacheStats are the cache's observability counters.
type PlanCacheStats struct {
	Hits          int64 // exact plan hits (optimizer skipped)
	RebindHits    int64 // generic-plan reuses with literal substitution
	Misses        int64 // lookups that fell through to the optimizer
	Invalidations int64 // entries dropped on a config/stats epoch change
	Evictions     int64 // entries dropped by LRU capacity
	StmtHits      int64 // statement-text hits (parser + fingerprint skipped)
}

// planEntry is one cached optimization, valid for the exact
// (configVersion, statsEpoch, sizeSig) it was computed under. The
// stored Result's plan shares expression nodes with the fingerprinted
// statement's AST, so lits give literal slots by pointer identity for
// rebinding. Entries are immutable after insertion; all fields are read
// under the shard lock or from the (read-only) Result.
type planEntry struct {
	hash       uint64
	template   string
	bindings   []datum.Datum
	lits       []*sql.Literal
	res        *optimizer.Result
	cfgVersion int64
	statsEpoch int64
	sizeSig    uint64
	rules      optimizer.Rules
}

type planShard struct {
	mu     sync.Mutex
	ll     *list.List // front = most recently used
	byHash map[uint64]*list.Element
}

// stmtEntry caches one parsed statement text: the AST plus its
// fingerprint (nil for non-cacheable statements). Both are immutable
// and shared read-only across executions.
type stmtEntry struct {
	text string
	stmt sql.Statement
	fp   *sql.Fingerprint
}

type stmtShard struct {
	mu     sync.Mutex
	ll     *list.List
	byText map[string]*list.Element
}

// planCache is the engine's two-tier statement cache: a statement-text
// tier (text → parsed AST + fingerprint) and a plan tier (fingerprint →
// optimizer Result keyed by configVersion/statsEpoch/sizes). Both tiers
// are sharded LRUs safe for concurrent statements.
type planCache struct {
	mode  atomic.Int32
	plans [planShards]planShard
	stmts [planShards]stmtShard

	// The counters ARE the registry's metrics (not mirrors of them):
	// PlanCacheStats and the obs snapshot read the same atomics, so the
	// two views reconcile exactly by construction.
	hits          *obs.Counter
	rebindHits    *obs.Counter
	misses        *obs.Counter
	invalidations *obs.Counter
	evictions     *obs.Counter
	stmtHits      *obs.Counter
}

func newPlanCache(reg *obs.Registry) *planCache {
	pc := &planCache{
		hits:          reg.Counter("plancache.hits"),
		rebindHits:    reg.Counter("plancache.rebind_hits"),
		misses:        reg.Counter("plancache.misses"),
		invalidations: reg.Counter("plancache.invalidations"),
		evictions:     reg.Counter("plancache.evictions"),
		stmtHits:      reg.Counter("plancache.stmt_hits"),
	}
	for i := range pc.plans {
		pc.plans[i].ll = list.New()
		pc.plans[i].byHash = make(map[uint64]*list.Element)
	}
	for i := range pc.stmts {
		pc.stmts[i].ll = list.New()
		pc.stmts[i].byText = make(map[string]*list.Element)
	}
	return pc
}

// SetPlanCacheMode switches the plan cache mode at runtime.
func (db *DB) SetPlanCacheMode(m CacheMode) { db.pc.mode.Store(int32(m)) }

// PlanCacheMode returns the current plan cache mode.
func (db *DB) PlanCacheMode() CacheMode { return CacheMode(db.pc.mode.Load()) }

// PlanCacheStats returns a snapshot of the cache counters.
func (db *DB) PlanCacheStats() PlanCacheStats {
	return PlanCacheStats{
		Hits:          db.pc.hits.Value(),
		RebindHits:    db.pc.rebindHits.Value(),
		Misses:        db.pc.misses.Value(),
		Invalidations: db.pc.invalidations.Value(),
		Evictions:     db.pc.evictions.Value(),
		StmtHits:      db.pc.stmtHits.Value(),
	}
}

// cacheable reports whether a statement's optimization may be cached.
// INSERTs are excluded: every insert changes the table size, so an
// exact hit could never validate — caching them only pollutes slots.
func cacheable(stmt sql.Statement) bool {
	switch stmt.(type) {
	case *sql.Select, *sql.Update, *sql.Delete:
		return true
	}
	return false
}

func textShard(text string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(text))
	return h.Sum64()
}

// lookupStmt returns the cached parse of a statement text, or nil.
func (pc *planCache) lookupStmt(text string) *stmtEntry {
	sh := &pc.stmts[textShard(text)%planShards]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	el, ok := sh.byText[text]
	if !ok {
		return nil
	}
	sh.ll.MoveToFront(el)
	pc.stmtHits.Inc()
	return el.Value.(*stmtEntry)
}

func (pc *planCache) storeStmt(e *stmtEntry) {
	sh := &pc.stmts[textShard(e.text)%planShards]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.byText[e.text]; ok {
		el.Value = e
		sh.ll.MoveToFront(el)
		return
	}
	sh.byText[e.text] = sh.ll.PushFront(e)
	if sh.ll.Len() > stmtShardCap {
		back := sh.ll.Back()
		delete(sh.byText, back.Value.(*stmtEntry).text)
		sh.ll.Remove(back)
	}
}

// lookupPlan probes the plan tier. cfgV/statsE/sizeSig are the caller's
// freshly captured validity tokens; a template-matching entry from an
// older epoch is dropped (counted as an invalidation). Exact hits
// return a shallow copy of the cached Result flagged FromCache; in
// CacheRebind mode a Generic entry additionally serves different
// bindings through Optimizer.Rebind.
func (db *DB) lookupPlan(fp *sql.Fingerprint, mode CacheMode, cfgV, statsE int64, sizeSig uint64, rules optimizer.Rules) *optimizer.Result {
	pc := db.pc
	sh := &pc.plans[fp.Hash%planShards]
	sh.mu.Lock()
	el, ok := sh.byHash[fp.Hash]
	if !ok {
		sh.mu.Unlock()
		pc.misses.Inc()
		return nil
	}
	e := el.Value.(*planEntry)
	if e.template != fp.Template {
		sh.mu.Unlock() // hash collision: treat as a plain miss
		pc.misses.Inc()
		return nil
	}
	// The rule set is part of the plan-cache key: a plan optimized under
	// one setting must never serve a statement running under another.
	if e.cfgVersion != cfgV || e.statsEpoch != statsE || e.rules != rules {
		sh.ll.Remove(el)
		delete(sh.byHash, fp.Hash)
		sh.mu.Unlock()
		pc.invalidations.Inc()
		pc.misses.Inc()
		return nil
	}
	if e.sizeSig == sizeSig && bindingsEqual(e.bindings, fp.Bindings) {
		sh.ll.MoveToFront(el)
		res := e.res
		sh.mu.Unlock()
		pc.hits.Inc()
		out := *res
		out.FromCache = true
		return &out
	}
	if mode != CacheRebind || !e.res.Generic {
		sh.mu.Unlock()
		pc.misses.Inc()
		return nil
	}
	sh.ll.MoveToFront(el)
	res, lits := e.res, e.lits
	sh.mu.Unlock()
	if out, ok := db.Opt.Rebind(res, lits, fp.Bindings); ok {
		pc.rebindHits.Inc()
		return out
	}
	pc.misses.Inc()
	return nil
}

func (pc *planCache) storePlan(e *planEntry) {
	sh := &pc.plans[e.hash%planShards]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.byHash[e.hash]; ok {
		el.Value = e
		sh.ll.MoveToFront(el)
		return
	}
	sh.byHash[e.hash] = sh.ll.PushFront(e)
	if sh.ll.Len() > planShardCap {
		back := sh.ll.Back()
		delete(sh.byHash, back.Value.(*planEntry).hash)
		sh.ll.Remove(back)
		pc.evictions.Inc()
	}
}

func bindingsEqual(a, b []datum.Datum) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// sizeSigFor hashes the physical sizes an optimization of stmt depends
// on: heap rows/pages of every referenced table plus the identity and
// page count of each of its active secondary indexes. Together with
// configVersion and statsEpoch this pins every input of the optimizer,
// making an exact cache hit equivalent to re-running it.
func (db *DB) sizeSigFor(stmt sql.Statement) uint64 {
	reads, writes := db.lockTablesFor(stmt)
	names := make([]string, 0, len(reads)+len(writes))
	for _, t := range reads {
		names = append(names, strings.ToLower(t))
	}
	for _, t := range writes {
		names = append(names, strings.ToLower(t))
	}
	sort.Strings(names)
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	prev := ""
	for _, t := range names {
		if t == prev {
			continue
		}
		prev = t
		h.Write([]byte(t))
		h.Write([]byte{0xff})
		if hp := db.Mgr.Heap(t); hp != nil {
			put(uint64(hp.Len()))
			put(uint64(hp.Pages()))
		}
		for _, pi := range db.Mgr.TableIndexes(t) {
			if pi.Def.Primary || pi.State() != storage.StateActive {
				continue
			}
			h.Write([]byte(pi.Def.ID()))
			h.Write([]byte{0xfe})
			put(uint64(pi.Pages()))
		}
	}
	return h.Sum64()
}

// optimizeMaybeCached is the cache-aware optimizer entry point for the
// statement hot path. fpp threads a lazily computed fingerprint so one
// execution (including its stale-index retries) fingerprints at most
// once, and so Exec's statement-text tier can hand in a precomputed one.
func (db *DB) optimizeMaybeCached(stmt sql.Statement, fpp **sql.Fingerprint) (*optimizer.Result, error) {
	mode := db.PlanCacheMode()
	if mode == CacheOff || !cacheable(stmt) {
		return db.Opt.Optimize(stmt)
	}
	if *fpp == nil {
		f := sql.FingerprintOf(stmt)
		*fpp = &f
	}
	fp := *fpp
	cfgV := db.Mgr.ConfigVersion()
	statsE := db.Stats.Epoch()
	sizeSig := db.sizeSigFor(stmt)
	rules := db.Opt.Rules()
	if res := db.lookupPlan(fp, mode, cfgV, statsE, sizeSig, rules); res != nil {
		return res, nil
	}
	res, err := db.Opt.Optimize(stmt)
	if err != nil {
		return nil, err
	}
	// Store only when no physical, statistics or rule-set change raced
	// with the optimization: the counters are monotonic, so equality
	// means the Result still describes the state the validity tokens
	// name.
	if db.Mgr.ConfigVersion() == cfgV && db.Stats.Epoch() == statsE && db.Opt.Rules() == rules {
		db.pc.storePlan(&planEntry{
			hash:       fp.Hash,
			template:   fp.Template,
			bindings:   fp.Bindings,
			lits:       fp.Lits,
			res:        res,
			cfgVersion: cfgV,
			statsEpoch: statsE,
			sizeSig:    sizeSig,
			rules:      rules,
		})
	}
	return res, nil
}

// cacheMarker renders the provenance line ExplainString and EXPLAIN
// prepend to plan output.
func cacheMarker(res *optimizer.Result) string {
	switch {
	case res.Rebound:
		return "-- plan: cached (rebound)"
	case res.FromCache:
		return "-- plan: cached (exact)"
	default:
		return "-- plan: fresh"
	}
}

// ruleMarkers renders one "-- rule: <name>" provenance line per rewrite
// rule the optimizer applied to this plan, in canonical rule order.
func ruleMarkers(res *optimizer.Result) []string {
	out := make([]string, 0, len(res.RulesApplied))
	for _, name := range res.RulesApplied {
		out = append(out, "-- rule: "+name)
	}
	return out
}
