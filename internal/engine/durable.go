package engine

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"onlinetuner/internal/catalog"
	"onlinetuner/internal/datum"
	"onlinetuner/internal/obs"
	"onlinetuner/internal/storage"
	"onlinetuner/internal/wal"
)

// This file is the engine's durability layer: opening a database over a
// WAL directory, recovering state from the newest checkpoint snapshot
// plus the log suffix, checkpointing, and clean/crash shutdown.
//
// Recovery invariant: every statement whose WAL commit was acknowledged
// (CommitStmt returned nil) is reconstructed exactly; everything after
// the last durable commit record vanishes atomically. Replay drives the
// normal Manager DML/lifecycle entry points with no WAL and no fault
// injector installed, so recovered state is produced by the same code
// that produced the original state — RID assignment is deterministic
// (the heap free-list order is checkpointed), and replayed inserts
// assert they land on the logged RID.
//
// Lifecycle records and the checkpoint can straddle: a checkpoint
// quiesces statements (it holds every table's write lock) but not the
// tuner's background lifecycle transitions, so a create/drop/suspend/
// restart logged just after CheckpointBegin may already be reflected in
// the snapshot. Lifecycle replay is therefore idempotent — a record
// whose effect is already present is skipped. DML cannot straddle:
// statement commits happen under the table write lock the checkpoint
// holds.

// RecoveryInfo reports what OpenDurable reconstructed.
type RecoveryInfo struct {
	// SnapshotSeq is the WAL sequence of the restored checkpoint
	// snapshot (0 when the directory had none).
	SnapshotSeq uint64
	// ReplayedBatches / ReplayedRecords / ReplayedBytes count the log
	// suffix applied on top of the snapshot.
	ReplayedBatches int
	ReplayedRecords int
	ReplayedBytes   int64
	// Torn reports that the log ended in a torn or corrupt tail, which
	// recovery truncated back to the last durable commit.
	Torn bool
	// Resumed and Abandoned list the index IDs of in-flight background
	// builds the crash interrupted, by how they were resolved.
	Resumed   []string
	Abandoned []string
	// Decisions are the recovery's physical-design decisions
	// (kind "recovery-resume" / "recovery-abandon"), in the decision-log
	// schema so the tuner can adopt them into its own log.
	Decisions []obs.Decision
	// Duration is the wall-clock recovery time.
	Duration time.Duration
}

// OpenDurable opens (or creates) a durable database rooted at cfg.Dir.
// An existing directory is recovered: the newest valid checkpoint
// snapshot is restored, the WAL suffix is replayed to the last durable
// commit, any torn tail is truncated, and in-flight background builds
// are resumed or abandoned per cfg.ResumeBuilds.
func OpenDurable(cfg Config) (*DB, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("engine: durable open requires a directory")
	}
	start := time.Now()
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	db := OpenConfig(Config{ExecWorkers: cfg.ExecWorkers, ExecEngine: cfg.ExecEngine, Rules: cfg.Rules})
	db.walDir = cfg.Dir
	db.resumeBuilds = cfg.ResumeBuilds
	info := &RecoveryInfo{}

	snap, err := wal.LoadNewestSnapshot(cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("engine: recover snapshot: %w", err)
	}
	pending := make(map[string]*catalog.Index)
	if snap != nil {
		info.SnapshotSeq = snap.Seq
		if err := db.restoreSnapshot(snap, pending); err != nil {
			return nil, fmt.Errorf("engine: recover snapshot: %w", err)
		}
	}

	scan, err := wal.ScanDir(cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("engine: recover scan: %w", err)
	}
	info.Torn = scan.Torn
	lastSeq := info.SnapshotSeq
	for _, b := range scan.Batches {
		if b.Seq > lastSeq {
			lastSeq = b.Seq
		}
		if b.Seq <= info.SnapshotSeq {
			continue // already reflected in the snapshot
		}
		for _, rec := range b.Recs {
			if err := db.applyRecovered(rec, pending); err != nil {
				return nil, fmt.Errorf("engine: replay seq %d: %w", b.Seq, err)
			}
		}
		info.ReplayedBatches++
		info.ReplayedRecords += len(b.Recs)
	}
	info.ReplayedBytes = scan.Bytes
	if err := scan.TruncateTail(); err != nil {
		return nil, fmt.Errorf("engine: truncate torn tail: %w", err)
	}

	w, err := wal.OpenWriter(wal.Options{
		Dir:          cfg.Dir,
		Policy:       cfg.Sync,
		SegmentBytes: cfg.SegmentBytes,
		StartSeq:     lastSeq,
		StartSegment: scan.NextSegment,
	})
	if err != nil {
		return nil, fmt.Errorf("engine: open wal: %w", err)
	}
	w.SetMetrics(db.ob.Reg.Counter("wal.appends"), db.ob.Reg.Counter("wal.fsyncs"))
	db.ob.Reg.Counter("wal.replayed_records").Add(int64(info.ReplayedRecords))
	db.wal = w
	db.Mgr.SetWAL(w)

	// Resolve builds the crash caught in flight — AFTER the writer is
	// installed, so a resumed build's publish is itself durable.
	ids := make([]string, 0, len(pending))
	for id := range pending {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		ix := pending[id]
		if cfg.ResumeBuilds {
			if err := db.CreateIndex(ix); err == nil {
				info.Resumed = append(info.Resumed, id)
				info.Decisions = append(info.Decisions, obs.Decision{
					Kind: "recovery-resume", Index: id, Table: ix.Table,
					Reason: "build interrupted by crash; rebuilt at recovery",
				})
				continue
			}
		}
		info.Abandoned = append(info.Abandoned, id)
		info.Decisions = append(info.Decisions, obs.Decision{
			Kind: "recovery-abandon", Index: id, Table: ix.Table,
			Reason: "build interrupted by crash; work discarded",
		})
	}
	info.Duration = time.Since(start)
	db.recovery = info
	return db, nil
}

// restoreSnapshot rebuilds catalog and storage from a checkpoint
// snapshot. Indexes captured mid-build are not materialized; they join
// the pending-build set for post-replay resolution.
func (db *DB) restoreSnapshot(snap *wal.Snapshot, pending map[string]*catalog.Index) error {
	for i := range snap.Tables {
		st := &snap.Tables[i]
		t, err := tableFromDef(&st.Def)
		if err != nil {
			return err
		}
		if err := db.Cat.AddTable(t); err != nil {
			return err
		}
		if err := db.Mgr.CreateTable(t.Name); err != nil {
			return err
		}
		if err := db.Mgr.RestoreHeap(t.Name, st.Slots, st.Rows, st.Free); err != nil {
			return err
		}
	}
	for i := range snap.Indexes {
		si := &snap.Indexes[i]
		ix := indexFromDef(&si.Def)
		if si.State == wal.SnapIndexBuilding {
			pending[ix.ID()] = ix
			continue
		}
		state := storage.StateActive
		if si.State == wal.SnapIndexSuspended {
			state = storage.StateSuspended
		}
		if err := db.Cat.AddIndex(ix); err != nil {
			return err
		}
		if err := db.Mgr.RestoreIndex(ix, state, si.PendingOps); err != nil {
			return err
		}
	}
	return nil
}

// applyRecovered applies one replayed WAL record. DML is exact (a
// replayed insert must land on its logged RID); lifecycle records are
// idempotent because they may straddle the checkpoint they follow.
func (db *DB) applyRecovered(rec *wal.Record, pending map[string]*catalog.Index) error {
	switch rec.Kind {
	case wal.KindPageWrite:
		switch rec.Op {
		case wal.OpInsert:
			rid, _, err := db.Mgr.Insert(rec.Table, rec.Row)
			if err != nil {
				return err
			}
			if int64(rid) != rec.RID {
				return fmt.Errorf("non-deterministic replay: insert into %s got rid %d, logged %d", rec.Table, rid, rec.RID)
			}
		case wal.OpDelete:
			if _, err := db.Mgr.Delete(rec.Table, storage.RID(rec.RID)); err != nil {
				return err
			}
		case wal.OpUpdate:
			if _, err := db.Mgr.Update(rec.Table, storage.RID(rec.RID), rec.Row); err != nil {
				return err
			}
		default:
			return fmt.Errorf("unknown page-write op %d", rec.Op)
		}
	case wal.KindAlloc:
		if db.Cat.Table(rec.Schema.Name) != nil {
			return nil // straddled the checkpoint; snapshot already has it
		}
		t, err := tableFromDef(rec.Schema)
		if err != nil {
			return err
		}
		if err := db.Cat.AddTable(t); err != nil {
			return err
		}
		return db.Mgr.CreateTable(t.Name)
	case wal.KindIndexCreate:
		ix := indexFromDef(rec.Index)
		id := ix.ID()
		delete(pending, id)
		if db.Mgr.Index(id) != nil {
			return nil
		}
		if ex := db.Cat.IndexByID(id); ex != nil {
			ix = ex
		} else if err := db.Cat.AddIndex(ix); err != nil {
			return err
		}
		// Building from the heap at this replay position is equivalent to
		// the original snapshot+delta build: DML replayed after this
		// record maintains the now-active tree.
		_, err := db.Mgr.BuildIndex(ix)
		return err
	case wal.KindIndexDrop:
		ix := indexFromDef(rec.Index)
		id := ix.ID()
		if db.Mgr.Index(id) == nil {
			return nil
		}
		if err := db.Mgr.DropIndex(id); err != nil {
			return err
		}
		if ex := db.Cat.IndexByID(id); ex != nil {
			return db.Cat.DropIndex(ex.Name)
		}
		return nil
	case wal.KindIndexSuspend:
		id := indexFromDef(rec.Index).ID()
		if pi := db.Mgr.Index(id); pi == nil || pi.State() != storage.StateActive {
			return nil
		}
		return db.Mgr.SuspendIndex(id)
	case wal.KindIndexRestart:
		id := indexFromDef(rec.Index).ID()
		if pi := db.Mgr.Index(id); pi == nil || pi.State() != storage.StateSuspended {
			return nil
		}
		_, err := db.Mgr.RestartIndex(id)
		return err
	case wal.KindBuildStart:
		ix := indexFromDef(rec.Index)
		pending[ix.ID()] = ix
	case wal.KindBuildAbort:
		delete(pending, indexFromDef(rec.Index).ID())
	case wal.KindCommit, wal.KindCheckpointBegin, wal.KindCheckpointEnd:
		// Framing / checkpoint markers; no state.
	default:
		return fmt.Errorf("unknown record kind %d", rec.Kind)
	}
	return nil
}

// tableFromDef converts a logged table definition back to its catalog
// form.
func tableFromDef(def *wal.TableDef) (*catalog.Table, error) {
	cols := make([]catalog.Column, len(def.Cols))
	for i, c := range def.Cols {
		cols[i] = catalog.Column{Name: c.Name, Kind: datum.Kind(c.Kind), AvgWidth: c.AvgWidth}
	}
	return catalog.NewTable(def.Name, cols, append([]string(nil), def.PK...))
}

// indexFromDef converts a logged index definition back to its catalog
// form.
func indexFromDef(def *wal.IndexDef) *catalog.Index {
	return (&catalog.Index{
		Name:    def.Name,
		Table:   def.Table,
		Columns: append([]string(nil), def.Columns...),
	}).Canonicalize()
}

// Recovery returns what OpenDurable reconstructed, or nil for an
// in-memory database.
func (db *DB) Recovery() *RecoveryInfo { return db.recovery }

// WAL returns the database's log writer, or nil for an in-memory
// database.
func (db *DB) WAL() *wal.Writer { return db.wal }

// Dir returns the durable directory, or "" for an in-memory database.
func (db *DB) Dir() string { return db.walDir }

// Checkpoint writes a consistent snapshot of the whole database and
// truncates the log: it quiesces statements by taking every table's
// write lock, brackets the snapshot in CheckpointBegin/End records,
// fsyncs the snapshot into place, rolls the log to a fresh segment, and
// removes the now-obsolete segments and older snapshots. Direct Manager
// DML (bulk loaders) bypasses the statement locks and must be quiesced
// by the caller.
func (db *DB) Checkpoint() error {
	if db.wal == nil {
		return fmt.Errorf("engine: checkpoint on an in-memory database")
	}
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()
	tables := db.Cat.Tables()
	names := make([]string, 0, len(tables))
	for _, t := range tables {
		names = append(names, strings.ToLower(t.Name))
	}
	release := db.locks.acquire(nil, names)
	defer release()

	seq, err := db.wal.Append([]*wal.Record{{Kind: wal.KindCheckpointBegin}})
	if err != nil {
		return fmt.Errorf("engine: checkpoint begin: %w", err)
	}
	snap := db.Mgr.SnapshotState()
	snap.Seq = seq
	if _, err := wal.WriteSnapshot(db.walDir, snap); err != nil {
		return fmt.Errorf("engine: checkpoint write: %w", err)
	}
	if _, err := db.wal.Append([]*wal.Record{{Kind: wal.KindCheckpointEnd, Seq: seq}}); err != nil {
		return fmt.Errorf("engine: checkpoint end: %w", err)
	}
	if err := db.wal.Roll(); err != nil {
		return fmt.Errorf("engine: checkpoint roll: %w", err)
	}
	return wal.RemoveObsolete(db.walDir, db.wal.Segment(), seq)
}

// Close flushes and closes the log. The DB must not be used afterwards.
// A no-op for in-memory databases.
func (db *DB) Close() error {
	if db.wal == nil {
		return nil
	}
	err := db.wal.Close()
	db.Mgr.SetWAL(nil)
	return err
}

// Crash simulates a hard stop for recovery tests: the log file is
// closed without flushing and every later append fails. The writer
// stays installed so a statement racing the "crash" fails and rolls
// back, exactly as if the process had died. State on disk is whatever
// the OS had; reopening the directory with OpenDurable runs recovery.
func (db *DB) Crash() {
	if db.wal != nil {
		db.wal.Crash()
	}
}
