package engine

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"onlinetuner/internal/executor"
	"onlinetuner/internal/plan"
	"onlinetuner/internal/sql"
)

// AnalyzedNode is one plan operator annotated with both the optimizer's
// estimates and the executor's measured actuals.
type AnalyzedNode struct {
	// Depth is the operator's depth in the plan tree (root = 0).
	Depth int
	// Label is the operator's display label (plan.Node.Label).
	Label string
	// EstCost and EstRows are the optimizer's estimates (cumulative cost,
	// output cardinality) — what plain EXPLAIN shows.
	EstCost float64
	EstRows float64
	// ActualRows is the measured output cardinality (affected rows for a
	// DML root).
	ActualRows int64
	// Scanned and Pages are the storage-layer actuals of leaf operators:
	// rows/entries examined before residual filtering, and accounted page
	// traffic. Zero for interior operators.
	Scanned int64
	Pages   int64
	// Time is the operator's measured elapsed time, children included
	// (cumulative, like EstCost).
	Time time.Duration
	// Engine is the evaluation strategy the operator resolved to:
	// "vectorized", "row", or "" for operators that record no engine
	// (interior plumbing like Limit). The adaptive selector records it so
	// EXPLAIN ANALYZE shows which path each operator actually took.
	Engine string
}

// Analysis is the structured output of EXPLAIN ANALYZE: the executed
// plan's provenance, its annotated operators in EXPLAIN's pre-order, and
// the statement's result set.
type Analysis struct {
	// Provenance is the plan-cache provenance: "fresh", "cached (exact)"
	// or "cached (rebound)".
	Provenance string
	// Nodes lists the plan operators in pre-order (root first).
	Nodes []AnalyzedNode
	// Total is the root operator's measured time.
	Total time.Duration
	// Result is the statement's materialized output.
	Result *executor.ResultSet
}

// ExplainAnalyze plans AND executes a statement, measuring per-operator
// actuals. Unlike EXPLAIN it really runs the statement (a DML statement
// mutates the database), but like EXPLAIN the execution is not reported
// to the tuner: an analysis session is diagnostics, not workload. The
// plan cache is probed and populated exactly as a normal execution
// would, so the reported provenance matches what Exec would have used.
func (db *DB) ExplainAnalyze(text string) (*Analysis, error) {
	stmt, err := sql.Parse(text)
	if err != nil {
		return nil, err
	}
	if ex, ok := stmt.(*sql.Explain); ok {
		stmt = ex.Stmt
	}
	switch stmt.(type) {
	case *sql.CreateTable, *sql.CreateIndex, *sql.DropIndex:
		return nil, fmt.Errorf("engine: EXPLAIN ANALYZE does not support DDL")
	}
	reads, writes := db.lockTablesFor(stmt)
	release := db.locks.acquire(reads, writes)
	defer release()

	var fp *sql.Fingerprint
	for attempt := 0; attempt < 3; attempt++ {
		res, err := db.optimizeMaybeCached(stmt, &fp)
		if err != nil {
			return nil, err
		}
		col := executor.NewCollector()
		rs, err := db.Exe.RunCollected(res.Plan, col)
		if err != nil {
			if errors.Is(err, executor.ErrStaleIndex) {
				continue
			}
			return nil, err
		}
		a := &Analysis{Provenance: provenanceOf(res), Result: rs}
		annotate(a, res.Plan, col, 0)
		if len(a.Nodes) > 0 {
			a.Total = a.Nodes[0].Time
		}
		return a, nil
	}
	return nil, fmt.Errorf("engine: EXPLAIN ANALYZE gave up after stale-index retries")
}

// annotate walks the plan in EXPLAIN's pre-order, merging estimates with
// the collector's actuals.
func annotate(a *Analysis, n plan.Node, col *executor.Collector, depth int) {
	node := AnalyzedNode{
		Depth:   depth,
		Label:   n.Label(),
		EstCost: n.EstCost(),
		EstRows: n.EstRows(),
	}
	if st := col.Stats(n); st != nil {
		node.ActualRows = st.Rows()
		node.Scanned = st.Scanned()
		node.Pages = st.Pages()
		node.Time = st.Duration()
		node.Engine = st.Engine()
	}
	a.Nodes = append(a.Nodes, node)
	for _, c := range n.Children() {
		annotate(a, c, col, depth+1)
	}
}

// ExplainAnalyzeString renders an analysis in EXPLAIN's text format,
// with each operator line extended by its measured actuals:
//
//	-- plan: cached (exact)
//	Project (cost=310.23 rows=12) (actual rows=9 time=211µs)
//	  SeqScan lineitem (cost=305.00 rows=12) (actual rows=9 scanned=6005 pages=121 time=195µs)
//
// Scanned/pages appear on operators that touched storage directly.
func (db *DB) ExplainAnalyzeString(text string) (string, error) {
	a, err := db.ExplainAnalyze(text)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "-- plan: %s\n", a.Provenance)
	for _, n := range a.Nodes {
		sb.WriteString(strings.Repeat("  ", n.Depth))
		fmt.Fprintf(&sb, "%s (cost=%.2f rows=%.0f) (actual rows=%d", n.Label, n.EstCost, n.EstRows, n.ActualRows)
		if n.Scanned > 0 || n.Pages > 0 {
			fmt.Fprintf(&sb, " scanned=%d pages=%d", n.Scanned, n.Pages)
		}
		if n.Engine != "" {
			fmt.Fprintf(&sb, " engine=%s", n.Engine)
		}
		fmt.Fprintf(&sb, " time=%s)\n", n.Time.Round(time.Microsecond))
	}
	return sb.String(), nil
}
