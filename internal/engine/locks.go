package engine

import (
	"sort"
	"strings"
	"sync"

	"onlinetuner/internal/sql"
)

// tableLocks is the engine's sharded statement-level lock registry: one
// reader-writer lock per table, created on demand. A statement acquires
// shared locks on the tables it reads and exclusive locks on the tables
// it writes, for its whole execution (including the tuner's post-
// execution observation), so:
//
//   - any number of read statements over the same tables run in
//     parallel;
//   - DML is exclusive per table — read-modify-write statements like
//     UPDATE t SET v = v + 1 can never lose updates to a concurrent
//     writer;
//   - statements over disjoint tables never contend at all (the
//     "sharding" — the lock space is partitioned by table).
//
// All tables are locked up front in sorted name order, which makes
// deadlock impossible: every statement acquires locks along the same
// global order and never picks up another one mid-flight.
type tableLocks struct {
	mu sync.Mutex
	m  map[string]*sync.RWMutex
}

func newTableLocks() *tableLocks {
	return &tableLocks{m: make(map[string]*sync.RWMutex)}
}

func (tl *tableLocks) lockFor(name string) *sync.RWMutex {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	lk := tl.m[name]
	if lk == nil {
		lk = &sync.RWMutex{}
		tl.m[name] = lk
	}
	return lk
}

// acquire locks the given tables for one statement and returns the
// release function. A table appearing in both sets is locked once,
// exclusively.
func (tl *tableLocks) acquire(reads, writes []string) (release func()) {
	excl := make(map[string]bool, len(reads)+len(writes))
	for _, w := range writes {
		excl[strings.ToLower(w)] = true
	}
	for _, r := range reads {
		lr := strings.ToLower(r)
		if _, ok := excl[lr]; !ok {
			excl[lr] = false
		}
	}
	names := make([]string, 0, len(excl))
	for n := range excl {
		names = append(names, n)
	}
	sort.Strings(names)
	unlocks := make([]func(), 0, len(names))
	for _, n := range names {
		lk := tl.lockFor(n)
		if excl[n] {
			lk.Lock()
			unlocks = append(unlocks, lk.Unlock)
		} else {
			lk.RLock()
			unlocks = append(unlocks, lk.RUnlock)
		}
	}
	return func() {
		for i := len(unlocks) - 1; i >= 0; i-- {
			unlocks[i]()
		}
	}
}

// lockTablesFor classifies which tables a statement reads and writes.
// DROP INDEX resolves its table through the catalog; an unknown index
// yields no lock and the execution path reports the error.
func (db *DB) lockTablesFor(stmt sql.Statement) (reads, writes []string) {
	switch s := stmt.(type) {
	case *sql.Select:
		return selectTables(s), nil
	case *sql.Insert:
		if s.Query != nil {
			reads = selectTables(s.Query)
		}
		return reads, []string{s.Table}
	case *sql.Update:
		return nil, []string{s.Table}
	case *sql.Delete:
		return nil, []string{s.Table}
	case *sql.CreateTable:
		return nil, []string{s.Table}
	case *sql.CreateIndex:
		return nil, []string{s.Table}
	case *sql.DropIndex:
		if ix := db.Cat.Index(s.Name); ix != nil {
			return nil, []string{ix.Table}
		}
		return nil, nil
	case *sql.Explain:
		// EXPLAIN only optimizes; it still reads catalog/statistics state
		// of the referenced tables.
		r, w := db.lockTablesFor(s.Stmt)
		return append(r, w...), nil
	}
	return nil, nil
}

// selectTables lists every table referenced by a SELECT.
func selectTables(s *sql.Select) []string {
	out := []string{s.From.Table}
	for _, j := range s.Joins {
		out = append(out, j.Right.Table)
	}
	return out
}
