// Package engine is the database facade: it wires the SQL front end, the
// catalog, statistics, storage, optimizer and executor into a single DB
// handle, and exposes the hook point the online tuner attaches to. One
// Exec call is one "query arrival" in the paper's model: the statement is
// optimized (capturing its AND/OR request tree), executed, and reported
// to the observer.
package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"onlinetuner/internal/catalog"
	"onlinetuner/internal/datum"
	"onlinetuner/internal/executor"
	"onlinetuner/internal/fault"
	"onlinetuner/internal/obs"
	"onlinetuner/internal/optimizer"
	"onlinetuner/internal/par"
	"onlinetuner/internal/plan"
	"onlinetuner/internal/sql"
	"onlinetuner/internal/stats"
	"onlinetuner/internal/storage"
	"onlinetuner/internal/wal"
	"onlinetuner/internal/whatif"
)

// QueryInfo describes one optimized-and-executed statement.
type QueryInfo struct {
	SQL    string
	Stmt   sql.Statement
	Result *optimizer.Result // nil for DDL
	// EstCost is the optimizer's estimated cost of the executed plan under
	// the configuration it ran in — the c_i^{s_i} of the paper's cost model.
	EstCost float64
}

// Observer is notified after every non-DDL statement execution. The
// online tuner implements this.
type Observer interface {
	OnExecuted(info *QueryInfo)
}

// DB is an open database instance.
//
// Concurrency model: any number of goroutines may call Exec/ExecStmt
// concurrently. Each statement takes per-table reader-writer locks (see
// tableLocks) for its whole optimize→execute→observe span: reads share,
// writes to the same table serialize, and disjoint tables never
// contend. The observer (the online tuner) runs inside the statement's
// critical section, so it sees executions over any one table in a
// serial order. Physical changes the tuner makes (index creation in the
// background, drops) synchronize below the statement layer, inside
// storage; a statement whose plan loses its index mid-flight is
// transparently re-optimized (see executor.ErrStaleIndex).
type DB struct {
	Cat   *catalog.Catalog
	Mgr   *storage.Manager
	Stats *stats.Store
	Env   *whatif.Env
	Opt   *optimizer.Optimizer
	Exe   *executor.Executor

	locks *tableLocks
	pc    *planCache
	ob    *obs.Obs

	// Always-on pipeline counters; single atomic adds on the hot path.
	statements       *obs.Counter
	execErrors       *obs.Counter
	staleRetries     *obs.Counter
	transientRetries *obs.Counter

	// retryBackoffNS is the base delay before re-running a statement that
	// failed with a transient fault; it doubles per attempt. Atomic so
	// tests can shrink it while statements are in flight.
	retryBackoffNS atomic.Int64

	// Timed metrics, recorded only for traced statements: the extra
	// clock reads they need already happened for the trace's spans.
	execLatency *obs.Histogram
	lockWaitNS  *obs.Counter

	// Durable-mode state (see durable.go); zero for in-memory databases.
	wal          *wal.Writer
	walDir       string
	resumeBuilds bool
	ckptMu       sync.Mutex
	recovery     *RecoveryInfo

	obsMu    sync.RWMutex
	observer Observer
}

// Config carries engine construction options.
type Config struct {
	// ExecWorkers bounds intra-query parallelism: morsel-driven scans,
	// joins, aggregation and sorts use up to this many workers per
	// statement. Zero (or negative) selects GOMAXPROCS. Results are
	// byte-identical at every setting; only wall-clock time changes.
	ExecWorkers int

	// ExecEngine selects the execution engine: "auto" (default) picks
	// vectorized columnar evaluation per operator when its expressions
	// compile to predicate kernels and the input is large enough,
	// "vector" forces the columnar path wherever possible, "row" forces
	// scalar row-at-a-time evaluation everywhere. Results are
	// byte-identical under every mode; only the evaluation strategy (and
	// its speed) changes. Invalid values fall back to "auto".
	ExecEngine string

	// Rules selects the optimizer's cost-based rewrite rules: "all"
	// (default, also the empty string), "none", or a comma list of
	// unnest,topn,minmax,prune,joindp. Every rule is result-preserving;
	// toggling changes plan shape and cost, never statement output.
	// Invalid values fall back to "all".
	Rules string

	// Dir is the durable directory holding WAL segments and checkpoint
	// snapshots. Used by OpenDurable (which recovers an existing
	// directory); ignored by OpenConfig.
	Dir string
	// Sync selects the WAL fsync policy (default wal.SyncGroup).
	Sync wal.SyncPolicy
	// SegmentBytes overrides the WAL segment roll threshold (default
	// wal.DefaultSegmentBytes).
	SegmentBytes int64
	// ResumeBuilds makes recovery re-run background index builds a crash
	// interrupted; the default abandons them (the tuner will re-request
	// the index if it is still worth having).
	ResumeBuilds bool
}

// Open creates an empty database with default configuration.
func Open() *DB { return OpenConfig(Config{}) }

// OpenConfig creates an empty database with the given configuration.
func OpenConfig(cfg Config) *DB {
	cat := catalog.New()
	mgr := storage.NewManager(cat)
	st := stats.NewStore()
	env := whatif.NewEnv(cat, st, mgr)
	ob := obs.New()
	db := &DB{
		Cat:              cat,
		Mgr:              mgr,
		Stats:            st,
		Env:              env,
		Opt:              optimizer.New(env),
		Exe:              executor.New(cat, mgr),
		locks:            newTableLocks(),
		pc:               newPlanCache(ob.Reg),
		ob:               ob,
		statements:       ob.Reg.Counter("engine.statements"),
		execErrors:       ob.Reg.Counter("engine.errors"),
		staleRetries:     ob.Reg.Counter("engine.stale_retries"),
		transientRetries: ob.Reg.Counter("engine.transient_retries"),
		execLatency:      ob.Reg.Histogram("engine.exec_ns", obs.DefaultLatencyBuckets),
		lockWaitNS:       ob.Reg.Counter("engine.lock_wait_ns"),
	}
	db.retryBackoffNS.Store(int64(50 * time.Microsecond))
	morsels := ob.Reg.Counter("engine.exec_parallel_morsels")
	busy := ob.Reg.Gauge("engine.exec_workers_busy")
	db.Exe.SetParallelMetrics(morsels.Add, busy.Add)
	db.SetExecWorkers(cfg.ExecWorkers)
	if m, err := executor.ParseEngineMode(cfg.ExecEngine); err == nil {
		db.Exe.SetEngineMode(m)
	}
	if r, err := optimizer.ParseRules(cfg.Rules); err == nil {
		db.Opt.SetRules(r)
	}
	return db
}

// SetExecWorkers reconfigures intra-query parallelism at runtime; n <= 0
// selects GOMAXPROCS. Executor morsel regions and index-build sorts draw
// slots from the one pool installed here, so concurrent statements and
// background builds together never exceed the configured budget.
// In-flight statements finish on the pool they started with.
func (db *DB) SetExecWorkers(n int) {
	p := par.NewPool(n)
	db.Exe.SetPool(p)
	db.Mgr.SetPool(p)
}

// ExecWorkers returns the current intra-query worker budget.
func (db *DB) ExecWorkers() int { return db.Exe.Workers() }

// SetExecEngine reconfigures the execution engine at runtime:
// "auto" | "row" | "vector". In-flight statements finish on the mode
// they started with.
func (db *DB) SetExecEngine(mode string) error {
	m, err := executor.ParseEngineMode(mode)
	if err != nil {
		return err
	}
	db.Exe.SetEngineMode(m)
	return nil
}

// ExecEngine returns the configured execution engine mode.
func (db *DB) ExecEngine() string { return db.Exe.Engine().String() }

// SetRules reconfigures the optimizer's rewrite-rule set at runtime:
// "all", "none", or a comma list of unnest,topn,minmax,prune,joindp.
// The rule set participates in the plan-cache key, so cached plans from
// the previous setting are never served after a toggle. In-flight
// statements finish on the rules they resolved at start.
func (db *DB) SetRules(s string) error {
	r, err := optimizer.ParseRules(s)
	if err != nil {
		return err
	}
	db.Opt.SetRules(r)
	return nil
}

// Rules returns the configured optimizer rule set.
func (db *DB) Rules() string { return db.Opt.Rules().String() }

// SetFaults installs a fault injector on the storage layer; the engine,
// executor and WAL writer consult the same injector. Pass nil to remove
// it.
func (db *DB) SetFaults(inj *fault.Injector) {
	db.Mgr.SetFaults(inj)
	if db.wal != nil {
		db.wal.SetFaults(inj)
	}
}

// Faults returns the installed fault injector, or nil.
func (db *DB) Faults() *fault.Injector { return db.Mgr.Faults() }

// SetRetryBackoff sets the base delay before retrying a statement that
// hit a transient fault (the delay doubles per attempt).
func (db *DB) SetRetryBackoff(d time.Duration) { db.retryBackoffNS.Store(int64(d)) }

// retryWait sleeps the transient-retry backoff for the given attempt,
// abandoning the wait as soon as the context is cancelled.
func (db *DB) retryWait(ctx context.Context, attempt int) error {
	d := time.Duration(db.retryBackoffNS.Load()) << attempt
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Observability exposes the engine's metrics registry and statement
// tracer.
func (db *DB) Observability() *obs.Obs { return db.ob }

// SetObserver installs the post-execution observer (the online tuner).
func (db *DB) SetObserver(o Observer) {
	db.obsMu.Lock()
	defer db.obsMu.Unlock()
	db.observer = o
}

func (db *DB) getObserver() Observer {
	db.obsMu.RLock()
	defer db.obsMu.RUnlock()
	return db.observer
}

// Exec parses, plans and runs one statement. Repeated texts skip the
// parser and fingerprinter through the statement-text cache tier: the
// AST and fingerprint are immutable after construction, so they are
// shared read-only across executions.
func (db *DB) Exec(text string) (*executor.ResultSet, *QueryInfo, error) {
	return db.ExecContext(context.Background(), text)
}

// ExecContext is Exec accepting a context. A trace attached with
// obs.WithTrace records the statement's pipeline spans into the
// caller's trace; otherwise the engine's sampler decides whether this
// statement is traced into the ring.
func (db *DB) ExecContext(ctx context.Context, text string) (*executor.ResultSet, *QueryInfo, error) {
	tr, owned := db.startTrace(ctx, text)
	if owned {
		defer db.ob.FinishTrace(tr)
	}
	var parseSpan obs.SpanRef
	if tr != nil {
		parseSpan = tr.Phase("parse")
	}
	if e := db.pc.lookupStmt(text); e != nil {
		if tr != nil {
			parseSpan.SetAttr("stmt-cache hit")
		}
		return db.execStmtFP(ctx, text, e.stmt, e.fp, tr)
	}
	stmt, err := sql.Parse(text)
	if err != nil {
		db.noteErr(tr, err)
		return nil, nil, err
	}
	var fp *sql.Fingerprint
	if db.PlanCacheMode() != CacheOff && cacheable(stmt) {
		f := sql.FingerprintOf(stmt)
		fp = &f
	}
	db.pc.storeStmt(&stmtEntry{text: text, stmt: stmt, fp: fp})
	return db.execStmtFP(ctx, text, stmt, fp, tr)
}

// ExecStmt runs an already-parsed statement (callers that replay
// workloads avoid re-parsing). It holds the statement's table locks for
// the whole optimize→execute→observe span.
func (db *DB) ExecStmt(text string, stmt sql.Statement) (*executor.ResultSet, *QueryInfo, error) {
	tr, owned := db.startTrace(context.Background(), text)
	if owned {
		defer db.ob.FinishTrace(tr)
	}
	return db.execStmtFP(context.Background(), text, stmt, nil, tr)
}

// startTrace resolves the statement's trace: a context-carried trace
// belongs to the caller; otherwise the sampler may start one the engine
// owns (and must finish into the ring).
func (db *DB) startTrace(ctx context.Context, text string) (tr *obs.Trace, owned bool) {
	if t := obs.FromContext(ctx); t != nil {
		return t, false
	}
	t := db.ob.StartStatementTrace(text)
	return t, t != nil
}

// noteErr records a statement failure on the counters and the trace.
func (db *DB) noteErr(tr *obs.Trace, err error) {
	db.execErrors.Inc()
	if tr != nil && err != nil {
		tr.Err = err.Error()
	}
}

func (db *DB) execStmtFP(ctx context.Context, text string, stmt sql.Statement, fp *sql.Fingerprint, tr *obs.Trace) (*executor.ResultSet, *QueryInfo, error) {
	if err := ctx.Err(); err != nil {
		db.noteErr(tr, err)
		return nil, nil, err
	}
	reads, writes := db.lockTablesFor(stmt)
	var lockStart time.Time
	if tr != nil {
		tr.Phase("lock-wait")
		lockStart = time.Now()
	}
	release := db.locks.acquire(reads, writes)
	defer release()
	if tr != nil {
		db.lockWaitNS.Add(time.Since(lockStart).Nanoseconds())
	}
	return db.execLocked(ctx, text, stmt, fp, tr)
}

func (db *DB) execLocked(ctx context.Context, text string, stmt sql.Statement, fp *sql.Fingerprint, tr *obs.Trace) (*executor.ResultSet, *QueryInfo, error) {
	db.statements.Inc()
	var start time.Time
	if tr != nil {
		start = time.Now()
		defer func() { db.execLatency.Observe(float64(time.Since(start).Nanoseconds())) }()
	}
	switch s := stmt.(type) {
	case *sql.CreateTable:
		return db.execCreateTable(s)
	case *sql.CreateIndex:
		return db.execCreateIndex(s)
	case *sql.DropIndex:
		return db.execDropIndex(s)
	case *sql.Explain:
		return db.execExplain(s)
	}
	// The tuner may drop an index between our optimization and execution
	// (it runs inside OTHER statements' critical sections, over other
	// tables). Plans are stale-checked by the executor; on a stale plan
	// we re-optimize under the current configuration. Two retries bound
	// the loop — each retry needs a fresh drop of a freshly chosen
	// index, which the tuner's cooldown makes vanishingly rare.
	//
	// The same bounded loop retries transient injected faults — the
	// model for recoverable I/O hiccups — after an exponential backoff.
	// Permanent faults and real errors return immediately; the executor
	// guarantees a failed attempt left no partial mutations, so a retry
	// re-runs the statement from scratch.
	const maxAttempts = 3
	var rs *executor.ResultSet
	var res *optimizer.Result
	var err error
	var execSpan obs.SpanRef
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			db.noteErr(tr, cerr)
			return nil, nil, cerr
		}
		// A retry after ErrStaleIndex revalidates naturally: the drop that
		// invalidated the plan bumped the config version, so the cache
		// probe misses and the statement is optimized fresh.
		var optSpan obs.SpanRef
		if tr != nil {
			optSpan = tr.Phase("optimize")
		}
		res, err = db.optimizeMaybeCached(stmt, &fp)
		if err != nil {
			db.noteErr(tr, err)
			return nil, nil, err
		}
		if tr != nil {
			tr.Provenance = provenanceOf(res)
			tr.Requests = len(res.Requests())
			optSpan.SetAttr(tr.Provenance)
			execSpan = tr.Phase("execute")
		}
		// The statement-level injection site sits between planning and
		// execution, where a real engine would submit the plan for
		// execution and could be told "try again".
		if err = db.Mgr.Faults().Hit(fault.ExecStmt); err == nil {
			execCtx := ctx
			if tr != nil {
				// Carry the trace into the executor so parallel regions can
				// attach their exec.parallel / exec.worker spans.
				execCtx = obs.WithTrace(ctx, tr)
			}
			rs, err = db.Exe.RunContext(execCtx, res.Plan, nil)
		}
		if err == nil {
			break
		}
		switch {
		case errors.Is(err, executor.ErrStaleIndex) && attempt < maxAttempts-1:
			db.staleRetries.Inc()
		case fault.IsTransient(err) && attempt < maxAttempts-1:
			db.transientRetries.Inc()
			if werr := db.retryWait(ctx, attempt); werr != nil {
				db.noteErr(tr, werr)
				return nil, nil, werr
			}
		default:
			db.noteErr(tr, err)
			return nil, nil, err
		}
	}
	if err != nil {
		db.noteErr(tr, err)
		return nil, nil, err
	}
	if tr != nil {
		execSpan.SetRows(int64(len(rs.Rows)) + int64(rs.Affected))
	}
	info := &QueryInfo{SQL: text, Stmt: stmt, Result: res, EstCost: res.Cost}
	if o := db.getObserver(); o != nil {
		if tr != nil {
			tr.Phase("observe")
		}
		o.OnExecuted(info)
	}
	if tr != nil {
		tr.EndPhase()
	}
	return rs, info, nil
}

// provenanceOf names a result's plan-cache provenance: "fresh",
// "cached (exact)" or "cached (rebound)".
func provenanceOf(res *optimizer.Result) string {
	switch {
	case res.Rebound:
		return "cached (rebound)"
	case res.FromCache:
		return "cached (exact)"
	default:
		return "fresh"
	}
}

// MustExec runs a statement and panics on error; for tests and examples.
func (db *DB) MustExec(text string) *executor.ResultSet {
	rs, _, err := db.Exec(text)
	if err != nil {
		panic(fmt.Sprintf("engine: %s: %v", text, err))
	}
	return rs
}

// Query is Exec for read statements, returning only the result set.
func (db *DB) Query(text string) (*executor.ResultSet, error) {
	rs, _, err := db.Exec(text)
	return rs, err
}

func (db *DB) execCreateTable(s *sql.CreateTable) (*executor.ResultSet, *QueryInfo, error) {
	cols := make([]catalog.Column, len(s.Columns))
	for i, c := range s.Columns {
		cols[i] = catalog.Column{Name: c.Name, Kind: c.Kind}
	}
	t, err := catalog.NewTable(s.Table, cols, s.PrimaryKey)
	if err != nil {
		return nil, nil, err
	}
	if err := db.Cat.AddTable(t); err != nil {
		return nil, nil, err
	}
	if err := db.Mgr.CreateTable(s.Table); err != nil {
		return nil, nil, err
	}
	return &executor.ResultSet{}, &QueryInfo{SQL: s.String(), Stmt: s}, nil
}

func (db *DB) execCreateIndex(s *sql.CreateIndex) (*executor.ResultSet, *QueryInfo, error) {
	ix := (&catalog.Index{Name: s.Name, Table: s.Table, Columns: s.Columns}).Canonicalize()
	if err := db.CreateIndex(ix); err != nil {
		return nil, nil, err
	}
	return &executor.ResultSet{}, &QueryInfo{SQL: s.String(), Stmt: s}, nil
}

func (db *DB) execDropIndex(s *sql.DropIndex) (*executor.ResultSet, *QueryInfo, error) {
	ix := db.Cat.Index(s.Name)
	if ix == nil {
		return nil, nil, fmt.Errorf("engine: index %s does not exist", s.Name)
	}
	if err := db.DropIndex(ix); err != nil {
		return nil, nil, err
	}
	return &executor.ResultSet{}, &QueryInfo{SQL: s.String(), Stmt: s}, nil
}

// execExplain optimizes the wrapped statement and returns its rendered
// plan as a single-column result set, without executing it. EXPLAIN is
// not observed by the tuner: it does not represent workload. It goes
// through the plan cache like an execution would, and its first output
// row marks the plan's provenance (fresh / cached exact / cached
// rebound).
func (db *DB) execExplain(s *sql.Explain) (*executor.ResultSet, *QueryInfo, error) {
	var fp *sql.Fingerprint
	res, err := db.optimizeMaybeCached(s.Stmt, &fp)
	if err != nil {
		return nil, nil, err
	}
	rs := &executor.ResultSet{Columns: []string{"plan"}}
	rs.Rows = append(rs.Rows, datum.Row{datum.NewString(cacheMarker(res))})
	for _, line := range ruleMarkers(res) {
		rs.Rows = append(rs.Rows, datum.Row{datum.NewString(line)})
	}
	for _, line := range strings.Split(strings.TrimRight(plan.Explain(res.Plan), "\n"), "\n") {
		rs.Rows = append(rs.Rows, datum.Row{datum.NewString(line)})
	}
	return rs, &QueryInfo{SQL: s.String(), Stmt: s, Result: res, EstCost: res.Cost}, nil
}

// ExplainString plans a statement (without executing it) and returns
// the rendered plan prefixed with a cache-provenance marker line:
// "-- plan: fresh", "-- plan: cached (exact)" or "-- plan: cached
// (rebound)". It probes — and on a miss populates — the plan cache
// exactly as executing the statement would, which makes it the test
// surface for asserting hits and misses.
func (db *DB) ExplainString(text string) (string, error) {
	stmt, err := sql.Parse(text)
	if err != nil {
		return "", err
	}
	if ex, ok := stmt.(*sql.Explain); ok {
		stmt = ex.Stmt
	}
	reads, writes := db.lockTablesFor(stmt)
	release := db.locks.acquire(append(reads, writes...), nil)
	defer release()
	var fp *sql.Fingerprint
	res, err := db.optimizeMaybeCached(stmt, &fp)
	if err != nil {
		return "", err
	}
	head := cacheMarker(res)
	for _, line := range ruleMarkers(res) {
		head += "\n" + line
	}
	return head + "\n" + plan.Explain(res.Plan), nil
}

// CreateIndex registers and materializes a secondary index, returning an
// error when the catalog rejects it or the storage budget is exceeded.
func (db *DB) CreateIndex(ix *catalog.Index) error {
	if err := db.Cat.AddIndex(ix); err != nil {
		return err
	}
	if _, err := db.Mgr.BuildIndex(ix); err != nil {
		// Roll the catalog entry back so the failed index is not left
		// dangling.
		_ = db.Cat.DropIndex(ix.Name)
		return err
	}
	return nil
}

// PublishIndex registers a background-built index: the catalog entry is
// added and the finished build (storage.StartBuild + Build.Run) is
// published atomically. On any failure the half-built structure is
// discarded and the catalog left unchanged.
func (db *DB) PublishIndex(ix *catalog.Index, b *storage.Build) error {
	if err := db.Cat.AddIndex(ix); err != nil {
		db.Mgr.AbortBuild(b)
		return err
	}
	if _, err := db.Mgr.FinishBuild(b); err != nil {
		_ = db.Cat.DropIndex(ix.Name)
		db.Mgr.AbortBuild(b)
		return err
	}
	return nil
}

// DropIndex removes a secondary index from storage and catalog.
func (db *DB) DropIndex(ix *catalog.Index) error {
	if err := db.Mgr.DropIndex(ix.ID()); err != nil {
		return err
	}
	return db.Cat.DropIndex(ix.Name)
}

// Analyze builds statistics for every column of a table from its current
// contents. It takes the table's shared lock so the sampled columns are
// mutually consistent even under concurrent DML.
func (db *DB) Analyze(table string) error {
	release := db.locks.acquire([]string{table}, nil)
	defer release()
	t := db.Cat.Table(table)
	if t == nil {
		return fmt.Errorf("engine: unknown table %s", table)
	}
	h := db.Mgr.Heap(table)
	if h == nil {
		return fmt.Errorf("engine: table %s not materialized", table)
	}
	cols := make([][]datum.Datum, len(t.Columns))
	for i := range cols {
		cols[i] = make([]datum.Datum, 0, h.Len())
	}
	h.Scan(func(_ storage.RID, r datum.Row) bool {
		for i := range t.Columns {
			cols[i] = append(cols[i], r[i])
		}
		return true
	})
	for i, c := range t.Columns {
		db.Stats.BuildColumn(table, c.Name, cols[i], stats.DefaultBuckets)
	}
	return nil
}

// Configuration returns the currently active secondary indexes — the
// paper's physical configuration s.
func (db *DB) Configuration() []*catalog.Index {
	var out []*catalog.Index
	for _, ix := range db.Cat.Indexes() {
		if ix.Primary {
			continue
		}
		if pi := db.Mgr.Index(ix.ID()); pi != nil && pi.State() == storage.StateActive {
			out = append(out, ix)
		}
	}
	return out
}

// WhatIfEnv exposes the environment for tuner components.
func (db *DB) WhatIfEnv() *whatif.Env { return db.Env }
