package engine_test

// Tests for morsel-driven intra-query parallelism: results must be
// byte-identical to the sequential executor at every ExecWorkers
// setting, EXPLAIN ANALYZE actuals must stay exact under concurrent
// morsel accounting, and a cancelled context must abort a long parallel
// statement promptly (the per-batch cancellation tick).

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"onlinetuner/internal/catalog"
	"onlinetuner/internal/engine"
	"onlinetuner/internal/executor"
	"onlinetuner/internal/tpch"
)

// renderRS renders a result set canonically so two executions can be
// compared byte-for-byte (including row order and float formatting).
func renderRS(rs *executor.ResultSet) string {
	var sb strings.Builder
	sb.WriteString(strings.Join(rs.Columns, ","))
	sb.WriteByte('\n')
	for _, r := range rs.Rows {
		for _, d := range r {
			sb.WriteString(d.String())
			sb.WriteByte('|')
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// parallelProbeStmts is the TPC-H batch plus statements that pin down
// the operators the batch exercises lightly (DISTINCT, MERGE-ordering
// via multi-key sort, float SUM/AVG whose accumulation order matters).
func parallelProbeStmts(gen *tpch.Generator) []string {
	stmts := gen.Batch()
	stmts = append(stmts,
		"SELECT DISTINCT l_returnflag, l_linestatus FROM lineitem",
		"SELECT l_orderkey, l_extendedprice FROM lineitem ORDER BY l_extendedprice DESC, l_orderkey LIMIT 500",
		"SELECT l_suppkey, SUM(l_extendedprice * l_discount), AVG(l_quantity), COUNT(*) FROM lineitem GROUP BY l_suppkey ORDER BY l_suppkey",
	)
	return stmts
}

// runBatchAt loads a fresh TPC-H database with the given worker budget
// and renders every statement's result.
func runBatchAt(t *testing.T, workers int, stmts []string) []string {
	t.Helper()
	db := engine.OpenConfig(engine.Config{ExecWorkers: workers})
	gen := tpch.NewGenerator(0.2, 7)
	if err := gen.Load(db); err != nil {
		t.Fatalf("load: %v", err)
	}
	if got := db.ExecWorkers(); workers > 0 && got != workers {
		t.Fatalf("ExecWorkers() = %d, want %d", got, workers)
	}
	out := make([]string, len(stmts))
	for i, q := range stmts {
		rs, _, err := db.Exec(q)
		if err != nil {
			t.Fatalf("workers=%d stmt %d %q: %v", workers, i, q, err)
		}
		out[i] = renderRS(rs)
	}
	return out
}

// TestParallelByteIdenticalAcrossWorkers is the identity property test:
// the same workload must produce byte-identical results at ExecWorkers
// 1, 2, 4 and 8. Worker pools are sized by the setting (not by the CPU
// count), so the parallel scheduler is genuinely exercised even on a
// single-core runner.
func TestParallelByteIdenticalAcrossWorkers(t *testing.T) {
	gen := tpch.NewGenerator(0.2, 7)
	stmts := parallelProbeStmts(gen)
	want := runBatchAt(t, 1, stmts)
	for _, workers := range []int{2, 4, 8} {
		got := runBatchAt(t, workers, stmts)
		for i := range stmts {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: statement %d %q diverges from sequential\nseq:\n%s\npar:\n%s",
					workers, i, stmts[i], clip(want[i]), clip(got[i]))
			}
		}
	}
}

func clip(s string) string {
	if len(s) > 2000 {
		return s[:2000] + "…"
	}
	return s
}

// TestExplainAnalyzeExactUnderParallel is the collector contract test:
// per-operator actuals (rows, scanned, pages) must be exactly equal
// under sequential and parallel execution — atomic accounting may not
// lose or double-count a single row.
func TestExplainAnalyzeExactUnderParallel(t *testing.T) {
	q := `SELECT l_returnflag, COUNT(*), SUM(l_quantity) FROM lineitem, orders
		WHERE l_orderkey = o_orderkey AND o_orderdate >= DATE '1993-01-01'
		GROUP BY l_returnflag ORDER BY l_returnflag`
	type actual struct {
		label   string
		rows    int64
		scanned int64
		pages   int64
	}
	measure := func(workers int) []actual {
		db := engine.OpenConfig(engine.Config{ExecWorkers: workers})
		gen := tpch.NewGenerator(0.2, 7)
		if err := gen.Load(db); err != nil {
			t.Fatalf("load: %v", err)
		}
		a, err := db.ExplainAnalyze(q)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		out := make([]actual, len(a.Nodes))
		for i, n := range a.Nodes {
			out[i] = actual{label: n.Label, rows: n.ActualRows, scanned: n.Scanned, pages: n.Pages}
		}
		return out
	}
	want := measure(1)
	for _, workers := range []int{4, 8} {
		got := measure(workers)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d nodes, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("workers=%d node %d: %+v, want %+v", workers, i, got[i], want[i])
			}
		}
	}
}

// TestParallelCancelPrecheck: a context cancelled before execution never
// reaches the storage layer.
func TestParallelCancelPrecheck(t *testing.T) {
	db := engine.OpenConfig(engine.Config{ExecWorkers: 4})
	gen := tpch.NewGenerator(0.2, 7)
	if err := gen.Load(db); err != nil {
		t.Fatalf("load: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := db.ExecContext(ctx, "SELECT COUNT(*) FROM lineitem"); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestParallelCancelAbortsLongScan: cancellation lands mid-workload and
// aborts the in-flight parallel statement via the per-morsel context
// poll — the loop must stop far short of its sequential running time.
func TestParallelCancelAbortsLongScan(t *testing.T) {
	db := engine.OpenConfig(engine.Config{ExecWorkers: 4})
	gen := tpch.NewGenerator(0.5, 7)
	if err := gen.Load(db); err != nil {
		t.Fatalf("load: %v", err)
	}
	q := `SELECT l_suppkey, SUM(l_extendedprice * (1 - l_discount)) FROM lineitem, orders
		WHERE l_orderkey = o_orderkey GROUP BY l_suppkey ORDER BY l_suppkey`
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	deadline := time.Now().Add(30 * time.Second)
	var err error
	for time.Now().Before(deadline) {
		if _, _, err = db.ExecContext(ctx, q); err != nil {
			break
		}
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestParallelStressWithBuildsAndDDL soaks the morsel-parallel executor
// under concurrency (run with -race): reader goroutines replay TPC-H
// batches while one goroutine churns CREATE/DROP INDEX through the
// statement path and another runs the background build pipeline
// (StartBuild → Run → PublishIndex → DropIndex). Statements may see
// executor.ErrStaleIndex exhaust its retries under this deliberately
// hostile churn; any other error fails the test.
func TestParallelStressWithBuildsAndDDL(t *testing.T) {
	db := engine.OpenConfig(engine.Config{ExecWorkers: 4})
	gen := tpch.NewGenerator(0.15, 3)
	if err := gen.Load(db); err != nil {
		t.Fatalf("load: %v", err)
	}
	var queries []string
	for _, q := range gen.Batch() {
		if strings.HasPrefix(strings.ToUpper(strings.TrimSpace(q)), "SELECT") {
			queries = append(queries, q)
		}
	}
	iters := 2
	if testing.Short() {
		iters = 1
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	report := func(err error) {
		select {
		case errCh <- err:
		default:
		}
	}
	stop := make(chan struct{})
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				for j, q := range queries {
					if (j+r)%2 == 0 { // interleave differently per reader
						continue
					}
					if _, _, err := db.Exec(q); err != nil && !errors.Is(err, executor.ErrStaleIndex) {
						report(fmt.Errorf("reader %d stmt %d: %w", r, j, err))
						return
					}
				}
			}
		}(r)
	}
	// Statement-path DDL churn.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, _, err := db.Exec("CREATE INDEX stress_ship ON lineitem (l_shipdate)"); err != nil {
				report(fmt.Errorf("create index: %w", err))
				return
			}
			if _, _, err := db.Exec("DROP INDEX stress_ship"); err != nil {
				report(fmt.Errorf("drop index: %w", err))
				return
			}
		}
	}()
	// Background build pipeline churn (the tuner's async path).
	wg.Add(1)
	go func() {
		defer wg.Done()
		ix := (&catalog.Index{Name: "stress_disc", Table: "lineitem", Columns: []string{"l_discount"}}).Canonicalize()
		for i := 0; i < 4; i++ {
			select {
			case <-stop:
				return
			default:
			}
			b, err := db.Mgr.StartBuild(ix)
			if err != nil {
				report(fmt.Errorf("start build: %w", err))
				return
			}
			if err := b.Run(context.Background()); err != nil {
				db.Mgr.AbortBuild(b)
				report(fmt.Errorf("build run: %w", err))
				return
			}
			if err := db.PublishIndex(ix, b); err != nil {
				report(fmt.Errorf("publish: %w", err))
				return
			}
			if err := db.DropIndex(ix); err != nil {
				report(fmt.Errorf("drop built index: %w", err))
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if err := db.Mgr.CheckConsistency(); err != nil {
		t.Fatalf("post-stress consistency: %v", err)
	}
}

// TestParallelMorselMetric: the engine counter moves when a parallel
// region actually dispatches morsels to extra workers.
func TestParallelMorselMetric(t *testing.T) {
	db := engine.OpenConfig(engine.Config{ExecWorkers: 4})
	db.MustExec("CREATE TABLE big (id INT, v INT, PRIMARY KEY (id))")
	for i := 0; i < 90; i++ {
		vals := make([]string, 0, 100)
		for j := 0; j < 100; j++ {
			id := i*100 + j
			vals = append(vals, fmt.Sprintf("(%d, %d)", id, id%97))
		}
		db.MustExec("INSERT INTO big (id, v) VALUES " + strings.Join(vals, ", "))
	}
	before := db.Observability().Reg.Counter("engine.exec_parallel_morsels").Value()
	db.MustExec("SELECT COUNT(*) FROM big WHERE v < 50")
	after := db.Observability().Reg.Counter("engine.exec_parallel_morsels").Value()
	// 9000 rows = 3 morsels; the scan must have been dispatched as a
	// parallel region (the pool has free slots: nothing else runs).
	if after <= before {
		t.Fatalf("exec_parallel_morsels did not move (before=%d after=%d)", before, after)
	}
	if g := db.Observability().Reg.Gauge("engine.exec_workers_busy").Value(); g != 0 {
		t.Fatalf("exec_workers_busy = %d after quiesce, want 0", g)
	}
}
