package engine

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"onlinetuner/internal/executor"
	"onlinetuner/internal/obs"
)

// canonRows renders a result set order-independently for comparison.
func canonRows(rs *executor.ResultSet) []string {
	out := make([]string, len(rs.Rows))
	for i, r := range rs.Rows {
		out[i] = fmt.Sprint(r)
	}
	sort.Strings(out)
	return out
}

func sameResult(t *testing.T, label string, got, want *executor.ResultSet) {
	t.Helper()
	g, w := canonRows(got), canonRows(want)
	if len(g) != len(w) {
		t.Fatalf("%s: %d rows, want %d", label, len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("%s: row %d = %s, want %s", label, i, g[i], w[i])
		}
	}
}

func explainMarker(t *testing.T, db *DB, query string) string {
	t.Helper()
	s, err := db.ExplainString(query)
	if err != nil {
		t.Fatalf("ExplainString(%q): %v", query, err)
	}
	return strings.SplitN(s, "\n", 2)[0]
}

func wantMarker(t *testing.T, db *DB, query, want string) {
	t.Helper()
	if got := explainMarker(t, db, query); got != want {
		t.Fatalf("%q: marker %q, want %q", query, got, want)
	}
}

func TestPlanCacheExactHit(t *testing.T) {
	db := openRS(t, 1000)
	const q = "SELECT a, b FROM R WHERE a < 10"

	wantMarker(t, db, q, "-- plan: fresh")
	wantMarker(t, db, q, "-- plan: cached (exact)")

	// A different literal is a different exact key: miss under the
	// default mode, then its own entry... which overwrites the shared
	// per-template slot, so the first literal misses again after.
	wantMarker(t, db, "SELECT a, b FROM R WHERE a < 20", "-- plan: fresh")
	wantMarker(t, db, "SELECT a, b FROM R WHERE a < 20", "-- plan: cached (exact)")

	// Execution goes through the same cache and produces the same rows.
	before := db.PlanCacheStats()
	want := db.MustExec(q) // fresh (slot holds the a<20 entry)
	got := db.MustExec(q)  // exact hit
	sameResult(t, "cached exact execution", got, want)
	after := db.PlanCacheStats()
	if after.Hits <= before.Hits {
		t.Fatalf("exact execution did not hit: %+v -> %+v", before, after)
	}
	if after.StmtHits <= before.StmtHits {
		t.Fatalf("repeated text did not hit statement cache: %+v -> %+v", before, after)
	}
}

func TestPlanCacheExplainStatementMarked(t *testing.T) {
	db := openRS(t, 1000)
	rs := db.MustExec("EXPLAIN SELECT id FROM R WHERE a = 3")
	if len(rs.Rows) == 0 || rs.Rows[0][0].Str() != "-- plan: fresh" {
		t.Fatalf("EXPLAIN first row = %v, want fresh marker", rs.Rows[0])
	}
	rs = db.MustExec("EXPLAIN SELECT id FROM R WHERE a = 3")
	if rs.Rows[0][0].Str() != "-- plan: cached (exact)" {
		t.Fatalf("second EXPLAIN first row = %v, want cached (exact)", rs.Rows[0])
	}
}

func TestPlanCacheInvalidation(t *testing.T) {
	db := openRS(t, 1000)
	const q = "SELECT a, b FROM R WHERE a < 10"

	// CREATE INDEX bumps the config version.
	wantMarker(t, db, q, "-- plan: fresh")
	wantMarker(t, db, q, "-- plan: cached (exact)")
	before := db.PlanCacheStats()
	db.MustExec("CREATE INDEX Iab ON R (a, b)")
	wantMarker(t, db, q, "-- plan: fresh")
	if s := db.PlanCacheStats(); s.Invalidations <= before.Invalidations {
		t.Fatalf("create index did not invalidate: %+v -> %+v", before, s)
	}

	// DROP INDEX bumps it again.
	wantMarker(t, db, q, "-- plan: cached (exact)")
	db.MustExec("DROP INDEX Iab")
	wantMarker(t, db, q, "-- plan: fresh")

	// Analyze bumps the statistics epoch.
	wantMarker(t, db, q, "-- plan: cached (exact)")
	if err := db.Analyze("R"); err != nil {
		t.Fatal(err)
	}
	wantMarker(t, db, q, "-- plan: fresh")

	// DML on a referenced table changes its size signature: the stored
	// entry no longer proves the fresh optimization, so it must miss
	// (no Invalidations bump required — versions still match).
	wantMarker(t, db, q, "-- plan: cached (exact)")
	db.MustExec("INSERT INTO R VALUES (5001, 1, 2, 3, 4, 5)")
	wantMarker(t, db, q, "-- plan: fresh")

	// DML on an unreferenced table does not disturb entries for R.
	wantMarker(t, db, q, "-- plan: cached (exact)")
	db.MustExec("INSERT INTO S VALUES (5001, 1, 2)")
	wantMarker(t, db, q, "-- plan: cached (exact)")
}

func TestPlanCacheRebind(t *testing.T) {
	db := openRS(t, 1000)
	db.MustExec("CREATE INDEX Ia ON R (a, b, id)")
	db.SetPlanCacheMode(CacheRebind)

	// Range template: warm with one literal, rebind to others, and
	// check the rebound plans return exactly what a fresh optimization
	// returns (computed with the cache off).
	template := "SELECT a, b FROM R WHERE a < %d"
	wantMarker(t, db, fmt.Sprintf(template, 10), "-- plan: fresh")
	for _, v := range []int{3, 50, 97, 10} {
		q := fmt.Sprintf(template, v)
		if m := explainMarker(t, db, q); m != "-- plan: cached (rebound)" && m != "-- plan: cached (exact)" {
			t.Fatalf("%q: marker %q, want a cache hit", q, m)
		}
		got := db.MustExec(q)
		db.SetPlanCacheMode(CacheOff)
		want := db.MustExec(q)
		db.SetPlanCacheMode(CacheRebind)
		sameResult(t, q, got, want)
	}

	// Equality template.
	wantMarker(t, db, "SELECT id FROM R WHERE a = 42", "-- plan: fresh")
	wantMarker(t, db, "SELECT id FROM R WHERE a = 17", "-- plan: cached (rebound)")
	got := db.MustExec("SELECT id FROM R WHERE a = 17")
	db.SetPlanCacheMode(CacheOff)
	want := db.MustExec("SELECT id FROM R WHERE a = 17")
	db.SetPlanCacheMode(CacheRebind)
	sameResult(t, "rebound equality", got, want)

	// Rebound DML: the second UPDATE reuses the first's plan with new
	// literals and must touch exactly the fresh set of rows.
	db.MustExec("UPDATE R SET c = 111 WHERE a = 5")
	wantMarker(t, db, "UPDATE R SET c = 222 WHERE a = 7", "-- plan: cached (rebound)")
	db.MustExec("UPDATE R SET c = 222 WHERE a = 7")
	if n := db.MustExec("SELECT COUNT(*) FROM R WHERE c = 222").Rows[0][0].Int(); n != 10 {
		t.Fatalf("rebound update touched %d rows, want 10", n)
	}
	if n := db.MustExec("SELECT COUNT(*) FROM R WHERE c = 111").Rows[0][0].Int(); n != 10 {
		t.Fatalf("first update lost rows after rebound one: %d, want 10", n)
	}

	if s := db.PlanCacheStats(); s.RebindHits == 0 {
		t.Fatalf("no rebind hits recorded: %+v", s)
	}
}

func TestPlanCacheRebindGenericFallback(t *testing.T) {
	db := openRS(t, 1000)
	db.SetPlanCacheMode(CacheRebind)

	// Two upper bounds on one column: which literal survives as the
	// tight bound depends on the values, so the plan is not generic and
	// different literals must re-optimize.
	wantMarker(t, db, "SELECT id FROM R WHERE a < 10 AND a < 20", "-- plan: fresh")
	wantMarker(t, db, "SELECT id FROM R WHERE a < 30 AND a < 5", "-- plan: fresh")
	// Identical literals still hit exactly.
	wantMarker(t, db, "SELECT id FROM R WHERE a < 30 AND a < 5", "-- plan: cached (exact)")
}

func TestPlanCacheOff(t *testing.T) {
	db := openRS(t, 500)
	db.SetPlanCacheMode(CacheOff)
	const q = "SELECT a FROM R WHERE a < 10"
	wantMarker(t, db, q, "-- plan: fresh")
	wantMarker(t, db, q, "-- plan: fresh")
	if s := db.PlanCacheStats(); s.Hits != 0 || s.Misses != 0 {
		t.Fatalf("cache-off mode touched the plan tier: %+v", s)
	}
}

func TestPlanCacheInsertNotCached(t *testing.T) {
	db := openRS(t, 100)
	before := db.PlanCacheStats()
	db.MustExec("INSERT INTO R VALUES (9001, 1, 2, 3, 4, 5)")
	db.MustExec("INSERT INTO R VALUES (9002, 1, 2, 3, 4, 5)")
	after := db.PlanCacheStats()
	if after.Hits != before.Hits || after.Misses != before.Misses {
		t.Fatalf("INSERT went through the plan tier: %+v -> %+v", before, after)
	}
}

func TestPlanCacheLRUBound(t *testing.T) {
	pc := newPlanCache(obs.NewRegistry())
	// Hashes that all land in shard 0 overflow its capacity.
	for i := 0; i < 3*planShardCap; i++ {
		pc.storePlan(&planEntry{hash: uint64(i * planShards), template: fmt.Sprint(i)})
	}
	sh := &pc.plans[0]
	if n := sh.ll.Len(); n != planShardCap {
		t.Fatalf("shard holds %d entries, want cap %d", n, planShardCap)
	}
	if len(sh.byHash) != planShardCap {
		t.Fatalf("shard map holds %d entries, want cap %d", len(sh.byHash), planShardCap)
	}
	if ev := pc.evictions.Value(); ev != 2*planShardCap {
		t.Fatalf("evictions = %d, want %d", ev, 2*planShardCap)
	}
	// The most recent entries survived.
	last := uint64((3*planShardCap - 1) * planShards)
	if _, ok := sh.byHash[last]; !ok {
		t.Fatal("most recent entry was evicted")
	}
}
