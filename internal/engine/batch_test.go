package engine_test

// Direct coverage for DB.ExecBatch, the serving layer's COMMIT
// primitive: union lock span (none-or-all isolation), statement-granular
// atomicity on mid-batch failure, context cancellation, and DDL inside
// a batch. The server package exercises ExecBatch end-to-end over the
// wire; these tests pin the engine-level contract on its own.

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"onlinetuner/internal/engine"
)

func newBatchDB(t *testing.T) *engine.DB {
	t.Helper()
	db := engine.Open()
	db.MustExec("CREATE TABLE led (id INT, v INT, PRIMARY KEY (id))")
	db.MustExec("CREATE TABLE aux (id INT, w INT, PRIMARY KEY (id))")
	t.Cleanup(func() { _ = db.Close() })
	return db
}

func TestExecBatchAppliesAllStatements(t *testing.T) {
	db := newBatchDB(t)
	texts := []string{
		"INSERT INTO led VALUES (1, 10)",
		"INSERT INTO led VALUES (2, 20)",
		"SELECT COUNT(*) AS n FROM led",
		"UPDATE led SET v = 99 WHERE id = 1",
	}
	results, infos, applied, err := db.ExecBatch(context.Background(), texts)
	if err != nil {
		t.Fatalf("ExecBatch: %v", err)
	}
	if applied != len(texts) || len(results) != len(texts) || len(infos) != len(texts) {
		t.Fatalf("applied=%d results=%d infos=%d, want %d each", applied, len(results), len(infos), len(texts))
	}
	// The SELECT inside the batch sees the two inserts that precede it.
	if got := results[2].Rows[0][0].String(); got != "2" {
		t.Errorf("mid-batch COUNT(*) = %s, want 2", got)
	}
	rs, _, err := db.Exec("SELECT v FROM led WHERE id = 1")
	if err != nil || len(rs.Rows) != 1 || rs.Rows[0][0].String() != "99" {
		t.Errorf("post-batch readback = %v (err %v), want v=99", rs.Rows, err)
	}
}

func TestExecBatchEmpty(t *testing.T) {
	db := newBatchDB(t)
	results, infos, applied, err := db.ExecBatch(context.Background(), nil)
	if err != nil || applied != 0 || results != nil || infos != nil {
		t.Fatalf("empty batch: results=%v infos=%v applied=%d err=%v, want all zero", results, infos, applied, err)
	}
}

// A parse error anywhere in the batch rejects the whole batch before any
// statement runs — parsing happens up front, ahead of lock acquisition.
func TestExecBatchParseErrorRunsNothing(t *testing.T) {
	db := newBatchDB(t)
	texts := []string{
		"INSERT INTO led VALUES (1, 10)",
		"INSERT INTO syntax error here",
	}
	_, _, applied, err := db.ExecBatch(context.Background(), texts)
	if err == nil {
		t.Fatal("batch with a parse error succeeded")
	}
	if applied != 0 {
		t.Fatalf("applied = %d, want 0 (parse errors reject before execution)", applied)
	}
	rs, _, err := db.Exec("SELECT COUNT(*) AS n FROM led")
	if err != nil {
		t.Fatal(err)
	}
	if got := rs.Rows[0][0].String(); got != "0" {
		t.Errorf("led has %s rows after rejected batch, want 0", got)
	}
}

// A runtime failure mid-batch stops at that statement: earlier
// statements stay applied, the applied count says how many completed.
func TestExecBatchRuntimeErrorIsStatementGranular(t *testing.T) {
	db := newBatchDB(t)
	texts := []string{
		"INSERT INTO led VALUES (1, 10)",
		"INSERT INTO led VALUES (2, 20)",
		"SELECT nope FROM led", // parses, then fails at optimize time: a runtime failure
		"INSERT INTO led VALUES (3, 30)",
	}
	results, _, applied, err := db.ExecBatch(context.Background(), texts)
	if err == nil {
		t.Fatal("batch with an unknown column succeeded")
	}
	if applied != 2 || len(results) != 2 {
		t.Fatalf("applied=%d results=%d, want 2 (statements before the failure)", applied, len(results))
	}
	rs, _, err := db.Exec("SELECT COUNT(*) AS n FROM led")
	if err != nil {
		t.Fatal(err)
	}
	if got := rs.Rows[0][0].String(); got != "2" {
		t.Errorf("led has %s rows, want 2 (inserts before the failing statement stay applied)", got)
	}
}

func TestExecBatchContextCancel(t *testing.T) {
	db := newBatchDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, applied, err := db.ExecBatch(ctx, []string{"INSERT INTO led VALUES (1, 10)"})
	if err == nil {
		t.Fatal("ExecBatch with canceled context succeeded")
	}
	if applied != 0 {
		t.Fatalf("applied = %d, want 0", applied)
	}
}

// DDL participates: CREATE INDEX inside a batch takes the table's write
// lock through its own lock classification, so a following DROP INDEX in
// the same batch is covered by the same span.
func TestExecBatchWithDDL(t *testing.T) {
	db := newBatchDB(t)
	for i := 0; i < 50; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO led VALUES (%d, %d)", i, i%7))
	}
	texts := []string{
		"CREATE INDEX b_tmp ON led (v)",
		"SELECT COUNT(*) AS n FROM led WHERE v = 3",
		"DROP INDEX b_tmp",
	}
	results, _, applied, err := db.ExecBatch(context.Background(), texts)
	if err != nil {
		t.Fatalf("DDL batch: %v", err)
	}
	if applied != 3 {
		t.Fatalf("applied = %d, want 3", applied)
	}
	if got := results[1].Rows[0][0].String(); got != "7" {
		t.Errorf("indexed COUNT = %s, want 7", got)
	}
	for _, ix := range db.Configuration() {
		if strings.Contains(ix.String(), "b_tmp") {
			t.Errorf("index b_tmp survived its own batch's DROP: %s", ix)
		}
	}
}

// None-or-all isolation: each batch inserts one row into led and one
// into aux under a single union lock span, so a concurrent single
// statement spanning both tables always sees n rows in each — its cross
// product is a perfect square k*k. Mid-batch state (k+1 rows in led, k
// in aux) would give (k+1)*k, never a square for k >= 1.
func TestExecBatchIsolationUnderConcurrentReads(t *testing.T) {
	db := newBatchDB(t)
	const rounds = 40

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 8)
	fail := func(format string, args ...any) {
		select {
		case errs <- fmt.Errorf(format, args...):
		default:
		}
	}
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rs, _, err := db.Exec("SELECT COUNT(*) AS n FROM led, aux WHERE v >= 0 AND w >= 0")
				if err != nil {
					fail("cross reader: %v", err)
					return
				}
				var n int
				if _, err := fmt.Sscanf(rs.Rows[0][0].String(), "%d", &n); err != nil {
					fail("parse count %q: %v", rs.Rows[0][0].String(), err)
					return
				}
				if !isSquare(n) {
					fail("cross count %d is not a perfect square: batch visible partially", n)
					return
				}
			}
		}()
	}

	for i := 0; i < rounds; i++ {
		_, _, applied, err := db.ExecBatch(context.Background(), []string{
			fmt.Sprintf("INSERT INTO led VALUES (%d, %d)", i, i),
			fmt.Sprintf("INSERT INTO aux VALUES (%d, %d)", i, i),
		})
		if err != nil || applied != 2 {
			t.Fatalf("batch %d: applied=%d err=%v", i, applied, err)
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// isSquare reports whether n is k*k for some integer k.
func isSquare(n int) bool {
	for k := 0; k*k <= n; k++ {
		if k*k == n {
			return true
		}
	}
	return false
}
