package engine

import (
	"fmt"
	"strings"
	"testing"

	"onlinetuner/internal/plan"
	"onlinetuner/internal/whatif"
)

// openRS opens a database with the paper's R(id,a,b,c,d,e) and S tables
// loaded with deterministic data.
func openRS(t testing.TB, rows int) *DB {
	t.Helper()
	db := Open()
	db.MustExec("CREATE TABLE R (id INT, a INT, b INT, c INT, d INT, e INT, PRIMARY KEY (id))")
	db.MustExec("CREATE TABLE S (id INT, x INT, y INT, PRIMARY KEY (id))")
	for i := 0; i < rows; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO R VALUES (%d, %d, %d, %d, %d, %d)",
			i, i%100, i%7, i%13, i*2, i*3))
	}
	for i := 0; i < rows/2; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO S VALUES (%d, %d, %d)", i, i%100, i%50))
	}
	if err := db.Analyze("R"); err != nil {
		t.Fatal(err)
	}
	if err := db.Analyze("S"); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestSelectFilterProject(t *testing.T) {
	db := openRS(t, 500)
	rs := db.MustExec("SELECT a, b FROM R WHERE a < 10")
	if len(rs.Rows) != 50 { // 500 rows, a = i%100 < 10 → 50
		t.Fatalf("rows = %d, want 50", len(rs.Rows))
	}
	if len(rs.Columns) != 2 || rs.Columns[0] != "a" {
		t.Errorf("columns = %v", rs.Columns)
	}
	for _, r := range rs.Rows {
		if r[0].Int() >= 10 {
			t.Fatalf("filter leaked %v", r)
		}
	}
}

func TestSelectEquality(t *testing.T) {
	db := openRS(t, 500)
	rs := db.MustExec("SELECT id FROM R WHERE a = 42")
	if len(rs.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rs.Rows))
	}
}

func TestOrderByAndLimit(t *testing.T) {
	db := openRS(t, 100)
	rs := db.MustExec("SELECT id, a FROM R WHERE a < 50 ORDER BY a DESC, id LIMIT 10")
	if len(rs.Rows) != 10 {
		t.Fatalf("rows = %d", len(rs.Rows))
	}
	prev := rs.Rows[0]
	for _, r := range rs.Rows[1:] {
		if r[1].Int() > prev[1].Int() {
			t.Fatalf("not descending: %v after %v", r, prev)
		}
		prev = r
	}
}

func TestArithmeticAndAlias(t *testing.T) {
	db := openRS(t, 10)
	rs := db.MustExec("SELECT id, a + b AS ab FROM R WHERE id = 3")
	if len(rs.Rows) != 1 {
		t.Fatalf("rows = %d", len(rs.Rows))
	}
	want := int64(3%100 + 3%7)
	if rs.Rows[0][1].Int() != want {
		t.Errorf("a+b = %v, want %d", rs.Rows[0][1], want)
	}
	if rs.Columns[1] != "ab" {
		t.Errorf("alias = %q", rs.Columns[1])
	}
}

func TestAggregation(t *testing.T) {
	db := openRS(t, 700)
	rs := db.MustExec("SELECT b, COUNT(*), SUM(a), MIN(id), MAX(id), AVG(a) FROM R GROUP BY b ORDER BY b")
	if len(rs.Rows) != 7 {
		t.Fatalf("groups = %d, want 7", len(rs.Rows))
	}
	var total int64
	for _, r := range rs.Rows {
		total += r[1].Int()
	}
	if total != 700 {
		t.Errorf("counts sum to %d, want 700", total)
	}
	// Global aggregate without GROUP BY.
	rs2 := db.MustExec("SELECT COUNT(*), AVG(a) FROM R WHERE a < 10")
	if len(rs2.Rows) != 1 || rs2.Rows[0][0].Int() != 70 {
		t.Fatalf("global agg = %v", rs2.Rows)
	}
	// Aggregate over empty input yields one row with COUNT 0.
	rs3 := db.MustExec("SELECT COUNT(*), SUM(a) FROM R WHERE a < -1")
	if len(rs3.Rows) != 1 || rs3.Rows[0][0].Int() != 0 || !rs3.Rows[0][1].IsNull() {
		t.Fatalf("empty agg = %v", rs3.Rows)
	}
}

func TestJoinHashAndResult(t *testing.T) {
	db := openRS(t, 200)
	// R.a = S.x: R has 200 rows with a=i%100; S has 100 rows x=i%100.
	rs := db.MustExec("SELECT R.id, S.id FROM R, S WHERE R.a = S.x AND R.id < 10")
	// For R.id in 0..9, a = id; S.x = id matches exactly one S row each.
	if len(rs.Rows) != 10 {
		t.Fatalf("join rows = %d, want 10", len(rs.Rows))
	}
	for _, r := range rs.Rows {
		if r[0].Int()%100 != r[1].Int()%100 {
			t.Fatalf("join mismatch %v", r)
		}
	}
}

func TestJoinExplicitSyntax(t *testing.T) {
	db := openRS(t, 100)
	rs := db.MustExec("SELECT r.id FROM R r JOIN S s ON r.a = s.x WHERE s.y = 3")
	for _, row := range rs.Rows {
		_ = row
	}
	rs2 := db.MustExec("SELECT r.id FROM R r, S s WHERE r.a = s.x AND s.y = 3")
	if len(rs.Rows) != len(rs2.Rows) {
		t.Fatalf("JOIN ON (%d) and comma-join (%d) disagree", len(rs.Rows), len(rs2.Rows))
	}
}

func TestINLJoinWithIndex(t *testing.T) {
	db := openRS(t, 2000)
	db.MustExec("CREATE INDEX S_x ON S (x, y, id)")
	rs, info, err := db.Exec("SELECT R.id, S.y FROM R, S WHERE R.a = S.x AND R.a = 5")
	if err != nil {
		t.Fatal(err)
	}
	// a=5: 20 R rows; S.x=5: 10 S rows → 200 pairs.
	if len(rs.Rows) != 200 {
		t.Fatalf("rows = %d, want 200", len(rs.Rows))
	}
	// The plan should mention the secondary index somewhere (seek or INLJ).
	pl := plan.Explain(info.Result.Plan)
	if !strings.Contains(pl, "S_x") {
		t.Logf("plan:\n%s", pl)
	}
}

func TestIndexChangesPlanAndCost(t *testing.T) {
	db := openRS(t, 3000)
	_, before, err := db.Exec("SELECT a, b, c, id FROM R WHERE a < 10")
	if err != nil {
		t.Fatal(err)
	}
	db.MustExec("CREATE INDEX I2 ON R (a, b, c, id)")
	rs, after, err := db.Exec("SELECT a, b, c, id FROM R WHERE a < 10")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 300 {
		t.Fatalf("rows = %d, want 300", len(rs.Rows))
	}
	if after.EstCost >= before.EstCost {
		t.Errorf("index did not reduce cost: %.3f → %.3f", before.EstCost, after.EstCost)
	}
	if !strings.Contains(plan.Explain(after.Result.Plan), "IndexSeek I2") {
		t.Errorf("expected IndexSeek I2 in plan:\n%s", plan.Explain(after.Result.Plan))
	}
}

func TestCoveringVsFetchResults(t *testing.T) {
	db := openRS(t, 1000)
	want := db.MustExec("SELECT id, a, d FROM R WHERE a = 17")
	db.MustExec("CREATE INDEX Ia ON R (a)") // non-covering
	got := db.MustExec("SELECT id, a, d FROM R WHERE a = 17")
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("non-covering seek changed results: %d vs %d", len(got.Rows), len(want.Rows))
	}
	db.MustExec("CREATE INDEX Iad ON R (a, d, id)") // covering
	got2 := db.MustExec("SELECT id, a, d FROM R WHERE a = 17")
	if len(got2.Rows) != len(want.Rows) {
		t.Fatalf("covering seek changed results: %d vs %d", len(got2.Rows), len(want.Rows))
	}
}

func TestUpdateDeleteInsertSelect(t *testing.T) {
	db := openRS(t, 100)
	rs := db.MustExec("UPDATE R SET b = 99 WHERE a < 5")
	if rs.Affected != 5 {
		t.Fatalf("updated %d, want 5", rs.Affected)
	}
	check := db.MustExec("SELECT COUNT(*) FROM R WHERE b = 99")
	if check.Rows[0][0].Int() != 5 {
		t.Fatalf("b=99 count = %v", check.Rows[0][0])
	}
	rs = db.MustExec("DELETE FROM R WHERE a < 5")
	if rs.Affected != 5 {
		t.Fatalf("deleted %d, want 5", rs.Affected)
	}
	if db.MustExec("SELECT COUNT(*) FROM R").Rows[0][0].Int() != 95 {
		t.Fatal("delete count wrong")
	}
	// INSERT ... SELECT (the paper's q3 pattern).
	db.MustExec("CREATE TABLE R2 (id INT, a INT, b INT, c INT, d INT, e INT, PRIMARY KEY (id))")
	rs = db.MustExec("INSERT INTO R2 SELECT * FROM R")
	if rs.Affected != 95 {
		t.Fatalf("insert-select affected %d, want 95", rs.Affected)
	}
}

func TestIndexMaintainedThroughDML(t *testing.T) {
	db := openRS(t, 200)
	db.MustExec("CREATE INDEX Ia ON R (a, id)")
	db.MustExec("UPDATE R SET a = 1000 WHERE id = 7")
	rs := db.MustExec("SELECT id FROM R WHERE a = 1000")
	if len(rs.Rows) != 1 || rs.Rows[0][0].Int() != 7 {
		t.Fatalf("index stale after update: %v", rs.Rows)
	}
	db.MustExec("DELETE FROM R WHERE id = 7")
	rs = db.MustExec("SELECT id FROM R WHERE a = 1000")
	if len(rs.Rows) != 0 {
		t.Fatalf("index stale after delete: %v", rs.Rows)
	}
}

func TestDistinct(t *testing.T) {
	db := openRS(t, 100)
	rs := db.MustExec("SELECT DISTINCT b FROM R")
	if len(rs.Rows) != 7 {
		t.Fatalf("distinct b = %d, want 7", len(rs.Rows))
	}
}

func TestRequestsCaptured(t *testing.T) {
	db := openRS(t, 1000)
	_, info, err := db.Exec("SELECT a, b, c, id FROM R WHERE a < 100")
	if err != nil {
		t.Fatal(err)
	}
	reqs := info.Result.Requests()
	if len(reqs) != 2 {
		t.Fatalf("requests = %d, want 2 (scan + seek)", len(reqs))
	}
	var scan, seek *whatif.Request
	for _, r := range reqs {
		switch r.Kind {
		case whatif.KindScan:
			scan = r
		case whatif.KindSeek:
			seek = r
		}
	}
	if scan == nil || seek == nil {
		t.Fatalf("missing request kinds: %v", reqs)
	}
	if seek.RangeCol != "a" {
		t.Errorf("seek range col = %q", seek.RangeCol)
	}
	if len(scan.Required) != 4 {
		t.Errorf("scan required = %v", scan.Required)
	}
	// The two requests share an OR group.
	if g := info.Result.Tree.ORGroups(); len(g) != 1 || len(g[0]) != 2 {
		t.Errorf("or groups = %v", g)
	}
	// Best indexes from the requests match the paper's candidates.
	best := whatif.GetBestIndex(db.Cat, seek)
	if got := strings.Join(best.Columns, ","); got != "a,b,c,id" {
		t.Errorf("seek best = %s", got)
	}
	best = whatif.GetBestIndex(db.Cat, scan)
	if got := strings.Join(best.Columns, ","); got != "id,a,b,c" {
		t.Errorf("scan best = %s", got)
	}
}

func TestUpdateShellRequest(t *testing.T) {
	db := openRS(t, 100)
	db.MustExec("CREATE INDEX Ia ON R (a)")
	_, info, err := db.Exec("UPDATE R SET b = 1 WHERE a = 5")
	if err != nil {
		t.Fatal(err)
	}
	var up *whatif.Request
	for _, r := range info.Result.Requests() {
		if r.Kind == whatif.KindUpdate {
			up = r
		}
	}
	if up == nil {
		t.Fatal("update request missing")
	}
	if up.UpdateTouchedIndexes != 1 {
		t.Errorf("touched = %d, want 1", up.UpdateTouchedIndexes)
	}
}

func TestInsertSelectJoinRequests(t *testing.T) {
	db := openRS(t, 500)
	_, info, err := db.Exec("SELECT S.y FROM R, S WHERE R.a = S.x AND R.b = 3")
	if err != nil {
		t.Fatal(err)
	}
	// Expect requests for both R and S, including an INLJ-style seek on
	// the inner with bindings > 1.
	var bindingsSeek *whatif.Request
	for _, r := range info.Result.Requests() {
		if r.Kind == whatif.KindSeek && r.Bindings > 1 {
			bindingsSeek = r
		}
	}
	if bindingsSeek == nil {
		t.Fatal("no INLJ request with bindings > 1 captured")
	}
}

func TestBudgetBlocksCreateIndex(t *testing.T) {
	db := openRS(t, 1000)
	db.Mgr.SetBudget(100) // far too small
	_, _, err := db.Exec("CREATE INDEX Ia ON R (a)")
	if err == nil {
		t.Fatal("index creation should exceed budget")
	}
	// Catalog must not retain the failed index.
	if db.Cat.Index("Ia") != nil {
		t.Error("failed index left in catalog")
	}
}

func TestDDLErrors(t *testing.T) {
	db := Open()
	if _, _, err := db.Exec("DROP INDEX nope"); err == nil {
		t.Error("drop of unknown index accepted")
	}
	if _, _, err := db.Exec("SELECT a FROM NoTable"); err == nil {
		t.Error("unknown table accepted")
	}
	db.MustExec("CREATE TABLE T (a INT, PRIMARY KEY (a))")
	if _, _, err := db.Exec("CREATE TABLE T (a INT, PRIMARY KEY (a))"); err == nil {
		t.Error("duplicate table accepted")
	}
	if _, _, err := db.Exec("SELECT nope FROM T"); err == nil {
		t.Error("unknown column accepted")
	}
}

func TestObserverNotified(t *testing.T) {
	db := openRS(t, 10)
	var got []*QueryInfo
	db.SetObserver(observerFunc(func(info *QueryInfo) { got = append(got, info) }))
	db.MustExec("SELECT a FROM R WHERE a = 1")
	db.MustExec("CREATE INDEX Ia ON R (a)") // DDL: not observed
	db.MustExec("SELECT a FROM R WHERE a = 2")
	if len(got) != 2 {
		t.Fatalf("observer saw %d events, want 2", len(got))
	}
	if got[0].EstCost <= 0 {
		t.Error("estimated cost missing")
	}
}

type observerFunc func(*QueryInfo)

func (f observerFunc) OnExecuted(info *QueryInfo) { f(info) }

func TestConfiguration(t *testing.T) {
	db := openRS(t, 50)
	if len(db.Configuration()) != 0 {
		t.Fatal("fresh db should have empty configuration")
	}
	db.MustExec("CREATE INDEX Ia ON R (a)")
	cfg := db.Configuration()
	if len(cfg) != 1 || cfg[0].Name != "Ia" {
		t.Fatalf("configuration = %v", cfg)
	}
	if err := db.Mgr.SuspendIndex(cfg[0].ID()); err != nil {
		t.Fatal(err)
	}
	if len(db.Configuration()) != 0 {
		t.Error("suspended index should leave the configuration")
	}
}

func TestBetweenAndIn(t *testing.T) {
	db := openRS(t, 300)
	rs := db.MustExec("SELECT COUNT(*) FROM R WHERE a BETWEEN 10 AND 19")
	if rs.Rows[0][0].Int() != 30 {
		t.Fatalf("between count = %v", rs.Rows[0][0])
	}
	rs = db.MustExec("SELECT COUNT(*) FROM R WHERE b IN (0, 1)")
	want := int64(0)
	for i := 0; i < 300; i++ {
		if i%7 < 2 {
			want++
		}
	}
	if rs.Rows[0][0].Int() != want {
		t.Fatalf("in count = %v, want %d", rs.Rows[0][0], want)
	}
}

// TestCompositeINLJoinKeyOrder is a regression test: when an index's
// composite key lists the join columns in a different order than the
// join predicates, the INL join must seek with keys aligned to the
// INDEX's column order, or it silently matches the wrong rows.
func TestCompositeINLJoinKeyOrder(t *testing.T) {
	db := Open()
	db.MustExec("CREATE TABLE outerT (id INT, ps INT, pp INT, PRIMARY KEY (id))")
	db.MustExec("CREATE TABLE innerT (id INT, p INT, s INT, v INT, PRIMARY KEY (id))")
	// Inner rows where (p, s) are asymmetric: (1,2) exists, (2,1) exists
	// with different payloads — a swapped seek key hits the wrong row.
	db.MustExec("INSERT INTO innerT VALUES (1, 1, 2, 100)")
	db.MustExec("INSERT INTO innerT VALUES (2, 2, 1, 200)")
	for i := 3; i < 4000; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO innerT VALUES (%d, %d, %d, %d)", i, i%50+10, i%40+10, i))
	}
	db.MustExec("INSERT INTO outerT VALUES (1, 2, 1)") // wants inner (p=1, s=2) → v=100
	if err := db.Analyze("innerT"); err != nil {
		t.Fatal(err)
	}
	if err := db.Analyze("outerT"); err != nil {
		t.Fatal(err)
	}
	// Index ordered (p, s); the query lists s first.
	db.MustExec("CREATE INDEX ips ON innerT (p, s, v)")
	q := "SELECT innerT.v FROM outerT, innerT WHERE outerT.ps = innerT.s AND outerT.pp = innerT.p"
	rs := db.MustExec(q)
	if len(rs.Rows) != 1 || rs.Rows[0][0].Int() != 100 {
		t.Fatalf("composite join returned %v, want one row with v=100", rs.Rows)
	}
}

func TestExplainStatement(t *testing.T) {
	db := openRS(t, 500)
	rs, info, err := db.Exec("EXPLAIN SELECT a FROM R WHERE a < 10 ORDER BY b LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Columns) != 1 || rs.Columns[0] != "plan" {
		t.Fatalf("columns = %v", rs.Columns)
	}
	text := ""
	for _, r := range rs.Rows {
		text += r[0].Str() + "\n"
	}
	for _, want := range []string{"TopN 3", "SeqScan R"} {
		if !strings.Contains(text, want) {
			t.Errorf("plan missing %q:\n%s", want, text)
		}
	}
	if info.EstCost <= 0 {
		t.Error("explain should report the estimated cost")
	}
	// EXPLAIN must not execute or be observed as workload.
	var observed int
	db.SetObserver(observerFunc(func(*QueryInfo) { observed++ }))
	db.MustExec("EXPLAIN DELETE FROM R WHERE a < 5")
	if observed != 0 {
		t.Error("EXPLAIN was observed by the tuner hook")
	}
	if db.MustExec("SELECT COUNT(*) FROM R").Rows[0][0].Int() != 500 {
		t.Error("EXPLAIN DELETE executed the delete")
	}
	if _, _, err := db.Exec("EXPLAIN SELECT nope FROM R"); err == nil {
		t.Error("EXPLAIN of invalid statement accepted")
	}
}

func TestMergeJoinChosenForSortedInputs(t *testing.T) {
	db := Open()
	db.MustExec("CREATE TABLE L (id INT, x INT, v INT, PRIMARY KEY (id))")
	db.MustExec("CREATE TABLE Rt (id INT, x INT, w INT, PRIMARY KEY (id))")
	for i := 0; i < 3000; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO L VALUES (%d, %d, %d)", i, i%500, i))
		db.MustExec(fmt.Sprintf("INSERT INTO Rt VALUES (%d, %d, %d)", i, i%500, i))
	}
	if err := db.Analyze("L"); err != nil {
		t.Fatal(err)
	}
	if err := db.Analyze("Rt"); err != nil {
		t.Fatal(err)
	}
	// Hash join baseline result.
	q := "SELECT L.v, Rt.w FROM L, Rt WHERE L.x = Rt.x AND L.v < 50 AND Rt.w < 50"
	want := len(db.MustExec(q).Rows)
	// Covering x-leading indexes make both inputs arrive sorted by x.
	db.MustExec("CREATE INDEX Lx ON L (x, v)")
	db.MustExec("CREATE INDEX Rx ON Rt (x, w)")
	rs, info, err := db.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != want {
		t.Fatalf("indexed plan changed results: %d vs %d", len(rs.Rows), want)
	}
	expl := plan.Explain(info.Result.Plan)
	if !strings.Contains(expl, "MergeJoin") {
		t.Logf("merge join not chosen (acceptable if another strategy is cheaper):\n%s", expl)
	}
}
