package engine

import (
	"fmt"
	"testing"

	"onlinetuner/internal/sql"
)

// FuzzRewrite is the rewrite pack's semantic fuzz harness: any SELECT
// the parser accepts must return byte-identical rows (in execution
// order) whether the optimizer runs with every rule on or every rule
// off, and must fail on both sides or neither. The corpus seeds the
// shapes the rules rewrite — IN / EXISTS / NOT IN subqueries, ORDER BY
// ... LIMIT, bare MIN/MAX, multi-table joins — plus degenerate
// fragments. Only SELECTs are replayed so the two databases stay
// identical across iterations.
func FuzzRewrite(f *testing.F) {
	for _, s := range []string{
		"SELECT id, a FROM R WHERE a < 50 ORDER BY a DESC, id LIMIT 10",
		"SELECT id FROM R ORDER BY b, id LIMIT 0",
		"SELECT MIN(a) FROM R",
		"SELECT MAX(b), MIN(b) FROM R",
		"SELECT MIN(x) FROM S WHERE y = 3",
		"SELECT id FROM R WHERE id IN (SELECT id FROM S WHERE x < 10)",
		"SELECT id FROM R WHERE id NOT IN (SELECT id FROM S)",
		"SELECT id FROM R WHERE EXISTS (SELECT * FROM S WHERE S.id = R.id AND x > 5)",
		"SELECT id FROM R WHERE NOT EXISTS (SELECT * FROM S WHERE S.id = R.id)",
		"SELECT a, COUNT(*) FROM R WHERE EXISTS (SELECT * FROM S WHERE S.id = R.id) GROUP BY a ORDER BY a LIMIT 5",
		"SELECT R.id, S.y FROM R, S WHERE R.id = S.id AND a < 20 ORDER BY R.id LIMIT 7",
		"SELECT d FROM R, S WHERE R.id = S.id",
		"SELECT MAX(e) FROM R WHERE a = 17",
		"SELECT id FROM R WHERE a IN (SELECT x FROM S) ORDER BY id DESC LIMIT 3",
		"SELECT COUNT(*) FROM R, S WHERE R.id = S.id AND x = 1",
		"SELECT 1 FROM R LIMIT 1",
	} {
		f.Add(s)
	}
	dbOn := openRS(f, 300)
	dbOff := openRS(f, 300)
	if err := dbOff.SetRules("none"); err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, text string) {
		stmt, err := sql.Parse(text)
		if err != nil {
			return
		}
		if _, ok := stmt.(*sql.Select); !ok {
			return
		}
		rsOn, _, errOn := dbOn.Exec(text)
		rsOff, _, errOff := dbOff.Exec(text)
		if (errOn == nil) != (errOff == nil) {
			t.Fatalf("%q: rules toggle changed errors: on=%v off=%v", text, errOn, errOff)
		}
		if errOn != nil {
			return
		}
		on, off := fmt.Sprint(rsOn.Rows), fmt.Sprint(rsOff.Rows)
		if on != off {
			t.Fatalf("%q: rules toggle changed results:\non:  %s\noff: %s", text, on, off)
		}
	})
}
