package engine

import (
	"context"
	"testing"
	"time"

	"onlinetuner/internal/fault"
)

// counterVal reads one counter out of the registry snapshot.
func counterVal(t *testing.T, db *DB, name string) int64 {
	t.Helper()
	v, ok := db.Observability().Reg.Snapshot()[name]
	if !ok {
		return 0
	}
	n, ok := v.(int64)
	if !ok {
		t.Fatalf("metric %s is %T, not int64", name, v)
	}
	return n
}

// TestTransientFaultRetried plants a single transient statement-level
// fault; the engine's retry loop must absorb it and the statement must
// still succeed, with the retry counted.
func TestTransientFaultRetried(t *testing.T) {
	db := openRS(t, 200)
	db.SetRetryBackoff(time.Microsecond)
	inj := fault.New(7).Plan(fault.ExecStmt, fault.Rule{Prob: 1, Count: 1, Transient: true})
	db.SetFaults(inj)
	inj.Arm()

	rs := db.MustExec("SELECT id FROM R WHERE a = 42")
	if len(rs.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rs.Rows))
	}
	if got := counterVal(t, db, "engine.transient_retries"); got != 1 {
		t.Fatalf("transient_retries = %d, want 1", got)
	}
	if fired := inj.FiredTotal(); fired != 1 {
		t.Fatalf("faults fired = %d, want 1", fired)
	}
}

// TestPermanentFaultFailsStatement checks a non-transient fault is not
// retried: the statement fails, and the engine keeps serving afterward.
func TestPermanentFaultFailsStatement(t *testing.T) {
	db := openRS(t, 200)
	inj := fault.New(7).Plan(fault.ExecStmt, fault.Rule{Prob: 1, Count: 1})
	db.SetFaults(inj)
	inj.Arm()

	if _, _, err := db.Exec("SELECT id FROM R WHERE a = 42"); !fault.Is(err) {
		t.Fatalf("err = %v, want injected fault", err)
	}
	if got := counterVal(t, db, "engine.transient_retries"); got != 0 {
		t.Fatalf("transient_retries = %d, want 0 (permanent faults must not retry)", got)
	}
	// The fault is spent; the engine serves the next statement normally.
	rs := db.MustExec("SELECT id FROM R WHERE a = 42")
	if len(rs.Rows) != 2 {
		t.Fatalf("rows after fault = %d, want 2", len(rs.Rows))
	}
}

// TestTransientFaultExhaustsRetries plants more transient faults than
// the retry budget; the statement must fail with the fault surfaced,
// not loop forever.
func TestTransientFaultExhaustsRetries(t *testing.T) {
	db := openRS(t, 200)
	db.SetRetryBackoff(time.Microsecond)
	inj := fault.New(7).Plan(fault.ExecStmt, fault.Rule{Prob: 1, Transient: true})
	db.SetFaults(inj)
	inj.Arm()

	if _, _, err := db.Exec("SELECT id FROM R"); !fault.IsTransient(err) {
		t.Fatalf("err = %v, want transient fault after exhausted retries", err)
	}
	if got := counterVal(t, db, "engine.transient_retries"); got != 2 {
		t.Fatalf("transient_retries = %d, want 2 (3 attempts)", got)
	}
}

// TestTransientDMLRetryNoDuplicates: a transient write fault on an
// INSERT is retried by the engine. The failed attempt must have rolled
// back completely, so the retry cannot create duplicate rows.
func TestTransientDMLRetryNoDuplicates(t *testing.T) {
	db := openRS(t, 100)
	db.SetRetryBackoff(time.Microsecond)
	inj := fault.New(3).Plan(fault.PageWrite, fault.Rule{Prob: 1, Count: 1, Transient: true})
	db.SetFaults(inj)
	inj.Arm()

	db.MustExec("INSERT INTO R VALUES (9001, 1, 2, 3, 4, 5)")
	if fired := inj.FiredTotal(); fired != 1 {
		t.Fatalf("faults fired = %d, want 1", fired)
	}
	rs := db.MustExec("SELECT id FROM R WHERE id = 9001")
	if len(rs.Rows) != 1 {
		t.Fatalf("rows with id 9001 = %d, want exactly 1", len(rs.Rows))
	}
	rs = db.MustExec("SELECT id FROM R")
	if len(rs.Rows) != 101 {
		t.Fatalf("total rows = %d, want 101", len(rs.Rows))
	}
}

// TestContextCancellation: a cancelled context fails the statement
// before (or during) execution with the context error, and the engine
// serves subsequent statements normally.
func TestContextCancellation(t *testing.T) {
	db := openRS(t, 200)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := db.ExecContext(ctx, "SELECT id FROM R"); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	rs := db.MustExec("SELECT id FROM R")
	if len(rs.Rows) != 200 {
		t.Fatalf("rows after cancellation = %d, want 200", len(rs.Rows))
	}
}

// TestContextDeadlineMidStatement: a deadline that expires during a
// long statement aborts it (either at an operator boundary or a row
// tick) instead of running to completion.
func TestContextDeadlineMidStatement(t *testing.T) {
	db := openRS(t, 5000)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, _, err := db.ExecContext(ctx, "SELECT count(*) FROM R, S WHERE R.a = S.x"); err != context.DeadlineExceeded {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestFaultDoesNotPoisonPlanCache fails the first execution of a
// cached query; the cached plan must stay usable, and a later
// fault-free run of the same text returns correct results.
func TestFaultDoesNotPoisonPlanCache(t *testing.T) {
	db := openRS(t, 200)
	const q = "SELECT id FROM R WHERE a = 42"
	rs := db.MustExec(q) // warm the statement and plan caches
	want := len(rs.Rows)

	inj := fault.New(11).Plan(fault.ExecStmt, fault.Rule{Prob: 1, Count: 1})
	db.SetFaults(inj)
	inj.Arm()
	if _, _, err := db.Exec(q); !fault.Is(err) {
		t.Fatalf("err = %v, want injected fault", err)
	}
	inj.Disarm()

	rs = db.MustExec(q)
	if len(rs.Rows) != want {
		t.Fatalf("cached query after fault: rows = %d, want %d", len(rs.Rows), want)
	}
}
