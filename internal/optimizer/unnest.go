package optimizer

import (
	"fmt"
	"math"
	"strings"

	"onlinetuner/internal/plan"
	"onlinetuner/internal/sql"
	"onlinetuner/internal/whatif"
)

// This file implements subquery unnesting: IN (SELECT ...) and
// EXISTS (SELECT ...) conjuncts (and their negations) are flattened into
// hash semi/anti joins on top of the outer join tree. Unnesting is the
// only execution strategy the engine has for subqueries, so it runs in
// every rule setting; the RuleUnnest bit gates only the inner side's
// index-aware access path and its what-if request capture. Because the
// semi-join filters the probe stream in order and its build side is a
// set (insertion order irrelevant), toggling the rule can never change
// results — only cost.

// semiSpec is one unnested subquery conjunct, ready to become a hash
// semi/anti join above the outer join tree.
type semiSpec struct {
	probe     []sql.Expr  // outer-side key expressions, noted as required
	innerKeys []sql.Expr  // inner-side key columns (resolved, qualified)
	innerBQ   *boundQuery // single-table inner pseudo-query
	anti      bool        // NOT IN / NOT EXISTS
	nullAware bool        // NOT IN only: NULLs in the build set poison the anti-join
}

func (sp *semiSpec) innerBT() *boundTable { return sp.innerBQ.tables[0] }

// stripSubqueries splits the top-level WHERE conjuncts into subquery
// conjuncts and the rest. The returned select is a shallow copy with the
// subquery conjuncts removed; the original statement is never mutated.
func stripSubqueries(sel *sql.Select) (*sql.Select, []sql.Expr) {
	conjs := splitConjuncts(sel.Where)
	var subs, rest []sql.Expr
	for _, c := range conjs {
		if isSubqueryConjunct(c) {
			subs = append(subs, c)
		} else {
			rest = append(rest, c)
		}
	}
	if len(subs) == 0 {
		return sel, nil
	}
	out := *sel
	out.Where = andAll(rest)
	return &out, subs
}

// isSubqueryConjunct matches the three supported top-level shapes:
// [NOT] IN (SELECT ...), EXISTS (...), NOT EXISTS (...).
func isSubqueryConjunct(e sql.Expr) bool {
	switch x := e.(type) {
	case *sql.InSubquery, *sql.ExistsExpr:
		return true
	case *sql.NotExpr:
		_, ok := x.Inner.(*sql.ExistsExpr)
		return ok
	}
	return false
}

// andAll rebuilds a conjunction (nil for the empty list).
func andAll(es []sql.Expr) sql.Expr {
	var out sql.Expr
	for _, e := range es {
		if out == nil {
			out = e
		} else {
			out = &sql.BinaryExpr{Op: "AND", Left: out, Right: e}
		}
	}
	return out
}

// rejectSubqueries errors when a subquery survives anywhere the planner
// cannot unnest it: below OR/NOT in WHERE, in join conditions, or in the
// select/group/order lists.
func rejectSubqueries(sel *sql.Select) error {
	check := func(e sql.Expr, where string) error {
		if containsSubquery(e) {
			return fmt.Errorf("optimizer: subqueries are only supported as top-level WHERE conjuncts (found in %s)", where)
		}
		return nil
	}
	for _, it := range sel.Items {
		if !it.Star {
			if err := check(it.Expr, "select list"); err != nil {
				return err
			}
		}
	}
	for _, j := range sel.Joins {
		if err := check(j.On, "join condition"); err != nil {
			return err
		}
	}
	if err := check(sel.Where, "WHERE"); err != nil {
		return err
	}
	for _, g := range sel.GroupBy {
		if err := check(g, "GROUP BY"); err != nil {
			return err
		}
	}
	for _, oi := range sel.OrderBy {
		if err := check(oi.Expr, "ORDER BY"); err != nil {
			return err
		}
	}
	return nil
}

// containsSubquery reports whether a subquery node appears anywhere in
// the expression (the subquery's own contents are not walked: a nested
// subquery inside a subquery is caught when the inner one is analyzed).
func containsSubquery(e sql.Expr) bool {
	found := false
	var walk func(sql.Expr)
	walk = func(e sql.Expr) {
		switch x := e.(type) {
		case *sql.InSubquery, *sql.ExistsExpr:
			found = true
		case *sql.BinaryExpr:
			walk(x.Left)
			walk(x.Right)
		case *sql.NotExpr:
			walk(x.Inner)
		case *sql.IsNullExpr:
			walk(x.Inner)
		case *sql.LikeExpr:
			walk(x.Expr)
		case *sql.FuncExpr:
			if x.Arg != nil {
				walk(x.Arg)
			}
		}
	}
	if e != nil {
		walk(e)
	}
	return found
}

// analyzeSubquery turns one subquery conjunct into a semiSpec, binding
// the inner query and noting the outer probe columns as required. This
// must run before outer access paths are chosen.
func (o *Optimizer) analyzeSubquery(bq *boundQuery, e sql.Expr) (*semiSpec, error) {
	switch x := e.(type) {
	case *sql.InSubquery:
		return o.analyzeIn(bq, x)
	case *sql.ExistsExpr:
		return o.analyzeExists(bq, x, false)
	case *sql.NotExpr:
		return o.analyzeExists(bq, x.Inner.(*sql.ExistsExpr), true)
	}
	return nil, fmt.Errorf("optimizer: unsupported subquery conjunct %T", e)
}

// analyzeIn handles expr [NOT] IN (SELECT col FROM t WHERE ...): the
// inner query must be a fully uncorrelated single-table, single-column
// select. NOT IN becomes a null-aware anti join.
func (o *Optimizer) analyzeIn(bq *boundQuery, x *sql.InSubquery) (*semiSpec, error) {
	q := x.Query
	if len(q.Joins) > 0 || len(q.GroupBy) > 0 || q.Distinct || q.Limit >= 0 || len(q.OrderBy) > 0 {
		return nil, fmt.Errorf("optimizer: IN subquery must be a plain single-table select")
	}
	if len(q.Items) != 1 || q.Items[0].Star {
		return nil, fmt.Errorf("optimizer: IN subquery must select exactly one column")
	}
	keyCR, ok := q.Items[0].Expr.(*sql.ColumnRef)
	if !ok {
		return nil, fmt.Errorf("optimizer: IN subquery must select a plain column, got %s", q.Items[0].Expr)
	}
	if containsSubquery(q.Where) || containsSubquery(x.Left) {
		return nil, fmt.Errorf("optimizer: nested subqueries are not supported")
	}

	// Bind the inner as a standalone single-table select; any outer
	// reference in its WHERE fails to resolve there, which is exactly the
	// "must be uncorrelated" restriction.
	pseudo := &sql.Select{
		Items: []sql.SelectItem{{Expr: keyCR}},
		From:  q.From,
		Where: q.Where,
		Limit: -1,
	}
	ibq, err := bind(o.env.Cat, pseudo)
	if err != nil {
		return nil, err
	}
	_, keyCol, err := ibq.resolve(keyCR)
	if err != nil {
		return nil, err
	}
	// The probe expression belongs to the outer scope.
	if err := bq.noteColumns(x.Left); err != nil {
		return nil, err
	}
	return &semiSpec{
		probe:     []sql.Expr{x.Left},
		innerKeys: []sql.Expr{&sql.ColumnRef{Table: ibq.tables[0].name(), Column: keyCol}},
		innerBQ:   ibq,
		anti:      x.Not,
		nullAware: x.Not,
	}, nil
}

// analyzeExists handles [NOT] EXISTS (SELECT ... FROM t WHERE ...): the
// inner WHERE is partitioned into correlation equalities (one side an
// inner column, the other an outer expression) and inner-local
// conjuncts; at least one correlation equality is required. Resolution
// is inner-scope-first, like nested SQL scoping.
func (o *Optimizer) analyzeExists(bq *boundQuery, x *sql.ExistsExpr, not bool) (*semiSpec, error) {
	q := x.Query
	if len(q.Joins) > 0 || len(q.GroupBy) > 0 || q.Distinct || q.Limit >= 0 || len(q.OrderBy) > 0 {
		return nil, fmt.Errorf("optimizer: EXISTS subquery must be a plain single-table select")
	}
	if containsSubquery(q.Where) {
		return nil, fmt.Errorf("optimizer: nested subqueries are not supported")
	}
	innerTbl := o.env.Cat.Table(q.From.Table)
	if innerTbl == nil {
		return nil, fmt.Errorf("optimizer: unknown table %s", q.From.Table)
	}
	innerName := q.From.Name()

	isInnerCol := func(e sql.Expr) (string, bool) {
		cr, ok := e.(*sql.ColumnRef)
		if !ok {
			return "", false
		}
		if cr.Table != "" && !strings.EqualFold(cr.Table, innerName) {
			return "", false
		}
		ord := innerTbl.ColumnIndex(cr.Column)
		if ord < 0 {
			return "", false
		}
		return innerTbl.Columns[ord].Name, true
	}
	isOuter := func(e sql.Expr) bool {
		ok := true
		walkColumns(e, func(cr *sql.ColumnRef) {
			if !ok {
				return
			}
			if _, _, err := bq.resolve(cr); err != nil {
				ok = false
			}
		})
		return ok
	}
	isInnerLocal := func(e sql.Expr) bool {
		ok := true
		walkColumns(e, func(cr *sql.ColumnRef) {
			if !ok {
				return
			}
			if _, inner := isInnerCol(cr); !inner {
				ok = false
			}
		})
		return ok
	}

	var probe, innerKeys []sql.Expr
	var locals []sql.Expr
	for _, c := range splitConjuncts(q.Where) {
		if isInnerLocal(c) {
			locals = append(locals, c)
			continue
		}
		be, ok := c.(*sql.BinaryExpr)
		if !ok || be.Op != "=" {
			return nil, fmt.Errorf("optimizer: EXISTS supports only equality correlation, got %s", c)
		}
		var innerCol string
		var outerSide sql.Expr
		if col, inner := isInnerCol(be.Left); inner && isOuter(be.Right) {
			innerCol, outerSide = col, be.Right
		} else if col, inner := isInnerCol(be.Right); inner && isOuter(be.Left) {
			innerCol, outerSide = col, be.Left
		} else {
			return nil, fmt.Errorf("optimizer: unsupported EXISTS correlation %s", c)
		}
		probe = append(probe, outerSide)
		innerKeys = append(innerKeys, &sql.ColumnRef{Table: innerName, Column: innerCol})
	}
	if len(probe) == 0 {
		return nil, fmt.Errorf("optimizer: EXISTS subquery must correlate with the outer query")
	}
	for _, p := range probe {
		if err := bq.noteColumns(p); err != nil {
			return nil, err
		}
	}

	// Bind the decorrelated inner: the correlation columns become the
	// select list, the inner-local conjuncts the WHERE.
	items := make([]sql.SelectItem, len(innerKeys))
	for i, k := range innerKeys {
		items[i] = sql.SelectItem{Expr: k}
	}
	pseudo := &sql.Select{Items: items, From: q.From, Where: andAll(locals), Limit: -1}
	ibq, err := bind(o.env.Cat, pseudo)
	if err != nil {
		return nil, err
	}
	return &semiSpec{probe: probe, innerKeys: innerKeys, innerBQ: ibq, anti: not}, nil
}

// applySemiJoin plans one unnested subquery as a hash semi/anti join on
// top of the current state. With RuleUnnest on, the inner access path is
// index-aware and its requests are captured as a new OR group (returned
// for the tree); with the rule off, a naive sequential scan executes the
// same set semantics at the same outer row order, with no requests.
func (o *Optimizer) applySemiJoin(st *joinState, sp *semiSpec, rules Rules, applied map[string]bool) *whatif.Node {
	m := o.env.Model
	bt := sp.innerBT()
	var inner *accessPath
	var group *whatif.Node
	if rules.Has(RuleUnnest) {
		inner = o.chooseAccess(bt, nil)
		var leaves []*whatif.Node
		for _, r := range inner.requests {
			leaves = append(leaves, whatif.NewLeaf(r))
		}
		group = whatif.NewOr(leaves...)
		applied["subquery-unnest"] = true
	} else {
		table := bt.ref.Table
		rows := o.env.TableRows(table)
		pages := o.env.TablePages(table)
		preds := allPreds(bt)
		outRows := rows * o.tableSel(bt, o.analyzeRanges(bt))
		if outRows < 1 && rows > 0 {
			outRows = 1
		}
		scan := &plan.SeqScan{Table: table, Alias: bt.name(), Preds: preds}
		scan.Out = plan.TableSchema(bt.tbl, bt.name())
		scan.Cost = m.HeapScan(pages, rows, len(preds))
		scan.Rows = outRows
		inner = &accessPath{node: scan, cost: scan.Cost, rows: outRows}
	}

	n := &plan.HashSemiJoin{
		Left: st.node, Right: inner.node,
		LeftKeys: sp.probe, RightKeys: sp.innerKeys,
		Anti: sp.anti, NullAware: sp.nullAware,
	}
	n.Out = st.node.Schema()
	n.Cost = st.cost + inner.cost + m.HashJoin(inner.rows, st.rows)
	n.Rows = math.Max(1, st.rows*0.5)
	st.node = n
	st.cost = n.Cost
	st.rows = n.Rows
	// st.order is preserved: a semi-join filters the probe stream.
	return group
}
