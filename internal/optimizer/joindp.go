package optimizer

import (
	"math"
	"math/bits"
	"strings"

	"onlinetuner/internal/datum"
	"onlinetuner/internal/plan"
	"onlinetuner/internal/sql"
)

// tryJoinDP runs an exhaustive bushy join-order DP (hash joins only,
// connected subsets only) over small join graphs and adopts its plan
// when it beats the greedy left-deep order on estimated cost. The rule
// only fires on order-safe queries — aggregate output provably
// independent of intermediate row order — so toggling it can change
// plan shape and cost but never the rows a statement returns.
func (o *Optimizer) tryJoinDP(bq *boundQuery, paths []*accessPath, st *joinState, rules Rules, applied map[string]bool) {
	n := len(bq.tables)
	if !rules.Has(RuleJoinDP) || n < 3 || n > 7 {
		return
	}
	if !orderSafeForDP(bq) {
		return
	}
	m := o.env.Model

	full := (1 << n) - 1
	width := make([]int, 1<<n)
	rows := make([]float64, 1<<n)
	cost := make([]float64, 1<<n)
	split := make([]int, 1<<n)

	// Per-subset width and cardinality. Cardinality mirrors the greedy
	// estimator: product of access-path rows times one selectivity per
	// join predicate internal to the subset, clamped at one row.
	for s := 1; s <= full; s++ {
		cost[s] = math.Inf(1)
		r := 1.0
		for i := 0; i < n; i++ {
			if s&(1<<i) != 0 {
				r *= paths[i].rows
				width[s] += len(paths[i].node.Schema())
			}
		}
		for _, jp := range bq.joins {
			if s&(1<<jp.lt) != 0 && s&(1<<jp.rt) != 0 {
				r *= 1 / math.Max(1, math.Max(
					o.distinctOf(bq.tables[jp.lt].ref.Table, jp.lc),
					o.distinctOf(bq.tables[jp.rt].ref.Table, jp.rc)))
			}
		}
		rows[s] = math.Max(1, r)
	}
	for i := 0; i < n; i++ {
		cost[1<<i] = paths[i].cost
		rows[1<<i] = paths[i].rows
	}

	for s := 1; s <= full; s++ {
		if bits.OnesCount(uint(s)) < 2 {
			continue
		}
		for a := (s - 1) & s; a > 0; a = (a - 1) & s {
			b := s &^ a
			if b == 0 || math.IsInf(cost[a], 1) || math.IsInf(cost[b], 1) {
				continue
			}
			// Hash joins only between connected subsets: a predicate must
			// span the split (no cross products inside the DP).
			connected := false
			for _, jp := range bq.joins {
				la, ra := a&(1<<jp.lt) != 0, a&(1<<jp.rt) != 0
				lb, rb := b&(1<<jp.lt) != 0, b&(1<<jp.rt) != 0
				if (la && rb) || (ra && lb) {
					connected = true
					break
				}
			}
			if !connected {
				continue
			}
			// A probes, B builds — the same cost shape joinChoiceFor
			// charges for its hash join, width terms included.
			c := cost[a] + cost[b] + m.HashJoin(rows[b], rows[a]) +
				m.RowWidth(rows[a], width[a]) + m.RowWidth(rows[b], width[b])
			if c < cost[s] {
				cost[s] = c
				split[s] = a
			}
		}
	}
	if math.IsInf(cost[full], 1) || cost[full] >= st.cost-1e-9 {
		return
	}

	var build func(s int) plan.Node
	build = func(s int) plan.Node {
		if bits.OnesCount(uint(s)) == 1 {
			return paths[bits.TrailingZeros(uint(s))].node
		}
		a := split[s]
		b := s &^ a
		left, right := build(a), build(b)
		var lk, rk []sql.Expr
		for _, jp := range bq.joins {
			lt, rt, lc, rc := jp.lt, jp.rt, jp.lc, jp.rc
			if a&(1<<rt) != 0 && b&(1<<lt) != 0 {
				lt, rt, lc, rc = rt, lt, rc, lc
			}
			if a&(1<<lt) != 0 && b&(1<<rt) != 0 {
				lk = append(lk, &sql.ColumnRef{Table: bq.tables[lt].name(), Column: lc})
				rk = append(rk, &sql.ColumnRef{Table: bq.tables[rt].name(), Column: rc})
			}
		}
		hj := &plan.HashJoin{Left: left, Right: right, LeftKeys: lk, RightKeys: rk}
		hj.Out = append(append([]plan.ColRef(nil), left.Schema()...), right.Schema()...)
		hj.Cost = cost[s]
		hj.Rows = rows[s]
		return hj
	}
	st.node = build(full)
	st.cost = cost[full]
	st.rows = rows[full]
	st.order = nil
	applied["join-dp"] = true
}

// orderSafeForDP reports whether the query's final output is provably
// independent of intermediate row order: aggregate-only output with
// order-insensitive accumulators, and — when grouping — a total output
// order imposed by ORDER BY on every group key (hash aggregation emits
// groups in input-first-appearance order, so without that pin a join
// reorder would reorder the output).
func orderSafeForDP(bq *boundQuery) bool {
	sel := bq.sel
	if sel.Distinct {
		return false
	}
	if !bq.hasAggs && len(sel.GroupBy) == 0 {
		return false
	}
	for _, it := range sel.Items {
		if it.Star {
			return false
		}
		fe, ok := it.Expr.(*sql.FuncExpr)
		if !ok {
			// A scalar item evaluates on each group's first row: safe only
			// when it is itself a group key (constant within the group).
			if !exprInList(it.Expr, sel.GroupBy) {
				return false
			}
			continue
		}
		switch fe.Name {
		case "COUNT", "MIN", "MAX":
		case "SUM":
			// Integer SUM accumulates exactly in any order; float SUM (and
			// AVG's float accumulator) are order-sensitive.
			cr, ok := fe.Arg.(*sql.ColumnRef)
			if !ok {
				return false
			}
			ti, col, err := bq.resolve(cr)
			if err != nil {
				return false
			}
			t := bq.tables[ti].tbl
			if t.Columns[t.ColumnIndex(col)].Kind != datum.KInt {
				return false
			}
		default:
			return false
		}
	}
	if len(sel.GroupBy) == 0 {
		return true
	}
	// Every group key must be pinned by ORDER BY so the output order is
	// total regardless of hash-aggregation emission order.
	for _, g := range sel.GroupBy {
		found := false
		for _, oi := range sel.OrderBy {
			e := oi.Expr
			if cr, ok := e.(*sql.ColumnRef); ok && cr.Table == "" {
				for _, it := range sel.Items {
					if !it.Star && strings.EqualFold(it.Alias, cr.Column) {
						e = it.Expr
					}
				}
			}
			if e.String() == g.String() {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// exprInList reports structural (string-form) membership.
func exprInList(e sql.Expr, list []sql.Expr) bool {
	for _, g := range list {
		if g.String() == e.String() {
			return true
		}
	}
	return false
}
