package optimizer

import (
	"math"
	"strings"

	"onlinetuner/internal/catalog"
	"onlinetuner/internal/datum"
	"onlinetuner/internal/plan"
	"onlinetuner/internal/sql"
	"onlinetuner/internal/whatif"
)

// tryMinMaxEndpoint recognizes single-table MIN/MAX-only aggregates over
// one column with (at most) equality predicates. Whenever the shape
// matches it captures a KindEndpoint request — a new kind of access-path
// request the tuner can bid on even when no qualifying index exists —
// and when a qualifying index is available and cheaper, it replaces the
// access path with an IndexEndpoint node (at most two single-row seeks).
// The unchanged HashAgg above reduces the endpoint rows, so semantics —
// including zero rows aggregating to a NULL row — are exactly the
// scan-based aggregate's.
func (o *Optimizer) tryMinMaxEndpoint(bq *boundQuery, paths []*accessPath, rules Rules, applied map[string]bool) {
	if !rules.Has(RuleMinMax) || len(bq.tables) != 1 {
		return
	}
	sel := bq.sel
	if len(sel.GroupBy) > 0 || sel.Distinct || !bq.hasAggs {
		return
	}
	bt := bq.tables[0]
	// Only equality predicates, one per column: ranges and residuals
	// would filter rows the endpoint seek never visits, and duplicate
	// equalities on one column cannot all be consumed by the seek.
	if len(bt.lows)+len(bt.highs)+len(bt.resid) > 0 || dupCols(bt.eqs) {
		return
	}
	var col string
	wantMin, wantMax := false, false
	for _, it := range sel.Items {
		fe, ok := it.Expr.(*sql.FuncExpr)
		if !ok || fe.Star {
			return
		}
		cr, ok := fe.Arg.(*sql.ColumnRef)
		if !ok {
			return
		}
		_, c, err := bq.resolve(cr)
		if err != nil {
			return
		}
		if col == "" {
			col = c
		} else if !strings.EqualFold(col, c) {
			return
		}
		switch fe.Name {
		case "MIN":
			wantMin = true
		case "MAX":
			wantMax = true
		default:
			return
		}
	}
	if col == "" || (!wantMin && !wantMax) {
		return
	}

	m := o.env.Model
	table := bt.ref.Table
	tableRows := o.env.TableRows(table)
	tablePages := o.env.TablePages(table)
	endpoints := 0
	if wantMin {
		endpoints++
	}
	if wantMax {
		endpoints++
	}

	// The endpoint request is captured whether or not an index qualifies:
	// this is exactly the what-if traffic the tuner bids on.
	req := &whatif.Request{
		Table:          table,
		Kind:           whatif.KindEndpoint,
		RangeCol:       col,
		RangeSel:       1 / math.Max(1, tableRows),
		Required:       append([]string(nil), bt.required...),
		Bindings:       1,
		RowsPerBinding: float64(endpoints),
		TableRows:      tableRows,
		TablePages:     tablePages,
		CurrentCost:    paths[0].cost,
	}
	for _, eq := range bt.eqs {
		req.EqCols = append(req.EqCols, eq.col)
		req.EqSels = append(req.EqSels, o.selEq(table, eq.col, eq.val))
	}
	paths[0].requests = append(paths[0].requests, req)

	// Find the cheapest qualifying index: every equality column consumed
	// as the leading prefix (in index column order), then the endpoint
	// column immediately next.
	var bestIx *catalog.Index
	bestCost := math.Inf(1)
	var bestEqVals []datum.Datum
	var bestEqLits []*sql.Literal
	for _, pi := range o.env.Mgr.TableIndexes(table) {
		ix := pi.Def
		if !o.env.Available(ix) {
			continue
		}
		var eqVals []datum.Datum
		var eqLits []*sql.Literal
		qualifies := false
		for _, icol := range ix.Columns {
			if len(eqVals) < len(bt.eqs) {
				if eq := findEq(bt.eqs, icol); eq != nil {
					eqVals = append(eqVals, eq.val)
					eqLits = append(eqLits, litOf(eq.expr))
					continue
				}
				break
			}
			qualifies = strings.EqualFold(icol, col)
			break
		}
		if !qualifies || len(eqVals) != len(bt.eqs) {
			continue
		}
		pages := o.env.IndexPages(ix)
		c := float64(endpoints) * m.IndexSeek(pages, 1, 1)
		if !ix.Primary {
			c += m.RIDLookups(float64(endpoints), tablePages)
		}
		if c < bestCost {
			bestIx, bestCost = ix, c
			bestEqVals, bestEqLits = eqVals, eqLits
		}
	}
	if bestIx == nil || bestCost >= paths[0].cost {
		return
	}

	n := &plan.IndexEndpoint{
		Index: bestIx, Alias: bt.name(), Col: col,
		EqVals: bestEqVals, EqLits: bestEqLits,
		WantMin: wantMin, WantMax: wantMax,
	}
	n.Out = plan.TableSchema(bt.tbl, bt.name())
	n.Cost = bestCost
	n.Rows = float64(endpoints)
	// The scan/seek alternatives captured by chooseAccess are no longer
	// realized in the final plan.
	for _, r := range paths[0].requests[:len(paths[0].requests)-1] {
		r.Implemented = false
	}
	req.CurrentCost = bestCost
	req.CurrentIndexID = bestIx.ID()
	req.Implemented = true
	paths[0] = &accessPath{node: n, cost: bestCost, rows: n.Rows, requests: paths[0].requests}
	applied["minmax-endpoint"] = true
}
