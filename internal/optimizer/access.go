package optimizer

import (
	"strings"

	"onlinetuner/internal/catalog"
	"onlinetuner/internal/datum"
	"onlinetuner/internal/plan"
	"onlinetuner/internal/sql"
	"onlinetuner/internal/whatif"
)

// accessPath is the chosen physical access for one table plus the
// requests captured while the alternatives were generated.
type accessPath struct {
	node  plan.Node
	cost  float64
	rows  float64
	order []string // output order (table-column names), empty if none
	// requests captured for this access (scan request, plus a seek
	// request when sargable predicates exist).
	requests []*whatif.Request
}

// selEq returns the selectivity of column = val, preferring the
// histogram.
func (o *Optimizer) selEq(table, col string, val datum.Datum) float64 {
	if cs := o.env.Stats.Get(table, col); cs != nil && cs.Hist != nil && cs.Rows > 0 {
		s := cs.Hist.SelectivityEq(val)
		if s <= 0 {
			s = 0.5 / float64(maxI64(cs.Rows, 1))
		}
		return s
	}
	return o.env.SelectivityEq(table, col)
}

// selRange returns the selectivity of a range predicate on a column,
// preferring the histogram (mirroring analyzeRanges' estimation for a
// single merged bound pair).
func (o *Optimizer) selRange(table, col string, lo, hi *datum.Datum, loInc, hiInc bool) float64 {
	if cs := o.env.Stats.Get(table, col); cs != nil && cs.Hist != nil {
		s := cs.Hist.SelectivityRange(lo, hi, loInc, hiInc)
		if s <= 0 {
			s = 0.5 / float64(maxI64(cs.Rows, 1))
		}
		return s
	}
	if lo != nil && hi != nil {
		return whatif.DefaultRangeSel / 2
	}
	return whatif.DefaultRangeSel
}

// rangeBounds aggregates the lows/highs on one column into bounds.
type rangeBounds struct {
	col          string
	lo, hi       *datum.Datum
	loInc, hiInc bool
	sel          float64
	exprs        []sql.Expr
	// loExpr/hiExpr are the predicates that supplied the chosen bounds
	// (literal provenance for plan-cache rebinding).
	loExpr, hiExpr sql.Expr
}

// analyzeRanges merges range predicates per column and estimates their
// selectivity.
func (o *Optimizer) analyzeRanges(bt *boundTable) map[string]*rangeBounds {
	out := map[string]*rangeBounds{}
	get := func(col string) *rangeBounds {
		key := strings.ToLower(col)
		rb, ok := out[key]
		if !ok {
			rb = &rangeBounds{col: col, sel: 1}
			out[key] = rb
		}
		return rb
	}
	for _, p := range bt.lows {
		rb := get(p.col)
		v := p.val
		inc := p.op == ">="
		if rb.lo == nil || v.Compare(*rb.lo) > 0 {
			rb.lo, rb.loInc = &v, inc
			rb.loExpr = p.expr
		}
		rb.exprs = append(rb.exprs, p.expr)
	}
	for _, p := range bt.highs {
		rb := get(p.col)
		v := p.val
		inc := p.op == "<="
		if rb.hi == nil || v.Compare(*rb.hi) < 0 {
			rb.hi, rb.hiInc = &v, inc
			rb.hiExpr = p.expr
		}
		rb.exprs = append(rb.exprs, p.expr)
	}
	for _, rb := range out {
		if cs := o.env.Stats.Get(bt.ref.Table, rb.col); cs != nil && cs.Hist != nil {
			rb.sel = cs.Hist.SelectivityRange(rb.lo, rb.hi, rb.loInc, rb.hiInc)
			if rb.sel <= 0 {
				rb.sel = 0.5 / float64(maxI64(cs.Rows, 1))
			}
		} else {
			rb.sel = whatif.DefaultRangeSel
			if rb.lo != nil && rb.hi != nil {
				rb.sel = whatif.DefaultRangeSel / 2
			}
		}
	}
	return out
}

// tableSel returns the combined selectivity of all of the table's
// predicates, and per-piece info for access planning.
func (o *Optimizer) tableSel(bt *boundTable, ranges map[string]*rangeBounds) float64 {
	sel := 1.0
	for _, p := range bt.eqs {
		sel *= o.selEq(bt.ref.Table, p.col, p.val)
	}
	for _, rb := range ranges {
		sel *= rb.sel
	}
	// Residuals: a flat guess each.
	for range bt.resid {
		sel *= 0.5
	}
	if sel < 0 {
		sel = 0
	}
	return sel
}

// allPreds returns every single-table predicate expression of bt.
func allPreds(bt *boundTable) []sql.Expr {
	var out []sql.Expr
	for _, p := range bt.eqs {
		out = append(out, p.expr)
	}
	for _, p := range bt.lows {
		out = append(out, p.expr)
	}
	for _, p := range bt.highs {
		out = append(out, p.expr)
	}
	out = append(out, bt.resid...)
	return out
}

// chooseAccess picks the cheapest access path for a table and captures
// the scan/seek requests.
func (o *Optimizer) chooseAccess(bt *boundTable, sortCols []string) *accessPath {
	table := bt.ref.Table
	alias := bt.name()
	rows := o.env.TableRows(table)
	pages := o.env.TablePages(table)
	ranges := o.analyzeRanges(bt)
	outSel := o.tableSel(bt, ranges)
	outRows := rows * outSel
	if outRows < 1 && rows > 0 {
		outRows = 1
	}
	npreds := len(allPreds(bt))

	// Baseline: heap scan.
	best := &accessPath{
		cost: o.env.Model.HeapScan(pages, rows, npreds),
		rows: outRows,
	}
	scan := &plan.SeqScan{Table: table, Alias: alias, Preds: allPreds(bt)}
	scan.Out = plan.TableSchema(bt.tbl, alias)
	scan.Cost = best.cost
	scan.Rows = outRows
	best.node = scan
	bestIndexID := ""

	// Index alternatives. The primary participates too: it can seek on
	// its key prefix (a full primary scan is the SeqScan baseline).
	for _, pi := range o.env.Mgr.TableIndexes(table) {
		ix := pi.Def
		if !o.env.Available(ix) {
			continue
		}
		cand, candCost := o.indexAccess(bt, ix, ranges, outRows, npreds)
		if cand != nil && candCost < best.cost {
			best.node = cand
			best.cost = candCost
			bestIndexID = ix.ID()
			best.order = orderFrom(cand)
		}
	}

	// Charge a sort if an order is required and not produced. (The caller
	// decides whether to place a Sort node; this keeps the access cost
	// comparable across alternatives.)

	// Capture requests (Section 2.1). Scan request: required columns in
	// no particular order.
	scanReq := &whatif.Request{
		Table:          table,
		Kind:           whatif.KindScan,
		Required:       append([]string(nil), bt.required...),
		SortCols:       append([]string(nil), sortCols...),
		Bindings:       1,
		RowsPerBinding: outRows,
		ResidualPreds:  npreds,
		TableRows:      rows,
		TablePages:     pages,
		CurrentCost:    best.cost,
		CurrentIndexID: bestIndexID,
		Implemented:    bestIndexID == "" || true,
	}
	best.requests = append(best.requests, scanReq)

	// Seek request when sargable predicates exist.
	if len(bt.eqs) > 0 || len(ranges) > 0 {
		seekReq := &whatif.Request{
			Table:          table,
			Kind:           whatif.KindSeek,
			Required:       append([]string(nil), bt.required...),
			SortCols:       append([]string(nil), sortCols...),
			Bindings:       1,
			RowsPerBinding: outRows,
			TableRows:      rows,
			TablePages:     pages,
			CurrentCost:    best.cost,
			CurrentIndexID: bestIndexID,
		}
		seen := map[string]bool{}
		for _, p := range bt.eqs {
			key := strings.ToLower(p.col)
			if seen[key] {
				continue
			}
			seen[key] = true
			seekReq.EqCols = append(seekReq.EqCols, p.col)
			seekReq.EqSels = append(seekReq.EqSels, o.selEq(table, p.col, p.val))
		}
		// Pick the most selective range column not already equality-bound.
		var bestRB *rangeBounds
		for _, rb := range ranges {
			if seen[strings.ToLower(rb.col)] {
				continue
			}
			if bestRB == nil || rb.sel < bestRB.sel {
				bestRB = rb
			}
		}
		if bestRB != nil {
			seekReq.RangeCol = bestRB.col
			seekReq.RangeSel = bestRB.sel
		}
		seekReq.ResidualPreds = npreds - len(seekReq.EqCols)
		if seekReq.RangeCol != "" {
			seekReq.ResidualPreds -= len(bestRB.exprs)
			if seekReq.ResidualPreds < 0 {
				seekReq.ResidualPreds = 0
			}
		}
		best.requests = append(best.requests, seekReq)
	}
	return best
}

// indexAccess builds the best plan node using ix for this table, or nil.
func (o *Optimizer) indexAccess(bt *boundTable, ix *catalog.Index, ranges map[string]*rangeBounds, outRows float64, npreds int) (plan.Node, float64) {
	table := bt.ref.Table
	alias := bt.name()
	rows := o.env.TableRows(table)
	tablePages := o.env.TablePages(table)
	ixPages := o.env.IndexPages(ix)

	// Consume leading equality columns in index order.
	var eqVals []datum.Datum
	var eqLits []*sql.Literal
	consumed := map[string]bool{}
	sel := 1.0
	pos := 0
	for ; pos < len(ix.Columns); pos++ {
		col := ix.Columns[pos]
		p := findEq(bt.eqs, col)
		if p == nil {
			break
		}
		eqVals = append(eqVals, p.val)
		eqLits = append(eqLits, litOf(p.expr))
		consumed[strings.ToLower(col)] = true
		sel *= o.selEq(table, col, p.val)
	}
	// Range on the next column.
	var rb *rangeBounds
	if pos < len(ix.Columns) {
		if r, ok := ranges[strings.ToLower(ix.Columns[pos])]; ok {
			rb = r
			sel *= rb.sel
			consumed[strings.ToLower(rb.col)] = true
		}
	}

	covering := ix.ContainsColumns(bt.required)
	m := o.env.Model

	if len(eqVals) == 0 && rb == nil {
		// Pure scan of the index: only useful when covering and narrower
		// than the heap. A primary scan IS the SeqScan baseline.
		if !covering || ix.Primary {
			return nil, 0
		}
		c := m.IndexScan(ixPages, rows, npreds)
		n := &plan.IndexScan{Index: ix, Alias: alias, Preds: allPreds(bt)}
		n.Out = plan.IndexSchema(ix, alias)
		n.Cost = c
		n.Rows = outRows
		return n, c
	}

	matchRows := rows * sel
	matchPages := ixPages * sel
	if matchPages < 1 {
		matchPages = 1
	}
	c := m.IndexSeek(ixPages, matchPages, matchRows)
	if !covering {
		c += m.RIDLookups(matchRows, tablePages)
	}
	// Residual predicates (not consumed by the seek).
	var resid []sql.Expr
	for _, p := range bt.eqs {
		if !consumed[strings.ToLower(p.col)] {
			resid = append(resid, p.expr)
		}
	}
	for _, p := range bt.lows {
		if rb == nil || !strings.EqualFold(p.col, rb.col) {
			resid = append(resid, p.expr)
		}
	}
	for _, p := range bt.highs {
		if rb == nil || !strings.EqualFold(p.col, rb.col) {
			resid = append(resid, p.expr)
		}
	}
	resid = append(resid, bt.resid...)
	c += matchRows * float64(len(resid)) * m.CPUPred

	n := &plan.IndexSeek{Index: ix, Alias: alias, EqVals: eqVals, EqLits: eqLits, Fetch: !covering && !ix.Primary, Preds: resid}
	if rb != nil {
		n.Lo, n.Hi, n.LoInc, n.HiInc = rb.lo, rb.hi, rb.loInc, rb.hiInc
		if rb.lo != nil {
			n.LoLit = litOf(rb.loExpr)
		}
		if rb.hi != nil {
			n.HiLit = litOf(rb.hiExpr)
		}
	}
	if covering && !ix.Primary {
		n.Out = plan.IndexSchema(ix, alias)
	} else {
		// Primary seeks (and non-covering fetches) produce full table rows.
		n.Out = plan.TableSchema(bt.tbl, alias)
	}
	n.Cost = c
	n.Rows = outRows
	return n, c
}

// orderFrom reports the column order a node's output is sorted by.
func orderFrom(n plan.Node) []string {
	switch x := n.(type) {
	case *plan.IndexScan:
		return x.Index.Columns
	case *plan.IndexSeek:
		if len(x.EqVals) < len(x.Index.Columns) {
			return x.Index.Columns[len(x.EqVals):]
		}
	}
	return nil
}

// litOf extracts the literal of a `column OP literal` predicate (either
// operand order), or nil when the expression has no single source
// literal.
func litOf(e sql.Expr) *sql.Literal {
	if be, ok := e.(*sql.BinaryExpr); ok {
		if _, lit, _ := colLit(be); lit != nil {
			return lit
		}
	}
	return nil
}

func findEq(eqs []sargPred, col string) *sargPred {
	for i := range eqs {
		if strings.EqualFold(eqs[i].col, col) {
			return &eqs[i]
		}
	}
	return nil
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
