package optimizer

import (
	"fmt"
	"strings"
	"testing"

	"onlinetuner/internal/catalog"
	"onlinetuner/internal/datum"
	"onlinetuner/internal/plan"
	"onlinetuner/internal/sql"
	"onlinetuner/internal/stats"
	"onlinetuner/internal/storage"
	"onlinetuner/internal/whatif"
)

// testEnv builds R(id,a,b,c) and S(id,x,y) with data and statistics.
func testEnv(t testing.TB, rows int) (*whatif.Env, *Optimizer) {
	t.Helper()
	cat := catalog.New()
	r, err := catalog.NewTable("R", []catalog.Column{
		{Name: "id", Kind: datum.KInt}, {Name: "a", Kind: datum.KInt},
		{Name: "b", Kind: datum.KInt}, {Name: "c", Kind: datum.KInt},
	}, []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	s, err := catalog.NewTable("S", []catalog.Column{
		{Name: "id", Kind: datum.KInt}, {Name: "x", Kind: datum.KInt},
		{Name: "y", Kind: datum.KInt},
	}, []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.AddTable(r); err != nil {
		t.Fatal(err)
	}
	if err := cat.AddTable(s); err != nil {
		t.Fatal(err)
	}
	mgr := storage.NewManager(cat)
	for _, name := range []string{"R", "S"} {
		if err := mgr.CreateTable(name); err != nil {
			t.Fatal(err)
		}
	}
	st := stats.NewStore()
	var idVals, aVals, xVals []datum.Datum
	for i := 0; i < rows; i++ {
		rr := datum.Row{datum.NewInt(int64(i)), datum.NewInt(int64(i % 100)),
			datum.NewInt(int64(i % 7)), datum.NewInt(int64(i))}
		if _, _, err := mgr.Insert("R", rr); err != nil {
			t.Fatal(err)
		}
		idVals = append(idVals, rr[0])
		aVals = append(aVals, rr[1])
		sr := datum.Row{datum.NewInt(int64(i)), datum.NewInt(int64(i % 100)), datum.NewInt(int64(i % 5))}
		if _, _, err := mgr.Insert("S", sr); err != nil {
			t.Fatal(err)
		}
		xVals = append(xVals, sr[1])
	}
	st.BuildColumn("R", "id", idVals, 32)
	st.BuildColumn("R", "a", aVals, 32)
	st.BuildColumn("S", "id", idVals, 32)
	st.BuildColumn("S", "x", xVals, 32)
	env := whatif.NewEnv(cat, st, mgr)
	return env, New(env)
}

func parse(t testing.TB, q string) sql.Statement {
	t.Helper()
	stmt, err := sql.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	return stmt
}

func TestBindClassification(t *testing.T) {
	env, _ := testEnv(t, 100)
	sel := parse(t, "SELECT R.b FROM R, S WHERE R.a = 5 AND R.id = S.x AND R.b + 1 > S.y").(*sql.Select)
	bq, err := bind(env.Cat, sel)
	if err != nil {
		t.Fatal(err)
	}
	if len(bq.tables) != 2 {
		t.Fatalf("tables = %d", len(bq.tables))
	}
	rt := bq.tables[0]
	if len(rt.eqs) != 1 || rt.eqs[0].col != "a" {
		t.Errorf("eq preds = %+v", rt.eqs)
	}
	if len(bq.joins) != 1 || bq.joins[0].lc != "id" || bq.joins[0].rc != "x" {
		t.Errorf("joins = %+v", bq.joins)
	}
	if len(bq.resid) != 1 {
		t.Errorf("multi-table residuals = %d", len(bq.resid))
	}
	// Required columns captured.
	if !containsStr(rt.required, "b") || !containsStr(rt.required, "a") || !containsStr(rt.required, "id") {
		t.Errorf("required = %v", rt.required)
	}
}

func containsStr(ss []string, s string) bool {
	for _, x := range ss {
		if strings.EqualFold(x, s) {
			return true
		}
	}
	return false
}

func TestBindErrors(t *testing.T) {
	env, _ := testEnv(t, 10)
	bad := []string{
		"SELECT z FROM R",
		"SELECT a FROM NoTable",
		"SELECT id FROM R, S",        // ambiguous id
		"SELECT R.a FROM R r1, R r1", // duplicate alias
		"SELECT a FROM R ORDER BY nothere",
	}
	for _, q := range bad {
		stmt := parse(t, q)
		if _, err := bind(env.Cat, stmt.(*sql.Select)); err == nil {
			t.Errorf("bind(%q) should fail", q)
		}
	}
}

func TestAccessPathPrefersCoveringIndex(t *testing.T) {
	env, o := testEnv(t, 5000)
	ix := &catalog.Index{Name: "Ra", Table: "R", Columns: []string{"a", "b", "id"}}
	if err := env.Cat.AddIndex(ix); err != nil {
		t.Fatal(err)
	}
	if _, err := env.Mgr.BuildIndex(ix); err != nil {
		t.Fatal(err)
	}
	res, err := o.Optimize(parse(t, "SELECT b, id FROM R WHERE a = 17"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.Explain(res.Plan), "IndexSeek Ra") {
		t.Errorf("plan should use Ra:\n%s", plan.Explain(res.Plan))
	}
}

func TestAccessPathPrimarySeek(t *testing.T) {
	_, o := testEnv(t, 5000)
	res, err := o.Optimize(parse(t, "SELECT a FROM R WHERE id = 99"))
	if err != nil {
		t.Fatal(err)
	}
	expl := plan.Explain(res.Plan)
	if !strings.Contains(expl, "IndexSeek R_pk") {
		t.Errorf("primary-key point query should seek the primary:\n%s", expl)
	}
	// And it should be far cheaper than the scan.
	scan, err := o.Optimize(parse(t, "SELECT a FROM R WHERE b = 3"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost >= scan.Cost {
		t.Errorf("pk seek (%g) should beat scan (%g)", res.Cost, scan.Cost)
	}
}

func TestJoinStrategySwitchesWithIndex(t *testing.T) {
	env, o := testEnv(t, 4000)
	q := "SELECT R.b FROM R, S WHERE R.a = S.x AND R.id = 7"
	res, err := o.Optimize(parse(t, q))
	if err != nil {
		t.Fatal(err)
	}
	before := plan.Explain(res.Plan)
	ix := &catalog.Index{Name: "Sx", Table: "S", Columns: []string{"x", "y", "id"}}
	if err := env.Cat.AddIndex(ix); err != nil {
		t.Fatal(err)
	}
	if _, err := env.Mgr.BuildIndex(ix); err != nil {
		t.Fatal(err)
	}
	res2, err := o.Optimize(parse(t, q))
	if err != nil {
		t.Fatal(err)
	}
	after := plan.Explain(res2.Plan)
	if !strings.Contains(after, "INLJoin") {
		t.Errorf("selective outer + indexed inner should pick INLJ:\nbefore:\n%s\nafter:\n%s", before, after)
	}
	if res2.Cost >= res.Cost {
		t.Errorf("index did not reduce join cost: %g -> %g", res.Cost, res2.Cost)
	}
}

func TestSortAvoidanceWithIndexOrder(t *testing.T) {
	env, o := testEnv(t, 3000)
	ix := &catalog.Index{Name: "Rab", Table: "R", Columns: []string{"a", "b", "id"}}
	if err := env.Cat.AddIndex(ix); err != nil {
		t.Fatal(err)
	}
	if _, err := env.Mgr.BuildIndex(ix); err != nil {
		t.Fatal(err)
	}
	// Equality on a pins the prefix: ORDER BY b is free.
	res, err := o.Optimize(parse(t, "SELECT b, id FROM R WHERE a = 5 ORDER BY b"))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plan.Explain(res.Plan), "Sort") {
		t.Errorf("sort should be avoided:\n%s", plan.Explain(res.Plan))
	}
	// ORDER BY id is not satisfied by (a,b,id) after eq on a.
	res2, err := o.Optimize(parse(t, "SELECT b, id FROM R WHERE a = 5 ORDER BY id"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.Explain(res2.Plan), "Sort") {
		t.Errorf("sort should be required:\n%s", plan.Explain(res2.Plan))
	}
}

func TestCardinalityEstimates(t *testing.T) {
	_, o := testEnv(t, 10000)
	res, err := o.Optimize(parse(t, "SELECT id FROM R WHERE a = 5"))
	if err != nil {
		t.Fatal(err)
	}
	// a = i%100 → 1% selectivity → ~100 rows.
	if res.Rows < 50 || res.Rows > 200 {
		t.Errorf("estimated rows = %g, want ≈ 100", res.Rows)
	}
	res2, err := o.Optimize(parse(t, "SELECT id FROM R WHERE a < 50"))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Rows < 3000 || res2.Rows > 7000 {
		t.Errorf("range rows = %g, want ≈ 5000", res2.Rows)
	}
}

func TestDMLPlans(t *testing.T) {
	_, o := testEnv(t, 500)
	ins, err := o.Optimize(parse(t, "INSERT INTO R VALUES (10000, 1, 2, 3)"))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ins.Plan.(*plan.InsertNode); !ok {
		t.Errorf("insert plan = %T", ins.Plan)
	}
	var up *whatif.Request
	for _, r := range ins.Requests() {
		if r.Kind == whatif.KindUpdate {
			up = r
		}
	}
	if up == nil || up.UpdateRows != 1 {
		t.Errorf("update request = %+v", up)
	}
	del, err := o.Optimize(parse(t, "DELETE FROM R WHERE a = 5"))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := del.Plan.(*plan.DeleteNode); !ok {
		t.Errorf("delete plan = %T", del.Plan)
	}
	// Location requests captured for the WHERE side.
	hasSeek := false
	for _, r := range del.Requests() {
		if r.Kind == whatif.KindSeek {
			hasSeek = true
		}
	}
	if !hasSeek {
		t.Error("delete should capture a location seek request")
	}
	if _, err := o.Optimize(parse(t, "UPDATE R SET nope = 1")); err == nil {
		t.Error("unknown SET column accepted")
	}
	if _, err := o.Optimize(parse(t, "INSERT INTO R VALUES (1, 2)")); err == nil {
		t.Error("arity mismatch accepted")
	}
}

func TestINLJRequestBindings(t *testing.T) {
	_, o := testEnv(t, 4000)
	res, err := o.Optimize(parse(t, "SELECT S.y FROM R, S WHERE R.a = S.x AND R.b = 3"))
	if err != nil {
		t.Fatal(err)
	}
	var inlj *whatif.Request
	for _, r := range res.Requests() {
		if r.Kind == whatif.KindSeek && r.Bindings > 1 {
			inlj = r
		}
	}
	if inlj == nil {
		t.Fatal("INLJ request not captured")
	}
	if inlj.Table != "S" && inlj.Table != "R" {
		t.Errorf("inlj table = %s", inlj.Table)
	}
	if len(inlj.EqCols) == 0 {
		t.Error("inlj eq columns missing")
	}
}

func TestFlipOpAndConjuncts(t *testing.T) {
	for _, tc := range [][2]string{{"<", ">"}, {"<=", ">="}, {">", "<"}, {">=", "<="}, {"=", "="}} {
		if got := flipOp(tc[0]); got != tc[1] {
			t.Errorf("flipOp(%s) = %s", tc[0], got)
		}
	}
	e := parse(t, "SELECT a FROM R WHERE a = 1 AND b = 2 AND c = 3").(*sql.Select).Where
	if got := len(splitConjuncts(e)); got != 3 {
		t.Errorf("conjuncts = %d", got)
	}
	if splitConjuncts(nil) != nil {
		t.Error("nil conjuncts")
	}
}

func TestLiteralFlipSide(t *testing.T) {
	env, _ := testEnv(t, 100)
	sel := parse(t, "SELECT id FROM R WHERE 5 = a AND 10 > b").(*sql.Select)
	bq, err := bind(env.Cat, sel)
	if err != nil {
		t.Fatal(err)
	}
	rt := bq.tables[0]
	if len(rt.eqs) != 1 || rt.eqs[0].col != "a" {
		t.Errorf("flipped eq = %+v", rt.eqs)
	}
	if len(rt.highs) != 1 || rt.highs[0].col != "b" || rt.highs[0].op != "<" {
		t.Errorf("flipped range = %+v", rt.highs)
	}
}

func TestGroupByEstimate(t *testing.T) {
	_, o := testEnv(t, 2000)
	res, err := o.Optimize(parse(t, "SELECT b, COUNT(*) FROM R GROUP BY b"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows > 2000 {
		t.Errorf("group estimate %g exceeds input", res.Rows)
	}
	if _, ok := res.Plan.(*plan.HashAgg); !ok {
		t.Errorf("plan = %T, want HashAgg on top", res.Plan)
	}
}

func TestExplainStable(t *testing.T) {
	_, o := testEnv(t, 100)
	// Default rules: ORDER BY + LIMIT becomes a bounded-heap TopN.
	res, err := o.Optimize(parse(t, "SELECT a FROM R WHERE a < 10 ORDER BY b LIMIT 3"))
	if err != nil {
		t.Fatal(err)
	}
	expl := plan.Explain(res.Plan)
	for _, want := range []string{"TopN 3", "Project"} {
		if !strings.Contains(expl, want) {
			t.Errorf("explain missing %s:\n%s", want, expl)
		}
	}

	// Rules off: the classical Sort + Limit shape.
	o.SetRules(0)
	defer o.SetRules(DefaultRules)
	res, err = o.Optimize(parse(t, "SELECT a FROM R WHERE a < 10 ORDER BY b LIMIT 3"))
	if err != nil {
		t.Fatal(err)
	}
	expl = plan.Explain(res.Plan)
	for _, want := range []string{"Limit 3", "Project", "Sort"} {
		if !strings.Contains(expl, want) {
			t.Errorf("explain missing %s:\n%s", want, expl)
		}
	}
}

func TestManyTablesGreedyJoin(t *testing.T) {
	env, o := testEnv(t, 300)
	// Add a third table to exercise multi-step greedy enumeration.
	tbl, err := catalog.NewTable("T3", []catalog.Column{
		{Name: "id", Kind: datum.KInt}, {Name: "r", Kind: datum.KInt},
	}, []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	if err := env.Cat.AddTable(tbl); err != nil {
		t.Fatal(err)
	}
	if err := env.Mgr.CreateTable("T3"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, _, err := env.Mgr.Insert("T3", datum.Row{datum.NewInt(int64(i)), datum.NewInt(int64(i % 10))}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := o.Optimize(parse(t,
		"SELECT R.b FROM R, S, T3 WHERE R.a = S.x AND S.y = T3.r AND T3.id = 5"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost <= 0 {
		t.Error("no cost")
	}
	// The request tree must have OR groups for all three tables.
	if groups := res.Tree.ORGroups(); len(groups) < 3 {
		t.Errorf("or groups = %d, want ≥ 3", len(groups))
	}
	_ = fmt.Sprintf
}
