package optimizer

import (
	"math"

	"onlinetuner/internal/datum"
	"onlinetuner/internal/plan"
	"onlinetuner/internal/sql"
)

// Rebind produces a Result for a statement that fingerprints to the same
// template as a cached one, by substituting the new literal bindings
// into a clone of the cached plan — generic-plan reuse, the "rebound"
// tier of the engine's plan cache.
//
// lits are the cached statement's literals in fingerprint (traversal)
// order; vals are the new statement's bindings in the same order. The
// cached plan shares its expression nodes with the cached statement's
// AST, so a literal's slot is found by pointer identity.
//
// Only plans marked Generic are eligible (see genericPreds): for those,
// swapping literal values cannot change which predicates the plan
// evaluates, so the rebound plan returns exactly the rows a fresh
// optimization would — though possibly via a different access path than
// the fresh optimizer would now pick, the usual generic-plan trade.
// Seek nodes are re-costed cheaply by scaling with the selectivity
// ratio of the new bounds over the old; interior estimates keep their
// template values.
//
// Returns (nil, false) when the plan contains a node that cannot be
// rebound (INSERT literal rows, unknown operators) — the caller then
// falls back to a fresh optimization.
func (o *Optimizer) Rebind(res *Result, lits []*sql.Literal, vals []datum.Datum) (*Result, bool) {
	if res == nil || !res.Generic || len(lits) != len(vals) {
		return nil, false
	}
	rb := &rebinder{o: o, slot: make(map[*sql.Literal]int, len(lits)), vals: vals}
	for i, l := range lits {
		rb.slot[l] = i
	}
	node, ok := rb.node(res.Plan)
	if !ok {
		return nil, false
	}
	return &Result{
		Plan:      node,
		Tree:      res.Tree,
		Cost:      math.Max(0, res.Cost+rb.costDelta),
		Rows:      res.Rows,
		Generic:   true,
		FromCache: true,
		Rebound:   true,
	}, true
}

type rebinder struct {
	o    *Optimizer
	slot map[*sql.Literal]int
	vals []datum.Datum
	// costDelta accumulates the re-costing adjustments of the seek
	// leaves, applied to the Result's total.
	costDelta float64
}

// expr clones an expression substituting the new binding for every
// statement literal (non-statement literals and column refs are shared).
func (rb *rebinder) expr(e sql.Expr) sql.Expr {
	return sql.MapLiterals(e, func(l *sql.Literal) sql.Expr {
		if i, ok := rb.slot[l]; ok {
			return &sql.Literal{Value: rb.vals[i]}
		}
		return l
	})
}

func (rb *rebinder) exprs(es []sql.Expr) []sql.Expr {
	if len(es) == 0 {
		return es
	}
	out := make([]sql.Expr, len(es))
	for i, e := range es {
		out[i] = rb.expr(e)
	}
	return out
}

// val returns the new binding for a provenance literal, or the cached
// value when the bound has no single-literal source.
func (rb *rebinder) val(l *sql.Literal, cached datum.Datum) datum.Datum {
	if l != nil {
		if i, ok := rb.slot[l]; ok {
			return rb.vals[i]
		}
	}
	return cached
}

// node deep-clones a plan subtree with literals substituted. ok=false
// means the subtree contains an operator that cannot be rebound.
func (rb *rebinder) node(n plan.Node) (plan.Node, bool) {
	switch x := n.(type) {
	case *plan.SeqScan:
		c := *x
		c.Preds = rb.exprs(x.Preds)
		return &c, true
	case *plan.IndexScan:
		c := *x
		c.Preds = rb.exprs(x.Preds)
		return &c, true
	case *plan.IndexSeek:
		return rb.seek(x)
	case *plan.Filter:
		ch, ok := rb.node(x.Child)
		if !ok {
			return nil, false
		}
		c := *x
		c.Child = ch
		c.Preds = rb.exprs(x.Preds)
		return &c, true
	case *plan.Project:
		ch, ok := rb.node(x.Child)
		if !ok {
			return nil, false
		}
		c := *x
		c.Child = ch
		c.Exprs = rb.exprs(x.Exprs)
		return &c, true
	case *plan.Sort:
		ch, ok := rb.node(x.Child)
		if !ok {
			return nil, false
		}
		c := *x
		c.Child = ch
		keys := make([]plan.SortKey, len(x.Keys))
		for i, k := range x.Keys {
			keys[i] = plan.SortKey{Expr: rb.expr(k.Expr), Desc: k.Desc}
		}
		c.Keys = keys
		return &c, true
	case *plan.Limit:
		ch, ok := rb.node(x.Child)
		if !ok {
			return nil, false
		}
		c := *x
		c.Child = ch
		return &c, true
	case *plan.TopN:
		ch, ok := rb.node(x.Child)
		if !ok {
			return nil, false
		}
		c := *x
		c.Child = ch
		keys := make([]plan.SortKey, len(x.Keys))
		for i, k := range x.Keys {
			keys[i] = plan.SortKey{Expr: rb.expr(k.Expr), Desc: k.Desc}
		}
		c.Keys = keys
		return &c, true
	case *plan.IndexEndpoint:
		// Endpoint cost is two bounded seeks regardless of the equality
		// bindings, so only the bound values need substitution.
		if len(x.EqLits) != len(x.EqVals) {
			return nil, false
		}
		c := *x
		eq := make([]datum.Datum, len(x.EqVals))
		for i, old := range x.EqVals {
			eq[i] = rb.val(x.EqLits[i], old)
		}
		c.EqVals = eq
		return &c, true
	case *plan.HashSemiJoin:
		l, ok := rb.node(x.Left)
		if !ok {
			return nil, false
		}
		r, ok := rb.node(x.Right)
		if !ok {
			return nil, false
		}
		c := *x
		c.Left, c.Right = l, r
		c.LeftKeys = rb.exprs(x.LeftKeys)
		c.RightKeys = rb.exprs(x.RightKeys)
		return &c, true
	case *plan.Distinct:
		ch, ok := rb.node(x.Child)
		if !ok {
			return nil, false
		}
		c := *x
		c.Child = ch
		return &c, true
	case *plan.HashAgg:
		ch, ok := rb.node(x.Child)
		if !ok {
			return nil, false
		}
		c := *x
		c.Child = ch
		c.GroupBy = rb.exprs(x.GroupBy)
		aggs := make([]plan.AggSpec, len(x.Aggs))
		for i, a := range x.Aggs {
			aggs[i] = a
			if a.Arg != nil {
				aggs[i].Arg = rb.expr(a.Arg)
			}
		}
		c.Aggs = aggs
		return &c, true
	case *plan.HashJoin:
		l, ok := rb.node(x.Left)
		if !ok {
			return nil, false
		}
		r, ok := rb.node(x.Right)
		if !ok {
			return nil, false
		}
		c := *x
		c.Left, c.Right = l, r
		c.LeftKeys = rb.exprs(x.LeftKeys)
		c.RightKeys = rb.exprs(x.RightKeys)
		return &c, true
	case *plan.MergeJoin:
		l, ok := rb.node(x.Left)
		if !ok {
			return nil, false
		}
		r, ok := rb.node(x.Right)
		if !ok {
			return nil, false
		}
		c := *x
		c.Left, c.Right = l, r
		c.LeftKeys = rb.exprs(x.LeftKeys)
		c.RightKeys = rb.exprs(x.RightKeys)
		return &c, true
	case *plan.CrossJoin:
		l, ok := rb.node(x.Left)
		if !ok {
			return nil, false
		}
		r, ok := rb.node(x.Right)
		if !ok {
			return nil, false
		}
		c := *x
		c.Left, c.Right = l, r
		return &c, true
	case *plan.INLJoin:
		outer, ok := rb.node(x.Outer)
		if !ok {
			return nil, false
		}
		c := *x
		c.Outer = outer
		c.OuterKeys = rb.exprs(x.OuterKeys)
		c.Preds = rb.exprs(x.Preds)
		return &c, true
	case *plan.UpdateNode:
		c := *x
		set := make([]sql.Assignment, len(x.Set))
		for i, a := range x.Set {
			set[i] = a
			set[i].Value = rb.expr(a.Value)
		}
		c.Set = set
		c.Where = rb.exprs(x.Where)
		return &c, true
	case *plan.DeleteNode:
		c := *x
		c.Where = rb.exprs(x.Where)
		return &c, true
	}
	// InsertNode (pre-evaluated literal rows) and anything unrecognized.
	return nil, false
}

// seek rebinds an IndexSeek's bound values through their literal
// provenance and re-costs the node by the selectivity ratio of the new
// bounds over the cached ones.
func (rb *rebinder) seek(x *plan.IndexSeek) (plan.Node, bool) {
	c := *x
	c.Preds = rb.exprs(x.Preds)
	table := x.Index.Table
	oldSel, newSel := 1.0, 1.0

	if len(x.EqVals) > 0 {
		if len(x.EqLits) != len(x.EqVals) {
			return nil, false
		}
		eq := make([]datum.Datum, len(x.EqVals))
		for i, old := range x.EqVals {
			nv := rb.val(x.EqLits[i], old)
			eq[i] = nv
			col := x.Index.Columns[i]
			oldSel *= rb.o.selEq(table, col, old)
			newSel *= rb.o.selEq(table, col, nv)
		}
		c.EqVals = eq
	}
	if x.Lo != nil || x.Hi != nil {
		if x.Lo != nil {
			v := rb.val(x.LoLit, *x.Lo)
			c.Lo = &v
		}
		if x.Hi != nil {
			v := rb.val(x.HiLit, *x.Hi)
			c.Hi = &v
		}
		if len(x.EqVals) < len(x.Index.Columns) {
			col := x.Index.Columns[len(x.EqVals)]
			oldSel *= rb.o.selRange(table, col, x.Lo, x.Hi, x.LoInc, x.HiInc)
			newSel *= rb.o.selRange(table, col, c.Lo, c.Hi, x.LoInc, x.HiInc)
		}
	}

	if oldSel > 0 && newSel != oldSel {
		ratio := newSel / oldSel
		c.Cost = x.Cost * ratio
		c.Rows = math.Max(1, x.Rows*ratio)
		rb.costDelta += c.Cost - x.Cost
	}
	return &c, true
}
