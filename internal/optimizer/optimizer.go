package optimizer

import (
	"fmt"
	"math"
	"strings"
	"sync/atomic"

	"onlinetuner/internal/catalog"
	"onlinetuner/internal/datum"
	"onlinetuner/internal/plan"
	"onlinetuner/internal/sql"
	"onlinetuner/internal/whatif"
)

// Optimizer plans statements against the current physical configuration.
type Optimizer struct {
	env   *whatif.Env
	rules atomic.Uint32
}

// New returns an optimizer over the given what-if environment (catalog,
// statistics, storage and cost model). All rewrite rules start enabled.
func New(env *whatif.Env) *Optimizer {
	o := &Optimizer{env: env}
	o.rules.Store(uint32(DefaultRules))
	return o
}

// SetRules atomically swaps the rewrite-rule bitset.
func (o *Optimizer) SetRules(r Rules) { o.rules.Store(uint32(r)) }

// Rules returns the active rewrite-rule bitset.
func (o *Optimizer) Rules() Rules { return Rules(o.rules.Load()) }

// Result is an optimized statement: the physical plan, its estimated
// cost/cardinality, and the AND/OR request tree captured during
// optimization (Section 2.1).
type Result struct {
	Plan plan.Node
	Tree *whatif.Node
	Cost float64
	Rows float64

	// Generic marks a plan safe for literal re-substitution (Rebind): no
	// table column carries more than one lower or one upper range bound,
	// so the plan's seek bounds and residual predicates came from exactly
	// one literal each and swapping literals cannot change which
	// predicates the plan evaluates.
	Generic bool
	// FromCache/Rebound annotate results served by the engine's plan
	// cache: FromCache means the optimizer was skipped entirely; Rebound
	// additionally means new literals were substituted into the cached
	// plan (generic-plan reuse) rather than matching exactly.
	FromCache bool
	Rebound   bool

	// RulesApplied lists the canonical names of the rewrite rules that
	// actually fired on this plan, in canonical bit order (EXPLAIN
	// provenance: "-- rule: <name>").
	RulesApplied []string
}

// Requests returns all requests in the result's tree.
func (r *Result) Requests() []*whatif.Request { return r.Tree.Requests() }

// Optimize plans any supported statement.
func (o *Optimizer) Optimize(stmt sql.Statement) (*Result, error) {
	switch s := stmt.(type) {
	case *sql.Select:
		return o.planSelect(s)
	case *sql.Insert:
		return o.planInsert(s)
	case *sql.Update:
		return o.planUpdate(s)
	case *sql.Delete:
		return o.planDelete(s)
	}
	return nil, fmt.Errorf("optimizer: unsupported statement %T", stmt)
}

// joinState tracks the greedy join enumeration.
type joinState struct {
	node   plan.Node
	cost   float64
	rows   float64
	joined map[int]bool
	order  []plan.ColRef // current output order
}

func (o *Optimizer) planSelect(sel *sql.Select) (*Result, error) {
	rules := o.Rules()
	applied := map[string]bool{}

	// Subquery conjuncts (IN/EXISTS and negations) are split off before
	// binding: the outer query binds without them and each becomes a hash
	// semi-join on top of the join tree. Unnesting itself is unconditional
	// — it is the only way this engine executes subqueries — while the
	// RuleUnnest bit gates only the inner side's index-aware access path
	// and its request capture.
	outerSel, subqs := stripSubqueries(sel)
	if err := rejectSubqueries(outerSel); err != nil {
		return nil, err
	}
	sel = outerSel

	bq, err := bind(o.env.Cat, sel)
	if err != nil {
		return nil, err
	}

	// Analyze subqueries up front: their outer probe/correlation columns
	// must be in the required sets before access paths are chosen, or a
	// covering index scan could omit them.
	semis := make([]*semiSpec, 0, len(subqs))
	for _, e := range subqs {
		sp, err := o.analyzeSubquery(bq, e)
		if err != nil {
			return nil, err
		}
		semis = append(semis, sp)
	}

	// Column-name sort hints for single-table queries feed the requests.
	var sortCols []string
	if len(bq.tables) == 1 && len(sel.GroupBy) == 0 {
		for _, oi := range sel.OrderBy {
			cr, ok := oi.Expr.(*sql.ColumnRef)
			if !ok || oi.Desc {
				sortCols = nil
				break
			}
			sortCols = append(sortCols, cr.Column)
		}
	}

	// Access paths for every table.
	paths := make([]*accessPath, len(bq.tables))
	for i, bt := range bq.tables {
		var sc []string
		if len(bq.tables) == 1 {
			sc = sortCols
		}
		paths[i] = o.chooseAccess(bt, sc)
	}

	// MIN/MAX endpoint rule: may replace the single-table access path and
	// captures the endpoint request whenever the shape matches (semi-joins
	// above would filter rows the endpoint seek never produced, so the
	// rule stands down when subqueries are present).
	if len(semis) == 0 {
		o.tryMinMaxEndpoint(bq, paths, rules, applied)
	}

	// Per-table OR groups of requests.
	orGroups := make([]*whatif.Node, len(bq.tables))
	for i, p := range paths {
		var leaves []*whatif.Node
		for _, r := range p.requests {
			leaves = append(leaves, whatif.NewLeaf(r))
		}
		orGroups[i] = whatif.NewOr(leaves...)
	}

	// Greedy left-deep join order: start from the cheapest access, then
	// repeatedly add the joinable table with the lowest incremental cost.
	st := &joinState{joined: map[int]bool{}}
	start := 0
	for i := 1; i < len(paths); i++ {
		if paths[i].cost+paths[i].rows < paths[start].cost+paths[start].rows {
			start = i
		}
	}
	st.node = paths[start].node
	st.cost = paths[start].cost
	st.rows = paths[start].rows
	st.joined[start] = true
	for _, c := range paths[start].order {
		st.order = append(st.order, plan.ColRef{Table: bq.tables[start].name(), Column: c})
	}

	for len(st.joined) < len(bq.tables) {
		bestIdx, bestJoin := -1, (*joinChoice)(nil)
		for j := range bq.tables {
			if st.joined[j] {
				continue
			}
			jc := o.joinChoiceFor(bq, st, j, paths[j])
			if bestJoin == nil || jc.cost < bestJoin.cost {
				bestIdx, bestJoin = j, jc
			}
		}
		if bestIdx < 0 {
			return nil, fmt.Errorf("optimizer: join enumeration stuck")
		}
		// Record the INLJ-alternative request for the joined table under
		// its OR group (the paper's ρ2).
		if bestJoin.inljRequest != nil {
			orGroups[bestIdx].Children = append(orGroups[bestIdx].Children, whatif.NewLeaf(bestJoin.inljRequest))
		}
		st.node = bestJoin.node
		st.cost = bestJoin.cost
		st.rows = bestJoin.rows
		st.order = bestJoin.order
		st.joined[bestIdx] = true
	}

	// Bushy join-order DP over small, order-safe join graphs. Runs after
	// the greedy loop so all greedy-captured requests (including INLJ
	// alternatives) are already in the tree.
	o.tryJoinDP(bq, paths, st, rules, applied)

	// Multi-table residual predicates.
	if len(bq.resid) > 0 {
		rows := st.rows * math.Pow(0.5, float64(len(bq.resid)))
		f := &plan.Filter{Child: st.node, Preds: bq.resid}
		f.Out = st.node.Schema()
		f.Cost = st.cost + st.rows*float64(len(bq.resid))*o.env.Model.CPUPred
		f.Rows = rows
		st.node = f
		st.cost = f.Cost
		st.rows = rows
	}

	// Semi-joins from unnested subqueries sit on top of the join tree:
	// they filter the probe stream in order, so their placement cannot
	// perturb the outer row order between rule settings.
	var extraGroups []*whatif.Node
	for _, sp := range semis {
		g := o.applySemiJoin(st, sp, rules, applied)
		if g != nil {
			extraGroups = append(extraGroups, g)
		}
	}

	// Column pruning below joins: inserts order-preserving narrowing
	// projections only, so row content and order are untouched.
	if rules.Has(RulePrune) && len(bq.tables) > 1 && !hasStar(sel) {
		o.pruneColumns(bq, st, semis, applied)
	}

	if err := o.finishSelect(bq, st, rules, applied); err != nil {
		return nil, err
	}

	var groups []*whatif.Node
	for _, g := range orGroups {
		groups = append(groups, g)
	}
	groups = append(groups, extraGroups...)
	tree := whatif.NewAnd(groups...)
	return &Result{
		Plan: st.node, Tree: tree, Cost: st.cost, Rows: st.rows,
		Generic:      genericPreds(bq) && len(semis) == 0,
		RulesApplied: appliedNames(applied),
	}, nil
}

// hasStar reports whether any select item is a star.
func hasStar(sel *sql.Select) bool {
	for _, it := range sel.Items {
		if it.Star {
			return true
		}
	}
	return false
}

// genericPreds reports whether the bound query's plan shape is
// independent of which literal values appear in its sargable
// predicates. With at most one lower and one upper bound per column,
// analyzeRanges never has to pick the tighter of two bounds by VALUE —
// so a plan built for one set of literals evaluates exactly the same
// predicate set for any other, and the plan cache may rebind it.
// (Duplicate equality predicates are fine: the first is always the one
// consumed by a seek, the rest stay residual, regardless of values.)
func genericPreds(bq *boundQuery) bool {
	for _, bt := range bq.tables {
		if dupCols(bt.lows) || dupCols(bt.highs) {
			return false
		}
	}
	return true
}

// dupCols reports whether two sargable predicates bind the same column.
func dupCols(ps []sargPred) bool {
	if len(ps) < 2 {
		return false
	}
	seen := map[string]bool{}
	for _, p := range ps {
		k := strings.ToLower(p.col)
		if seen[k] {
			return true
		}
		seen[k] = true
	}
	return false
}

// joinChoice is one evaluated way to join the next table.
type joinChoice struct {
	node        plan.Node
	cost        float64
	rows        float64
	order       []plan.ColRef
	inljRequest *whatif.Request
}

// distinctOf estimates a column's distinct count.
func (o *Optimizer) distinctOf(table, col string) float64 {
	if cs := o.env.Stats.Get(table, col); cs != nil && cs.Distinct > 0 {
		return float64(cs.Distinct)
	}
	return math.Max(1, math.Sqrt(o.env.TableRows(table)))
}

// joinChoiceFor evaluates hash join vs index-nested-loop join (vs cross
// join when no predicate connects) for adding table j to the current
// state, and captures the INLJ request.
func (o *Optimizer) joinChoiceFor(bq *boundQuery, st *joinState, j int, path *accessPath) *joinChoice {
	bt := bq.tables[j]
	m := o.env.Model

	// Collect join predicates connecting the joined set to j.
	var outerKeys, innerKeys []sql.Expr
	var innerCols []string
	jsel := 1.0
	for _, jp := range bq.joins {
		var oi, oc, ic string
		switch {
		case st.joined[jp.lt] && jp.rt == j:
			oi, oc, ic = bq.tables[jp.lt].name(), jp.lc, jp.rc
		case st.joined[jp.rt] && jp.lt == j:
			oi, oc, ic = bq.tables[jp.rt].name(), jp.rc, jp.lc
		default:
			continue
		}
		outerKeys = append(outerKeys, &sql.ColumnRef{Table: oi, Column: oc})
		innerKeys = append(innerKeys, &sql.ColumnRef{Table: bt.name(), Column: ic})
		innerCols = append(innerCols, ic)
		jsel *= 1 / math.Max(1, math.Max(o.distinctOf(bt.ref.Table, ic), o.distinctOf(bq.tables[indexOfOther(bq, jp, j)].ref.Table, oc)))
	}

	outSchema := append(append([]plan.ColRef(nil), st.node.Schema()...), plan.TableSchema(bt.tbl, bt.name())...)

	// Both join inputs are materialized (hash table, merge run or cross
	// buffer): charge the width-aware term so narrowing projections from
	// the column-prune rule have a cost to save. The term is charged in
	// every rule setting — only the projections depend on the rule bit —
	// so access and join-order choices stay rule-independent.
	widthTerm := m.RowWidth(st.rows, len(st.node.Schema())) + m.RowWidth(path.rows, len(path.node.Schema()))

	if len(outerKeys) == 0 {
		// Cross join fallback.
		rows := st.rows * path.rows
		n := &plan.CrossJoin{Left: st.node, Right: path.node}
		n.Out = append(append([]plan.ColRef(nil), st.node.Schema()...), path.node.Schema()...)
		n.Cost = st.cost + path.cost + rows*m.CPUTuple + widthTerm
		n.Rows = rows
		return &joinChoice{node: n, cost: n.Cost, rows: rows}
	}

	rowsOut := st.rows * path.rows * jsel
	if rowsOut < 1 {
		rowsOut = 1
	}

	// Hash join: build on the new table's access, probe with the current
	// result (preserving its order).
	hj := &plan.HashJoin{Left: st.node, Right: path.node, LeftKeys: outerKeys, RightKeys: innerKeys}
	hj.Out = append(append([]plan.ColRef(nil), st.node.Schema()...), path.node.Schema()...)
	hjCost := st.cost + path.cost + m.HashJoin(path.rows, st.rows) + widthTerm
	hj.Cost = hjCost
	hj.Rows = rowsOut
	best := &joinChoice{node: hj, cost: hjCost, rows: rowsOut, order: st.order}

	// INLJ: seek an index of j on the join column(s) for each outer row.
	table := bt.ref.Table
	tableRows := o.env.TableRows(table)
	tablePages := o.env.TablePages(table)
	var bestINLJ *joinChoice
	var bestINLJIndexID string
	for _, pi := range o.env.Mgr.TableIndexes(table) {
		ix := pi.Def
		if !o.env.Available(ix) {
			continue
		}
		// The index must lead with join columns (consume a prefix). The
		// seek keys are built in the INDEX's column order — the join
		// predicates may list the columns differently, and a misaligned
		// composite seek key would silently match the wrong rows.
		var seekKeys []sql.Expr
		usedPred := make([]bool, len(innerCols))
		sel := 1.0
		for _, col := range ix.Columns {
			k := indexOfFoldStr(innerCols, col)
			if k < 0 || usedPred[k] || len(seekKeys) >= len(innerCols) {
				break
			}
			usedPred[k] = true
			seekKeys = append(seekKeys, outerKeys[k])
			sel *= 1 / math.Max(1, o.distinctOf(table, col))
		}
		consumed := len(seekKeys)
		if consumed == 0 {
			continue
		}
		// Join predicates not consumed by the seek are evaluated post-join.
		var joinResid []sql.Expr
		for k := range innerCols {
			if !usedPred[k] {
				joinResid = append(joinResid, &sql.BinaryExpr{Op: "=", Left: outerKeys[k], Right: innerKeys[k]})
			}
		}
		matchRows := tableRows * sel
		covering := ix.Primary || ix.ContainsColumns(bt.required)
		pages := o.env.IndexPages(ix)
		c := st.cost + m.Seeks(st.rows, pages, math.Max(1, pages*sel), matchRows)
		if !covering {
			c += m.RIDLookups(st.rows*matchRows, tablePages)
		}
		preds := allPreds(bt)
		c += st.rows * matchRows * float64(len(preds)) * m.CPUPred
		// Only the outer stream is materialized through an INLJ.
		c += m.RowWidth(st.rows, len(st.node.Schema()))
		if bestINLJ == nil || c < bestINLJ.cost {
			inlj := &plan.INLJoin{
				Outer:     st.node,
				Index:     ix,
				Alias:     bt.name(),
				OuterKeys: seekKeys,
				Fetch:     !covering && !ix.Primary,
				Preds:     append(append([]sql.Expr(nil), preds...), joinResid...),
			}
			if covering && !ix.Primary {
				inlj.Out = append(append([]plan.ColRef(nil), st.node.Schema()...), plan.IndexSchema(ix, bt.name())...)
			} else {
				inlj.Out = outSchema
			}
			inlj.Cost = c
			inlj.Rows = rowsOut
			bestINLJ = &joinChoice{node: inlj, cost: c, rows: rowsOut, order: st.order}
			bestINLJIndexID = ix.ID()
		}
	}

	// Merge join: worthwhile when one or both inputs already arrive in
	// join-key order (otherwise the explicit sorts usually lose to the
	// hash join).
	leftSorted := orderPrefixMatches(st.order, outerKeys)
	rightSorted := pathOrderMatches(path.order, innerCols, bt.name())
	mjCost := st.cost + path.cost + m.MergeJoinExtra(st.rows, path.rows) + widthTerm
	if !leftSorted {
		mjCost += m.Sort(st.rows)
	}
	if !rightSorted {
		mjCost += m.Sort(path.rows)
	}
	if mjCost < best.cost {
		mj := &plan.MergeJoin{
			Left: st.node, Right: path.node,
			LeftKeys: outerKeys, RightKeys: innerKeys,
			LeftSorted: leftSorted, RightSorted: rightSorted,
		}
		mj.Out = append(append([]plan.ColRef(nil), st.node.Schema()...), path.node.Schema()...)
		mj.Cost = mjCost
		mj.Rows = rowsOut
		// Output arrives in join-key order.
		var order []plan.ColRef
		for _, k := range outerKeys {
			if cr, ok := k.(*sql.ColumnRef); ok {
				order = append(order, plan.ColRef{Table: cr.Table, Column: cr.Column})
			}
		}
		best = &joinChoice{node: mj, cost: mjCost, rows: rowsOut, order: order}
	}

	chosen := best
	chosenID := ""
	if bestINLJ != nil && bestINLJ.cost < best.cost {
		chosen = bestINLJ
		chosenID = bestINLJIndexID
	}

	// Capture the INLJ request (the paper's ρ2): the inner side could be
	// served by a seek with Bindings = outer cardinality.
	if len(innerCols) > 0 && tableRows > 0 {
		req := &whatif.Request{
			Table:          table,
			Kind:           whatif.KindSeek,
			Bindings:       math.Max(1, st.rows),
			Required:       append([]string(nil), bt.required...),
			ResidualPreds:  len(allPreds(bt)),
			TableRows:      tableRows,
			TablePages:     tablePages,
			CurrentCost:    chosen.cost - st.cost,
			CurrentIndexID: chosenID,
			Implemented:    chosenID != "",
		}
		for _, c := range innerCols {
			req.EqCols = append(req.EqCols, c)
			req.EqSels = append(req.EqSels, 1/math.Max(1, o.distinctOf(table, c)))
		}
		req.RowsPerBinding = math.Max(1, tableRows*jsel)
		chosen.inljRequest = req
	}
	return chosen
}

// orderPrefixMatches reports whether the current output order starts
// with the given key expressions (all plain column references).
func orderPrefixMatches(order []plan.ColRef, keys []sql.Expr) bool {
	if len(keys) == 0 || len(order) < len(keys) {
		return false
	}
	for i, k := range keys {
		cr, ok := k.(*sql.ColumnRef)
		if !ok || !order[i].Matches(cr.Table, cr.Column) {
			return false
		}
	}
	return true
}

// pathOrderMatches reports whether a table access's output order starts
// with the inner join columns.
func pathOrderMatches(order []string, innerCols []string, alias string) bool {
	_ = alias
	if len(innerCols) == 0 || len(order) < len(innerCols) {
		return false
	}
	for i, c := range innerCols {
		if !strings.EqualFold(order[i], c) {
			return false
		}
	}
	return true
}

func indexOfOther(bq *boundQuery, jp joinPred, j int) int {
	if jp.lt == j {
		return jp.rt
	}
	return jp.lt
}

// finishSelect places aggregation, distinct, sort, limit and projection.
func (o *Optimizer) finishSelect(bq *boundQuery, st *joinState, rules Rules, applied map[string]bool) error {
	sel := bq.sel
	m := o.env.Model

	names := make([]string, len(sel.Items))
	for i, it := range sel.Items {
		switch {
		case it.Star:
			names[i] = "*"
		case it.Alias != "":
			names[i] = it.Alias
		default:
			names[i] = it.Expr.String()
		}
	}

	aggregated := bq.hasAggs || len(sel.GroupBy) > 0

	// Stop pushdown (RuleTopN): a LIMIT over a single access node whose
	// order requirement is already satisfied (or absent) stops the scan
	// after N passing rows. The Limit node above stays for exactness —
	// the stop is a pure early-exit, so results are byte-identical.
	if rules.Has(RuleTopN) && sel.Limit > 0 && !aggregated && !sel.Distinct {
		satisfied := len(sel.OrderBy) == 0
		if !satisfied {
			satisfied = orderSatisfiedBy(st.order, orderKeys(sel, false, false))
		}
		if satisfied && setScanStop(st.node, sel.Limit) {
			if lim := float64(sel.Limit); st.rows > lim && st.rows > 0 {
				st.cost *= lim / st.rows
				st.rows = lim
				updateBase(st.node, st.cost, st.rows)
			}
			applied["topn-pushdown"] = true
		}
	}
	if aggregated {
		// HashAgg evaluates the whole select list: aggregates accumulate,
		// scalars evaluate on each group's first row.
		agg := &plan.HashAgg{Child: st.node, GroupBy: sel.GroupBy}
		for i, it := range sel.Items {
			if it.Star {
				return fmt.Errorf("optimizer: SELECT * cannot be combined with aggregates")
			}
			spec := plan.AggSpec{Name: names[i]}
			if fe, ok := it.Expr.(*sql.FuncExpr); ok {
				spec.Func = fe.Name
				spec.Arg = fe.Arg
				spec.Star = fe.Star
			} else {
				spec.Func = "FIRST"
				spec.Arg = it.Expr
			}
			agg.Aggs = append(agg.Aggs, spec)
		}
		groups := st.rows
		if len(sel.GroupBy) == 0 {
			groups = 1
		} else {
			g := 1.0
			for _, ge := range sel.GroupBy {
				if cr, ok := ge.(*sql.ColumnRef); ok {
					ti, col, err := bq.resolve(cr)
					if err == nil {
						g *= o.distinctOf(bq.tables[ti].ref.Table, col)
						continue
					}
				}
				g *= 10
			}
			groups = math.Min(g, st.rows)
		}
		schema := make([]plan.ColRef, len(agg.Aggs))
		for i := range agg.Aggs {
			schema[i] = plan.ColRef{Column: agg.Aggs[i].Name}
		}
		agg.Out = schema
		agg.Cost = st.cost + st.rows*m.HashTup
		agg.Rows = math.Max(1, groups)
		st.node = agg
		st.cost = agg.Cost
		st.rows = agg.Rows
		st.order = nil // hash aggregation destroys any input order
	}

	// Projection before Sort when aggregating (sort keys reference output
	// names); otherwise Sort below Project so order keys can use any
	// column.
	projected := false
	project := func() {
		if projected {
			return
		}
		projected = true
		if len(sel.Items) == 1 && sel.Items[0].Star {
			return // SELECT *: pass rows through
		}
		if aggregated {
			return // HashAgg already produced the select list
		}
		var exprs []sql.Expr
		var outNames []string
		var schema []plan.ColRef
		for i, it := range sel.Items {
			if it.Star {
				for _, cr := range st.node.Schema() {
					exprs = append(exprs, &sql.ColumnRef{Table: cr.Table, Column: cr.Column})
					outNames = append(outNames, cr.Column)
					schema = append(schema, cr)
				}
				continue
			}
			exprs = append(exprs, it.Expr)
			outNames = append(outNames, names[i])
			schema = append(schema, plan.ColRef{Column: names[i]})
		}
		p := &plan.Project{Child: st.node, Exprs: exprs, Names: outNames}
		p.Out = schema
		p.Cost = st.cost + st.rows*m.CPUTuple
		p.Rows = st.rows
		st.node = p
		st.cost = p.Cost
	}

	// DISTINCT applies to the projected rows, so project first.
	if sel.Distinct {
		project()
		d := &plan.Distinct{Child: st.node}
		d.Out = st.node.Schema()
		d.Cost = st.cost + st.rows*m.HashTup
		d.Rows = math.Max(1, st.rows/2)
		st.node = d
		st.cost = d.Cost
		st.rows = d.Rows
		st.order = nil
	}

	limitHandled := false
	if len(sel.OrderBy) > 0 {
		keys := orderKeys(sel, aggregated, projected)
		if !orderSatisfiedBy(st.order, keys) {
			if aggregated {
				project() // no-op for agg, kept for symmetry
			}
			if rules.Has(RuleTopN) && sel.Limit >= 0 {
				// TopN pushdown: ORDER BY + LIMIT keeps only the N best rows
				// in a bounded heap instead of a full sort.
				t := &plan.TopN{Child: st.node, Keys: keys, N: sel.Limit}
				t.Out = st.node.Schema()
				t.Cost = st.cost + m.TopN(st.rows, float64(sel.Limit))
				t.Rows = math.Min(st.rows, float64(sel.Limit))
				st.node = t
				st.cost = t.Cost
				st.rows = t.Rows
				limitHandled = true
				applied["topn-pushdown"] = true
			} else {
				s := &plan.Sort{Child: st.node, Keys: keys}
				s.Out = st.node.Schema()
				s.Cost = st.cost + m.Sort(st.rows)
				s.Rows = st.rows
				st.node = s
				st.cost = s.Cost
			}
		}
	}

	project()

	if sel.Limit >= 0 && !limitHandled {
		l := &plan.Limit{Child: st.node, N: sel.Limit}
		l.Out = st.node.Schema()
		l.Cost = st.cost
		l.Rows = math.Min(st.rows, float64(sel.Limit))
		st.node = l
		st.rows = l.Rows
	}
	return nil
}

// orderKeys builds the ORDER BY sort keys, rewriting alias references to
// their select expressions unless the select list has already been
// produced (aggregation or DISTINCT), in which case sort keys reference
// the output's names.
func orderKeys(sel *sql.Select, aggregated, projected bool) []plan.SortKey {
	keys := make([]plan.SortKey, len(sel.OrderBy))
	for i, oi := range sel.OrderBy {
		e := oi.Expr
		if !aggregated && !projected {
			if cr, ok := e.(*sql.ColumnRef); ok && cr.Table == "" {
				for j, it := range sel.Items {
					if strings.EqualFold(it.Alias, cr.Column) && !it.Star {
						e = sel.Items[j].Expr
					}
				}
			}
		}
		keys[i] = plan.SortKey{Expr: e, Desc: oi.Desc}
	}
	return keys
}

// setScanStop pushes a stop row count into a direct access node; any
// other node shape refuses the pushdown.
func setScanStop(n plan.Node, limit int64) bool {
	switch x := n.(type) {
	case *plan.SeqScan:
		x.Stop = limit
	case *plan.IndexScan:
		x.Stop = limit
	case *plan.IndexSeek:
		x.Stop = limit
	default:
		return false
	}
	return true
}

// updateBase rewrites a direct access node's cached estimates after a
// stop pushdown scaled them.
func updateBase(n plan.Node, cost, rows float64) {
	switch x := n.(type) {
	case *plan.SeqScan:
		x.Cost, x.Rows = cost, rows
	case *plan.IndexScan:
		x.Cost, x.Rows = cost, rows
	case *plan.IndexSeek:
		x.Cost, x.Rows = cost, rows
	}
}

// orderSatisfiedBy reports whether the current physical order satisfies
// the sort keys (ascending column references only).
func orderSatisfiedBy(order []plan.ColRef, keys []plan.SortKey) bool {
	if len(keys) > len(order) {
		return false
	}
	for i, k := range keys {
		if k.Desc {
			return false
		}
		cr, ok := k.Expr.(*sql.ColumnRef)
		if !ok || !order[i].Matches(cr.Table, cr.Column) {
			return false
		}
	}
	return true
}

// planInsert plans INSERT ... VALUES and INSERT ... SELECT.
func (o *Optimizer) planInsert(ins *sql.Insert) (*Result, error) {
	t := o.env.Cat.Table(ins.Table)
	if t == nil {
		return nil, fmt.Errorf("optimizer: unknown table %s", ins.Table)
	}
	node := &plan.InsertNode{Table: t.Name}
	var cost, rows float64
	var tree *whatif.Node

	if ins.Query != nil {
		sub, err := o.planSelect(ins.Query)
		if err != nil {
			return nil, err
		}
		if len(sub.Plan.Schema()) != len(t.Columns) && len(ins.Columns) == 0 {
			return nil, fmt.Errorf("optimizer: INSERT SELECT arity mismatch for %s", t.Name)
		}
		node.Source = sub.Plan
		rows = sub.Rows
		cost = sub.Cost
		tree = sub.Tree
	} else {
		ncols := len(t.Columns)
		if len(ins.Columns) > 0 {
			ncols = len(ins.Columns)
		}
		for _, r := range ins.Rows {
			if len(r) != ncols {
				return nil, fmt.Errorf("optimizer: INSERT arity mismatch for %s", t.Name)
			}
			row, err := o.literalRow(t, ins.Columns, r)
			if err != nil {
				return nil, err
			}
			node.Literals = append(node.Literals, row)
		}
		rows = float64(len(node.Literals))
	}

	upReq := o.updateRequest(t, rows)
	cost += o.dmlCost(t, rows, upReq.UpdateTouchedIndexes)
	node.Cost = cost
	node.Rows = rows
	leaf := whatif.NewLeaf(upReq)
	if tree != nil {
		tree = whatif.NewAnd(tree, leaf)
	} else {
		tree = whatif.NewAnd(leaf)
	}
	return &Result{Plan: node, Tree: tree, Cost: cost, Rows: rows}, nil
}

// literalRow evaluates constant insert expressions into a full table row
// (missing columns become NULL).
func (o *Optimizer) literalRow(t *catalog.Table, cols []string, exprs []sql.Expr) (datum.Row, error) {
	row := make(datum.Row, len(t.Columns))
	for i := range row {
		row[i] = datum.Null
	}
	for i, e := range exprs {
		lit, ok := e.(*sql.Literal)
		if !ok {
			return nil, fmt.Errorf("optimizer: INSERT values must be literals, got %s", e)
		}
		ord := i
		if len(cols) > 0 {
			ord = t.ColumnIndex(cols[i])
			if ord < 0 {
				return nil, fmt.Errorf("optimizer: unknown column %s in INSERT", cols[i])
			}
		}
		if ord >= len(row) {
			return nil, fmt.Errorf("optimizer: too many values in INSERT")
		}
		row[ord] = lit.Value
	}
	return row, nil
}

// updateRequest builds the update-shell request for a DML statement.
func (o *Optimizer) updateRequest(t *catalog.Table, rows float64) *whatif.Request {
	touched := 0
	for _, pi := range o.env.Mgr.TableIndexes(t.Name) {
		if !pi.Def.Primary && o.env.Available(pi.Def) {
			touched++
		}
	}
	return &whatif.Request{
		Table:                t.Name,
		Kind:                 whatif.KindUpdate,
		UpdateRows:           rows,
		UpdateTouchedIndexes: touched,
		TableRows:            o.env.TableRows(t.Name),
		TablePages:           o.env.TablePages(t.Name),
		Bindings:             1,
		Implemented:          true,
	}
}

// dmlCost is the estimated write cost: base DML work plus maintenance of
// every active secondary index.
func (o *Optimizer) dmlCost(t *catalog.Table, rows float64, touched int) float64 {
	m := o.env.Model
	return m.DMLBase(rows, o.env.TablePages(t.Name)) + float64(touched)*m.IndexMaintenance(rows)
}

// planUpdate plans an UPDATE: the WHERE side is costed (and captured as
// requests) like a select; execution locates rows by scan.
func (o *Optimizer) planUpdate(up *sql.Update) (*Result, error) {
	t := o.env.Cat.Table(up.Table)
	if t == nil {
		return nil, fmt.Errorf("optimizer: unknown table %s", up.Table)
	}
	locCost, locRows, orNode, generic, err := o.locate(t, up.Where)
	if err != nil {
		return nil, err
	}
	for _, a := range up.Set {
		if t.ColumnIndex(a.Column) < 0 {
			return nil, fmt.Errorf("optimizer: unknown column %s in UPDATE %s", a.Column, t.Name)
		}
	}
	node := &plan.UpdateNode{Table: t.Name, Set: up.Set, Where: splitConjuncts(up.Where)}
	upReq := o.updateRequest(t, locRows)
	cost := locCost + o.dmlCost(t, locRows, upReq.UpdateTouchedIndexes)
	node.Cost = cost
	node.Rows = locRows
	children := []*whatif.Node{whatif.NewLeaf(upReq)}
	if orNode != nil {
		children = append(children, orNode)
	}
	return &Result{Plan: node, Tree: whatif.NewAnd(children...), Cost: cost, Rows: locRows, Generic: generic}, nil
}

// planDelete plans a DELETE.
func (o *Optimizer) planDelete(del *sql.Delete) (*Result, error) {
	t := o.env.Cat.Table(del.Table)
	if t == nil {
		return nil, fmt.Errorf("optimizer: unknown table %s", del.Table)
	}
	locCost, locRows, orNode, generic, err := o.locate(t, del.Where)
	if err != nil {
		return nil, err
	}
	node := &plan.DeleteNode{Table: t.Name, Where: splitConjuncts(del.Where)}
	upReq := o.updateRequest(t, locRows)
	cost := locCost + o.dmlCost(t, locRows, upReq.UpdateTouchedIndexes)
	node.Cost = cost
	node.Rows = locRows
	children := []*whatif.Node{whatif.NewLeaf(upReq)}
	if orNode != nil {
		children = append(children, orNode)
	}
	return &Result{Plan: node, Tree: whatif.NewAnd(children...), Cost: cost, Rows: locRows, Generic: generic}, nil
}

// locate costs the row-location side of an UPDATE/DELETE and captures its
// requests.
func (o *Optimizer) locate(t *catalog.Table, where sql.Expr) (float64, float64, *whatif.Node, bool, error) {
	pseudo := &sql.Select{
		Items: []sql.SelectItem{{Star: true}},
		From:  sql.TableRef{Table: t.Name},
		Where: where,
		Limit: -1,
	}
	bq, err := bind(o.env.Cat, pseudo)
	if err != nil {
		return 0, 0, nil, false, err
	}
	path := o.chooseAccess(bq.tables[0], nil)
	var leaves []*whatif.Node
	for _, r := range path.requests {
		leaves = append(leaves, whatif.NewLeaf(r))
	}
	return path.cost, path.rows, whatif.NewOr(leaves...), genericPreds(bq), nil
}

func indexOfFoldStr(ss []string, s string) int {
	for i, x := range ss {
		if strings.EqualFold(x, s) {
			return i
		}
	}
	return -1
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}
