package optimizer

import (
	"fmt"
	"strings"
)

// Rules is the bitset of cost-based rewrite rules the optimizer may
// apply. Every rule is result-preserving by construction: toggling a
// rule changes plan shape and cost, never the rows a statement returns
// (the bench's Verify check and the differential suite enforce this).
// The bitset participates in the plan-cache key so a toggle can never
// serve a stale plan.
type Rules uint32

// Rule bits, in canonical order. RulesApplied provenance and ParseRules
// names follow this order.
const (
	// RuleUnnest flattens IN (SELECT ...) / EXISTS (SELECT ...) into
	// hash semi-joins with an index-aware inner access path.
	RuleUnnest Rules = 1 << iota
	// RuleTopN replaces Sort+Limit with a bounded-heap TopN operator and
	// pushes bare LIMITs into the access path as a stop row count.
	RuleTopN
	// RuleMinMax answers MIN/MAX aggregates with single index-endpoint
	// seeks when a matching index exists, and surfaces an endpoint
	// access-path request the tuner can bid on even when none does.
	RuleMinMax
	// RulePrune inserts narrowing projections below joins so only
	// referenced columns are materialized through join inputs.
	RulePrune
	// RuleJoinDP runs an exhaustive bushy join-order DP over small join
	// graphs where greedy left-deep enumeration is provably safe to beat.
	RuleJoinDP

	ruleEnd
)

// DefaultRules enables every rule.
const DefaultRules = ruleEnd - 1

// ruleNames maps each bit to its canonical name (EXPLAIN provenance,
// ParseRules spelling, bench cell keys).
var ruleNames = []struct {
	bit  Rules
	name string
}{
	{RuleUnnest, "subquery-unnest"},
	{RuleTopN, "topn-pushdown"},
	{RuleMinMax, "minmax-endpoint"},
	{RulePrune, "column-prune"},
	{RuleJoinDP, "join-dp"},
}

// shortNames are the flag spellings accepted by ParseRules.
var shortNames = map[string]Rules{
	"unnest": RuleUnnest,
	"topn":   RuleTopN,
	"minmax": RuleMinMax,
	"prune":  RulePrune,
	"joindp": RuleJoinDP,
}

// Has reports whether the bit is set.
func (r Rules) Has(bit Rules) bool { return r&bit != 0 }

// String renders the set as a comma list of short names, or "all"/"none".
func (r Rules) String() string {
	if r == DefaultRules {
		return "all"
	}
	if r == 0 {
		return "none"
	}
	var parts []string
	for _, rn := range ruleNames {
		if r.Has(rn.bit) {
			for short, bit := range shortNames {
				if bit == rn.bit {
					parts = append(parts, short)
				}
			}
		}
	}
	return strings.Join(parts, ",")
}

// Names returns the canonical names of the enabled rules in bit order.
func (r Rules) Names() []string {
	var out []string
	for _, rn := range ruleNames {
		if r.Has(rn.bit) {
			out = append(out, rn.name)
		}
	}
	return out
}

// appliedNames returns the canonical names present in the applied set,
// in canonical bit order.
func appliedNames(applied map[string]bool) []string {
	var out []string
	for _, rn := range ruleNames {
		if applied[rn.name] {
			out = append(out, rn.name)
		}
	}
	return out
}

// ParseRules parses a -rules flag value: "all", "none", or a comma list
// of short names (unnest,topn,minmax,prune,joindp) or canonical names.
// The empty string means "all" (rules on is the default).
func ParseRules(s string) (Rules, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "all", "default":
		return DefaultRules, nil
	case "none", "off":
		return 0, nil
	}
	var r Rules
	for _, part := range strings.Split(s, ",") {
		part = strings.ToLower(strings.TrimSpace(part))
		if part == "" {
			continue
		}
		if bit, ok := shortNames[part]; ok {
			r |= bit
			continue
		}
		found := false
		for _, rn := range ruleNames {
			if rn.name == part {
				r |= rn.bit
				found = true
				break
			}
		}
		if !found {
			return 0, fmt.Errorf("optimizer: unknown rule %q (want all, none, or a comma list of unnest,topn,minmax,prune,joindp)", part)
		}
	}
	return r, nil
}
