package optimizer

import (
	"onlinetuner/internal/plan"
	"onlinetuner/internal/sql"
)

// This file implements column pruning through projections: narrowing,
// order-preserving Project nodes are inserted below join inputs so that
// only columns referenced above each input are materialized through hash
// tables, merge runs and probe streams. Access paths and join order are
// chosen identically in both rule settings — the width term in the cost
// model is charged unconditionally — so toggling the rule changes only
// how much data flows through joins, never which rows come out or in
// what order.

// needCol is one referenced column; an empty table matches any source.
type needCol struct {
	table, col string
}

type needSet []needCol

func (ns needSet) has(c plan.ColRef) bool {
	for _, n := range ns {
		if c.Matches(n.table, n.col) {
			return true
		}
	}
	return false
}

// colsOf extends a need set (copy-on-write) with every column the given
// expressions reference.
func colsOf(set needSet, exprs ...sql.Expr) needSet {
	out := append(needSet{}, set...)
	for _, e := range exprs {
		walkColumns(e, func(cr *sql.ColumnRef) {
			out = append(out, needCol{table: cr.Table, col: cr.Column})
		})
	}
	return out
}

// pruneColumns walks the join tree inserting narrowing projections where
// the width saving beats the projection's own per-row cost, and adjusts
// the cached costs of every ancestor by the accumulated saving.
func (o *Optimizer) pruneColumns(bq *boundQuery, st *joinState, semis []*semiSpec, applied map[string]bool) {
	sel := bq.sel
	need := needSet{}
	collect := func(exprs ...sql.Expr) {
		need = colsOf(need, exprs...)
	}
	for _, it := range sel.Items {
		if !it.Star {
			collect(it.Expr)
		}
	}
	collect(sel.GroupBy...)
	for _, oi := range sel.OrderBy {
		collect(oi.Expr)
	}
	collect(bq.resid...)
	for _, sp := range semis {
		collect(sp.probe...)
	}

	p := &pruner{o: o}
	saved := p.walk(st.node, need)
	if p.wraps > 0 {
		st.cost -= saved
		applied["column-prune"] = true
	}
}

type pruner struct {
	o     *Optimizer
	wraps int
}

// walk descends through filters, semi-joins and joins, accumulating the
// columns each level needs, wraps join inputs in projections when
// profitable, and returns the total saving so ancestors can adjust their
// cached costs.
func (p *pruner) walk(n plan.Node, need needSet) float64 {
	switch x := n.(type) {
	case *plan.Filter:
		s := p.walk(x.Child, colsOf(need, x.Preds...))
		x.Out = x.Child.Schema()
		x.Cost -= s
		return s
	case *plan.HashSemiJoin:
		// Only the probe side carries columns upward; the build side was
		// planned independently with its own minimal required set.
		s := p.walk(x.Left, colsOf(need, x.LeftKeys...))
		x.Out = x.Left.Schema()
		x.Cost -= s
		return s
	case *plan.HashJoin:
		leftNeed := colsOf(need, x.LeftKeys...)
		rightNeed := colsOf(need, x.RightKeys...)
		s := p.walk(x.Left, leftNeed) + p.walk(x.Right, rightNeed)
		x.Left, s = p.wrap(x.Left, leftNeed, s)
		x.Right, s = p.wrap(x.Right, rightNeed, s)
		x.Out = append(append([]plan.ColRef(nil), x.Left.Schema()...), x.Right.Schema()...)
		x.Cost -= s
		return s
	case *plan.MergeJoin:
		leftNeed := colsOf(need, x.LeftKeys...)
		rightNeed := colsOf(need, x.RightKeys...)
		s := p.walk(x.Left, leftNeed) + p.walk(x.Right, rightNeed)
		x.Left, s = p.wrap(x.Left, leftNeed, s)
		x.Right, s = p.wrap(x.Right, rightNeed, s)
		x.Out = append(append([]plan.ColRef(nil), x.Left.Schema()...), x.Right.Schema()...)
		x.Cost -= s
		return s
	case *plan.CrossJoin:
		s := p.walk(x.Left, need) + p.walk(x.Right, need)
		x.Left, s = p.wrap(x.Left, need, s)
		x.Right, s = p.wrap(x.Right, need, s)
		x.Out = append(append([]plan.ColRef(nil), x.Left.Schema()...), x.Right.Schema()...)
		x.Cost -= s
		return s
	}
	// Leaves and INLJ subtrees are left untouched: an INLJ's inner lookup
	// needs the row shape it was planned with.
	return 0
}

// wrap inserts a narrowing projection over child when the width term it
// saves exceeds the projection's own per-row cost; it threads the
// accumulated saving through.
func (p *pruner) wrap(child plan.Node, need needSet, s float64) (plan.Node, float64) {
	m := p.o.env.Model
	sch := child.Schema()
	if len(sch) == 0 {
		return child, s
	}
	var keep []plan.ColRef
	for _, c := range sch {
		if need.has(c) {
			keep = append(keep, c)
		}
	}
	if len(keep) == 0 {
		keep = append(keep, sch[0])
	}
	removed := len(sch) - len(keep)
	if removed == 0 {
		return child, s
	}
	rows := child.EstRows()
	save := m.RowWidth(rows, removed) - rows*m.CPUTuple
	if save <= 0 {
		return child, s
	}
	exprs := make([]sql.Expr, len(keep))
	names := make([]string, len(keep))
	for i, c := range keep {
		exprs[i] = &sql.ColumnRef{Table: c.Table, Column: c.Column}
		names[i] = c.Column
	}
	pr := &plan.Project{Child: child, Exprs: exprs, Names: names}
	pr.Out = append([]plan.ColRef(nil), keep...)
	pr.Cost = child.EstCost() + rows*m.CPUTuple
	pr.Rows = rows
	p.wraps++
	return pr, s + save
}
