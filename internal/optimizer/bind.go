// Package optimizer implements the cost-based query optimizer: it binds
// a parsed statement against the catalog, classifies predicates,
// enumerates access paths over the active indexes, orders joins
// greedily, and places sorts and aggregates. While generating index
// strategies it captures access-path requests into an AND/OR tree
// (Section 2.1 of the paper) — the instrumentation the online tuner
// consumes.
package optimizer

import (
	"fmt"
	"strings"

	"onlinetuner/internal/catalog"
	"onlinetuner/internal/datum"
	"onlinetuner/internal/sql"
)

// boundTable is one FROM-list table with its single-table predicates.
type boundTable struct {
	ref   sql.TableRef
	tbl   *catalog.Table
	eqs   []sargPred // column = constant
	lows  []sargPred // column >|>= constant
	highs []sargPred // column <|<= constant
	resid []sql.Expr // single-table non-sargable predicates
	// required columns in select-list-then-predicate order
	required []string
	reqSet   map[string]bool
}

func (bt *boundTable) name() string { return bt.ref.Name() }

func (bt *boundTable) addRequired(col string) {
	key := strings.ToLower(col)
	if bt.reqSet[key] {
		return
	}
	bt.reqSet[key] = true
	bt.required = append(bt.required, col)
}

// sargPred is a sargable predicate column OP constant.
type sargPred struct {
	col  string
	op   string // = < <= > >=
	val  datum.Datum
	expr sql.Expr
}

// joinPred is an equi-join predicate between two bound tables.
type joinPred struct {
	lt, rt int // boundTable indices
	lc, rc string
	expr   sql.Expr
}

// boundQuery is the normalized form the planner works from.
type boundQuery struct {
	sel     *sql.Select
	tables  []*boundTable
	joins   []joinPred
	resid   []sql.Expr // multi-table residual predicates
	hasAggs bool
}

// bind resolves a SELECT against the catalog and classifies predicates.
func bind(cat *catalog.Catalog, sel *sql.Select) (*boundQuery, error) {
	bq := &boundQuery{sel: sel}
	addTable := func(ref sql.TableRef) error {
		t := cat.Table(ref.Table)
		if t == nil {
			return fmt.Errorf("optimizer: unknown table %s", ref.Table)
		}
		for _, bt := range bq.tables {
			if strings.EqualFold(bt.name(), ref.Name()) {
				return fmt.Errorf("optimizer: duplicate table reference %s", ref.Name())
			}
		}
		bq.tables = append(bq.tables, &boundTable{ref: ref, tbl: t, reqSet: map[string]bool{}})
		return nil
	}
	if err := addTable(sel.From); err != nil {
		return nil, err
	}
	var conjuncts []sql.Expr
	for _, j := range sel.Joins {
		if err := addTable(j.Right); err != nil {
			return nil, err
		}
		conjuncts = append(conjuncts, splitConjuncts(j.On)...)
	}
	conjuncts = append(conjuncts, splitConjuncts(sel.Where)...)

	// Resolve select list; expand stars.
	for _, item := range sel.Items {
		if item.Star {
			for _, bt := range bq.tables {
				for _, c := range bt.tbl.Columns {
					bt.addRequired(c.Name)
				}
			}
			continue
		}
		if hasAggregate(item.Expr) {
			bq.hasAggs = true
		}
		if err := bq.noteColumns(item.Expr); err != nil {
			return nil, err
		}
	}
	for _, g := range sel.GroupBy {
		if err := bq.noteColumns(g); err != nil {
			return nil, err
		}
	}
	for _, o := range sel.OrderBy {
		// ORDER BY may reference select aliases; those resolve later.
		if cr, ok := o.Expr.(*sql.ColumnRef); ok {
			if _, _, err := bq.resolve(cr); err != nil {
				if !isAlias(sel, cr) {
					return nil, err
				}
				continue
			}
		}
		if err := bq.noteColumns(o.Expr); err != nil {
			return nil, err
		}
	}

	// Classify conjuncts.
	for _, c := range conjuncts {
		if lit, ok := c.(*sql.Literal); ok && lit.Value.Kind() == datum.KBool && lit.Value.Bool() {
			continue // ON TRUE from comma joins
		}
		if err := bq.classify(c); err != nil {
			return nil, err
		}
	}
	return bq, nil
}

// isAlias reports whether the column reference names a select alias.
func isAlias(sel *sql.Select, cr *sql.ColumnRef) bool {
	if cr.Table != "" {
		return false
	}
	for _, it := range sel.Items {
		if strings.EqualFold(it.Alias, cr.Column) {
			return true
		}
	}
	return false
}

// resolve finds the bound table owning a column reference.
func (bq *boundQuery) resolve(cr *sql.ColumnRef) (int, string, error) {
	found := -1
	for i, bt := range bq.tables {
		if cr.Table != "" && !strings.EqualFold(bt.name(), cr.Table) {
			continue
		}
		if ord := bt.tbl.ColumnIndex(cr.Column); ord >= 0 {
			if found >= 0 {
				return 0, "", fmt.Errorf("optimizer: ambiguous column %s", cr)
			}
			found = i
		}
	}
	if found < 0 {
		return 0, "", fmt.Errorf("optimizer: unknown column %s", cr)
	}
	// Return the catalog-cased column name.
	t := bq.tables[found].tbl
	return found, t.Columns[t.ColumnIndex(cr.Column)].Name, nil
}

// noteColumns records every column an expression touches as required.
func (bq *boundQuery) noteColumns(e sql.Expr) error {
	var err error
	walkColumns(e, func(cr *sql.ColumnRef) {
		if err != nil {
			return
		}
		ti, col, e2 := bq.resolve(cr)
		if e2 != nil {
			err = e2
			return
		}
		bq.tables[ti].addRequired(col)
	})
	return err
}

// classify routes one conjunct to a table's sargable/residual predicate
// sets or to the join list.
func (bq *boundQuery) classify(c sql.Expr) error {
	if be, ok := c.(*sql.BinaryExpr); ok && isCmpOp(be.Op) {
		// column OP literal / literal OP column.
		if cr, lit, flip := colLit(be); cr != nil {
			ti, col, err := bq.resolve(cr)
			if err != nil {
				return err
			}
			op := be.Op
			if flip {
				op = flipOp(op)
			}
			bt := bq.tables[ti]
			bt.addRequired(col)
			sp := sargPred{col: col, op: op, val: lit.Value, expr: c}
			switch op {
			case "=":
				bt.eqs = append(bt.eqs, sp)
			case ">", ">=":
				bt.lows = append(bt.lows, sp)
			case "<", "<=":
				bt.highs = append(bt.highs, sp)
			default: // <>
				bt.resid = append(bt.resid, c)
			}
			return nil
		}
		// column = column join predicate.
		if be.Op == "=" {
			lcr, lok := be.Left.(*sql.ColumnRef)
			rcr, rok := be.Right.(*sql.ColumnRef)
			if lok && rok {
				li, lc, err := bq.resolve(lcr)
				if err != nil {
					return err
				}
				ri, rc, err := bq.resolve(rcr)
				if err != nil {
					return err
				}
				if li != ri {
					bq.tables[li].addRequired(lc)
					bq.tables[ri].addRequired(rc)
					bq.joins = append(bq.joins, joinPred{lt: li, rt: ri, lc: lc, rc: rc, expr: c})
					return nil
				}
			}
		}
	}
	// Residual: note columns and assign to its table if single-table.
	tables := map[int]bool{}
	var err error
	walkColumns(c, func(cr *sql.ColumnRef) {
		if err != nil {
			return
		}
		ti, col, e2 := bq.resolve(cr)
		if e2 != nil {
			err = e2
			return
		}
		bq.tables[ti].addRequired(col)
		tables[ti] = true
	})
	if err != nil {
		return err
	}
	if len(tables) == 1 {
		for ti := range tables {
			bq.tables[ti].resid = append(bq.tables[ti].resid, c)
		}
		return nil
	}
	bq.resid = append(bq.resid, c)
	return nil
}

// colLit matches column OP literal (flip=false) or literal OP column
// (flip=true).
func colLit(be *sql.BinaryExpr) (*sql.ColumnRef, *sql.Literal, bool) {
	if cr, ok := be.Left.(*sql.ColumnRef); ok {
		if lit, ok := be.Right.(*sql.Literal); ok {
			return cr, lit, false
		}
	}
	if cr, ok := be.Right.(*sql.ColumnRef); ok {
		if lit, ok := be.Left.(*sql.Literal); ok {
			return cr, lit, true
		}
	}
	return nil, nil, false
}

func isCmpOp(op string) bool {
	switch op {
	case "=", "<", "<=", ">", ">=", "<>":
		return true
	}
	return false
}

func flipOp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	}
	return op
}

// splitConjuncts flattens a predicate tree over AND.
func splitConjuncts(e sql.Expr) []sql.Expr {
	if e == nil {
		return nil
	}
	if be, ok := e.(*sql.BinaryExpr); ok && be.Op == "AND" {
		return append(splitConjuncts(be.Left), splitConjuncts(be.Right)...)
	}
	return []sql.Expr{e}
}

// walkColumns visits every column reference in an expression.
func walkColumns(e sql.Expr, fn func(*sql.ColumnRef)) {
	switch x := e.(type) {
	case *sql.ColumnRef:
		fn(x)
	case *sql.BinaryExpr:
		walkColumns(x.Left, fn)
		walkColumns(x.Right, fn)
	case *sql.NotExpr:
		walkColumns(x.Inner, fn)
	case *sql.IsNullExpr:
		walkColumns(x.Inner, fn)
	case *sql.LikeExpr:
		walkColumns(x.Expr, fn)
	case *sql.FuncExpr:
		if x.Arg != nil {
			walkColumns(x.Arg, fn)
		}
	case *sql.InSubquery:
		// Only the outer-side probe expression is visible to the outer
		// binder; the subquery has its own scope.
		walkColumns(x.Left, fn)
	case *sql.ExistsExpr:
		// EXISTS contributes no outer columns directly; its correlation
		// predicates are resolved by the unnesting rule.
	}
}

// hasAggregate reports whether the expression contains an aggregate call.
func hasAggregate(e sql.Expr) bool {
	found := false
	var walk func(sql.Expr)
	walk = func(e sql.Expr) {
		switch x := e.(type) {
		case *sql.FuncExpr:
			found = true
		case *sql.BinaryExpr:
			walk(x.Left)
			walk(x.Right)
		case *sql.NotExpr:
			walk(x.Inner)
		case *sql.IsNullExpr:
			walk(x.Inner)
		case *sql.LikeExpr:
			walk(x.Expr)
		case *sql.InSubquery:
			// Aggregates inside the subquery belong to its own scope.
			walk(x.Left)
		case *sql.ExistsExpr:
			// Nothing: subquery scope.
		}
	}
	walk(e)
	return found
}
