package obs

import (
	"encoding/json"
	"sync"
)

// Decision is one structured record of a physical design change (or
// attempted change) made by the online tuner. Together the records
// reconstruct the tuner's whole schedule — Table 1's C(I)/D(I)
// notation — and carry the evidence behind each choice, so the paper's
// Figure 9-style overhead and regret analyses are reproducible from
// telemetry alone.
type Decision struct {
	// Seq is the record's 1-based position in the log.
	Seq int64 `json:"seq"`
	// AtQuery is the 1-based statement count when the decision was made.
	AtQuery int64 `json:"at_query"`
	// Kind is the change kind: create, drop, suspend, restart, abort or
	// build-start.
	Kind string `json:"kind"`
	// Index is the catalog index ID the decision concerns.
	Index string `json:"index"`
	// Table is the index's table.
	Table string `json:"table"`
	// Delta and DeltaMin are the candidate's Δ trackers at decision
	// time (Section 3.1's Δ = ΣO − ΣN and its running minimum).
	Delta    float64 `json:"delta"`
	DeltaMin float64 `json:"delta_min"`
	// BuildCost is B_I^s, the transition cost the decision weighed
	// (for drops, the residual's build-cost term).
	BuildCost float64 `json:"build_cost"`
	// Reason names the rule that fired: "benefit" (Δ−Δmin > B_I),
	// "residual" (line 9 drop), "swap" (evicted to make room),
	// "erosion" (async-build abort), "manual", or "published".
	Reason string `json:"reason"`
}

// DecisionLog is a bounded, concurrency-safe log of tuner decisions.
// When full, the oldest records are discarded (the capacity default is
// far above any schedule the evaluation produces).
type DecisionLog struct {
	mu    sync.Mutex
	cap   int
	seq   int64
	recs  []Decision
	start int
	count int
}

// DefaultDecisionCap bounds a decision log unless a capacity is given.
const DefaultDecisionCap = 4096

// NewDecisionLog returns a log retaining up to capacity records
// (DefaultDecisionCap when capacity <= 0).
func NewDecisionLog(capacity int) *DecisionLog {
	if capacity <= 0 {
		capacity = DefaultDecisionCap
	}
	return &DecisionLog{cap: capacity, recs: make([]Decision, capacity)}
}

// Append assigns the record's sequence number and stores it.
func (l *DecisionLog) Append(d Decision) {
	l.mu.Lock()
	l.seq++
	d.Seq = l.seq
	idx := (l.start + l.count) % l.cap
	if l.count == l.cap {
		l.recs[l.start] = d
		l.start = (l.start + 1) % l.cap
	} else {
		l.recs[idx] = d
		l.count++
	}
	l.mu.Unlock()
}

// Len returns the number of retained records.
func (l *DecisionLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.count
}

// Records returns a copy of the retained records, oldest first.
func (l *DecisionLog) Records() []Decision {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Decision, 0, l.count)
	for i := 0; i < l.count; i++ {
		out = append(out, l.recs[(l.start+i)%l.cap])
	}
	return out
}

// JSON renders the retained records as indented JSON.
func (l *DecisionLog) JSON() ([]byte, error) {
	return json.MarshalIndent(l.Records(), "", "  ")
}
