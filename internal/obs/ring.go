package obs

import "sync"

// TraceRing retains the most recent N finished traces. It is safe for
// concurrent use: many statement goroutines add while readers snapshot.
type TraceRing struct {
	mu    sync.Mutex
	buf   []*Trace
	next  int
	count int
	added int64
}

// NewTraceRing returns a ring holding up to n traces (minimum 1).
func NewTraceRing(n int) *TraceRing {
	if n < 1 {
		n = 1
	}
	return &TraceRing{buf: make([]*Trace, n)}
}

// Cap returns the ring's capacity.
func (r *TraceRing) Cap() int { return len(r.buf) }

// Added returns the total number of traces ever added (including those
// already overwritten).
func (r *TraceRing) Added() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.added
}

// Add stores a finished trace, evicting the oldest when full.
func (r *TraceRing) Add(t *Trace) {
	r.mu.Lock()
	r.buf[r.next] = t
	r.next = (r.next + 1) % len(r.buf)
	if r.count < len(r.buf) {
		r.count++
	}
	r.added++
	r.mu.Unlock()
}

// Traces returns the retained traces, oldest first.
func (r *TraceRing) Traces() []*Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Trace, 0, r.count)
	start := r.next - r.count
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.count; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}
