package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64 metric. All methods are
// safe for concurrent use; a Counter costs one atomic add per update,
// which is why hot-path code (the plan cache, the tuner's per-module
// accounting) can hold these directly instead of private fields.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds d (d must be non-negative for the value to stay monotone).
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable int64 metric.
type Gauge struct{ v atomic.Int64 }

// Set stores the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the value by d.
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// FloatCounter accumulates a float64 sum atomically (CAS loop).
type FloatCounter struct{ bits atomic.Uint64 }

// Add accumulates d.
func (f *FloatCounter) Add(d float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the accumulated sum.
func (f *FloatCounter) Value() float64 { return math.Float64frombits(f.bits.Load()) }

// Histogram counts observations into fixed upper-bound buckets (the
// last bucket is implicit +Inf). Observations also accumulate into
// Sum/Count so averages are recoverable from a snapshot.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is overflow
	sum    FloatCounter
	count  Counter
}

// NewHistogram returns a histogram over the given ascending upper
// bounds.
func NewHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Inc()
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Value() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// HistogramSnapshot is a histogram's JSON-safe state.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Sum    float64   `json:"sum"`
	Count  int64     `json:"count"`
}

// Snapshot copies the histogram state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
		Sum:    h.Sum(),
		Count:  h.Count(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// DefaultLatencyBuckets are exponential nanosecond buckets from 1µs to
// ~1s, suitable for the statement hot path.
var DefaultLatencyBuckets = func() []float64 {
	var b []float64
	for v := 1e3; v <= 1e9; v *= 4 {
		b = append(b, v)
	}
	return b
}()

// Registry is a named collection of metrics. Metric construction is
// get-or-create and panics on a kind mismatch (a programming error);
// reads take a snapshot so JSON export never blocks writers beyond one
// atomic load per metric.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]any
	names   []string // registration order
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]any)}
}

func (r *Registry) getOrCreate(name string, mk func() any) any {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		return m
	}
	m := mk()
	r.metrics[name] = m
	r.names = append(r.names, name)
	return m
}

// Counter returns the counter with the given name, creating it if
// needed.
func (r *Registry) Counter(name string) *Counter {
	m := r.getOrCreate(name, func() any { return &Counter{} })
	c, ok := m.(*Counter)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q is %T, not Counter", name, m))
	}
	return c
}

// Gauge returns the gauge with the given name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	m := r.getOrCreate(name, func() any { return &Gauge{} })
	g, ok := m.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q is %T, not Gauge", name, m))
	}
	return g
}

// FloatCounter returns the float counter with the given name, creating
// it if needed.
func (r *Registry) FloatCounter(name string) *FloatCounter {
	m := r.getOrCreate(name, func() any { return &FloatCounter{} })
	f, ok := m.(*FloatCounter)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q is %T, not FloatCounter", name, m))
	}
	return f
}

// Histogram returns the histogram with the given name, creating it with
// the given bounds if needed (the bounds of an existing histogram are
// kept).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	m := r.getOrCreate(name, func() any { return NewHistogram(bounds) })
	h, ok := m.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q is %T, not Histogram", name, m))
	}
	return h
}

// Snapshot returns a JSON-marshalable point-in-time copy of every
// metric, keyed by name: counters and gauges as int64, float counters
// as float64, histograms as HistogramSnapshot.
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	names := append([]string(nil), r.names...)
	metrics := make([]any, len(names))
	for i, n := range names {
		metrics[i] = r.metrics[n]
	}
	r.mu.Unlock()
	out := make(map[string]any, len(names))
	for i, n := range names {
		switch m := metrics[i].(type) {
		case *Counter:
			out[n] = m.Value()
		case *Gauge:
			out[n] = m.Value()
		case *FloatCounter:
			out[n] = m.Value()
		case *Histogram:
			out[n] = m.Snapshot()
		}
	}
	return out
}

// SnapshotJSON renders Snapshot as sorted, indented JSON.
func (r *Registry) SnapshotJSON() ([]byte, error) {
	return json.MarshalIndent(r.Snapshot(), "", "  ")
}

// Handler serves the snapshot as JSON over HTTP (expvar-style, without
// importing expvar so the process's global state stays untouched).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		b, err := r.SnapshotJSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(b)
	})
}
