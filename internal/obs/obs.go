package obs

import (
	"context"
	"sync/atomic"
)

// Obs bundles one engine instance's observability state: the metrics
// registry (always on — counters are single atomic adds) and the
// statement tracer (off by default; when enabled, every stride-th
// statement records a span tree into a bounded ring).
//
// Sampling exists because a full span tree costs a handful of clock
// reads and one allocation per statement — noise for a TPC-H batch,
// but measurable against a cached point lookup. Stride 1 traces every
// statement (what the invariant tests use); the default stride keeps
// the hot-path overhead under the budget while still retaining a
// steady stream of recent traces.
type Obs struct {
	Reg *Registry

	enabled atomic.Bool
	stride  atomic.Int64
	ctr     atomic.Int64
	ring    atomic.Pointer[TraceRing]
}

// DefaultRingSize is the trace ring capacity used when none is given.
const DefaultRingSize = 64

// DefaultStride is the sampling stride used when none is given: one
// traced statement out of every 16. A full span tree costs on the
// order of 1.5µs (clock reads, one arena allocation, ring retention),
// so on a ~2.5µs cached point lookup — the engine's fastest statement
// — stride 16 amortizes to a few percent, within the tracing budget.
const DefaultStride = 16

// New returns observability state with tracing disabled.
func New() *Obs {
	o := &Obs{Reg: NewRegistry()}
	o.stride.Store(DefaultStride)
	o.ring.Store(NewTraceRing(DefaultRingSize))
	return o
}

// EnableTracing turns statement tracing on with a fresh ring of the
// given capacity (DefaultRingSize when <= 0) sampling every stride-th
// statement (DefaultStride when <= 0; 1 traces everything).
func (o *Obs) EnableTracing(ringSize, stride int) {
	if ringSize <= 0 {
		ringSize = DefaultRingSize
	}
	if stride <= 0 {
		stride = DefaultStride
	}
	o.ring.Store(NewTraceRing(ringSize))
	o.stride.Store(int64(stride))
	o.ctr.Store(0)
	o.enabled.Store(true)
}

// DisableTracing turns statement tracing off; retained traces stay
// readable.
func (o *Obs) DisableTracing() { o.enabled.Store(false) }

// TracingEnabled reports whether statement tracing is on.
func (o *Obs) TracingEnabled() bool { return o.enabled.Load() }

// StartStatementTrace returns a new trace for the statement when
// tracing is on and the sampler selects it, else nil. The nil check is
// the entire disabled-path cost.
func (o *Obs) StartStatementTrace(statement string) *Trace {
	if !o.enabled.Load() {
		return nil
	}
	if s := o.stride.Load(); s > 1 && o.ctr.Add(1)%s != 0 {
		return nil
	}
	return NewTrace(statement)
}

// FinishTrace finishes the trace and retains it in the ring. Safe to
// call with nil.
func (o *Obs) FinishTrace(t *Trace) {
	if t == nil {
		return
	}
	t.Finish()
	o.ring.Load().Add(t)
}

// Traces returns the retained traces, oldest first.
func (o *Obs) Traces() []*Trace { return o.ring.Load().Traces() }

// ctxKey carries a caller-owned trace through a context.Context.
type ctxKey struct{}

// WithTrace attaches a trace to the context; the engine records its
// pipeline spans under the innermost open span of a context-carried
// trace instead of starting (and ring-retaining) its own.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the context's trace, or nil.
func FromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}
