// Package obs is the engine's zero-dependency observability layer:
// per-statement span traces (with a bounded ring of recent traces), a
// typed metrics registry exported as a JSON snapshot, and the tuner's
// structured decision log. Everything here is allocation-conscious —
// the span tree for one statement lives in a single arena allocation —
// because the trace path rides the statement hot path.
package obs

import (
	"fmt"
	"strings"
	"time"
)

// Span is one timed phase of a statement trace. Times are offsets from
// the trace's start on the monotonic clock, so within one trace they
// are totally ordered and never jump backwards.
type Span struct {
	Name   string
	Start  time.Duration // offset from Trace.Began
	End    time.Duration // zero-valued means still open (see Done)
	Done   bool          // true once the span has been closed
	Parent int32         // index of the parent span; -1 for the root
	Rows   int64         // optional: rows produced by the phase
	Attr   string        // optional: one free-form annotation
}

// Duration returns the span's elapsed time.
func (s *Span) Duration() time.Duration { return s.End - s.Start }

// Trace is the span tree of one statement execution. It is owned by the
// statement's goroutine and is NOT safe for concurrent use until it has
// been finished and handed to the ring; readers only ever see finished
// traces.
//
// The engine records the per-statement pipeline as a flat sequence of
// phase spans under the root (parse → lock-wait → plan → execute →
// observe); arbitrary nesting is available through StartSpan for
// callers that need it.
type Trace struct {
	// Statement is the SQL text the trace describes.
	Statement string
	// Began is the wall-clock start (the span offsets are monotonic).
	Began time.Time
	// Provenance records how the plan was obtained: "fresh",
	// "cached (exact)", "cached (rebound)" or "uncached".
	Provenance string
	// Requests is the number of what-if requests captured in the
	// statement's AND/OR tree (0 for DDL).
	Requests int
	// Err holds the statement error, if any.
	Err string

	t0    time.Time
	spans []Span
	stack []int32 // open-span stack; stack[0] is always the root
	phase int32   // currently open engine phase span, or -1
	fin   bool
}

// traceArenaCap is the span capacity preallocated with the trace; the
// engine's own pipeline uses six spans, so one allocation covers the
// common case with room for caller nesting.
const traceArenaCap = 8

// NewTrace starts a trace for one statement with its root span open.
func NewTrace(statement string) *Trace {
	t := &Trace{
		Statement: statement,
		Began:     time.Now(),
		spans:     make([]Span, 1, traceArenaCap),
		phase:     -1,
	}
	t.t0 = t.Began
	t.spans[0] = Span{Name: "statement", Parent: -1}
	t.stack = append(t.stack, 0)
	return t
}

// SpanRef identifies one span of a trace for End/annotation calls.
type SpanRef struct {
	t   *Trace
	idx int32
}

// StartSpan opens a span as a child of the innermost open span.
func (t *Trace) StartSpan(name string) SpanRef {
	return t.startAt(name, time.Since(t.t0))
}

func (t *Trace) startAt(name string, at time.Duration) SpanRef {
	parent := t.stack[len(t.stack)-1]
	idx := int32(len(t.spans))
	t.spans = append(t.spans, Span{Name: name, Start: at, Parent: parent})
	t.stack = append(t.stack, idx)
	return SpanRef{t: t, idx: idx}
}

// End closes the span and any still-open descendants.
func (r SpanRef) End() {
	r.t.endAt(r.idx, time.Since(r.t.t0))
}

func (t *Trace) endAt(idx int32, at time.Duration) {
	// Pop the stack down to (and including) idx, closing everything on
	// the way so no descendant is left dangling.
	for len(t.stack) > 0 {
		top := t.stack[len(t.stack)-1]
		t.stack = t.stack[:len(t.stack)-1]
		sp := &t.spans[top]
		if !sp.Done {
			sp.End = at
			sp.Done = true
		}
		if top == idx {
			return
		}
	}
}

// SetRows annotates the span with a row count.
func (r SpanRef) SetRows(n int64) { r.t.spans[r.idx].Rows = n }

// SetAttr annotates the span with a free-form string.
func (r SpanRef) SetAttr(a string) { r.t.spans[r.idx].Attr = a }

// Phase closes the currently open engine phase (if any) and opens the
// next as a direct child of the root, sharing a single clock read — the
// engine's pipeline phases are sequential, so the boundary instant is
// both the end of one and the start of the next.
func (t *Trace) Phase(name string) SpanRef {
	at := time.Since(t.t0)
	if t.phase >= 0 {
		// Close the previous phase (and anything nested in it).
		t.endAt(t.phase, at)
	}
	r := t.startAt(name, at)
	t.phase = r.idx
	return r
}

// EndPhase closes the currently open engine phase span.
func (t *Trace) EndPhase() {
	if t.phase >= 0 {
		t.endAt(t.phase, time.Since(t.t0))
		t.phase = -1
	}
}

// Finish closes every open span, the root included. It is idempotent.
func (t *Trace) Finish() {
	if t.fin {
		return
	}
	t.endAt(0, time.Since(t.t0))
	t.phase = -1
	t.fin = true
}

// Finished reports whether Finish has run.
func (t *Trace) Finished() bool { return t.fin }

// Total returns the root span's duration.
func (t *Trace) Total() time.Duration { return t.spans[0].End }

// Spans returns the trace's spans in start order (the root is first).
// The returned slice is the trace's own storage: callers must not
// mutate it, and must only call this on finished traces.
func (t *Trace) Spans() []Span { return t.spans }

// FindSpan returns the first span with the given name, or nil.
func (t *Trace) FindSpan(name string) *Span {
	for i := range t.spans {
		if t.spans[i].Name == name {
			return &t.spans[i]
		}
	}
	return nil
}

// Validate checks the structural invariants of a finished trace: every
// span closed with End ≥ Start, every child contained in its parent's
// interval, and sibling starts monotone in creation order. It returns
// the first violation found.
func (t *Trace) Validate() error {
	if !t.fin {
		return fmt.Errorf("obs: trace %q not finished", t.Statement)
	}
	if len(t.spans) == 0 || t.spans[0].Parent != -1 {
		return fmt.Errorf("obs: trace %q has no root span", t.Statement)
	}
	lastStart := make(map[int32]time.Duration, len(t.spans))
	for i := range t.spans {
		sp := &t.spans[i]
		if !sp.Done {
			return fmt.Errorf("obs: span %q is unfinished", sp.Name)
		}
		if sp.End < sp.Start {
			return fmt.Errorf("obs: span %q ends (%v) before it starts (%v)", sp.Name, sp.End, sp.Start)
		}
		if i == 0 {
			continue
		}
		if sp.Parent < 0 || int(sp.Parent) >= i {
			return fmt.Errorf("obs: span %q has invalid parent %d", sp.Name, sp.Parent)
		}
		p := &t.spans[sp.Parent]
		if sp.Start < p.Start || sp.End > p.End {
			return fmt.Errorf("obs: span %q [%v,%v] escapes parent %q [%v,%v]",
				sp.Name, sp.Start, sp.End, p.Name, p.Start, p.End)
		}
		if prev, ok := lastStart[sp.Parent]; ok && sp.Start < prev {
			return fmt.Errorf("obs: span %q starts (%v) before its elder sibling (%v)", sp.Name, sp.Start, prev)
		}
		lastStart[sp.Parent] = sp.Start
	}
	return nil
}

// String renders the span tree with timings, one span per line.
func (t *Trace) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "trace %q", t.Statement)
	if t.Provenance != "" {
		fmt.Fprintf(&sb, " plan=%s", t.Provenance)
	}
	if t.Requests > 0 {
		fmt.Fprintf(&sb, " requests=%d", t.Requests)
	}
	if t.Err != "" {
		fmt.Fprintf(&sb, " err=%q", t.Err)
	}
	sb.WriteByte('\n')
	depth := make([]int, len(t.spans))
	for i := range t.spans {
		sp := &t.spans[i]
		if i > 0 {
			depth[i] = depth[sp.Parent] + 1
		}
		sb.WriteString(strings.Repeat("  ", depth[i]+1))
		fmt.Fprintf(&sb, "%s %v", sp.Name, sp.Duration())
		if sp.Rows > 0 {
			fmt.Fprintf(&sb, " rows=%d", sp.Rows)
		}
		if sp.Attr != "" {
			fmt.Fprintf(&sb, " [%s]", sp.Attr)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
