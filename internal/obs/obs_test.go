package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
)

func TestTracePhasesWellFormed(t *testing.T) {
	tr := NewTrace("SELECT 1")
	tr.Phase("parse")
	tr.Phase("plan").SetAttr("fresh")
	ex := tr.Phase("execute")
	ex.SetRows(42)
	tr.Finish()

	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(tr.Spans()); got != 4 { // root + 3 phases
		t.Fatalf("got %d spans, want 4", got)
	}
	if sp := tr.FindSpan("execute"); sp == nil || sp.Rows != 42 {
		t.Fatalf("execute span = %+v", sp)
	}
	if sp := tr.FindSpan("plan"); sp == nil || sp.Attr != "fresh" {
		t.Fatalf("plan span = %+v", sp)
	}
	// Phases partition the root: each starts where its elder ended.
	spans := tr.Spans()
	for i := 2; i < len(spans); i++ {
		if spans[i].Start != spans[i-1].End {
			t.Fatalf("phase %q starts at %v, elder ended at %v", spans[i].Name, spans[i].Start, spans[i-1].End)
		}
	}
}

func TestTraceNestedSpans(t *testing.T) {
	tr := NewTrace("x")
	p := tr.Phase("plan")
	inner := tr.StartSpan("optimize")
	inner.End()
	_ = p
	tr.Phase("execute")
	tr.Finish()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	sp := tr.FindSpan("optimize")
	if sp == nil {
		t.Fatal("optimize span missing")
	}
	if parent := tr.Spans()[sp.Parent].Name; parent != "plan" {
		t.Fatalf("optimize parent = %q, want plan", parent)
	}
}

func TestTraceFinishClosesOpenSpans(t *testing.T) {
	tr := NewTrace("x")
	tr.StartSpan("a")
	tr.StartSpan("b") // left open on purpose
	tr.Finish()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	tr.Finish() // idempotent
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsUnfinished(t *testing.T) {
	tr := NewTrace("x")
	if err := tr.Validate(); err == nil {
		t.Fatal("unfinished trace validated")
	}
}

func TestTraceRingEvictsOldest(t *testing.T) {
	r := NewTraceRing(3)
	for i := 0; i < 5; i++ {
		tr := NewTrace(fmt.Sprintf("q%d", i))
		tr.Finish()
		r.Add(tr)
	}
	got := r.Traces()
	if len(got) != 3 {
		t.Fatalf("ring kept %d, want 3", len(got))
	}
	for i, tr := range got {
		want := fmt.Sprintf("q%d", i+2)
		if tr.Statement != want {
			t.Errorf("ring[%d] = %q, want %q", i, tr.Statement, want)
		}
	}
	if r.Added() != 5 {
		t.Fatalf("Added = %d, want 5", r.Added())
	}
}

func TestRegistryCountersAndSnapshot(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.hits")
	c.Inc()
	c.Add(2)
	if r.Counter("a.hits") != c {
		t.Fatal("get-or-create returned a different counter")
	}
	r.Gauge("a.level").Set(-7)
	r.FloatCounter("a.cost").Add(1.5)
	r.FloatCounter("a.cost").Add(2.25)
	h := r.Histogram("a.lat", []float64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(5000)

	snap := r.Snapshot()
	if snap["a.hits"] != int64(3) {
		t.Errorf("hits = %v", snap["a.hits"])
	}
	if snap["a.level"] != int64(-7) {
		t.Errorf("level = %v", snap["a.level"])
	}
	if snap["a.cost"] != 3.75 {
		t.Errorf("cost = %v", snap["a.cost"])
	}
	hs, ok := snap["a.lat"].(HistogramSnapshot)
	if !ok {
		t.Fatalf("lat = %T", snap["a.lat"])
	}
	if hs.Count != 3 || hs.Sum != 5055 {
		t.Errorf("lat snapshot = %+v", hs)
	}
	wantCounts := []int64{1, 1, 1}
	for i, w := range wantCounts {
		if hs.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, hs.Counts[i], w)
		}
	}
}

func TestRegistryHandlerServesJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Add(9)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got["x"] != float64(9) {
		t.Fatalf("handler served %v", got)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("c").Inc()
				r.FloatCounter("f").Add(0.5)
				r.Histogram("h", DefaultLatencyBuckets).Observe(float64(i))
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Fatalf("c = %d, want 8000", got)
	}
	if got := r.FloatCounter("f").Value(); got != 4000 {
		t.Fatalf("f = %v, want 4000", got)
	}
}

func TestDecisionLogAppendAndWrap(t *testing.T) {
	l := NewDecisionLog(3)
	for i := 0; i < 5; i++ {
		l.Append(Decision{Kind: "create", Index: fmt.Sprintf("ix%d", i)})
	}
	recs := l.Records()
	if len(recs) != 3 {
		t.Fatalf("kept %d, want 3", len(recs))
	}
	for i, d := range recs {
		if d.Seq != int64(i+3) {
			t.Errorf("rec %d seq = %d, want %d", i, d.Seq, i+3)
		}
	}
	if _, err := l.JSON(); err != nil {
		t.Fatal(err)
	}
}

func TestObsSamplingAndContext(t *testing.T) {
	o := New()
	if tr := o.StartStatementTrace("q"); tr != nil {
		t.Fatal("tracing disabled but trace started")
	}
	o.EnableTracing(4, 2)
	var traced int
	for i := 0; i < 10; i++ {
		if tr := o.StartStatementTrace("q"); tr != nil {
			traced++
			o.FinishTrace(tr)
		}
	}
	if traced != 5 {
		t.Fatalf("stride 2 traced %d of 10", traced)
	}
	if got := len(o.Traces()); got != 4 {
		t.Fatalf("ring kept %d, want 4", got)
	}

	tr := NewTrace("outer")
	ctx := WithTrace(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatal("context round-trip failed")
	}
	if FromContext(context.Background()) != nil {
		t.Fatal("empty context returned a trace")
	}
	o.FinishTrace(nil) // must not panic
}
