// Package difftest is the differential harness for the plan cache: the
// cache is an optimization, so every caching mode must be semantically
// invisible. The same workload is replayed against fresh databases in
// CacheExact, CacheRebind and CacheOff modes, and the result sets AND
// the tuner's structured decision logs are required to agree.
package difftest

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"onlinetuner/internal/core"
	"onlinetuner/internal/datum"
	"onlinetuner/internal/engine"
	"onlinetuner/internal/obs"
	"onlinetuner/internal/tpch"
)

const (
	scale    = 0.1
	dataSeed = 42
)

// replay loads the same TPC-H instance into a fresh database, attaches
// an online tuner, sets the cache mode, and executes every statement,
// returning the per-statement canonical results, the tuner decision
// log, and the database for further inspection.
func replay(t *testing.T, mode engine.CacheMode, stmts []string) ([]string, []obs.Decision, *engine.DB, *core.Tuner) {
	return replayAt(t, mode, 0, stmts)
}

// replayAt is replay with an explicit intra-query worker budget (0 =
// GOMAXPROCS, the engine default).
func replayAt(t *testing.T, mode engine.CacheMode, workers int, stmts []string) ([]string, []obs.Decision, *engine.DB, *core.Tuner) {
	t.Helper()
	db := engine.OpenConfig(engine.Config{ExecWorkers: workers})
	db.SetPlanCacheMode(mode)
	if err := tpch.NewGenerator(scale, dataSeed).Load(db); err != nil {
		t.Fatal(err)
	}
	tn := core.Attach(db, core.DefaultOptions())
	out := make([]string, len(stmts))
	for i, s := range stmts {
		rs, _, err := db.Exec(s)
		if err != nil {
			t.Fatalf("mode %v stmt %d %q: %v", mode, i, s, err)
		}
		out[i] = canon(rs.Rows, rs.Affected)
	}
	return out, tn.Decisions(), db, tn
}

// canon renders a result in execution order, byte for byte.
func canon(rows []datum.Row, affected int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "affected=%d\n", affected)
	for _, r := range rows {
		for i, v := range r {
			if i > 0 {
				sb.WriteByte('|')
			}
			fmt.Fprintf(&sb, "%v", v)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// sortLines reduces a canonical result to an order-insensitive form.
func sortLines(s string) string {
	lines := strings.Split(s, "\n")
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

func sameDecisions(t *testing.T, name string, a, b []obs.Decision) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: decision logs diverge: %d vs %d records\nA: %+v\nB: %+v", name, len(a), len(b), a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("%s: decision %d diverges:\nA: %+v\nB: %+v", name, i, a[i], b[i])
		}
	}
}

// TestDifferentialFixedWorkload replays one batch of the 22 TPC-H query
// templates three times with FIXED parameters. All three cache modes
// must produce byte-identical per-statement results in execution order,
// and the tuner must make the identical sequence of decisions — same
// indexes, same Δ evidence, same reasons, at the same query counts.
func TestDifferentialFixedWorkload(t *testing.T) {
	batch := tpch.NewGenerator(scale, 7).Batch()
	var stmts []string
	for r := 0; r < 3; r++ {
		stmts = append(stmts, batch...)
	}

	resExact, decExact, dbExact, _ := replay(t, engine.CacheExact, stmts)
	resRebind, decRebind, _, _ := replay(t, engine.CacheRebind, stmts)
	resOff, decOff, _, _ := replay(t, engine.CacheOff, stmts)

	for i := range stmts {
		if resExact[i] != resOff[i] {
			t.Fatalf("stmt %d %q: exact differs from off:\n%s\nvs\n%s", i, stmts[i], resExact[i], resOff[i])
		}
		if resRebind[i] != resOff[i] {
			t.Fatalf("stmt %d %q: rebind differs from off:\n%s\nvs\n%s", i, stmts[i], resRebind[i], resOff[i])
		}
	}
	sameDecisions(t, "exact vs off", decExact, decOff)
	sameDecisions(t, "rebind vs off", decRebind, decOff)

	// The comparison only means something if caching actually happened.
	if st := dbExact.PlanCacheStats(); st.Hits == 0 {
		t.Errorf("exact mode never hit the cache: %+v", st)
	}
}

// TestDifferentialVaryingWorkloadWithDML is the harder variant: three
// batches with FRESH parameters per template, interleaved with
// disruptive updates and refresh streams, then a parameter sweep on one
// template to force generic-plan rebinds. CacheExact must stay
// byte-identical to CacheOff (same decisions too); CacheRebind may pick
// differently-costed but equivalent plans, so its results are compared
// as order-insensitive sets — and it must actually rebind.
func TestDifferentialVaryingWorkloadWithDML(t *testing.T) {
	g := tpch.NewGenerator(scale, 11)
	var stmts []string
	for r := 0; r < 3; r++ {
		stmts = append(stmts, g.Batch()...)
		stmts = append(stmts, g.DisruptiveUpdates(4)...)
		stmts = append(stmts, g.RefreshInsert(2)...)
		stmts = append(stmts, g.RefreshDelete(1)...)
	}
	// Parameter sweep: same template, different literals, back to back.
	for i := 0; i < 15; i++ {
		stmts = append(stmts, g.Query(6))
	}

	resExact, decExact, _, _ := replay(t, engine.CacheExact, stmts)
	resRebind, _, dbRebind, _ := replay(t, engine.CacheRebind, stmts)
	resOff, decOff, _, _ := replay(t, engine.CacheOff, stmts)

	for i := range stmts {
		if resExact[i] != resOff[i] {
			t.Fatalf("stmt %d %q: exact differs from off:\n%s\nvs\n%s", i, stmts[i], resExact[i], resOff[i])
		}
		if sortLines(resRebind[i]) != sortLines(resOff[i]) {
			t.Fatalf("stmt %d %q: rebind result set differs from off:\n%s\nvs\n%s", i, stmts[i], resRebind[i], resOff[i])
		}
	}
	sameDecisions(t, "exact vs off", decExact, decOff)

	if st := dbRebind.PlanCacheStats(); st.RebindHits == 0 {
		t.Errorf("rebind mode never rebound a generic plan: %+v", st)
	}
}

// TestDifferentialParallelExecutor replays the fixed workload (with DML
// interleaved) at ExecWorkers 1 and 4: the morsel-parallel executor must
// be byte-identical to the sequential one in execution order, and the
// tuner — which observes estimated costs, unchanged by parallelism —
// must make the identical decision sequence.
func TestDifferentialParallelExecutor(t *testing.T) {
	g := tpch.NewGenerator(scale, 19)
	var stmts []string
	for r := 0; r < 2; r++ {
		stmts = append(stmts, g.Batch()...)
		stmts = append(stmts, g.DisruptiveUpdates(4)...)
		stmts = append(stmts, g.RefreshInsert(2)...)
	}

	resSeq, decSeq, _, _ := replayAt(t, engine.CacheOff, 1, stmts)
	resPar, decPar, _, _ := replayAt(t, engine.CacheOff, 4, stmts)

	for i := range stmts {
		if resSeq[i] != resPar[i] {
			t.Fatalf("stmt %d %q: parallel differs from sequential:\n%s\nvs\n%s",
				i, stmts[i], resPar[i], resSeq[i])
		}
	}
	sameDecisions(t, "parallel vs sequential", decPar, decSeq)
}

// replayEngine is replayAt with an explicit execution engine mode
// ("row" | "vector" | "auto").
func replayEngine(t *testing.T, workers int, engineMode string, stmts []string) ([]string, []obs.Decision, *engine.DB) {
	t.Helper()
	db := engine.OpenConfig(engine.Config{ExecWorkers: workers, ExecEngine: engineMode})
	db.SetPlanCacheMode(engine.CacheOff)
	if err := tpch.NewGenerator(scale, dataSeed).Load(db); err != nil {
		t.Fatal(err)
	}
	tn := core.Attach(db, core.DefaultOptions())
	out := make([]string, len(stmts))
	for i, s := range stmts {
		rs, _, err := db.Exec(s)
		if err != nil {
			t.Fatalf("engine %s workers %d stmt %d %q: %v", engineMode, workers, i, s, err)
		}
		out[i] = canon(rs.Rows, rs.Affected)
	}
	return out, tn.Decisions(), db
}

// stringPredicateBatch exercises the paths the TPC-H templates do not:
// LIKE in every shape class (prefix, suffix, contains, generic with _),
// NOT LIKE, IN-style OR chains and BETWEEN-style range pairs — the
// predicates the vectorized engine compiles to prefiltered kernels.
func stringPredicateBatch() []string {
	return []string{
		"SELECT p_partkey, p_name FROM part WHERE p_name LIKE 'part name 0%'",
		"SELECT COUNT(*) FROM part WHERE p_type LIKE '%BRASS'",
		"SELECT COUNT(*) FROM part WHERE p_type LIKE 'PROMO%'",
		"SELECT COUNT(*) FROM part WHERE p_container LIKE '%CASE%'",
		"SELECT COUNT(*) FROM orders WHERE o_orderpriority NOT LIKE '_-URGENT'",
		"SELECT COUNT(*) FROM orders WHERE o_orderpriority LIKE '_-_IGH'",
		"SELECT l_returnflag, COUNT(*), SUM(l_extendedprice) FROM lineitem WHERE l_shipmode LIKE '%AI%' GROUP BY l_returnflag",
		"SELECT COUNT(*) FROM lineitem WHERE l_quantity >= 10 AND l_quantity <= 20",
		"SELECT COUNT(*) FROM lineitem WHERE l_shipmode = 'AIR' OR l_shipmode = 'RAIL' OR l_shipmode = 'SHIP'",
	}
}

// TestDifferentialVectorized replays the TPC-H workload (DML and string
// predicates interleaved) under every engine mode at ExecWorkers 1 and
// 4, with forced row + sequential as the reference. Results and tuner
// decision logs must be byte-identical everywhere; EXPLAIN ANALYZE
// actuals (rows, scanned, pages) must agree too, with only the per-
// operator engine tag and timings allowed to differ.
func TestDifferentialVectorized(t *testing.T) {
	g := tpch.NewGenerator(scale, 23)
	var stmts []string
	for r := 0; r < 2; r++ {
		stmts = append(stmts, g.Batch()...)
		stmts = append(stmts, stringPredicateBatch()...)
		stmts = append(stmts, g.DisruptiveUpdates(4)...)
		stmts = append(stmts, g.RefreshInsert(2)...)
	}
	probes := []string{
		"SELECT COUNT(*) FROM part WHERE p_type LIKE 'PROMO%'",
		"SELECT l_returnflag, SUM(l_extendedprice), AVG(l_discount) FROM lineitem WHERE l_quantity >= 5 GROUP BY l_returnflag",
	}

	refRes, refDec, refDB := replayEngine(t, 1, "row", stmts)
	refAnalyses := analyzeProbes(t, refDB, probes)

	cases := []struct {
		workers int
		mode    string
	}{
		{1, "vector"}, {1, "auto"}, {4, "row"}, {4, "vector"}, {4, "auto"},
	}
	for _, c := range cases {
		name := fmt.Sprintf("engine=%s workers=%d", c.mode, c.workers)
		res, dec, db := replayEngine(t, c.workers, c.mode, stmts)
		for i := range stmts {
			if res[i] != refRes[i] {
				t.Fatalf("%s stmt %d %q differs from row/sequential:\n%s\nvs\n%s",
					name, i, stmts[i], res[i], refRes[i])
			}
		}
		sameDecisions(t, name+" vs row/sequential", dec, refDec)
		for pi, a := range analyzeProbes(t, db, probes) {
			sameActuals(t, name, probes[pi], a, refAnalyses[pi])
			if c.mode == "row" {
				for _, n := range a.Nodes {
					if n.Engine == "vectorized" {
						t.Errorf("%s: %q operator %q reports vectorized under forced row mode", name, probes[pi], n.Label)
					}
				}
			}
		}
	}

	// The comparison only means something if the vectorized path actually
	// engaged: under forced vector mode the probe scans must report it.
	_, _, vecDB := replayEngine(t, 1, "vector", stmts[:0])
	sawVec := false
	for _, a := range analyzeProbes(t, vecDB, probes) {
		for _, n := range a.Nodes {
			if n.Engine == "vectorized" {
				sawVec = true
			}
		}
	}
	if !sawVec {
		t.Error("forced vector mode never reported a vectorized operator in EXPLAIN ANALYZE")
	}
}

// replayRules is replayAt with an explicit optimizer rule set and the
// count of statements on which at least one rewrite rule fired.
func replayRules(t *testing.T, workers int, rules string, stmts []string) ([]string, []obs.Decision, int) {
	t.Helper()
	db := engine.OpenConfig(engine.Config{ExecWorkers: workers, Rules: rules})
	db.SetPlanCacheMode(engine.CacheOff)
	if err := tpch.NewGenerator(scale, dataSeed).Load(db); err != nil {
		t.Fatal(err)
	}
	tn := core.Attach(db, core.DefaultOptions())
	out := make([]string, len(stmts))
	applied := 0
	for i, s := range stmts {
		rs, info, err := db.Exec(s)
		if err != nil {
			t.Fatalf("rules %s stmt %d %q: %v", rules, i, s, err)
		}
		if info.Result != nil && len(info.Result.RulesApplied) > 0 {
			applied++
		}
		out[i] = canon(rs.Rows, rs.Affected)
	}
	return out, tn.Decisions(), applied
}

// TestDifferentialRules replays the TPC-H workload — whose Q4, Q18 and
// Q22 templates carry IN / EXISTS / NOT EXISTS subqueries, and whose
// templates end in ORDER BY ... LIMIT — with the full rewrite pack on
// vs every rule off, at 1 and 4 workers. The rewrite pack is a cost
// optimization: per-statement results must be byte-identical in
// execution order under every setting. (Tuner decisions are NOT
// compared: the rules legitimately change estimated costs and what-if
// candidates, which is their point.)
func TestDifferentialRules(t *testing.T) {
	g := tpch.NewGenerator(scale, 29)
	var stmts []string
	for r := 0; r < 2; r++ {
		stmts = append(stmts, g.Batch()...)
		stmts = append(stmts, g.DisruptiveUpdates(4)...)
		stmts = append(stmts, g.RefreshInsert(2)...)
	}

	refRes, _, refApplied := replayRules(t, 1, "none", stmts)
	if refApplied != 0 {
		t.Fatalf("rules=none still applied rewrites on %d statements", refApplied)
	}
	for _, c := range []struct {
		workers int
		rules   string
	}{
		{1, "all"}, {4, "all"}, {4, "none"}, {1, "topn,minmax"},
	} {
		name := fmt.Sprintf("rules=%s workers=%d", c.rules, c.workers)
		res, _, applied := replayRules(t, c.workers, c.rules, stmts)
		for i := range stmts {
			if res[i] != refRes[i] {
				t.Fatalf("%s stmt %d %q differs from rules-off/sequential:\n%s\nvs\n%s",
					name, i, stmts[i], res[i], refRes[i])
			}
		}
		// The comparison only means something if the pack actually fired.
		if c.rules == "all" && applied == 0 {
			t.Errorf("%s: no statement had a rewrite rule applied", name)
		}
	}
}

// analyzeProbes runs EXPLAIN ANALYZE for each probe statement.
func analyzeProbes(t *testing.T, db *engine.DB, probes []string) []*engine.Analysis {
	t.Helper()
	out := make([]*engine.Analysis, len(probes))
	for i, q := range probes {
		a, err := db.ExplainAnalyze(q)
		if err != nil {
			t.Fatalf("EXPLAIN ANALYZE %q: %v", q, err)
		}
		out[i] = a
	}
	return out
}

// sameActuals compares two analyses of the same statement, ignoring the
// fields legitimately allowed to differ across engine modes: wall-clock
// timings and the per-operator engine tag.
func sameActuals(t *testing.T, name, q string, a, b *engine.Analysis) {
	t.Helper()
	if len(a.Nodes) != len(b.Nodes) {
		t.Fatalf("%s: %q plans diverge: %d vs %d operators", name, q, len(a.Nodes), len(b.Nodes))
	}
	for i := range a.Nodes {
		x, y := a.Nodes[i], b.Nodes[i]
		if x.Depth != y.Depth || x.Label != y.Label || x.EstCost != y.EstCost || x.EstRows != y.EstRows ||
			x.ActualRows != y.ActualRows || x.Scanned != y.Scanned || x.Pages != y.Pages {
			t.Errorf("%s: %q operator %d actuals diverge:\nA: %+v\nB: %+v", name, q, i, x, y)
		}
	}
}

// TestTunerSnapshotReconciliationUnderWorkload reruns a short workload
// and checks the registry snapshot agrees exactly with both the plan
// cache's and the tuner's own accessors — across packages, after real
// tuning activity.
func TestTunerSnapshotReconciliationUnderWorkload(t *testing.T) {
	g := tpch.NewGenerator(scale, 3)
	stmts := g.Batch()
	res, decs, db, tn := replay(t, engine.CacheExact, append(stmts, stmts...))
	if len(res) == 0 {
		t.Fatal("no statements ran")
	}

	snap := db.Observability().Reg.Snapshot()
	pcs := db.PlanCacheStats()
	if snap["plancache.hits"] != pcs.Hits || snap["plancache.misses"] != pcs.Misses {
		t.Errorf("plan cache counters drifted: snapshot %v/%v, stats %+v",
			snap["plancache.hits"], snap["plancache.misses"], pcs)
	}
	m := tn.Metrics()
	if snap["tuner.queries"] != m.Queries {
		t.Errorf("tuner.queries = %v, Metrics says %d", snap["tuner.queries"], m.Queries)
	}
	if snap["tuner.builds_started"] != m.BuildsStarted {
		t.Errorf("tuner.builds_started = %v, Metrics says %d", snap["tuner.builds_started"], m.BuildsStarted)
	}
	if snap["tuner.decisions"] != int64(len(decs)) {
		t.Errorf("tuner.decisions = %v but log holds %d", snap["tuner.decisions"], len(decs))
	}
}
