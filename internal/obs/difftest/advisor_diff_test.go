package difftest

import (
	"testing"

	"onlinetuner/internal/core"
	"onlinetuner/internal/engine"
	"onlinetuner/internal/tpch"
	"onlinetuner/internal/tuner"
	"onlinetuner/internal/workload"
)

// advisorReplay runs the same fixed workload as replay, but drives the
// online tuner through the racing harness's Advisor interface instead of
// attaching core.Tuner directly.
func advisorReplay(t *testing.T, stmts []string) ([]string, *tuner.OnlinePT, *engine.DB) {
	t.Helper()
	db := engine.OpenConfig(engine.Config{})
	db.SetPlanCacheMode(engine.CacheExact)
	if err := tpch.NewGenerator(scale, dataSeed).Load(db); err != nil {
		t.Fatal(err)
	}
	adv := tuner.NewOnlinePT(core.DefaultOptions())
	w := &workload.Workload{Name: "difftest", Statements: stmts}
	if err := adv.Start(db, w); err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(stmts))
	for i, s := range stmts {
		if _, err := adv.BeforeStatement(i); err != nil {
			t.Fatalf("BeforeStatement(%d): %v", i, err)
		}
		rs, info, err := db.Exec(s)
		if err != nil {
			t.Fatalf("advisor stmt %d %q: %v", i, s, err)
		}
		if _, err := adv.AfterStatement(i, info); err != nil {
			t.Fatalf("AfterStatement(%d): %v", i, err)
		}
		out[i] = canon(rs.Rows, rs.Affected)
	}
	return out, adv, db
}

// TestDifferentialAdvisorShell proves the racing harness abstraction
// changes nothing: the core tuner driven through the Advisor interface
// must produce byte-identical per-statement results, an identical
// structured decision log, and identical physical-change accounting
// compared to a direct core.Attach replay of the same fixed workload.
func TestDifferentialAdvisorShell(t *testing.T) {
	batch := tpch.NewGenerator(scale, 7).Batch()
	var stmts []string
	for r := 0; r < 3; r++ {
		stmts = append(stmts, batch...)
	}

	resDirect, decDirect, _, tnDirect := replay(t, engine.CacheExact, stmts)
	resShell, adv, dbShell := advisorReplay(t, stmts)

	for i := range stmts {
		if resShell[i] != resDirect[i] {
			t.Fatalf("stmt %d %q: advisor shell differs from direct run:\n%s\nvs\n%s",
				i, stmts[i], resShell[i], resDirect[i])
		}
	}
	sameDecisions(t, "advisor shell vs direct", adv.Decisions(), decDirect)

	md, ms := tnDirect.Metrics(), adv.Metrics()
	if md.TransitionCost != ms.TransitionCost {
		t.Errorf("transition cost diverged: direct %.3f, shell %.3f", md.TransitionCost, ms.TransitionCost)
	}
	if md.BuildsStarted != ms.BuildsStarted || md.BuildsCompleted != ms.BuildsCompleted ||
		md.BuildsAborted != ms.BuildsAborted || md.BuildsFailed != ms.BuildsFailed {
		t.Errorf("build counters diverged: direct %+v, shell %+v", md, ms)
	}
	if md.Queries != ms.Queries {
		t.Errorf("query counts diverged: direct %d, shell %d", md.Queries, ms.Queries)
	}

	// The comparison only means something if the tuner actually acted.
	c := adv.Counters()
	if c.IndexesCreated == 0 {
		t.Errorf("tuner never created an index on the fixed workload: %+v", c)
	}
	if c.BuildsStarted != c.BuildsCompleted+c.BuildsAborted+c.BuildsFailed {
		t.Errorf("advisor counters do not reconcile: %+v", c)
	}
	_ = dbShell
}
