package server

import (
	"bufio"
	"fmt"
	"net"
	"time"
)

// Client is a minimal synchronous wire-protocol client: one request in
// flight per connection, responses matched by request ID. It is what
// the integration tests, the chaos suite, the serve benchmark, and the
// onlinetuner client shell all speak through — the same bytes a real
// driver would send.
type Client struct {
	conn     net.Conn
	br       *bufio.Reader
	bw       *bufio.Writer
	nextID   uint64
	maxFrame int
	// Timeout bounds one request round trip (write + response read);
	// zero means no deadline.
	Timeout time.Duration
}

// Dial connects to a daemon.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	return &Client{
		conn:     conn,
		br:       bufio.NewReader(conn),
		bw:       bufio.NewWriter(conn),
		maxFrame: DefaultMaxFrame,
	}
}

// Do sends one request (assigning its ID) and reads its response. A
// response whose ID does not echo the request's is a protocol error —
// with one exception: the server may send an ID-0 unsolicited error
// (idle timeout, shutdown refusal), which Do surfaces as that typed
// error.
func (c *Client) Do(req *Request) (*Response, error) {
	c.nextID++
	req.ID = c.nextID
	body, err := EncodeRequest(req)
	if err != nil {
		return nil, err
	}
	if c.Timeout > 0 {
		_ = c.conn.SetDeadline(time.Now().Add(c.Timeout))
	}
	if err := WriteFrame(c.bw, body); err != nil {
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	respBody, err := ReadFrame(c.br, c.maxFrame)
	if err != nil {
		return nil, err
	}
	resp, err := DecodeResponse(respBody)
	if err != nil {
		return nil, err
	}
	if resp.ID != req.ID {
		if resp.ID == 0 && resp.Error != nil {
			return nil, resp.Error
		}
		return nil, fmt.Errorf("server: response id %d for request %d", resp.ID, req.ID)
	}
	return resp, nil
}

// result unwraps a response into its statement result or typed error.
func result(resp *Response, err error) (*StmtResult, error) {
	if err != nil {
		return nil, err
	}
	if resp.Error != nil {
		return nil, resp.Error
	}
	return &resp.StmtResult, nil
}

// Query runs a read statement and returns its rows.
func (c *Client) Query(sqlText string) (*StmtResult, error) {
	return result(c.Do(&Request{Op: OpQuery, SQL: sqlText}))
}

// Exec runs a statement and returns its result (affected count for
// DML). Inside an open transaction the statement is buffered; the
// returned result is empty and the response's Queued flag was set.
func (c *Client) Exec(sqlText string) (*StmtResult, error) {
	return result(c.Do(&Request{Op: OpExec, SQL: sqlText}))
}

// Explain returns the statement's plan lines without executing it.
func (c *Client) Explain(sqlText string) ([]string, error) {
	res, err := result(c.Do(&Request{Op: OpExplain, SQL: sqlText}))
	if err != nil {
		return nil, err
	}
	lines := make([]string, 0, len(res.Rows))
	for _, row := range res.Rows {
		if len(row) > 0 {
			lines = append(lines, row[0])
		}
	}
	return lines, nil
}

// Prepare validates sqlText on the server and names it for
// ExecPrepared.
func (c *Client) Prepare(name, sqlText string) error {
	_, err := result(c.Do(&Request{Op: OpPrepare, Name: name, SQL: sqlText}))
	return err
}

// ExecPrepared runs a previously prepared statement.
func (c *Client) ExecPrepared(name string) (*StmtResult, error) {
	return result(c.Do(&Request{Op: OpExecPrepared, Name: name}))
}

// Begin opens a transaction scope on the session.
func (c *Client) Begin() error {
	_, err := result(c.Do(&Request{Op: OpBegin}))
	return err
}

// Commit executes the buffered scope atomically and returns the
// per-statement results.
func (c *Client) Commit() ([]StmtResult, error) {
	resp, err := c.Do(&Request{Op: OpCommit})
	if err != nil {
		return nil, err
	}
	if resp.Error != nil {
		return resp.Results, resp.Error
	}
	return resp.Results, nil
}

// Rollback discards the buffered scope.
func (c *Client) Rollback() error {
	_, err := result(c.Do(&Request{Op: OpRollback}))
	return err
}

// Ping round-trips a no-op frame.
func (c *Client) Ping() error {
	_, err := result(c.Do(&Request{Op: OpPing}))
	return err
}

// Close ends the session cleanly (best effort) and closes the
// connection.
func (c *Client) Close() error {
	_, _ = c.Do(&Request{Op: OpClose})
	return c.conn.Close()
}
