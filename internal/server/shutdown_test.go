package server

import (
	"context"
	"fmt"
	"testing"
	"time"

	"onlinetuner/internal/engine"
	"onlinetuner/internal/wal"
)

// admittedCount reads the server.admitted counter.
func admittedCount(db *engine.DB) int64 {
	return db.Observability().Reg.Snapshot()["server.admitted"].(int64)
}

// TestServeGracefulShutdownOrdering proves the drain sequence end to
// end on a durable database:
//
//  1. a statement in flight when Shutdown begins completes and its
//     response reaches the client;
//  2. connections arriving during the drain get the typed
//     shutting_down error frame (not a bare connection refusal), as do
//     new statements on existing sessions;
//  3. the WAL checkpoint runs after the drain — a reopen restores from
//     the snapshot with zero records to replay.
func TestServeGracefulShutdownOrdering(t *testing.T) {
	dir := t.TempDir()
	db, err := engine.OpenDurable(engine.Config{Dir: dir, Sync: wal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	db.MustExec("CREATE TABLE ledger (id INT, v INT, PRIMARY KEY (id))")
	srv, addr := startServer(t, db, Config{})

	c := dial(t, addr)
	for i := 0; i < 50; i++ {
		if _, err := c.Exec(fmt.Sprintf("INSERT INTO ledger VALUES (%d, %d)", i, i)); err != nil {
			t.Fatal(err)
		}
	}

	// Keep the drain open deterministically: the test itself joins the
	// in-flight group, so Shutdown cannot finish until we let go.
	if !srv.beginStmt() {
		t.Fatal("beginStmt refused while running")
	}

	// Launch a real statement and wait until it is admitted (in flight),
	// so the drain flip provably lands while it executes: a COMMIT of a
	// 300-insert transaction scope.
	committer := dial(t, addr)
	if err := committer.Begin(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if _, err := committer.Exec(fmt.Sprintf("INSERT INTO ledger VALUES (%d, %d)", 1000+i, i)); err != nil {
			t.Fatal(err)
		}
	}
	before := admittedCount(db)
	type commitRet struct {
		results []StmtResult
		err     error
	}
	committed := make(chan commitRet, 1)
	go func() {
		res, err := committer.Commit()
		committed <- commitRet{res, err}
	}()
	for i := 0; admittedCount(db) == before; i++ {
		if i > 5000 {
			t.Fatal("commit was never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	shutdownRet := make(chan error, 1)
	go func() { shutdownRet <- srv.Shutdown(context.Background()) }()
	for i := 0; !srv.draining(); i++ {
		if i > 5000 {
			t.Fatal("shutdown never flipped to draining")
		}
		time.Sleep(time.Millisecond)
	}

	// (1) The in-flight commit completes and the client has its results.
	ret := <-committed
	if ret.err != nil {
		t.Fatalf("in-flight commit during drain: %v", ret.err)
	}
	if len(ret.results) != 300 {
		t.Fatalf("in-flight commit returned %d results, want 300", len(ret.results))
	}

	// (2) A late connect is refused with the typed error, over the wire.
	late, err := Dial(addr)
	if err != nil {
		t.Fatalf("late dial should connect (typed refusal, not closed port): %v", err)
	}
	late.Timeout = 10 * time.Second
	if err := late.Ping(); !IsShuttingDown(err) {
		t.Fatalf("late connect: got %v, want shutting_down", err)
	}
	_ = late.Close()
	// A new statement on the established session is refused the same way.
	if _, err := c.Query("SELECT COUNT(*) AS n FROM ledger"); !IsShuttingDown(err) {
		t.Fatalf("statement during drain: got %v, want shutting_down", err)
	}

	// Release the drain; Shutdown must now finish cleanly, checkpoint
	// included.
	srv.endStmt()
	select {
	case err := <-shutdownRet:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("shutdown did not complete after drain released")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// (3) Reopen: the checkpoint means recovery restores a snapshot and
	// replays nothing.
	rdb, err := engine.OpenDurable(engine.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer rdb.Close()
	rec := rdb.Recovery()
	if rec.SnapshotSeq == 0 {
		t.Fatal("recovery found no checkpoint snapshot; shutdown did not checkpoint")
	}
	if rec.ReplayedRecords != 0 {
		t.Fatalf("recovery replayed %d records; shutdown checkpoint should leave none", rec.ReplayedRecords)
	}
	rs, _, err := rdb.Exec("SELECT COUNT(*) AS n FROM ledger")
	if err != nil {
		t.Fatal(err)
	}
	if got := rs.Rows[0][0].String(); got != "350" {
		t.Fatalf("ledger has %s rows after restart, want 350", got)
	}
}

// TestServeShutdownIdempotent: a second Shutdown (or a racing Abort)
// reports cleanly instead of double-draining.
func TestServeShutdownIdempotent(t *testing.T) {
	db := engine.Open()
	srv, _ := startServer(t, db, Config{})
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := srv.Shutdown(context.Background()); err == nil {
		t.Fatal("second shutdown should report already shut down")
	}
	srv.Abort() // must not panic after shutdown
}

// TestServeAbruptKillRecovery is the satellite to the graceful path: no
// drain, no checkpoint — the server is torn down mid-life with Abort +
// Crash, and OpenDurable must still recover every acknowledged write
// from the WAL alone.
func TestServeAbruptKillRecovery(t *testing.T) {
	dir := t.TempDir()
	db, err := engine.OpenDurable(engine.Config{Dir: dir, Sync: wal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	db.MustExec("CREATE TABLE acked (id INT, PRIMARY KEY (id))")
	srv, addr := startServer(t, db, Config{})

	c := dial(t, addr)
	const rows = 120
	for i := 0; i < rows; i++ {
		if _, err := c.Exec(fmt.Sprintf("INSERT INTO acked VALUES (%d)", i)); err != nil {
			t.Fatal(err)
		}
	}

	// Kill without ceremony: server first, then the engine's simulated
	// process death.
	srv.Abort()
	db.Crash()

	rdb, err := engine.OpenDurable(engine.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer rdb.Close()
	if rec := rdb.Recovery(); rec.ReplayedRecords == 0 {
		t.Fatal("abrupt kill should recover by WAL replay, not a snapshot")
	}
	rs, _, err := rdb.Exec("SELECT COUNT(*) AS n FROM acked")
	if err != nil {
		t.Fatal(err)
	}
	if got := rs.Rows[0][0].String(); got != fmt.Sprint(rows) {
		t.Fatalf("acked has %s rows after crash recovery, want %d", got, rows)
	}
}
