package server

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"onlinetuner/internal/engine"
	"onlinetuner/internal/obs"
)

// TestAdmissionGate unit-tests the token semaphore: slot exhaustion,
// bounded queue, queue timeout, and drain cancellation all produce
// typed errors; nothing blocks unboundedly.
func TestAdmissionGate(t *testing.T) {
	reg := obs.NewRegistry()
	a := newAdmission(1, 1, 80*time.Millisecond, reg)

	release, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// One waiter fits in the queue; it should win the slot on release.
	got := make(chan error, 1)
	go func() {
		r, err := a.acquire(context.Background())
		if err == nil {
			r()
		}
		got <- err
	}()
	// Wait until the waiter has actually queued before filling the queue.
	for i := 0; a.queued.Load() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	if a.queued.Load() != 1 {
		t.Fatal("waiter never joined the queue")
	}

	// The queue is full: the next acquire is rejected immediately, typed.
	start := time.Now()
	if _, err := a.acquire(context.Background()); !IsOverload(err) {
		t.Fatalf("queue-full acquire: got %v, want overload", err)
	}
	if d := time.Since(start); d > 50*time.Millisecond {
		t.Fatalf("queue-full rejection took %v; must be immediate", d)
	}

	release()
	if err := <-got; err != nil {
		t.Fatalf("queued waiter: %v", err)
	}

	// Queue timeout: hold the slot past the waiter's patience.
	release, err = a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.acquire(context.Background()); !IsOverload(err) {
		t.Fatalf("timed-out acquire: got %v, want overload", err)
	}

	// Drain cancellation fails waiters fast with the shutdown code.
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := a.acquire(ctx)
		errc <- err
	}()
	for i := 0; a.queued.Load() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errc; !IsShuttingDown(err) {
		t.Fatalf("drained waiter: got %v, want shutting_down", err)
	}
	release()

	snap := reg.Snapshot()
	if n := snap["server.admitted"].(int64); n != 3 {
		t.Fatalf("admitted = %d, want 3", n)
	}
	if n := snap["server.rejected"].(int64); n != 3 {
		t.Fatalf("rejected = %d, want 3", n)
	}
	if h := snap["server.queue_wait_ns"].(obs.HistogramSnapshot); h.Count != 1 {
		t.Fatalf("queue wait observations = %d, want 1", h.Count)
	}
}

// TestServeBackpressureTyped proves overload end to end over TCP: with
// the only admission slot held and the one queue seat taken, a client's
// statement is rejected immediately with the typed backpressure error —
// it does not queue unboundedly, and the session survives to run the
// statement once capacity returns.
func TestServeBackpressureTyped(t *testing.T) {
	db := engine.Open()
	db.MustExec("CREATE TABLE t (a INT, PRIMARY KEY (a))")
	db.MustExec("INSERT INTO t VALUES (1)")
	srv, addr := startServer(t, db, Config{
		AdmitSlots:   1,
		MaxQueue:     1,
		QueueTimeout: 150 * time.Millisecond,
	})

	// Hold the only execution slot (white box: same gate the sessions
	// use).
	release, err := srv.adm.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	waiter := dial(t, addr)
	wret := make(chan error, 1)
	go func() {
		_, err := waiter.Query("SELECT a FROM t")
		wret <- err
	}()
	for i := 0; srv.adm.queued.Load() == 0 && i < 2000; i++ {
		time.Sleep(time.Millisecond)
	}
	if srv.adm.queued.Load() != 1 {
		t.Fatal("wire statement never joined the admission queue")
	}

	// The queue seat is taken: this client is bounced now, typed.
	bounced := dial(t, addr)
	start := time.Now()
	_, err = bounced.Query("SELECT a FROM t")
	if !IsOverload(err) {
		t.Fatalf("overloaded query: got %v, want overload", err)
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("overload rejection took %v; must not wait out the queue timeout", d)
	}

	// Capacity returns; the queued statement completes.
	release()
	if err := <-wret; err != nil {
		t.Fatalf("queued statement after release: %v", err)
	}

	// The bounced session was told to back off, not hung up on: the same
	// connection works once load clears.
	if res, err := bounced.Query("SELECT a FROM t"); err != nil || len(res.Rows) != 1 {
		t.Fatalf("retry after backpressure: %v %v", err, res)
	}

	snap := db.Observability().Reg.Snapshot()
	if n := snap["server.rejected"].(int64); n < 1 {
		t.Fatalf("server.rejected = %d, want >= 1", n)
	}
	if h := snap["server.queue_wait_ns"].(obs.HistogramSnapshot); h.Count < 1 {
		t.Fatal("queue wait histogram recorded nothing")
	}
}

// TestServeConnLimit: connections past MaxConns receive the typed
// too_many_connections frame and a close; a freed slot readmits.
func TestServeConnLimit(t *testing.T) {
	db := engine.Open()
	db.MustExec("CREATE TABLE t (a INT, PRIMARY KEY (a))")
	_, addr := startServer(t, db, Config{MaxConns: 2})

	c1 := dial(t, addr)
	c2 := dial(t, addr)
	if err := c1.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := c2.Ping(); err != nil {
		t.Fatal(err)
	}

	c3, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	c3.Timeout = 10 * time.Second
	err = c3.Ping()
	var we *WireError
	if !errors.As(err, &we) || we.Code != CodeTooManyConns {
		t.Fatalf("third connection: got %v, want too_many_connections", err)
	}
	_ = c3.Close()

	// Freeing a session reopens the door (teardown is asynchronous;
	// retry briefly).
	_ = c1.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		c4, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		c4.Timeout = 10 * time.Second
		if err := c4.Ping(); err == nil {
			_ = c4.Close()
			break
		}
		_ = c4.Close()
		if time.Now().After(deadline) {
			t.Fatal("connection slot never freed after close")
		}
		time.Sleep(5 * time.Millisecond)
	}

	if n := db.Observability().Reg.Snapshot()["server.conns_rejected"].(int64); n < 1 {
		t.Fatalf("server.conns_rejected = %d, want >= 1", n)
	}
}

// TestServeIdleTimeout: a session that goes quiet is told why (typed
// idle_timeout frame) before the server hangs up.
func TestServeIdleTimeout(t *testing.T) {
	db := engine.Open()
	_, addr := startServer(t, db, Config{IdleTimeout: 100 * time.Millisecond})

	c := dial(t, addr)
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	// Go quiet and read the unsolicited close notice off the wire.
	_ = c.conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	body, err := ReadFrame(c.br, c.maxFrame)
	if err != nil {
		t.Fatalf("reading idle notice: %v", err)
	}
	resp, err := DecodeResponse(body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.ID != 0 || resp.Error == nil || resp.Error.Code != CodeIdleTimeout {
		t.Fatalf("idle notice: %+v", resp)
	}
	if n := db.Observability().Reg.Snapshot()["server.idle_closes"].(int64); n < 1 {
		t.Fatalf("server.idle_closes = %d, want >= 1", n)
	}
}

// TestServeFrameTooLargeTyped: a request frame over the server's cap
// gets the typed frame_too_large response, not a silent hangup.
func TestServeFrameTooLargeTyped(t *testing.T) {
	db := engine.Open()
	_, addr := startServer(t, db, Config{MaxFrame: 512})

	c := dial(t, addr)
	_, err := c.Query("SELECT '" + strings.Repeat("x", 2048) + "'")
	var we *WireError
	if !errors.As(err, &we) || we.Code != CodeFrameTooLarge {
		t.Fatalf("oversized request: got %v, want frame_too_large", err)
	}
}
