package server

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"onlinetuner/internal/core"
	"onlinetuner/internal/engine"
)

// TestServeStressRace is the -race stress leg: concurrent sessions mix
// DDL, DML, and queries against one daemon while the online tuner
// creates and drops indexes underneath. It asserts two session-level
// invariants the whole serving design hangs on:
//
//  1. Transaction isolation: each writer commits rows in pairs inside a
//     BEGIN/COMMIT scope, so a concurrent reader must always count an
//     even number — a half-visible transaction means the commit's union
//     lock span leaked.
//
//  2. No cross-session plan-cache poisoning: every session runs its own
//     known-answer point query (same SQL shape, different constant) and
//     prepares a statement under the SAME name as every other session.
//     A session receiving another session's plan, constants, or
//     prepared statement returns a provably wrong value.
func TestServeStressRace(t *testing.T) {
	writers, readers, rounds := 4, 4, 30
	if testing.Short() {
		writers, readers, rounds = 2, 2, 10
	}

	db := engine.Open()
	db.MustExec("CREATE TABLE pairs (id INT, w INT, PRIMARY KEY (id))")
	db.MustExec("CREATE TABLE known (k INT, v INT, PRIMARY KEY (k))")
	nSessions := writers + readers + 1
	for k := 0; k < nSessions; k++ {
		db.MustExec(fmt.Sprintf("INSERT INTO known VALUES (%d, %d)", k, k*10))
	}
	opts := core.DefaultOptions()
	opts.Async = true
	core.Attach(db, opts)

	_, addr := startServer(t, db, Config{MaxConns: nSessions + 2})

	var trafficWG, ddlWG sync.WaitGroup
	errs := make(chan error, nSessions)
	fail := func(format string, args ...any) {
		select {
		case errs <- fmt.Errorf(format, args...):
		default:
		}
	}

	// Writers: pairs of inserts inside one transaction scope. id encodes
	// (writer, round, half) so writers never collide on keys.
	for w := 0; w < writers; w++ {
		trafficWG.Add(1)
		go func(w int) {
			defer trafficWG.Done()
			c, err := Dial(addr)
			if err != nil {
				fail("writer %d dial: %v", w, err)
				return
			}
			defer c.Close()
			c.Timeout = 60 * time.Second
			for r := 0; r < rounds; r++ {
				if err := c.Begin(); err != nil {
					fail("writer %d begin: %v", w, err)
					return
				}
				base := (w*rounds + r) * 2
				for h := 0; h < 2; h++ {
					if _, err := c.Exec(fmt.Sprintf("INSERT INTO pairs VALUES (%d, %d)", base+h, w)); err != nil {
						fail("writer %d insert: %v", w, err)
						return
					}
				}
				if _, err := c.Commit(); err != nil {
					fail("writer %d commit: %v", w, err)
					return
				}
			}
		}(w)
	}

	// Readers: every observation of pairs must be even, and the
	// session's own known-answer query and shared-name prepared
	// statement must never leak another session's plan or text.
	for rd := 0; rd < readers; rd++ {
		trafficWG.Add(1)
		go func(rd int) {
			defer trafficWG.Done()
			k := writers + rd // this session's known-table key
			c, err := Dial(addr)
			if err != nil {
				fail("reader %d dial: %v", rd, err)
				return
			}
			defer c.Close()
			c.Timeout = 60 * time.Second
			// Same prepared name in every session, different statement.
			if err := c.Prepare("mine", fmt.Sprintf("SELECT v FROM known WHERE k = %d", k)); err != nil {
				fail("reader %d prepare: %v", rd, err)
				return
			}
			want := fmt.Sprint(k * 10)
			for r := 0; r < rounds*2; r++ {
				res, err := c.Query("SELECT COUNT(*) AS n FROM pairs")
				if err != nil {
					fail("reader %d count: %v", rd, err)
					return
				}
				var n int
				fmt.Sscan(res.Rows[0][0], &n)
				if n%2 != 0 {
					fail("reader %d: observed %d rows in pairs — a transaction is half-visible", rd, n)
					return
				}
				// Identical SQL shape across sessions, distinct constant:
				// the sweet spot for a fingerprint-keyed cache to confuse.
				res, err = c.Query(fmt.Sprintf("SELECT v FROM known WHERE k = %d", k))
				if err != nil {
					fail("reader %d known: %v", rd, err)
					return
				}
				if len(res.Rows) != 1 || res.Rows[0][0] != want {
					fail("reader %d: known-answer query returned %v, want %s — plan cache poisoned across sessions", rd, res.Rows, want)
					return
				}
				res, err = c.ExecPrepared("mine")
				if err != nil {
					fail("reader %d prepared: %v", rd, err)
					return
				}
				if len(res.Rows) != 1 || res.Rows[0][0] != want {
					fail("reader %d: prepared 'mine' returned %v, want %s — prepared namespace leaked", rd, res.Rows, want)
					return
				}
			}
		}(rd)
	}

	// DDL churn through the wire, racing the tuner's own index builds.
	stop := make(chan struct{})
	ddlWG.Add(1)
	go func() {
		defer ddlWG.Done()
		c, err := Dial(addr)
		if err != nil {
			fail("ddl dial: %v", err)
			return
		}
		defer c.Close()
		c.Timeout = 60 * time.Second
		for {
			select {
			case <-stop:
				return
			default:
			}
			_, _ = c.Exec("CREATE INDEX stress_w ON pairs (w)")
			_, _ = c.Exec("DROP INDEX stress_w")
		}
	}()

	done := make(chan struct{})
	go func() { trafficWG.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(120 * time.Second):
		close(stop)
		t.Fatal("stress run wedged")
	}
	close(stop)
	ddlWG.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	// Final ledger: every writer pair landed exactly once.
	res, err := dial(t, addr).Query("SELECT COUNT(*) AS n FROM pairs")
	if err != nil {
		t.Fatal(err)
	}
	if want := fmt.Sprint(writers * rounds * 2); res.Rows[0][0] != want {
		t.Fatalf("pairs has %s rows, want %s", res.Rows[0][0], want)
	}
}
