// Package server is the engine's production serving layer: a TCP
// daemon speaking a length-prefixed JSON wire protocol, per-connection
// sessions with transaction scoping and idle timeouts, connection
// limits, and admission control that gates statement execution through
// a token semaphore sized from the engine-wide par.Pool budget.
// Overload returns a typed backpressure error instead of queuing
// unboundedly; graceful shutdown drains in-flight statements,
// checkpoints the WAL, and refuses new work with a typed error.
//
// This file is the wire format. A frame is a 4-byte big-endian length
// followed by that many bytes of JSON — one Request per client frame,
// one Response per server frame. The length prefix is validated against
// a maximum before any allocation, so a hostile or corrupt header can
// never make the decoder over-allocate (see FuzzWireDecode).
package server

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// DefaultMaxFrame bounds one frame's JSON body. Result sets stream back
// as one frame today, so this also caps a single response; clients
// issuing wide scans through the wire should page with LIMIT-style
// predicates (the bench and tests stay far below the cap).
const DefaultMaxFrame = 8 << 20

// frameHeader is the fixed length prefix size.
const frameHeader = 4

// Frame decoding errors. ErrFrameTruncated means "need more bytes", the
// others are permanent protocol violations.
var (
	ErrFrameTruncated = errors.New("server: truncated frame")
	ErrFrameTooLarge  = errors.New("server: frame exceeds maximum size")
	ErrFrameEmpty     = errors.New("server: empty frame")
)

// Request ops. Executing ops (query, exec, exec_prepared, commit) pass
// through admission control; control ops (ping, prepare, begin,
// rollback, close) and explain (optimize-only) do not.
const (
	OpQuery        = "query"         // run SQL, return rows
	OpExec         = "exec"          // run SQL, return affected count
	OpExplain      = "explain"       // optimize only, return plan lines
	OpPrepare      = "prepare"       // parse SQL, remember under Name
	OpExecPrepared = "exec_prepared" // run the statement prepared under Name
	OpBegin        = "begin"         // open a transaction scope
	OpCommit       = "commit"        // execute the buffered scope atomically
	OpRollback     = "rollback"      // discard the buffered scope
	OpPing         = "ping"
	OpClose        = "close" // clean session end
)

// Error codes carried in Response.Error.
const (
	CodeSQL           = "sql"                  // statement failed (parse or execution)
	CodeOverloaded    = "overloaded"           // admission rejected: typed backpressure
	CodeShuttingDown  = "shutting_down"        // daemon is draining; no new work
	CodeTxnState      = "txn_state"            // begin/commit/rollback out of order
	CodeNotPrepared   = "not_prepared"         // exec_prepared of an unknown name
	CodeBadRequest    = "bad_request"          // malformed frame or request JSON
	CodeUnknownOp     = "unknown_op"           // unrecognized Request.Op
	CodeTooManyConns  = "too_many_connections" // connection limit reached
	CodeIdleTimeout   = "idle_timeout"         // session idled past the limit
	CodeFrameTooLarge = "frame_too_large"      // request frame over the cap
	CodeInternal      = "internal"             // server-side invariant failure
)

// Request is one client frame. ID is echoed on the response so clients
// can pipeline and match replies.
type Request struct {
	ID   uint64 `json:"id"`
	Op   string `json:"op"`
	SQL  string `json:"sql,omitempty"`
	Name string `json:"name,omitempty"` // prepared-statement name
}

// StmtResult is one executed statement's materialized output, rows
// rendered to strings with datum.String (the same rendering the shell
// prints, which is what the integration oracle compares byte-for-byte).
type StmtResult struct {
	Columns  []string   `json:"columns,omitempty"`
	Rows     [][]string `json:"rows,omitempty"`
	Affected int        `json:"affected,omitempty"`
	Cost     float64    `json:"cost,omitempty"`
}

// WireError is a typed protocol error.
type WireError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Error implements error.
func (e *WireError) Error() string { return fmt.Sprintf("%s: %s", e.Code, e.Message) }

// IsOverload reports whether err is the typed admission-backpressure
// rejection.
func IsOverload(err error) bool {
	var we *WireError
	return errors.As(err, &we) && we.Code == CodeOverloaded
}

// IsShuttingDown reports whether err is the typed drain rejection.
func IsShuttingDown(err error) bool {
	var we *WireError
	return errors.As(err, &we) && we.Code == CodeShuttingDown
}

// Response is one server frame. Single-statement ops inline their
// StmtResult; commit returns one entry per buffered statement in
// Results. Applied counts the statements that executed before a
// mid-commit failure (atomic visibility: the batch ran under one lock
// span, but a runtime failure stops the batch at that point).
type Response struct {
	ID uint64 `json:"id"`
	OK bool   `json:"ok"`
	StmtResult
	Queued  bool         `json:"queued,omitempty"` // buffered into the open transaction
	Results []StmtResult `json:"results,omitempty"`
	Applied int          `json:"applied,omitempty"`
	Error   *WireError   `json:"error,omitempty"`
}

// AppendFrame appends the length-prefixed encoding of body to dst.
func AppendFrame(dst, body []byte) []byte {
	var hdr [frameHeader]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	dst = append(dst, hdr[:]...)
	return append(dst, body...)
}

// DecodeFrame parses one frame from the front of buf, returning the
// body and the total bytes consumed. The body aliases buf — callers
// that retain it across reads must copy. The declared length is checked
// against maxFrame (<= 0 selects DefaultMaxFrame) and against the bytes
// actually present before anything is allocated or sliced.
func DecodeFrame(buf []byte, maxFrame int) (body []byte, n int, err error) {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	if len(buf) < frameHeader {
		return nil, 0, ErrFrameTruncated
	}
	ln := binary.BigEndian.Uint32(buf[:frameHeader])
	if ln == 0 {
		return nil, 0, ErrFrameEmpty
	}
	if ln > uint32(maxFrame) {
		return nil, 0, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, ln, maxFrame)
	}
	if len(buf)-frameHeader < int(ln) {
		return nil, 0, ErrFrameTruncated
	}
	return buf[frameHeader : frameHeader+int(ln)], frameHeader + int(ln), nil
}

// ReadFrame reads one frame from r. The allocation for the body happens
// only after the declared length passes the maxFrame check, so a
// corrupt header cannot trigger a huge allocation.
func ReadFrame(r io.Reader, maxFrame int) ([]byte, error) {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	ln := binary.BigEndian.Uint32(hdr[:])
	if ln == 0 {
		return nil, ErrFrameEmpty
	}
	if ln > uint32(maxFrame) {
		return nil, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, ln, maxFrame)
	}
	body := make([]byte, ln)
	if _, err := io.ReadFull(r, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return body, nil
}

// WriteFrame writes body as one frame to w.
func WriteFrame(w io.Writer, body []byte) error {
	var hdr [frameHeader]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// DecodeRequest parses a request body. Unknown fields are rejected so a
// frame holding a response (or garbage JSON) cannot silently pass as a
// request.
func DecodeRequest(body []byte) (*Request, error) {
	var req Request
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("server: bad request: %w", err)
	}
	if req.Op == "" {
		return nil, errors.New("server: bad request: missing op")
	}
	return &req, nil
}

// EncodeRequest serializes a request body.
func EncodeRequest(req *Request) ([]byte, error) { return json.Marshal(req) }

// DecodeResponse parses a response body.
func DecodeResponse(body []byte) (*Response, error) {
	var resp Response
	if err := json.Unmarshal(body, &resp); err != nil {
		return nil, fmt.Errorf("server: bad response: %w", err)
	}
	return &resp, nil
}

// EncodeResponse serializes a response body.
func EncodeResponse(resp *Response) ([]byte, error) { return json.Marshal(resp) }
