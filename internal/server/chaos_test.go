package server

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"onlinetuner/internal/engine"
	"onlinetuner/internal/fault"
	"onlinetuner/internal/wal"
)

// ackRecord is one client's ledger of writes the server acknowledged.
type ackRecord struct {
	mu  sync.Mutex
	ids []int
}

func (a *ackRecord) add(id int) {
	a.mu.Lock()
	a.ids = append(a.ids, id)
	a.mu.Unlock()
}

func (a *ackRecord) all() []int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]int(nil), a.ids...)
}

// recoveredIDs reopens dir and returns the set of ids in acked plus the
// recovered DB's row count.
func recoveredIDs(t *testing.T, dir string) map[int]bool {
	t.Helper()
	rdb, err := engine.OpenDurable(engine.Config{Dir: dir})
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	defer rdb.Close()
	rs, _, err := rdb.Exec("SELECT id FROM acked")
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[int]bool, len(rs.Rows))
	for _, row := range rs.Rows {
		var id int
		fmt.Sscan(row[0].String(), &id)
		got[id] = true
	}
	return got
}

// TestServeChaosCrashDurability is the serving half of the durability
// contract: clients hammer a durable daemon over TCP, the engine
// "dies" mid-traffic (DB.Crash — the log file is cut off exactly as a
// process death would), the server is torn down with Abort, and the
// directory is reopened. Every INSERT a client saw acknowledged must be
// present after recovery; writes that were in flight (never answered)
// may land or not, but answered means durable.
func TestServeChaosCrashDurability(t *testing.T) {
	dir := t.TempDir()
	db, err := engine.OpenDurable(engine.Config{Dir: dir, Sync: wal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	db.MustExec("CREATE TABLE acked (id INT, client INT, PRIMARY KEY (id))")
	srv, addr := startServer(t, db, Config{})

	const clients = 6
	var (
		acks [clients]ackRecord
		wg   sync.WaitGroup
	)
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.conn.Close()
			c.Timeout = 30 * time.Second
			// Insert unique ids until the crash kills the run; only a
			// successful response records an ack.
			for seq := 0; ; seq++ {
				id := ci*1_000_000 + seq
				_, err := c.Exec(fmt.Sprintf("INSERT INTO acked VALUES (%d, %d)", id, ci))
				if err != nil {
					return // crash reached this client; its ledger is final
				}
				acks[ci].add(id)
			}
		}(ci)
	}

	// Let traffic build, then kill mid-flight: engine first (in-flight
	// statements now fail exactly as if the process died), server after.
	minAcks := 40
	for deadline := time.Now().Add(30 * time.Second); ; {
		n := 0
		for i := range acks {
			n += len(acks[i].all())
		}
		if n >= minAcks {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("traffic never built up: %d acks", n)
		}
		time.Sleep(2 * time.Millisecond)
	}
	db.Crash()
	srv.Abort()
	wg.Wait()

	var ackedAll []int
	for i := range acks {
		ackedAll = append(ackedAll, acks[i].all()...)
	}
	got := recoveredIDs(t, dir)
	missing := 0
	for _, id := range ackedAll {
		if !got[id] {
			missing++
			if missing <= 5 {
				t.Errorf("acknowledged id %d lost by the crash", id)
			}
		}
	}
	if missing > 0 {
		t.Fatalf("%d of %d acknowledged writes lost", missing, len(ackedAll))
	}
	t.Logf("acked %d writes across %d clients; %d rows recovered", len(ackedAll), clients, len(got))
}

// TestServeChaosInjectedFaults runs the daemon with a seeded fault
// injector firing at the statement boundary. Faulted statements must
// come back as clean typed SQL errors — the session, the connection,
// and the server all survive — and after a graceful shutdown every
// acknowledged write is still durable.
func TestServeChaosInjectedFaults(t *testing.T) {
	dir := t.TempDir()
	db, err := engine.OpenDurable(engine.Config{Dir: dir, Sync: wal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	db.MustExec("CREATE TABLE acked (id INT, client INT, PRIMARY KEY (id))")
	inj := fault.New(7).Plan(fault.ExecStmt, fault.Rule{Prob: 0.25})
	db.SetFaults(inj)
	inj.Arm()
	srv, addr := startServer(t, db, Config{})

	const clients, perClient = 4, 60
	var (
		acks    [clients]ackRecord
		faulted [clients]int
		wg      sync.WaitGroup
	)
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c := dial(t, addr)
			for seq := 0; seq < perClient; seq++ {
				id := ci*1_000_000 + seq
				_, err := c.Exec(fmt.Sprintf("INSERT INTO acked VALUES (%d, %d)", id, ci))
				if err != nil {
					// Injected faults must arrive as typed SQL errors, not
					// dropped connections or panics.
					var we *WireError
					if !errors.As(err, &we) || we.Code != CodeSQL {
						t.Errorf("client %d: fault surfaced as %v, want typed sql error", ci, err)
						return
					}
					faulted[ci]++
					continue
				}
				acks[ci].add(id)
				// The session keeps working between faults: a read on the
				// row just acked.
				if res, err := c.Query(fmt.Sprintf("SELECT client FROM acked WHERE id = %d", id)); err == nil {
					if len(res.Rows) != 1 || res.Rows[0][0] != fmt.Sprint(ci) {
						t.Errorf("client %d: readback of acked id %d got %v", ci, id, res.Rows)
						return
					}
				}
			}
		}(ci)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	inj.Disarm()
	if inj.FiredTotal() == 0 {
		t.Fatal("the fault injector never fired; the run proved nothing")
	}

	// Graceful exit under the same roof: drain, checkpoint, close.
	shutdownAndClose(t, srv, db)

	var ackedAll []int
	for i := range acks {
		ackedAll = append(ackedAll, acks[i].all()...)
	}
	got := recoveredIDs(t, dir)
	for _, id := range ackedAll {
		if !got[id] {
			t.Fatalf("acknowledged id %d lost (with %d faults injected)", id, inj.FiredTotal())
		}
	}
	totalFaults := 0
	for _, f := range faulted {
		totalFaults += f
	}
	t.Logf("acked %d, faulted %d (injector fired %d); all acked rows recovered",
		len(ackedAll), totalFaults, inj.FiredTotal())
}
