package server

import (
	"context"
	"fmt"
	"strings"

	"onlinetuner/internal/engine"
	"onlinetuner/internal/executor"
	"onlinetuner/internal/sql"
)

// session is one connection's server-side state: its prepared
// statements and its (at most one) open transaction scope. A session is
// driven by exactly one goroutine — the connection reader — so none of
// this needs locking; the server only ever touches a session from the
// outside to close its connection.
//
// Transaction scoping: BEGIN puts the session into buffering mode.
// Statements arriving inside the scope are parsed immediately (syntax
// errors surface at submission time) and buffered; COMMIT executes the
// whole buffer through engine.ExecBatch, which acquires the union of
// the batch's table locks once and holds them across the batch — other
// sessions see none or all of the scope's effects (isolation). Results
// for every buffered statement come back on the commit response.
// ROLLBACK discards the buffer; nothing was executed, so there is
// nothing to undo.
type session struct {
	id       uint64
	srv      *Server
	prepared map[string]string // name -> SQL text
	txn      []string          // buffered statement texts of the open scope
	inTxn    bool
}

func newSession(id uint64, srv *Server) *session {
	return &session{id: id, srv: srv, prepared: make(map[string]string)}
}

// respErr builds a typed error response.
func respErr(id uint64, code, msg string) *Response {
	return &Response{ID: id, Error: &WireError{Code: code, Message: msg}}
}

// handle processes one request and returns its response. Executing ops
// pass through the server's drain gate and admission control.
func (s *session) handle(req *Request) *Response {
	switch req.Op {
	case OpPing:
		return &Response{ID: req.ID, OK: true}
	case OpClose:
		return &Response{ID: req.ID, OK: true}
	case OpPrepare:
		return s.prepare(req)
	case OpBegin:
		if s.inTxn {
			return respErr(req.ID, CodeTxnState, "transaction already open")
		}
		s.inTxn = true
		s.txn = s.txn[:0]
		return &Response{ID: req.ID, OK: true}
	case OpRollback:
		if !s.inTxn {
			return respErr(req.ID, CodeTxnState, "no open transaction")
		}
		s.inTxn = false
		s.txn = nil
		return &Response{ID: req.ID, OK: true}
	case OpCommit:
		if !s.inTxn {
			return respErr(req.ID, CodeTxnState, "no open transaction")
		}
		return s.commit(req)
	case OpExplain:
		return s.explain(req)
	case OpQuery, OpExec:
		if req.SQL == "" {
			return respErr(req.ID, CodeBadRequest, "missing sql")
		}
		return s.statement(req, req.SQL)
	case OpExecPrepared:
		text, ok := s.prepared[req.Name]
		if !ok {
			return respErr(req.ID, CodeNotPrepared, fmt.Sprintf("no prepared statement %q", req.Name))
		}
		return s.statement(req, text)
	default:
		return respErr(req.ID, CodeUnknownOp, fmt.Sprintf("unknown op %q", req.Op))
	}
}

// prepare validates and remembers a statement text under a name. The
// engine's statement-text cache makes re-execution skip the parser, so
// the server keeps only the text.
func (s *session) prepare(req *Request) *Response {
	if req.Name == "" || req.SQL == "" {
		return respErr(req.ID, CodeBadRequest, "prepare needs name and sql")
	}
	if _, err := sql.Parse(req.SQL); err != nil {
		return respErr(req.ID, CodeSQL, err.Error())
	}
	s.prepared[req.Name] = req.SQL
	return &Response{ID: req.ID, OK: true}
}

// statement runs (or, inside a transaction scope, buffers) one
// statement.
func (s *session) statement(req *Request, text string) *Response {
	if s.inTxn {
		if _, err := sql.Parse(text); err != nil {
			return respErr(req.ID, CodeSQL, err.Error())
		}
		s.txn = append(s.txn, text)
		return &Response{ID: req.ID, OK: true, Queued: true}
	}
	release, resp := s.admit(req.ID)
	if resp != nil {
		return resp
	}
	defer release()
	rs, info, err := s.srv.db.ExecContext(context.Background(), text)
	if err != nil {
		return respErr(req.ID, CodeSQL, err.Error())
	}
	s.srv.statements.Inc()
	return &Response{ID: req.ID, OK: true, StmtResult: *renderResult(rs, info)}
}

// commit executes the buffered scope as one engine batch.
func (s *session) commit(req *Request) *Response {
	texts := s.txn
	s.inTxn = false
	s.txn = nil
	if len(texts) == 0 {
		return &Response{ID: req.ID, OK: true}
	}
	release, resp := s.admit(req.ID)
	if resp != nil {
		return resp
	}
	defer release()
	results, infos, applied, err := s.srv.db.ExecBatch(context.Background(), texts)
	out := make([]StmtResult, 0, len(results))
	for i, rs := range results {
		out = append(out, *renderResult(rs, infos[i]))
	}
	s.srv.statements.Add(int64(applied))
	if err != nil {
		r := respErr(req.ID, CodeSQL, fmt.Sprintf("statement %d of %d: %v", applied+1, len(texts), err))
		r.Results = out
		r.Applied = applied
		return r
	}
	return &Response{ID: req.ID, OK: true, Results: out, Applied: applied}
}

// explain optimizes without executing. It skips admission: it touches
// no heap pages and the optimizer is the cheap half of the pipeline.
func (s *session) explain(req *Request) *Response {
	if req.SQL == "" {
		return respErr(req.ID, CodeBadRequest, "missing sql")
	}
	if s.srv.draining() {
		return respErr(req.ID, CodeShuttingDown, "server is draining")
	}
	plan, err := s.srv.db.ExplainString(req.SQL)
	if err != nil {
		return respErr(req.ID, CodeSQL, err.Error())
	}
	res := StmtResult{Columns: []string{"plan"}}
	for _, line := range strings.Split(strings.TrimRight(plan, "\n"), "\n") {
		res.Rows = append(res.Rows, []string{line})
	}
	return &Response{ID: req.ID, OK: true, StmtResult: res}
}

// admit passes the drain gate and admission control for one executing
// request. On success the caller owns release (which also closes the
// server's in-flight accounting); on failure the typed error response
// is returned instead.
func (s *session) admit(id uint64) (release func(), resp *Response) {
	if !s.srv.beginStmt() {
		return nil, respErr(id, CodeShuttingDown, "server is draining")
	}
	rel, err := s.srv.adm.acquire(s.srv.drainCtx)
	if err != nil {
		s.srv.endStmt()
		if we, ok := err.(*WireError); ok {
			return nil, &Response{ID: id, Error: we}
		}
		return nil, respErr(id, CodeInternal, err.Error())
	}
	return func() {
		rel()
		s.srv.endStmt()
	}, nil
}

// renderResult converts an executed statement's output to its wire
// form, rows rendered with datum.String.
func renderResult(rs *executor.ResultSet, info *engine.QueryInfo) *StmtResult {
	out := &StmtResult{Affected: rs.Affected}
	if len(rs.Columns) > 0 {
		out.Columns = append([]string(nil), rs.Columns...)
	}
	if len(rs.Rows) > 0 {
		out.Rows = make([][]string, len(rs.Rows))
		for i, row := range rs.Rows {
			r := make([]string, len(row))
			for j, d := range row {
				r[j] = d.String()
			}
			out.Rows[i] = r
		}
	}
	if info != nil {
		out.Cost = info.EstCost
	}
	return out
}
