package server

import (
	"context"
	"encoding/json"
	"testing"
	"time"

	"onlinetuner/internal/engine"
	"onlinetuner/internal/tpch"
)

// startServer runs a server over db on an ephemeral port, returning the
// dial address. Cleanup aborts the server if the test did not already
// shut it down.
func startServer(t *testing.T, db *engine.DB, cfg Config) (*Server, string) {
	t.Helper()
	srv := New(db, cfg)
	addr, errc, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Abort()
		select {
		case err := <-errc:
			if err != nil {
				t.Errorf("serve: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Error("serve loop did not exit")
		}
	})
	return srv, addr.String()
}

// shutdownAndClose drains the server gracefully and closes the engine.
func shutdownAndClose(t *testing.T, srv *Server, db *engine.DB) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// loadTPCH loads TPC-H into db at the given scale with the fixed test
// seed, so two loads produce byte-identical databases.
func loadTPCH(t *testing.T, db *engine.DB, scale float64) *tpch.Generator {
	t.Helper()
	gen := tpch.NewGenerator(tpch.Scale(scale), 1)
	if err := gen.Load(db); err != nil {
		t.Fatal(err)
	}
	return gen
}

// dial connects a test client with a generous per-request timeout.
func dial(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	c.Timeout = 60 * time.Second
	t.Cleanup(func() { _ = c.Close() })
	return c
}

// resultKey serializes a result's data (columns, rows, affected —
// deliberately not cost, which is configuration-dependent and changes
// as the tuner builds indexes) for byte-for-byte comparison against the
// oracle.
func resultKey(t *testing.T, res *StmtResult) string {
	t.Helper()
	b, err := json.Marshal(struct {
		C []string   `json:"c"`
		R [][]string `json:"r"`
		A int        `json:"a"`
	}{res.Columns, res.Rows, res.Affected})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// oracleKey executes q on the oracle database directly (no server, no
// concurrency) and returns its resultKey.
func oracleKey(t *testing.T, db *engine.DB, q string) string {
	t.Helper()
	rs, info, err := db.Exec(q)
	if err != nil {
		t.Fatalf("oracle %q: %v", q, err)
	}
	return resultKey(t, renderResult(rs, info))
}
