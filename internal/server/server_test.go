package server

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"onlinetuner/internal/core"
	"onlinetuner/internal/engine"
)

// TestServeSessionTranscript drives one session through every op: the
// protocol smoke test (and the shape of the README transcript).
func TestServeSessionTranscript(t *testing.T) {
	db := engine.Open()
	db.MustExec("CREATE TABLE kv (k INT, v INT, PRIMARY KEY (k))")
	_, addr := startServer(t, db, Config{})
	c := dial(t, addr)

	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if res, err := c.Exec("INSERT INTO kv VALUES (1, 10)"); err != nil || res.Affected != 1 {
		t.Fatalf("insert: %v (affected %d)", err, res.Affected)
	}
	res, err := c.Query("SELECT v FROM kv WHERE k = 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != "10" {
		t.Fatalf("query rows: %v", res.Rows)
	}
	// Prepared statements.
	if err := c.Prepare("get1", "SELECT v FROM kv WHERE k = 1"); err != nil {
		t.Fatal(err)
	}
	if res, err := c.ExecPrepared("get1"); err != nil || len(res.Rows) != 1 {
		t.Fatalf("exec_prepared: %v %v", err, res)
	}
	if _, err := c.ExecPrepared("missing"); !isCode(err, CodeNotPrepared) {
		t.Fatalf("want not_prepared, got %v", err)
	}
	// Explain returns plan lines without running the statement.
	lines, err := c.Explain("SELECT v FROM kv WHERE k = 1")
	if err != nil || len(lines) == 0 {
		t.Fatalf("explain: %v %v", err, lines)
	}
	if !strings.Contains(strings.Join(lines, "\n"), "kv") {
		t.Fatalf("plan does not mention the table: %v", lines)
	}
	// Transaction scope: statements buffer, commit returns every result.
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	if res, err := c.Exec("INSERT INTO kv VALUES (2, 20)"); err != nil || res.Affected != 0 {
		t.Fatalf("buffered insert executed eagerly: %v %v", err, res)
	}
	if _, err := c.Exec("SELECT v FROM kv WHERE k = 2"); err != nil {
		t.Fatal(err)
	}
	results, err := c.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || results[0].Affected != 1 || len(results[1].Rows) != 1 || results[1].Rows[0][0] != "20" {
		t.Fatalf("commit results: %+v", results)
	}
	// Rollback discards: the insert never happens.
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("INSERT INTO kv VALUES (3, 30)"); err != nil {
		t.Fatal(err)
	}
	if err := c.Rollback(); err != nil {
		t.Fatal(err)
	}
	if res, _ := c.Query("SELECT v FROM kv WHERE k = 3"); len(res.Rows) != 0 {
		t.Fatalf("rolled-back insert visible: %v", res.Rows)
	}
	// Typed errors.
	if _, err := c.Query("SELEC nonsense"); !isCode(err, CodeSQL) {
		t.Fatalf("want sql error, got %v", err)
	}
	if err := c.Rollback(); !isCode(err, CodeTxnState) {
		t.Fatalf("want txn_state, got %v", err)
	}
	resp, err := c.Do(&Request{Op: "frobnicate"})
	if err != nil {
		t.Fatalf("unknown op transport error: %v", err)
	}
	if resp.Error == nil || resp.Error.Code != CodeUnknownOp {
		t.Fatalf("want unknown_op error, got %+v", resp)
	}
}

func isCode(err error, code string) bool {
	we, ok := err.(*WireError)
	return ok && we.Code == code
}

// TestServeIntegrationMultiClient is the headline integration test: 10
// concurrent TCP clients hammer mixed OLTP point lookups and TPC-H
// aggregate scans against one daemon while (a) the online tuner builds
// and drops indexes in the background and (b) a DDL-churn client
// creates and drops an index in a loop. Every response must be
// byte-identical to a single-session oracle database holding the same
// data — physical design changes must never change results, and no
// session may observe another session's plan state.
func TestServeIntegrationMultiClient(t *testing.T) {
	scale := 0.08
	clients, steps := 10, 40
	if testing.Short() {
		scale, clients, steps = 0.05, 8, 15
	}

	db := engine.Open()
	loadTPCH(t, db, scale)
	opts := core.DefaultOptions()
	opts.Async = true
	tuner := core.Attach(db, opts)

	oracle := engine.Open()
	loadTPCH(t, oracle, scale)

	templates := []func(i int) string{
		func(i int) string {
			return fmt.Sprintf("SELECT o_orderkey, o_totalprice FROM orders WHERE o_orderkey = %d", 1+i%150)
		},
		func(i int) string {
			return fmt.Sprintf("SELECT c_name, c_acctbal FROM customer WHERE c_custkey = %d", 1+i%100)
		},
		func(i int) string {
			return fmt.Sprintf("SELECT COUNT(*) AS cnt, SUM(l_quantity) AS qty FROM lineitem WHERE l_partkey = %d", 1+i%60)
		},
		func(i int) string {
			return fmt.Sprintf(`SELECT o_orderpriority, COUNT(*) AS c FROM orders, lineitem
				WHERE l_orderkey = o_orderkey AND o_custkey = %d
				GROUP BY o_orderpriority ORDER BY o_orderpriority`, 1+i%40)
		},
	}
	// Precompute the oracle answer for every text any client will send.
	expect := make(map[string]string)
	for ci := 0; ci < clients; ci++ {
		for s := 0; s < steps; s++ {
			q := templates[(ci+s)%len(templates)](ci*31 + s)
			if _, ok := expect[q]; !ok {
				expect[q] = oracleKey(t, oracle, q)
			}
		}
	}

	_, addr := startServer(t, db, Config{MaxConns: clients + 4})

	// DDL churn rides alongside: an index is created and dropped through
	// the wire while the query clients run. Errors are tolerated (the
	// tuner may race it to the same physical index) — what matters is
	// that results stay correct underneath.
	churnStop := make(chan struct{})
	var churnWG sync.WaitGroup
	churnWG.Add(1)
	go func() {
		defer churnWG.Done()
		cc, err := Dial(addr)
		if err != nil {
			t.Error(err)
			return
		}
		defer cc.Close()
		cc.Timeout = 60 * time.Second
		for i := 0; ; i++ {
			select {
			case <-churnStop:
				return
			default:
			}
			_, _ = cc.Exec("CREATE INDEX srv_churn ON lineitem (l_partkey)")
			_, _ = cc.Exec("DROP INDEX srv_churn")
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			c.Timeout = 60 * time.Second
			prepared := false
			for s := 0; s < steps; s++ {
				q := templates[(ci+s)%len(templates)](ci*31 + s)
				var res *StmtResult
				switch {
				case s%11 == 10:
					// Exercise the prepared path; the result must still
					// match the oracle.
					name := fmt.Sprintf("p%d", ci)
					if err := c.Prepare(name, q); err != nil {
						errs <- fmt.Errorf("client %d prepare: %w", ci, err)
						return
					}
					prepared = true
					res, err = c.ExecPrepared(name)
				case s%7 == 6:
					// Explain output depends on the current physical design
					// and is not oracle-compared; it must only succeed.
					if _, err := c.Explain(q); err != nil {
						errs <- fmt.Errorf("client %d explain: %w", ci, err)
						return
					}
					continue
				default:
					res, err = c.Query(q)
				}
				if err != nil {
					errs <- fmt.Errorf("client %d step %d: %w", ci, s, err)
					return
				}
				if got := resultKey(t, res); got != expect[q] {
					errs <- fmt.Errorf("client %d step %d: result diverged from oracle for %q\n got %s\nwant %s",
						ci, s, q, got, expect[q])
					return
				}
			}
			_ = prepared
		}(ci)
	}
	wg.Wait()
	close(churnStop)
	churnWG.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}
	// The metrics surface saw the traffic.
	snap := db.Observability().Reg.Snapshot()
	if n := snap["server.statements"].(int64); n < int64(clients*steps/2) {
		t.Fatalf("server.statements = %d, want at least %d", n, clients*steps/2)
	}
	t.Logf("tuner events during serving: %d", len(tuner.Events()))
}
