package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"onlinetuner/internal/engine"
	"onlinetuner/internal/obs"
)

// Config sizes the daemon. Zero values select the defaults.
type Config struct {
	// MaxConns bounds concurrent connections; dial attempts past it get
	// a typed too_many_connections error frame and are closed. Default
	// 64.
	MaxConns int
	// AdmitSlots bounds concurrently executing statements across all
	// sessions. Default 2x the engine's ExecWorkers: the par.Pool hands
	// its worker slots to whichever admitted statements ask first, and a
	// small oversubscription keeps the pool busy while statements sit in
	// non-CPU work (WAL fsync, lock waits).
	AdmitSlots int
	// MaxQueue bounds statements waiting for an admission slot; beyond
	// it requests are rejected immediately with the typed backpressure
	// error. Default 4x AdmitSlots.
	MaxQueue int
	// QueueTimeout bounds how long one statement may wait for admission.
	// Default 1s.
	QueueTimeout time.Duration
	// IdleTimeout closes sessions that send nothing for this long.
	// Default 5m; negative disables.
	IdleTimeout time.Duration
	// MaxFrame bounds one request frame. Default DefaultMaxFrame.
	MaxFrame int
	// DrainTimeout bounds how long Shutdown waits for in-flight
	// statements. Default 10s.
	DrainTimeout time.Duration
}

func (c Config) withDefaults(db *engine.DB) Config {
	if c.MaxConns <= 0 {
		c.MaxConns = 64
	}
	if c.AdmitSlots <= 0 {
		c.AdmitSlots = 2 * db.ExecWorkers()
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4 * c.AdmitSlots
	}
	if c.QueueTimeout <= 0 {
		c.QueueTimeout = time.Second
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = 5 * time.Minute
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = DefaultMaxFrame
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	return c
}

// Server lifecycle states.
const (
	stateRunning int32 = iota
	stateDraining
	stateClosed
)

// Server is the TCP daemon over one engine.DB. Create with New, start
// with Serve, stop with Shutdown (graceful) or Abort (crash tests).
type Server struct {
	db  *engine.DB
	cfg Config
	adm *admission

	ln net.Listener // guarded by mu

	// drainMu orders the drain flip against statement starts: beginStmt
	// holds the read side while it checks state and joins the in-flight
	// group, Shutdown holds the write side to flip state — after the
	// flip, no new statement can join.
	drainMu  sync.RWMutex
	state    atomic.Int32
	inflight sync.WaitGroup

	drainCtx    context.Context
	drainCancel context.CancelFunc

	mu       sync.Mutex
	sessions map[uint64]net.Conn
	nextSID  uint64
	connWG   sync.WaitGroup

	sessionsOpen  *obs.Gauge
	connsTotal    *obs.Counter
	connsRejected *obs.Counter
	statements    *obs.Counter
	idleCloses    *obs.Counter
}

// New wires a server over db. The db's observability registry receives
// the server.* metric cells (sessions open, admitted/rejected, queue
// wait histogram), so the existing obs HTTP handler doubles as the
// daemon's live dashboard.
func New(db *engine.DB, cfg Config) *Server {
	cfg = cfg.withDefaults(db)
	reg := db.Observability().Reg
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		db:            db,
		cfg:           cfg,
		adm:           newAdmission(cfg.AdmitSlots, cfg.MaxQueue, cfg.QueueTimeout, reg),
		drainCtx:      ctx,
		drainCancel:   cancel,
		sessions:      make(map[uint64]net.Conn),
		sessionsOpen:  reg.Gauge("server.sessions_open"),
		connsTotal:    reg.Counter("server.connections"),
		connsRejected: reg.Counter("server.conns_rejected"),
		statements:    reg.Counter("server.statements"),
		idleCloses:    reg.Counter("server.idle_closes"),
	}
}

// DB returns the served engine.
func (s *Server) DB() *engine.DB { return s.db }

// Listen binds addr and starts serving in a background goroutine,
// returning the bound address (use ":0" for an ephemeral port). The
// returned error channel yields Serve's result once.
func (s *Server) Listen(addr string) (net.Addr, <-chan error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	errc := make(chan error, 1)
	go func() { errc <- s.Serve(ln) }()
	return ln.Addr(), errc, nil
}

// Serve accepts connections on ln until Shutdown or Abort closes it.
// During a drain the listener stays open so late connects receive the
// typed shutting_down error frame instead of a bare connection refusal.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.ln == nil {
		s.ln = ln
	}
	s.mu.Unlock()
	// A shutdown that raced in before we registered the listener closed
	// whatever it saw; make sure this one is closed too.
	if s.state.Load() != stateRunning {
		_ = ln.Close()
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.state.Load() != stateRunning {
				s.connWG.Wait()
				return nil
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			return err
		}
		s.connsTotal.Inc()
		if s.state.Load() != stateRunning {
			s.refuse(conn, CodeShuttingDown, "server is shutting down")
			continue
		}
		s.mu.Lock()
		if len(s.sessions) >= s.cfg.MaxConns {
			s.mu.Unlock()
			s.connsRejected.Inc()
			s.refuse(conn, CodeTooManyConns, fmt.Sprintf("connection limit %d reached", s.cfg.MaxConns))
			continue
		}
		s.nextSID++
		sid := s.nextSID
		s.sessions[sid] = conn
		s.sessionsOpen.Add(1)
		s.connWG.Add(1)
		s.mu.Unlock()
		go s.serveConn(sid, conn)
	}
}

// refuse sends one typed error frame and closes the connection.
func (s *Server) refuse(conn net.Conn, code, msg string) {
	_ = conn.SetWriteDeadline(time.Now().Add(2 * time.Second))
	if body, err := EncodeResponse(respErr(0, code, msg)); err == nil {
		_ = WriteFrame(conn, body)
	}
	_ = conn.Close()
}

// serveConn drives one session: read frame, handle, write response.
func (s *Server) serveConn(sid uint64, conn net.Conn) {
	defer func() {
		_ = conn.Close()
		s.mu.Lock()
		delete(s.sessions, sid)
		s.mu.Unlock()
		s.sessionsOpen.Add(-1)
		s.connWG.Done()
	}()
	sess := newSession(sid, s)
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	for {
		if s.cfg.IdleTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		}
		body, err := ReadFrame(br, s.cfg.MaxFrame)
		if err != nil {
			var ne net.Error
			switch {
			case errors.As(err, &ne) && ne.Timeout():
				s.idleCloses.Inc()
				s.writeResp(bw, conn, respErr(0, CodeIdleTimeout, "session idle timeout"))
			case errors.Is(err, ErrFrameTooLarge), errors.Is(err, ErrFrameEmpty):
				s.writeResp(bw, conn, respErr(0, CodeFrameTooLarge, err.Error()))
			}
			return // EOF, net errors, protocol violations: the session ends
		}
		req, err := DecodeRequest(body)
		if err != nil {
			// The framing survived but the JSON is not a request; answer
			// typed and close — there is no way to know what the client
			// meant.
			s.writeResp(bw, conn, respErr(0, CodeBadRequest, err.Error()))
			return
		}
		resp := sess.handle(req)
		if !s.writeResp(bw, conn, resp) {
			return
		}
		if req.Op == OpClose {
			return
		}
	}
}

// writeResp writes one response frame, reporting whether the session
// can continue.
func (s *Server) writeResp(bw *bufio.Writer, conn net.Conn, resp *Response) bool {
	body, err := EncodeResponse(resp)
	if err != nil {
		body, _ = EncodeResponse(respErr(resp.ID, CodeInternal, "response encoding failed"))
		if body == nil {
			return false
		}
	}
	_ = conn.SetWriteDeadline(time.Now().Add(30 * time.Second))
	if err := WriteFrame(bw, body); err != nil {
		return false
	}
	return bw.Flush() == nil
}

// beginStmt joins the in-flight statement group unless the server is
// draining. Every successful call must be paired with endStmt.
func (s *Server) beginStmt() bool {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	if s.state.Load() != stateRunning {
		return false
	}
	s.inflight.Add(1)
	return true
}

func (s *Server) endStmt() { s.inflight.Done() }

func (s *Server) draining() bool { return s.state.Load() != stateRunning }

// Shutdown drains the daemon gracefully, in order: (1) flip to
// draining — new statements and new connections get the typed
// shutting_down error, statements already executing keep running,
// statements waiting in the admission queue are failed fast; (2) wait
// for in-flight statements to complete and their responses to be
// written, bounded by DrainTimeout (then by ctx); (3) checkpoint the
// WAL so a durable database restarts from a snapshot instead of a long
// replay; (4) close the listener and every remaining connection.
func (s *Server) Shutdown(ctx context.Context) error {
	s.drainMu.Lock()
	if !s.state.CompareAndSwap(stateRunning, stateDraining) {
		s.drainMu.Unlock()
		return errors.New("server: already shut down")
	}
	s.drainMu.Unlock()
	s.drainCancel()

	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	timer := time.NewTimer(s.cfg.DrainTimeout)
	defer timer.Stop()
	var drainErr error
	select {
	case <-done:
	case <-timer.C:
		drainErr = errors.New("server: drain timeout; in-flight statements abandoned")
	case <-ctx.Done():
		drainErr = ctx.Err()
	}

	var ckptErr error
	if drainErr == nil && s.db.WAL() != nil {
		ckptErr = s.db.Checkpoint()
	}

	s.state.Store(stateClosed)
	s.closeAll()
	if drainErr != nil {
		return drainErr
	}
	return ckptErr
}

// Abort kills the daemon without draining or checkpointing — the
// serving half of a crash test (pair with engine.DB.Crash). Safe to
// call concurrently with Shutdown; whoever flips the state first wins.
func (s *Server) Abort() {
	s.state.Store(stateClosed)
	s.drainCancel()
	s.closeAll()
}

// closeAll closes the listener and every live connection.
func (s *Server) closeAll() {
	s.mu.Lock()
	if s.ln != nil {
		_ = s.ln.Close()
	}
	conns := make([]net.Conn, 0, len(s.sessions))
	for _, c := range s.sessions {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		_ = c.Close()
	}
}

// MetricsHandler is the daemon's live dashboard: "/" renders a
// plain-text summary of the server.* cells, "/metrics" serves the full
// registry snapshot as JSON (the existing obs handler).
func (s *Server) MetricsHandler() http.Handler {
	reg := s.db.Observability().Reg
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		snap := reg.Snapshot()
		names := make([]string, 0, len(snap))
		for name := range snap {
			if strings.HasPrefix(name, "server.") || strings.HasPrefix(name, "engine.") {
				names = append(names, name)
			}
		}
		sort.Strings(names)
		fmt.Fprintf(w, "onlinetuner daemon — %s\n\n", hostnameOrEmpty())
		for _, name := range names {
			fmt.Fprintf(w, "%-28s %v\n", name, summarize(snap[name]))
		}
		fmt.Fprintf(w, "\nfull snapshot: /metrics\n")
	})
	return mux
}

func hostnameOrEmpty() string {
	h, err := os.Hostname()
	if err != nil {
		return ""
	}
	return h
}

// summarize renders one snapshot cell for the text dashboard;
// histograms compress to count/mean.
func summarize(v any) string {
	if h, ok := v.(obs.HistogramSnapshot); ok {
		if h.Count == 0 {
			return "count=0"
		}
		return fmt.Sprintf("count=%d mean=%.0f", h.Count, h.Sum/float64(h.Count))
	}
	return fmt.Sprint(v)
}
