package server

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// sampleRequests covers every op and field shape the protocol defines;
// the fuzz corpus and round-trip tests both draw from it.
func sampleRequests() []*Request {
	return []*Request{
		{ID: 1, Op: OpQuery, SQL: "SELECT a FROM r WHERE id = 7"},
		{ID: 2, Op: OpExec, SQL: "INSERT INTO r VALUES (1, 2)"},
		{ID: 3, Op: OpExplain, SQL: "SELECT a FROM r"},
		{ID: 4, Op: OpPrepare, Name: "q1", SQL: "SELECT a FROM r WHERE id = 9"},
		{ID: 5, Op: OpExecPrepared, Name: "q1"},
		{ID: 6, Op: OpBegin},
		{ID: 7, Op: OpCommit},
		{ID: 8, Op: OpRollback},
		{ID: 9, Op: OpPing},
		{ID: 10, Op: OpClose},
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var stream []byte
	bodies := make([][]byte, 0, len(sampleRequests()))
	for _, req := range sampleRequests() {
		body, err := EncodeRequest(req)
		if err != nil {
			t.Fatal(err)
		}
		bodies = append(bodies, body)
		stream = AppendFrame(stream, body)
	}
	// Slice decoding walks the stream frame by frame.
	off := 0
	for i := range bodies {
		body, n, err := DecodeFrame(stream[off:], 0)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(body, bodies[i]) {
			t.Fatalf("frame %d: body mismatch", i)
		}
		off += n
	}
	if off != len(stream) {
		t.Fatalf("consumed %d of %d bytes", off, len(stream))
	}
	// Reader decoding sees the same bodies.
	r := bytes.NewReader(stream)
	for i := range bodies {
		body, err := ReadFrame(r, 0)
		if err != nil {
			t.Fatalf("read frame %d: %v", i, err)
		}
		if !bytes.Equal(body, bodies[i]) {
			t.Fatalf("read frame %d: body mismatch", i)
		}
	}
	if _, err := ReadFrame(r, 0); err != io.EOF {
		t.Fatalf("trailing read: got %v, want EOF", err)
	}
}

func TestFrameErrors(t *testing.T) {
	body, _ := EncodeRequest(&Request{ID: 1, Op: OpPing})
	frame := AppendFrame(nil, body)

	// Every truncation of a valid frame must report truncated, never
	// panic, never succeed.
	for cut := 0; cut < len(frame); cut++ {
		if _, _, err := DecodeFrame(frame[:cut], 0); !errors.Is(err, ErrFrameTruncated) {
			t.Fatalf("cut %d: got %v, want ErrFrameTruncated", cut, err)
		}
	}

	// A declared length over the cap errors before any allocation, from
	// both entry points.
	var huge [frameHeader]byte
	binary.BigEndian.PutUint32(huge[:], 1<<30)
	if _, _, err := DecodeFrame(huge[:], 1<<20); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized decode: got %v", err)
	}
	if _, err := ReadFrame(bytes.NewReader(huge[:]), 1<<20); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized read: got %v", err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		_, _, _ = DecodeFrame(huge[:], 1<<20)
		_, _ = ReadFrame(bytes.NewReader(huge[:]), 1<<20)
	})
	// The error paths may allocate the wrapped error; what they must
	// never do is allocate anything sized by the hostile header.
	if allocs > 16 {
		t.Fatalf("oversized-frame error path allocates %v objects", allocs)
	}

	// Zero-length frames are a protocol violation.
	var zero [frameHeader]byte
	if _, _, err := DecodeFrame(zero[:], 0); !errors.Is(err, ErrFrameEmpty) {
		t.Fatalf("empty frame: got %v", err)
	}

	// A frame body that is not a request JSON is rejected, as is a
	// response smuggled where a request belongs.
	if _, err := DecodeRequest([]byte("{\"op\":1}")); err == nil {
		t.Fatal("numeric op accepted")
	}
	if _, err := DecodeRequest([]byte("{}")); err == nil {
		t.Fatal("missing op accepted")
	}
	respBody, _ := EncodeResponse(&Response{ID: 9, OK: true})
	if _, err := DecodeRequest(respBody); err == nil {
		t.Fatal("response body accepted as request")
	}
}

// TestGenerateWireCorpus regenerates the checked-in seed corpus when
// SERVER_GEN_CORPUS=1; a no-op otherwise (mirrors the WAL decoder's
// corpus generator).
func TestGenerateWireCorpus(t *testing.T) {
	if os.Getenv("SERVER_GEN_CORPUS") == "" {
		t.Skip("set SERVER_GEN_CORPUS=1 to regenerate the fuzz seed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzWireDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	write := func(name string, data []byte) {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	var all []byte
	for i, req := range sampleRequests() {
		body, err := EncodeRequest(req)
		if err != nil {
			t.Fatal(err)
		}
		write(fmt.Sprintf("seed-op-%02d", i), AppendFrame(nil, body))
		all = AppendFrame(all, body)
	}
	write("seed-stream", all)
	write("seed-truncated", all[:len(all)-7])
	flipped := append([]byte(nil), all...)
	flipped[len(flipped)/3] ^= 0x20
	write("seed-bitflip", flipped)
	var huge [frameHeader]byte
	binary.BigEndian.PutUint32(huge[:], 1<<30)
	write("seed-oversized", huge[:])
	write("seed-empty-frame", []byte{0, 0, 0, 0})
	write("seed-garbage", []byte{0, 0, 0, 5, 'h', 'e', 'l', 'l', 'o'})
}

// FuzzWireDecode throws arbitrary bytes at the frame and request
// decoders. They must never panic, never over-allocate from a hostile
// length header, and any request they accept must re-encode to a form
// they accept again, identically (truncated, oversized, and garbage
// frames all error cleanly).
func FuzzWireDecode(f *testing.F) {
	for _, req := range sampleRequests() {
		body, err := EncodeRequest(req)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(AppendFrame(nil, body))
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		const maxFrame = 1 << 16
		off := 0
		for off < len(data) {
			body, n, err := DecodeFrame(data[off:], maxFrame)
			if err != nil {
				// The reader path must agree that the stream ends here
				// (modulo its io error naming).
				if _, rerr := ReadFrame(bytes.NewReader(data[off:]), maxFrame); rerr == nil {
					t.Fatalf("DecodeFrame errored (%v) but ReadFrame succeeded", err)
				}
				break
			}
			if n <= frameHeader || off+n > len(data) {
				t.Fatalf("decode consumed %d bytes of %d", n, len(data)-off)
			}
			if len(body) != n-frameHeader {
				t.Fatalf("body %d bytes for frame of %d", len(body), n)
			}
			req, err := DecodeRequest(body)
			if err == nil {
				re, err := EncodeRequest(req)
				if err != nil {
					t.Fatalf("re-encode of accepted request: %v", err)
				}
				req2, err := DecodeRequest(re)
				if err != nil {
					t.Fatalf("re-decode of re-encoded request: %v", err)
				}
				if !reflect.DeepEqual(req, req2) {
					t.Fatalf("re-encoding is not a fixed point: %+v vs %+v", req, req2)
				}
			}
			off += n
		}
	})
}
