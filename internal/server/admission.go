package server

import (
	"context"
	"sync/atomic"
	"time"

	"onlinetuner/internal/obs"
)

// admission gates statement execution behind a token semaphore so the
// daemon's concurrency is bounded by a budget derived from the engine's
// one par.Pool, not by how many clients happen to be connected. The
// pool itself is non-blocking — a statement that gets no extra worker
// slots simply runs sequentially — so without this gate every connected
// session would run its statement "in parallel" as a sequential
// execution, oversubscribing the machine and destroying tail latency.
// Admission keeps at most `slots` statements executing; up to
// `queueCap` more may wait, each for at most `timeout`; everything past
// that is rejected immediately with the typed backpressure error.
// Nothing queues unboundedly: memory per overload is one waiting
// goroutine per queue slot, full stop.
type admission struct {
	slots    chan struct{}
	queueCap int64
	queued   atomic.Int64
	timeout  time.Duration

	admitted *obs.Counter
	rejected *obs.Counter
	waitNS   *obs.Histogram
	depth    *obs.Gauge
}

// newAdmission sizes the gate: slots concurrent executions, queueCap
// waiters, timeout per waiter. Metrics register as server.* cells in
// reg.
func newAdmission(slots, queueCap int, timeout time.Duration, reg *obs.Registry) *admission {
	if slots < 1 {
		slots = 1
	}
	if queueCap < 0 {
		queueCap = 0
	}
	a := &admission{
		slots:    make(chan struct{}, slots),
		queueCap: int64(queueCap),
		timeout:  timeout,
		admitted: reg.Counter("server.admitted"),
		rejected: reg.Counter("server.rejected"),
		waitNS:   reg.Histogram("server.queue_wait_ns", obs.DefaultLatencyBuckets),
		depth:    reg.Gauge("server.queue_depth"),
	}
	for i := 0; i < slots; i++ {
		a.slots <- struct{}{}
	}
	return a
}

// errOverloaded is the typed backpressure rejection.
var errOverloaded = &WireError{Code: CodeOverloaded, Message: "admission queue full; retry with backoff"}

// acquire claims an execution token. The fast path is one channel
// receive; under contention the caller joins the bounded wait queue.
// Returns the release func, or the typed overload error when the queue
// is full or the wait times out, or the typed shutting-down error when
// ctx (the server's drain context) is cancelled while waiting.
func (a *admission) acquire(ctx context.Context) (func(), error) {
	select {
	case <-a.slots:
		a.admitted.Inc()
		return a.release, nil
	default:
	}
	// Queue admission: reserve a bounded waiter slot or reject now.
	for {
		q := a.queued.Load()
		if q >= a.queueCap {
			a.rejected.Inc()
			return nil, errOverloaded
		}
		if a.queued.CompareAndSwap(q, q+1) {
			break
		}
	}
	a.depth.Add(1)
	start := time.Now()
	timer := time.NewTimer(a.timeout)
	defer func() {
		timer.Stop()
		a.queued.Add(-1)
		a.depth.Add(-1)
	}()
	select {
	case <-a.slots:
		a.waitNS.Observe(float64(time.Since(start).Nanoseconds()))
		a.admitted.Inc()
		return a.release, nil
	case <-timer.C:
		a.rejected.Inc()
		return nil, errOverloaded
	case <-ctx.Done():
		a.rejected.Inc()
		return nil, &WireError{Code: CodeShuttingDown, Message: "server is draining"}
	}
}

func (a *admission) release() { a.slots <- struct{}{} }
