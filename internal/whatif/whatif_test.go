package whatif

import (
	"math"
	"strings"
	"testing"

	"onlinetuner/internal/catalog"
	"onlinetuner/internal/datum"
	"onlinetuner/internal/stats"
	"onlinetuner/internal/storage"
)

// paperEnv builds the paper's Section 4.1 table R(id,a,b,c,d,e) with rows
// and statistics, returning the env.
func paperEnv(t *testing.T, rows int) *Env {
	t.Helper()
	cat := catalog.New()
	tbl, err := catalog.NewTable("R", []catalog.Column{
		{Name: "id", Kind: datum.KInt},
		{Name: "a", Kind: datum.KInt},
		{Name: "b", Kind: datum.KInt},
		{Name: "c", Kind: datum.KInt},
		{Name: "d", Kind: datum.KInt},
		{Name: "e", Kind: datum.KInt},
	}, []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.AddTable(tbl); err != nil {
		t.Fatal(err)
	}
	mgr := storage.NewManager(cat)
	if err := mgr.CreateTable("R"); err != nil {
		t.Fatal(err)
	}
	st := stats.NewStore()
	var aVals []datum.Datum
	for i := 0; i < rows; i++ {
		r := datum.Row{
			datum.NewInt(int64(i)), datum.NewInt(int64(i % 1000)),
			datum.NewInt(int64(i)), datum.NewInt(int64(i)),
			datum.NewInt(int64(i)), datum.NewInt(int64(i)),
		}
		if _, _, err := mgr.Insert("R", r); err != nil {
			t.Fatal(err)
		}
		aVals = append(aVals, r[1])
	}
	st.BuildColumn("R", "a", aVals, 32)
	return NewEnv(cat, st, mgr)
}

// q1SeekRequest models the paper's q1 = SELECT a,b,c,id FROM R WHERE
// a<100 as a seek request.
func q1SeekRequest(e *Env) *Request {
	return &Request{
		Table:          "R",
		Kind:           KindSeek,
		RangeCol:       "a",
		RangeSel:       0.1,
		Required:       []string{"a", "b", "c", "id"},
		Bindings:       1,
		RowsPerBinding: e.TableRows("R") * 0.1,
		TableRows:      e.TableRows("R"),
		TablePages:     e.TablePages("R"),
	}
}

func q1ScanRequest(e *Env) *Request {
	r := q1SeekRequest(e)
	r.Kind = KindScan
	r.RangeCol = ""
	r.ResidualPreds = 1
	return r
}

func TestGetBestIndexMatchesPaper(t *testing.T) {
	e := paperEnv(t, 5000)
	// Seek request for q1 → I2 = R(a,b,c,id).
	seek := GetBestIndex(e.Cat, q1SeekRequest(e))
	if got := strings.Join(seek.Columns, ","); got != "a,b,c,id" {
		t.Errorf("seek best index = %s, want a,b,c,id", got)
	}
	// Scan request for q1 → I1 = R(id,a,b,c): clustering key first.
	scan := GetBestIndex(e.Cat, q1ScanRequest(e))
	if got := strings.Join(scan.Columns, ","); got != "id,a,b,c" {
		t.Errorf("scan best index = %s, want id,a,b,c", got)
	}
	// q2 = SELECT a,d,e,id WHERE a<100 → I4 = R(a,d,e,id).
	q2 := q1SeekRequest(e)
	q2.Required = []string{"a", "d", "e", "id"}
	if got := strings.Join(GetBestIndex(e.Cat, q2).Columns, ","); got != "a,d,e,id" {
		t.Errorf("q2 best index = %s, want a,d,e,id", got)
	}
	// Update requests have no best index.
	if GetBestIndex(e.Cat, &Request{Table: "R", Kind: KindUpdate}) != nil {
		t.Error("update request should have no best index")
	}
	// Unknown table.
	if GetBestIndex(e.Cat, &Request{Table: "Nope", Kind: KindSeek, EqCols: []string{"x"}, EqSels: []float64{0.1}}) != nil {
		t.Error("unknown table should yield nil")
	}
}

func TestGetBestIndexSortLeads(t *testing.T) {
	e := paperEnv(t, 100)
	r := &Request{
		Table: "R", Kind: KindScan,
		Required: []string{"b", "c"}, SortCols: []string{"b"},
		TableRows: 100, TablePages: 1, Bindings: 1, RowsPerBinding: 100,
	}
	best := GetBestIndex(e.Cat, r)
	if best.Columns[0] != "b" {
		t.Errorf("sort column should lead: %v", best.Columns)
	}
}

func TestGetBestIndexEqThenRange(t *testing.T) {
	e := paperEnv(t, 100)
	r := &Request{
		Table: "R", Kind: KindSeek,
		EqCols: []string{"b"}, EqSels: []float64{0.01},
		RangeCol: "a", RangeSel: 0.2,
		Required:  []string{"c", "b", "a"},
		TableRows: 100, TablePages: 1, Bindings: 1, RowsPerBinding: 1,
	}
	best := GetBestIndex(e.Cat, r)
	if got := strings.Join(best.Columns, ","); got != "b,a,c" {
		t.Errorf("best = %s, want b,a,c", got)
	}
}

func TestGetCostOrdering(t *testing.T) {
	e := paperEnv(t, 5000)
	req := q1SeekRequest(e)

	heapCost := GetCost(e, req, nil)
	i1 := &catalog.Index{Name: "I1", Table: "R", Columns: []string{"id", "a", "b", "c"}}
	i2 := &catalog.Index{Name: "I2", Table: "R", Columns: []string{"a", "b", "c", "id"}}

	c1 := GetCost(e, req, []*catalog.Index{i1})
	c2 := GetCost(e, req, []*catalog.Index{i2})

	// The paper's cost ladder: heap scan (0.57) > covering narrow scan via
	// I1 (0.29) > covering seek via I2 (0.09).
	if !(c2 < c1 && c1 < heapCost) {
		t.Errorf("cost ladder violated: heap=%.3f I1=%.3f I2=%.3f", heapCost, c1, c2)
	}
	// With both available, the seek wins.
	both := GetCost(e, req, []*catalog.Index{i1, i2})
	if both != c2 {
		t.Errorf("best-of-both = %.3f, want %.3f", both, c2)
	}
}

func TestImplCostNonCoveringAddsLookups(t *testing.T) {
	e := paperEnv(t, 5000)
	req := q1SeekRequest(e)
	narrow := &catalog.Index{Name: "Ia", Table: "R", Columns: []string{"a"}}
	wide := &catalog.Index{Name: "Iw", Table: "R", Columns: []string{"a", "b", "c", "id"}}
	cn := ImplCost(e, req, narrow)
	cw := ImplCost(e, req, wide)
	if cn <= cw {
		t.Errorf("non-covering (%.3f) should cost more than covering (%.3f)", cn, cw)
	}
}

func TestImplCostUnusableIndex(t *testing.T) {
	e := paperEnv(t, 1000)
	req := q1SeekRequest(e)
	// Index that neither seeks on a nor covers the required columns.
	bad := &catalog.Index{Name: "Ibad", Table: "R", Columns: []string{"d", "e"}}
	if c := ImplCost(e, req, bad); !math.IsInf(c, 1) {
		t.Errorf("unusable index cost = %g, want +Inf", c)
	}
	// Wrong table is unusable too.
	other := &catalog.Index{Name: "Io", Table: "S", Columns: []string{"a"}}
	if c := ImplCost(e, req, other); !math.IsInf(c, 1) {
		t.Error("wrong-table index should be +Inf")
	}
}

func TestBindingsScaleSeeks(t *testing.T) {
	e := paperEnv(t, 5000)
	ix := &catalog.Index{Name: "Ia", Table: "R", Columns: []string{"a", "b", "c", "id"}}
	one := q1SeekRequest(e)
	many := q1SeekRequest(e)
	many.Bindings = 2500
	many.RowsPerBinding = 1
	many.RangeCol = ""
	many.EqCols = []string{"a"}
	many.EqSels = []float64{1.0 / 1000}
	one2 := *many
	one2.Bindings = 1
	cMany := ImplCost(e, many, ix)
	cOne := ImplCost(e, &one2, ix)
	if cMany <= cOne {
		t.Errorf("2500 bindings (%.3f) should cost more than 1 (%.3f)", cMany, cOne)
	}
	_ = one
}

func TestUpdateCostGrowsWithIndexes(t *testing.T) {
	e := paperEnv(t, 1000)
	req := &Request{
		Table: "R", Kind: KindUpdate, UpdateRows: 100,
		TableRows: 1000, TablePages: e.TablePages("R"),
	}
	base := GetCost(e, req, nil)
	i1 := &catalog.Index{Name: "I1", Table: "R", Columns: []string{"a"}}
	i2 := &catalog.Index{Name: "I2", Table: "R", Columns: []string{"b"}}
	c1 := GetCost(e, req, []*catalog.Index{i1})
	c2 := GetCost(e, req, []*catalog.Index{i1, i2})
	if !(base < c1 && c1 < c2) {
		t.Errorf("update cost should grow with indexes: %g %g %g", base, c1, c2)
	}
	// Primary index never adds maintenance in the shell accounting.
	pk := e.Cat.PrimaryIndex("R")
	if GetCost(e, req, []*catalog.Index{pk}) != base {
		t.Error("primary index should not add update-shell cost")
	}
}

func TestSortNeededCharges(t *testing.T) {
	e := paperEnv(t, 5000)
	req := q1SeekRequest(e)
	req.SortCols = []string{"b"}
	// I2 = (a,b,...) satisfies ORDER BY b after the range... no: a range
	// on the leading column does not pin it, so b is not sorted. Only an
	// equality prefix does.
	i2 := &catalog.Index{Name: "I2", Table: "R", Columns: []string{"a", "b", "c", "id"}}
	withRange := ImplCost(e, req, i2)
	// Equality on a pins the prefix: (a,b,...) yields b-order, no sort.
	eqReq := q1SeekRequest(e)
	eqReq.RangeCol = ""
	eqReq.EqCols = []string{"a"}
	eqReq.EqSels = []float64{0.001}
	eqReq.SortCols = []string{"b"}
	eqReq.RowsPerBinding = 5
	noSort := ImplCost(e, eqReq, i2)
	sorted := *eqReq
	sorted.SortCols = []string{"c"} // (a,b,...) does not give c-order
	withSort := ImplCost(e, &sorted, i2)
	if withSort <= noSort {
		t.Errorf("unsatisfied order should add sort cost: %g vs %g", withSort, noSort)
	}
	_ = withRange
}

func TestBuildCostSortAvoidance(t *testing.T) {
	e := paperEnv(t, 5000)
	i1 := &catalog.Index{Name: "I1", Table: "R", Columns: []string{"id", "a", "b", "c"}}
	i2 := &catalog.Index{Name: "I2", Table: "R", Columns: []string{"a", "b", "c", "id"}}
	b1 := BuildCost(e, i1) // prefix of primary (id,...) → no sort
	b2 := BuildCost(e, i2) // needs sort
	if b1 >= b2 {
		t.Errorf("I1 build (%.3f) should be cheaper than I2 (%.3f)", b1, b2)
	}
	// After materializing I2, an (a,b)-prefix index becomes cheap to build.
	if err := e.Cat.AddIndex(i2); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Mgr.BuildIndex(i2); err != nil {
		t.Fatal(err)
	}
	i3 := &catalog.Index{Name: "I3", Table: "R", Columns: []string{"a", "b"}}
	b3 := BuildCost(e, i3)
	if b3 >= b2 {
		t.Errorf("I3 build from I2 (%.3f) should be cheaper than sorted build (%.3f)", b3, b2)
	}
}

func TestRequestTreeAndORGroups(t *testing.T) {
	r1 := &Request{Table: "R", Kind: KindSeek}
	r2 := &Request{Table: "S", Kind: KindSeek}
	r3 := &Request{Table: "S", Kind: KindScan}
	tree := NewAnd(NewLeaf(r1), NewOr(NewLeaf(r2), NewLeaf(r3)))
	reqs := tree.Requests()
	if len(reqs) != 3 {
		t.Fatalf("requests = %d, want 3", len(reqs))
	}
	groups := tree.ORGroups()
	if len(groups) != 1 || len(groups[0]) != 2 {
		t.Fatalf("or groups = %v", groups)
	}
	if !strings.Contains(tree.String(), "OR") {
		t.Error("tree rendering missing OR")
	}
	// Nil-safety.
	var nilNode *Node
	if nilNode.Requests() != nil {
		t.Error("nil node should have no requests")
	}
}

func TestEnvAvailable(t *testing.T) {
	e := paperEnv(t, 100)
	pk := e.Cat.PrimaryIndex("R")
	if !e.Available(pk) {
		t.Error("primary must always be available")
	}
	ix := &catalog.Index{Name: "I1", Table: "R", Columns: []string{"a"}}
	if e.Available(ix) {
		t.Error("unmaterialized index reported available")
	}
	if err := e.Cat.AddIndex(ix); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Mgr.BuildIndex(ix); err != nil {
		t.Fatal(err)
	}
	if !e.Available(ix) {
		t.Error("active index reported unavailable")
	}
	if err := e.Mgr.SuspendIndex(ix.ID()); err != nil {
		t.Fatal(err)
	}
	if e.Available(ix) {
		t.Error("suspended index reported available")
	}
}
