package whatif

import (
	"hash/fnv"
	"math"
	"sort"
	"strings"

	"onlinetuner/internal/catalog"
)

// memoCostCap bounds the cost memo; past it the memo is cleared rather
// than evicted entry by entry (the working set per workload phase is far
// below the cap, so a clear is a rare full re-warm, not churn).
const memoCostCap = 8192

// Memo caches what-if cost evaluations across the repeated GetCost and
// ImplCost calls of one observer pass — and, because every cost is a
// pure function of its key, across statements too.
//
// Two layers:
//
//   - a per-statement index-size snapshot: IndexPages/IndexBytes hit
//     storage (or the width×rows estimator) once per index per
//     statement, instead of once per request evaluation. BeginStatement
//     resets it, so sizes can never go stale across the physical
//     changes the tuner makes between statements.
//   - a cost memo keyed by (request signature, config signature): the
//     config signature covers each index's identity and snapshot page
//     count, making the memoized value exactly the one getCost would
//     recompute. Entries therefore survive BeginStatement; the map is
//     cleared only on a physical-design or statistics epoch change (to
//     stay bounded and drop dead keys), or at memoCostCap.
//
// Memo is NOT safe for concurrent use: it is owned by the tuner and
// used only under the tuner's mutex.
type Memo struct {
	env        *Env
	cfgVersion int64
	statsEpoch int64

	pages map[string]float64 // index ID → page snapshot
	bytes map[string]int64   // index ID → byte snapshot
	costs map[memoKey]float64

	stats MemoStats
}

type memoKey struct {
	req uint64
	cfg uint64
}

// MemoStats are the memo's observability counters.
type MemoStats struct {
	Hits       int64
	Misses     int64
	SizeHits   int64 // index-size lookups served from the statement snapshot
	SizeMisses int64 // index-size lookups that went to storage
	Clears     int64 // cost-memo invalidations (epoch change or cap)
}

// NewMemo returns an empty memo over the environment.
func NewMemo(env *Env) *Memo {
	return &Memo{
		env:   env,
		pages: make(map[string]float64),
		bytes: make(map[string]int64),
		costs: make(map[memoKey]float64),
	}
}

// Env returns the underlying what-if environment.
func (m *Memo) Env() *Env { return m.env }

// Stats returns a copy of the counters.
func (m *Memo) Stats() MemoStats { return m.stats }

// BeginStatement starts a new statement observation: the per-statement
// size snapshot is dropped (sizes may have changed since the last
// statement), and the cost memo is cleared when the physical design or
// statistics epoch moved, or when it outgrew its cap.
func (m *Memo) BeginStatement(cfgVersion, statsEpoch int64) {
	clear(m.pages)
	clear(m.bytes)
	if cfgVersion != m.cfgVersion || statsEpoch != m.statsEpoch || len(m.costs) > memoCostCap {
		if len(m.costs) > 0 {
			m.stats.Clears++
		}
		clear(m.costs)
		m.cfgVersion = cfgVersion
		m.statsEpoch = statsEpoch
	}
}

// IndexPages returns Env.IndexPages through the statement snapshot.
func (m *Memo) IndexPages(ix *catalog.Index) float64 {
	id := ix.ID()
	if p, ok := m.pages[id]; ok {
		m.stats.SizeHits++
		return p
	}
	m.stats.SizeMisses++
	p := m.env.IndexPages(ix)
	m.pages[id] = p
	return p
}

// IndexBytes returns Env.IndexBytes through the statement snapshot.
func (m *Memo) IndexBytes(ix *catalog.Index) int64 {
	id := ix.ID()
	if b, ok := m.bytes[id]; ok {
		m.stats.SizeHits++
		return b
	}
	m.stats.SizeMisses++
	b := m.env.IndexBytes(ix)
	m.bytes[id] = b
	return b
}

// GetCost is the memoized GetCost primitive.
func (m *Memo) GetCost(r *Request, config []*catalog.Index) float64 {
	key := memoKey{req: requestSig(r), cfg: m.configSig(r.Table, config)}
	if c, ok := m.costs[key]; ok {
		m.stats.Hits++
		return c
	}
	m.stats.Misses++
	c := getCost(m.env, r, config, m.IndexPages)
	m.costs[key] = c
	return c
}

// ImplCost is the memoized ImplCost primitive.
func (m *Memo) ImplCost(r *Request, ix *catalog.Index) float64 {
	h := fnv.New64a()
	h.Write([]byte{0x02}) // domain-separate from GetCost config signatures
	writeString(h, ix.ID())
	writeFloat(h, m.IndexPages(ix))
	key := memoKey{req: requestSig(r), cfg: h.Sum64()}
	if c, ok := m.costs[key]; ok {
		m.stats.Hits++
		return c
	}
	m.stats.Misses++
	c := implCostPages(m.env, r, ix, m.IndexPages(ix))
	m.costs[key] = c
	return c
}

// configSig hashes the identity and snapshot size of every config index
// on the request's table (others cannot influence the cost). IDs are
// sorted so the signature is order-independent, matching getCost's
// min-over-alternatives semantics.
func (m *Memo) configSig(table string, config []*catalog.Index) uint64 {
	type idPages struct {
		id    string
		pages float64
	}
	var parts []idPages
	for _, ix := range config {
		if ix == nil || !strings.EqualFold(ix.Table, table) {
			continue
		}
		parts = append(parts, idPages{id: ix.ID(), pages: m.IndexPages(ix)})
	}
	// The primary index participates in getCost implicitly; its pages
	// equal the heap pages, which are part of the request signature
	// (TablePages), so it needs no separate entry here.
	sort.Slice(parts, func(i, j int) bool { return parts[i].id < parts[j].id })
	h := fnv.New64a()
	h.Write([]byte{0x01})
	for _, p := range parts {
		writeString(h, p.id)
		writeFloat(h, p.pages)
	}
	return h.Sum64()
}

// requestSig hashes every field of the request that getCost/implCost
// read. CurrentCost, CurrentIndexID and Implemented are plan-side
// annotations the cost functions never touch, so they are excluded to
// maximize sharing.
func requestSig(r *Request) uint64 {
	h := fnv.New64a()
	writeString(h, strings.ToLower(r.Table))
	h.Write([]byte{byte(r.Kind)})
	for i, c := range r.EqCols {
		writeString(h, strings.ToLower(c))
		writeFloat(h, r.EqSels[i])
	}
	h.Write([]byte{0xfe})
	writeString(h, strings.ToLower(r.RangeCol))
	writeFloat(h, r.RangeSel)
	for _, c := range r.Required {
		writeString(h, strings.ToLower(c))
	}
	h.Write([]byte{0xfe})
	for _, c := range r.SortCols {
		writeString(h, strings.ToLower(c))
	}
	h.Write([]byte{0xfe})
	writeFloat(h, r.Bindings)
	writeFloat(h, r.RowsPerBinding)
	writeFloat(h, float64(r.ResidualPreds))
	writeFloat(h, r.TableRows)
	writeFloat(h, r.TablePages)
	writeFloat(h, r.UpdateRows)
	writeFloat(h, float64(r.UpdateTouchedIndexes))
	return h.Sum64()
}

type hash64 interface {
	Write(p []byte) (int, error)
}

func writeString(h hash64, s string) {
	_, _ = h.Write([]byte(s))
	_, _ = h.Write([]byte{0xff})
}

func writeFloat(h hash64, f float64) {
	b := math.Float64bits(f)
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(b >> (8 * i))
	}
	_, _ = h.Write(buf[:])
}
