package whatif

import (
	"math"
	"testing"

	"onlinetuner/internal/catalog"
	"onlinetuner/internal/datum"
	"onlinetuner/internal/stats"
	"onlinetuner/internal/storage"
)

// memoEnv builds a materialized single-table environment with a primary
// key and one secondary index available for what-if configurations.
func memoEnv(t *testing.T, rows int) (*Env, *catalog.Index) {
	t.Helper()
	cat := catalog.New()
	tbl, err := catalog.NewTable("r", []catalog.Column{
		{Name: "id", Kind: datum.KInt},
		{Name: "a", Kind: datum.KInt},
		{Name: "b", Kind: datum.KInt},
	}, []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.AddTable(tbl); err != nil {
		t.Fatal(err)
	}
	mgr := storage.NewManager(cat)
	if err := mgr.CreateTable("r"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		_, _, err := mgr.Insert("r", datum.Row{
			datum.NewInt(int64(i)),
			datum.NewInt(int64(i % 97)),
			datum.NewInt(int64(i % 13)),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	ix := (&catalog.Index{Name: "r_a", Table: "r", Columns: []string{"a", "id"}}).Canonicalize()
	return NewEnv(cat, stats.NewStore(), mgr), ix
}

func memoRequests(ix *catalog.Index, rows float64) []*Request {
	return []*Request{
		{Table: "r", Kind: KindSeek, EqCols: []string{"a"}, EqSels: []float64{1.0 / 97},
			Required: []string{"a", "id"}, Bindings: 1, RowsPerBinding: rows / 97,
			TableRows: rows, TablePages: rows / 50},
		{Table: "r", Kind: KindSeek, EqCols: []string{"a"}, EqSels: []float64{1.0 / 97},
			RangeCol: "b", RangeSel: 0.25, Required: []string{"a", "b", "id"},
			Bindings: 4, RowsPerBinding: rows / 400, ResidualPreds: 1,
			TableRows: rows, TablePages: rows / 50},
		{Table: "r", Kind: KindScan, Required: []string{"b", "id"},
			SortCols: []string{"b"}, Bindings: 1, RowsPerBinding: rows,
			TableRows: rows, TablePages: rows / 50},
		{Table: "r", Kind: KindUpdate, UpdateRows: 3, UpdateTouchedIndexes: 1,
			TableRows: rows, TablePages: rows / 50},
	}
}

// TestMemoMatchesDirect asserts the central memo property: every
// memoized answer equals the corresponding un-memoized computation, on
// first (miss) and second (hit) evaluation alike.
func TestMemoMatchesDirect(t *testing.T) {
	env, ix := memoEnv(t, 2000)
	m := NewMemo(env)
	m.BeginStatement(1, 1)

	configs := [][]*catalog.Index{nil, {ix}}
	for pass := 0; pass < 2; pass++ {
		for _, r := range memoRequests(ix, 2000) {
			for _, cfg := range configs {
				got := m.GetCost(r, cfg)
				want := GetCost(env, r, cfg)
				if got != want {
					t.Fatalf("pass %d GetCost(%v, cfg=%d): memo %v, direct %v", pass, r, len(cfg), got, want)
				}
			}
			got := m.ImplCost(r, ix)
			want := ImplCost(env, r, ix)
			if got != want && !(math.IsInf(got, 1) && math.IsInf(want, 1)) {
				t.Fatalf("pass %d ImplCost(%v): memo %v, direct %v", pass, r, got, want)
			}
		}
	}
	st := m.Stats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("expected both hits and misses, got %+v", st)
	}
	// Second pass must be all hits: same requests, same configs.
	if st.Hits < st.Misses {
		t.Fatalf("second pass should hit every entry: %+v", st)
	}
}

// TestMemoSnapshotsIndexSizes is the regression test for the
// per-statement size hoist: within one statement, a materialized
// index's size is looked up once and reused even if the underlying
// structure grows; BeginStatement refreshes it.
func TestMemoSnapshotsIndexSizes(t *testing.T) {
	env, ix := memoEnv(t, 500)
	if _, err := env.Mgr.BuildIndex(ix); err != nil {
		t.Fatal(err)
	}
	m := NewMemo(env)
	m.BeginStatement(1, 1)

	before := m.IndexPages(ix)
	if before != env.IndexPages(ix) {
		t.Fatalf("first lookup must be live: %v vs %v", before, env.IndexPages(ix))
	}

	// Grow the index enough to change its page count.
	for i := 0; i < 5000; i++ {
		if _, _, err := env.Mgr.Insert("r", datum.Row{
			datum.NewInt(int64(10000 + i)), datum.NewInt(int64(i)), datum.NewInt(0),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if env.IndexPages(ix) == before {
		t.Fatal("test needs the physical size to change")
	}
	if got := m.IndexPages(ix); got != before {
		t.Fatalf("mid-statement lookup must reuse the snapshot: got %v, snapshot %v", got, before)
	}
	if got := m.IndexBytes(ix); got == env.IndexBytes(ix) {
		// bytes was first read after the growth: snapshot it now and grow again
		// to exercise the bytes path too.
		for i := 0; i < 5000; i++ {
			if _, _, err := env.Mgr.Insert("r", datum.Row{
				datum.NewInt(int64(20000 + i)), datum.NewInt(int64(i)), datum.NewInt(0),
			}); err != nil {
				t.Fatal(err)
			}
		}
		if again := m.IndexBytes(ix); again != got {
			t.Fatalf("mid-statement byte lookup must reuse the snapshot: %v vs %v", again, got)
		}
	}

	m.BeginStatement(1, 1)
	if got := m.IndexPages(ix); got != env.IndexPages(ix) {
		t.Fatalf("BeginStatement must refresh the snapshot: got %v, live %v", got, env.IndexPages(ix))
	}
}

// TestMemoInvalidation: version or epoch movement clears the cost memo;
// unchanged versions keep it warm across statements.
func TestMemoInvalidation(t *testing.T) {
	env, ix := memoEnv(t, 1000)
	m := NewMemo(env)
	r := memoRequests(ix, 1000)[0]

	m.BeginStatement(1, 1)
	m.GetCost(r, []*catalog.Index{ix})
	m.BeginStatement(1, 1)
	m.GetCost(r, []*catalog.Index{ix})
	if st := m.Stats(); st.Hits != 1 {
		t.Fatalf("unchanged versions should keep the memo warm: %+v", st)
	}

	m.BeginStatement(2, 1) // config version moved
	m.GetCost(r, []*catalog.Index{ix})
	if st := m.Stats(); st.Hits != 1 || st.Clears != 1 {
		t.Fatalf("config bump should clear: %+v", st)
	}

	m.BeginStatement(2, 9) // stats epoch moved
	m.GetCost(r, []*catalog.Index{ix})
	if st := m.Stats(); st.Hits != 1 || st.Clears != 2 {
		t.Fatalf("stats bump should clear: %+v", st)
	}
}

// TestMemoConfigOrderIndependence: GetCost is a min over alternatives,
// so config order must not produce distinct memo entries.
func TestMemoConfigOrderIndependence(t *testing.T) {
	env, ix := memoEnv(t, 1000)
	ix2 := (&catalog.Index{Name: "r_b", Table: "r", Columns: []string{"b", "id"}}).Canonicalize()
	m := NewMemo(env)
	m.BeginStatement(1, 1)
	r := memoRequests(ix, 1000)[1]

	a := m.GetCost(r, []*catalog.Index{ix, ix2})
	b := m.GetCost(r, []*catalog.Index{ix2, ix})
	if a != b {
		t.Fatalf("order-dependent result: %v vs %v", a, b)
	}
	if st := m.Stats(); st.Hits != 1 {
		t.Fatalf("permuted config should hit the same entry: %+v", st)
	}
}
