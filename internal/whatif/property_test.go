package whatif

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"onlinetuner/internal/catalog"
)

// randRequest builds a random but well-formed request over the test
// table R(id,a,b,c,d,e).
func randRequest(r *rand.Rand, rows, pages float64) *Request {
	cols := []string{"id", "a", "b", "c", "d", "e"}
	perm := r.Perm(len(cols))
	req := &Request{
		Table:      "R",
		Kind:       KindSeek,
		TableRows:  rows,
		TablePages: pages,
		Bindings:   1,
	}
	if r.Intn(2) == 0 {
		req.Kind = KindScan
	}
	nreq := 1 + r.Intn(4)
	for i := 0; i < nreq; i++ {
		req.Required = append(req.Required, cols[perm[i]])
	}
	if req.Kind == KindSeek {
		neq := r.Intn(2)
		for i := 0; i < neq && i < len(req.Required); i++ {
			req.EqCols = append(req.EqCols, req.Required[i])
			req.EqSels = append(req.EqSels, 0.001+r.Float64()*0.2)
		}
		if r.Intn(2) == 0 && neq < len(req.Required) {
			req.RangeCol = req.Required[neq]
			req.RangeSel = 0.01 + r.Float64()*0.5
		}
		if len(req.EqCols) == 0 && req.RangeCol == "" {
			req.RangeCol = req.Required[0]
			req.RangeSel = 0.2
		}
	}
	if r.Intn(3) == 0 {
		req.Bindings = float64(1 + r.Intn(500))
	}
	req.RowsPerBinding = math.Max(1, rows*0.1)
	req.ResidualPreds = r.Intn(3)
	return req
}

func randIndex(r *rand.Rand) *catalog.Index {
	cols := []string{"id", "a", "b", "c", "d", "e"}
	perm := r.Perm(len(cols))
	n := 1 + r.Intn(5)
	cs := make([]string, n)
	for i := range cs {
		cs[i] = cols[perm[i]]
	}
	return &catalog.Index{Name: "rix", Table: "R", Columns: cs}
}

// TestGetCostMonotoneInConfig: adding an index to a configuration can
// never increase a request's inferred cost (GetCost takes a minimum).
func TestGetCostMonotoneInConfig(t *testing.T) {
	e := paperEnv(t, 3000)
	rows := e.TableRows("R")
	pages := e.TablePages("R")
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		req := randRequest(r, rows, pages)
		var config []*catalog.Index
		prev := GetCost(e, req, config)
		for k := 0; k < 4; k++ {
			config = append(config, randIndex(r))
			cur := GetCost(e, req, config)
			if cur > prev+1e-9 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestGetCostBoundedByHeap: no request ever costs more than its heap
// fallback, and never goes negative.
func TestGetCostBoundedByHeap(t *testing.T) {
	e := paperEnv(t, 2000)
	rows := e.TableRows("R")
	pages := e.TablePages("R")
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		req := randRequest(r, rows, pages)
		heap := heapFallback(e, req)
		c := GetCost(e, req, []*catalog.Index{randIndex(r), randIndex(r)})
		return c >= 0 && c <= heap+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestGetBestIndexIsBest: for seek requests, the index GetBestIndex
// constructs implements the request at least as cheaply as any random
// index. (For scan requests the construction deliberately prepends the
// clustering key to make the build sort-free — it trades a few scan
// pages for a much cheaper creation, so strict query-cost optimality is
// not the invariant there.)
func TestGetBestIndexIsBest(t *testing.T) {
	e := paperEnv(t, 3000)
	rows := e.TableRows("R")
	pages := e.TablePages("R")
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		req := randRequest(r, rows, pages)
		if req.Kind != KindSeek {
			return true
		}
		best := GetBestIndex(e.Cat, req)
		if best == nil {
			return true
		}
		bestCost := ImplCost(e, req, best)
		for k := 0; k < 6; k++ {
			if c := ImplCost(e, req, randIndex(r)); c < bestCost-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestBuildCostPositiveAndGrowsWithWidth: every build costs something,
// and a superset index never costs less to build than its prefix.
func TestBuildCostPositiveAndGrowsWithWidth(t *testing.T) {
	e := paperEnv(t, 2000)
	cols := []string{"a", "b", "c", "d", "e"}
	var prev float64
	for n := 1; n <= len(cols); n++ {
		ix := &catalog.Index{Name: "w", Table: "R", Columns: cols[:n]}
		b := BuildCost(e, ix)
		if b <= 0 {
			t.Fatalf("non-positive build cost for %v", ix)
		}
		if b < prev {
			t.Fatalf("build cost shrank when widening: %v", ix)
		}
		prev = b
	}
}

// TestImplCostSeekBeatsScanWhenSelective: for a selective seek request,
// an index leading with the sarg column must beat the same columns in
// scan order.
func TestImplCostSeekBeatsScanWhenSelective(t *testing.T) {
	e := paperEnv(t, 5000)
	req := &Request{
		Table: "R", Kind: KindSeek,
		EqCols: []string{"a"}, EqSels: []float64{0.001},
		Required: []string{"a", "b"},
		Bindings: 1, RowsPerBinding: 5,
		TableRows: 5000, TablePages: e.TablePages("R"),
	}
	seekIx := &catalog.Index{Name: "s", Table: "R", Columns: []string{"a", "b"}}
	scanIx := &catalog.Index{Name: "v", Table: "R", Columns: []string{"b", "a"}}
	// (b,a) cannot seek on a; it can only cover-scan.
	if ImplCost(e, req, seekIx) >= ImplCost(e, req, scanIx) {
		t.Error("seek-ordered index should beat scan-ordered one")
	}
}

// TestUpdateCostLinearInIndexes: the update shell is exactly linear in
// the number of same-table secondary indexes.
func TestUpdateCostLinearInIndexes(t *testing.T) {
	e := paperEnv(t, 1000)
	req := &Request{Table: "R", Kind: KindUpdate, UpdateRows: 50,
		TableRows: 1000, TablePages: e.TablePages("R")}
	base := GetCost(e, req, nil)
	per := e.MaintenancePerIndex(req)
	var config []*catalog.Index
	for k := 1; k <= 4; k++ {
		config = append(config, &catalog.Index{
			Name: "u", Table: "R", Columns: []string{[]string{"a", "b", "c", "d"}[k-1]},
		})
		got := GetCost(e, req, config)
		want := base + float64(k)*per
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("k=%d: %g != %g", k, got, want)
		}
	}
}
