package whatif

import (
	"math"
	"strings"

	"onlinetuner/internal/catalog"
	"onlinetuner/internal/cost"
	"onlinetuner/internal/stats"
	"onlinetuner/internal/storage"
)

// Env bundles everything cost inference needs: the catalog, the
// statistics store, the storage manager (for physical sizes) and the cost
// model. Hypothetical indexes are sized from row counts and column
// widths; physical ones from their actual structures.
type Env struct {
	Cat   *catalog.Catalog
	Stats *stats.Store
	Mgr   *storage.Manager
	Model cost.Model
}

// NewEnv builds an Env with the default cost model.
func NewEnv(cat *catalog.Catalog, st *stats.Store, mgr *storage.Manager) *Env {
	return &Env{Cat: cat, Stats: st, Mgr: mgr, Model: cost.DefaultModel()}
}

// TableRows returns the current live row count of a table.
func (e *Env) TableRows(table string) float64 {
	h := e.Mgr.Heap(table)
	if h == nil {
		return 0
	}
	return float64(h.Len())
}

// TablePages returns the heap page count of a table.
func (e *Env) TablePages(table string) float64 {
	h := e.Mgr.Heap(table)
	if h == nil {
		return 0
	}
	p := float64(h.Pages())
	if p < 1 {
		p = 1
	}
	return p
}

// IndexBytes returns the byte size of an index: actual when materialized,
// estimated otherwise.
func (e *Env) IndexBytes(ix *catalog.Index) int64 {
	if pi := e.Mgr.Index(ix.ID()); pi != nil {
		return pi.Bytes()
	}
	return e.Mgr.EstimateIndexBytes(ix)
}

// IndexPages returns the page count of a (possibly hypothetical) index.
// For the clustered primary index this is the table's heap pages (its
// leaves hold full rows).
func (e *Env) IndexPages(ix *catalog.Index) float64 {
	if ix.Primary {
		return e.TablePages(ix.Table)
	}
	p := float64(storage.PagesFor(e.IndexBytes(ix)))
	if p < 1 {
		p = 1
	}
	return p
}

// Available reports whether an index can serve queries right now: the
// primary always can; secondaries must be materialized and active.
func (e *Env) Available(ix *catalog.Index) bool {
	if ix.Primary {
		return true
	}
	pi := e.Mgr.Index(ix.ID())
	return pi != nil && pi.State() == storage.StateActive
}

// SelectivityEq estimates the fraction of rows where column = a constant;
// without statistics it falls back to 1/distinct-guess.
func (e *Env) SelectivityEq(table, column string) float64 {
	if cs := e.Stats.Get(table, column); cs != nil && cs.Rows > 0 {
		d := cs.Distinct
		if d < 1 {
			d = 1
		}
		return 1 / float64(d)
	}
	rows := e.TableRows(table)
	if rows <= 0 {
		return 0.1
	}
	// Heuristic default: assume sqrt(n) distinct values.
	return 1 / math.Max(1, math.Sqrt(rows))
}

// DefaultRangeSel is the selectivity guess for a range predicate without
// statistics.
const DefaultRangeSel = 1.0 / 3

// GetCost approximates the cost of the best locally transformed plan
// implementing r when the given indexes are available (Section 2.2's
// getCost). The primary index of the request's table is always
// implicitly available. Inf is never returned: the clustered scan is the
// universal fallback.
func GetCost(e *Env, r *Request, config []*catalog.Index) float64 {
	return getCost(e, r, config, e.IndexPages)
}

// getCost is GetCost with the index-size lookup abstracted: pagesOf maps
// an index to its page count. The package-level entry points pass
// Env.IndexPages; the Memo passes its per-statement size snapshot.
func getCost(e *Env, r *Request, config []*catalog.Index, pagesOf func(*catalog.Index) float64) float64 {
	if r.Kind == KindUpdate {
		return updateCost(e, r, config)
	}
	best := heapFallback(e, r)
	// The clustered primary index is always available: it can seek on its
	// key prefix, not just scan.
	if pk := e.Cat.PrimaryIndex(r.Table); pk != nil {
		if c := implCostPages(e, r, pk, pagesOf(pk)); c < best {
			best = c
		}
	}
	for _, ix := range config {
		if ix == nil || !strings.EqualFold(ix.Table, r.Table) {
			continue
		}
		if c := implCostPages(e, r, ix, pagesOf(ix)); c < best {
			best = c
		}
	}
	return best
}

// updateCost is the update-shell cost under a configuration: base DML
// work plus maintenance for each secondary index of the table present in
// the configuration.
func updateCost(e *Env, r *Request, config []*catalog.Index) float64 {
	c := e.Model.DMLBase(r.UpdateRows, r.TablePages)
	for _, ix := range config {
		if ix == nil || ix.Primary || !strings.EqualFold(ix.Table, r.Table) {
			continue
		}
		c += e.Model.IndexMaintenance(r.UpdateRows)
	}
	return c
}

// MaintenancePerIndex returns the per-index share of an update request's
// cost — what one extra secondary index adds to the statement.
func (e *Env) MaintenancePerIndex(r *Request) float64 {
	return e.Model.IndexMaintenance(r.UpdateRows)
}

// heapFallback is the cost of implementing the request with the
// clustered primary index (a full scan per binding, capped by the
// repeated-access locality of the model).
func heapFallback(e *Env, r *Request) float64 {
	preds := len(r.EqCols) + r.ResidualPreds
	if r.RangeCol != "" {
		preds++
	}
	one := e.Model.HeapScan(r.TablePages, r.TableRows, preds)
	n := r.Bindings
	if n < 1 {
		n = 1
	}
	// Repeated full scans of a hot table hit the buffer pool: charge the
	// first scan fully and subsequent ones at CPU cost only.
	cpuOnly := e.Model.HeapScan(0, r.TableRows, preds)
	c := one + (n-1)*cpuOnly
	c += sortIfNeeded(e, r, nil, 0)
	return c
}

// ImplCost is the cost of implementing the request with the given index
// (math.Inf(1) when the index cannot implement it).
func ImplCost(e *Env, r *Request, ix *catalog.Index) float64 {
	return implCostPages(e, r, ix, e.IndexPages(ix))
}

// implCostPages is ImplCost with the index's page count supplied by the
// caller — the only live storage lookup on this path. Hoisting it lets
// the Memo snapshot index sizes once per statement instead of once per
// request evaluation.
func implCostPages(e *Env, r *Request, ix *catalog.Index, pages float64) float64 {
	if r.Kind == KindUpdate {
		return math.Inf(1)
	}
	if !strings.EqualFold(ix.Table, r.Table) {
		return math.Inf(1)
	}

	if r.Kind == KindEndpoint {
		// The index must consume every equality column as its leading
		// prefix and then lead with the endpoint column; it then answers
		// MIN/MAX with at most two single-row descents.
		matched := 0
		for _, col := range ix.Columns {
			if i := indexOfFold(r.EqCols, col); i >= 0 && matched < len(r.EqCols) {
				matched++
				continue
			}
			if matched == len(r.EqCols) && strings.EqualFold(col, r.RangeCol) {
				c := 2 * e.Model.IndexSeek(pages, 1, 1)
				if !ix.Primary {
					c += e.Model.RIDLookups(2, r.TablePages)
				}
				return c
			}
			break
		}
		return math.Inf(1)
	}

	// Walk the index columns: consume leading equality columns in any
	// order, then optionally one range column. The primary index takes
	// the same path: it covers every column and seeks on its key prefix,
	// at the full table's page count.
	eqSel := 1.0
	matched := 0
	rangeApplied := false
	for _, col := range ix.Columns {
		if i := indexOfFold(r.EqCols, col); i >= 0 && matched < len(r.EqCols) {
			eqSel *= r.EqSels[i]
			matched++
			continue
		}
		if r.RangeCol != "" && strings.EqualFold(col, r.RangeCol) {
			rangeApplied = true
		}
		break
	}
	sel := 1.0
	if matched > 0 {
		sel *= eqSel
	}
	if rangeApplied {
		sel *= r.RangeSel
	}

	covering := ix.ContainsColumns(r.Required)
	bindings := r.Bindings
	if bindings < 1 {
		bindings = 1
	}

	var c float64
	if matched == 0 && !rangeApplied {
		// No sargable use: only a covering sequential scan makes sense.
		if !covering {
			return math.Inf(1)
		}
		one := e.Model.IndexScan(pages, r.TableRows, r.ResidualPreds+predCount(r))
		cpuOnly := e.Model.IndexScan(0, r.TableRows, r.ResidualPreds+predCount(r))
		c = one + (bindings-1)*cpuOnly
	} else {
		matchRows := r.TableRows * sel
		matchPages := pages * sel
		if matchPages < 1 {
			matchPages = 1
		}
		c = e.Model.Seeks(bindings, pages, matchPages, matchRows)
		if !covering {
			c += e.Model.RIDLookups(bindings*matchRows, r.TablePages)
		}
		c += bindings * matchRows * float64(r.ResidualPreds) * e.Model.CPUPred
	}
	c += sortIfNeeded(e, r, ix, matched)
	return c
}

// predCount counts the sargable predicates a non-sargable access still
// has to evaluate row by row.
func predCount(r *Request) int {
	n := len(r.EqCols)
	if r.RangeCol != "" {
		n++
	}
	return n
}

// sortIfNeeded charges a sort when the request needs an output order the
// access does not produce. An index satisfies the order when, after the
// consumed equality prefix, its next columns are exactly the sort
// columns.
func sortIfNeeded(e *Env, r *Request, ix *catalog.Index, eqConsumed int) float64 {
	if len(r.SortCols) == 0 {
		return 0
	}
	if ix != nil && orderSatisfied(ix.Columns[minInt(eqConsumed, len(ix.Columns)):], r.SortCols) {
		return 0
	}
	rows := r.RowsPerBinding
	n := r.Bindings
	if n < 1 {
		n = 1
	}
	return n * e.Model.Sort(rows)
}

func orderSatisfied(rest, sortCols []string) bool {
	if len(rest) < len(sortCols) {
		return false
	}
	for i, c := range sortCols {
		if !strings.EqualFold(rest[i], c) {
			return false
		}
	}
	return true
}

func indexOfFold(ss []string, s string) int {
	for i, x := range ss {
		if strings.EqualFold(x, s) {
			return i
		}
	}
	return -1
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// BuildCost estimates B_I^s, the cost of creating index ix under the
// current configuration: scanning the cheapest source (an active index
// with ix's columns as key prefix avoids the sort — the paper's I1/I2
// asymmetry), optionally sorting, and writing the new structure.
func BuildCost(e *Env, ix *catalog.Index) float64 {
	rows := e.TableRows(ix.Table)
	newPages := float64(storage.PagesFor(e.Mgr.EstimateIndexBytes(ix)))
	if newPages < 1 {
		newPages = 1
	}
	sourcePages := e.TablePages(ix.Table)
	sorted := true
	for _, pi := range e.Mgr.TableIndexes(ix.Table) {
		// The index itself is never its own build source: B_I^s is the
		// cost of creating I as if it were absent from s.
		if pi.State() != storage.StateActive || pi.Def.ID() == ix.ID() {
			continue
		}
		if ix.IsPrefixOf(pi.Def) {
			sorted = false
			if !pi.Def.Primary {
				sourcePages = float64(pi.Pages())
			}
			break
		}
	}
	return e.Model.BuildIndex(sourcePages, rows, newPages, sorted)
}

// DropCost is the (negligible) cost of dropping an index.
func DropCost() float64 { return 0 }
