// Package whatif implements the access-path request machinery of Section
// 2 of the paper (adapted from Bruno & Chaudhuri [4, 6]): requests are
// captured while the optimizer generates index strategies, stored in an
// AND/OR tree on the final plan, and later used to infer — via local plan
// transformations and without further optimizer calls — the cost of a
// query under hypothetical physical designs. The three primitives the
// online algorithms build on are GetRequests (captured by the optimizer),
// GetBestIndex, and GetCost.
package whatif

import (
	"fmt"
	"strings"

	"onlinetuner/internal/catalog"
)

// Kind classifies a request by the index strategy it encodes.
type Kind int

// Request kinds. A Scan request asks for the request's required columns
// in no particular order (a vertical-partition opportunity); a Seek
// request additionally has sargable columns that an index could seek on;
// an Update request is the "update shell" of a DML statement and encodes
// index maintenance work.
const (
	KindScan Kind = iota
	KindSeek
	KindUpdate
	// KindEndpoint asks for MIN/MAX of one column (stored in RangeCol)
	// under an equality prefix: an index leading with EqCols then the
	// endpoint column answers it in one or two single-row seeks. Emitted
	// by the optimizer's minmax-endpoint rule even when no such index
	// exists — that is exactly the what-if traffic the tuner bids on.
	KindEndpoint
)

func (k Kind) String() string {
	switch k {
	case KindScan:
		return "scan"
	case KindSeek:
		return "seek"
	case KindUpdate:
		return "update"
	case KindEndpoint:
		return "endpoint"
	}
	return "?"
}

// Request encodes the logical properties of any physical sub-plan that
// could implement one table access of a query (Section 2.1). All
// cardinalities are estimates from optimization time.
type Request struct {
	Table string
	Kind  Kind

	// EqCols are equality-sargable columns with per-column selectivities.
	EqCols []string
	EqSels []float64

	// RangeCol is the single range-sargable column ("" if none) and its
	// selectivity.
	RangeCol string
	RangeSel float64

	// Required lists every column needed upwards in the tree, in
	// select-list-then-predicate order (this order shapes GetBestIndex's
	// suffix).
	Required []string

	// SortCols is the output order the parent needs, if any.
	SortCols []string

	// Bindings is how many times the access runs (1 for a plain access,
	// the outer cardinality for an index-nested-loop inner).
	Bindings float64

	// RowsPerBinding is the estimated output rows per binding after the
	// sargable predicates.
	RowsPerBinding float64

	// ResidualPreds counts non-sargable predicates evaluated on output.
	ResidualPreds int

	// TableRows/TablePages snapshot the table size at optimization time.
	TableRows  float64
	TablePages float64

	// CurrentCost is the estimated cost of the sub-plan the optimizer
	// actually chose for this access under the current configuration, and
	// CurrentIndexID the index it used ("" for a heap scan).
	CurrentCost    float64
	CurrentIndexID string

	// Implemented marks whether this request is realized in the final
	// plan (false for discarded OR-alternatives, like the paper's ρ2).
	Implemented bool

	// UpdateRows is the number of rows changed (Update requests only).
	UpdateRows float64

	// UpdateTouchedIndexes counts maintained indexes (Update requests).
	UpdateTouchedIndexes int
}

// String summarizes the request for logs and tests.
func (r *Request) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "req{%s %s", r.Kind, r.Table)
	if len(r.EqCols) > 0 {
		fmt.Fprintf(&sb, " eq=%v", r.EqCols)
	}
	if r.RangeCol != "" {
		fmt.Fprintf(&sb, " range=%s", r.RangeCol)
	}
	if len(r.Required) > 0 {
		fmt.Fprintf(&sb, " req=%v", r.Required)
	}
	if r.Bindings > 1 {
		fmt.Fprintf(&sb, " bind=%.0f", r.Bindings)
	}
	fmt.Fprintf(&sb, " cost=%.3f}", r.CurrentCost)
	return sb.String()
}

// NodeOp is the AND/OR tree node type.
type NodeOp int

// AND/OR tree operators: And children can all be satisfied
// simultaneously; Or children are mutually exclusive alternatives; Leaf
// wraps a request.
const (
	And NodeOp = iota
	Or
	Leaf
)

// Node is one AND/OR request-tree node (Figure 1 of the paper).
type Node struct {
	Op       NodeOp
	Children []*Node
	Req      *Request
}

// NewLeaf wraps a request.
func NewLeaf(r *Request) *Node { return &Node{Op: Leaf, Req: r} }

// NewAnd groups nodes that can be satisfied simultaneously.
func NewAnd(children ...*Node) *Node { return &Node{Op: And, Children: children} }

// NewOr groups mutually exclusive alternatives.
func NewOr(children ...*Node) *Node { return &Node{Op: Or, Children: children} }

// Requests returns all leaf requests in the tree in depth-first order.
func (n *Node) Requests() []*Request {
	if n == nil {
		return nil
	}
	if n.Op == Leaf {
		if n.Req == nil {
			return nil
		}
		return []*Request{n.Req}
	}
	var out []*Request
	for _, c := range n.Children {
		out = append(out, c.Requests()...)
	}
	return out
}

// ORGroups returns, for each OR node, the set of its leaf requests. The
// tuner uses this to account for shared-OR interactions (only one
// alternative of an OR group can be implemented, Section 3.2.1).
func (n *Node) ORGroups() [][]*Request {
	var out [][]*Request
	var walk func(m *Node)
	walk = func(m *Node) {
		if m == nil || m.Op == Leaf {
			return
		}
		if m.Op == Or {
			g := m.Requests()
			if len(g) > 1 {
				out = append(out, g)
			}
		}
		for _, c := range m.Children {
			walk(c)
		}
	}
	walk(n)
	return out
}

// String renders the tree structure.
func (n *Node) String() string {
	var sb strings.Builder
	var walk func(m *Node, depth int)
	walk = func(m *Node, depth int) {
		pad := strings.Repeat("  ", depth)
		switch m.Op {
		case Leaf:
			fmt.Fprintf(&sb, "%s%s\n", pad, m.Req)
		case And:
			fmt.Fprintf(&sb, "%sAND\n", pad)
			for _, c := range m.Children {
				walk(c, depth+1)
			}
		case Or:
			fmt.Fprintf(&sb, "%sOR\n", pad)
			for _, c := range m.Children {
				walk(c, depth+1)
			}
		}
	}
	walk(n, 0)
	return sb.String()
}

// GetBestIndex returns the index that yields the cheapest plan
// implementing the request (Section 2.2): for a Seek request the
// equality columns, then the range column, then the sort columns, then
// the remaining required columns; for a Scan request the table's
// clustering (primary-key) columns first — which makes the index
// creation sort-free, the paper's I1 — followed by the remaining required
// columns. Update requests have no best index.
func GetBestIndex(cat *catalog.Catalog, r *Request) *catalog.Index {
	if r.Kind == KindUpdate {
		return nil
	}
	t := cat.Table(r.Table)
	if t == nil {
		return nil
	}
	var cols []string
	add := func(c string) {
		for _, x := range cols {
			if strings.EqualFold(x, c) {
				return
			}
		}
		cols = append(cols, c)
	}
	switch r.Kind {
	case KindSeek, KindEndpoint:
		// An endpoint request wants exactly a seek-shaped index: the
		// equality prefix, then the endpoint column (RangeCol).
		for _, c := range r.EqCols {
			add(c)
		}
		if r.RangeCol != "" {
			add(r.RangeCol)
		}
		for _, c := range r.SortCols {
			add(c)
		}
		for _, c := range r.Required {
			add(c)
		}
	case KindScan:
		if len(r.SortCols) > 0 {
			// An order requirement pins the leading columns.
			for _, c := range r.SortCols {
				add(c)
			}
		} else {
			// No order requirement: lead with the clustering key so the
			// build avoids its sort.
			for _, c := range t.PrimaryKey {
				add(c)
			}
		}
		for _, c := range r.Required {
			add(c)
		}
	}
	if len(cols) == 0 {
		return nil
	}
	ix := (&catalog.Index{
		Name:    fmt.Sprintf("auto_%s_%s", r.Table, strings.Join(cols, "_")),
		Table:   r.Table,
		Columns: cols,
	}).Canonicalize()
	// The clustered primary index is never a "new" best index: if the
	// construction reproduces it, the request is best served by what
	// already exists.
	if pk := cat.PrimaryIndex(r.Table); pk != nil && pk.ID() == ix.ID() {
		return pk
	}
	return ix
}
