package chaostest

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"onlinetuner/internal/catalog"
	"onlinetuner/internal/core"
	"onlinetuner/internal/datum"
	"onlinetuner/internal/engine"
	"onlinetuner/internal/fault"
	"onlinetuner/internal/storage"
	"onlinetuner/internal/tpch"
	"onlinetuner/internal/wal"
)

// The kill-and-restart suite: the chaos workload runs on a DURABLE
// database, the process "dies" at a fault-injected point (a WAL append
// fault, a WAL fsync fault, or mid-checkpoint), the directory is
// reopened, and the recovered database must match — live row for live
// row, RID for RID — a fault-free oracle that executed exactly the
// statements the faulty run acknowledged before the crash.
//
// Reproduce a failing cell locally:
//
//	CHAOS_SEEDS=<seed> EXEC_WORKERS=<n> go test -race -run TestChaosCrashRecovery ./internal/fault/chaostest

var tpchTables = []string{"region", "nation", "supplier", "customer", "part", "partsupp", "orders", "lineitem"}

// heapDump renders a table's live rows in RID order — the byte-for-byte
// comparison surface between a recovered database and its oracle.
func heapDump(db *engine.DB, table string) string {
	var buf bytes.Buffer
	db.Mgr.Heap(table).Scan(func(rid storage.RID, r datum.Row) bool {
		fmt.Fprintf(&buf, "%d|", rid)
		for _, d := range r {
			buf.WriteString(d.String())
			buf.WriteByte(',')
		}
		buf.WriteByte('\n')
		return true
	})
	return buf.String()
}

func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		in, err := os.Open(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out, err := os.Create(filepath.Join(dst, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.Copy(out, in); err != nil {
			t.Fatal(err)
		}
		_ = in.Close()
		if err := out.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// loadDurableChaosDB opens a durable database, bulk-loads it with the
// WAL in no-sync mode (the load is not the test subject), checkpoints
// the loaded state, and switches to group commit for the scripted
// phase.
func loadDurableChaosDB(t *testing.T, seed uint64, dir string) (*engine.DB, *tpch.Generator) {
	t.Helper()
	db, err := engine.OpenDurable(engine.Config{Dir: dir, ExecWorkers: execWorkers(t), ExecEngine: execEngine(t), Sync: wal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	g := tpch.NewGenerator(chaosScale, int64(seed))
	if err := g.Load(db); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	db.WAL().SetPolicy(wal.SyncGroup)
	return db, g
}

// TestChaosCrashRecovery is the seed-matrix kill-and-restart suite.
// Crash placement varies by seed: seed%3==0 dies mid-checkpoint,
// seed%3==1 dies at an injected WAL append fault, seed%3==2 at an
// injected WAL fsync fault (falling back to an end-of-script crash if
// the probabilistic fault never fires).
func TestChaosCrashRecovery(t *testing.T) {
	for _, seed := range chaosSeeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			defer func() {
				if t.Failed() {
					writeArtifact(t, seed, "TestChaosCrashRecovery failed; see -v output for details")
				}
			}()
			runCrashSeed(t, seed)
		})
	}
}

func runCrashSeed(t *testing.T, seed uint64) {
	dir := t.TempDir()
	db, g := loadDurableChaosDB(t, seed, dir)
	opts := core.DefaultOptions()
	opts.Async = true
	opts.UseSuspend = seed%2 == 0
	opts.CooldownQueries = 2
	tn := core.Attach(db, opts)
	db.SetRetryBackoff(time.Microsecond)
	script := chaosScript(g)

	mode := seed % 3
	inj := chaosInjector(seed)
	switch mode {
	case 1:
		inj = inj.Plan(fault.WALAppend, fault.Rule{Prob: 0.01})
	case 2:
		inj = inj.Plan(fault.WALFsync, fault.Rule{Prob: 0.01})
	}
	db.SetFaults(inj)
	inj.Arm()

	crashed := false
	var succeededIdx []int
	for i, stmt := range script {
		if mode == 0 && i == len(script)/2 {
			// Mid-checkpoint crash: a one-shot WAL fault fails the
			// checkpoint partway (its begin record, its snapshot-bracket
			// fsync, or its roll), and the process dies right there.
			site := fault.WALFsync
			if seed%2 == 0 {
				site = fault.WALAppend
			}
			ck := fault.New(seed).Plan(site, fault.Rule{Prob: 1, Count: 1})
			ck.Arm()
			db.SetFaults(ck)
			if err := db.Checkpoint(); err == nil {
				t.Fatalf("seed %d: mid-crash checkpoint succeeded despite armed %s fault", seed, site)
			}
			db.Crash()
			crashed = true
			break
		}
		rs, _, err := db.Exec(stmt)
		if err != nil {
			if !fault.Is(err) {
				t.Fatalf("seed %d stmt %d: non-fault error %v\n%s", seed, i, err, stmt)
			}
			var fe *fault.Error
			if errors.As(err, &fe) && (fe.Site == fault.WALAppend || fe.Site == fault.WALFsync) {
				// The durability layer itself failed: this is the
				// kill point for WAL-fault modes.
				db.Crash()
				crashed = true
				break
			}
			continue
		}
		_ = rs
		succeededIdx = append(succeededIdx, i)
	}
	if !crashed {
		db.Crash() // probabilistic fault never fired; die at end of script
	}
	inj.Disarm()
	if len(succeededIdx) == 0 {
		t.Fatalf("seed %d: crash before any acknowledged statement; nothing to verify", seed)
	}
	// Post-crash writes must fail: nothing may be acknowledged after the
	// kill point. (Reads still work — the in-memory structures are alive
	// — but they commit nothing.)
	for _, stmt := range script {
		if isQuery(stmt) {
			continue
		}
		if _, _, err := db.Exec(stmt); err == nil {
			t.Fatalf("seed %d: write acknowledged after crash:\n%s", seed, stmt)
		}
		break
	}
	tn.Close()

	// ---- Restart: recover the directory. ----
	rdb, err := engine.OpenDurable(engine.Config{Dir: dir, ExecWorkers: execWorkers(t), ExecEngine: execEngine(t)})
	if err != nil {
		t.Fatalf("seed %d: recovery failed: %v", seed, err)
	}
	defer rdb.Close()
	if err := rdb.Mgr.CheckConsistency(); err != nil {
		t.Fatalf("seed %d: recovered state inconsistent: %v", seed, err)
	}

	// ---- Oracle: fresh in-memory load, no faults, no tuner; replay
	// exactly the acknowledged statements. ----
	oracle, _ := loadChaosDB(t, seed)
	for _, idx := range succeededIdx {
		if _, _, err := oracle.Exec(script[idx]); err != nil {
			t.Fatalf("seed %d: oracle failed on stmt %d: %v\n%s", seed, idx, err, script[idx])
		}
	}

	// Byte-for-byte: every table's live rows, in RID order, with exact
	// RIDs. Statement rollback restores the heap free list exactly, so
	// acknowledged statements take identical RIDs in both histories.
	for _, table := range tpchTables {
		if got, want := heapDump(rdb, table), heapDump(oracle, table); got != want {
			t.Errorf("seed %d: recovered %s differs from oracle (%d vs %d bytes)",
				seed, table, len(got), len(want))
		}
	}

	// Recovered database answers queries identically to the oracle (its
	// physical configuration may differ — the tuner's recovered indexes —
	// but results may not).
	compared := 0
	for _, idx := range succeededIdx {
		if !isQuery(script[idx]) || compared >= 4 {
			continue
		}
		rrs, err := rdb.Query(script[idx])
		if err != nil {
			t.Fatalf("seed %d: recovered DB failed query %d: %v", seed, idx, err)
		}
		ors, err := oracle.Query(script[idx])
		if err != nil {
			t.Fatalf("seed %d: oracle failed query %d: %v", seed, idx, err)
		}
		if fingerprint(rrs) != fingerprint(ors) {
			t.Errorf("seed %d: query %d diverged after recovery:\n%s", seed, idx, script[idx])
		}
		compared++
	}
	if compared == 0 {
		t.Fatalf("seed %d: no acknowledged queries to compare", seed)
	}

	// The recovered engine keeps serving and keeps being durable.
	if _, err := rdb.Query("SELECT COUNT(*) FROM lineitem"); err != nil {
		t.Fatalf("seed %d: recovered engine not serving: %v", seed, err)
	}
	if err := rdb.Checkpoint(); err != nil {
		t.Fatalf("seed %d: checkpoint after recovery: %v", seed, err)
	}
}

// TestChaosCrashBuildReconciliation crashes deterministically in the
// middle of a background index build and checks both recovery policies:
// abandon (default) discards the dangling build and records a
// "recovery-abandon" decision the tuner adopts; resume rebuilds and
// publishes the index durably. Tuner evidence saved before the crash
// loads cleanly after it, and build counters reconcile.
func TestChaosCrashBuildReconciliation(t *testing.T) {
	src := t.TempDir()
	db, err := engine.OpenDurable(engine.Config{Dir: src, Sync: wal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	db.MustExec("CREATE TABLE r (id INT, a INT, b INT, PRIMARY KEY (id))")
	for i := 0; i < 200; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO r VALUES (%d, %d, %d)", i, i%13, i%7))
	}

	// A tuner observes some workload pre-crash so there is evidence to
	// carry across the restart.
	tn := core.Attach(db, core.DefaultOptions())
	for i := 0; i < 5; i++ {
		db.MustExec("SELECT COUNT(*) FROM r WHERE a = 3")
	}
	var saved bytes.Buffer
	if err := tn.SaveState(&saved); err != nil {
		t.Fatal(err)
	}
	tn.Close()

	// Start a background build, run it, apply delta DML — and crash
	// before the publish. The WAL holds a BuildStart with no matching
	// IndexCreate or BuildAbort.
	ix := (&catalog.Index{Name: "r_a", Table: "r", Columns: []string{"a"}}).Canonicalize()
	b, err := db.Mgr.StartBuild(ix)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	db.MustExec("INSERT INTO r VALUES (500, 1, 1)")
	db.MustExec("DELETE FROM r WHERE id = 3")
	db.Crash()

	// ---- Policy 1: abandon (the default). ----
	abandonDir := copyDir(t, src)
	rdb, err := engine.OpenDurable(engine.Config{Dir: abandonDir})
	if err != nil {
		t.Fatal(err)
	}
	info := rdb.Recovery()
	if len(info.Abandoned) != 1 || info.Abandoned[0] != ix.ID() {
		t.Fatalf("abandoned = %v, want [%s]", info.Abandoned, ix.ID())
	}
	if len(info.Resumed) != 0 {
		t.Fatalf("resumed = %v under abandon policy", info.Resumed)
	}
	if rdb.Mgr.Index(ix.ID()) != nil || rdb.Cat.IndexByID(ix.ID()) != nil {
		t.Fatal("abandoned build left a materialized or cataloged index")
	}
	if err := rdb.Mgr.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	// The delta DML that committed during the build survived.
	rs := rdb.MustExec("SELECT COUNT(*) FROM r WHERE id = 500")
	if rs.Rows[0][0].Int() != 1 {
		t.Fatal("acknowledged delta statement lost")
	}

	// The tuner adopts the recovery decision and reloads its evidence.
	rtn := core.Attach(rdb, core.DefaultOptions())
	rtn.AdoptRecovery(info)
	if err := rtn.LoadState(bytes.NewReader(saved.Bytes())); err != nil {
		t.Fatalf("tuner state did not survive the crash: %v", err)
	}
	found := false
	for _, d := range rtn.Decisions() {
		if d.Kind == "recovery-abandon" && d.Index == ix.ID() && d.Table == "r" {
			found = true
		}
	}
	if !found {
		t.Fatal("no recovery-abandon decision in the adopted log")
	}
	m := rtn.Metrics()
	if m.BuildsStarted != m.BuildsCompleted+m.BuildsAborted+m.BuildsFailed {
		t.Fatalf("build counters do not reconcile after recovery: started=%d completed=%d aborted=%d failed=%d",
			m.BuildsStarted, m.BuildsCompleted, m.BuildsAborted, m.BuildsFailed)
	}
	// Catalog and storage agree on the published configuration.
	for _, ax := range rdb.Configuration() {
		pi := rdb.Mgr.Index(ax.ID())
		if pi == nil || pi.State() != storage.StateActive {
			t.Fatalf("configuration lists %s but storage disagrees", ax.ID())
		}
	}
	rtn.Close()
	_ = rdb.Close()

	// ---- Policy 2: resume. ----
	resumeDir := copyDir(t, src)
	rdb2, err := engine.OpenDurable(engine.Config{Dir: resumeDir, ResumeBuilds: true})
	if err != nil {
		t.Fatal(err)
	}
	info2 := rdb2.Recovery()
	if len(info2.Resumed) != 1 || info2.Resumed[0] != ix.ID() {
		t.Fatalf("resumed = %v, want [%s]", info2.Resumed, ix.ID())
	}
	pi := rdb2.Mgr.Index(ix.ID())
	if pi == nil || pi.State() != storage.StateActive {
		t.Fatal("resumed build did not publish an active index")
	}
	if err := rdb2.Mgr.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	found = false
	for _, d := range info2.Decisions {
		if d.Kind == "recovery-resume" && d.Index == ix.ID() {
			found = true
		}
	}
	if !found {
		t.Fatal("no recovery-resume decision recorded")
	}
	// The resumed publish is itself durable: a clean close and reopen
	// keeps the index with no dangling build left in the log.
	if err := rdb2.Close(); err != nil {
		t.Fatal(err)
	}
	rdb3, err := engine.OpenDurable(engine.Config{Dir: resumeDir})
	if err != nil {
		t.Fatal(err)
	}
	defer rdb3.Close()
	if len(rdb3.Recovery().Abandoned)+len(rdb3.Recovery().Resumed) != 0 {
		t.Fatal("resumed build still dangling after a clean restart")
	}
	pi = rdb3.Mgr.Index(ix.ID())
	if pi == nil || pi.State() != storage.StateActive {
		t.Fatal("resumed index lost across a clean restart")
	}
	if err := rdb3.Mgr.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}
