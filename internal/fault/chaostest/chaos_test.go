// Package chaostest soaks the whole stack — engine, executor, storage,
// tuner — under seeded fault schedules and checks the graceful-
// degradation contract end to end:
//
//   - every statement either succeeds or fails with an injected fault
//     (or a context error); nothing else ever surfaces;
//   - every statement that SUCCEEDED under faults returns byte-identical
//     results to a fault-free oracle run of the same statement sequence;
//   - after the soak, the storage layer passes the full consistency
//     check and the tuner's build counters and decision log reconcile.
//
// Runs are deterministic per seed. To reproduce a CI failure locally:
//
//	CHAOS_SEEDS=<seed> go test -race -run TestChaosSoak ./internal/fault/chaostest
package chaostest

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"onlinetuner/internal/core"
	"onlinetuner/internal/datum"
	"onlinetuner/internal/engine"
	"onlinetuner/internal/executor"
	"onlinetuner/internal/fault"
	"onlinetuner/internal/tpch"
)

const chaosScale = tpch.Scale(0.15)

// chaosSeeds returns the seed matrix: CHAOS_SEEDS (comma-separated)
// when set, else seeds 1..8; -short trims the default to two.
func chaosSeeds(t *testing.T) []uint64 {
	if env := os.Getenv("CHAOS_SEEDS"); env != "" {
		var out []uint64
		for _, part := range strings.Split(env, ",") {
			n, err := strconv.ParseUint(strings.TrimSpace(part), 10, 64)
			if err != nil {
				t.Fatalf("CHAOS_SEEDS: %v", err)
			}
			out = append(out, n)
		}
		return out
	}
	n := 8
	if testing.Short() {
		n = 2
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = uint64(i + 1)
	}
	return out
}

// chaosInjector is the standard fault schedule, seeded. Probabilities
// are tuned so most statements succeed (degradation, not collapse) while
// every site fires over a ~200-statement script.
func chaosInjector(seed uint64) *fault.Injector {
	return fault.New(seed).
		Plan(fault.PageRead, fault.Rule{Prob: 0.01}).
		Plan(fault.PageWrite, fault.Rule{Prob: 0.02}).
		Plan(fault.PageAlloc, fault.Rule{Prob: 0.002}).
		Plan(fault.BTreeSplit, fault.Rule{Prob: 0.05}).
		Plan(fault.BuildStep, fault.Rule{Prob: 0.0005}).
		Plan(fault.BuildFinish, fault.Rule{Prob: 0.02}).
		Plan(fault.ExecStmt, fault.Rule{Prob: 0.05, Transient: true})
}

// chaosScript derives the statement sequence from a generator that has
// already loaded the database, so refresh keys continue from the data.
func chaosScript(g *tpch.Generator) []string {
	var out []string
	for round := 0; round < 3; round++ {
		out = append(out, g.Batch()...)
		out = append(out, g.RefreshInsert(2)...)
		out = append(out, g.DisruptiveUpdates(4)...)
		out = append(out, g.RefreshDelete(1)...)
	}
	return out
}

func isQuery(stmt string) bool {
	return strings.HasPrefix(strings.ToUpper(strings.TrimSpace(stmt)), "SELECT")
}

// fingerprint canonicalizes a result set: rendered rows, sorted, with
// float aggregates rounded to 9 significant digits so plan-dependent
// accumulation order does not read as divergence.
func fingerprint(rs *executor.ResultSet) string {
	lines := make([]string, len(rs.Rows))
	for i, r := range rs.Rows {
		parts := make([]string, len(r))
		for j, d := range r {
			if d.Kind() == datum.KFloat {
				parts[j] = fmt.Sprintf("%.9g", d.Float())
			} else {
				parts[j] = d.String()
			}
		}
		lines[i] = strings.Join(parts, "|")
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// execWorkers reads the EXEC_WORKERS matrix dimension (CI runs the
// chaos job at 1 and 4). Morsel execution is byte-identical at every
// setting, so the oracle comparison holds unchanged; what the parallel
// runs add is coverage of keyed fault draws and morsel scheduling under
// the same seeds.
func execWorkers(t *testing.T) int {
	env := os.Getenv("EXEC_WORKERS")
	if env == "" {
		return 1
	}
	n, err := strconv.Atoi(strings.TrimSpace(env))
	if err != nil {
		t.Fatalf("EXEC_WORKERS: %v", err)
	}
	return n
}

// execEngine reads the EXEC_ENGINE matrix dimension (auto|row|vector;
// CI crosses it with EXEC_WORKERS). Results are byte-identical under
// every mode, so the oracle comparison holds unchanged; what the
// vectorized runs add is coverage of kernel evaluation and per-morsel
// scalar fallback under injected faults.
func execEngine(t *testing.T) string {
	env := strings.TrimSpace(os.Getenv("EXEC_ENGINE"))
	if env == "" {
		return "auto"
	}
	if _, err := executor.ParseEngineMode(env); err != nil {
		t.Fatalf("EXEC_ENGINE: %v", err)
	}
	return env
}

func loadChaosDB(t *testing.T, seed uint64) (*engine.DB, *tpch.Generator) {
	t.Helper()
	db := engine.OpenConfig(engine.Config{ExecWorkers: execWorkers(t), ExecEngine: execEngine(t)})
	g := tpch.NewGenerator(chaosScale, int64(seed))
	if err := g.Load(db); err != nil {
		t.Fatal(err)
	}
	return db, g
}

// writeArtifact saves a reproduction note for a failing seed when
// CHAOS_ARTIFACT_DIR is set (the CI chaos job uploads that directory).
func writeArtifact(t *testing.T, seed uint64, detail string) {
	dir := os.Getenv("CHAOS_ARTIFACT_DIR")
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("artifact dir: %v", err)
		return
	}
	body := fmt.Sprintf("seed: %d\nreproduce:\n  CHAOS_SEEDS=%d go test -race -run TestChaosSoak ./internal/fault/chaostest\n\n%s\n",
		seed, seed, detail)
	path := filepath.Join(dir, fmt.Sprintf("chaos-seed-%d.txt", seed))
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Logf("artifact write: %v", err)
	}
}

// TestChaosSoak is the seed-matrix soak: a TPC-H-style workload with
// tuner-driven DDL churn under the standard fault schedule, validated
// against a fault-free oracle.
func TestChaosSoak(t *testing.T) {
	for _, seed := range chaosSeeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			defer func() {
				if t.Failed() {
					writeArtifact(t, seed, "TestChaosSoak failed; see -v output for details")
				}
			}()
			runChaosSeed(t, seed)
		})
	}
}

func runChaosSeed(t *testing.T, seed uint64) {
	// ---- Faulty run: tuner attached, faults armed after the load. ----
	db, g := loadChaosDB(t, seed)
	opts := core.DefaultOptions()
	opts.Async = true
	opts.UseSuspend = seed%2 == 0 // alternate DDL style across the matrix
	opts.CooldownQueries = 2
	tn := core.Attach(db, opts)
	db.SetRetryBackoff(time.Microsecond)
	script := chaosScript(g)

	inj := chaosInjector(seed)
	db.SetFaults(inj)
	inj.Arm()

	type queryResult struct {
		idx int
		fp  string
	}
	var succeededIdx []int
	var queryResults []queryResult
	failed := 0
	for i, stmt := range script {
		rs, _, err := db.Exec(stmt)
		if err != nil {
			if !fault.Is(err) {
				t.Fatalf("seed %d stmt %d: non-fault error %v\n%s", seed, i, err, stmt)
			}
			failed++
			continue
		}
		succeededIdx = append(succeededIdx, i)
		if isQuery(stmt) {
			queryResults = append(queryResults, queryResult{idx: i, fp: fingerprint(rs)})
		}
	}
	inj.Disarm()

	if inj.FiredTotal() == 0 {
		t.Fatalf("seed %d: no faults fired; the soak tested nothing", seed)
	}
	if failed > len(script)/2 {
		t.Fatalf("seed %d: %d/%d statements failed; degradation collapsed into unavailability", seed, failed, len(script))
	}

	// Engine still serves after the faults clear.
	if _, err := db.Query("SELECT COUNT(*) FROM lineitem"); err != nil {
		t.Fatalf("seed %d: engine not serving after soak: %v", seed, err)
	}

	// ---- Storage consistency and tuner bookkeeping reconciliation. ----
	if err := db.Mgr.CheckConsistency(); err != nil {
		t.Fatalf("seed %d: post-soak consistency: %v", seed, err)
	}
	m := tn.Metrics()
	resolved := m.BuildsCompleted + m.BuildsAborted + m.BuildsFailed
	if m.BuildsStarted < resolved || m.BuildsStarted > resolved+1 {
		t.Errorf("seed %d: build counters do not reconcile: started=%d completed=%d aborted=%d failed=%d (at most one may be pending)",
			seed, m.BuildsStarted, m.BuildsCompleted, m.BuildsAborted, m.BuildsFailed)
	}
	// Every scheduled physical change must carry a decision record of
	// the same kind, and vice versa for the change kinds.
	evCount := map[string]int{}
	for _, ev := range tn.Events() {
		evCount[ev.Kind.String()]++
	}
	decCount := map[string]int{}
	for _, d := range tn.Decisions() {
		decCount[d.Kind]++
	}
	for _, kind := range []string{"create", "drop", "suspend", "restart", "abort", "build-failed"} {
		if evCount[kind] != decCount[kind] {
			t.Errorf("seed %d: %d %q events vs %d decisions", seed, evCount[kind], kind, decCount[kind])
		}
	}
	tn.Close()

	// ---- Oracle: identical data, no faults, no tuner; replay exactly
	// the statements that succeeded under faults. ----
	oracle, _ := loadChaosDB(t, seed)
	oracleFPs := map[int]string{}
	qi := 0
	for _, idx := range succeededIdx {
		stmt := script[idx]
		rs, _, err := oracle.Exec(stmt)
		if err != nil {
			t.Fatalf("seed %d: oracle failed on stmt %d: %v\n%s", seed, idx, err, stmt)
		}
		if isQuery(stmt) {
			oracleFPs[idx] = fingerprint(rs)
			qi++
		}
	}
	if qi == 0 {
		t.Fatalf("seed %d: no successful queries to compare", seed)
	}
	for _, qr := range queryResults {
		if qr.fp != oracleFPs[qr.idx] {
			t.Errorf("seed %d: stmt %d results diverged from oracle:\n%s", seed, qr.idx, script[qr.idx])
			writeArtifact(t, seed, fmt.Sprintf("diverged statement %d:\n%s\n\nfaulty run:\n%s\n\noracle:\n%s",
				qr.idx, script[qr.idx], qr.fp, oracleFPs[qr.idx]))
		}
	}
	// Heap row counts agree exactly: failed DML changed nothing.
	for _, table := range []string{"orders", "lineitem"} {
		if a, b := db.Mgr.Heap(table).Len(), oracle.Mgr.Heap(table).Len(); a != b {
			t.Errorf("seed %d: %s rows diverged: faulty=%d oracle=%d", seed, table, a, b)
		}
	}
}

// TestChaosConcurrentSmoke drives concurrent statements under faults
// with the tuner running; results are not compared (interleaving is
// nondeterministic) — the assertions are race-freedom (-race), error
// discipline, and post-run consistency.
func TestChaosConcurrentSmoke(t *testing.T) {
	db, g := loadChaosDB(t, 42)
	opts := core.DefaultOptions()
	opts.Async = true
	opts.CooldownQueries = 2
	tn := core.Attach(db, opts)
	db.SetRetryBackoff(time.Microsecond)
	script := chaosScript(g)

	inj := chaosInjector(42)
	db.SetFaults(inj)
	inj.Arm()

	const workers = 4
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := w; i < len(script); i += workers {
				if _, _, err := db.Exec(script[i]); err != nil && !fault.Is(err) {
					select {
					case errCh <- fmt.Errorf("stmt %d: %w", i, err):
					default:
					}
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	inj.Disarm()
	tn.Close()
	if err := db.Mgr.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query("SELECT COUNT(*) FROM orders"); err != nil {
		t.Fatalf("engine not serving after concurrent soak: %v", err)
	}
}
