package fault

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// TestNilAndDisarmedNeverFire: the inert fast path.
func TestNilAndDisarmedNeverFire(t *testing.T) {
	var nilInj *Injector
	for i := 0; i < 1000; i++ {
		if err := nilInj.Hit(PageWrite); err != nil {
			t.Fatalf("nil injector fired: %v", err)
		}
	}
	inj := New(1).Plan(PageWrite, Rule{Prob: 1})
	for i := 0; i < 1000; i++ {
		if err := inj.Hit(PageWrite); err != nil {
			t.Fatalf("disarmed injector fired: %v", err)
		}
	}
	if got := inj.Stats()[PageWrite].Hits; got != 0 {
		t.Fatalf("disarmed injector counted %d hits", got)
	}
	nilInj.Disarm() // must not panic
	if nilInj.Armed() {
		t.Fatal("nil injector armed")
	}
	if nilInj.FiredTotal() != 0 {
		t.Fatal("nil injector fired totals")
	}
	_ = nilInj.String()
}

// TestDeterminism: same seed and hit sequence, same firing pattern.
func TestDeterminism(t *testing.T) {
	pattern := func(seed uint64) []bool {
		inj := New(seed).
			Plan(PageWrite, Rule{Prob: 0.3}).
			Plan(PageRead, Rule{Prob: 0.1})
		inj.Arm()
		var out []bool
		for i := 0; i < 500; i++ {
			out = append(out, inj.Hit(PageWrite) != nil)
			out = append(out, inj.Hit(PageRead) != nil)
		}
		return out
	}
	a, b := pattern(42), pattern(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d diverged between identical seeds", i)
		}
	}
	c := pattern(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical 1000-draw patterns")
	}
}

// TestSiteStreamsIndependent: draws at one site do not perturb another
// site's schedule.
func TestSiteStreamsIndependent(t *testing.T) {
	run := func(interleave bool) []bool {
		inj := New(7).
			Plan(PageWrite, Rule{Prob: 0.25}).
			Plan(PageRead, Rule{Prob: 0.5})
		inj.Arm()
		var out []bool
		for i := 0; i < 300; i++ {
			if interleave {
				inj.Hit(PageRead)
			}
			out = append(out, inj.Hit(PageWrite) != nil)
		}
		return out
	}
	a, b := run(false), run(true)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("PageWrite draw %d perturbed by PageRead traffic", i)
		}
	}
}

// TestExactHitScheduling: Prob 1 + After + Count pins a fault to an
// exact hit.
func TestExactHitScheduling(t *testing.T) {
	inj := New(1).Plan(BTreeSplit, Rule{Prob: 1, After: 4, Count: 1})
	inj.Arm()
	for i := 1; i <= 20; i++ {
		err := inj.Hit(BTreeSplit)
		if i == 5 {
			if err == nil {
				t.Fatalf("hit 5 did not fire")
			}
			var fe *Error
			if !errors.As(err, &fe) || fe.Site != BTreeSplit || fe.Hit != 5 {
				t.Fatalf("wrong error: %v", err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("hit %d fired unexpectedly: %v", i, err)
		}
	}
	st := inj.Stats()[BTreeSplit]
	if st.Hits != 20 || st.Fired != 1 {
		t.Fatalf("stats = %+v, want 20 hits / 1 fired", st)
	}
}

// TestTransientClassification: IsTransient follows the rule, also
// through wrapping.
func TestTransientClassification(t *testing.T) {
	inj := New(1).
		Plan(ExecStmt, Rule{Prob: 1, Transient: true}).
		Plan(PageWrite, Rule{Prob: 1})
	inj.Arm()
	terr := inj.Hit(ExecStmt)
	perr := inj.Hit(PageWrite)
	if !Is(terr) || !Is(perr) {
		t.Fatal("Is() missed an injected fault")
	}
	if !IsTransient(terr) {
		t.Fatal("transient fault not classified transient")
	}
	if IsTransient(perr) {
		t.Fatal("permanent fault classified transient")
	}
	wrapped := fmt.Errorf("executor: scan failed: %w", terr)
	if !IsTransient(wrapped) {
		t.Fatal("wrapping hid the fault")
	}
	if Is(errors.New("plain")) || IsTransient(nil) {
		t.Fatal("false positive")
	}
}

// TestProbabilityRoughlyHonored: a p=0.2 rule fires near 20% of hits.
func TestProbabilityRoughlyHonored(t *testing.T) {
	inj := New(99).Plan(PageAlloc, Rule{Prob: 0.2})
	inj.Arm()
	fired := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if inj.Hit(PageAlloc) != nil {
			fired++
		}
	}
	rate := float64(fired) / n
	if rate < 0.17 || rate > 0.23 {
		t.Fatalf("fire rate %.3f far from 0.2", rate)
	}
}

// TestConcurrentHits: Hit is safe (and live) under concurrency; counts
// reconcile exactly.
func TestConcurrentHits(t *testing.T) {
	inj := New(5).Plan(PageWrite, Rule{Prob: 0.5})
	inj.Arm()
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	fired := make([]int64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if inj.Hit(PageWrite) != nil {
					fired[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	var total int64
	for _, f := range fired {
		total += f
	}
	st := inj.Stats()[PageWrite]
	if st.Hits != workers*per {
		t.Fatalf("hits = %d, want %d", st.Hits, workers*per)
	}
	if st.Fired != total {
		t.Fatalf("fired counter %d != observed %d", st.Fired, total)
	}
}

// TestCountCap: Count bounds total fires under Prob 1.
func TestCountCap(t *testing.T) {
	inj := New(3).Plan(BuildStep, Rule{Prob: 1, Count: 3})
	inj.Arm()
	fired := 0
	for i := 0; i < 50; i++ {
		if inj.Hit(BuildStep) != nil {
			fired++
		}
	}
	if fired != 3 {
		t.Fatalf("fired %d times, want 3", fired)
	}
}
