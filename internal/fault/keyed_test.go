package fault

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestHitKeyedDeterministic proves the keyed decision is a pure function
// of (seed, site, key): any order, any repetition, any goroutine
// interleaving yields the same per-key verdicts.
func TestHitKeyedDeterministic(t *testing.T) {
	const keys = 5000
	verdict := func(order []uint64) map[uint64]bool {
		inj := New(42).Plan(PageRead, Rule{Prob: 0.05})
		inj.Arm()
		out := map[uint64]bool{}
		for _, k := range order {
			out[k] = inj.HitKeyed(PageRead, k) != nil
		}
		return out
	}
	fwd := make([]uint64, keys)
	rev := make([]uint64, keys)
	for i := range fwd {
		fwd[i] = uint64(i)
		rev[i] = uint64(keys - 1 - i)
	}
	a, b := verdict(fwd), verdict(rev)
	fired := 0
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("key %d: forward=%v reverse=%v", k, v, b[k])
		}
		if v {
			fired++
		}
	}
	if fired == 0 || fired == keys {
		t.Fatalf("degenerate firing pattern: %d/%d", fired, keys)
	}

	// Concurrent draws agree with the sequential verdicts.
	inj := New(42).Plan(PageRead, Rule{Prob: 0.05})
	inj.Arm()
	var wg sync.WaitGroup
	got := make([]bool, keys)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := w; k < keys; k += 8 {
				got[k] = inj.HitKeyed(PageRead, uint64(k)) != nil
			}
		}(w)
	}
	wg.Wait()
	for k := 0; k < keys; k++ {
		if got[k] != a[uint64(k)] {
			t.Fatalf("key %d: concurrent=%v sequential=%v", k, got[k], a[uint64(k)])
		}
	}
}

// TestHitKeyedLeavesOrdinalsAlone proves keyed traffic does not perturb
// the unkeyed hit counter, so After/Count schedules and Hit ordinals
// stay independent of how many keyed draws parallel workers make.
func TestHitKeyedLeavesOrdinalsAlone(t *testing.T) {
	inj := New(7).Plan(PageWrite, Rule{Prob: 1, After: 2, Count: 1})
	inj.Arm()
	for k := uint64(0); k < 100; k++ {
		inj.HitKeyed(PageWrite, k)
	}
	// After=2, Count=1: hits 1,2 pass, hit 3 fires, rest pass.
	seq := []bool{false, false, true, false}
	for i, want := range seq {
		if got := inj.Hit(PageWrite) != nil; got != want {
			t.Fatalf("unkeyed hit %d: fired=%v want %v (keyed draws leaked into ordinals)", i+1, got, want)
		}
	}
}

// TestHitKeyedHonorsAfterAndCount pins the ordinal parts of a rule on
// the keyed path: the first After keyed draws pass, and Count bounds the
// total keyed fires — so a {Prob:1, Count:1} rule injects one failure
// whether the site is consulted by the ordinal or the keyed path.
func TestHitKeyedHonorsAfterAndCount(t *testing.T) {
	inj := New(3).Plan(PageRead, Rule{Prob: 1, After: 2, Count: 1})
	inj.Arm()
	fired := 0
	for k := uint64(0); k < 100; k++ {
		if inj.HitKeyed(PageRead, k) != nil {
			fired++
			if k != 2 {
				t.Fatalf("fired at keyed draw %d, want draw 3 (After=2)", k+1)
			}
		}
	}
	if fired != 1 {
		t.Fatalf("keyed fires = %d, want exactly 1 (Count=1)", fired)
	}

	// The Count budget holds under concurrent draws.
	inj2 := New(4).Plan(PageRead, Rule{Prob: 1, Count: 5})
	inj2.Arm()
	var wg sync.WaitGroup
	var concFired atomic.Int64
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := uint64(w); k < 800; k += 8 {
				if inj2.HitKeyed(PageRead, k) != nil {
					concFired.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	if concFired.Load() != 5 {
		t.Fatalf("concurrent keyed fires = %d, want exactly 5 (Count=5)", concFired.Load())
	}
}

func TestHitKeyedDisarmedAndUnplanned(t *testing.T) {
	var nilInj *Injector
	if nilInj.HitKeyed(PageRead, 1) != nil {
		t.Fatal("nil injector must never fire")
	}
	inj := New(1).Plan(PageRead, Rule{Prob: 1})
	if inj.HitKeyed(PageRead, 1) != nil {
		t.Fatal("disarmed injector must never fire")
	}
	inj.Arm()
	if inj.HitKeyed(PageWrite, 1) != nil {
		t.Fatal("unplanned site must never fire")
	}
	err := inj.HitKeyed(PageRead, 99)
	if err == nil {
		t.Fatal("Prob=1 keyed draw must fire")
	}
	fe := err.(*Error)
	if fe.Hit != 99 || fe.Site != PageRead {
		t.Fatalf("keyed error = %+v, want Hit=99 Site=PageRead", fe)
	}
}

func TestHitOrdMatchesHitStream(t *testing.T) {
	a := New(11).Plan(ExecStmt, Rule{Prob: 0.3})
	b := New(11).Plan(ExecStmt, Rule{Prob: 0.3})
	a.Arm()
	b.Arm()
	for i := int64(1); i <= 200; i++ {
		ea := a.Hit(ExecStmt)
		ord, eb := b.HitOrd(ExecStmt)
		if ord != i {
			t.Fatalf("ordinal %d != %d", ord, i)
		}
		if (ea != nil) != (eb != nil) {
			t.Fatalf("hit %d: Hit fired=%v HitOrd fired=%v", i, ea != nil, eb != nil)
		}
	}
}
