package fault

import (
	"sync"
	"testing"
)

// TestHitKeyedDeterministic proves the keyed decision is a pure function
// of (seed, site, key): any order, any repetition, any goroutine
// interleaving yields the same per-key verdicts.
func TestHitKeyedDeterministic(t *testing.T) {
	const keys = 5000
	verdict := func(order []uint64) map[uint64]bool {
		inj := New(42).Plan(PageRead, Rule{Prob: 0.05})
		inj.Arm()
		out := map[uint64]bool{}
		for _, k := range order {
			out[k] = inj.HitKeyed(PageRead, k) != nil
		}
		return out
	}
	fwd := make([]uint64, keys)
	rev := make([]uint64, keys)
	for i := range fwd {
		fwd[i] = uint64(i)
		rev[i] = uint64(keys - 1 - i)
	}
	a, b := verdict(fwd), verdict(rev)
	fired := 0
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("key %d: forward=%v reverse=%v", k, v, b[k])
		}
		if v {
			fired++
		}
	}
	if fired == 0 || fired == keys {
		t.Fatalf("degenerate firing pattern: %d/%d", fired, keys)
	}

	// Concurrent draws agree with the sequential verdicts.
	inj := New(42).Plan(PageRead, Rule{Prob: 0.05})
	inj.Arm()
	var wg sync.WaitGroup
	got := make([]bool, keys)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := w; k < keys; k += 8 {
				got[k] = inj.HitKeyed(PageRead, uint64(k)) != nil
			}
		}(w)
	}
	wg.Wait()
	for k := 0; k < keys; k++ {
		if got[k] != a[uint64(k)] {
			t.Fatalf("key %d: concurrent=%v sequential=%v", k, got[k], a[uint64(k)])
		}
	}
}

// TestHitKeyedLeavesOrdinalsAlone proves keyed traffic does not perturb
// the unkeyed hit counter, so After/Count schedules and Hit ordinals
// stay independent of how many keyed draws parallel workers make.
func TestHitKeyedLeavesOrdinalsAlone(t *testing.T) {
	inj := New(7).Plan(PageWrite, Rule{Prob: 1, After: 2, Count: 1})
	inj.Arm()
	for k := uint64(0); k < 100; k++ {
		inj.HitKeyed(PageWrite, k)
	}
	// After=2, Count=1: hits 1,2 pass, hit 3 fires, rest pass.
	seq := []bool{false, false, true, false}
	for i, want := range seq {
		if got := inj.Hit(PageWrite) != nil; got != want {
			t.Fatalf("unkeyed hit %d: fired=%v want %v (keyed draws leaked into ordinals)", i+1, got, want)
		}
	}
}

func TestHitKeyedDisarmedAndUnplanned(t *testing.T) {
	var nilInj *Injector
	if nilInj.HitKeyed(PageRead, 1) != nil {
		t.Fatal("nil injector must never fire")
	}
	inj := New(1).Plan(PageRead, Rule{Prob: 1})
	if inj.HitKeyed(PageRead, 1) != nil {
		t.Fatal("disarmed injector must never fire")
	}
	inj.Arm()
	if inj.HitKeyed(PageWrite, 1) != nil {
		t.Fatal("unplanned site must never fire")
	}
	err := inj.HitKeyed(PageRead, 99)
	if err == nil {
		t.Fatal("Prob=1 keyed draw must fire")
	}
	fe := err.(*Error)
	if fe.Hit != 99 || fe.Site != PageRead {
		t.Fatalf("keyed error = %+v, want Hit=99 Site=PageRead", fe)
	}
}

func TestHitOrdMatchesHitStream(t *testing.T) {
	a := New(11).Plan(ExecStmt, Rule{Prob: 0.3})
	b := New(11).Plan(ExecStmt, Rule{Prob: 0.3})
	a.Arm()
	b.Arm()
	for i := int64(1); i <= 200; i++ {
		ea := a.Hit(ExecStmt)
		ord, eb := b.HitOrd(ExecStmt)
		if ord != i {
			t.Fatalf("ordinal %d != %d", ord, i)
		}
		if (ea != nil) != (eb != nil) {
			t.Fatalf("hit %d: Hit fired=%v HitOrd fired=%v", i, ea != nil, eb != nil)
		}
	}
}
